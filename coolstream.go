// Package coolstream is a Go reproduction of the system measured in
// "A Measurement of a Large-scale Peer-to-Peer Live Video Streaming
// System" (Xie, Keung, Li — ICPP 2007): the Coolstreaming data-driven
// (mesh-pull) P2P live streaming system, together with the internal
// logging/measurement apparatus the paper's analysis was built on.
//
// The package is a facade over the internal implementation:
//
//   - configure a run with Config (presets: DefaultConfig, DayConfig,
//     FlashCrowdConfig, SteadyConfig),
//   - execute it with Run, obtaining a Result,
//   - regenerate the paper's figures from the Result via its FigNN
//     methods, or dig into Result.Analysis for raw measurements.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every figure.
package coolstream

import (
	"coolstream/internal/core"
	"coolstream/internal/metrics"
	"coolstream/internal/peer"
	"coolstream/internal/sim"
	"coolstream/internal/workload"
)

// Config describes one simulation run. See core.Config.
type Config = core.Config

// Result carries a run's records, analysis and snapshots.
type Result = core.Result

// Params are the protocol parameters (Table I).
type Params = peer.Params

// Table is the rendered-figure container.
type Table = metrics.Table

// Time is virtual simulation time in milliseconds.
type Time = sim.Time

// Re-exported time units.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// Run executes one experiment.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// DefaultConfig returns the mid-sized steady-state configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// DayConfig returns the compressed broadcast-day scenario (Fig. 5).
func DayConfig(dayLength Time, baseRate float64, seed uint64) Config {
	return core.DayConfig(dayLength, baseRate, seed)
}

// FlashCrowdConfig returns the arrival-burst scenario (Figs. 7, 9b).
func FlashCrowdConfig(warm, burst Time, quietRate, burstRate float64, seed uint64) Config {
	return core.FlashCrowdConfig(warm, burst, quietRate, burstRate, seed)
}

// SteadyConfig returns a constant-arrival configuration.
func SteadyConfig(rate float64, horizon Time, seed uint64) Config {
	return core.SteadyConfig(rate, horizon, seed)
}

// DefaultParams returns the Table I protocol parameters.
func DefaultParams() Params { return peer.DefaultParams() }

// DiurnalProfile exposes the Fig. 5 arrival-rate shape for custom
// workloads.
func DiurnalProfile(dayLength Time, baseRate, peakFactor float64) workload.RateProfile {
	return workload.DiurnalProfile(dayLength, baseRate, peakFactor)
}
