module coolstream

go 1.22
