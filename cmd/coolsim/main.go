// Command coolsim runs one Coolstreaming simulation scenario and
// writes its artifacts: the raw log (the paper's log-server file
// format), a JSONL record dump for re-analysis, and the
// concurrent-sessions series.
//
// Usage:
//
//	coolsim -scenario day -day 30m -rate 0.5 -seed 7 -out run1
//	coolsim -scenario flash -seed 3 -out burst
//	coolsim -scenario steady -rate 0.4 -horizon 10m -out steady
//
// Outputs <out>.log (log strings), <out>.jsonl (records),
// <out>.sessions.csv (Fig. 5 series), plus a summary on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"coolstream/internal/core"
	"coolstream/internal/logsys"
	"coolstream/internal/metrics"
	"coolstream/internal/profiling"
	"coolstream/internal/sim"
	"coolstream/internal/trace"
	"coolstream/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coolsim:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		scenario = flag.String("scenario", "steady", "scenario: steady | day | flash | chaos")
		day      = flag.Duration("day", 30*time.Minute, "compressed day length (day scenario)")
		rate     = flag.Float64("rate", 0.4, "arrival rate per second (steady) or diurnal base rate (day)")
		horizon  = flag.Duration("horizon", 10*time.Minute, "workload horizon (steady scenario)")
		burst    = flag.Float64("burst", 4, "burst arrival rate per second (flash scenario)")
		seed     = flag.Uint64("seed", 1, "random seed")
		servers  = flag.Int("servers", 6, "dedicated server count")
		policy   = flag.String("mcache", "random", "mCache policy: random | stability")
		alloc    = flag.String("allocator", "waterfill", "upload allocator: waterfill | equalsplit")
		selPol   = flag.String("select", "random", "parent selection: random | freshest")
		loss     = flag.Float64("loss", 0, "control-plane message loss probability")
		crash    = flag.Float64("crash", 0.3, "fraction of ungraceful departures")
		out      = flag.String("out", "run", "output file prefix")
		artDir   = flag.String("artifacts", "", "also write the full artifact set (CSV series, figure tables) into this directory")
		loadScen = flag.String("load-scenario", "", "run a scenario file (workload.WriteScenario format) instead of generating arrivals")
		saveScen = flag.String("save-scenario", "", "save the run's materialised scenario to this file")
		quiet    = flag.Bool("q", false, "suppress figure tables on stdout")
		digest   = flag.Bool("digest", false, "print the run digest (reproducibility check)")
		shards   = flag.Int("shards", 1, "world shards for parallel control (1 = legacy engine, 0 = one per core)")
		deferCtl = flag.Bool("defer-control", false, "force the deferred-effect control serialization at one shard (A/B hook: digest must equal any -shards N run)")
	)
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if e := stopProf(); e != nil && err == nil {
			err = e
		}
	}()

	var cfg core.Config
	switch *scenario {
	case "steady":
		cfg = core.SteadyConfig(*rate, sim.Time((*horizon).Milliseconds()), *seed)
	case "day":
		cfg = core.DayConfig(sim.Time((*day).Milliseconds()), *rate, *seed)
	case "flash":
		cfg = core.FlashCrowdConfig(3*sim.Minute, sim.Minute, 0.15, *burst, *seed)
	case "chaos":
		cfg = core.ChaosConfig(*seed)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	cfg.Servers = *servers
	cfg.MCachePolicy = *policy
	cfg.Params.Allocator = *alloc
	cfg.Params.ParentSelection = *selPol
	cfg.Params.ControlLossProb = *loss
	cfg.CrashProb = *crash
	cfg.Shards = *shards
	if cfg.Shards == 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	cfg.DeferControl = *deferCtl
	// Phase labels only pay off when a CPU profile is actually being
	// captured; auto-enable them with -cpuprofile so `go tool pprof
	// -tagfocus phase=...` works out of the box.
	cfg.LabelPhases = prof.CPUProfile != ""
	if *loadScen != "" {
		f, err := os.Open(*loadScen)
		if err != nil {
			return err
		}
		sc, err := workload.ReadScenario(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.PresetScenario = &sc
	}
	// Short runs need status reports more often than the deployed five
	// minutes to produce any QoS/traffic data at all. Use the effective
	// horizon so a replayed scenario gets the same cadence as the run
	// that produced it.
	effHorizon := cfg.Workload.Horizon
	if cfg.PresetScenario != nil {
		effHorizon = cfg.PresetScenario.Horizon
	}
	if rp := effHorizon / 8; rp < cfg.Params.ReportPeriod {
		cfg.Params.ReportPeriod = rp
		if cfg.Params.ReportPeriod < 10*sim.Second {
			cfg.Params.ReportPeriod = 10 * sim.Second
		}
	}

	start := time.Now()
	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if *saveScen != "" {
		f, err := os.Create(*saveScen)
		if err != nil {
			return err
		}
		if err := workload.WriteScenario(f, res.Scenario); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("scenario saved to %s\n", *saveScen)
	}

	// Artifacts.
	logFile, err := os.Create(*out + ".log")
	if err != nil {
		return err
	}
	sinkW := logsys.NewWriterSink(logFile)
	for _, rec := range res.Records {
		sinkW.Log(rec)
	}
	if err := logFile.Close(); err != nil {
		return err
	}
	jsonFile, err := os.Create(*out + ".jsonl")
	if err != nil {
		return err
	}
	if err := trace.WriteRecords(jsonFile, res.Records); err != nil {
		jsonFile.Close()
		return err
	}
	if err := jsonFile.Close(); err != nil {
		return err
	}
	csvFile, err := os.Create(*out + ".sessions.csv")
	if err != nil {
		return err
	}
	series := res.Analysis.Concurrency(10*sim.Second, res.Horizon())
	if err := trace.WriteSeries(csvFile, "sessions", series); err != nil {
		csvFile.Close()
		return err
	}
	if err := csvFile.Close(); err != nil {
		return err
	}

	fmt.Printf("simulated %v of virtual time in %v wall (%d records)\n",
		res.Horizon().Duration(), elapsed.Round(time.Millisecond), len(res.Records))
	metrics.ASCIIPlot(os.Stdout, "concurrent sessions",
		res.Analysis.Concurrency(res.Horizon()/200, res.Horizon()), 72, 10)
	res.Summary().Render(os.Stdout)
	if !*quiet {
		res.Fig6().Render(os.Stdout)
		res.Fig8(30 * sim.Second).Render(os.Stdout)
		if *scenario == "chaos" {
			res.Fig10c().Render(os.Stdout)
		}
	}
	if *digest {
		fmt.Printf("digest %016x\n", res.Digest())
	}
	fmt.Printf("artifacts: %s.log %s.jsonl %s.sessions.csv\n", *out, *out, *out)
	if *artDir != "" {
		if err := res.WriteArtifacts(*artDir); err != nil {
			return err
		}
		fmt.Printf("full artifact set in %s/\n", *artDir)
	}
	return nil
}
