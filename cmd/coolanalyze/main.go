// Command coolanalyze re-analyses a stored run without re-simulating:
// it reads a log file (either the raw log-string format written by the
// log server / coolsim, or the JSONL record dump) and prints the
// paper's measurement tables.
//
// Usage:
//
//	coolanalyze -in run1.log -horizon 35m
//	coolanalyze -in run1.jsonl -format jsonl -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"coolstream/internal/logsys"
	"coolstream/internal/metrics"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coolanalyze:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in      = flag.String("in", "", "input file (required)")
		format  = flag.String("format", "auto", "input format: log | jsonl | auto")
		horizon = flag.Duration("horizon", 0, "analysis horizon (default: last record time)")
		bucket  = flag.Duration("bucket", 30*time.Second, "time bucket for series")
		asCSV   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	fm := *format
	if fm == "auto" {
		if strings.HasSuffix(*in, ".jsonl") {
			fm = "jsonl"
		} else {
			fm = "log"
		}
	}
	// The raw log format streams: records flow straight from the
	// scanner into the sessionizer, so a multi-gigabyte log never
	// materializes as a []Record. The horizon default (last record
	// time) and the emptiness check ride along on the same pass.
	var (
		count int
		maxAt sim.Time
	)
	an := metrics.NewAnalyzer(0)
	feed := func(rec logsys.Record) error {
		count++
		if rec.At > maxAt {
			maxAt = rec.At
		}
		an.Feed(rec)
		return nil
	}
	switch fm {
	case "log":
		err = logsys.ScanLog(f, feed)
	case "jsonl":
		var recs []logsys.Record
		recs, err = trace.ReadRecords(f)
		for _, rec := range recs {
			feed(rec)
		}
	default:
		return fmt.Errorf("unknown format %q", fm)
	}
	if err != nil {
		return err
	}
	if count == 0 {
		return fmt.Errorf("no records in %s", *in)
	}

	h := sim.Time((*horizon).Milliseconds())
	if h <= 0 {
		h = maxAt + sim.Minute
	}
	bkt := sim.Time((*bucket).Milliseconds())

	a := an.Finish()
	render := func(t *metrics.Table) {
		if *asCSV {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}

	// Session summary.
	sum := &metrics.Table{Title: "sessions", Header: []string{"metric", "value"}}
	sum.AddRowf("sessions\t%d", len(a.Sessions))
	ready := 0
	for _, s := range a.Sessions {
		if s.Ready() {
			ready++
		}
	}
	sum.AddRowf("ready_sessions\t%d", ready)
	sum.AddRowf("mean_continuity\t%.4f", a.MeanContinuity())
	sum.AddRowf("short(<1min)_frac\t%.4f", a.ShortSessionFraction(sim.Minute))
	render(sum)

	// Fig. 3.
	dist := a.ClassDistribution()
	fig3 := &metrics.Table{Title: "Fig. 3a — user types (inferred)", Header: []string{"class", "fraction"}}
	for c := netmodel.UserClass(0); c < netmodel.NumClasses; c++ {
		fig3.AddRowf("%s\t%.3f", c.String(), dist[c])
	}
	if acc := a.ClassifierAccuracy(); acc > 0 {
		fig3.AddRowf("classifier_accuracy\t%.3f", acc)
	}
	render(fig3)

	rep := a.Contribution()
	fig3b := &metrics.Table{Title: "Fig. 3b — upload contribution", Header: []string{"metric", "value"}}
	fig3b.AddRowf("reachable_pop_frac\t%.3f", rep.ReachablePopulation)
	fig3b.AddRowf("reachable_upload_share\t%.3f", rep.ReachableShare)
	fig3b.AddRowf("top30_upload_share\t%.3f", rep.Top30Share)
	fig3b.AddRowf("gini\t%.3f", rep.Gini)
	render(fig3b)

	// Fig. 5.
	fig5 := &metrics.Table{Title: "Fig. 5 — concurrency", Header: []string{"t", "sessions"}}
	for _, p := range a.Concurrency(bkt, h) {
		fig5.AddRowf("%s\t%.0f", p.At.String(), p.Value)
	}
	render(fig5)

	// Fig. 6.
	sub, rdy, diff := a.StartupDelays()
	fig6 := &metrics.Table{Title: "Fig. 6 — startup delays (s)", Header: []string{"quantile", "startsub", "ready", "difference"}}
	if rdy.N() > 0 && sub.N() > 0 && diff.N() > 0 {
		for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
			fig6.AddRowf("p%02.0f\t%.2f\t%.2f\t%.2f", q*100, sub.Quantile(q), rdy.Quantile(q), diff.Quantile(q))
		}
	}
	render(fig6)

	// Fig. 8.
	means := a.MeanContinuityByClass()
	fig8 := &metrics.Table{Title: "Fig. 8 — continuity by class", Header: []string{"class", "mean_ci"}}
	for c := netmodel.UserClass(0); c < netmodel.NumClasses; c++ {
		fig8.AddRowf("%s\t%.4f", c.String(), means[c])
	}
	render(fig8)

	// Fig. 10b.
	fig10b := &metrics.Table{Title: "Fig. 10b — retries", Header: []string{"failures_before_success", "frac_users"}}
	for k, v := range a.RetryDistribution(5) {
		fig10b.AddRowf("%d\t%.4f", k, v)
	}
	render(fig10b)
	return nil
}
