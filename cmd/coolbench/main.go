// Command coolbench regenerates every table and figure of the paper's
// evaluation (experiments E1-E12 of DESIGN.md) at a chosen scale and
// prints them as the same rows/series the paper reports. This is the
// full-size counterpart of the root bench_test.go benchmarks.
//
// Usage:
//
//	coolbench                 # medium scale, all experiments
//	coolbench -scale large    # bigger populations (slower)
//	coolbench -only fig5,fig9 # subset
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"coolstream/internal/analysis"
	"coolstream/internal/core"
	"coolstream/internal/metrics"
	"coolstream/internal/profiling"
	"coolstream/internal/sim"
	"coolstream/internal/tree"
	"coolstream/internal/xrand"
)

type scaleSpec struct {
	day        sim.Time
	dayRate    float64
	steadyRate float64
	steadyLen  sim.Time
	burstRate  float64
	servers    int
}

var scales = map[string]scaleSpec{
	"small":  {day: 12 * sim.Minute, dayRate: 0.4, steadyRate: 0.3, steadyLen: 8 * sim.Minute, burstRate: 3, servers: 6},
	"medium": {day: 36 * sim.Minute, dayRate: 0.8, steadyRate: 0.6, steadyLen: 15 * sim.Minute, burstRate: 6, servers: 8},
	"large":  {day: 96 * sim.Minute, dayRate: 1.5, steadyRate: 1.2, steadyLen: 30 * sim.Minute, burstRate: 12, servers: 12},
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coolbench:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		scale  = flag.String("scale", "medium", "small | medium | large")
		seed   = flag.Uint64("seed", 1, "random seed")
		only   = flag.String("only", "", "comma-separated subset (fig3,fig4,fig5,fig6,fig7,fig8,fig9,fig10,eq36,tree,mcache,resource,allocator,loss,peerwise,reps)")
		reps   = flag.Int("reps", 5, "seeds for the replication table (reps experiment)")
		shards = flag.Int("shards", 1, "world shards for parallel control (1 = legacy engine, 0 = one per core)")

		tracker        = flag.Bool("tracker", false, "run the tracker load harness instead of the simulator experiments")
		trackerDur     = flag.Duration("trackerdur", 2*time.Second, "tracker: measurement window per mode")
		trackerPeers   = flag.Int("trackerpeers", 5000, "tracker: preloaded registrations")
		trackerClients = flag.Int("trackerclients", 8, "tracker: concurrent load workers")
		trackerJSON    = flag.String("trackerjson", "", "tracker: write results to this JSON file (default stdout)")

		netplane      = flag.Bool("netplane", false, "run the data-plane saturation harness (legacy vs batched) instead of the simulator experiments")
		netplaneDur   = flag.Duration("netplanedur", 3*time.Second, "netplane: measured window per plane")
		netplanePeers = flag.Int("netplanepeers", 8, "netplane: full-stream children on the source")
		netplaneJSON  = flag.String("netplanejson", "", "netplane: write results to this JSON file (default stdout)")

		tickab       = flag.Bool("tickab", false, "run the interleaved tick A/B harness (shard-count variants in alternating windows) instead of the simulator experiments")
		count        = flag.Int("count", 5, "tickab: interleaved measurement rounds per variant (median/spread over rounds)")
		tickabPeers  = flag.Int("tickabpeers", 200_000, "tickab: synthetic population per variant world")
		tickabShards = flag.String("tickabshards", "1,8", "tickab: comma-separated shard-count variants")
		tickabTicks  = flag.Int("tickabticks", 5, "tickab: engine ticks per measurement window")
		tickabJSON   = flag.String("tickabjson", "", "tickab: write results to this JSON file")
	)
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if e := stopProf(); e != nil && err == nil {
			err = e
		}
	}()
	if *tracker {
		return trackerBench(*trackerDur, *trackerPeers, *trackerClients, *trackerJSON)
	}
	if *netplane {
		return netplaneBench(*netplaneDur, *netplanePeers, *netplaneJSON)
	}
	if *tickab {
		return tickabBench(*tickabPeers, *tickabShards, *count, *tickabTicks, *tickabJSON)
	}
	spec, ok := scales[*scale]
	if !ok {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }
	render := func(t *metrics.Table) {
		t.Render(os.Stdout)
		fmt.Println()
	}

	// ---- The shared day run (drives Figs. 3, 4, 5, 6, 7, 8, 9, 10).
	var dayRes *core.Result
	needDay := sel("fig3") || sel("fig4") || sel("fig5") || sel("fig6") ||
		sel("fig7") || sel("fig8") || sel("fig9") || sel("fig10")
	nShards := *shards
	if nShards == 0 {
		nShards = runtime.GOMAXPROCS(0)
	}
	if needDay {
		cfg := core.DayConfig(spec.day, spec.dayRate, *seed)
		cfg.Servers = spec.servers
		cfg.Params.ReportPeriod = scaledReport(spec.day)
		cfg.SnapshotPeriod = spec.day / 24
		cfg.Shards = nShards
		start := time.Now()
		var err error
		dayRes, err = core.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("# day scenario: %v virtual, %v wall, %d sessions, peak %d concurrent\n\n",
			spec.day.Duration(), time.Since(start).Round(time.Millisecond),
			dayRes.JoinedSessions, dayRes.PeakConcurrent)
		render(dayRes.Summary())
		if nShards > 1 {
			renderShardTables(dayRes, render)
		}
	}
	bucket := spec.day / 144 // ~10-minute-equivalent buckets

	if sel("fig3") {
		render(dayRes.Fig3a())
		render(dayRes.Fig3b())
	}
	if sel("fig4") {
		render(dayRes.Fig4())
	}
	if sel("fig5") {
		render(dayRes.Fig5(bucket))
		metrics.ASCIIPlot(os.Stdout, "Fig. 5 — concurrent sessions",
			dayRes.Analysis.Concurrency(bucket/4, dayRes.Horizon()), 72, 12)
		fmt.Println()
	}
	if sel("fig6") {
		render(dayRes.Fig6())
	}
	if sel("fig7") {
		render(dayRes.Fig7())
	}
	if sel("fig8") {
		render(dayRes.Fig8(bucket))
		// The per-class continuity time series behind the scalar means.
		series := dayRes.Fig8Series(bucket)
		t := &metrics.Table{
			Title:  "Fig. 8 — continuity time series (per class)",
			Header: []string{"class", "points", "min", "max"},
		}
		for c, pts := range series {
			if len(pts) == 0 {
				continue
			}
			lo, hi := pts[0].Value, pts[0].Value
			for _, p := range pts[1:] {
				if p.Value < lo {
					lo = p.Value
				}
				if p.Value > hi {
					hi = p.Value
				}
			}
			t.AddRowf("%s\t%d\t%.4f\t%.4f", className(c), len(pts), lo, hi)
		}
		render(t)
	}
	if sel("fig9") {
		render(dayRes.Fig9a(bucket, 6))
		render(dayRes.Fig9b(bucket, 6))
	}
	if sel("fig10") {
		render(dayRes.Fig10a())
		render(dayRes.Fig10b())
	}

	// ---- E10: analytic model vs fluid micro-simulation.
	if sel("eq36") {
		if err := eq36Table(render); err != nil {
			return err
		}
	}

	// ---- E11: mesh vs single tree under identical churn.
	if sel("tree") {
		if err := treeTable(spec, *seed, render); err != nil {
			return err
		}
	}

	// ---- E12: mCache replacement policy under flash crowd.
	if sel("mcache") {
		if err := mcacheTable(spec, *seed, render); err != nil {
			return err
		}
	}

	// ---- E13: resource-index critical value (§V-E).
	if sel("resource") {
		if err := resourceTable(*seed, render); err != nil {
			return err
		}
	}

	// ---- E14: upload allocator ablation.
	if sel("allocator") {
		if err := allocatorTable(spec, *seed, render); err != nil {
			return err
		}
	}

	// ---- E16: control-plane loss robustness.
	if sel("loss") {
		if err := lossTable(spec, *seed, render); err != nil {
			return err
		}
	}

	// ---- Multi-seed replication of the headline metrics.
	if sel("reps") {
		cfg := core.SteadyConfig(spec.steadyRate, spec.steadyLen, *seed)
		cfg.Servers = spec.servers
		cfg.Params.ReportPeriod = 30 * sim.Second
		rs, err := core.Replicate(cfg, *reps, nil)
		if err != nil {
			return err
		}
		render(core.ReplicationTable(
			fmt.Sprintf("replication across %d seeds (steady scenario)", *reps), rs))
	}

	// ---- E17: peer-wise performance and overlay stability (§VI).
	if sel("peerwise") && dayRes != nil {
		peerwiseTables(dayRes, render)
	} else if sel("peerwise") {
		cfg := core.SteadyConfig(spec.steadyRate, spec.steadyLen, *seed)
		cfg.Servers = spec.servers
		cfg.Params.ReportPeriod = 30 * sim.Second
		res, err := core.Run(cfg)
		if err != nil {
			return err
		}
		peerwiseTables(res, render)
	}
	return nil
}

func lossTable(spec scaleSpec, seed uint64, render func(*metrics.Table)) error {
	t := &metrics.Table{
		Title:  "E16 — robustness to control-plane message loss",
		Header: []string{"loss_prob", "mean_continuity", "ready_median_s", "failed_sessions"},
	}
	for _, loss := range []float64{0, 0.1, 0.3, 0.6} {
		cfg := core.SteadyConfig(spec.steadyRate, spec.steadyLen, seed)
		cfg.Servers = spec.servers
		cfg.Params.ReportPeriod = 30 * sim.Second
		cfg.Params.ControlLossProb = loss
		res, err := core.Run(cfg)
		if err != nil {
			return err
		}
		_, ready, _ := res.Analysis.StartupDelays()
		med := "-"
		if ready.N() > 0 {
			med = fmt.Sprintf("%.2f", ready.Median())
		}
		t.AddRowf("%.1f\t%.4f\t%s\t%d", loss, res.Analysis.MeanContinuity(), med, res.FailedSessions)
	}
	render(t)
	return nil
}

func peerwiseTables(res *core.Result, render func(*metrics.Table)) {
	pw := res.Analysis.Peerwise(0.95)
	t := &metrics.Table{
		Title:  "E17a — peer-wise performance (§VI open issue 1)",
		Header: []string{"metric", "value"},
	}
	if pw.SessionCI.N() > 0 {
		t.AddRowf("sessions_with_qos\t%d", pw.SessionCI.N())
		t.AddRowf("session_ci_p10\t%.4f", pw.SessionCI.Quantile(0.1))
		t.AddRowf("session_ci_median\t%.4f", pw.SessionCI.Median())
		t.AddRowf("bottleneck_frac(ci<0.95)\t%.4f", pw.BottleneckFrac)
		for c := 0; c < len(pw.BottleneckByClass); c++ {
			t.AddRowf("bottleneck_share[%s]\t%.3f", className(c), pw.BottleneckByClass[c])
		}
	}
	render(t)

	st := res.Analysis.Stability()
	t2 := &metrics.Table{
		Title:  "E17b — overlay stability (partnership changes per report)",
		Header: []string{"class", "mean_changes_per_report"},
	}
	for c := 0; c < len(st.MeanByClass); c++ {
		t2.AddRowf("%s\t%.2f", className(c), st.MeanByClass[c])
	}
	if st.ChangesPerReport.N() > 0 {
		t2.AddRowf("overall_mean\t%.2f", st.ChangesPerReport.Mean())
	}
	render(t2)
}

func className(c int) string {
	return [...]string{"direct", "upnp", "nat", "firewall"}[c]
}

// renderShardTables prints the sharded engine's load split: wall time
// per tick phase (the merge row is the determinism barrier — effect
// drain plus record-lane flush) and the per-shard control-plane
// imbalance (visits, in-visit wall time, BM refreshes, emitted
// effects).
func renderShardTables(res *core.Result, render func(*metrics.Table)) {
	ph := res.PhaseStats
	tp := &metrics.Table{
		Title:  "sharded engine — wall time per phase",
		Header: []string{"phase", "total_ms"},
	}
	tp.AddRowf("allocate\t%.1f", float64(ph.Allocate)/1e6)
	tp.AddRowf("advance\t%.1f", float64(ph.Advance)/1e6)
	tp.AddRowf("playback\t%.1f", float64(ph.Playback)/1e6)
	tp.AddRowf("account\t%.1f", float64(ph.Account)/1e6)
	tp.AddRowf("control\t%.1f", float64(ph.Control)/1e6)
	tp.AddRowf("merge\t%.1f", float64(ph.Merge)/1e6)
	render(tp)

	ts := &metrics.Table{
		Title:  "sharded engine — per-shard control load",
		Header: []string{"shard", "active_peers", "visits", "control_ms", "bm_refreshes", "effects"},
	}
	for _, s := range res.ShardStats {
		ts.AddRowf("%d\t%d\t%d\t%.1f\t%d\t%d",
			s.Shard, s.ActivePeers, s.Visits, float64(s.ControlNs)/1e6, s.BMRefreshes, s.Effects)
	}
	render(ts)
}

func resourceTable(seed uint64, render func(*metrics.Table)) error {
	t := &metrics.Table{
		Title:  "E13 — continuity vs resource index (critical value, §V-E)",
		Header: []string{"capacity_scale", "resource_index", "mean_continuity", "failed", "abandoned"},
	}
	for _, scale := range []float64{0.15, 0.3, 0.6, 1, 2, 4} {
		cfg := core.ResourceSweepConfig(scale, seed)
		cfg.Workload.Horizon = 8 * sim.Minute
		cfg.Params.ReportPeriod = 30 * sim.Second
		res, err := core.Run(cfg)
		if err != nil {
			return err
		}
		t.AddRowf("%.2f\t%.2f\t%.4f\t%d\t%d",
			scale, res.MeanResourceIndex(5), res.Analysis.MeanContinuity(),
			res.FailedSessions, res.AbandonSessions)
	}
	render(t)
	return nil
}

func allocatorTable(spec scaleSpec, seed uint64, render func(*metrics.Table)) error {
	t := &metrics.Table{
		Title:  "E14 — upload allocator: water-filling vs literal Eq. (5) equal split",
		Header: []string{"allocator", "mean_continuity", "ready_median_s", "ready_p90_s"},
	}
	for _, alloc := range []string{"waterfill", "equalsplit"} {
		cfg := core.SteadyConfig(spec.steadyRate, spec.steadyLen, seed)
		cfg.Servers = spec.servers
		cfg.Params.ReportPeriod = 30 * sim.Second
		cfg.Params.Allocator = alloc
		res, err := core.Run(cfg)
		if err != nil {
			return err
		}
		_, ready, _ := res.Analysis.StartupDelays()
		if ready.N() == 0 {
			t.AddRowf("%s\t%.4f\t-\t-", alloc, res.Analysis.MeanContinuity())
			continue
		}
		t.AddRowf("%s\t%.4f\t%.2f\t%.2f",
			alloc, res.Analysis.MeanContinuity(), ready.Median(), ready.Quantile(0.9))
	}
	render(t)
	return nil
}

// scaledReport keeps roughly 5-minute-equivalent reporting for a
// compressed day.
func scaledReport(day sim.Time) sim.Time {
	r := day / 288 // 5 min of a 24 h day
	if r < 10*sim.Second {
		r = 10 * sim.Second
	}
	return r
}

func eq36Table(render func(*metrics.Table)) error {
	m, err := analysis.NewModel(core.DefaultConfig().Params.Layout)
	if err != nil {
		return err
	}
	t := &metrics.Table{
		Title:  "Eqs. 3-4 — analytic vs fluid (E10)",
		Header: []string{"case", "l_blocks", "rate_bps", "analytic_s", "fluid_s", "rel_err"},
	}
	layout := core.DefaultConfig().Params.Layout
	r := xrand.New(42)
	for i := 0; i < 8; i++ {
		l := 10 + r.Float64()*50
		rate := layout.SubRateBps() * (1.3 + 2*r.Float64())
		want, err := m.CatchUpTime(l, rate)
		if err != nil {
			return err
		}
		got, _, err := analysis.FluidTransfer(layout, l, rate, 0.5, 1e12, 0.005, want*3+30)
		if err != nil {
			return err
		}
		t.AddRowf("catch-up\t%.1f\t%.0f\t%.2f\t%.2f\t%.3f", l, rate, want, got, rel(got, want))
	}
	for i := 0; i < 4; i++ {
		l := 5 + r.Float64()*20
		rate := layout.SubRateBps() * (0.2 + 0.6*r.Float64())
		want, err := m.AbandonTime(l, rate)
		if err != nil {
			return err
		}
		got, _, err := analysis.FluidTransfer(layout, 0.01, rate, 0.001, l, 0.005, want*3+30)
		if err != nil {
			return err
		}
		t.AddRowf("abandon\t%.1f\t%.0f\t%.2f\t%.2f\t%.3f", l, rate, want, got, rel(got, want))
	}
	render(t)

	// Eq. 6: P(lose) vs parent degree.
	t2 := &metrics.Table{
		Title:  "Eq. 6 — P(lose competition) vs parent degree (E10)",
		Header: []string{"degree", "p_lose"},
	}
	for _, d := range []int{1, 2, 4, 8, 16} {
		p, err := m.LoseProbability(d, 20, 20, analysis.UniformDeviationCCDF(20))
		if err != nil {
			return err
		}
		t2.AddRowf("%d\t%.3f", d, p)
	}
	render(t2)
	return nil
}

func treeTable(spec scaleSpec, seed uint64, render func(*metrics.Table)) error {
	cfg := core.SteadyConfig(spec.steadyRate, spec.steadyLen, seed)
	cfg.Servers = spec.servers
	cfg.Params.ReportPeriod = 30 * sim.Second
	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	tp := tree.DefaultParams()
	tp.RepairDelay = 10 * sim.Second
	tp.BufferSeconds = 5
	tp.RootDegree = 2 * spec.servers
	engine := sim.NewEngine(sim.Second)
	o, err := tree.NewOverlay(tp, engine, seed)
	if err != nil {
		return err
	}
	for _, s := range res.Scenario.Specs {
		s := s
		engine.Schedule(cfg.Warmup+s.At, func() {
			id := o.Join(s.Endpoint.UploadBps)
			engine.Schedule(cfg.Warmup+s.At+s.Watch, func() { o.Leave(id) })
		})
	}
	engine.Run(cfg.Horizon())

	t := &metrics.Table{
		Title:  "E11 — data-driven mesh vs single-tree baseline",
		Header: []string{"system", "continuity", "notes"},
	}
	t.AddRowf("coolstreaming-mesh\t%.4f\tmean reported CI", res.Analysis.MeanContinuity())
	t.AddRowf("single-tree\t%.4f\t%d repairs; %d rejections", o.Continuity(), o.Repairs, o.Rejections)
	render(t)
	return nil
}

func mcacheTable(spec scaleSpec, seed uint64, render func(*metrics.Table)) error {
	t := &metrics.Table{
		Title:  "E12 — mCache replacement policy under flash crowd",
		Header: []string{"policy", "ready_median_s", "ready_p90_s", "failed_sessions"},
	}
	for _, policy := range []string{"random", "stability"} {
		cfg := core.FlashCrowdConfig(3*sim.Minute, sim.Minute, 0.15, spec.burstRate, seed)
		cfg.MCachePolicy = policy
		cfg.Servers = spec.servers
		cfg.Params.ReportPeriod = 30 * sim.Second
		cfg.Params.BootstrapCandidates = 12
		cfg.Params.MCacheCapacity = 12
		res, err := core.Run(cfg)
		if err != nil {
			return err
		}
		_, ready, _ := res.Analysis.StartupDelays()
		if ready.N() == 0 {
			t.AddRowf("%s\t-\t-\t%d", policy, res.FailedSessions)
			continue
		}
		t.AddRowf("%s\t%.2f\t%.2f\t%d", policy, ready.Median(), ready.Quantile(0.9), res.FailedSessions)
	}
	render(t)
	return nil
}

func rel(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}
