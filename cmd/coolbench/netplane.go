// Data-plane saturation harness (-netplane): runs the internal/netsat
// star overlay twice at a fixed peer count — once on the legacy plane
// (one write per frame, full BM maps every period) and once on the
// batched plane (coalesced writer flushes, BM deltas, shared fan-out
// frames) — and folds both measurements plus their ratios into
// BENCH_netplane.json. The acceptance bars for this harness are a ≥2×
// reduction in write syscalls per delivered block and a ≥5× reduction
// in BM signalling bytes at steady state.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"coolstream/internal/netsat"
)

// netplaneResult is the serialised comparison.
type netplaneResult struct {
	Legacy  netsat.Report `json:"legacy"`
	Batched netsat.Report `json:"batched"`
	// Ratios are legacy ÷ batched: >1 means the batched plane is
	// cheaper on that axis.
	WritesPerBlockRatio float64 `json:"writes_per_block_ratio"`
	BytesPerBlockRatio  float64 `json:"bytes_per_block_ratio"`
	BMBytesRatio        float64 `json:"bm_bytes_ratio"`
}

func netplaneBench(dur time.Duration, peers int, jsonPath string) error {
	if peers <= 0 {
		return fmt.Errorf("netplane bench: peers %d", peers)
	}
	base := netsat.Config{Peers: peers, Duration: dur}
	legacyCfg := base
	legacyCfg.Legacy = true
	legacy, err := netsat.Run(legacyCfg)
	if err != nil {
		return err
	}
	batched, err := netsat.Run(base)
	if err != nil {
		return err
	}
	res := netplaneResult{Legacy: legacy, Batched: batched}
	if batched.WritesPerBlock > 0 {
		res.WritesPerBlockRatio = legacy.WritesPerBlock / batched.WritesPerBlock
	}
	if batched.BytesPerBlock > 0 {
		res.BytesPerBlockRatio = legacy.BytesPerBlock / batched.BytesPerBlock
	}
	if batched.BMBytesPerPeerSec > 0 {
		res.BMBytesRatio = legacy.BMBytesPerPeerSec / batched.BMBytesPerPeerSec
	}

	fmt.Printf("# netplane: %d peers, %v window per plane\n", peers, dur)
	fmt.Printf("%-10s %10s %12s %12s %14s %14s %8s\n",
		"plane", "delivered", "writes", "writes/blk", "bytes/blk", "bmB/peer/s", "min_ci")
	for _, r := range []netsat.Report{legacy, batched} {
		name := "batched"
		if r.Legacy {
			name = "legacy"
		}
		fmt.Printf("%-10s %10d %12d %12.3f %14.1f %14.0f %8.3f\n",
			name, r.Delivered, r.WriteCalls, r.WritesPerBlock, r.BytesPerBlock,
			r.BMBytesPerPeerSec, r.MinContinuity)
	}
	fmt.Printf("# ratios (legacy/batched): writes/blk %.2fx  bytes/blk %.2fx  bm bytes %.2fx\n",
		res.WritesPerBlockRatio, res.BytesPerBlockRatio, res.BMBytesRatio)

	var out io.Writer = os.Stdout
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
