package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"coolstream/internal/metrics"
	"coolstream/internal/peer"
	"coolstream/internal/sim"
)

// tickab.go — the interleaved tick A/B harness behind `coolbench
// -tickab`. Sequential benchmarking (all of variant A, then all of
// variant B) confounds the comparison with everything that drifts
// across a multi-minute run: CPU frequency, co-tenant load, page
// cache state. BENCH_scale.json once carried a pr6_same_session note
// for exactly that drift. This harness builds one settled synthetic
// world per shard-count variant, then alternates short measurement
// windows A, B, A, B, ... within a single process, so slow drift
// lands on every variant equally; per-variant medians across rounds
// with the min-max spread make the residual noise visible instead of
// silently folded into the mean.
//
// The worlds advance the same virtual time in lockstep (one window =
// `ticks` engine ticks for every variant in every round), so
// per-round comparisons always face identical due-wheel and
// BM-refresh populations.

// tickabSample is one measurement window of one variant.
type tickabSample struct {
	wallNs int64
	phases peer.PhaseNanos
	visits int64
}

// tickabVariantOut is the per-variant block of the JSON report.
type tickabVariantOut struct {
	Shards          int              `json:"shards"`
	Rounds          int              `json:"rounds"`
	NsPerTickMedian float64          `json:"ns_per_tick_median"`
	NsPerTickMin    float64          `json:"ns_per_tick_min"`
	NsPerTickMax    float64          `json:"ns_per_tick_max"`
	SpreadFrac      float64          `json:"spread_frac"`
	PhaseNsMedian   map[string]int64 `json:"phase_ns_per_tick_median"`
	MergeShare      float64          `json:"merge_share"`
	DrainShare      float64          `json:"drain_share"`
	VisitsPerTick   float64          `json:"visits_per_tick"`
	ActivePeers     int              `json:"active_peers"`
}

type tickabOut struct {
	Bench          string             `json:"bench"`
	Peers          int                `json:"peers"`
	TicksPerWindow int                `json:"ticks_per_window"`
	Rounds         int                `json:"rounds"`
	GOMAXPROCS     int                `json:"gomaxprocs"`
	Variants       []tickabVariantOut `json:"variants"`
}

func tickabBench(peers int, shardsCSV string, rounds, ticks int, jsonPath string) error {
	if rounds < 1 || ticks < 1 {
		return fmt.Errorf("tickab needs -count >= 1 and -tickabticks >= 1 (got %d, %d)", rounds, ticks)
	}
	var shardCounts []int
	for _, f := range strings.Split(shardsCSV, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return fmt.Errorf("bad -tickabshards entry %q", f)
		}
		shardCounts = append(shardCounts, v)
	}
	if len(shardCounts) == 0 {
		return fmt.Errorf("-tickabshards is empty")
	}

	type variant struct {
		shards  int
		w       *peer.World
		engine  *sim.Engine
		samples []tickabSample
	}
	variants := make([]*variant, 0, len(shardCounts))
	for _, s := range shardCounts {
		fmt.Fprintf(os.Stderr, "# tickab: building %d-peer synthetic world, %d shard(s)...\n", peers, s)
		w, engine, err := peer.NewSyntheticWorld(peers, s)
		if err != nil {
			return err
		}
		w.MeterPhases(true)
		variants = append(variants, &variant{shards: s, w: w, engine: engine})
	}

	window := func(v *variant) tickabSample {
		ph0, vis0 := v.w.PhaseStats(), v.w.ControlVisits
		t0 := time.Now()
		for i := 0; i < ticks; i++ {
			v.engine.Run(v.engine.Now() + sim.Second)
		}
		wall := time.Since(t0).Nanoseconds()
		ph1 := v.w.PhaseStats()
		return tickabSample{
			wallNs: wall,
			phases: peer.PhaseNanos{
				Allocate: ph1.Allocate - ph0.Allocate,
				Advance:  ph1.Advance - ph0.Advance,
				Playback: ph1.Playback - ph0.Playback,
				Account:  ph1.Account - ph0.Account,
				Control:  ph1.Control - ph0.Control,
				Drain:    ph1.Drain - ph0.Drain,
				Merge:    ph1.Merge - ph0.Merge,
			},
			visits: v.w.ControlVisits - vis0,
		}
	}

	// One untimed warm window per variant: first-touch page faults and
	// due-wheel priming are construction artifacts, not tick cost.
	for _, v := range variants {
		window(v)
	}
	for r := 0; r < rounds; r++ {
		for _, v := range variants {
			s := window(v)
			v.samples = append(v.samples, s)
			fmt.Fprintf(os.Stderr, "# round %d shards=%d: %.1f ms/tick\n",
				r+1, v.shards, float64(s.wallNs)/float64(ticks)/1e6)
		}
	}

	median := func(xs []float64) float64 {
		sort.Float64s(xs)
		n := len(xs)
		if n%2 == 1 {
			return xs[n/2]
		}
		return (xs[n/2-1] + xs[n/2]) / 2
	}
	collect := func(v *variant, pick func(tickabSample) float64) []float64 {
		out := make([]float64, len(v.samples))
		for i, s := range v.samples {
			out[i] = pick(s) / float64(ticks)
		}
		return out
	}

	out := tickabOut{
		Bench:          "tickab",
		Peers:          peers,
		TicksPerWindow: ticks,
		Rounds:         rounds,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}
	t := &metrics.Table{
		Title: "tick A/B — interleaved windows, median over rounds",
		Header: []string{"shards", "ms_per_tick", "spread", "alloc_ms", "advance_ms",
			"playback_ms", "control_ms", "drain_ms", "merge_ms", "merge_share", "visits"},
	}
	for _, v := range variants {
		walls := collect(v, func(s tickabSample) float64 { return float64(s.wallNs) })
		med := median(append([]float64(nil), walls...))
		min, max := walls[0], walls[0]
		for _, x := range walls[1:] {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		phase := func(pick func(peer.PhaseNanos) int64) float64 {
			return median(collect(v, func(s tickabSample) float64 { return float64(pick(s.phases)) }))
		}
		alloc := phase(func(p peer.PhaseNanos) int64 { return p.Allocate })
		advance := phase(func(p peer.PhaseNanos) int64 { return p.Advance })
		playback := phase(func(p peer.PhaseNanos) int64 { return p.Playback })
		account := phase(func(p peer.PhaseNanos) int64 { return p.Account })
		control := phase(func(p peer.PhaseNanos) int64 { return p.Control })
		drain := phase(func(p peer.PhaseNanos) int64 { return p.Drain })
		merge := phase(func(p peer.PhaseNanos) int64 { return p.Merge })
		visits := median(collect(v, func(s tickabSample) float64 { return float64(s.visits) }))
		spread := 0.0
		if med > 0 {
			spread = (max - min) / med
		}
		vo := tickabVariantOut{
			Shards:          v.shards,
			Rounds:          rounds,
			NsPerTickMedian: med,
			NsPerTickMin:    min,
			NsPerTickMax:    max,
			SpreadFrac:      spread,
			PhaseNsMedian: map[string]int64{
				"allocate": int64(alloc), "advance": int64(advance),
				"playback": int64(playback), "account": int64(account),
				"control": int64(control), "drain": int64(drain), "merge": int64(merge),
			},
			VisitsPerTick: visits,
			ActivePeers:   v.w.ActivePeerCount(),
		}
		if med > 0 {
			vo.MergeShare = merge / med
			vo.DrainShare = drain / med
		}
		out.Variants = append(out.Variants, vo)
		t.AddRowf("%d\t%.1f\t±%.0f%%\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\t%.4f\t%.0f",
			v.shards, med/1e6, spread*100/2, alloc/1e6, advance/1e6, playback/1e6,
			control/1e6, drain/1e6, merge/1e6, vo.MergeShare, visits)
	}
	t.Render(os.Stdout)
	fmt.Println()

	if jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}
