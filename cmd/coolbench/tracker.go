// Tracker load harness (-tracker): drives register/renew + candidates
// traffic against three tracker builds and reports ops/min —
//
//   - legacy: a faithful replica of the original single-mutex registry
//     (collect-all + sort + shuffle under the lock per candidates call;
//     no lease expiry), kept here because the production code no longer
//     contains it;
//   - sharded: the production netboot.Registry called in-process;
//   - tcp: the production registry behind the binary wire protocol,
//     end-to-end over a loopback socket with one TCPClient per worker.
//
// Each worker alternates a register (renewal of its own ID block) with
// a candidates query — the tracker's two hot operations. The acceptance
// bar for this harness is ≥1M combined ops/min on the sharded build.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"coolstream/internal/netboot"
	"coolstream/internal/xrand"
)

// trackerOps is the operation surface the load workers drive; the three
// builds adapt onto it.
type trackerOps interface {
	register(id int32, addr string) error
	candidates(n int, exclude int32) (int, error)
}

// legacyRegistry replicates the pre-rewrite tracker: one mutex over a
// flat map, candidates materialising and sorting the full population
// under the lock. Dead peers are never evicted (no leases), which is
// exactly why its candidates cost grows with every crash.
type legacyRegistry struct {
	mu    sync.Mutex
	peers map[int32]string
	rng   *xrand.RNG
}

func newLegacyRegistry(seed uint64) *legacyRegistry {
	return &legacyRegistry{peers: make(map[int32]string), rng: xrand.New(seed)}
}

func (s *legacyRegistry) register(id int32, addr string) error {
	s.mu.Lock()
	s.peers[id] = addr
	s.mu.Unlock()
	return nil
}

func (s *legacyRegistry) candidates(n int, exclude int32) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int32, 0, len(s.peers))
	for id := range s.peers {
		if id != exclude {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if n > len(ids) {
		n = len(ids)
	}
	return n, nil
}

// shardedOps calls the production registry in-process.
type shardedOps struct{ reg *netboot.Registry }

func (s shardedOps) register(id int32, addr string) error {
	_, err := s.reg.Register(id, addr, "")
	return err
}

func (s shardedOps) candidates(n int, exclude int32) (int, error) {
	return len(s.reg.Candidates(n, exclude)), nil
}

// tcpOps drives one TCPClient (per worker) against a live TCPServer.
type tcpOps struct{ c *netboot.TCPClient }

func (t tcpOps) register(id int32, addr string) error { return t.c.Register(id, addr) }

func (t tcpOps) candidates(n int, exclude int32) (int, error) {
	out, err := t.c.Candidates(n, exclude)
	return len(out), err
}

// trackerBenchResult is one mode's measurement, serialised into
// BENCH_tracker.json.
type trackerBenchResult struct {
	Mode         string  `json:"mode"`
	Workers      int     `json:"workers"`
	Peers        int     `json:"peers"`
	DurationSec  float64 `json:"duration_sec"`
	RegisterOps  int64   `json:"register_ops"`
	CandidateOps int64   `json:"candidate_ops"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	OpsPerMin    float64 `json:"ops_per_min"`
}

// runTrackerBench measures one build: preload `peers` registrations,
// then `workers` goroutines alternate register-renewals (their own ID
// block) with candidates queries for `dur`.
func runTrackerBench(mode string, dur time.Duration, peers, workers int,
	mk func(worker int) trackerOps) (trackerBenchResult, error) {

	pre := mk(0)
	for id := int32(0); id < int32(peers); id++ {
		if err := pre.register(id, "10.0.0.1:9000"); err != nil {
			return trackerBenchResult{}, fmt.Errorf("preload: %w", err)
		}
	}

	var regOps, candOps atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		ops := mk(w + 1)
		myID := int32(w % peers)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if err := ops.register(myID, "10.0.0.1:9000"); err != nil {
					errCh <- err
					return
				}
				regOps.Add(1)
				if _, err := ops.candidates(10, myID); err != nil {
					errCh <- err
					return
				}
				candOps.Add(1)
			}
		}()
	}
	start := time.Now()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	select {
	case err := <-errCh:
		return trackerBenchResult{}, fmt.Errorf("%s worker: %w", mode, err)
	default:
	}

	total := regOps.Load() + candOps.Load()
	return trackerBenchResult{
		Mode:         mode,
		Workers:      workers,
		Peers:        peers,
		DurationSec:  elapsed,
		RegisterOps:  regOps.Load(),
		CandidateOps: candOps.Load(),
		OpsPerSec:    float64(total) / elapsed,
		OpsPerMin:    float64(total) / elapsed * 60,
	}, nil
}

// trackerBench runs all three builds and writes/prints the results.
func trackerBench(dur time.Duration, peers, workers int, jsonPath string) error {
	if peers <= 0 || workers <= 0 {
		return fmt.Errorf("tracker bench: peers %d workers %d", peers, workers)
	}
	var results []trackerBenchResult

	// Legacy single-lock build.
	leg := newLegacyRegistry(1)
	res, err := runTrackerBench("legacy", dur, peers, workers,
		func(int) trackerOps { return leg })
	if err != nil {
		return err
	}
	results = append(results, res)

	// Production sharded registry, in-process.
	reg := netboot.NewRegistry(netboot.RegistryConfig{Seed: 1})
	res, err = runTrackerBench("sharded", dur, peers, workers,
		func(int) trackerOps { return shardedOps{reg} })
	if err != nil {
		return err
	}
	results = append(results, res)

	// Production registry behind the binary protocol, over loopback.
	// MaxPerOwner must stay unbounded here: every client shares the
	// loopback IP.
	srv := netboot.NewTCPServer(netboot.NewRegistry(netboot.RegistryConfig{Seed: 2}), netboot.TCPServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	var clients []*netboot.TCPClient
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	res, err = runTrackerBench("tcp", dur, peers, workers, func(int) trackerOps {
		c := netboot.NewTCPClient(addr)
		clients = append(clients, c)
		return tcpOps{c}
	})
	if err != nil {
		return err
	}
	results = append(results, res)

	fmt.Printf("# tracker load: %d peers, %d workers, %v per mode\n", peers, workers, dur)
	fmt.Printf("%-10s %12s %12s %14s %16s\n", "mode", "register", "candidates", "ops/sec", "ops/min")
	for _, r := range results {
		fmt.Printf("%-10s %12d %12d %14.0f %16.0f\n",
			r.Mode, r.RegisterOps, r.CandidateOps, r.OpsPerSec, r.OpsPerMin)
	}

	var out io.Writer = os.Stdout
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
