// Command coolnet runs one live networked Coolstreaming node — the
// deployable data plane of internal/netpeer over real TCP, with the
// tracker of internal/netboot for discovery and the §IV-B adaptation
// loop.
//
// The bootstrap role serves the production binary tracker on -tcp and
// the legacy HTTP shim on -http, backed by one shared lease registry.
// Peers pick the protocol by the -bootstrap scheme: tcp:// for the
// binary tracker, http:// for the shim.
//
// A self-organising overlay on one machine (four terminals):
//
//	coolnet -role bootstrap -tcp 127.0.0.1:7002 -http 127.0.0.1:7001
//	coolnet -role source -id 0 -bootstrap tcp://127.0.0.1:7002
//	coolnet -role peer -id 1 -bootstrap tcp://127.0.0.1:7002 -duration 15s
//	coolnet -role peer -id 2 -bootstrap http://127.0.0.1:7001 -duration 15s -adapt
//
// Peers may also be wired manually with -connect host:port[,host:port].
//
// A self-contained chaos run (tracker, source, and peers in one
// process, with kills, hung connections, and a tracker outage injected
// mid-stream) needs no other terminals:
//
//	coolnet -scenario chaos -peers 8 -kills 2 -zombies 2 -outage 1.5s
//
// It exits non-zero if any surviving peer fails to re-partner and
// recover per-lane progress inside the recovery window.
//
// A flash-crowd run (warm overlay, then a joiner burst several times
// its size, measured with the admission ladder off and on):
//
//	coolnet -scenario surge -surgejson BENCH_surge.json
//
// It exits non-zero unless the ladder-on run admits the crowd while
// protecting the established peers' continuity AND the ladder-off run
// demonstrably collapses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"coolstream/internal/buffer"
	"coolstream/internal/netboot"
	"coolstream/internal/netchaos"
	"coolstream/internal/netpeer"
	"coolstream/internal/netsat"
	"coolstream/internal/netsurge"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coolnet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		role     = flag.String("role", "peer", "bootstrap | source | peer")
		id       = flag.Int("id", 1, "node id (unique per overlay)")
		boot     = flag.String("bootstrap", "", "tracker URL: tcp://host:port (binary) or http://host:port (shim)")
		httpAddr = flag.String("http", "127.0.0.1:7001", "HTTP shim listen address (bootstrap role)")
		tcpAddr  = flag.String("tcp", "127.0.0.1:7002", "binary tracker listen address (bootstrap role)")
		connect  = flag.String("connect", "", "comma-separated parent addresses (peer role; overrides -bootstrap discovery)")
		parentsN = flag.Int("maxparents", 3, "parents to connect to via bootstrap discovery")
		upload   = flag.Float64("upload", 4, "upload capacity as a multiple of the stream rate (0 = unlimited)")
		rate     = flag.Float64("rate", 512e3, "stream rate in bits/s")
		k        = flag.Int("k", 4, "number of sub-streams")
		block    = flag.Int("block", 800, "block size in bytes")
		duration = flag.Duration("duration", 10*time.Second, "how long to stream (peer role)")
		shift    = flag.Int64("shift", 3, "join this many blocks behind the freshest parent")
		adapt    = flag.Bool("adapt", false, "enable the peer-adaptation monitor (Inequalities 1-2)")
		selfheal = flag.Bool("selfheal", false, "enable the self-healing membership manager (needs -bootstrap)")

		scenario = flag.String("scenario", "", "self-contained scenario: chaos | saturate | surge")
		peers    = flag.Int("peers", 8, "chaos/saturate: number of peers")
		kills    = flag.Int("kills", 2, "chaos: abrupt peer kills mid-run")
		zombies  = flag.Int("zombies", 2, "chaos: hung connections injected mid-run")
		outage   = flag.Duration("outage", 1500*time.Millisecond, "chaos: tracker outage duration (0 = none)")
		recovery = flag.Duration("recovery", 4*time.Second, "chaos: recovery window after the faults")
		seed     = flag.Uint64("seed", 1, "chaos/surge: scenario seed")

		satWindow = flag.Duration("satwindow", 3*time.Second, "saturate: measured window per plane")
		satSweep  = flag.Int("satsweep", 0, "saturate: sweep peer count up to this cap (0 = fixed -peers comparison)")

		surgeWarm    = flag.Int("surgewarm", 0, "surge: established peers before the storm (0 = default 3)")
		surgeJoiners = flag.Int("surgejoiners", 0, "surge: joiner burst size (0 = default 4x warm)")
		surgeJSON    = flag.String("surgejson", "", "surge: write the off/on pair report to this JSON file")
	)
	flag.Parse()

	switch *scenario {
	case "chaos":
		return runChaos(*peers, *parentsN, *kills, *zombies, *outage, *recovery, *seed)
	case "saturate":
		return runSaturate(*peers, *satWindow, *satSweep)
	case "surge":
		return runSurge(*surgeWarm, *surgeJoiners, *seed, *surgeJSON)
	case "":
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}

	if *role == "bootstrap" {
		reg := netboot.NewRegistry(netboot.RegistryConfig{Seed: uint64(time.Now().UnixNano())})
		tracker := netboot.NewTCPServer(reg, netboot.TCPServerConfig{})
		bound, err := tracker.Listen(*tcpAddr)
		if err != nil {
			return err
		}
		defer tracker.Close()
		fmt.Printf("tracker listening on tcp://%s (%v leases)\n", bound, reg.LeaseTTL())
		// The HTTP shim shares the registry. Explicit timeouts: the
		// default http.Server has none, so one stalled client used to be
		// able to hold a connection (and its goroutine) forever.
		hs := &http.Server{
			Addr:              *httpAddr,
			Handler:           netboot.NewServerWith(reg),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      10 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		fmt.Printf("bootstrap shim listening on http://%s\n", *httpAddr)
		return hs.ListenAndServe()
	}

	layout := buffer.Layout{K: *k, RateBps: *rate, BlockBytes: *block}
	uploadBps := *upload * *rate
	if *upload == 0 {
		uploadBps = 0
	}
	cfg := netpeer.Config{
		ID:           int32(*id),
		Layout:       layout,
		UploadBps:    uploadBps,
		BMPeriod:     250 * time.Millisecond,
		BufferBlocks: 600,
		ReadyBlocks:  10,
	}
	node, err := netpeer.New(cfg)
	if err != nil {
		return err
	}
	defer node.Close()
	addr, err := node.Listen()
	if err != nil {
		return err
	}
	fmt.Printf("node %d (%s) listening on %s\n", *id, *role, addr)

	var bc netpeer.Bootstrap
	if *boot != "" {
		bc = newBootClient(*boot)
		if c, ok := bc.(*netboot.TCPClient); ok {
			defer c.Close()
		}
		if err := bc.Register(int32(*id), addr); err != nil {
			return fmt.Errorf("bootstrap register: %w", err)
		}
		defer bc.Leave(int32(*id))
		// Keep the tracker lease alive for runs longer than the TTL.
		// (The self-healing manager renews too; a duplicate renewal is
		// an atomic store on the tracker side.)
		defer startLeaseRenewal(bc, int32(*id), addr)()
	}

	switch *role {
	case "source":
		if err := node.StartSource(); err != nil {
			return err
		}
		fmt.Printf("streaming %.0f kbps in %d sub-streams (%.0f blocks/s); ctrl-c to stop\n",
			*rate/1e3, *k, layout.BlocksPerSecond())
		select {} // run until killed

	case "peer":
		addrs, parents, err := discoverParents(node, bc, *connect, *parentsN, int32(*id))
		if err != nil {
			return err
		}
		for i, pid := range parents {
			fmt.Printf("partnered with node %d at %s\n", pid, addrs[i])
		}
		// Wait for a buffer map so the join position is known.
		start := waitForStart(node, parents, *shift, 5*time.Second)
		if err := node.InitBuffers(start); err != nil {
			return err
		}
		for j := 0; j < *k; j++ {
			parent := parents[j%len(parents)]
			if err := node.SubscribeTracked(parent, j, start); err != nil {
				return err
			}
		}
		if *adapt {
			node.EnableAdaptation(netpeer.AdaptConfig{
				Ts: 10, Tp: 20, Ta: time.Second,
				Check: 250 * time.Millisecond,
				Seed:  uint64(*id),
			})
			fmt.Println("adaptation monitor enabled")
		}
		if *selfheal {
			if bc == nil {
				return fmt.Errorf("-selfheal needs -bootstrap")
			}
			if err := node.EnableMaintenance(netpeer.ManagerConfig{
				TargetPartners: *parentsN,
				Seed:           uint64(*id),
			}, bc); err != nil {
				return err
			}
			fmt.Println("self-healing membership manager enabled")
		}
		fmt.Printf("subscribed %d sub-streams from block %d; streaming %v...\n", *k, start, *duration)
		time.Sleep(*duration)
		fmt.Printf("ready: %v  continuity: %.4f  latest: %d  combined: %d\n",
			node.Ready(), node.Continuity(), node.Latest(0), node.Combined())
		if *selfheal {
			rec := node.Recovery()
			fmt.Printf("recovery: stale-teardowns=%d partners-replaced=%d rebootstraps=%d gossip-sent=%d\n",
				rec.StaleTeardowns, rec.PartnersReplaced, rec.Rebootstraps, rec.GossipSent)
		}
		return nil

	default:
		return fmt.Errorf("unknown role %q", *role)
	}
}

// runChaos executes the self-contained chaos scenario and reports
// per-peer recovery, exiting non-zero when the overlay failed to heal.
func runChaos(peers, target, kills, zombies int, outage, recovery time.Duration, seed uint64) error {
	fmt.Printf("chaos: %d peers (target M=%d), %d kills, %d zombies, tracker outage %v\n",
		peers, target, kills, zombies, outage)
	rep, err := netchaos.Run(netchaos.Config{
		Peers:          peers,
		TargetPartners: target,
		Kills:          kills,
		Zombies:        zombies,
		BootOutage:     outage,
		RecoveryWindow: recovery,
		Seed:           seed,
		Logf: func(format string, args ...any) {
			fmt.Printf("chaos: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("chaos: killed %v; %d survivors; stale-teardowns=%d partners-replaced=%d rebootstraps=%d gossip-sent=%d\n",
		rep.Killed, len(rep.Survivors), rep.StaleTeardowns, rep.PartnersReplaced, rep.Rebootstraps, rep.GossipSent)
	if !rep.Recovered {
		return fmt.Errorf("overlay did not recover within %v", recovery)
	}
	fmt.Println("chaos: all survivors re-partnered with positive per-lane progress — recovered")
	return nil
}

// runSurge runs the flash-crowd storm twice — admission ladder off,
// then on — writes the pair report as JSON when asked, and exits
// non-zero unless the ladder demonstrably changes the outcome: joins
// succeed and the established swarm keeps its continuity with the
// ladder on, and the same storm drags the established swarm down with
// it off.
func runSurge(warm, joiners int, seed uint64, jsonPath string) error {
	cfg := netsurge.Config{
		Warm: warm, Joiners: joiners, Seed: seed,
		Logf: func(format string, args ...any) {
			fmt.Printf("surge: "+format+"\n", args...)
		},
	}
	pair, err := netsurge.RunPair(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("surge: ladder off: join success %.2f, established min CI %.3f\n",
		pair.Off.JoinSuccess, pair.Off.EstablishedMinContinuity)
	fmt.Printf("surge: ladder on:  join success %.2f, established min CI %.3f, retries p90=%d, ttfb p90=%.0fms\n",
		pair.On.JoinSuccess, pair.On.EstablishedMinContinuity,
		pair.On.RetriesP90, pair.On.TTFBP90Ms)
	if jsonPath != "" {
		buf, err := json.MarshalIndent(pair, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("surge: pair report written to %s\n", jsonPath)
	}
	switch {
	case pair.On.JoinSuccess < 0.95:
		return fmt.Errorf("ladder on: join success %.2f < 0.95", pair.On.JoinSuccess)
	case pair.On.EstablishedMinContinuity < 0.95:
		return fmt.Errorf("ladder on: established min continuity %.3f < 0.95",
			pair.On.EstablishedMinContinuity)
	case pair.Off.EstablishedMinContinuity > 0.8:
		return fmt.Errorf("ladder off: established min continuity %.3f > 0.8 — storm did not bite",
			pair.Off.EstablishedMinContinuity)
	}
	fmt.Println("surge: crowd admitted, established swarm protected, unprotected run collapsed — pass")
	return nil
}

// runSaturate measures the live data plane: the same star overlay on
// the legacy (one-write-per-frame, full-BM) plane and on the batched
// plane, reporting write syscalls and bytes per delivered block and BM
// signalling bytes per peer. With -satsweep N it instead doubles the
// peer count per plane until continuity collapses, reporting the
// sustainable population.
func runSaturate(peers int, window time.Duration, sweepMax int) error {
	base := netsat.Config{
		Peers:    peers,
		Duration: window,
		Logf: func(format string, args ...any) {
			fmt.Printf("saturate: "+format+"\n", args...)
		},
	}
	if sweepMax > 0 {
		for _, legacy := range []bool{true, false} {
			cfg := base
			cfg.Legacy = legacy
			reps, sustainable, err := netsat.Sweep(cfg, peers, sweepMax, 0.9)
			if err != nil {
				return err
			}
			last := reps[len(reps)-1]
			fmt.Printf("saturate: legacy=%v sustainable peers %d (last run: %d peers, min CI %.3f)\n",
				legacy, sustainable, last.Peers, last.MinContinuity)
		}
		return nil
	}
	legacyCfg := base
	legacyCfg.Legacy = true
	legacyRep, err := netsat.Run(legacyCfg)
	if err != nil {
		return err
	}
	batchedRep, err := netsat.Run(base)
	if err != nil {
		return err
	}
	printSaturate(legacyRep, batchedRep)
	return nil
}

func printSaturate(legacy, batched netsat.Report) {
	fmt.Printf("\n%-22s %14s %14s %8s\n", "metric", "legacy", "batched", "ratio")
	row := func(name string, l, b float64, format string) {
		ratio := 0.0
		if b > 0 {
			ratio = l / b
		}
		fmt.Printf("%-22s %14s %14s %7.2fx\n", name,
			fmt.Sprintf(format, l), fmt.Sprintf(format, b), ratio)
	}
	row("delivered blocks", float64(legacy.Delivered), float64(batched.Delivered), "%.0f")
	row("write syscalls", float64(legacy.WriteCalls), float64(batched.WriteCalls), "%.0f")
	row("writes / block", legacy.WritesPerBlock, batched.WritesPerBlock, "%.3f")
	row("bytes / block", legacy.BytesPerBlock, batched.BytesPerBlock, "%.1f")
	row("BM bytes / peer / s", legacy.BMBytesPerPeerSec, batched.BMBytesPerPeerSec, "%.0f")
	fmt.Printf("%-22s %14.3f %14.3f\n", "min continuity", legacy.MinContinuity, batched.MinContinuity)
	fmt.Printf("%-22s %14.3f %14.3f\n", "mean continuity", legacy.MeanContinuity, batched.MeanContinuity)
	fmt.Printf("%-22s %14s %14d\n\n", "fan-out shared frames", "-", batched.FanShared)
}

// newBootClient builds a tracker client from the -bootstrap URL: the
// binary protocol for tcp://, the HTTP shim otherwise.
func newBootClient(u string) netpeer.Bootstrap {
	if rest, ok := strings.CutPrefix(u, "tcp://"); ok {
		return netboot.NewTCPClient(rest)
	}
	return netboot.NewClient(u, nil)
}

// startLeaseRenewal re-registers every 10s (a third of the default
// lease) so long-lived roles — the source above all — never lapse out
// of the tracker. Returns the stop function.
func startLeaseRenewal(bc netpeer.Bootstrap, id int32, addr string) func() {
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(10 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				bc.Register(id, addr)
			case <-stop:
				return
			}
		}
	}()
	return func() { close(stop) }
}

// discoverParents connects to explicit addresses or to bootstrap
// candidates, returning the addresses and peer IDs partnered with.
func discoverParents(node *netpeer.Node, bc netpeer.Bootstrap, connect string, maxParents int, self int32) ([]string, []int32, error) {
	var addrs []string
	if connect != "" {
		for _, a := range strings.Split(connect, ",") {
			addrs = append(addrs, strings.TrimSpace(a))
		}
	} else {
		if bc == nil {
			return nil, nil, fmt.Errorf("peer needs -connect or -bootstrap")
		}
		cands, err := bc.Candidates(maxParents, self)
		if err != nil {
			return nil, nil, err
		}
		if len(cands) == 0 {
			return nil, nil, fmt.Errorf("bootstrap knows no candidates yet")
		}
		for _, e := range cands {
			addrs = append(addrs, e.Addr)
		}
	}
	var connected []string
	var parents []int32
	for _, a := range addrs {
		pid, err := node.Connect(a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coolnet: connect %s failed: %v\n", a, err)
			continue
		}
		connected = append(connected, a)
		parents = append(parents, pid)
	}
	if len(parents) == 0 {
		return nil, nil, fmt.Errorf("no parent reachable")
	}
	return connected, parents, nil
}

// waitForStart blocks until some partner advertises progress, then
// returns the shift-adjusted join position.
func waitForStart(node *netpeer.Node, parents []int32, shift int64, timeout time.Duration) int64 {
	deadline := time.Now().Add(timeout)
	var start int64 = -1
	for time.Now().Before(deadline) {
		for _, pid := range parents {
			if bm, ok := node.PartnerBM(pid); ok && bm.MaxLatest() > shift {
				if s := bm.MaxLatest() - shift; s > start {
					start = s
				}
			}
		}
		if start >= 0 {
			return start
		}
		time.Sleep(50 * time.Millisecond)
	}
	if start < 0 {
		return 0
	}
	return start
}
