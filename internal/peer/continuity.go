package peer

// missedSeq computes, for one sub-stream over one tick, how many
// per-sub-stream block positions pass their playback deadline without
// having arrived — the numerator of the paper's continuity index,
// evaluated exactly on the piecewise-linear fluid trajectories.
//
// Between ticks the receive progress is linear, H(t) = h0 + rho·(t-t0),
// and the playback deadline position is linear, d(t) = d0 + beta·(t-t0)
// with beta the sub-stream block rate. The deadline for block s falls
// at t(s) = t0 + (s-d0)/beta, so block s is missed iff
//
//	f(s) = h0 + (rho/beta)(s-d0) - s < 0.
//
// f is linear in s, so the missed set within [d0, d1] is an interval
// whose length has a closed form.
func missedSeq(h0, rho, d0, d1, beta float64) float64 {
	if beta <= 0 || d1 <= d0 {
		return 0
	}
	fa := h0 - d0
	fb := h0 + (rho/beta)*(d1-d0) - d1
	switch {
	case fa >= 0 && fb >= 0:
		return 0
	case fa < 0 && fb < 0:
		return d1 - d0
	case fa < 0:
		// Missed at the start, catches up at the crossing.
		return (d1 - d0) * fa / (fa - fb)
	default:
		// Arrives early at first, falls behind at the crossing.
		return (d1 - d0) * fb / (fb - fa)
	}
}
