package peer

import (
	"fmt"

	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// The world is partitioned into per-core *world shards*. Each shard
// owns a disjoint subset of the nodes — assigned by a stable hash of
// the node ID, so a node's shard never changes during its lifetime —
// together with everything those nodes need that must not be shared
// across cores: the membership list, the due-wheel of the control
// scheduler, the node-shell arenas and free lists, the control-phase
// log lane, the effect outbox and the per-shard counters.
//
// With one shard (the default) the engine is the legacy sequential
// engine, bit for bit: every structure lives on shards[0] and the
// control phase runs exactly the pre-shard code path. With more than
// one shard the control phase switches to the deferred-effect engine
// (see effects.go and DESIGN.md §11): shards visit their due nodes in
// parallel, cross-node mutations are queued as effects, and a
// sequential barrier applies them in a canonical order that is
// independent of both the shard count (for N ≥ 2) and GOMAXPROCS.
type worldShard struct {
	idx int

	// Membership. active holds the shard's sorted active node IDs
	// (IDs are assigned monotonically and the shard hash is stable, so
	// joins append in O(1)); departures mark the list dirty and the
	// next compaction applies the batch in one pass.
	active      []int
	activeDirty int
	// activePeers counts the shard's active non-server peers; the
	// world-level ActivePeerCount is the O(shards) sum.
	activePeers int

	// Due-driven control scheduling (see sched.go): the shard owns its
	// wheel and drain scratch, so the sharded control phase drains,
	// visits and re-arms with no shared mutable state.
	wheel    *sim.Wheel
	wheelBuf []int32
	dueIDs   []int32

	// Node-shell recycling arenas and free lists — one instance per
	// shard, so parallel control visits and the drain recycle without
	// locks. A node only ever donates to and draws from its own
	// shard's pools.
	nodeArena  []Node
	subArena   []Subscription
	childArena [][]int
	hotArena   []nodeHot
	mapPool    []map[int]*Partner
	intPool    [][]int
	plistPool  [][]*Partner
	mcPool     []*gossip.MCache
	demandPool [][]netmodel.Demand
	slotPool   [][]allocSlot
	fillerPool []*netmodel.Filler
	ppool      partnerPool

	// Deferred-control state: the shard's visit context, the residue
	// effect outbox (drained sequentially in canonical (src, seq) order
	// at the barrier), the target-routed queues of the parallel drain
	// passes and the shard's record lane for control-phase log records.
	vc     vctx
	outbox []effect
	effSeq int32
	// outPar[t] holds effects this shard emitted whose target node
	// lives on shard t; shard t alone applies them in the parallel
	// target pass. gossipOut[s] holds the gossip replies this shard
	// produced (as a target) for source nodes owned by shard s; shard s
	// alone consumes them in the source pass. mergeCur is the shard's
	// private cursor scratch for those k-way merges, and drainLog
	// captures the applied (src, seq) order when the property-test hook
	// is armed.
	outPar    [][]effect
	gossipOut [][]gossipReply
	mergeCur  []int
	drainLog  [][2]int32
	recBuf    []logsys.Record

	// memberEpoch counts this shard's membership changes and removed
	// marks that at least one of them was a departure, not a join —
	// the dirty-shard state of the incremental mergedActive rebuild.
	memberEpoch uint64
	removed     bool

	// Per-tick counters, folded into the world totals at the barrier
	// so parallel visits never touch shared counters.
	visits      int64
	ready       int
	adapts      int
	natRefusals int

	// Cumulative per-shard statistics for the coolbench imbalance
	// table (never reset).
	visitsTotal int64
	controlNs   int64
	bmRefreshes int64
	effTotal    int64
}

// maxShards bounds the shard count; far above any core count this
// engine targets, it only guards against nonsense configuration.
const maxShards = 256

// shardIndex is the stable node→shard hash. It depends only on the
// node ID and the shard count, so a node's shard is fixed for its
// whole lifetime and independent of join order, GOMAXPROCS or any
// runtime state. SplitMix64-style finalisation spreads consecutive
// IDs across shards.
func shardIndex(id, nshards int) int {
	if nshards <= 1 {
		return 0
	}
	x := uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(nshards))
}

func (w *World) newShard(idx int) *worldShard {
	sh := &worldShard{idx: idx}
	sh.wheel = sim.NewWheel(w.Engine.TickPeriod(), 512, w.Engine.Now())
	k := w.P.Layout.K
	sh.vc = vctx{
		w:        w,
		sh:       sh,
		deferred: true,
		pendPar:  make([]int, k),
		pendSet:  make([]bool, k),
	}
	return sh
}

// SetShards partitions the world into n per-core shards. Must be
// called on an empty world, before AddServer or Join — the shard of a
// node is decided at creation and never migrates. n = 1 restores the
// single-shard legacy engine (the NewWorld default).
func (w *World) SetShards(n int) error {
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		return fmt.Errorf("peer: %d shards exceeds the %d-shard cap", n, maxShards)
	}
	if len(w.nodes) > 0 || w.sessions > 0 {
		return fmt.Errorf("peer: SetShards(%d) on a populated world", n)
	}
	if w.FullSweepControl && n > 1 {
		return fmt.Errorf("peer: sharded control requires the due wheel (FullSweepControl is set)")
	}
	for len(w.shards) < n {
		w.shards = append(w.shards, w.newShard(len(w.shards)))
	}
	w.shards = w.shards[:n]
	w.nshards = n
	if cap(w.effCur) < n {
		w.effCur = make([]int, n)
	}
	return nil
}

// NumShards returns the configured world-shard count.
func (w *World) NumShards() int { return w.nshards }

// deferredOn reports whether the control phase runs as the
// deferred-effect engine (DESIGN.md §11): always with more than one
// shard, or forced at one shard by the ForceDeferredControl A/B hook.
// Requires the due wheel; with FullSweepControl set the world falls
// back to the legacy sweep.
func (w *World) deferredOn() bool {
	return (w.nshards > 1 || w.ForceDeferredControl) && w.wheelOn()
}

// shardOf returns the shard owning node n.
func (w *World) shardOf(n *Node) *worldShard { return w.shards[n.shard] }

// compactAllActive settles batched departures on every shard.
func (w *World) compactAllActive() {
	for _, sh := range w.shards {
		w.compactShard(sh)
	}
}

// compactShard drops departed IDs from one shard's active list in one
// pass.
func (w *World) compactShard(sh *worldShard) {
	if sh.activeDirty == 0 {
		return
	}
	dst := sh.active[:0]
	for _, id := range sh.active {
		if w.nodes[id].State != StateDeparted {
			dst = append(dst, id)
		}
	}
	sh.active = dst
	sh.activeDirty = 0
}

// mergedActive returns the sorted union of every shard's active list.
// With one shard it aliases the shard's own list — no copy, so the
// small-world fast path costs exactly what the pre-shard engine did.
// With several shards the rebuild is incremental per dirty shard:
// join-only changes merge just the dirty shards' appended suffixes
// onto the cached tail (node IDs are assigned monotonically, so every
// ID appended since the last merge exceeds every cached ID), and
// departures re-merge only the dirty shards' lists against the cached
// list with the dirty shards' old entries filtered out. Clean shards
// are never re-read, so a single join or depart no longer pays a full
// k-way re-merge of all shards. Callers settle departures
// (compactAllActive) before merging, as before.
func (w *World) mergedActive() []int {
	if w.nshards == 1 {
		return w.shards[0].active
	}
	if w.memberEpoch == w.mergedEpoch && w.mergedIDs != nil {
		return w.mergedIDs
	}
	if w.mergedIDs == nil || len(w.mergedShardEpochs) != len(w.shards) {
		return w.rebuildMergedFull()
	}
	dirty := w.dirtyScratch[:0]
	removed := false
	for i, sh := range w.shards {
		if sh.memberEpoch != w.mergedShardEpochs[i] {
			dirty = append(dirty, i)
			if sh.removed {
				removed = true
			}
		}
	}
	w.dirtyScratch = dirty
	if len(dirty) == 0 {
		w.mergedEpoch = w.memberEpoch
		return w.mergedIDs
	}
	cur := w.effCur[:len(dirty)]
	if !removed {
		// Append-only fast path: d-way merge of the dirty shards'
		// suffixes, appended to the cached list.
		for i, si := range dirty {
			cur[i] = w.mergedShardLens[si]
		}
		out := w.mergedIDs
		for {
			best, bestID := -1, 0
			for i, si := range dirty {
				a := w.shards[si].active
				if cur[i] < len(a) {
					if id := a[cur[i]]; best < 0 || id < bestID {
						best, bestID = i, id
					}
				}
			}
			if best < 0 {
				break
			}
			out = append(out, bestID)
			cur[best]++
		}
		w.mergedIDs = out
		w.noteMerged()
		return out
	}
	// Departure path: drop the dirty shards' old entries from the
	// cached list and two-way merge it with the d-way merge of the
	// dirty shards' (compacted) lists, into the double buffer.
	mark := w.dirtyMark
	for len(mark) < len(w.shards) {
		mark = append(mark, false)
	}
	w.dirtyMark = mark
	for _, si := range dirty {
		mark[si] = true
	}
	for i := range cur {
		cur[i] = 0
	}
	out := w.mergedScratch[:0]
	old := w.mergedIDs
	oi := 0
	for {
		for oi < len(old) && mark[w.nodes[old[oi]].shard] {
			oi++
		}
		best, bestID := -1, 0
		for i, si := range dirty {
			a := w.shards[si].active
			if cur[i] < len(a) {
				if id := a[cur[i]]; best < 0 || id < bestID {
					best, bestID = i, id
				}
			}
		}
		if oi >= len(old) && best < 0 {
			break
		}
		if best < 0 || (oi < len(old) && old[oi] < bestID) {
			out = append(out, old[oi])
			oi++
		} else {
			out = append(out, bestID)
			cur[best]++
		}
	}
	for _, si := range dirty {
		mark[si] = false
	}
	w.mergedScratch = w.mergedIDs[:0]
	w.mergedIDs = out
	w.noteMerged()
	return out
}

// rebuildMergedFull is the from-scratch k-way merge — first use and
// shard-count growth only.
func (w *World) rebuildMergedFull() []int {
	out := w.mergedIDs[:0]
	cur := w.effCur[:len(w.shards)]
	for i := range cur {
		cur[i] = 0
	}
	for {
		best, bestID := -1, 0
		for i, sh := range w.shards {
			if cur[i] < len(sh.active) {
				if id := sh.active[cur[i]]; best < 0 || id < bestID {
					best, bestID = i, id
				}
			}
		}
		if best < 0 {
			break
		}
		out = append(out, bestID)
		cur[best]++
	}
	w.mergedIDs = out
	w.noteMerged()
	return out
}

// noteMerged records the per-shard membership state the cached merge
// reflects and clears the dirty flags.
func (w *World) noteMerged() {
	for len(w.mergedShardEpochs) < len(w.shards) {
		w.mergedShardEpochs = append(w.mergedShardEpochs, 0)
	}
	for len(w.mergedShardLens) < len(w.shards) {
		w.mergedShardLens = append(w.mergedShardLens, 0)
	}
	for i, sh := range w.shards {
		w.mergedShardEpochs[i] = sh.memberEpoch
		w.mergedShardLens[i] = len(sh.active)
		sh.removed = false
	}
	w.mergedEpoch = w.memberEpoch
}

// activeView settles departures on every shard and returns the merged
// sorted active-ID list — the membership read used by snapshots,
// bulk-departure sweeps and tests.
func (w *World) activeView() []int {
	w.compactAllActive()
	return w.mergedActive()
}

// ShardStat is one shard's cumulative control-plane statistics,
// exposed for the coolbench per-shard imbalance table.
type ShardStat struct {
	Shard       int
	ActivePeers int
	Visits      int64
	ControlNs   int64
	BMRefreshes int64
	Effects     int64
}

// ShardStats returns cumulative per-shard statistics. Visit counts and
// effect totals are only populated by the deferred-effect engine; the
// legacy single-shard path accounts on the world counters instead.
func (w *World) ShardStats() []ShardStat {
	out := make([]ShardStat, len(w.shards))
	for i, sh := range w.shards {
		out[i] = ShardStat{
			Shard:       i,
			ActivePeers: sh.activePeers,
			Visits:      sh.visitsTotal,
			ControlNs:   sh.controlNs,
			BMRefreshes: sh.bmRefreshes,
			Effects:     sh.effTotal,
		}
	}
	return out
}

// PhaseNanos accumulates per-phase wall time when MeterPhases is on.
type PhaseNanos struct {
	Allocate int64
	Advance  int64
	Playback int64
	Account  int64
	Control  int64
	// Drain is the parallel half of the deferred-effect barrier: the
	// per-target-shard effect pass and the per-source-shard gossip
	// reply pass.
	Drain int64
	// Merge is the sequential tail of the deferred-effect engine:
	// record-lane flush, residue effect drain and counter folds.
	Merge int64
}

// MeterPhases enables wall-clock metering of every tick phase
// (allocate/advance/playback/account/control and, in deferred mode,
// the merge barrier). Implies MeterControl.
func (w *World) MeterPhases(on bool) {
	w.phaseClock = on
	if on {
		w.controlClock = true
	}
}

// LabelPhases wraps every tick-phase worker in a runtime/pprof label
// (phase=allocate/advance/playback/control/drain/merge) so a CPU
// profile splits by phase: `go tool pprof -tagfocus phase=advance`.
// Off by default — the label push/pop costs a context allocation per
// worker call, so it is only worth paying under -cpuprofile.
func (w *World) LabelPhases(on bool) { w.labelPhases = on }

// PhaseStats returns the accumulated per-phase wall times.
func (w *World) PhaseStats() PhaseNanos {
	p := w.Phases
	p.Control = w.ControlNanos
	return p
}
