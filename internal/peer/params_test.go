package peer

import (
	"testing"

	"coolstream/internal/buffer"
	"coolstream/internal/sim"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.Layout.K = 0 },
		func(p *Params) { p.BufferSeconds = 0 },
		func(p *Params) { p.Ts = 0 },
		func(p *Params) { p.Tp = -1 },
		func(p *Params) { p.Ta = 0 },
		func(p *Params) { p.MaxPartners = 0 },
		func(p *Params) { p.MinPartners = 0 },
		func(p *Params) { p.DesiredPartners = p.MaxPartners + 1 },
		func(p *Params) { p.BMPeriod = 0 },
		func(p *Params) { p.ReportPeriod = 0 },
		func(p *Params) { p.GossipPeriod = 0 },
		func(p *Params) { p.ReadySeconds = 0 },
		func(p *Params) { p.JoinTimeout = 0 },
		func(p *Params) { p.BootstrapCandidates = 0 },
		func(p *Params) { p.MCacheCapacity = 1 },
		func(p *Params) { p.TraversalProb = 1.5 },
		func(p *Params) { p.Allocator = "alien" },
		func(p *Params) { p.ControlLossProb = -0.5 },
		func(p *Params) { p.ParentSelection = "alien" },
	}
	for i, mutate := range mutations {
		p := DefaultParams()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestParamsDerivedBlocks(t *testing.T) {
	p := DefaultParams()
	// 120 s at 2 sub-blocks/s = 240 blocks.
	if got := p.BufferBlocks(); got != 240 {
		t.Fatalf("BufferBlocks = %d", got)
	}
	// 10 s at 2 sub-blocks/s = 20 blocks.
	if got := p.ReadyBlocks(); got != 20 {
		t.Fatalf("ReadyBlocks = %v", got)
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		StateJoining: "joining", StateSubscribing: "subscribing",
		StateReady: "ready", StateDeparted: "departed", State(9): "unknown",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestParamsLayoutConsistency(t *testing.T) {
	p := DefaultParams()
	if p.Layout.K != 4 {
		t.Fatalf("default K = %d", p.Layout.K)
	}
	if p.Layout != (buffer.Layout{K: 4, RateBps: 768e3, BlockBytes: 12000}) {
		t.Fatalf("default layout %+v", p.Layout)
	}
	if p.Ta != 20*sim.Second {
		t.Fatalf("default Ta %v", p.Ta)
	}
}
