package peer

import (
	"testing"

	"coolstream/internal/netmodel"
)

func testNode(k int) *Node {
	n := &Node{
		ID:       1,
		Partners: make(map[int]*Partner),
		Subs:     make([]Subscription, k),
		children: make([][]int, k),
	}
	for j := range n.Subs {
		n.Subs[j].Parent = NoParent
	}
	return n
}

func TestAddRemoveChildSorted(t *testing.T) {
	n := testNode(2)
	for _, c := range []int{5, 2, 9, 2, 7} {
		n.addChild(0, c)
	}
	want := []int{2, 5, 7, 9}
	got := n.Children(0)
	if len(got) != len(want) {
		t.Fatalf("children %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("children %v, want %v", got, want)
		}
	}
	n.removeChild(0, 5)
	n.removeChild(0, 100) // absent: no-op
	got = n.Children(0)
	if len(got) != 3 || got[0] != 2 || got[1] != 7 || got[2] != 9 {
		t.Fatalf("after remove: %v", got)
	}
	if n.ChildCount() != 3 {
		t.Fatalf("ChildCount = %d", n.ChildCount())
	}
}

func TestPartnerCounts(t *testing.T) {
	n := testNode(2)
	n.setPartner(4, &Partner{Outgoing: false})
	n.setPartner(2, &Partner{Outgoing: true})
	n.setPartner(3, &Partner{Outgoing: true})
	in, out := n.PartnerCounts()
	if in != 1 || out != 2 {
		t.Fatalf("in=%d out=%d", in, out)
	}
	if len(n.partnerIDs) != 3 || n.partnerIDs[0] != 2 || n.partnerIDs[1] != 3 || n.partnerIDs[2] != 4 {
		t.Fatalf("partnerIDs not sorted: %v", n.partnerIDs)
	}
	n.delPartner(3)
	n.delPartner(99) // absent: no-op
	if len(n.partnerIDs) != 2 || n.partnerIDs[0] != 2 || n.partnerIDs[1] != 4 {
		t.Fatalf("partnerIDs after delete: %v", n.partnerIDs)
	}
	n.clearPartners()
	if len(n.Partners) != 0 || len(n.partnerIDs) != 0 {
		t.Fatalf("clearPartners left state: %v %v", n.Partners, n.partnerIDs)
	}
}

func TestMinMaxH(t *testing.T) {
	n := testNode(3)
	n.Subs[0].H = 5
	n.Subs[1].H = 9
	n.Subs[2].H = 7
	if n.MaxH() != 9 || n.MinH() != 5 {
		t.Fatalf("max=%v min=%v", n.MaxH(), n.MinH())
	}
	empty := &Node{}
	if empty.MaxH() != 0 || empty.MinH() != 0 {
		t.Fatal("empty node H not zero")
	}
}

func TestBufferMapReflectsSubscriptions(t *testing.T) {
	n := testNode(2)
	n.Subs[0].H = 10.9
	n.Subs[0].Parent = 7
	n.Subs[1].H = 3.2
	bm := n.BufferMap(7)
	if bm.Latest[0] != 10 || bm.Latest[1] != 3 {
		t.Fatalf("latest %v", bm.Latest)
	}
	if !bm.Subscribed[0] || bm.Subscribed[1] {
		t.Fatalf("subscribed %v", bm.Subscribed)
	}
	// Towards someone else, nothing is subscribed.
	bm = n.BufferMap(9)
	if bm.Subscribed[0] {
		t.Fatal("subscription leaked to wrong partner")
	}
}

func TestParentStats(t *testing.T) {
	nodes := make([]*Node, 4)
	nodes[0] = testNode(2)
	nodes[0].EP.Class = netmodel.Direct
	nodes[1] = testNode(2)
	nodes[1].EP.Class = netmodel.NAT
	nodes[2] = testNode(2)
	nodes[2].EP.Class = netmodel.NAT
	// Node 2 (NAT) has parents: node 0 (direct) on sub 0, node 1 (NAT) on sub 1.
	nodes[2].Subs[0].Parent = 0
	nodes[2].Subs[1].Parent = 1
	reach, total, nat := nodes[2].parentStats(nodes)
	if reach != 1 || total != 2 || nat != 1 {
		t.Fatalf("reach=%d total=%d nat=%d", reach, total, nat)
	}
	// A direct-class child of a NAT parent is not a "random link".
	nodes[3] = testNode(2)
	nodes[3].EP.Class = netmodel.Direct
	nodes[3].Subs[0].Parent = 1
	_, _, nat = nodes[3].parentStats(nodes)
	if nat != 0 {
		t.Fatalf("direct child counted as NAT random link")
	}
}

func TestIsServerAndActive(t *testing.T) {
	n := testNode(1)
	if n.IsServer() {
		t.Fatal("plain node is server")
	}
	n.EP.Server = true
	if !n.IsServer() {
		t.Fatal("server flag ignored")
	}
	if !n.Active() {
		t.Fatal("joining node inactive")
	}
	n.State = StateDeparted
	if n.Active() {
		t.Fatal("departed node active")
	}
}
