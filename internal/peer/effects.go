package peer

import (
	"time"

	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/profiling"
	"coolstream/internal/sim"
)

// The deferred-effect engine: with more than one shard (or with the
// ForceDeferredControl A/B hook) control visits run in parallel, one
// goroutine per shard, and must not mutate any node they do not own.
// Every cross-node mutation a visit decides on — partnership teardown
// after a detected crash, a parent switch, a gossip exchange, an
// engine event, a bootstrap update, a stall abandon — is recorded as
// an *effect* in the visiting shard's outbox instead of being applied
// in place. At the tick barrier the outboxes are drained sequentially
// in the canonical (source node ID, emission seq) order.
//
// Determinism argument, in two halves:
//
//   - The effect multiset is shard-independent. A visit reads only
//     frozen global state (the pre-control fluid state, partner BMs,
//     membership as of the last sequential phase) plus its own node,
//     and every mutation that could be observed mid-phase is itself
//     deferred — so no visit can observe another visit's work, and
//     each node's visit computes the same effects whatever shard runs
//     it and whenever it runs.
//   - The drain order is a pure function of the effects. Each shard
//     visits its due nodes in ascending ID order and stamps a
//     monotone per-shard seq, so each outbox is already sorted by
//     (src, seq); a node lives on exactly one shard, so the k-way
//     head merge on (src, seq) yields one global order independent of
//     the shard partition.
//
// Effects validate at apply time against the *committed* state: the
// node a visit chose as parent may have departed in an earlier-drained
// effect, or the edge may have become cyclic. A rejected attach leaves
// the sub-stream detached and touches the node so the next tick
// retries — the same outcome the in-place path reaches when no
// eligible candidate exists.
//
// This serialization is intentionally *not* byte-identical to the
// legacy sequential sweep (which interleaves cross-node reads and
// writes within the phase); it is a second valid serialization of the
// same protocol with its own invariant digest. The ForceDeferredControl
// hook runs it at one shard so tests can pin shards=1 ≡ shards=N.
// See DESIGN.md §11.

type effectKind uint8

const (
	// effPartnerCrash: the visit detected a departed partner through a
	// failed BM exchange and dropped the partnership locally; the
	// deferred half detaches the visitor's sub-streams from the corpse
	// and cleans the corpse's child registry. a = corpse ID.
	effPartnerCrash effectKind = iota
	// effSetParent commits a subscription change decided at visit
	// time: a = sub-stream, b = new parent (NoParent detaches).
	effSetParent
	// effStartSub commits the §IV-A initial-subscription position:
	// f = start position (all H values move there); a = 1 marks the
	// Joining→Subscribing transition.
	effStartSub
	// effGossip performs the deferred gossip exchange with partner a
	// (the partner's mCache RNG draws at apply time, in canonical
	// order).
	effGossip
	// effSchedule emits a deferred engine event: a = 1 bootstrap
	// re-contact, a = 2 partnership handshake towards b after delay t
	// with reachability draw f.
	effSchedule
	// effBootUpdate refreshes the bootstrap's partner-count entry for
	// the source (a = in+out).
	effBootUpdate
	// effAbandon executes a stall-abandon departure decided at visit
	// time.
	effAbandon
	// effKill severs the partnership (src, a) — the world-sourced
	// partner kill of the fault step, routed through the same apply
	// path so fault damage is identical in both engines.
	effKill
	// effCrashDetach is the visitor-side half of a split partner
	// crash: detach the sub-streams in bitmask b (baked at emit time;
	// see the equivalence note on emitCrash) from the corpse. Target =
	// src, so the visitor's own shard commits it in the parallel
	// target pass.
	effCrashDetach
	// effCrashChildren is the corpse-side half: remove src from the
	// corpse's child registries for bitmask b and attempt the corpse
	// reclaim. a = corpse ID; target = corpse, so the corpse's shard
	// commits it — concurrent detectors of the same crash serialize on
	// that one shard in canonical order.
	effCrashChildren
)

// effect is one deferred cross-node mutation. src and seq are the
// canonical drain order; the operand fields are kind-specific.
type effect struct {
	kind effectKind
	src  int32
	seq  int32
	a, b int32
	t    sim.Time
	f    float64
}

// vctx is the context of one control visit. The sequential engine
// uses the world's seqCtx (deferred=false): every vctx helper then
// reduces to exactly the legacy in-place behaviour. Each shard owns
// one deferred vctx reused across its visits.
type vctx struct {
	w        *World
	sh       *worldShard
	deferred bool
	// node is the node being visited (the src of emitted effects).
	node *Node
	// pendPar/pendSet overlay the visited node's own deferred parent
	// changes so later steps of the same visit observe them (the
	// in-place path would); remote nodes never see the overlay.
	pendPar []int
	pendSet []bool
	pendAny bool
	// abandoned marks that the visit decided a stall-abandon; the
	// departure applies at the barrier, but the visit loop must not
	// re-arm the node.
	abandoned bool
}

// beginVisit resets the per-visit state.
func (vc *vctx) beginVisit(n *Node) {
	vc.node = n
	vc.abandoned = false
	if vc.pendAny {
		for j := range vc.pendSet {
			vc.pendSet[j] = false
		}
		vc.pendAny = false
	}
}

// parent returns sub-stream j's parent as the visit observes it: the
// committed value, shadowed by the visit's own pending changes in
// deferred mode.
func (vc *vctx) parent(n *Node, j int) int {
	if vc.deferred && vc.pendSet[j] {
		return vc.pendPar[j]
	}
	return n.Subs[j].Parent
}

// emit appends an effect from the visited node to the shard's residue
// outbox — the sequential barrier pass. Residue effects and routed
// effects share one per-shard seq counter, so the union of all queues
// a shard emits is totally ordered by (src, seq): the global canonical
// order is well defined across both drain passes and the residue.
func (vc *vctx) emit(k effectKind, a, b int32, t sim.Time, f float64) {
	sh := vc.sh
	sh.outbox = append(sh.outbox, effect{
		kind: k, src: int32(vc.node.ID), seq: sh.effSeq, a: a, b: b, t: t, f: f,
	})
	sh.effSeq++
}

// emitPar routes an effect to the shard owning its *target* node: it
// lands in outPar[target shard], and at the barrier that shard — and
// only that shard — applies it, in canonical (src, seq) order
// restricted to its own targets. Single-target effects (crash halves,
// start-sub, gossip) commit this way in parallel; everything
// multi-target stays in the sequential residue via emit.
func (vc *vctx) emitPar(target int, k effectKind, a, b int32, f float64) {
	sh := vc.sh
	ti := vc.w.nodes[target].shard
	sh.outPar[ti] = append(sh.outPar[ti], effect{
		kind: k, src: int32(vc.node.ID), seq: sh.effSeq, a: a, b: b, f: f,
	})
	sh.effSeq++
}

// emitCrash emits the two halves of a partner-crash teardown. The
// sub-stream set served by the corpse is baked into a bitmask at emit
// time rather than re-scanned at apply time; the two are equivalent
// because between emit and apply the only earlier-canonical effects
// that touch the visitor's parents are its own — refreshBMs runs
// first in the visit, so those are crash detaches with disjoint masks
// (the vc overlay already excludes previously detached sub-streams),
// and no departure can intervene before the barrier. Layouts with
// more than 31 sub-streams fall back to the legacy scan-at-apply
// residue effect.
func (vc *vctx) emitCrash(n *Node, corpse int) {
	var mask int32
	for j := range n.Subs {
		if vc.parent(n, j) == corpse {
			if j < 31 {
				mask |= 1 << uint(j)
			}
			vc.pendPar[j] = NoParent
			vc.pendSet[j] = true
			vc.pendAny = true
		}
	}
	if len(n.Subs) > 31 {
		vc.emit(effPartnerCrash, int32(corpse), 0, 0, 0)
		return
	}
	vc.emitPar(n.ID, effCrashDetach, int32(corpse), mask, 0)
	// Emitted even for an empty mask: the legacy effect always
	// attempted the corpse reclaim, and the last detector must still
	// trigger the donation.
	vc.emitPar(corpse, effCrashChildren, int32(corpse), mask, 0)
}

// setParent is the choke point for subscription changes decided inside
// a control visit (subscribe's attach, adapt's detach). The sequential
// path applies in place exactly as the pre-shard engine did; a
// deferred visit records the change in its overlay and emits an
// effSetParent for the barrier.
func (vc *vctx) setParent(n *Node, j, parent int) {
	if !vc.deferred {
		w := vc.w
		if old := n.Subs[j].Parent; old != NoParent && old != parent {
			w.nodes[old].removeChild(j, n.ID)
			w.reclaimCorpseChildren(w.nodes[old])
		}
		n.Subs[j].Parent = parent
		n.Subs[j].RateBps = 0
		if parent != NoParent {
			w.nodes[parent].addChild(j, n.ID)
		}
		return
	}
	vc.pendPar[j] = parent
	vc.pendSet[j] = true
	vc.pendAny = true
	vc.emit(effSetParent, int32(j), int32(parent), 0, 0)
}

// parentStats is Node.parentStats through the visit overlay.
func (vc *vctx) parentStats(n *Node) (reachable, total, natLinks int) {
	nodes := vc.w.nodes
	for j := range n.Subs {
		pid := vc.parent(n, j)
		if pid == NoParent {
			continue
		}
		total++
		p := nodes[pid]
		if p.EP.Class.Reachable() {
			reachable++
		} else if !n.EP.Class.Reachable() {
			natLinks++
		}
	}
	return
}

// vlog emits a control-phase record: straight to the sink on the
// sequential path, into the shard's record lane in deferred mode. The
// lanes are flushed at the barrier in ascending peer-ID order — the
// order the sequential sweep emits.
func (w *World) vlog(vc *vctx, n *Node, rec logsys.Record) {
	if !vc.deferred {
		w.log(n, rec)
		return
	}
	if n.IsServer() {
		return
	}
	w.fill(n, &rec)
	vc.sh.recBuf = append(vc.sh.recBuf, rec)
}

// drainEffects applies every shard outbox in canonical (src, seq)
// order via a k-way head merge (each outbox is already sorted; a node
// lives on exactly one shard, so src never ties across shards).
func (w *World) drainEffects(now sim.Time) {
	cur := w.effCur[:len(w.shards)]
	for i := range cur {
		cur[i] = 0
	}
	for {
		best := -1
		var bk effect
		for i, sh := range w.shards {
			if cur[i] < len(sh.outbox) {
				if e := sh.outbox[cur[i]]; best < 0 || e.src < bk.src ||
					(e.src == bk.src && e.seq < bk.seq) {
					best, bk = i, e
				}
			}
		}
		if best < 0 {
			break
		}
		cur[best]++
		w.applyEffect(bk, now)
	}
	for _, sh := range w.shards {
		sh.effTotal += int64(len(sh.outbox))
		sh.outbox = sh.outbox[:0]
		for i := range sh.outPar {
			sh.effTotal += int64(len(sh.outPar[i]))
			sh.outPar[i] = sh.outPar[i][:0]
		}
		for i := range sh.gossipOut {
			sh.gossipOut[i] = sh.gossipOut[i][:0]
		}
		sh.effSeq = 0
	}
}

// gossipSampleN is the §III-C partner-sample size of one gossip
// exchange (the legacy literal 4 in the in-place path).
const gossipSampleN = 4

// gossipReply carries the sampled entries of one deferred gossip
// exchange from the partner's shard (which owns the partner's mCache
// and its RNG stream) back to the source's shard, which inserts them
// into the source's mCache in the second drain pass. The entries are
// copied out immediately because MCache.Sample returns scratch that
// the next Sample on the same cache reuses.
type gossipReply struct {
	src, seq int32
	n        int32
	ents     [gossipSampleN]gossip.Entry
}

// growDrainScratch sizes the per-shard routing queues to the current
// shard count. Called at the top of controlSharded so late SetShards
// calls (and the ForceDeferredControl one-shard bridge) are covered.
func (w *World) growDrainScratch() {
	ns := len(w.shards)
	for _, sh := range w.shards {
		for len(sh.outPar) < ns {
			sh.outPar = append(sh.outPar, nil)
		}
		for len(sh.gossipOut) < ns {
			sh.gossipOut = append(sh.gossipOut, nil)
		}
		for len(sh.mergeCur) < ns {
			sh.mergeCur = append(sh.mergeCur, 0)
		}
	}
}

// drainTargetRange is the first parallel drain pass: each target shard
// k-way-merges the routed queues outPar[self] of every emitting shard
// by (src, seq) and applies them. Every effect here mutates only nodes
// owned by the applying shard (plus the shared topo epochs, which are
// atomic), so the passes over disjoint target shards commute; within
// one target the apply order is the global canonical order restricted
// to that target, which is what makes the result independent of the
// shard partition.
func (w *World) drainTargetRange(lo, hi int) {
	if w.labelPhases {
		profiling.WithLabel("drain", func() { w.drainTargets(lo, hi) })
		return
	}
	w.drainTargets(lo, hi)
}

func (w *World) drainTargets(lo, hi int) {
	now := w.tickNow
	for ti := lo; ti < hi; ti++ {
		t := w.shards[ti]
		cur := t.mergeCur[:len(w.shards)]
		for i := range cur {
			cur[i] = 0
		}
		for {
			best := -1
			var bk effect
			for i, sh := range w.shards {
				q := sh.outPar[ti]
				if cur[i] < len(q) {
					if e := q[cur[i]]; best < 0 || e.src < bk.src ||
						(e.src == bk.src && e.seq < bk.seq) {
						best, bk = i, e
					}
				}
			}
			if best < 0 {
				break
			}
			cur[best]++
			w.applyTargetEffect(t, bk, now)
		}
	}
}

// drainSourceRange is the second parallel drain pass: each source
// shard k-way-merges the gossip replies addressed to it (filled by the
// target pass) by (src, seq) and inserts the sampled entries into its
// own nodes' mCaches. Each reply queue is produced in target-pass
// apply order — canonical order restricted to that target shard — so
// restricting further to one source shard keeps it (src, seq)-sorted
// and the merge again lands on the canonical restriction.
func (w *World) drainSourceRange(lo, hi int) {
	if w.labelPhases {
		profiling.WithLabel("drain", func() { w.drainSources(lo, hi) })
		return
	}
	w.drainSources(lo, hi)
}

func (w *World) drainSources(lo, hi int) {
	now := w.tickNow
	for si := lo; si < hi; si++ {
		s := w.shards[si]
		cur := s.mergeCur[:len(w.shards)]
		for i := range cur {
			cur[i] = 0
		}
		for {
			best := -1
			var bk *gossipReply
			for i, sh := range w.shards {
				q := sh.gossipOut[si]
				if cur[i] < len(q) {
					if r := &q[cur[i]]; bk == nil || r.src < bk.src ||
						(r.src == bk.src && r.seq < bk.seq) {
						best, bk = i, r
					}
				}
			}
			if best < 0 {
				break
			}
			cur[best]++
			n := w.nodes[bk.src]
			if n.MCache != nil {
				for i := int32(0); i < bk.n; i++ {
					n.MCache.Insert(bk.ents[i], now)
				}
			}
		}
	}
}

// applyTargetEffect commits one routed effect on its target's shard.
// Unlike the residue path there are no departed-state re-checks: no
// departure can happen between the visit phase and the drain (the
// fault step precedes control, stall abandons commit in the residue
// after this pass, and engine-driven departs fire outside the tick),
// so the liveness the emitting visit saw still holds — dropping the
// checks here is deterministic, not an optimization gamble.
func (w *World) applyTargetEffect(t *worldShard, e effect, now sim.Time) {
	if w.drainLogOn {
		t.drainLog = append(t.drainLog, [2]int32{e.src, e.seq})
	}
	switch e.kind {
	case effCrashDetach:
		n := w.nodes[e.src]
		for j := 0; e.b>>uint(j) != 0; j++ {
			if e.b&(1<<uint(j)) != 0 {
				n.Subs[j].Parent = NoParent
				n.Subs[j].RateBps = 0
			}
		}
	case effCrashChildren:
		corpse := w.nodes[e.a]
		for j := 0; e.b>>uint(j) != 0; j++ {
			if e.b&(1<<uint(j)) != 0 {
				corpse.removeChild(j, int(e.src))
			}
		}
		w.reclaimCorpseChildren(corpse)
	case effStartSub:
		n := w.nodes[e.src]
		if n.State != StateJoining {
			return
		}
		n.startPos = e.f
		for j := range n.Subs {
			n.Subs[j].H = e.f
		}
		if e.a != 0 {
			n.State = StateSubscribing
			n.StartSubAt = now
		}
	case effGossip:
		src := w.nodes[e.src]
		partner := w.nodes[e.a]
		if src.MCache == nil || partner.MCache == nil {
			return
		}
		r := gossipReply{src: e.src, seq: e.seq}
		for _, en := range partner.MCache.Sample(gossipSampleN, int(e.src), nil) {
			r.ents[r.n] = en
			r.n++
		}
		si := int(src.shard)
		t.gossipOut[si] = append(t.gossipOut[si], r)
		partner.MCache.Insert(w.bootEntry(src), now)
	}
}

// flushShardRecords merges the per-shard record lanes into the sink in
// ascending peer-ID order. Each lane is already in visit order (one
// node's records contiguous, node IDs ascending within a shard), so a
// head merge on peer ID that copies each node's run whole restores the
// sequential sweep's emission order.
func (w *World) flushShardRecords() {
	cur := w.effCur[:len(w.shards)]
	for i := range cur {
		cur[i] = 0
	}
	for {
		best, bestPeer := -1, 0
		for i, sh := range w.shards {
			if cur[i] < len(sh.recBuf) {
				if p := sh.recBuf[cur[i]].Peer; best < 0 || p < bestPeer {
					best, bestPeer = i, p
				}
			}
		}
		if best < 0 {
			break
		}
		sh := w.shards[best]
		for cur[best] < len(sh.recBuf) && sh.recBuf[cur[best]].Peer == bestPeer {
			w.Sink.Log(sh.recBuf[cur[best]])
			cur[best]++
		}
	}
	for _, sh := range w.shards {
		sh.recBuf = sh.recBuf[:0]
	}
}

// applyEffect commits one effect against the committed world state.
// Every case re-checks the liveness preconditions the emitting visit
// could only establish against frozen state: an earlier-drained effect
// may have departed either end.
func (w *World) applyEffect(e effect, now sim.Time) {
	switch e.kind {
	case effPartnerCrash:
		n := w.nodes[e.src]
		if n.State == StateDeparted {
			return
		}
		corpse := w.nodes[e.a]
		for j := range n.Subs {
			if n.Subs[j].Parent == int(e.a) {
				corpse.removeChild(j, n.ID)
				n.Subs[j].Parent = NoParent
				n.Subs[j].RateBps = 0
			}
		}
		w.reclaimCorpseChildren(corpse)
	case effSetParent:
		w.applySetParent(w.nodes[e.src], int(e.a), int(e.b))
	case effStartSub:
		n := w.nodes[e.src]
		if n.State != StateJoining {
			return
		}
		n.startPos = e.f
		for j := range n.Subs {
			n.Subs[j].H = e.f
		}
		if e.a != 0 {
			n.State = StateSubscribing
			n.StartSubAt = now
		}
	case effGossip:
		n := w.nodes[e.src]
		partner := w.nodes[e.a]
		if n.State == StateDeparted || partner.State == StateDeparted ||
			n.MCache == nil || partner.MCache == nil {
			return
		}
		for _, en := range partner.MCache.Sample(4, n.ID, nil) {
			n.MCache.Insert(en, now)
		}
		partner.MCache.Insert(w.bootEntry(n), now)
	case effSchedule:
		switch e.a {
		case 1:
			w.Engine.AfterCall(e.t, w.bootstrapFn, sim.EvPayload{A: int(e.src)})
		case 2:
			w.Engine.AfterCall(e.t, w.partnershipFn,
				sim.EvPayload{A: int(e.src), B: int(e.b), F: e.f})
		}
	case effBootUpdate:
		w.Boot.UpdatePartnerCount(int(e.src), int(e.a))
	case effAbandon:
		n := w.nodes[e.src]
		if n.State == StateReady {
			w.abandonAndRejoin(n)
		}
	case effKill:
		// Applied synchronously from the sequential fault phase, never
		// queued, so no liveness re-check: the kill hits whatever the
		// draw selected — including a silently-crashed partner still in
		// the victim's partner set, exactly as a broken TCP link would.
		w.severPartnership(w.nodes[e.src], w.nodes[e.a])
	}
}

// applySetParent commits a deferred subscription change, re-validating
// against the committed forest what the visit judged against frozen
// state: the chosen parent may since have departed, or an
// earlier-drained switch may make the edge cyclic. A rejected attach
// leaves the sub-stream detached — the same outcome the in-place path
// reaches when no eligible candidate exists — and touches the node so
// the next tick's visit retries.
func (w *World) applySetParent(n *Node, j, parent int) {
	if n.State == StateDeparted {
		return
	}
	old := n.Subs[j].Parent
	if old == parent {
		return
	}
	if old != NoParent {
		w.nodes[old].removeChild(j, n.ID)
		w.reclaimCorpseChildren(w.nodes[old])
	}
	n.Subs[j].Parent = NoParent
	n.Subs[j].RateBps = 0
	if parent == NoParent {
		return
	}
	p := w.nodes[parent]
	if p.State == StateDeparted || w.wouldCycle(n, j, parent) {
		w.touchNode(n.ID)
		return
	}
	n.Subs[j].Parent = parent
	p.addChild(j, n.ID)
}

// controlSharded is the deferred-effect control phase. Four stages:
//
//  1. sequential: route the playback phase's Inequality (1) flag
//     lists to their owner shards and drain every shard's wheel into
//     a sorted, deduplicated due list;
//  2. parallel: each shard visits its due nodes with its own visit
//     context — all cross-node mutations become effects;
//  3. parallel barrier: the target pass commits each shard's routed
//     inbox (crash halves, start-subs, gossip samples) and the source
//     pass commits the gossip replies — metered as Drain;
//  4. sequential barrier: flush the record lanes, drain the residue
//     outboxes in canonical (src, seq) order, fold the counters —
//     metered as Merge, the tick's true sequential tail.
func (w *World) controlSharded(now sim.Time) {
	w.growDrainScratch()
	if w.nshards > 1 {
		// Shard-local playback already partitioned the flag lists by
		// owner shard: route with one append per shard instead of a
		// per-ID shard lookup.
		for si := 0; si < w.nshards && si < len(w.advFlagShards); si++ {
			sh := w.shards[si]
			sh.wheelBuf = append(sh.wheelBuf, w.advFlagShards[si]...)
		}
	} else {
		for _, flagged := range w.advFlagShards {
			for _, id := range flagged {
				sh := w.shards[w.nodes[id].shard]
				sh.wheelBuf = append(sh.wheelBuf, id)
			}
		}
	}
	for _, sh := range w.shards {
		buf := sh.wheel.DrainTo(now, sh.wheelBuf)
		sortInt32(buf)
		due := sh.dueIDs[:0]
		prev := int32(-1)
		for _, id := range buf {
			if id != prev {
				due = append(due, id)
				prev = id
			}
		}
		sh.dueIDs = due
		sh.wheelBuf = buf[:0]
	}
	w.tickNow = now
	sim.ParallelGrain(len(w.shards), 1, w.shardVisitFn)
	if w.testBarrierHook != nil {
		w.testBarrierHook()
	}
	var t0 time.Time
	if w.phaseClock {
		t0 = time.Now()
	}
	sim.ParallelGrain(len(w.shards), 1, w.drainTargetFn)
	sim.ParallelGrain(len(w.shards), 1, w.drainSourceFn)
	if w.phaseClock {
		w.Phases.Drain += time.Since(t0).Nanoseconds()
		t0 = time.Now()
	}
	if w.labelPhases {
		profiling.WithLabel("merge", func() { w.mergeBarrier(now) })
	} else {
		w.mergeBarrier(now)
	}
	if w.phaseClock {
		w.Phases.Merge += time.Since(t0).Nanoseconds()
	}
}

// mergeBarrier is the sequential tail of the sharded tick: record-lane
// flush, residue effect drain, counter folds.
func (w *World) mergeBarrier(now sim.Time) {
	w.flushShardRecords()
	w.drainEffects(now)
	for _, sh := range w.shards {
		w.ControlVisits += sh.visits
		sh.visitsTotal += sh.visits
		sh.visits = 0
		w.ReadySessions += sh.ready
		sh.ready = 0
		w.Adaptations += sh.adapts
		sh.adapts = 0
		if w.Faults != nil {
			w.Faults.Stats.NATRefusals += sh.natRefusals
		}
		sh.natRefusals = 0
	}
}

// shardVisitRange is the parallel stage of controlSharded: shards
// [lo, hi) visit their due nodes. Bound once as shardVisitFn so the
// steady-state tick allocates no closures.
func (w *World) shardVisitRange(lo, hi int) {
	if w.labelPhases {
		profiling.WithLabel("control", func() { w.shardVisits(lo, hi) })
		return
	}
	w.shardVisits(lo, hi)
}

func (w *World) shardVisits(lo, hi int) {
	now := w.tickNow
	for si := lo; si < hi; si++ {
		sh := w.shards[si]
		var t0 time.Time
		if w.controlClock {
			t0 = time.Now()
		}
		vc := &sh.vc
		for _, id32 := range sh.dueIDs {
			n := w.nodes[id32]
			n.wheelAt = 0
			if n.State == StateDeparted || n.IsServer() {
				continue
			}
			w.controlVisit(vc, n, now)
			if !vc.abandoned {
				w.wheelSchedule(sh, n, w.nextControlDue(vc, n, now))
			}
		}
		if w.controlClock {
			sh.controlNs += time.Since(t0).Nanoseconds()
		}
	}
}
