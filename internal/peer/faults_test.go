package peer

import (
	"runtime"
	"testing"

	"coolstream/internal/faults"
	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// faultScenario runs the digest scenario's churn pattern with a fault
// schedule and retry backoff installed, returning the digest, the
// fault firing counters, and the world for ad-hoc assertions.
func faultScenario(t *testing.T) (uint64, faults.Stats, *World) {
	t.Helper()
	p := DefaultParams()
	p.ReportPeriod = 30 * sim.Second
	engine := sim.NewEngine(sim.Second)
	sink := &logsys.MemorySink{}
	w, err := NewWorld(p, engine, sink, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, 4242)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := faults.NewSchedule(faults.Config{
		TrackerOutages:  []faults.Window{{Start: 60 * sim.Second, End: 100 * sim.Second}},
		NATRefusalProb:  0.3,
		PartnerKillRate: 0.5,
		BurstLoss: []faults.LossWindow{
			{Window: faults.Window{Start: 2 * sim.Minute, End: 150 * sim.Second}, Frac: 0.6},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Faults = sch
	w.Retry = faults.Backoff{Base: 2 * sim.Second, Cap: 20 * sim.Second, JitterFrac: 0.5}
	w.AddServer(15 * testRate)
	w.AddServer(15 * testRate)
	engine.Run(30 * sim.Second)
	prof := netmodel.DefaultCapacityProfile(testRate)
	rng := w.rng.SplitLabeled("digest")
	for i := 0; i < 80; i++ {
		i := i
		at := 30*sim.Second + sim.Time(i%40)*2*sim.Second
		engine.Schedule(at, func() {
			class := netmodel.UserClass(i % 4)
			watch := sim.Time(30+(i*13)%200) * sim.Second
			w.Join(600+i, prof.Draw(class, rng), watch, 1, 0)
		})
	}
	engine.Run(4 * sim.Minute)
	w.DepartAllPeers("program-end")
	engine.Run(engine.Now() + 10*sim.Second)
	return worldDigest(w, sink.Records()), sch.Stats, w
}

// TestFaultyRunsAreReproducible pins the tentpole contract: with every
// fault class firing (tracker outage, NAT refusals, partner kills,
// burst loss) plus backoff retries, two same-seed runs must agree
// bit-for-bit, including the fault firing counters, at different
// GOMAXPROCS settings.
func TestFaultyRunsAreReproducible(t *testing.T) {
	orig := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(orig)
	a, sa, _ := faultScenario(t)
	runtime.GOMAXPROCS(8)
	b, sb, _ := faultScenario(t)
	if a != b {
		t.Fatalf("same-seed faulty runs diverged across GOMAXPROCS: %#x vs %#x", a, b)
	}
	if sa != sb {
		t.Fatalf("fault firing counters diverged: %+v vs %+v", sa, sb)
	}
	t.Logf("faulty digest %#x, stats %+v", a, sa)
}

// TestFaultsActuallyFire guards against a silently inert schedule: the
// scenario is sized so every configured fault class fires at least once.
func TestFaultsActuallyFire(t *testing.T) {
	_, stats, w := faultScenario(t)
	if stats.TrackerRefusals == 0 {
		t.Error("tracker outage never refused a bootstrap contact")
	}
	if stats.NATRefusals == 0 {
		t.Error("NAT refusal never fired")
	}
	if stats.PartnerKills == 0 {
		t.Error("partner kill never fired")
	}
	if w.ReadySessions == 0 {
		t.Error("no session reached media-ready under faults; scenario degenerate")
	}
}

// TestBackoffChangesOnlyRetryTiming checks the gating contract from
// the other side: installing a Retry policy alone (no fault schedule)
// must not perturb any RNG stream — only the retry/rejoin *timing*
// may move. The digest necessarily changes (retry timestamps are
// logged), but the run must stay internally reproducible.
func TestBackoffChangesOnlyRetryTiming(t *testing.T) {
	run := func() uint64 {
		p := DefaultParams()
		p.ReportPeriod = 30 * sim.Second
		engine := sim.NewEngine(sim.Second)
		sink := &logsys.MemorySink{}
		w, err := NewWorld(p, engine, sink, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
			gossip.RandomReplace{}, 777)
		if err != nil {
			t.Fatal(err)
		}
		w.Retry = faults.Backoff{Base: sim.Second, Cap: 8 * sim.Second, JitterFrac: 0.5}
		w.AddServer(15 * testRate)
		engine.Run(10 * sim.Second)
		prof := netmodel.DefaultCapacityProfile(testRate)
		rng := w.rng.SplitLabeled("digest")
		for i := 0; i < 20; i++ {
			i := i
			engine.Schedule(10*sim.Second+sim.Time(i)*sim.Second, func() {
				w.Join(100+i, prof.Draw(netmodel.UserClass(i%4), rng), 2*sim.Minute, 2, 0)
			})
		}
		engine.Run(3 * sim.Minute)
		return worldDigest(w, sink.Records())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("backoff-only runs diverged: %#x vs %#x", a, b)
	}
}
