package peer

import (
	"testing"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// TestInequality2SwitchesFromLaggingParent builds the exact situation
// Inequality (2) monitors: the node's parent serves all sub-streams
// evenly (so the node's own deviation stays under Ts and Inequality
// (1) never fires), but the parent itself keeps falling behind what
// other partners advertise, because its own downlink cannot sustain
// the stream. The child must abandon the lagging parent.
func TestInequality2SwitchesFromLaggingParent(t *testing.T) {
	w, engine, _ := testWorld(t, 41)
	w.StallAbandonProb = 0 // keep lagging nodes in place for the test
	srv := w.AddServer(20 * testRate)
	engine.Run(30 * sim.Second)
	// The laggard has a strong uplink (a tempting parent) but only
	// half the stream rate of downlink: it falls behind the live edge
	// at ~1 block/s per sub-stream, forever.
	laggard := w.Join(100, ep(netmodel.Direct, 4, 0.5), 20*sim.Minute, 0, 0)
	child := w.Join(101, ep(netmodel.Direct, 1, 4), 20*sim.Minute, 0, 0)
	engine.Run(70 * sim.Second)
	if laggard.State != StateReady || child.State != StateReady {
		t.Fatalf("setup: laggard=%v child=%v", laggard.State, child.State)
	}
	// Rewire the child fully under the laggard, keeping the server as
	// a partner so bestPartnerH tracks the live edge.
	now := engine.Now()
	if _, ok := child.Partners[laggard.ID]; !ok {
		child.setPartner(laggard.ID, &Partner{Outgoing: true, BM: laggard.BufferMap(child.ID), BMAt: now, EstablishedAt: now})
		laggard.setPartner(child.ID, &Partner{Outgoing: false, BM: child.BufferMap(laggard.ID), BMAt: now, EstablishedAt: now})
	}
	if _, ok := child.Partners[srv.ID]; !ok {
		child.setPartner(srv.ID, &Partner{Outgoing: true, BM: srv.BufferMap(child.ID), BMAt: now, EstablishedAt: now})
		srv.setPartner(child.ID, &Partner{Outgoing: false, BM: child.BufferMap(srv.ID), BMAt: now, EstablishedAt: now})
	}
	for j := range child.Subs {
		if old := child.Subs[j].Parent; old != NoParent {
			w.Node(old).removeChild(j, child.ID)
		}
		child.Subs[j].Parent = laggard.ID
		child.Subs[j].RateBps = 0
		laggard.addChild(j, child.ID)
	}
	// Sanity: the laggard is genuinely behind the live edge and falling
	// further back.
	gapBefore := w.liveEdge(engine.Now()) - laggard.MaxH()
	engine.Run(engine.Now() + 30*sim.Second)
	gapAfter := w.liveEdge(engine.Now()) - laggard.MaxH()
	if gapAfter <= gapBefore {
		t.Fatalf("laggard not lagging: gap %.1f -> %.1f", gapBefore, gapAfter)
	}
	// Inequality (2) (best partner H − parent H ≥ Tp) must pull the
	// child's sub-streams off the laggard, one per cool-down period.
	engine.Run(engine.Now() + 2*sim.Minute)
	for j := range child.Subs {
		if child.Subs[j].Parent == laggard.ID {
			t.Fatalf("sub-stream %d still under the lagging parent (laggard gap %.0f blocks)",
				j, w.liveEdge(engine.Now())-laggard.MaxH())
		}
	}
	// And the child recovers towards the live edge.
	engine.Run(engine.Now() + sim.Minute)
	live := w.liveEdge(engine.Now())
	if live-child.MinH() > float64(w.P.Tp)+10 {
		t.Fatalf("child never recovered: minH %.0f vs live %.0f", child.MinH(), live)
	}
}
