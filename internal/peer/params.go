// Package peer implements the Coolstreaming node — membership manager,
// partnership manager and stream manager (Fig. 1 of the paper) — and
// the World that advances a population of such nodes over the hybrid
// fluid/event simulator.
//
// Stream transfer is fluid: each (child, sub-stream) subscription has a
// piecewise-linear progress value H (the per-sub-stream sequence number
// of the latest received block, exactly the H of the paper's §IV), and
// the parent's upload capacity is divided among its transmissions by a
// water-filling allocator generalising Eq. (5). Control actions — BM
// exchange, the adaptation Inequalities (1) and (2), parent
// re-selection under the cool-down timer T_a, join/leave — happen at
// discrete ticks and events.
package peer

import (
	"fmt"

	"coolstream/internal/buffer"
	"coolstream/internal/sim"
)

// Params collects the protocol and system parameters (Table I plus the
// deployment constants of §V-A).
type Params struct {
	// Layout fixes R, K and the block size.
	Layout buffer.Layout

	// BufferSeconds is B, the buffer length in seconds of stream.
	BufferSeconds float64
	// Ts is the out-of-synchronisation threshold in per-sub-stream
	// blocks: the largest tolerated deviation between sub-streams
	// (Inequality (1)).
	Ts int64
	// Tp is the partner-lag threshold in per-sub-stream blocks
	// (Inequality (2)); the join position is shifted back by Tp from
	// the newest block visible at partners (§IV-A).
	Tp int64
	// Ta is the adaptation cool-down period: a node re-selects a parent
	// at most once per Ta.
	Ta sim.Time

	// MaxPartners is M, the partner bound for ordinary peers.
	MaxPartners int
	// MaxServerPartners is the partner bound for dedicated servers.
	MaxServerPartners int
	// MinPartners is the partnership level below which a node actively
	// recruits replacements.
	MinPartners int
	// DesiredPartners is the recruiting target.
	DesiredPartners int

	// BMPeriod is the buffer-map exchange period between partners; a
	// node sees partner state at this staleness.
	BMPeriod sim.Time
	// GossipPeriod is the membership-exchange period for mCache
	// refresh between partners.
	GossipPeriod sim.Time
	// ReportPeriod is the status-report period (5 minutes deployed).
	ReportPeriod sim.Time

	// ReadySeconds is the contiguous buffer (seconds of stream) needed
	// before the media player starts.
	ReadySeconds float64
	// JoinTimeout aborts a session that has not reached media-ready.
	JoinTimeout sim.Time
	// RetryDelay is the pause before a failed session rejoins.
	RetryDelay sim.Time

	// BootstrapCandidates is the list size handed out at join.
	BootstrapCandidates int
	// MCacheCapacity bounds the per-node membership cache.
	MCacheCapacity int

	// BootstrapRTT is the join round-trip to the bootstrap node.
	BootstrapRTT sim.Time

	// TraversalProb is the NAT-to-NAT hole-punching success rate.
	TraversalProb float64

	// Allocator selects how a parent divides upload capacity among its
	// sub-stream transmissions: "waterfill" (default; need-aware
	// max-min fairness) or "equalsplit" (the paper's literal Eq. (5):
	// capacity/D regardless of need). The ablation experiment E13
	// compares them.
	Allocator string

	// ControlLossProb injects control-plane unreliability: each
	// partnership handshake is lost with this probability, and each
	// due buffer-map refresh is skipped with it (the partner's view
	// stays stale one more period). Robustness experiment E16.
	ControlLossProb float64

	// ParentSelection picks among eligible partners when subscribing a
	// sub-stream: "random" (the paper's randomized choice — its
	// headline scaling claim) or "freshest" (greedy: the partner
	// advertising the highest sequence number). Ablation E18 tests the
	// claim that randomness avoids pile-ups on the freshest peers.
	ParentSelection string
}

// DefaultParams returns the Table I configuration used throughout the
// experiments: 768 kbps (the paper's §V-A TV-quality rate), K = 4,
// 12 kB blocks (2 blocks/s per sub-stream).
func DefaultParams() Params {
	return Params{
		Layout:              buffer.Layout{K: 4, RateBps: 768e3, BlockBytes: 12000},
		BufferSeconds:       120,
		Ts:                  20, // 10 s of stream
		Tp:                  40, // 20 s of stream
		Ta:                  20 * sim.Second,
		MaxPartners:         8,
		MaxServerPartners:   200,
		MinPartners:         2,
		DesiredPartners:     5,
		BMPeriod:            5 * sim.Second,
		GossipPeriod:        15 * sim.Second,
		ReportPeriod:        5 * sim.Minute,
		ReadySeconds:        10,
		JoinTimeout:         60 * sim.Second,
		RetryDelay:          3 * sim.Second,
		BootstrapCandidates: 20,
		MCacheCapacity:      60,
		BootstrapRTT:        200 * sim.Millisecond,
		TraversalProb:       0.05,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if err := p.Layout.Validate(); err != nil {
		return err
	}
	if p.BufferSeconds <= 0 {
		return fmt.Errorf("peer: BufferSeconds = %v", p.BufferSeconds)
	}
	if p.Ts <= 0 || p.Tp <= 0 {
		return fmt.Errorf("peer: thresholds Ts=%d Tp=%d must be positive", p.Ts, p.Tp)
	}
	if p.Ta <= 0 {
		return fmt.Errorf("peer: Ta = %v", p.Ta)
	}
	if p.MaxPartners < 1 || p.MaxServerPartners < 1 {
		return fmt.Errorf("peer: partner bounds %d/%d", p.MaxPartners, p.MaxServerPartners)
	}
	if p.MinPartners < 1 || p.DesiredPartners < p.MinPartners || p.DesiredPartners > p.MaxPartners {
		return fmt.Errorf("peer: partner targets min=%d desired=%d max=%d",
			p.MinPartners, p.DesiredPartners, p.MaxPartners)
	}
	if p.BMPeriod <= 0 || p.ReportPeriod <= 0 || p.GossipPeriod <= 0 {
		return fmt.Errorf("peer: periods must be positive")
	}
	if p.ReadySeconds <= 0 || p.JoinTimeout <= 0 {
		return fmt.Errorf("peer: startup parameters must be positive")
	}
	if p.BootstrapCandidates < 1 || p.MCacheCapacity < p.BootstrapCandidates {
		return fmt.Errorf("peer: mCache %d must hold bootstrap list %d",
			p.MCacheCapacity, p.BootstrapCandidates)
	}
	if p.TraversalProb < 0 || p.TraversalProb > 1 {
		return fmt.Errorf("peer: TraversalProb = %v", p.TraversalProb)
	}
	switch p.Allocator {
	case "", "waterfill", "equalsplit":
	default:
		return fmt.Errorf("peer: unknown allocator %q", p.Allocator)
	}
	if p.ControlLossProb < 0 || p.ControlLossProb > 1 {
		return fmt.Errorf("peer: ControlLossProb = %v", p.ControlLossProb)
	}
	switch p.ParentSelection {
	case "", "random", "freshest":
	default:
		return fmt.Errorf("peer: unknown parent selection %q", p.ParentSelection)
	}
	return nil
}

// EqualSplitAllocator reports whether the literal Eq. (5) allocator is
// selected.
func (p Params) EqualSplitAllocator() bool { return p.Allocator == "equalsplit" }

// BufferBlocks returns B in per-sub-stream blocks.
func (p Params) BufferBlocks() int64 {
	return int64(p.Layout.SecondsToSeq(p.BufferSeconds))
}

// ReadyBlocks returns the startup threshold in per-sub-stream blocks.
func (p Params) ReadyBlocks() float64 {
	return p.Layout.SecondsToSeq(p.ReadySeconds)
}
