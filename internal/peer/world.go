package peer

import (
	"fmt"
	"sort"

	"coolstream/internal/faults"
	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

// World owns the full overlay population and advances it on the
// simulation engine: the source/server tier, every peer node, the
// bootstrap, and the log sink. It is the composition root of the
// Coolstreaming system.
type World struct {
	P       Params
	Engine  *sim.Engine
	Sink    logsys.Sink
	Boot    *gossip.Bootstrap
	Latency netmodel.LatencyModel
	Reach   netmodel.Reachability
	Policy  gossip.Policy

	rng      *xrand.RNG
	nodes    []*Node
	active   []int // sorted IDs of active nodes (servers included)
	servers  []int // IDs of the server tier, in creation order (never departs)
	sessions int

	// Faults is the injected fault schedule (nil = fault-free). All
	// probabilistic fault draws happen in sequential phases (events,
	// control, the per-tick fault step), so fault firings are part of
	// the deterministic run and fold into the run digest.
	Faults *faults.Schedule
	// Retry is the capped-exponential join/re-contact backoff with
	// deterministic jitter; the zero value keeps the legacy fixed
	// Params.RetryDelay.
	Retry faults.Backoff
	// faultRNG drives the world-level fault draws (partner kills) on
	// its own labeled stream so enabling faults never perturbs node or
	// scenario streams.
	faultRNG *xrand.RNG
	// retrySalt folds the run seed into the deterministic retry jitter.
	retrySalt uint64
	// killScratch is the candidate buffer of the partner-kill step.
	killScratch []int

	// topo caches the flattened per-sub-stream traversal orders the
	// advance phase sweeps; see topo.go for the epoch contract.
	topo *topoCache

	// sharded is non-nil when the configured sink is a
	// logsys.ShardedSink; parallel phases then log straight into
	// per-shard lanes (laneSinks, grown sequentially in tick) instead
	// of deferring records to the sequential control phase. With any
	// other sink the legacy deferral path keeps the record stream
	// deterministic (e.g. through a BufferedSink's outage queue, whose
	// drop decisions depend on arrival order).
	sharded   *logsys.ShardedSink
	laneSinks []*logsys.Lane

	// Persistent per-phase shard functions and per-tick scratch: the
	// parallel phases hand the same closures to the worker pool every
	// tick, so steady-state ticks allocate nothing.
	allocateFn func(lo, hi int)
	advanceFn  func(lo, hi int)
	playbackFn func(shard, lo, hi int)
	tickIDs    []int
	controlIDs []int
	tickDt     float64
	tickLive   float64
	// tickLoss is this tick's burst-loss fraction, staged once per tick
	// from the fault schedule so the parallel advance shards read a
	// plain float. Zero whenever faults are off or no window is active.
	tickLoss float64

	// leaveEv and timeoutEv track cancellable per-node events.
	leaveEv   map[int]*sim.Event
	timeoutEv map[int]*sim.Event

	// StallContinuity/StallAbandonProb model frustrated users: a Ready
	// node whose report-interval continuity falls below the threshold
	// departs and re-enters with the given probability (the paper's
	// churn-driven depart-and-rejoin behaviour, §V-D).
	StallContinuity  float64
	StallAbandonProb float64
	// CrashProb is the probability that a user-initiated departure is
	// ungraceful (no TCP teardown): partners and children discover it
	// only through failed BM exchanges and Inequality (1) lag.
	CrashProb float64
	// Counters for experiment summaries.
	JoinedSessions  int
	FailedSessions  int
	ReadySessions   int
	AbandonSessions int
	// Adaptations counts parent switches triggered by the §IV-B
	// inequalities (the overlay's self-repair work rate).
	Adaptations int
}

// NewWorld wires a world onto the engine. The engine's tick callback
// is registered here; callers then schedule joins and call Engine.Run.
func NewWorld(p Params, engine *sim.Engine, sink logsys.Sink, latency netmodel.LatencyModel, policy gossip.Policy, seed uint64) (*World, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if engine == nil || sink == nil || latency == nil || policy == nil {
		return nil, fmt.Errorf("peer: nil dependency")
	}
	root := xrand.New(seed)
	w := &World{
		P:                p,
		Engine:           engine,
		Sink:             sink,
		Latency:          latency,
		Reach:            netmodel.Reachability{TraversalProb: p.TraversalProb},
		Policy:           policy,
		rng:              root.SplitLabeled("world"),
		faultRNG:         root.SplitLabeled("faults"),
		retrySalt:        seed,
		Boot:             gossip.NewBootstrap(root.SplitLabeled("bootstrap")),
		leaveEv:          make(map[int]*sim.Event),
		timeoutEv:        make(map[int]*sim.Event),
		StallContinuity:  0.85,
		StallAbandonProb: 0.7,
		CrashProb:        0.3,
		topo:             newTopoCache(p.Layout.K),
	}
	w.allocateFn = w.allocateShard
	w.advanceFn = w.advanceShard
	w.playbackFn = w.playbackShard
	if ss, ok := sink.(*logsys.ShardedSink); ok {
		w.sharded = ss
	}
	engine.OnTick(w.tick)
	return w, nil
}

// Node returns the node with the given ID (nil if out of range).
func (w *World) Node(id int) *Node {
	if id < 0 || id >= len(w.nodes) {
		return nil
	}
	return w.nodes[id]
}

// Nodes returns all nodes ever created (departed included), indexed by ID.
func (w *World) Nodes() []*Node { return w.nodes }

// ActiveCount returns the number of active nodes including servers.
func (w *World) ActiveCount() int { return len(w.active) }

// ActivePeerCount returns the number of active non-server peers.
func (w *World) ActivePeerCount() int {
	n := 0
	for _, id := range w.active {
		if !w.nodes[id].IsServer() {
			n++
		}
	}
	return n
}

func (w *World) newNode(ep netmodel.Endpoint, userID int) *Node {
	id := len(w.nodes)
	w.sessions++
	n := &Node{
		ID:       id,
		UserID:   userID,
		Session:  w.sessions,
		EP:       ep,
		JoinedAt: w.Engine.Now(),
		Partners: make(map[int]*Partner),
		Subs:     make([]Subscription, w.P.Layout.K),
		children: make([][]int, w.P.Layout.K),
		topo:     w.topo,
		rng:      w.rng.SplitLabeled(fmt.Sprintf("node-%d", id)),
	}
	for j := range n.Subs {
		n.Subs[j].Parent = NoParent
	}
	n.MCache = gossip.NewMCache(w.P.MCacheCapacity, w.Policy, n.rng.SplitLabeled("mcache"))
	n.lastReportAt = n.JoinedAt
	w.nodes = append(w.nodes, n)
	w.insertActive(id)
	return n
}

func (w *World) insertActive(id int) {
	i := sort.SearchInts(w.active, id)
	w.active = append(w.active, 0)
	copy(w.active[i+1:], w.active[i:])
	w.active[i] = id
}

func (w *World) removeActive(id int) {
	i := sort.SearchInts(w.active, id)
	if i < len(w.active) && w.active[i] == id {
		w.active = append(w.active[:i], w.active[i+1:]...)
	}
}

// AddServer creates one dedicated-server node (the paper's 24×100 Mbps
// tier). Servers sit at the live edge, never play back, never depart,
// and are registered with the bootstrap so newcomers always learn
// about the server tier.
func (w *World) AddServer(uploadBps float64) *Node {
	n := w.newNode(netmodel.Endpoint{
		Class:       netmodel.Direct,
		UploadBps:   uploadBps,
		DownloadBps: uploadBps,
		Server:      true,
	}, -1)
	n.State = StateReady
	live := w.liveEdge(w.Engine.Now())
	for j := range n.Subs {
		n.Subs[j].H = live
	}
	w.servers = append(w.servers, n.ID)
	w.Boot.Join(w.bootEntry(n), w.Engine.Now())
	w.Boot.RegisterServer(n.ID)
	return n
}

func (w *World) bootEntry(n *Node) gossip.Entry {
	in, out := n.PartnerCounts()
	return gossip.Entry{
		ID:           n.ID,
		Class:        n.EP.Class,
		JoinedAt:     n.JoinedAt,
		PartnerCount: in + out,
	}
}

// liveEdge returns the source's per-sub-stream sequence position at t.
func (w *World) liveEdge(t sim.Time) float64 {
	return w.P.Layout.SecondsToSeq(t.Seconds())
}

// Join starts a session for userID with the given endpoint. The user
// intends to watch for `watch`; if the session fails to reach
// media-ready within JoinTimeout the user retries up to `patience`
// more times (Fig. 10b's re-try behaviour). retries carries how many
// failures this user has already had, for the session logs.
func (w *World) Join(userID int, ep netmodel.Endpoint, watch sim.Time, patience, retries int) *Node {
	now := w.Engine.Now()
	n := w.newNode(ep, userID)
	n.State = StateJoining
	n.Retries = retries
	n.watch = watch
	n.patience = patience
	w.JoinedSessions++
	w.Boot.Join(w.bootEntry(n), now)
	w.log(n, logsys.Record{Kind: logsys.KindJoin})

	// Bootstrap round trip delivers the initial candidate list.
	w.Engine.After(w.P.BootstrapRTT, func() { w.bootstrapReply(n) })

	// The user's own departure clock. A fraction of users just close
	// the application without teardown.
	crash := n.rng.Bool(w.CrashProb)
	w.leaveEv[n.ID] = w.Engine.After(watch, func() {
		if crash {
			w.departCrash(n, "user")
		} else {
			w.depart(n, "user")
		}
	})

	// Startup failure clock.
	w.timeoutEv[n.ID] = w.Engine.After(w.P.JoinTimeout, func() {
		if n.State == StateJoining || n.State == StateSubscribing {
			w.failSession(n)
		}
	})
	return n
}

// retryDelay returns the pause before retry number `attempt` (1-based)
// for the retrying identity `key`: the configured capped-exponential
// backoff with deterministic jitter, or the legacy fixed RetryDelay
// when no backoff is configured.
func (w *World) retryDelay(attempt int, key uint64) sim.Time {
	if w.Retry.Enabled() {
		return w.Retry.Delay(attempt, key^w.retrySalt)
	}
	return w.P.RetryDelay
}

// failSession aborts a session that never reached media-ready and
// schedules the user's retry if patience remains. Successive failures
// by the same user back off exponentially (capped, deterministically
// jittered) when a Retry policy is configured.
func (w *World) failSession(n *Node) {
	w.FailedSessions++
	userID, ep, watch, patience, retries := n.UserID, n.EP, n.watch, n.patience, n.Retries
	w.depart(n, "join-timeout")
	if patience > 0 {
		delay := w.retryDelay(retries+1, uint64(userID))
		w.Engine.After(delay, func() {
			w.Join(userID, ep, watch, patience-1, retries+1)
		})
	}
}

// abandonAndRejoin models a frustrated Ready user who departs after a
// badly stalled interval and immediately re-enters (treated by the
// system as a brand-new join, per §V-D).
func (w *World) abandonAndRejoin(n *Node) {
	w.AbandonSessions++
	userID, ep, patience := n.UserID, n.EP, n.patience
	// Remaining watch time continues to run.
	remaining := n.JoinedAt + n.watch - w.Engine.Now()
	w.depart(n, "stall-reenter")
	if remaining > w.P.RetryDelay {
		w.Engine.After(w.P.RetryDelay, func() {
			w.Join(userID, ep, remaining-w.P.RetryDelay, patience, n.Retries+1)
		})
	}
}

// depart removes a node gracefully: partners drop it immediately (TCP
// reset semantics), children stall, the bootstrap forgets it, and the
// leave is logged. Safe to call once; later calls are no-ops.
func (w *World) depart(n *Node, reason string) {
	w.departMode(n, reason, true)
}

// departCrash removes a node without notifying anyone: its partners
// keep a dangling entry until the next BM refresh fails, and its
// children's transfers silently freeze until Inequality (1) detects
// the lag — the paper's ungraceful-churn case. The leave is still
// logged (the deployed reporter hooks page unload).
func (w *World) departCrash(n *Node, reason string) {
	w.departMode(n, reason, false)
}

func (w *World) departMode(n *Node, reason string, graceful bool) {
	if n.State == StateDeparted {
		return
	}
	now := w.Engine.Now()
	n.State = StateDeparted
	n.LeftAt = now
	w.Boot.Leave(n.ID)
	w.removeActive(n.ID)
	if ev := w.leaveEv[n.ID]; ev != nil {
		w.Engine.Cancel(ev)
		delete(w.leaveEv, n.ID)
	}
	if ev := w.timeoutEv[n.ID]; ev != nil {
		w.Engine.Cancel(ev)
		delete(w.timeoutEv, n.ID)
	}
	// Detach from parents. Parents notice a vanished child either way:
	// their TCP send fails at once, so the child registry is cleaned
	// for both graceful and crash departures.
	for j := range n.Subs {
		if p := n.Subs[j].Parent; p != NoParent {
			w.nodes[p].removeChild(j, n.ID)
			n.Subs[j].Parent = NoParent
			n.Subs[j].RateBps = 0
		}
	}
	if graceful {
		// Stall children (TCP reset is observed immediately).
		for j := range n.children {
			for _, c := range n.children[j] {
				child := w.nodes[c]
				if child.Subs[j].Parent == n.ID {
					child.Subs[j].Parent = NoParent
					child.Subs[j].RateBps = 0
				}
			}
			n.children[j] = nil
		}
		// Partners drop the link (ascending ID order; the seed ranged
		// over the map, but no randomness is drawn here so the log
		// stream is unchanged).
		for _, pid := range n.partnerIDs {
			w.nodes[pid].delPartner(n.ID)
			w.nodes[pid].partnerChanges++
		}
	}
	// On a crash, children and partner back-pointers stay dangling;
	// refreshBMs and the adaptation inequalities clean them up lazily.
	n.clearPartners()
	// Every forest changes shape at once: the node's own edges are
	// gone (graceful) or frozen out of the active root set (crash).
	w.topo.bumpAll()
	w.log(n, logsys.Record{Kind: logsys.KindLeave, Reason: reason})
}

// DepartAllPeers removes every active non-server peer at once — the
// program-end event: when a broadcast finishes, its audience leaves
// together (Fig. 5b's 22:00 cliff at channel granularity).
func (w *World) DepartAllPeers(reason string) int {
	ids := append([]int(nil), w.active...)
	n := 0
	for _, id := range ids {
		node := w.nodes[id]
		if node.IsServer() || node.State == StateDeparted {
			continue
		}
		w.depart(node, reason)
		n++
	}
	return n
}

// bootstrapReply fills the joiner's mCache with the bootstrap's
// candidate list and starts partner recruitment. During a tracker
// outage the contact fails: the node's next re-contact (driven by
// maintainPartners) is pushed out by the capped backoff, attempt by
// attempt, until the tracker answers again.
func (w *World) bootstrapReply(n *Node) {
	if n.State == StateDeparted {
		return
	}
	now := w.Engine.Now()
	if w.Faults != nil && w.Faults.TrackerDown(now) {
		w.Faults.Stats.TrackerRefusals++
		n.bootAttempts++
		n.recruitingDue = now + w.retryDelay(n.bootAttempts, uint64(n.ID))
		return
	}
	n.bootAttempts = 0
	for _, e := range w.Boot.Candidates(n.ID, w.P.BootstrapCandidates) {
		n.MCache.Insert(e, now)
	}
	w.recruit(n)
}

// recruit attempts partnership establishment towards mCache samples
// until the desired partner count is reached.
func (w *World) recruit(n *Node) {
	if n.State == StateDeparted {
		return
	}
	want := w.P.DesiredPartners - len(n.Partners)
	if want <= 0 {
		return
	}
	// The sorted partner-ID slice doubles as the exclusion set — no
	// per-call map needed.
	for _, e := range n.MCache.Sample(want, n.ID, n.partnerIDs) {
		w.attemptPartnership(n, e.ID)
	}
}

// attemptPartnership models the TCP partnership handshake with the
// latency model and the NAT/firewall reachability rules. With faults
// enabled, attempts involving a NAT-class endpoint are refused with
// the scheduled probability before the handshake is even sent (the
// paper's NAT-blocked connections).
func (w *World) attemptPartnership(n *Node, targetID int) {
	if w.Faults != nil && w.Faults.Cfg.NATRefusalProb > 0 {
		target := w.Node(targetID)
		natSide := n.EP.Class == netmodel.NAT ||
			(target != nil && target.EP.Class == netmodel.NAT)
		if natSide && n.rng.Bool(w.Faults.Cfg.NATRefusalProb) {
			w.Faults.Stats.NATRefusals++
			n.MCache.Remove(targetID)
			return
		}
	}
	rtt := 2 * w.Latency.Delay(n.ID, targetID)
	u := n.rng.Float64() // drawn now so event ordering cannot disturb streams
	if w.P.ControlLossProb > 0 && n.rng.Bool(w.P.ControlLossProb) {
		// Handshake lost in flight; the peer retries through the
		// normal recruiting cadence.
		return
	}
	w.Engine.After(rtt, func() {
		target := w.Node(targetID)
		if n.State == StateDeparted {
			return
		}
		if target == nil || target.State == StateDeparted {
			n.MCache.Remove(targetID)
			return
		}
		if _, dup := n.Partners[targetID]; dup {
			return
		}
		bound := w.P.MaxPartners
		if target.IsServer() {
			bound = w.P.MaxServerPartners
		}
		if len(target.Partners) >= bound || len(n.Partners) >= w.P.MaxPartners {
			return
		}
		if !w.Reach.Attempt(n.EP.Class, target.EP.Class, u) {
			n.MCache.Remove(targetID)
			return
		}
		now := w.Engine.Now()
		n.setPartner(targetID, &Partner{
			Outgoing:      true,
			BM:            target.BufferMap(n.ID),
			BMAt:          now,
			EstablishedAt: now,
		})
		target.setPartner(n.ID, &Partner{
			Outgoing:      false,
			BM:            n.BufferMap(targetID),
			BMAt:          now,
			EstablishedAt: now,
		})
		n.partnerChanges++
		target.partnerChanges++
		// Membership gossip piggybacks on establishment.
		target.MCache.Insert(w.bootEntry(n), now)
		n.MCache.Insert(w.bootEntry(target), now)
	})
}

// log emits a record for the node, filling identity fields.
func (w *World) log(n *Node, rec logsys.Record) {
	if n.IsServer() {
		return // the server tier does not report; it is infrastructure
	}
	w.fill(n, &rec)
	w.Sink.Log(rec)
}

// logLane emits a record into a per-shard lane with no locking; only
// parallel phases holding exclusive shard lanes use it.
func (w *World) logLane(lane *logsys.Lane, n *Node, rec logsys.Record) {
	if n.IsServer() {
		return
	}
	w.fill(n, &rec)
	lane.Log(rec)
}

func (w *World) fill(n *Node, rec *logsys.Record) {
	rec.At = w.Engine.Now()
	rec.Peer = n.ID
	rec.Session = n.Session
	rec.User = n.UserID
	rec.PrivateAddr = n.EP.Class.HasPrivateAddress()
	rec.TrueClass = n.EP.Class
	rec.HasTruth = true
}

// ensureLanes grows the per-shard lane table to at least the number of
// shards the next parallel phase can produce. Called sequentially from
// tick, so the parallel phases only ever read laneSinks.
func (w *World) ensureLanes(workers int) {
	for len(w.laneSinks) < workers {
		w.laneSinks = append(w.laneSinks, w.sharded.Lane(len(w.laneSinks)))
	}
}
