package peer

import (
	"fmt"
	"strconv"

	"coolstream/internal/faults"
	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

// World owns the full overlay population and advances it on the
// simulation engine: the source/server tier, every peer node, the
// bootstrap, and the log sink. It is the composition root of the
// Coolstreaming system.
type World struct {
	P       Params
	Engine  *sim.Engine
	Sink    logsys.Sink
	Boot    *gossip.Bootstrap
	Latency netmodel.LatencyModel
	Reach   netmodel.Reachability
	Policy  gossip.Policy

	rng   *xrand.RNG
	nodes []*Node
	// shards partitions the world into per-core world shards (see
	// shard.go): each owns its membership list, due-wheel, node arenas
	// and free lists, log lane, effect outbox and counters. NewWorld
	// starts at one shard — the legacy sequential engine, bit for bit;
	// SetShards grows the partition before the first join.
	shards  []*worldShard
	nshards int
	// memberEpoch counts membership mutations; mergedActive rebuilds
	// its merged-ID scratch only when it moved past mergedEpoch, and
	// only for the shards whose own memberEpoch moved (the dirty
	// shards). mergedShardEpochs/mergedShardLens record the per-shard
	// state the cached merge reflects; mergedScratch is the departure
	// path's double buffer; dirtyScratch/dirtyMark are rebuild
	// scratch.
	memberEpoch       uint64
	mergedEpoch       uint64
	mergedIDs         []int
	mergedShardEpochs []uint64
	mergedShardLens   []int
	mergedScratch     []int
	dirtyScratch      []int
	dirtyMark         []bool
	// effCur is the k-way merge cursor scratch (one slot per shard)
	// shared by the sequential merge loops.
	effCur []int
	// ForceDeferredControl runs the deferred-effect control engine at
	// one shard — the A/B hook proving the sharded digest is
	// shard-count invariant (shards=1 deferred ≡ shards=N). Must be
	// set before the first join.
	ForceDeferredControl bool
	// seqCtx is the sequential engine's visit context: deferred=false,
	// so every vctx helper reduces to the legacy in-place behaviour.
	seqCtx vctx
	// shardVisitFn is the bound parallel stage of controlSharded;
	// drainTargetFn/drainSourceFn are the bound parallel drain passes;
	// tickNow stages the visit timestamp for them.
	shardVisitFn func(lo, hi int)
	drainTargetFn func(lo, hi int)
	drainSourceFn func(lo, hi int)
	tickNow       sim.Time
	// testBarrierHook (tests only) runs after the parallel visit phase
	// and before the drain passes — the window where every routed
	// queue is complete and untouched. drainLogOn arms the per-shard
	// applied-order capture of the drain-order property test.
	testBarrierHook func()
	drainLogOn      bool

	servers  []int // IDs of the server tier, in creation order (never departs)
	sessions int

	// draining/drainIdx/drainPos are the legacy (single-shard) control
	// drain's cursor state; see touchNode.
	draining bool
	drainIdx int
	drainPos int
	// FullSweepControl disables the due wheel and restores the legacy
	// O(population) per-tick control sweep — the A/B switch for the
	// determinism property tests and scaling benchmarks. Must be set
	// before the first join is scheduled, and is incompatible with
	// more than one shard.
	FullSweepControl bool

	// controlClock/ControlNanos optionally meter wall time spent in the
	// control phase (enabled by benchmarks via MeterControl).
	// ControlVisits counts controlVisit invocations regardless of the
	// clock — the wheel-vs-sweep work ratio in one number. phaseClock
	// and Phases extend the metering to every tick phase (MeterPhases).
	controlClock  bool
	ControlNanos  int64
	ControlVisits int64
	phaseClock    bool
	Phases        PhaseNanos

	// labelBuf is the reusable node-RNG label encoder buffer
	// ("node-<id>" without fmt).
	labelBuf []byte

	// Staged event callbacks: the high-rate events (bootstrap reply,
	// leave, join timeout, partnership completion) carry their operands
	// in the event payload and share these four method values, so the
	// churn path allocates no per-event closures.
	bootstrapFn   func(sim.EvPayload)
	leaveFn       func(sim.EvPayload)
	timeoutFn     func(sim.EvPayload)
	partnershipFn func(sim.EvPayload)
	retryFn       func(sim.EvPayload)
	rejoinFn      func(sim.EvPayload)

	// Faults is the injected fault schedule (nil = fault-free). All
	// probabilistic fault draws happen in sequential phases (events,
	// control, the per-tick fault step), so fault firings are part of
	// the deterministic run and fold into the run digest.
	Faults *faults.Schedule
	// Retry is the capped-exponential join/re-contact backoff with
	// deterministic jitter; the zero value keeps the legacy fixed
	// Params.RetryDelay.
	Retry faults.Backoff
	// faultRNG drives the world-level fault draws (partner kills) on
	// its own labeled stream so enabling faults never perturbs node or
	// scenario streams.
	faultRNG *xrand.RNG
	// retrySalt folds the run seed into the deterministic retry jitter.
	retrySalt uint64
	// killScratch is the candidate buffer of the partner-kill step.
	killScratch []int

	// topo caches the flattened per-sub-stream traversal orders the
	// advance phase sweeps; see topo.go for the epoch contract.
	topo *topoCache

	// sharded is non-nil when the configured sink is a
	// logsys.ShardedSink; parallel phases then log straight into
	// per-shard lanes (laneSinks, grown sequentially in tick) instead
	// of deferring records to the sequential control phase. With any
	// other sink the legacy deferral path keeps the record stream
	// deterministic (e.g. through a BufferedSink's outage queue, whose
	// drop decisions depend on arrival order).
	sharded   *logsys.ShardedSink
	laneSinks []*logsys.Lane

	// Persistent per-phase shard functions and per-tick scratch: the
	// parallel phases hand the same closures to the worker pool every
	// tick, so steady-state ticks allocate nothing.
	allocateFn func(lo, hi int)
	advanceFn  func(lo, hi int)
	playbackFn func(shard, lo, hi int)
	// allocateLocalFn/playbackLocalFn are the shard-local variants
	// (one worker per world shard over its own active list).
	allocateLocalFn func(lo, hi int)
	playbackLocalFn func(lo, hi int)
	// labelPhases wraps every phase worker in a pprof phase label so
	// CPU profiles attribute samples by tick phase (LabelPhases).
	labelPhases bool
	tickIDs    []int
	controlIDs []int
	tickDt     float64
	tickLive   float64
	// tickLoss is this tick's burst-loss fraction, staged once per tick
	// from the fault schedule so the parallel advance shards read a
	// plain float. Zero whenever faults are off or no window is active.
	tickLoss float64
	// advFlagShards collects, per playback shard, the IDs whose
	// Inequality (1) deviation crossed Ts this tick with the adaptation
	// cool-down expired (wheel mode only); controlWheel merges the lists
	// into the drain set so the flagged nodes are visited this same
	// tick. tickAdaptCut/tickTsF stage the cool-down cut-off and the Ts
	// threshold as plain values the parallel shards can read.
	advFlagShards [][]int32
	tickAdaptCut  sim.Time
	tickTsF       float64


	// StallContinuity/StallAbandonProb model frustrated users: a Ready
	// node whose report-interval continuity falls below the threshold
	// departs and re-enters with the given probability (the paper's
	// churn-driven depart-and-rejoin behaviour, §V-D).
	StallContinuity  float64
	StallAbandonProb float64
	// CrashProb is the probability that a user-initiated departure is
	// ungraceful (no TCP teardown): partners and children discover it
	// only through failed BM exchanges and Inequality (1) lag.
	CrashProb float64
	// Counters for experiment summaries.
	JoinedSessions  int
	FailedSessions  int
	ReadySessions   int
	AbandonSessions int
	// Adaptations counts parent switches triggered by the §IV-B
	// inequalities (the overlay's self-repair work rate).
	Adaptations int
}

// NewWorld wires a world onto the engine. The engine's tick callback
// is registered here; callers then schedule joins and call Engine.Run.
func NewWorld(p Params, engine *sim.Engine, sink logsys.Sink, latency netmodel.LatencyModel, policy gossip.Policy, seed uint64) (*World, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if engine == nil || sink == nil || latency == nil || policy == nil {
		return nil, fmt.Errorf("peer: nil dependency")
	}
	root := xrand.New(seed)
	w := &World{
		P:                p,
		Engine:           engine,
		Sink:             sink,
		Latency:          latency,
		Reach:            netmodel.Reachability{TraversalProb: p.TraversalProb},
		Policy:           policy,
		rng:              root.SplitLabeled("world"),
		faultRNG:         root.SplitLabeled("faults"),
		retrySalt:        seed,
		Boot:             gossip.NewBootstrap(root.SplitLabeled("bootstrap")),
		StallContinuity:  0.85,
		StallAbandonProb: 0.7,
		CrashProb:        0.3,
		topo:             newTopoCache(p.Layout.K),
	}
	w.allocateFn = w.allocateShard
	w.advanceFn = w.advanceShard
	w.playbackFn = w.playbackShard
	w.allocateLocalFn = w.allocateLocalRange
	w.playbackLocalFn = w.playbackLocalRange
	w.shardVisitFn = w.shardVisitRange
	w.drainTargetFn = w.drainTargetRange
	w.drainSourceFn = w.drainSourceRange
	w.bootstrapFn = w.bootstrapFire
	w.leaveFn = w.leaveFire
	w.timeoutFn = w.timeoutFire
	w.partnershipFn = w.completePartnership
	w.retryFn = w.retryFire
	w.rejoinFn = w.rejoinFire
	w.shards = []*worldShard{w.newShard(0)}
	w.nshards = 1
	w.effCur = make([]int, 1)
	w.seqCtx = vctx{w: w, sh: w.shards[0], deferred: false}
	if ss, ok := sink.(*logsys.ShardedSink); ok {
		w.sharded = ss
	}
	engine.OnTick(w.tick)
	return w, nil
}

// MeterControl enables wall-clock metering of the control phase; the
// accumulated total is read from ControlNanos. Benchmarks use it to
// isolate control-plane cost from the fluid data plane.
func (w *World) MeterControl(on bool) { w.controlClock = on }

// Node returns the node with the given ID (nil if out of range).
func (w *World) Node(id int) *Node {
	if id < 0 || id >= len(w.nodes) {
		return nil
	}
	return w.nodes[id]
}

// Nodes returns all nodes ever created (departed included), indexed by ID.
func (w *World) Nodes() []*Node { return w.nodes }

// ActiveCount returns the number of active nodes including servers.
// O(shards): each shard maintains its own list and dirty count.
func (w *World) ActiveCount() int {
	total := 0
	for _, sh := range w.shards {
		total += len(sh.active) - sh.activeDirty
	}
	return total
}

// ActivePeerCount returns the number of active non-server peers.
// O(shards): each shard maintains its count incrementally at join and
// departure, so the hot path touches no world-global counter.
func (w *World) ActivePeerCount() int {
	total := 0
	for _, sh := range w.shards {
		total += sh.activePeers
	}
	return total
}

// nodeChunk is the arena granularity for node shells.
const nodeChunk = 256

func (w *World) newNode(ep netmodel.Endpoint, userID int) *Node {
	id := len(w.nodes)
	sh := w.shards[shardIndex(id, w.nshards)]
	w.sessions++
	k := w.P.Layout.K
	// Carve the shell and its fixed-size per-sub slices from the
	// owning shard's chunked arenas: one allocation per nodeChunk
	// sessions instead of three per session. Arena entries are fresh
	// zeroed memory, so the explicit assignments below are exactly the
	// old composite literal.
	if len(sh.nodeArena) == 0 {
		sh.nodeArena = make([]Node, nodeChunk)
	}
	n := &sh.nodeArena[0]
	sh.nodeArena = sh.nodeArena[1:]
	if len(sh.subArena) < k {
		sh.subArena = make([]Subscription, nodeChunk*k)
	}
	subs := sh.subArena[:k:k]
	sh.subArena = sh.subArena[k:]
	if len(sh.childArena) < k {
		sh.childArena = make([][]int, nodeChunk*k)
	}
	children := sh.childArena[:k:k]
	sh.childArena = sh.childArena[k:]
	if len(sh.hotArena) == 0 {
		sh.hotArena = make([]nodeHot, nodeChunk)
	}
	hot := &sh.hotArena[0]
	sh.hotArena = sh.hotArena[1:]

	n.ID = id
	n.shard = int32(sh.idx)
	n.UserID = userID
	n.Session = w.sessions
	n.EP = ep
	n.JoinedAt = w.Engine.Now()
	n.Subs = subs
	n.children = children
	n.hot = hot
	n.topo = w.topo
	n.pool = &sh.ppool
	// The node RNG is seeded from the world stream and the "node-<id>"
	// label exactly as the seed engine's SplitLabeled(fmt.Sprintf(...))
	// did, but into the inline store with no formatting allocations.
	n.rngStore.ReseedLabeledBytes(w.rng, w.nodeLabel(id))
	n.rng = &n.rngStore
	n.Partners = w.getPartnerMap(sh)
	if m := len(sh.intPool); m > 0 {
		n.partnerIDs = sh.intPool[m-1][:0]
		sh.intPool[m-1] = nil
		sh.intPool = sh.intPool[:m-1]
	}
	if m := len(sh.plistPool); m > 0 {
		n.partnerList = sh.plistPool[m-1][:0]
		sh.plistPool[m-1] = nil
		sh.plistPool = sh.plistPool[:m-1]
	}
	if m := len(sh.demandPool); m > 0 {
		n.allocDemands = sh.demandPool[m-1][:0]
		sh.demandPool[m-1] = nil
		sh.demandPool = sh.demandPool[:m-1]
	}
	if m := len(sh.slotPool); m > 0 {
		n.allocSlots = sh.slotPool[m-1][:0]
		sh.slotPool[m-1] = nil
		sh.slotPool = sh.slotPool[:m-1]
	}
	if m := len(sh.fillerPool); m > 0 {
		n.filler = sh.fillerPool[m-1]
		sh.fillerPool[m-1] = nil
		sh.fillerPool = sh.fillerPool[:m-1]
	} else {
		n.filler = new(netmodel.Filler)
	}
	if m := len(sh.intPool); m > 0 {
		n.candScratch = sh.intPool[m-1][:0]
		sh.intPool[m-1] = nil
		sh.intPool = sh.intPool[:m-1]
	}
	for j := range n.Subs {
		n.Subs[j].Parent = NoParent
		if m := len(sh.intPool); m > 0 {
			n.children[j] = sh.intPool[m-1][:0]
			sh.intPool[m-1] = nil
			sh.intPool = sh.intPool[:m-1]
		}
	}
	n.MCache = w.getMCache(sh, n.rng)
	n.lastReportAt = n.JoinedAt
	w.nodes = append(w.nodes, n)
	// IDs are assigned monotonically, so each shard's sorted active
	// list grows by plain append.
	sh.active = append(sh.active, id)
	if !ep.Server {
		sh.activePeers++
	}
	sh.memberEpoch++
	w.memberEpoch++
	w.touchNode(id)
	return n
}

// nodeLabel renders "node-<id>" into the world's reusable label buffer.
func (w *World) nodeLabel(id int) []byte {
	b := append(w.labelBuf[:0], "node-"...)
	b = strconv.AppendInt(b, int64(id), 10)
	w.labelBuf = b
	return b
}

func (w *World) getPartnerMap(sh *worldShard) map[int]*Partner {
	if m := len(sh.mapPool); m > 0 {
		pm := sh.mapPool[m-1]
		sh.mapPool[m-1] = nil
		sh.mapPool = sh.mapPool[:m-1]
		return pm
	}
	return make(map[int]*Partner)
}

// getMCache reissues a donated membership cache (reset in place, RNG
// stream reseeded from the owner's labeled stream — behaviourally
// identical to a fresh NewMCache) or builds a new one.
func (w *World) getMCache(sh *worldShard, rng *xrand.RNG) *gossip.MCache {
	if m := len(sh.mcPool); m > 0 {
		mc := sh.mcPool[m-1]
		sh.mcPool[m-1] = nil
		sh.mcPool = sh.mcPool[:m-1]
		var stream xrand.RNG
		stream.ReseedLabeled(rng, "mcache")
		mc.Reset(stream)
		return mc
	}
	return gossip.NewMCache(w.P.MCacheCapacity, w.Policy, rng.SplitLabeled("mcache"))
}

// removeActive marks a departure for batched removal on the owner
// shard; the next compaction applies the batch (tick boundary, before
// snapshots).
func (w *World) removeActive(id int) {
	n := w.nodes[id]
	sh := w.shardOf(n)
	sh.activeDirty++
	if !n.IsServer() {
		sh.activePeers--
	}
	sh.memberEpoch++
	sh.removed = true
	w.memberEpoch++
}

// AddServer creates one dedicated-server node (the paper's 24×100 Mbps
// tier). Servers sit at the live edge, never play back, never depart,
// and are registered with the bootstrap so newcomers always learn
// about the server tier.
func (w *World) AddServer(uploadBps float64) *Node {
	n := w.newNode(netmodel.Endpoint{
		Class:       netmodel.Direct,
		UploadBps:   uploadBps,
		DownloadBps: uploadBps,
		Server:      true,
	}, -1)
	n.State = StateReady
	live := w.liveEdge(w.Engine.Now())
	for j := range n.Subs {
		n.Subs[j].H = live
	}
	w.servers = append(w.servers, n.ID)
	w.Boot.Join(w.bootEntry(n), w.Engine.Now())
	w.Boot.RegisterServer(n.ID)
	return n
}

func (w *World) bootEntry(n *Node) gossip.Entry {
	in, out := n.PartnerCounts()
	return gossip.Entry{
		ID:           n.ID,
		Class:        n.EP.Class,
		JoinedAt:     n.JoinedAt,
		PartnerCount: in + out,
	}
}

// liveEdge returns the source's per-sub-stream sequence position at t.
func (w *World) liveEdge(t sim.Time) float64 {
	return w.P.Layout.SecondsToSeq(t.Seconds())
}

// Join starts a session for userID with the given endpoint. The user
// intends to watch for `watch`; if the session fails to reach
// media-ready within JoinTimeout the user retries up to `patience`
// more times (Fig. 10b's re-try behaviour). retries carries how many
// failures this user has already had, for the session logs.
func (w *World) Join(userID int, ep netmodel.Endpoint, watch sim.Time, patience, retries int) *Node {
	now := w.Engine.Now()
	n := w.newNode(ep, userID)
	n.State = StateJoining
	n.Retries = retries
	n.watch = watch
	n.patience = patience
	w.JoinedSessions++
	w.Boot.Join(w.bootEntry(n), now)
	w.log(n, logsys.Record{Kind: logsys.KindJoin})

	// Bootstrap round trip delivers the initial candidate list.
	w.Engine.AfterCall(w.P.BootstrapRTT, w.bootstrapFn, sim.EvPayload{A: n.ID})

	// The user's own departure clock. A fraction of users just close
	// the application without teardown.
	crashFlag := 0
	if n.rng.Bool(w.CrashProb) {
		crashFlag = 1
	}
	n.leaveEv = w.Engine.AfterCall(watch, w.leaveFn, sim.EvPayload{A: n.ID, B: crashFlag})

	// Startup failure clock.
	n.timeoutEv = w.Engine.AfterCall(w.P.JoinTimeout, w.timeoutFn, sim.EvPayload{A: n.ID})
	return n
}

// bootstrapFire, leaveFire and timeoutFire are the staged callbacks of
// the three per-join events; operands travel in the payload so the
// join path allocates no closures.
func (w *World) bootstrapFire(p sim.EvPayload) { w.bootstrapReply(w.nodes[p.A]) }

func (w *World) leaveFire(p sim.EvPayload) {
	n := w.nodes[p.A]
	// Drop the handle before acting: fired events are recycled by the
	// engine, so a retained handle must never outlive the fire.
	n.leaveEv = nil
	if p.B != 0 {
		w.departCrash(n, "user")
	} else {
		w.depart(n, "user")
	}
}

func (w *World) timeoutFire(p sim.EvPayload) {
	n := w.nodes[p.A]
	n.timeoutEv = nil
	if n.State == StateJoining || n.State == StateSubscribing {
		w.failSession(n)
	}
}

// retryDelay returns the pause before retry number `attempt` (1-based)
// for the retrying identity `key`: the configured capped-exponential
// backoff with deterministic jitter, or the legacy fixed RetryDelay
// when no backoff is configured.
func (w *World) retryDelay(attempt int, key uint64) sim.Time {
	if w.Retry.Enabled() {
		return w.Retry.Delay(attempt, key^w.retrySalt)
	}
	return w.P.RetryDelay
}

// failSession aborts a session that never reached media-ready and
// schedules the user's retry if patience remains. Successive failures
// by the same user back off exponentially (capped, deterministically
// jittered) when a Retry policy is configured.
func (w *World) failSession(n *Node) {
	w.FailedSessions++
	patience, retries := n.patience, n.Retries
	w.depart(n, "join-timeout")
	if patience > 0 {
		delay := w.retryDelay(retries+1, uint64(n.UserID))
		// The corpse shell keeps the user's identity, endpoint and intent
		// untouched, so the retry re-derives them at fire time and the
		// abandon path allocates no closure.
		w.Engine.AfterCall(delay, w.retryFn, sim.EvPayload{A: n.ID})
	}
}

// retryFire re-enters a user whose session failed before media-ready,
// reading the retry operands off the failed session's shell.
func (w *World) retryFire(p sim.EvPayload) {
	n := w.nodes[p.A]
	w.Join(n.UserID, n.EP, n.watch, n.patience-1, n.Retries+1)
}

// abandonAndRejoin models a frustrated Ready user who departs after a
// badly stalled interval and immediately re-enters (treated by the
// system as a brand-new join, per §V-D).
func (w *World) abandonAndRejoin(n *Node) {
	w.AbandonSessions++
	// Remaining watch time continues to run.
	remaining := n.JoinedAt + n.watch - w.Engine.Now()
	w.depart(n, "stall-reenter")
	if remaining > w.P.RetryDelay {
		w.Engine.AfterCall(w.P.RetryDelay, w.rejoinFn, sim.EvPayload{A: n.ID})
	}
}

// rejoinFire re-enters a frustrated user after the stall-abandon pause.
// The corpse shell's JoinedAt+watch is the absolute intent horizon, so
// the remaining watch time falls out of the fire-time clock — exactly
// remaining-RetryDelay as scheduled.
func (w *World) rejoinFire(p sim.EvPayload) {
	n := w.nodes[p.A]
	w.Join(n.UserID, n.EP, n.JoinedAt+n.watch-w.Engine.Now(), n.patience, n.Retries+1)
}

// depart removes a node gracefully: partners drop it immediately (TCP
// reset semantics), children stall, the bootstrap forgets it, and the
// leave is logged. Safe to call once; later calls are no-ops.
func (w *World) depart(n *Node, reason string) {
	w.departMode(n, reason, true)
}

// departCrash removes a node without notifying anyone: its partners
// keep a dangling entry until the next BM refresh fails, and its
// children's transfers silently freeze until Inequality (1) detects
// the lag — the paper's ungraceful-churn case. The leave is still
// logged (the deployed reporter hooks page unload).
func (w *World) departCrash(n *Node, reason string) {
	w.departMode(n, reason, false)
}

func (w *World) departMode(n *Node, reason string, graceful bool) {
	if n.State == StateDeparted {
		return
	}
	now := w.Engine.Now()
	n.State = StateDeparted
	n.LeftAt = now
	w.Boot.Leave(n.ID)
	w.removeActive(n.ID)
	if ev := n.leaveEv; ev != nil {
		w.Engine.CancelRelease(ev)
		n.leaveEv = nil
	}
	if ev := n.timeoutEv; ev != nil {
		w.Engine.CancelRelease(ev)
		n.timeoutEv = nil
	}
	// Detach from parents. Parents notice a vanished child either way:
	// their TCP send fails at once, so the child registry is cleaned
	// for both graceful and crash departures.
	for j := range n.Subs {
		if p := n.Subs[j].Parent; p != NoParent {
			w.nodes[p].removeChild(j, n.ID)
			w.reclaimCorpseChildren(w.nodes[p])
			n.Subs[j].Parent = NoParent
			n.Subs[j].RateBps = 0
		}
	}
	if graceful {
		sh := w.shardOf(n)
		// Stall children (TCP reset is observed immediately).
		for j := range n.children {
			for _, c := range n.children[j] {
				child := w.nodes[c]
				if child.Subs[j].Parent == n.ID {
					child.Subs[j].Parent = NoParent
					child.Subs[j].RateBps = 0
					w.touchNode(c) // re-subscribe from the next control pass
				}
			}
			if cap(n.children[j]) > 0 {
				sh.intPool = append(sh.intPool, n.children[j][:0])
			}
			n.children[j] = nil
		}
		// Partners drop the link (ascending ID order; the seed ranged
		// over the map, but no randomness is drawn here so the log
		// stream is unchanged).
		for _, pid := range n.partnerIDs {
			w.nodes[pid].delPartner(n.ID)
			w.nodes[pid].partnerChanges++
			w.touchNode(pid) // partner set shrank: recruiting may be due
		}
	}
	// On a crash, children and partner back-pointers stay dangling;
	// refreshBMs and the adaptation inequalities clean them up lazily.
	n.clearPartners()
	// Every forest changes shape at once: the node's own edges are
	// gone (graceful) or frozen out of the active root set (crash).
	w.topo.bumpAll()
	w.log(n, logsys.Record{Kind: logsys.KindLeave, Reason: reason})
	w.reclaimNode(n, graceful)
}

// reclaimNode donates a departed node's heap-heavy internals back to
// the world pools. The Node shell itself stays — post-run analysis
// (digests, session tables, upload-by-class) reads State, Subs, EP and
// the cumulative counters of every session ever created — but nothing
// reads a corpse's partner map, mirrors, mCache or allocator scratch,
// so those backings get reissued to future joiners. A crash corpse
// keeps its children registry: partners that have not yet detected the
// crash still call removeChild on it from refreshBMs teardown.
func (w *World) reclaimNode(n *Node, graceful bool) {
	sh := w.shardOf(n)
	if n.Partners != nil {
		sh.mapPool = append(sh.mapPool, n.Partners)
		n.Partners = nil
	}
	if cap(n.partnerIDs) > 0 {
		sh.intPool = append(sh.intPool, n.partnerIDs[:0])
	}
	n.partnerIDs = nil
	if cap(n.partnerList) > 0 {
		sh.plistPool = append(sh.plistPool, n.partnerList[:0])
	}
	n.partnerList = nil
	if n.MCache != nil {
		sh.mcPool = append(sh.mcPool, n.MCache)
		n.MCache = nil
	}
	if cap(n.allocDemands) > 0 {
		sh.demandPool = append(sh.demandPool, n.allocDemands[:0])
		n.allocDemands = nil
	}
	if cap(n.allocSlots) > 0 {
		sh.slotPool = append(sh.slotPool, n.allocSlots[:0])
		n.allocSlots = nil
	}
	if cap(n.candScratch) > 0 {
		sh.intPool = append(sh.intPool, n.candScratch[:0])
		n.candScratch = nil
	}
	if n.filler != nil {
		n.filler.Invalidate()
		sh.fillerPool = append(sh.fillerPool, n.filler)
		n.filler = nil
	}
	_ = graceful // children backings were donated in the graceful teardown above
}

// reclaimCorpseChildren donates a crash corpse's children backings once
// the last dangling child reference is gone. A crash corpse keeps its
// registry alive after reclaimNode because surviving children still
// call removeChild on it as they detect the crash (failed BM exchange,
// Inequality (1) lag, or their own departure); the caller invokes this
// after each such detachment, and the donation happens exactly once —
// when every sub-stream's child list has emptied.
func (w *World) reclaimCorpseChildren(p *Node) {
	if p.State != StateDeparted {
		return
	}
	for j := range p.children {
		if len(p.children[j]) != 0 {
			return
		}
	}
	sh := w.shardOf(p)
	for j := range p.children {
		if cap(p.children[j]) > 0 {
			sh.intPool = append(sh.intPool, p.children[j][:0])
		}
		p.children[j] = nil
	}
}

// DepartAllPeers removes every active non-server peer at once — the
// program-end event: when a broadcast finishes, its audience leaves
// together (Fig. 5b's 22:00 cliff at channel granularity).
func (w *World) DepartAllPeers(reason string) int {
	ids := append([]int(nil), w.activeView()...)
	n := 0
	for _, id := range ids {
		node := w.nodes[id]
		if node.IsServer() || node.State == StateDeparted {
			continue
		}
		w.depart(node, reason)
		n++
	}
	return n
}

// bootstrapReply fills the joiner's mCache with the bootstrap's
// candidate list and starts partner recruitment. During a tracker
// outage the contact fails: the node's next re-contact (driven by
// maintainPartners) is pushed out by the capped backoff, attempt by
// attempt, until the tracker answers again.
func (w *World) bootstrapReply(n *Node) {
	if n.State == StateDeparted {
		return
	}
	now := w.Engine.Now()
	if w.Faults != nil && w.Faults.TrackerDown(now) {
		w.Faults.Stats.TrackerRefusals++
		n.bootAttempts++
		n.recruitingDue = now + w.retryDelay(n.bootAttempts, uint64(n.ID))
		return
	}
	n.bootAttempts = 0
	for _, e := range w.Boot.Candidates(n.ID, w.P.BootstrapCandidates) {
		n.MCache.Insert(e, now)
	}
	w.recruit(&w.seqCtx, n)
}

// recruit attempts partnership establishment towards mCache samples
// until the desired partner count is reached.
func (w *World) recruit(vc *vctx, n *Node) {
	if n.State == StateDeparted {
		return
	}
	want := w.P.DesiredPartners - len(n.Partners)
	if want <= 0 {
		return
	}
	// The sorted partner-ID slice doubles as the exclusion set — no
	// per-call map needed.
	for _, e := range n.MCache.Sample(want, n.ID, n.partnerIDs) {
		w.attemptPartnership(vc, n, e.ID)
	}
}

// attemptPartnership models the TCP partnership handshake with the
// latency model and the NAT/firewall reachability rules. With faults
// enabled, attempts involving a NAT-class endpoint are refused with
// the scheduled probability before the handshake is even sent (the
// paper's NAT-blocked connections). All RNG draws use n's own stream
// and the reads are frozen state (EP classes, the latency hash), so
// the attempt runs safely inside a deferred visit — only the engine
// event and the shared fault counter defer.
func (w *World) attemptPartnership(vc *vctx, n *Node, targetID int) {
	if w.Faults != nil && w.Faults.Cfg.NATRefusalProb > 0 {
		target := w.Node(targetID)
		natSide := n.EP.Class == netmodel.NAT ||
			(target != nil && target.EP.Class == netmodel.NAT)
		if natSide && n.rng.Bool(w.Faults.Cfg.NATRefusalProb) {
			if vc.deferred {
				vc.sh.natRefusals++
			} else {
				w.Faults.Stats.NATRefusals++
			}
			n.MCache.Remove(targetID)
			return
		}
	}
	rtt := 2 * w.Latency.Delay(n.ID, targetID)
	u := n.rng.Float64() // drawn now so event ordering cannot disturb streams
	if w.P.ControlLossProb > 0 && n.rng.Bool(w.P.ControlLossProb) {
		// Handshake lost in flight; the peer retries through the
		// normal recruiting cadence.
		return
	}
	if vc.deferred {
		vc.emit(effSchedule, 2, int32(targetID), rtt, u)
		return
	}
	w.Engine.AfterCall(rtt, w.partnershipFn, sim.EvPayload{A: n.ID, B: targetID, F: u})
}

// completePartnership finishes the handshake one RTT after the attempt:
// payload A is the initiator, B the target, F the reachability draw.
func (w *World) completePartnership(p sim.EvPayload) {
	n := w.nodes[p.A]
	targetID := p.B
	target := w.Node(targetID)
	if n.State == StateDeparted {
		return
	}
	if target == nil || target.State == StateDeparted {
		n.MCache.Remove(targetID)
		return
	}
	if _, dup := n.Partners[targetID]; dup {
		return
	}
	bound := w.P.MaxPartners
	if target.IsServer() {
		bound = w.P.MaxServerPartners
	}
	if len(target.Partners) >= bound || len(n.Partners) >= w.P.MaxPartners {
		return
	}
	if !w.Reach.Attempt(n.EP.Class, target.EP.Class, p.F) {
		n.MCache.Remove(targetID)
		return
	}
	now := w.Engine.Now()
	// Partner structs come from each side's own shard pool with their
	// buffer-map backing; fillBufferMap resets the contents to exactly
	// what a fresh BufferMap() would hold.
	po := n.pool.get()
	po.Outgoing = true
	target.fillBufferMap(&po.BM, n.ID)
	po.BMAt = now
	po.EstablishedAt = now
	n.setPartner(targetID, po)
	pi := target.pool.get()
	pi.Outgoing = false
	n.fillBufferMap(&pi.BM, targetID)
	pi.BMAt = now
	pi.EstablishedAt = now
	target.setPartner(n.ID, pi)
	n.partnerChanges++
	target.partnerChanges++
	// Membership gossip piggybacks on establishment.
	target.MCache.Insert(w.bootEntry(n), now)
	n.MCache.Insert(w.bootEntry(target), now)
	// Fresh partnerships change both ends' control outlook (gossip
	// becomes possible, recruiting may stand down, BMs just landed).
	w.touchNode(n.ID)
	w.touchNode(targetID)
}

// log emits a record for the node, filling identity fields.
func (w *World) log(n *Node, rec logsys.Record) {
	if n.IsServer() {
		return // the server tier does not report; it is infrastructure
	}
	w.fill(n, &rec)
	w.Sink.Log(rec)
}

// logLane emits a record into a per-shard lane with no locking; only
// parallel phases holding exclusive shard lanes use it.
func (w *World) logLane(lane *logsys.Lane, n *Node, rec logsys.Record) {
	if n.IsServer() {
		return
	}
	w.fill(n, &rec)
	lane.Log(rec)
}

func (w *World) fill(n *Node, rec *logsys.Record) {
	rec.At = w.Engine.Now()
	rec.Peer = n.ID
	rec.Session = n.Session
	rec.User = n.UserID
	rec.PrivateAddr = n.EP.Class.HasPrivateAddress()
	rec.TrueClass = n.EP.Class
	rec.HasTruth = true
}

// ensureLanes grows the per-shard lane table to at least the number of
// shards the next parallel phase can produce. Called sequentially from
// tick, so the parallel phases only ever read laneSinks.
func (w *World) ensureLanes(workers int) {
	for len(w.laneSinks) < workers {
		w.laneSinks = append(w.laneSinks, w.sharded.Lane(len(w.laneSinks)))
	}
}
