package peer

import (
	"runtime"
	"time"

	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/profiling"
	"coolstream/internal/sim"
)

// tick advances the fluid data plane and runs the control plane for
// the elapsed interval [prev, now]. Phase structure:
//
//  1. allocation  — parents divide upload capacity (parallel, per node)
//  2. advance     — H values move along each sub-stream forest
//     (parallel, per sub-stream, cached topological order)
//  3. playback    — deadlines, continuity integration, media-ready
//     (parallel, per node)
//  4. accounting  — byte counters (sequential, deterministic)
//  5. control     — BM exchange, gossip, adaptation, recruiting,
//     status reports (sequential, ID order)
//
// The parallel phases run on sim's persistent worker pool through
// shard functions bound once at construction, with all per-tick
// parameters staged in World scratch fields — a steady-state tick
// allocates nothing and spawns no goroutines.
func (w *World) tick(prev, now sim.Time) {
	dt := (now - prev).Seconds()
	if dt <= 0 {
		return
	}
	// Apply membership removals batched since the last tick (departures
	// mark their shard's list dirty instead of paying an O(n) memmove
	// per departure; see removeActive). The tick snapshot is the merged
	// sorted view — with one shard a zero-copy alias of its list.
	w.compactAllActive()
	w.tickIDs = w.mergedActive() // snapshot: phases 1-4 do not change membership
	w.tickDt = dt
	w.tickLive = w.liveEdge(now)
	w.tickLoss = 0
	if w.Faults != nil {
		w.tickLoss = w.Faults.LossFrac(now)
	}
	// Lane and flag-list counts cover both indexing schemes: the
	// legacy worker-sharded playback indexes by worker slot (<
	// GOMAXPROCS), the shard-local playback by world shard (< nshards).
	lanes := runtime.GOMAXPROCS(0)
	if w.nshards > lanes {
		lanes = w.nshards
	}
	if w.sharded != nil {
		w.ensureLanes(lanes)
	}
	if w.wheelOn() {
		// Stage the Inequality (1) detector for the playback shards: a
		// node whose deviation crossed Ts with the adaptation cool-down
		// expired is flagged into its shard's list and merged into this
		// tick's control drain (see playbackShard and controlWheel).
		w.tickAdaptCut = now - w.P.Ta
		w.tickTsF = float64(w.P.Ts)
		for len(w.advFlagShards) < lanes {
			w.advFlagShards = append(w.advFlagShards, nil)
		}
		for i := range w.advFlagShards {
			w.advFlagShards[i] = w.advFlagShards[i][:0]
		}
	}
	if w.phaseClock {
		t0 := time.Now()
		w.allocate()
		t1 := time.Now()
		w.advance()
		t2 := time.Now()
		w.playback()
		t3 := time.Now()
		w.account(w.tickIDs)
		t4 := time.Now()
		w.Phases.Allocate += t1.Sub(t0).Nanoseconds()
		w.Phases.Advance += t2.Sub(t1).Nanoseconds()
		w.Phases.Playback += t3.Sub(t2).Nanoseconds()
		w.Phases.Account += t4.Sub(t3).Nanoseconds()
	} else {
		w.allocate()
		w.advance()
		w.playback()
		w.account(w.tickIDs)
	}
	w.faultStep(dt)
	if w.controlClock {
		start := time.Now()
		w.dispatchControl(now)
		w.ControlNanos += time.Since(start).Nanoseconds()
	} else {
		w.dispatchControl(now)
	}
	// Settle departures that happened during control (stall abandons)
	// so per-tick observers see a membership-consistent active list.
	// One pass per tick with any departures, instead of one memmove per
	// departure.
	w.compactAllActive()
}

// dispatchControl runs the control phase through the deferred-effect
// sharded engine, the single-shard due wheel, or the legacy full
// sweep.
func (w *World) dispatchControl(now sim.Time) {
	if w.deferredOn() {
		w.controlSharded(now)
	} else if w.wheelOn() {
		w.controlWheel(now)
	} else {
		w.control(w.tickIDs, now)
	}
}

// allocate runs the water-filling allocator on every serving node.
// Each parent writes the allocated rate into its children's
// subscription slots; a (child, sub-stream) slot has exactly one
// parent, so the parallel writes never collide — including across
// world shards, which is why the shard-local path needs no routing.
// With more than one shard the phase iterates the per-shard active
// lists directly (one worker per world shard, no merged-view
// rebuild); the single-shard path keeps the legacy range split over
// the merged snapshot. The allocator is per-parent independent, so
// both partitions compute bit-identical rates.
func (w *World) allocate() {
	if w.nshards > 1 {
		sim.ParallelGrain(w.nshards, 1, w.allocateLocalFn)
		return
	}
	sim.Parallel(len(w.tickIDs), w.allocateFn)
}

func (w *World) allocateShard(lo, hi int) {
	if w.labelPhases {
		profiling.WithLabel("allocate", func() { w.allocateIDs(w.tickIDs[lo:hi]) })
		return
	}
	w.allocateIDs(w.tickIDs[lo:hi])
}

// allocateLocalRange allocates for world shards [lo, hi) over their
// own active lists.
func (w *World) allocateLocalRange(lo, hi int) {
	if w.labelPhases {
		profiling.WithLabel("allocate", func() { w.allocateLocal(lo, hi) })
		return
	}
	w.allocateLocal(lo, hi)
}

func (w *World) allocateLocal(lo, hi int) {
	for si := lo; si < hi; si++ {
		w.allocateIDs(w.shards[si].active)
	}
}

func (w *World) allocateIDs(ids []int) {
	subRate := w.P.Layout.SubRateBps()
	k := w.P.Layout.K
	equalSplit := w.P.EqualSplitAllocator()
	for _, id := range ids {
		n := w.nodes[id]
		demands := n.allocDemands[:0]
		slots := n.allocSlots[:0]
		for j := 0; j < k; j++ {
			for _, c := range n.children[j] {
				child := w.nodes[c]
				// The child's downlink bounds what it can absorb on
				// any lane; a caught-up child additionally only
				// needs the live sub-stream rate.
				need := child.EP.DownloadBps / float64(k)
				if child.Subs[j].H >= n.Subs[j].H-1 && need > subRate {
					need = subRate
				}
				demands = append(demands, netmodel.Demand{Need: need, Weight: 1})
				slots = append(slots, allocSlot{child: c, sub: j})
			}
		}
		n.allocDemands = demands
		n.allocSlots = slots
		if len(demands) == 0 {
			continue
		}
		if equalSplit {
			// Paper Eq. (5) literally: capacity/D per transmission,
			// wasting any surplus a caught-up child cannot absorb.
			rate := netmodel.EqualSplit(n.EP.UploadBps, len(demands))
			for i, s := range slots {
				r := rate
				if r > demands[i].Need {
					r = demands[i].Need
				}
				w.nodes[s.child].Subs[s.sub].RateBps = r
			}
			continue
		}
		rates := n.filler.Fill(n.EP.UploadBps, demands)
		for i, s := range slots {
			w.nodes[s.child].Subs[s.sub].RateBps = rates[i]
		}
	}
}

// advance moves every H value forward by dt along the per-sub-stream
// parent forests. The seed engine re-walked each forest recursively
// with per-node closures every tick; here the walk order is a cached
// flattened edge array (see topo.go) rebuilt only when a sub-stream's
// topology epoch moved, so the steady-state sweep is linear,
// branch-light and allocation-free. Sub-streams are independent, so
// the loop parallelises across them at grain 1.
func (w *World) advance() {
	w.ensureTopo()
	sim.ParallelGrain(w.P.Layout.K, 1, w.advanceFn)
}

func (w *World) advanceShard(lo, hi int) {
	if w.labelPhases {
		profiling.WithLabel("advance", func() { w.advanceSubs(lo, hi) })
		return
	}
	w.advanceSubs(lo, hi)
}

func (w *World) advanceSubs(lo, hi int) {
	live := w.tickLive
	dt := w.tickDt
	// Burst loss thins every transfer by the staged fraction. With no
	// active loss window lossKeep is exactly 1.0, an exact float
	// identity, so fault-free runs move bit-identical H values.
	lossKeep := 1 - w.tickLoss
	blockBits := 8 * float64(w.P.Layout.BlockBytes)
	nodes := w.nodes
	for j := lo; j < hi; j++ {
		// Servers sit pinned at the live edge before their subtrees
		// advance (they lead every cached edge list they appear in).
		for _, sid := range w.servers {
			nodes[sid].Subs[j].H = live
		}
		for _, e := range w.topo.order[j] {
			s := e.cs
			moved := s.RateBps * dt * lossKeep / blockBits
			newH := s.H + moved
			if parentH := *e.ph; newH > parentH {
				newH = parentH
			}
			if newH > live {
				newH = live
			}
			if newH < s.H {
				newH = s.H
			}
			s.movedBlocks += newH - s.H
			s.H = newH
		}
	}
}

// playback advances deadlines, integrates missed blocks, and detects
// media-ready transitions. Each node touches only its own state; with
// a sharded sink, media-ready records are logged straight from the
// shard's own lane (the merge on drain restores canonical order).
// With more than one world shard the sweep runs over the per-shard
// active lists (one worker per world shard), so the Inequality (1)
// flag lists come out pre-partitioned by owner shard — the control
// phase routes them with a straight append instead of a per-ID
// shard lookup.
func (w *World) playback() {
	if w.nshards > 1 {
		sim.ParallelGrain(w.nshards, 1, w.playbackLocalFn)
		return
	}
	sim.ParallelShard(len(w.tickIDs), minPhaseGrain, w.playbackFn)
}

// minPhaseGrain mirrors sim's default Parallel grain for the per-node
// phases.
const minPhaseGrain = 64

func (w *World) playbackShard(shard, lo, hi int) {
	if w.labelPhases {
		profiling.WithLabel("playback", func() { w.playbackIDs(shard, w.tickIDs[lo:hi]) })
		return
	}
	w.playbackIDs(shard, w.tickIDs[lo:hi])
}

// playbackLocalRange plays back world shards [lo, hi) over their own
// active lists; flag lists and log lanes are indexed by world shard.
func (w *World) playbackLocalRange(lo, hi int) {
	if w.labelPhases {
		profiling.WithLabel("playback", func() { w.playbackLocal(lo, hi) })
		return
	}
	w.playbackLocal(lo, hi)
}

func (w *World) playbackLocal(lo, hi int) {
	for si := lo; si < hi; si++ {
		w.playbackIDs(si, w.shards[si].active)
	}
}

func (w *World) playbackIDs(shard int, ids []int) {
	dt := w.tickDt
	beta := w.P.Layout.SubBlocksPerSecond()
	readyBlocks := w.P.ReadyBlocks()
	var lane *logsys.Lane
	if w.sharded != nil && shard < len(w.laneSinks) {
		lane = w.laneSinks[shard]
	}
	// Inequality (1) detection rides the playback sweep while the
	// sub-stream state is cache-hot: H only moves in the advance phase,
	// so a deviation crossing observed here is exactly what the control
	// phase of this same tick would observe. Each shard owns a disjoint
	// slice of nodes and its own flag list, so the writes never collide.
	flagging := w.wheelOn() && shard < len(w.advFlagShards)
	for _, id := range ids {
		n := w.nodes[id]
		if n.IsServer() {
			continue
		}
		switch n.State {
		case StateSubscribing:
			if n.MinH() >= n.startPos+readyBlocks {
				n.State = StateReady
				n.ReadyAt = w.Engine.Now()
				n.hot.playDeadline = n.startPos
				n.readyPending = true
				if lane != nil {
					// Lock-free parallel log: same record the control
					// phase would emit (same virtual time, same fields).
					w.logLane(lane, n, logsys.Record{Kind: logsys.KindMediaReady})
					n.readyLogged = true
				}
			}
		case StateReady:
			h := n.hot
			d0 := h.playDeadline
			d1 := d0 + beta*dt
			for j := range n.Subs {
				s := &n.Subs[j]
				h0 := s.H - s.movedBlocks
				rho := s.movedBlocks / dt
				h.missedBlocks += missedSeq(h0, rho, d0, d1, beta)
				h.totalBlocks += d1 - d0
			}
			h.playDeadline = d1
		}
		if flagging && !n.advFlag && n.lastAdaptAt <= w.tickAdaptCut &&
			len(n.partnerList) > 0 &&
			(n.State == StateSubscribing || n.State == StateReady) {
			maxH := n.MaxH()
			for j := range n.Subs {
				if n.Subs[j].Parent != NoParent && maxH-n.Subs[j].H >= w.tickTsF {
					n.advFlag = true
					w.advFlagShards[shard] = append(w.advFlagShards[shard], int32(n.ID))
					break
				}
			}
		}
	}
}

// account drains per-subscription movedBlocks into the byte counters
// of child and parent. Sequential so parents aggregate deterministically.
func (w *World) account(ids []int) {
	blockBytes := float64(w.P.Layout.BlockBytes)
	for _, id := range ids {
		n := w.nodes[id]
		for j := range n.Subs {
			s := &n.Subs[j]
			if s.movedBlocks == 0 {
				continue
			}
			bytes := s.movedBlocks * blockBytes
			n.downBytes += bytes
			n.CumDownloadB += bytes
			if p := s.Parent; p != NoParent {
				parent := w.nodes[p]
				parent.upBytes += bytes
				parent.CumUploadB += bytes
			}
			s.movedBlocks = 0
		}
	}
}

// control runs the per-node protocol logic in deterministic ID order —
// the legacy full sweep, kept for A/B verification against the due
// wheel. Nodes may depart (stall-abandon) or change subscriptions
// here, so it iterates a reusable snapshot and re-checks liveness.
func (w *World) control(ids []int, now sim.Time) {
	w.controlIDs = append(w.controlIDs[:0], ids...)
	for _, id := range w.controlIDs {
		n := w.nodes[id]
		if n.State == StateDeparted || n.IsServer() {
			continue
		}
		w.controlVisit(&w.seqCtx, n, now)
	}
}

// controlVisit runs one node's control sequence for this tick. The
// statement order is the protocol's per-tick contract: BM refresh,
// gossip, state-specific subscription work, recruiting, the stall
// check, then status reports. Every control mode — the full sweep,
// the due wheel, the deferred-effect shards — executes exactly this
// body; the visit context decides whether cross-node mutations apply
// in place (sequential modes) or defer to the barrier (sharded mode).
func (w *World) controlVisit(vc *vctx, n *Node, now sim.Time) {
	vc.beginVisit(n)
	if vc.deferred {
		vc.sh.visits++
	} else {
		w.ControlVisits++
	}
	if n.readyPending {
		n.readyPending = false
		if vc.deferred {
			vc.sh.ready++
		} else {
			w.ReadySessions++
		}
		if n.readyLogged {
			n.readyLogged = false // already emitted from the playback lane
		} else {
			w.vlog(vc, n, logsys.Record{Kind: logsys.KindMediaReady})
		}
	}
	hint := w.refreshBMs(vc, n, now)
	w.gossipStep(vc, n, now)
	switch n.State {
	case StateJoining:
		w.tryInitialSubscription(vc, n, now)
	case StateSubscribing, StateReady:
		adv := n.advFlag
		n.advFlag = false
		filled := w.fillStalledSubstreams(vc, n)
		// The §IV-B evaluation reads only partner BMs, the partner set
		// and the node's own Subs. Each way an input can newly violate
		// an inequality has a dedicated signal: the playback phase flags
		// Inequality (1) crossings of the fluid H state (adv), the BM
		// refresh reports changes that can affect Inequality (2) or the
		// parent set (hint, see refreshBMs), a re-parented sub-stream
		// re-evaluates immediately (filled), and membership changes from
		// outside the visit zero adaptDue via touchNode. Skipping the
		// evaluation otherwise is behaviour-preserving. The full sweep
		// evaluates unconditionally, as the seed engine did.
		if !w.wheelOn() || adv || hint || filled || n.adaptDue <= now {
			w.adapt(vc, n, now)
			if w.wheelOn() {
				n.adaptDue = w.adaptEvalBound(n, now)
			}
		}
	}
	w.maintainPartners(vc, n, now)
	w.stallCheck(vc, n, now)
	if n.State == StateDeparted || vc.abandoned {
		return // abandoned mid-interval: the bad report is censored
	}
	w.statusReports(vc, n, now)
}

// refreshBMs updates cached partner buffer maps that are due and
// reports whether the scan changed any §IV-B adaptation input
// (evalHint): a refresh can create a new Inequality (2) violation only
// if it advanced the best-partner head past the value held at the last
// evaluation (bestSeen), refreshed a current parent's BM, or tore a
// partnership down. Refreshes that do none of those leave every
// adaptation input the partner set holds provably unchanged — partner
// heads only ever advance, so a scan whose every refreshed MaxLatest
// stays at or below bestSeen cannot have raised the best reference
// point past what the last evaluation already judged against. With
// control loss enabled, a due refresh may be skipped, leaving the view
// one period staler.
//
// Iteration follows the sorted partner-ID slice: the seed ranged over
// the Partners map while drawing from n.rng inside the loop, so with
// control loss enabled the RNG stream — and hence the whole run —
// depended on Go's randomized map iteration order.
func (w *World) refreshBMs(vc *vctx, n *Node, now sim.Time) (evalHint bool) {
	if now < n.bmDue {
		// Nothing can be due yet (bmDue is a conservative lower bound
		// maintained below and reset on partner establishment), so the
		// whole scan — including its failure-detection side effects,
		// which only ever fire on due entries — is a provable no-op.
		return false
	}
	due := sim.Time(0)
	for i := 0; i < len(n.partnerIDs); {
		pid := n.partnerIDs[i]
		p := n.partnerList[i]
		if now-p.BMAt < w.P.BMPeriod {
			if next := p.BMAt + w.P.BMPeriod; due == 0 || next < due {
				due = next
			}
			i++
			continue
		}
		partner := w.nodes[pid]
		if partner.State == StateDeparted {
			// Crash detection: the BM exchange fails, the partnership
			// is torn down, and any sub-stream served by the corpse is
			// marked stalled. delPartner shifts the slice left, so i
			// stays put. The local half (our own partner set) applies
			// at once even in deferred mode — only this node reads it;
			// the corpse-side child detach defers.
			evalHint = true
			n.delPartner(pid)
			n.partnerChanges++
			if vc.deferred {
				vc.emitCrash(n, pid)
			} else {
				for j := range n.Subs {
					if n.Subs[j].Parent == pid {
						partner.removeChild(j, n.ID)
						n.Subs[j].Parent = NoParent
						n.Subs[j].RateBps = 0
					}
				}
				w.reclaimCorpseChildren(partner)
			}
			continue
		}
		if w.P.ControlLossProb > 0 && n.rng.Bool(w.P.ControlLossProb) {
			p.BMAt = now // the exchange round happened but was lost
		} else {
			// A remote read of frozen state: every H/parent/state write
			// is confined to sequential phases or the barrier, so the
			// snapshot is the same whatever shard (or tick-phase slot)
			// performs it.
			partner.fillBufferMap(&p.BM, n.ID)
			p.BMAt = now
			vc.sh.bmRefreshes++
			if !evalHint {
				if p.BM.MaxLatest() > n.bestSeen {
					evalHint = true
				} else {
					for j := range n.Subs {
						if vc.parent(n, j) == pid {
							evalHint = true
							break
						}
					}
				}
			}
		}
		if next := p.BMAt + w.P.BMPeriod; due == 0 || next < due {
			due = next
		}
		i++
	}
	if due == 0 {
		// No partners left: any future partner resets bmDue to zero at
		// establishment, so this bound can be a full period out.
		due = now + w.P.BMPeriod
	}
	n.bmDue = due
	return evalHint
}

// gossipStep merges membership knowledge with one random partner. The
// partner choice draws from n's own RNG at visit time; the exchange
// itself (which draws from the *partner's* mCache RNG and mutates both
// caches) defers to the barrier in deferred mode so the partner's
// streams advance in canonical order.
func (w *World) gossipStep(vc *vctx, n *Node, now sim.Time) {
	if now-n.lastGossipAt < w.P.GossipPeriod || len(n.Partners) == 0 {
		return
	}
	n.lastGossipAt = now
	pid := n.pickRandomPartner()
	partner := w.nodes[pid]
	if partner.State == StateDeparted {
		return // detected and torn down at the next BM refresh
	}
	if vc.deferred {
		vc.emitPar(pid, effGossip, int32(pid), 0, 0)
		return
	}
	for _, e := range partner.MCache.Sample(4, n.ID, nil) {
		n.MCache.Insert(e, now)
	}
	partner.MCache.Insert(w.bootEntry(n), now)
}

func (n *Node) pickRandomPartner() int {
	// partnerIDs is maintained sorted, so the draw is deterministic
	// with no per-call collect-and-sort.
	return n.partnerIDs[n.rng.Intn(len(n.partnerIDs))]
}

// bestPartnerH returns the max of max-latest over all partners' cached
// BMs — the reference point of Inequality (2) and of the join shift.
func (n *Node) bestPartnerH() (int64, bool) {
	var best int64
	found := false
	for _, p := range n.partnerList {
		if m := p.BM.MaxLatest(); !found || m > best {
			best = m
			found = true
		}
	}
	return best, found
}

// tryInitialSubscription implements §IV-A: once partners' BMs are
// visible, choose the start position m - Tp and subscribe each
// sub-stream to an eligible parent. In deferred mode the H rewrite and
// the Joining→Subscribing transition commit at the barrier (remote
// visits read our H through fillBufferMap); the subscribe decisions
// are computed at visit time against the would-be start position.
func (w *World) tryInitialSubscription(vc *vctx, n *Node, now sim.Time) {
	best, ok := n.bestPartnerH()
	if !ok || best <= w.P.Tp {
		return // partners know nothing useful yet
	}
	start := float64(best - w.P.Tp)
	if vc.deferred {
		vc.emitPar(n.ID, effStartSub, 0, 0, start)
	} else {
		n.startPos = start
		for j := range n.Subs {
			n.Subs[j].H = start
		}
	}
	got := 0
	for j := range n.Subs {
		if w.subscribe(vc, n, j, best, start) {
			got++
		}
	}
	if got > 0 {
		if vc.deferred {
			vc.emitPar(n.ID, effStartSub, 1, 0, start)
		} else {
			n.State = StateSubscribing
			n.StartSubAt = now
		}
		w.vlog(vc, n, logsys.Record{Kind: logsys.KindStartSub})
	}
}

// fillStalledSubstreams re-subscribes sub-streams without a parent
// (not rate-limited by Ta — there is nothing to disrupt), reporting
// whether any sub-stream was re-parented: a fresh parent changes the
// §IV-B inputs, so the caller must re-evaluate adaptation this tick.
func (w *World) fillStalledSubstreams(vc *vctx, n *Node) bool {
	stalled := false
	for j := range n.Subs {
		if vc.parent(n, j) == NoParent {
			stalled = true
			break
		}
	}
	if !stalled {
		return false // the common case: skip the partner-BM max scan entirely
	}
	best, ok := n.bestPartnerH()
	if !ok {
		return false
	}
	acted := false
	for j := range n.Subs {
		if vc.parent(n, j) == NoParent {
			if w.subscribe(vc, n, j, best, n.Subs[j].H) {
				acted = true
			}
		}
	}
	return acted
}

// subscribe picks an eligible partner as parent for sub-stream j.
// Eligibility follows §IV-B: the candidate must be ahead of us on j,
// within Tp of the best partner (Inequality (2) at selection time),
// and not create a cycle. Among several eligible partners the choice
// is random (the paper's randomized selection).
func (w *World) subscribe(vc *vctx, n *Node, j int, best int64, hj float64) bool {
	cands := n.candScratch[:0]
	for i, pid := range n.partnerIDs {
		p := n.partnerList[i]
		if p.BM.K() != w.P.Layout.K {
			continue
		}
		if w.nodes[pid].State == StateDeparted {
			continue // a real subscribe would fail to connect
		}
		latest := p.BM.Latest[j]
		if float64(latest) <= hj {
			continue // nothing we need
		}
		if best-latest >= w.P.Tp {
			continue // Inequality (2) would already be violated
		}
		if w.wouldCycle(n, j, pid) {
			continue
		}
		cands = append(cands, pid)
	}
	n.candScratch = cands
	if len(cands) == 0 {
		return false
	}
	var choice int
	if w.P.ParentSelection == "freshest" {
		// Greedy ablation: always take the partner advertising the
		// highest sequence on this sub-stream.
		choice = cands[0]
		for _, pid := range cands[1:] {
			if n.Partners[pid].BM.Latest[j] > n.Partners[choice].BM.Latest[j] {
				choice = pid
			}
		}
	} else {
		choice = cands[n.rng.Intn(len(cands))]
	}
	if vc.parent(n, j) == choice {
		return true
	}
	vc.setParent(n, j, choice)
	return true
}

// wouldCycle walks candidate's ancestry on sub-stream j to reject
// subscriptions that would close a loop.
func (w *World) wouldCycle(n *Node, j, candidate int) bool {
	cur := candidate
	for steps := 0; steps < len(w.nodes); steps++ {
		if cur == n.ID {
			return true
		}
		next := w.nodes[cur].Subs[j].Parent
		if next == NoParent {
			return false
		}
		cur = next
	}
	return true // unreachable unless the forest is corrupt; fail safe
}

// adapt implements §IV-B peer adaptation: Inequality (1) monitors the
// node's own sub-stream deviation against Ts; Inequality (2) monitors
// the parent's advertised progress against the best partner and Tp.
// At most one parent switch per cool-down period Ta.
func (w *World) adapt(vc *vctx, n *Node, now sim.Time) {
	if now-n.lastAdaptAt < w.P.Ta {
		return
	}
	best, ok := n.bestPartnerH()
	if !ok {
		return
	}
	// Record the reference point this evaluation judged against: a later
	// BM refresh only changes the Inequality (2) verdict if it pushes
	// some partner head past this value (see refreshBMs).
	n.bestSeen = best
	maxH := n.MaxH()
	worst, worstLag := -1, float64(0)
	for j := range n.Subs {
		pid := vc.parent(n, j)
		if pid == NoParent {
			continue
		}
		lag1 := maxH - n.Subs[j].H // Inequality (1) deviation
		violated := lag1 >= float64(w.P.Ts)
		if p, okp := n.Partners[pid]; okp && p.BM.K() == w.P.Layout.K {
			if best-p.BM.Latest[j] >= w.P.Tp { // Inequality (2)
				violated = true
			}
		} else {
			// The parent is no longer a partner (link lost): always
			// re-select.
			violated = true
		}
		if violated && lag1 >= worstLag {
			worst, worstLag = j, lag1
		}
	}
	if worst < 0 {
		return
	}
	// Drop the failing parent and re-select; if no eligible partner
	// exists the sub-stream stays stalled and the next rounds retry.
	if vc.parent(n, worst) != NoParent {
		vc.setParent(n, worst, NoParent)
	}
	w.subscribe(vc, n, worst, best, n.Subs[worst].H)
	n.lastAdaptAt = now
	if vc.deferred {
		vc.sh.adapts++
	} else {
		w.Adaptations++
	}
}

// maintainPartners recruits replacements when the partner set shrinks
// below the minimum, re-contacting the bootstrap if the mCache is dry.
func (w *World) maintainPartners(vc *vctx, n *Node, now sim.Time) {
	if len(n.Partners) >= w.P.MinPartners || now < n.recruitingDue {
		return
	}
	n.recruitingDue = now + 2*sim.Second
	if n.MCache.Len() == 0 {
		if vc.deferred {
			vc.emit(effSchedule, 1, 0, w.P.BootstrapRTT, 0)
		} else {
			w.Engine.AfterCall(w.P.BootstrapRTT, w.bootstrapFn, sim.EvPayload{A: n.ID})
		}
		return
	}
	w.recruit(vc, n)
}

// stallCheck models the frustrated user: once the current report
// interval shows badly stalled playback, the user departs and
// re-enters with a constant hazard — usually *before* the next status
// report fires. This is precisely the censoring mechanism of §V-D:
// the stalled interval's low continuity index never reaches the log
// server, which is why NAT/firewall users' *reported* continuity can
// exceed direct-connect users' despite worse actual service.
func (w *World) stallCheck(vc *vctx, n *Node, now sim.Time) {
	if n.State != StateReady || n.hot.totalBlocks <= 0 || w.StallAbandonProb <= 0 {
		return
	}
	if now-n.lastReportAt < w.P.ReportPeriod/4 {
		return // too little evidence this interval
	}
	ci := 1 - n.hot.missedBlocks/n.hot.totalBlocks
	if ci >= w.StallContinuity {
		return
	}
	// Per-tick hazard such that the total abandon probability over one
	// report period is ~StallAbandonProb.
	pTick := w.StallAbandonProb * float64(w.Engine.TickPeriod()) / float64(w.P.ReportPeriod)
	if pTick > 1 {
		pTick = 1
	}
	if n.rng.Bool(pTick) {
		if vc.deferred {
			// The departure mutates shared membership state; it commits at
			// the barrier. Mark the visit so the drain loop does not re-arm
			// a node that has already decided to leave.
			vc.abandoned = true
			vc.emit(effAbandon, 0, 0, 0, 0)
		} else {
			w.abandonAndRejoin(n)
		}
	}
}

// statusReports emits the periodic QoS / traffic / partner reports.
func (w *World) statusReports(vc *vctx, n *Node, now sim.Time) {
	if now-n.lastReportAt < w.P.ReportPeriod {
		return
	}
	n.lastReportAt = now
	continuity := 1.0
	hasCI := n.State == StateReady && n.hot.totalBlocks > 0
	if hasCI {
		continuity = 1 - n.hot.missedBlocks/n.hot.totalBlocks
		if continuity < 0 {
			continuity = 0
		}
		w.vlog(vc, n, logsys.Record{Kind: logsys.KindQoS, Continuity: continuity})
	}
	w.vlog(vc, n, logsys.Record{
		Kind:          logsys.KindTraffic,
		UploadBytes:   int64(n.upBytes),
		DownloadBytes: int64(n.downBytes),
	})
	in, out := n.PartnerCounts()
	reach, total, natLinks := vc.parentStats(n)
	w.vlog(vc, n, logsys.Record{
		Kind:            logsys.KindPartner,
		InPartners:      in,
		OutPartners:     out,
		ParentReachable: reach,
		ParentTotal:     total,
		NATParentLinks:  natLinks,
		PartnerChanges:  n.partnerChanges,
	})
	n.hot.missedBlocks, n.hot.totalBlocks = 0, 0
	n.upBytes, n.downBytes = 0, 0
	n.partnerChanges = 0
	if vc.deferred {
		vc.emit(effBootUpdate, int32(in+out), 0, 0, 0)
	} else {
		w.Boot.UpdatePartnerCount(n.ID, in+out)
	}
}
