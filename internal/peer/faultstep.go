package peer

// faultStep runs the sequential per-tick fault draws. It sits between
// the accounting and control phases: the data plane has settled, no
// parallel work is in flight, and the control pass that follows will
// observe the damage in the same tick (Inequality (1) lag, stalled
// sub-streams, shrunken partner sets). Running sequentially on the
// world-level fault RNG keeps firings identical at any GOMAXPROCS.
func (w *World) faultStep(dt float64) {
	if w.Faults == nil || w.Faults.Cfg.PartnerKillRate <= 0 {
		return
	}
	// PartnerKillRate is partnerships killed per second; the integer
	// part fires unconditionally, the fractional part as a Bernoulli
	// draw, so the expected kill count is exact at any tick period.
	mean := w.Faults.Cfg.PartnerKillRate * dt
	kills := int(mean)
	if frac := mean - float64(kills); frac > 0 && w.faultRNG.Bool(frac) {
		kills++
	}
	for i := 0; i < kills; i++ {
		w.killRandomPartnership()
	}
}

// killRandomPartnership picks a uniformly random (peer, partner) edge
// among active non-server peers and severs it. Candidate collection
// walks the sorted active-ID snapshot, so the same seed enumerates the
// same candidates in the same order on every run.
func (w *World) killRandomPartnership() {
	cands := w.killScratch[:0]
	for _, id := range w.tickIDs {
		n := w.nodes[id]
		if n.State == StateDeparted || n.IsServer() || len(n.partnerIDs) == 0 {
			continue
		}
		cands = append(cands, id)
	}
	w.killScratch = cands
	if len(cands) == 0 {
		return
	}
	n := w.nodes[cands[w.faultRNG.Intn(len(cands))]]
	pid := n.partnerIDs[w.faultRNG.Intn(len(n.partnerIDs))]
	// Route through the effect-apply path shared with the deferred
	// engine, applied immediately (the fault phase is sequential) so the
	// firing sequence is identical under any shard count.
	w.applyEffect(effect{kind: effKill, src: int32(n.ID), a: int32(pid)}, w.Engine.Now())
}

// severPartnership models an abrupt mid-session connection kill (the
// paper's silent partner departures seen as broken TCP links): both
// ends drop the partnership at once, and any sub-stream flowing over
// the link stalls until fillStalledSubstreams re-subscribes it.
func (w *World) severPartnership(a, b *Node) {
	a.delPartner(b.ID)
	b.delPartner(a.ID)
	a.partnerChanges++
	b.partnerChanges++
	w.Faults.Stats.PartnerKills++
	for j := range a.Subs {
		if a.Subs[j].Parent == b.ID {
			b.removeChild(j, a.ID)
			a.Subs[j].Parent = NoParent
			a.Subs[j].RateBps = 0
		}
		if b.Subs[j].Parent == a.ID {
			a.removeChild(j, b.ID)
			b.Subs[j].Parent = NoParent
			b.Subs[j].RateBps = 0
		}
	}
	// The control pass rescans both nodes' partner sets immediately.
	a.bmDue = 0
	b.bmDue = 0
	w.touchNode(a.ID)
	w.touchNode(b.ID)
}
