package peer

import (
	"runtime"
	"sort"
	"testing"

	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// setShards returns a world mutator configuring n shards (and, when
// force is set, the ForceDeferredControl A/B hook so a one-shard world
// runs the deferred-effect serialization).
func setShards(t *testing.T, n int, force bool) func(*World) {
	return func(w *World) {
		if err := w.SetShards(n); err != nil {
			t.Fatal(err)
		}
		w.ForceDeferredControl = force
	}
}

// goldenDeferredDigest is the digest of the loss-free golden scenario
// under the deferred-effect serialization (DESIGN.md §11) — the sharded
// engine's counterpart of goldenRunDigest. It is intentionally a
// different constant: deferring cross-node control mutations to the
// tick barrier is a second valid serialization of the same protocol,
// not a bit-identical replay of the sequential sweep. Any change to the
// effect taxonomy, the (src, seq) drain order or the frozen-state
// contract moves it. Moved once by the target-sharded drain of
// DESIGN.md §13 (previously 0xd81425e7e92079c5): routed single-target
// effects now commit in the parallel drain passes *before* the
// sequential residue, a third valid serialization — still one digest
// across every shard count × GOMAXPROCS.
const goldenDeferredDigest uint64 = 0x702c509d4fc1a3d6

// TestShardedDigestInvariant is the tentpole determinism property: the
// deferred-effect engine must produce one digest for every shard count
// and every GOMAXPROCS. shards=1 with ForceDeferredControl pins the
// canonical serialization at the bottom of the range, so the invariant
// covers shards ∈ {1, 2, 4, 8, 16} × GOMAXPROCS ∈ {1, 8}.
func TestShardedDigestInvariant(t *testing.T) {
	orig := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(orig)
	base := digestScenario(t, 0, setShards(t, 1, true))
	t.Logf("deferred-engine digest = %#x", base)
	if base != goldenDeferredDigest {
		t.Fatalf("deferred-engine digest %#x differs from golden %#x", base, goldenDeferredDigest)
	}
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		for _, shards := range []int{1, 2, 4, 8, 16} {
			force := shards == 1
			if got := digestScenario(t, 0, setShards(t, shards, force)); got != base {
				t.Fatalf("shards=%d GOMAXPROCS=%d: digest %#x != %#x", shards, procs, got, base)
			}
		}
	}
}

// TestShardedDigestInvariantWithControlLoss repeats the invariant with
// lossy control messaging: ControlLossProb > 0 makes every BM refresh
// draw from the node RNG, so any divergence in visit order or count
// shows up immediately.
func TestShardedDigestInvariantWithControlLoss(t *testing.T) {
	base := digestScenario(t, 0.2, setShards(t, 1, true))
	for _, shards := range []int{2, 8} {
		if got := digestScenario(t, 0.2, setShards(t, shards, false)); got != base {
			t.Fatalf("shards=%d: lossy digest %#x != %#x", shards, got, base)
		}
	}
}

// TestShardedChaosDigestInvariant runs the adversarial fault scenario
// (tracker outage, NAT refusals, partner kills, burst loss, control
// loss) across shard counts and parallelism levels: fault-phase kills
// route through the shared effect-apply path, so their damage must be
// identical under any partition.
func TestShardedChaosDigestInvariant(t *testing.T) {
	orig := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(orig)
	for _, seed := range []uint64{7, 4242} {
		base, _ := schedScenario(t, seed, false, setShards(t, 1, true))
		for _, procs := range []int{1, 8} {
			runtime.GOMAXPROCS(procs)
			for _, shards := range []int{2, 4, 16} {
				got, _ := schedScenario(t, seed, false, setShards(t, shards, false))
				if got != base {
					t.Fatalf("seed=%d shards=%d GOMAXPROCS=%d: chaos digest %#x != %#x",
						seed, shards, procs, got, base)
				}
			}
		}
		t.Logf("seed %d: chaos digest %#x invariant across shards and GOMAXPROCS", seed, base)
	}
}

// TestShardAssignmentStable pins the migration-free ownership contract:
// after a full churn scenario every node — live or departed — still
// hashes to the shard that owns it, every shard's active list holds
// only its own live nodes in ascending order, and the O(shards)
// aggregate counters agree with a full recount.
func TestShardAssignmentStable(t *testing.T) {
	const shards = 4
	_, w := schedScenario(t, 4242, false, setShards(t, shards, false))
	if w.NumShards() != shards {
		t.Fatalf("NumShards = %d, want %d", w.NumShards(), shards)
	}
	for _, n := range w.Nodes() {
		if n == nil {
			continue
		}
		if want := shardIndex(n.ID, shards); int(n.shard) != want {
			t.Fatalf("node %d on shard %d, hash says %d", n.ID, n.shard, want)
		}
	}
	w.compactAllActive()
	total, peers := 0, 0
	for si, sh := range w.shards {
		prev := -1
		for _, id := range sh.active {
			n := w.nodes[id]
			if int(n.shard) != si {
				t.Fatalf("shard %d active list holds node %d owned by shard %d", si, id, n.shard)
			}
			if n.State == StateDeparted {
				t.Fatalf("shard %d active list holds departed node %d after compaction", si, id)
			}
			if id <= prev {
				t.Fatalf("shard %d active list out of order: %d after %d", si, id, prev)
			}
			prev = id
			total++
			if !n.IsServer() {
				peers++
			}
		}
	}
	if got := w.ActiveCount(); got != total {
		t.Fatalf("ActiveCount = %d, recount = %d", got, total)
	}
	if got := w.ActivePeerCount(); got != peers {
		t.Fatalf("ActivePeerCount = %d, recount = %d", got, peers)
	}
	if ids := w.activeView(); len(ids) != total {
		t.Fatalf("activeView has %d IDs, recount = %d", len(ids), total)
	}
}

// TestShardedInvariantsUnderChurn drives a sharded world through joins,
// watch-time departures and a program-end cliff, checking the full
// structural invariant suite (forest consistency, symmetric
// partnerships, membership lists) at every step, and the aggregate
// counters against a recount each tick.
func TestShardedInvariantsUnderChurn(t *testing.T) {
	p := DefaultParams()
	p.ReportPeriod = 30 * sim.Second
	engine := sim.NewEngine(sim.Second)
	sink := &logsys.MemorySink{}
	w, err := NewWorld(p, engine, sink, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetShards(4); err != nil {
		t.Fatal(err)
	}
	w.AddServer(15 * testRate)
	w.AddServer(15 * testRate)
	engine.Run(10 * sim.Second)
	prof := netmodel.DefaultCapacityProfile(testRate)
	rng := w.rng.SplitLabeled("churn")
	for i := 0; i < 60; i++ {
		i := i
		at := 10*sim.Second + sim.Time(i)*2*sim.Second
		engine.Schedule(at, func() {
			class := netmodel.UserClass(i % 4)
			watch := sim.Time(20+(i*17)%120) * sim.Second
			w.Join(600+i, prof.Draw(class, rng), watch, 1, 0)
		})
	}
	for step := 0; step < 24; step++ {
		engine.Run(engine.Now() + 10*sim.Second)
		checkInvariants(t, w)
		peers := 0
		for _, id := range w.activeView() {
			if !w.nodes[id].IsServer() {
				peers++
			}
		}
		if got := w.ActivePeerCount(); got != peers {
			t.Fatalf("step %d: ActivePeerCount = %d, recount = %d", step, got, peers)
		}
	}
	w.DepartAllPeers("program-end")
	engine.Run(engine.Now() + 5*sim.Second)
	checkInvariants(t, w)
	if got := w.ActivePeerCount(); got != 0 {
		t.Fatalf("ActivePeerCount = %d after cliff, want 0", got)
	}
}

// TestDrainTargetOrderIsCanonicalRestriction pins the commit-order
// contract of the target-sharded drain (DESIGN.md §13): each target
// shard applies its routed inbox in exactly the global canonical
// (src, seq) order restricted to the targets it owns. The oracle is
// deliberately not another k-way merge: at the visit/drain barrier of
// every tick it gathers every routed effect from every source shard's
// outPar queues, sorts the whole set with one global (src, seq) sort,
// and restricts it per target shard. The per-shard drain logs — in
// actual apply order — must replay those restrictions exactly, over a
// full chaos scenario (crashes, control loss, churn).
func TestDrainTargetOrderIsCanonicalRestriction(t *testing.T) {
	const shards = 8
	var expected [][][2]int32
	arm := func(w *World) {
		if err := w.SetShards(shards); err != nil {
			t.Fatal(err)
		}
		w.drainLogOn = true
		expected = make([][][2]int32, shards)
		w.testBarrierHook = func() {
			type routed struct {
				src, seq int32
				tgt      int
			}
			var all []routed
			for _, s := range w.shards {
				for ti, q := range s.outPar {
					for _, e := range q {
						all = append(all, routed{e.src, e.seq, ti})
					}
				}
			}
			// (src, seq) pairs are globally unique — seq is monotone per
			// source shard and a src belongs to exactly one shard — so an
			// unstable sort yields one well-defined canonical order.
			sort.Slice(all, func(i, j int) bool {
				return all[i].src < all[j].src ||
					(all[i].src == all[j].src && all[i].seq < all[j].seq)
			})
			for _, e := range all {
				expected[e.tgt] = append(expected[e.tgt], [2]int32{e.src, e.seq})
			}
		}
	}
	_, w := schedScenario(t, 7, false, arm)
	total := 0
	for si, sh := range w.shards {
		want := expected[si]
		if len(sh.drainLog) != len(want) {
			t.Fatalf("shard %d applied %d routed effects, canonical restriction has %d",
				si, len(sh.drainLog), len(want))
		}
		for i := range want {
			if sh.drainLog[i] != want[i] {
				t.Fatalf("shard %d effect %d: applied (src=%d seq=%d), canonical (src=%d seq=%d)",
					si, i, sh.drainLog[i][0], sh.drainLog[i][1], want[i][0], want[i][1])
			}
		}
		total += len(want)
	}
	if total == 0 {
		t.Fatal("chaos scenario routed no effects — property test is vacuous")
	}
}

// TestSetShardsGuards pins the configuration contract: out-of-range
// counts, populated worlds and the full-sweep mode are rejected.
func TestSetShardsGuards(t *testing.T) {
	p := DefaultParams()
	engine := sim.NewEngine(sim.Second)
	w, err := NewWorld(p, engine, &logsys.MemorySink{},
		netmodel.ConstantLatency{D: 50 * sim.Millisecond}, gossip.RandomReplace{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetShards(maxShards + 1); err == nil {
		t.Fatal("SetShards above the cap must fail")
	}
	w.FullSweepControl = true
	if err := w.SetShards(2); err == nil {
		t.Fatal("SetShards(2) with FullSweepControl must fail")
	}
	w.FullSweepControl = false
	if err := w.SetShards(2); err != nil {
		t.Fatal(err)
	}
	w.AddServer(15 * testRate)
	if err := w.SetShards(4); err == nil {
		t.Fatal("SetShards on a populated world must fail")
	}
}
