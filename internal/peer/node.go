package peer

import (
	"sort"

	"coolstream/internal/buffer"
	"coolstream/internal/gossip"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

// State is a node's lifecycle phase.
type State uint8

const (
	// StateJoining means the node has contacted the bootstrap but has
	// not yet subscribed to any sub-stream.
	StateJoining State = iota
	// StateSubscribing means at least one sub-stream subscription is
	// active but the media player has not started.
	StateSubscribing
	// StateReady means the media player is playing.
	StateReady
	// StateDeparted means the node has left the overlay.
	StateDeparted
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateJoining:
		return "joining"
	case StateSubscribing:
		return "subscribing"
	case StateReady:
		return "ready"
	case StateDeparted:
		return "departed"
	default:
		return "unknown"
	}
}

// NoParent marks a sub-stream without a live parent.
const NoParent = -1

// nodeHot packs the playback-phase hot per-node fields — the playback
// deadline position and the continuity accumulators of one report
// interval — carved from per-shard contiguous arenas (nodeChunk
// granularity, like the node shells themselves): the playback sweep
// touches exactly these fields for every ready node every tick, and
// packing them keeps that sweep on dense cache lines instead of
// striding whole node shells. They are deliberately outside the run
// digest: playback integration feeds the digest only through the
// records and departures it triggers.
type nodeHot struct {
	playDeadline float64 // current deadline position (per-sub-stream seq)
	missedBlocks float64
	totalBlocks  float64
}

// Subscription is one sub-stream's receive state.
type Subscription struct {
	// Parent is the serving node ID, or NoParent when stalled.
	Parent int
	// H is the per-sub-stream sequence number of the latest received
	// block, fractional under the fluid model.
	H float64
	// RateBps is the currently allocated transfer rate.
	RateBps float64
	// movedBlocks accumulates this tick's H advance for byte
	// accounting; drained by the sequential accounting pass.
	movedBlocks float64
}

// Partner is the local view of one partnership.
type Partner struct {
	// Outgoing records who initiated: true when we initiated the
	// partnership (we are the "outgoing" side). The log-based user
	// classifier relies on this directionality.
	Outgoing bool
	// BM is the partner's last exchanged buffer map.
	BM buffer.BufferMap
	// BMAt is when BM was refreshed.
	BMAt sim.Time
	// EstablishedAt is when the partnership formed.
	EstablishedAt sim.Time
}

// Node is one overlay participant.
type Node struct {
	ID      int
	UserID  int
	Session int
	EP      netmodel.Endpoint
	State   State
	// shard is the owning world shard, fixed at creation by the stable
	// ID hash (see shardIndex); a node never migrates.
	shard int32

	// Timing milestones (virtual).
	JoinedAt   sim.Time
	StartSubAt sim.Time // zero until the first subscription
	ReadyAt    sim.Time // zero until media-ready
	LeftAt     sim.Time

	// Retries is how many failed sessions this user had before this one.
	Retries int

	// Membership and partnership state. Partners must be mutated only
	// through setPartner/delPartner/clearPartners so partnerIDs stays
	// in sync.
	MCache   *gossip.MCache
	Partners map[int]*Partner
	// partnerIDs mirrors the keys of Partners in ascending order,
	// maintained incrementally so the hot control paths (BM refresh,
	// gossip, subscribe, adaptation) iterate partners deterministically
	// without a per-call map→slice→sort round trip. partnerList holds
	// the matching values at the same positions, sparing those paths a
	// map lookup per partner per tick.
	partnerIDs  []int
	partnerList []*Partner
	// bmDue is a conservative lower bound on the next time any partner
	// BM refresh (or failure detection) can be due; refreshBMs skips its
	// scan entirely before then. Zero means "scan now".
	bmDue sim.Time

	// Subs has one entry per sub-stream.
	Subs []Subscription
	// children[j] lists node IDs subscribed to sub-stream j from this
	// node, kept sorted for deterministic allocation.
	children [][]int

	// startPos is the per-sub-stream sequence chosen at join (m - Tp).
	startPos float64

	// hot points at the node's packed playback-phase fields in its
	// shard's contiguous hot arena (see nodeHot and newNode): the
	// playback sweep touches deadline and continuity accumulators for
	// every ready node every tick, and packing them keeps that sweep
	// on dense cache lines instead of striding whole node shells.
	hot *nodeHot
	// readyPending defers the media-ready bookkeeping (session counter,
	// and — without a sharded sink — the log record) from the parallel
	// playback phase to the sequential control phase. readyLogged marks
	// that the record itself was already emitted from a playback lane.
	readyPending bool
	readyLogged  bool

	// Report-interval accumulators.
	upBytes   float64
	downBytes float64
	lastReportAt  sim.Time
	CumUploadB    float64
	CumDownloadB  float64
	lastAdaptAt   sim.Time
	lastGossipAt  sim.Time
	recruitingDue sim.Time
	// bootAttempts counts consecutive failed bootstrap contacts (tracker
	// outage), driving the re-contact backoff; reset on first success.
	bootAttempts int

	// watch and patience carry the user's intent: how long they mean
	// to stay and how many failed joins they will retry.
	watch    sim.Time
	patience int

	// partnerChanges counts partnership establishments and losses in
	// the current report interval — the compact partner-activity
	// series of the paper's partner report, and the raw material of
	// the overlay-stability metric (§V-E's third scalability factor).
	partnerChanges int

	// topo points at the owning World's topology cache so the child
	// registry mutators can bump sub-stream epochs; nil for detached
	// nodes built in unit tests.
	topo *topoCache

	// Per-node scratch reused across ticks so the steady-state hot
	// paths allocate nothing: the allocation phase's demand/slot
	// vectors and water-filler, and subscribe's candidate list. The
	// filler is pooled through the World (its scratch outlives the
	// session) and is nil for detached nodes built in unit tests.
	allocDemands []netmodel.Demand
	allocSlots   []allocSlot
	filler       *netmodel.Filler
	candScratch  []int

	// Due-wheel control scheduling state (see sched.go). adaptDue is a
	// conservative lower bound on the next time the §IV-B adaptation
	// check can newly trigger; zero forces an evaluation at the next
	// visit. wheelAt is the earliest virtual time this node is queued
	// in the control wheel (zero = not queued), used to suppress
	// duplicate enqueues. advFlag is raised by the playback phase when
	// the Inequality (1) deviation is across Ts with the cool-down
	// expired — the fluid half of the adaptation trigger — and consumed
	// by the same tick's control visit. bestSeen is the best-partner
	// head as of the last §IV-B evaluation: a BM refresh that does not
	// beat it, touch a parent, or tear a partnership down provably
	// cannot create a new Inequality (2) violation.
	adaptDue sim.Time
	wheelAt  sim.Time
	advFlag  bool
	bestSeen int64

	// pool recycles Partner structs (with their buffer-map backing)
	// through the owning World; nil for detached nodes in unit tests.
	pool *partnerPool

	// leaveEv and timeoutEv are the node's cancellable timers, held on
	// the shell (not a world map: per-session map keys would be new on
	// every join, and a delete/insert-churned map periodically reallocates
	// its buckets). The handle is dropped at fire or cancel, before the
	// engine recycles the event.
	leaveEv   *sim.Event
	timeoutEv *sim.Event

	// rng points at rngStore: the node's RNG lives inline in the node
	// shell (seeded allocation-free from the world stream and the
	// node-ID label), not in a separate heap object.
	rng      *xrand.RNG
	rngStore xrand.RNG
}

// partnerPool recycles Partner structs across sessions: a recycled
// struct keeps its buffer-map backing, so partnership establishment on
// a churning overlay allocates nothing at steady state.
type partnerPool struct{ free []*Partner }

func (pp *partnerPool) get() *Partner {
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		return p
	}
	return &Partner{}
}

func (pp *partnerPool) put(p *Partner) {
	if p != nil {
		pp.free = append(pp.free, p)
	}
}

// allocSlot addresses one (child, sub-stream) transmission in the
// allocation phase.
type allocSlot struct{ child, sub int }

// setPartner installs or replaces a partnership, keeping partnerIDs
// sorted and partnerList aligned with it.
func (n *Node) setPartner(pid int, p *Partner) {
	i := sort.SearchInts(n.partnerIDs, pid)
	if _, ok := n.Partners[pid]; !ok {
		n.partnerIDs = append(n.partnerIDs, 0)
		copy(n.partnerIDs[i+1:], n.partnerIDs[i:])
		n.partnerIDs[i] = pid
		n.partnerList = append(n.partnerList, nil)
		copy(n.partnerList[i+1:], n.partnerList[i:])
	}
	n.partnerList[i] = p
	n.Partners[pid] = p
	n.bmDue = 0 // the new partner's refresh schedule starts fresh
}

// delPartner removes a partnership if present, keeping partnerIDs
// sorted and partnerList aligned. The removed Partner struct (with its
// buffer-map backing) goes back to the world pool: each side of a
// partnership owns its own struct, so the donation is single-owner.
func (n *Node) delPartner(pid int) {
	p, ok := n.Partners[pid]
	if !ok {
		return
	}
	delete(n.Partners, pid)
	i := sort.SearchInts(n.partnerIDs, pid)
	n.partnerIDs = append(n.partnerIDs[:i], n.partnerIDs[i+1:]...)
	n.partnerList = append(n.partnerList[:i], n.partnerList[i+1:]...)
	if n.pool != nil {
		n.pool.put(p)
	}
}

// clearPartners drops every partnership (departure teardown), clearing
// the map in place so its buckets can be reissued to a future joiner.
func (n *Node) clearPartners() {
	if n.pool != nil {
		for _, p := range n.partnerList {
			n.pool.put(p)
		}
	}
	for pid := range n.Partners {
		delete(n.Partners, pid)
	}
	n.partnerIDs = n.partnerIDs[:0]
	n.partnerList = n.partnerList[:0]
}

// IsServer reports whether the node is part of the source/server tier.
func (n *Node) IsServer() bool { return n.EP.Server }

// Active reports whether the node is participating in the overlay.
func (n *Node) Active() bool { return n.State != StateDeparted }

// PartnerCounts returns (incoming, outgoing) partnership counts, the
// observable the paper's user classifier is built on (§V-B).
func (n *Node) PartnerCounts() (in, out int) {
	for _, p := range n.Partners {
		if p.Outgoing {
			out++
		} else {
			in++
		}
	}
	return in, out
}

// MaxH returns the node's best sub-stream progress.
func (n *Node) MaxH() float64 {
	if len(n.Subs) == 0 {
		return 0
	}
	max := n.Subs[0].H
	for _, s := range n.Subs[1:] {
		if s.H > max {
			max = s.H
		}
	}
	return max
}

// MinH returns the node's worst sub-stream progress.
func (n *Node) MinH() float64 {
	if len(n.Subs) == 0 {
		return 0
	}
	min := n.Subs[0].H
	for _, s := range n.Subs[1:] {
		if s.H < min {
			min = s.H
		}
	}
	return min
}

// BufferMap builds the node's current BM as exchanged with partners:
// latest sequence per sub-stream, plus which sub-streams the node
// pulls from the given partner.
func (n *Node) BufferMap(towards int) buffer.BufferMap {
	var bm buffer.BufferMap
	n.fillBufferMap(&bm, towards)
	return bm
}

// fillBufferMap writes the node's current BM into bm in place,
// reusing bm's storage — the allocation-free path of the periodic BM
// refresh.
func (n *Node) fillBufferMap(bm *buffer.BufferMap, towards int) {
	bm.Reset(len(n.Subs))
	for i := range n.Subs {
		s := &n.Subs[i]
		bm.Latest[i] = int64(s.H)
		bm.Subscribed[i] = s.Parent == towards
	}
}

// addChild registers a child on sub-stream j, keeping order sorted,
// and invalidates the sub-stream's cached traversal order.
func (n *Node) addChild(j, child int) {
	cs := n.children[j]
	i := sort.SearchInts(cs, child)
	if i < len(cs) && cs[i] == child {
		return
	}
	cs = append(cs, 0)
	copy(cs[i+1:], cs[i:])
	cs[i] = child
	n.children[j] = cs
	if n.topo != nil {
		n.topo.bump(j)
	}
}

// removeChild deregisters a child on sub-stream j and invalidates the
// sub-stream's cached traversal order.
func (n *Node) removeChild(j, child int) {
	cs := n.children[j]
	i := sort.SearchInts(cs, child)
	if i < len(cs) && cs[i] == child {
		n.children[j] = append(cs[:i], cs[i+1:]...)
		if n.topo != nil {
			n.topo.bump(j)
		}
	}
}

// ChildCount returns the total sub-stream out-degree (the paper's D_p
// summed over sub-streams).
func (n *Node) ChildCount() int {
	total := 0
	for _, cs := range n.children {
		total += len(cs)
	}
	return total
}

// Children returns the child IDs on sub-stream j (read-only view).
func (n *Node) Children(j int) []int { return n.children[j] }

// parentCountByReach tallies current parents by reachability class,
// feeding the partner status report used by the Fig. 4 topology
// analysis.
func (n *Node) parentStats(nodes []*Node) (reachable, total, natLinks int) {
	for _, s := range n.Subs {
		if s.Parent == NoParent {
			continue
		}
		total++
		p := nodes[s.Parent]
		if p.EP.Class.Reachable() {
			reachable++
		} else if !n.EP.Class.Reachable() {
			natLinks++
		}
	}
	return
}
