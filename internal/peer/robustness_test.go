package peer

import (
	"testing"

	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// lossyWorld builds a world with the given control-loss probability.
func lossyWorld(t *testing.T, seed uint64, loss float64) (*World, *sim.Engine, *logsys.MemorySink) {
	t.Helper()
	p := DefaultParams()
	p.ReportPeriod = 30 * sim.Second
	p.ControlLossProb = loss
	engine := sim.NewEngine(sim.Second)
	sink := &logsys.MemorySink{}
	w, err := NewWorld(p, engine, sink, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return w, engine, sink
}

func TestControlLossValidated(t *testing.T) {
	p := DefaultParams()
	p.ControlLossProb = 1.5
	if p.Validate() == nil {
		t.Fatal("loss probability > 1 accepted")
	}
	p.ControlLossProb = -0.1
	if p.Validate() == nil {
		t.Fatal("negative loss probability accepted")
	}
}

func TestModerateControlLossStillConverges(t *testing.T) {
	w, engine, _ := lossyWorld(t, 21, 0.3)
	for i := 0; i < 3; i++ {
		w.AddServer(15 * testRate)
	}
	engine.Run(30 * sim.Second)
	var nodes []*Node
	for i := 0; i < 20; i++ {
		nodes = append(nodes, w.Join(100+i, ep(netmodel.Direct, 2, 3), 10*sim.Minute, 2, 0))
	}
	engine.Run(4 * sim.Minute)
	ready := 0
	for _, n := range nodes {
		if n.State == StateReady {
			ready++
		}
	}
	// Retries through the recruiting cadence must overcome 30% loss.
	if ready < 15 {
		t.Fatalf("only %d/20 ready under 30%% control loss", ready)
	}
}

func TestTotalControlLossPreventsJoining(t *testing.T) {
	w, engine, sink := lossyWorld(t, 22, 1.0)
	w.AddServer(15 * testRate)
	engine.Run(30 * sim.Second)
	n := w.Join(100, ep(netmodel.Direct, 2, 3), 5*sim.Minute, 0, 0)
	engine.Run(3 * sim.Minute)
	if n.State == StateReady {
		t.Fatal("node became ready with every handshake lost")
	}
	// The session must have failed by join timeout.
	failed := false
	for _, rec := range sink.Records() {
		if rec.Kind == logsys.KindLeave && rec.Reason == "join-timeout" {
			failed = true
		}
	}
	if !failed {
		t.Fatal("no join-timeout leave recorded")
	}
}

func TestPartnerChangesReported(t *testing.T) {
	w, engine, sink := lossyWorld(t, 23, 0)
	w.AddServer(15 * testRate)
	engine.Run(30 * sim.Second)
	a := w.Join(100, ep(netmodel.Direct, 2, 3), 10*sim.Minute, 0, 0)
	b := w.Join(101, ep(netmodel.Direct, 2, 3), 2*sim.Minute, 0, 0)
	engine.Run(5 * sim.Minute)
	_, _ = a, b
	// At least one partner report must carry a positive change count:
	// establishments at startup, and b's departure costs its partners
	// a link.
	sawChanges := false
	for _, rec := range sink.Records() {
		if rec.Kind == logsys.KindPartner && rec.PartnerChanges > 0 {
			sawChanges = true
		}
	}
	if !sawChanges {
		t.Fatal("no partner-change activity reported")
	}
}

func TestBMStalenessRespectsPeriod(t *testing.T) {
	w, engine, _ := testWorld(t, 24)
	w.AddServer(15 * testRate)
	engine.Run(30 * sim.Second)
	n := w.Join(100, ep(netmodel.Direct, 2, 3), 10*sim.Minute, 0, 0)
	engine.Run(2 * sim.Minute)
	if len(n.Partners) == 0 {
		t.Fatal("no partners")
	}
	// Every cached BM must be at most one BM period + one tick stale.
	now := engine.Now()
	for pid, p := range n.Partners {
		age := now - p.BMAt
		if age > w.P.BMPeriod+2*sim.Second {
			t.Fatalf("partner %d BM is %v stale (period %v)", pid, age, w.P.BMPeriod)
		}
	}
}
