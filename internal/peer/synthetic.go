package peer

import (
	"fmt"

	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// NewSyntheticWorld builds an nPeers overlay directly in its settled
// steady state, bypassing the join protocol: ramping a large
// population through bootstrap handshakes would spend hours of
// virtual (and real) time before the first measured tick. The
// synthetic overlay is self-consistent — a fanout-10 forest rooted at
// the server tier with every sub-stream at the live edge, ring
// partnerships i±1/i±2 plus the parent link (so §IV-B never sees a
// parent outside the partner set), upload provisioned above
// fanout×rate so the forest stays at the live edge, and
// BM/gossip/report clocks staggered across their periods the way a
// long-running population's would be. Churn knobs are zeroed so two
// worlds built with the same arguments tick identically — the
// property the interleaved A/B harness (cmd/coolbench -tickab) and
// BenchmarkTickMillionPeer both lean on. The returned engine is
// warmed past the first BM round; each engine.Run(now+tick) advances
// one full tick of the settled population.
func NewSyntheticWorld(nPeers, shards int) (*World, *sim.Engine, error) {
	p := DefaultParams()
	engine := sim.NewEngine(sim.Second)
	w, err := NewWorld(p, engine, logsys.NopSink{}, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, 1)
	if err != nil {
		return nil, nil, err
	}
	if err := w.SetShards(shards); err != nil {
		return nil, nil, err
	}
	w.StallAbandonProb = 0
	w.CrashProb = 0
	const fanout = 10
	root := w.AddServer(2 * fanout * 768e3)
	engine.Run(30 * sim.Second)
	now := engine.Now()
	live := w.liveEdge(now)
	base := len(w.nodes)
	if nPeers < 1 {
		return nil, nil, fmt.Errorf("synthetic world needs at least one peer, got %d", nPeers)
	}
	for i := 0; i < nPeers; i++ {
		n := w.newNode(netmodel.Endpoint{
			Class:       netmodel.UserClass(i % 4),
			UploadBps:   (fanout + 2) * 768e3,
			DownloadBps: 4 * 768e3,
		}, 1000+i)
		n.State = StateReady
		n.ReadyAt = now
		n.startPos = live
		n.hot.playDeadline = live - 20
		n.lastAdaptAt = now
		n.bmDue = now + sim.Time(i%5+1)*sim.Second
		n.lastGossipAt = now - sim.Time(i%15)*sim.Second
		n.lastReportAt = now - sim.Time(i%300)*sim.Second
		parent := root.ID
		if pi := i/fanout - 1; pi >= 0 {
			parent = base + pi
		}
		pn := w.nodes[parent]
		for j := range n.Subs {
			n.Subs[j].H = live
			n.Subs[j].Parent = parent
			pn.addChild(j, n.ID)
		}
	}
	// Partnerships: both directions of each edge, wired exactly as
	// completePartnership leaves them.
	link := func(a, c *Node) {
		pa := a.pool.get()
		pa.Outgoing = true
		c.fillBufferMap(&pa.BM, a.ID)
		pa.BMAt = now
		pa.EstablishedAt = now
		a.setPartner(c.ID, pa)
		pc := c.pool.get()
		pc.Outgoing = false
		a.fillBufferMap(&pc.BM, c.ID)
		pc.BMAt = now
		pc.EstablishedAt = now
		c.setPartner(a.ID, pc)
	}
	for i := 0; i < nPeers; i++ {
		n := w.nodes[base+i]
		link(n, w.nodes[n.Subs[0].Parent])
		if i+1 < nPeers {
			link(n, w.nodes[base+i+1])
		}
		if i+2 < nPeers {
			link(n, w.nodes[base+i+2])
		}
	}
	// Warm the topology caches, the due wheels and the first BM round
	// before the timer starts.
	engine.Run(engine.Now() + 6*sim.Second)
	return w, engine, nil
}
