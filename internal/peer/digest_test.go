package peer

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"testing"

	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// worldDigest folds every emitted log record plus the final fluid
// state (per-node, per-sub-stream H, parent and byte counters) into a
// single FNV-1a hash. Two runs with the same digest behaved
// identically in every externally observable way.
func worldDigest(w *World, records []logsys.Record) uint64 {
	h := fnv.New64a()
	for _, rec := range records {
		fmt.Fprintln(h, rec.LogString())
	}
	for _, n := range w.Nodes() {
		fmt.Fprintf(h, "node %d state %d\n", n.ID, n.State)
		for j := range n.Subs {
			fmt.Fprintf(h, " sub %d parent %d H %x rate %x\n",
				j, n.Subs[j].Parent, math.Float64bits(n.Subs[j].H),
				math.Float64bits(n.Subs[j].RateBps))
		}
		fmt.Fprintf(h, " up %x down %x\n",
			math.Float64bits(n.CumUploadB), math.Float64bits(n.CumDownloadB))
	}
	return h.Sum64()
}

// digestScenario runs a fixed mixed-churn scenario (joins, crashes,
// retries, stall-abandons, a program-end cliff) and returns its digest.
// Optional mut hooks run on the fresh world before any server or peer
// joins (the SetShards window).
func digestScenario(t *testing.T, controlLoss float64, mut ...func(*World)) uint64 {
	return digestScenarioSink(t, controlLoss, &logsys.MemorySink{},
		func(s logsys.Sink) []logsys.Record { return s.(*logsys.MemorySink).Records() }, mut...)
}

// digestScenarioSharded is digestScenario collecting through a
// ShardedSink, so media-ready records travel the lock-free parallel
// playback lanes instead of the deferred sequential path.
func digestScenarioSharded(t *testing.T, controlLoss float64, mut ...func(*World)) uint64 {
	return digestScenarioSink(t, controlLoss, logsys.NewShardedSink(0),
		func(s logsys.Sink) []logsys.Record { return s.(*logsys.ShardedSink).Drain() }, mut...)
}

func digestScenarioSink(t *testing.T, controlLoss float64, sink logsys.Sink, records func(logsys.Sink) []logsys.Record, mut ...func(*World)) uint64 {
	t.Helper()
	p := DefaultParams()
	p.ReportPeriod = 30 * sim.Second
	p.ControlLossProb = controlLoss
	engine := sim.NewEngine(sim.Second)
	w, err := NewWorld(p, engine, sink, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, 4242)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mut {
		m(w)
	}
	w.AddServer(15 * testRate)
	w.AddServer(15 * testRate)
	engine.Run(30 * sim.Second)
	prof := netmodel.DefaultCapacityProfile(testRate)
	rng := w.rng.SplitLabeled("digest")
	for i := 0; i < 80; i++ {
		i := i
		at := 30*sim.Second + sim.Time(i%40)*2*sim.Second
		engine.Schedule(at, func() {
			class := netmodel.UserClass(i % 4)
			watch := sim.Time(30+(i*13)%200) * sim.Second
			w.Join(600+i, prof.Draw(class, rng), watch, 1, 0)
		})
	}
	engine.Run(4 * sim.Minute)
	w.DepartAllPeers("program-end")
	engine.Run(engine.Now() + 10*sim.Second)
	return worldDigest(w, records(sink))
}

// goldenRunDigest is the digest of digestScenario(0) captured on the
// pre-optimisation engine (recursive advance walk, per-call sorting,
// goroutine-per-phase parallelism). The topology-epoch cache, the
// sorted partner slices and the persistent worker pool must reproduce
// the seed behaviour bit-for-bit, so this constant locks them to it.
const goldenRunDigest = 0x69f13e37ed3614b0

// TestRunDigestMatchesGolden locks the loss-free RNG-draw order and
// fluid arithmetic across the perf refactors.
func TestRunDigestMatchesGolden(t *testing.T) {
	got := digestScenario(t, 0)
	t.Logf("digest = %#x", got)
	if goldenRunDigest != 0 && got != goldenRunDigest {
		t.Fatalf("run digest %#x differs from pre-optimisation golden %#x", got, goldenRunDigest)
	}
}

// TestRunDigestShardedSinkMatchesGolden pins the sharded-sink
// determinism contract: routing the parallel playback phase's
// media-ready records through per-shard lanes and merging by (time,
// peer, kind) on drain must reproduce the MemorySink record stream —
// and hence the pre-optimisation golden digest — bit for bit, serial
// and parallel.
func TestRunDigestShardedSinkMatchesGolden(t *testing.T) {
	got := digestScenarioSharded(t, 0)
	t.Logf("sharded digest = %#x", got)
	if goldenRunDigest != 0 && got != goldenRunDigest {
		t.Fatalf("sharded-sink run digest %#x differs from golden %#x", got, goldenRunDigest)
	}
	orig := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(orig)
	if serial := digestScenarioSharded(t, 0); serial != got {
		t.Fatalf("sharded-sink digest differs across GOMAXPROCS: %#x vs %#x", serial, got)
	}
}

// TestRunDigestIndependentOfGOMAXPROCS pins the shard-ownership
// contract of the persistent worker pool: the same scenario must
// produce bit-identical results serial (GOMAXPROCS=1, every shard runs
// inline) and parallel (GOMAXPROCS=8, shards hand off to pool workers).
func TestRunDigestIndependentOfGOMAXPROCS(t *testing.T) {
	orig := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(orig)
	serial := digestScenario(t, 0.1)
	runtime.GOMAXPROCS(8)
	parallel := digestScenario(t, 0.1)
	if serial != parallel {
		t.Fatalf("digest differs across GOMAXPROCS: serial %#x vs parallel %#x", serial, parallel)
	}
}

// TestControlLossRunsAreReproducible is the regression test for the
// refreshBMs determinism bug: with ControlLossProb > 0 the seed code
// drew n.rng.Bool inside a map-ordered loop, making whole runs depend
// on Go's randomized map iteration. Two same-seed runs must now agree.
func TestControlLossRunsAreReproducible(t *testing.T) {
	a := digestScenario(t, 0.2)
	b := digestScenario(t, 0.2)
	if a != b {
		t.Fatalf("same-seed runs with ControlLossProb>0 diverged: %#x vs %#x", a, b)
	}
}
