package peer

import "coolstream/internal/sim"

// TopologySnapshot captures the overlay's structural state at one
// instant, the measurable counterpart of the paper's conceptual
// overlay (Fig. 4): how strongly peers clog under direct/UPnP parents,
// how rare NAT↔NAT "random links" are, and how deep the forest runs.
type TopologySnapshot struct {
	At          sim.Time
	ActivePeers int
	// ParentLinks is the number of (child, sub-stream) → parent edges.
	ParentLinks int
	// LinksToReachable counts edges whose parent is direct/UPnP or a
	// server.
	LinksToReachable int
	// NATRandomLinks counts edges between two unreachable peers.
	NATRandomLinks int
	// PeersAllReachableParents counts peers whose every parent is
	// direct/UPnP (the paper's "clogged under direct-connect" state).
	PeersAllReachableParents int
	// PeersWithParents counts peers holding at least one parent.
	PeersWithParents int
	// ReadyPeers counts peers in playback.
	ReadyPeers int
	// MeanDepth and MaxDepth measure sub-stream-0 forest depth from
	// the server tier.
	MeanDepth float64
	MaxDepth  int
	// SupplyBps is the aggregate upload capacity of all active nodes
	// (server tier included); DemandBps is ActivePeers × R. Their
	// ratio is the resource index of Kumar/Ross ("Stochastic Fluid
	// Theory for P2P Streaming Systems"), whose critical value ~1 the
	// paper invokes in its scalability discussion (§V-E).
	SupplyBps float64
	DemandBps float64
}

// FractionReachableLinks returns LinksToReachable / ParentLinks.
func (s TopologySnapshot) FractionReachableLinks() float64 {
	if s.ParentLinks == 0 {
		return 0
	}
	return float64(s.LinksToReachable) / float64(s.ParentLinks)
}

// FractionRandomLinks returns NATRandomLinks / ParentLinks.
func (s TopologySnapshot) FractionRandomLinks() float64 {
	if s.ParentLinks == 0 {
		return 0
	}
	return float64(s.NATRandomLinks) / float64(s.ParentLinks)
}

// FractionClogged returns PeersAllReachableParents / PeersWithParents.
func (s TopologySnapshot) FractionClogged() float64 {
	if s.PeersWithParents == 0 {
		return 0
	}
	return float64(s.PeersAllReachableParents) / float64(s.PeersWithParents)
}

// ResourceIndex returns SupplyBps / DemandBps (0 when no demand): the
// system-wide upload-supply-to-streaming-demand ratio. Values below ~1
// mean the population cannot be served at full rate no matter how the
// overlay organises itself.
func (s TopologySnapshot) ResourceIndex() float64 {
	if s.DemandBps <= 0 {
		return 0
	}
	return s.SupplyBps / s.DemandBps
}

// Snapshot measures the current overlay.
func (w *World) Snapshot() TopologySnapshot {
	ids := w.activeView() // departures are batched; settle them before reading
	snap := TopologySnapshot{At: w.Engine.Now()}
	depth := make(map[int]int)
	// Depth by BFS over sub-stream 0 children links from servers.
	queue := make([]int, 0, len(ids))
	for _, id := range ids {
		if w.nodes[id].IsServer() {
			depth[id] = 0
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, c := range w.nodes[id].children[0] {
			if _, seen := depth[c]; !seen {
				depth[c] = depth[id] + 1
				queue = append(queue, c)
			}
		}
	}
	var depthSum, depthN int
	for _, id := range ids {
		n := w.nodes[id]
		snap.SupplyBps += n.EP.UploadBps
		if n.IsServer() {
			continue
		}
		snap.DemandBps += w.P.Layout.RateBps
		snap.ActivePeers++
		if n.State == StateReady {
			snap.ReadyPeers++
		}
		reach, total, natLinks := n.parentStats(w.nodes)
		snap.ParentLinks += total
		snap.LinksToReachable += reach
		snap.NATRandomLinks += natLinks
		if total > 0 {
			snap.PeersWithParents++
			if reach == total {
				snap.PeersAllReachableParents++
			}
		}
		if d, ok := depth[id]; ok {
			depthSum += d
			depthN++
			if d > snap.MaxDepth {
				snap.MaxDepth = d
			}
		}
	}
	if depthN > 0 {
		snap.MeanDepth = float64(depthSum) / float64(depthN)
	}
	return snap
}

// UploadByClass sums cumulative upload bytes per user class over all
// non-server nodes (departed included) — the ground-truth counterpart
// of the log-derived Fig. 3b analysis.
func (w *World) UploadByClass() (bytes [4]float64, counts [4]int) {
	for _, n := range w.nodes {
		if n.IsServer() {
			continue
		}
		bytes[n.EP.Class] += n.CumUploadB
		counts[n.EP.Class]++
	}
	return
}
