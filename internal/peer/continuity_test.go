package peer

import (
	"math"
	"testing"
	"testing/quick"

	"coolstream/internal/xrand"
)

func TestMissedSeqNoMissWhenAhead(t *testing.T) {
	// H starts above the deadline and advances at deadline rate.
	if got := missedSeq(10, 2, 5, 9, 2); got != 0 {
		t.Fatalf("missed = %v, want 0", got)
	}
}

func TestMissedSeqFullMissWhenStalled(t *testing.T) {
	// H frozen far below the whole deadline window.
	if got := missedSeq(0, 0, 10, 14, 2); math.Abs(got-4) > 1e-12 {
		t.Fatalf("missed = %v, want 4", got)
	}
}

func TestMissedSeqFallsBehindMidInterval(t *testing.T) {
	// H starts at the deadline but advances at half the deadline rate:
	// f(s) = (s-d0)*(rho/beta - 1) = -(s-d0)/2, so f < 0 for all s>d0 —
	// the entire interval after the start is missed.
	got := missedSeq(10, 1, 10, 14, 2)
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("missed = %v, want 4", got)
	}
	// Starting slightly ahead, the crossing is inside the interval:
	// f(d0) = 1, slope -(1/2) per seq → crosses at s = d0+2.
	got = missedSeq(11, 1, 10, 14, 2)
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("missed = %v, want 2", got)
	}
}

func TestMissedSeqCatchesUpMidInterval(t *testing.T) {
	// H starts 2 behind but advances at twice the deadline rate:
	// f(d0) = -2, slope +1 per seq → crosses at d0+2; 2 blocks missed.
	got := missedSeq(8, 4, 10, 20, 2)
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("missed = %v, want 2", got)
	}
}

func TestMissedSeqDegenerate(t *testing.T) {
	if missedSeq(0, 0, 5, 5, 2) != 0 {
		t.Fatal("empty interval should miss 0")
	}
	if missedSeq(0, 0, 5, 4, 2) != 0 {
		t.Fatal("inverted interval should miss 0")
	}
	if missedSeq(0, 0, 5, 10, 0) != 0 {
		t.Fatal("zero beta should miss 0")
	}
}

func TestMissedSeqBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		h0 := r.Float64()*40 - 20
		rho := r.Float64() * 8
		d0 := r.Float64() * 20
		d1 := d0 + r.Float64()*20
		beta := 0.5 + r.Float64()*4
		got := missedSeq(h0, rho, d0, d1, beta)
		return got >= -1e-9 && got <= (d1-d0)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMissedSeqMatchesDiscreteSimulation(t *testing.T) {
	// Cross-check the closed form against brute-force per-block
	// evaluation on a fine grid.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		h0 := r.Float64() * 30
		rho := r.Float64() * 6
		d0 := r.Float64() * 20
		span := 1 + r.Float64()*15
		d1 := d0 + span
		beta := 0.5 + r.Float64()*4
		got := missedSeq(h0, rho, d0, d1, beta)
		// Discretise the block axis finely.
		const steps = 20000
		missed := 0.0
		ds := span / steps
		for i := 0; i < steps; i++ {
			s := d0 + (float64(i)+0.5)*ds
			tOfS := (s - d0) / beta
			if h0+rho*tOfS < s {
				missed += ds
			}
		}
		return math.Abs(got-missed) < span*1e-3+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
