package peer

import (
	"testing"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// referenceTopo recomputes sub-stream j's flattened pre-order edge list
// from scratch with an independent recursive walk — the oracle the
// cached incremental order must always match.
func referenceTopo(w *World, j int) []edge {
	var order []edge
	var walk func(id int)
	walk = func(id int) {
		for _, c := range w.nodes[id].children[j] {
			order = append(order, edge{
				cs: &w.nodes[c].Subs[j], ph: &w.nodes[id].Subs[j].H,
				parent: int32(id), child: int32(c),
			})
			walk(c)
		}
	}
	for _, id := range w.activeView() {
		n := w.nodes[id]
		root := n.IsServer()
		if !root {
			p := n.Subs[j].Parent
			root = p == NoParent || w.nodes[p].State == StateDeparted
		}
		if root {
			walk(id)
		}
	}
	return order
}

func checkTopoCache(t *testing.T, w *World) {
	t.Helper()
	w.ensureTopo()
	for j := 0; j < w.P.Layout.K; j++ {
		want := referenceTopo(w, j)
		got := w.topo.order[j]
		if len(got) != len(want) {
			t.Fatalf("sub %d: cached order has %d edges, reference %d\ncached: %v\nref: %v",
				j, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sub %d edge %d: cached %v, reference %v", j, i, got[i], want[i])
			}
		}
		// Topological-order property: every parent is a server or was
		// emitted as a child earlier in the list.
		seen := make(map[int32]bool)
		for i, e := range got {
			if !w.nodes[e.parent].IsServer() && !seen[e.parent] {
				// Non-server roots (parentless / crashed-parent nodes)
				// are also legal sweep anchors: their own H does not
				// advance, matching the reference walk's root set.
				n := w.nodes[e.parent]
				p := n.Subs[j].Parent
				if p != NoParent && w.nodes[p].State != StateDeparted {
					t.Fatalf("sub %d edge %d: parent %d appears before being reached", j, i, e.parent)
				}
			}
			seen[e.child] = true
		}
	}
}

// TestTopoCacheMatchesRecursiveWalk interleaves the full mutation
// vocabulary — joins, subscriptions, adaptation, graceful departures,
// crashes, stall-abandons — and after every tick compares each
// sub-stream's cached flattened order against a freshly recomputed
// recursive reference walk.
func TestTopoCacheMatchesRecursiveWalk(t *testing.T) {
	w, engine, _ := testWorld(t, 909)
	w.CrashProb = 0.5 // plenty of no-notification teardowns
	for i := 0; i < 3; i++ {
		w.AddServer(10 * testRate)
	}
	engine.Run(20 * sim.Second)
	prof := netmodel.DefaultCapacityProfile(testRate)
	rng := w.rng.SplitLabeled("topo-test")
	for i := 0; i < 80; i++ {
		i := i
		at := 20*sim.Second + sim.Time(i%25)*2*sim.Second
		engine.Schedule(at, func() {
			class := netmodel.UserClass(rng.Intn(4))
			watch := sim.Time(15+rng.Intn(150)) * sim.Second
			w.Join(5000+i, prof.Draw(class, rng), watch, 2, 0)
		})
	}
	engine.OnTick(func(_, _ sim.Time) { checkTopoCache(t, w) })
	engine.Run(4 * sim.Minute)
	if w.JoinedSessions < 80 {
		t.Fatalf("only %d sessions", w.JoinedSessions)
	}
	departed := 0
	for _, n := range w.Nodes() {
		if n.State == StateDeparted {
			departed++
		}
	}
	if departed < 30 {
		t.Fatalf("churn too weak to exercise teardown rebuilds: %d departed", departed)
	}
}

// TestTopoCacheReuseAcrossQuietTicks pins the core caching property:
// when no structural mutation happens between ticks, ensureTopo must
// not rebuild (epochs unchanged ⟹ builtEpoch untouched).
func TestTopoCacheReuseAcrossQuietTicks(t *testing.T) {
	w, engine, _ := testWorld(t, 910)
	w.AddServer(10 * testRate)
	prof := netmodel.DefaultCapacityProfile(testRate)
	rng := w.rng.SplitLabeled("quiet")
	for i := 0; i < 10; i++ {
		i := i
		engine.Schedule(sim.Time(i)*sim.Second, func() {
			w.Join(6000+i, prof.Draw(netmodel.Direct, rng), sim.Hour, 1, 0)
		})
	}
	// Long settle: the overlay converges, adaptation goes quiet.
	engine.Run(3 * sim.Minute)
	w.ensureTopo()
	before := append([]uint64(nil), w.topo.builtEpoch...)
	rebuilds := 0
	engine.OnTick(func(_, _ sim.Time) {
		for j, e := range w.topo.builtEpoch {
			if e != before[j] {
				rebuilds++
				before[j] = e
			}
		}
	})
	engine.Run(3*sim.Minute + 30*sim.Second)
	// A converged overlay with hour-long watches must coast on the
	// cache nearly every tick; allow a handful of rebuilds for late
	// adaptation, but 30 ticks × K sub-streams of rebuilds means the
	// epochs are being bumped spuriously.
	if rebuilds > 3*w.P.Layout.K {
		t.Fatalf("cache thrashing: %d rebuilds in 30 quiet seconds", rebuilds)
	}
}
