package peer

import (
	"math"
	"testing"

	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

const testRate = 768e3

// testWorld builds a small world with fast reporting for short runs.
func testWorld(t *testing.T, seed uint64) (*World, *sim.Engine, *logsys.MemorySink) {
	t.Helper()
	p := DefaultParams()
	p.ReportPeriod = 30 * sim.Second
	engine := sim.NewEngine(sim.Second)
	sink := &logsys.MemorySink{}
	w, err := NewWorld(p, engine, sink, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return w, engine, sink
}

func ep(class netmodel.UserClass, upMult, downMult float64) netmodel.Endpoint {
	return netmodel.Endpoint{Class: class, UploadBps: upMult * testRate, DownloadBps: downMult * testRate}
}

func TestNewWorldValidation(t *testing.T) {
	engine := sim.NewEngine(sim.Second)
	sink := &logsys.MemorySink{}
	lat := netmodel.ConstantLatency{}
	bad := DefaultParams()
	bad.Ts = 0
	if _, err := NewWorld(bad, engine, sink, lat, gossip.RandomReplace{}, 1); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := NewWorld(DefaultParams(), nil, sink, lat, gossip.RandomReplace{}, 1); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewWorld(DefaultParams(), engine, nil, lat, gossip.RandomReplace{}, 1); err == nil {
		t.Fatal("nil sink accepted")
	}
}

func TestServerSitsAtLiveEdge(t *testing.T) {
	w, engine, _ := testWorld(t, 1)
	s := w.AddServer(100 * testRate)
	engine.Run(50 * sim.Second)
	live := w.liveEdge(engine.Now())
	for j := range s.Subs {
		if math.Abs(s.Subs[j].H-live) > 1e-9 {
			t.Fatalf("server H[%d] = %v, live edge %v", j, s.Subs[j].H, live)
		}
	}
	if w.ActiveCount() != 1 || w.ActivePeerCount() != 0 {
		t.Fatalf("counts: %d active, %d peers", w.ActiveCount(), w.ActivePeerCount())
	}
}

func TestSingleJoinReachesReady(t *testing.T) {
	w, engine, sink := testWorld(t, 2)
	w.AddServer(10 * testRate)
	engine.Run(30 * sim.Second)
	n := w.Join(100, ep(netmodel.Direct, 2, 2), 10*sim.Minute, 0, 0)
	engine.Run(90 * sim.Second)

	if n.State != StateReady {
		t.Fatalf("node state %v after 60s; partners=%d subs=%+v", n.State, len(n.Partners), n.Subs)
	}
	// Media-ready should land within a handful of seconds: 20 blocks of
	// startup buffer at the download-limited catch-up rate (4 seq/s)
	// plus handshakes and tick quantisation.
	readyDelay := (n.ReadyAt - n.JoinedAt).Seconds()
	if readyDelay < 2 || readyDelay > 20 {
		t.Fatalf("ready delay %.1fs outside plausible range", readyDelay)
	}
	// The log must contain join → startsub → ready in order.
	var joinAt, subAt, readyAt sim.Time = -1, -1, -1
	for _, rec := range sink.Records() {
		if rec.Peer != n.ID {
			continue
		}
		switch rec.Kind {
		case logsys.KindJoin:
			joinAt = rec.At
		case logsys.KindStartSub:
			subAt = rec.At
		case logsys.KindMediaReady:
			readyAt = rec.At
		}
	}
	if joinAt < 0 || subAt < joinAt || readyAt < subAt {
		t.Fatalf("event order wrong: join=%v sub=%v ready=%v", joinAt, subAt, readyAt)
	}
}

func TestCatchUpMatchesEq3(t *testing.T) {
	// Eq. (3): with upload r_up exceeding the sub-stream rate, the time
	// to catch up l missing blocks is t = l / (r_up - R/K).
	// Download 2R gives a per-sub-stream ceiling of R/2 = 4 seq/s;
	// deadline rate beta = 2 seq/s; initial deficit Tp = 40 blocks.
	// Predicted catch-up: 40 / (4-2) = 20 s after transfers begin.
	w, engine, _ := testWorld(t, 3)
	srv := w.AddServer(100 * testRate)
	engine.Run(30 * sim.Second)
	n := w.Join(100, ep(netmodel.Direct, 2, 2), 10*sim.Minute, 0, 0)
	engine.Run(35 * sim.Second) // transfers start ~30.3s

	// Mid-catch-up: node must be strictly behind the live edge.
	gapMid := srv.Subs[0].H - n.Subs[0].H
	if gapMid < 5 {
		t.Fatalf("expected mid-catch-up gap, got %.1f blocks", gapMid)
	}
	engine.Run(60 * sim.Second) // well past predicted catch-up (~50.3s)
	gapEnd := srv.Subs[0].H - n.Subs[0].H
	if gapEnd > 1.5 {
		t.Fatalf("node failed to catch up: gap %.2f blocks", gapEnd)
	}
	// Catch-up completion time: H reaches live edge when
	// startPos + 4(t-t0) = live. Verify within ±4s of Eq. (3).
	// t0 ≈ 31s (first allocation tick after subscription), so catch-up
	// ends near t = 51s.
	engineMid := n.JoinedAt + sim.FromSeconds(20+1.5)
	_ = engineMid
	elapsed := 0.0
	// Reconstruct from fluid identities instead of instrumenting ticks:
	// catch-up duration = deficit / (r_up_seq - beta).
	deficit := float64(w.P.Tp)
	rUpSeq := (2 * testRate / 4) / (8 * 12000.0)
	beta := w.P.Layout.SubBlocksPerSecond()
	elapsed = deficit / (rUpSeq - beta)
	if math.Abs(elapsed-20) > 1e-9 {
		t.Fatalf("analytic check botched: %v", elapsed)
	}
}

func TestAdaptationSwitchesAwayFromWeakParent(t *testing.T) {
	w, engine, _ := testWorld(t, 4)
	w.AddServer(50 * testRate)
	engine.Run(30 * sim.Second)
	weak := w.Join(100, ep(netmodel.Direct, 0.05, 4), 20*sim.Minute, 0, 0)
	child := w.Join(101, ep(netmodel.Direct, 1, 4), 20*sim.Minute, 0, 0)
	engine.Run(60 * sim.Second)
	if child.State != StateReady || weak.State != StateReady {
		t.Fatalf("setup failed: weak=%v child=%v", weak.State, child.State)
	}
	// Force the child's sub-stream 0 under the weak parent (white box):
	// ensure they are partners first.
	now := engine.Now()
	if _, ok := child.Partners[weak.ID]; !ok {
		child.setPartner(weak.ID, &Partner{Outgoing: true, BM: weak.BufferMap(child.ID), BMAt: now, EstablishedAt: now})
		weak.setPartner(child.ID, &Partner{Outgoing: false, BM: child.BufferMap(weak.ID), BMAt: now, EstablishedAt: now})
	}
	if old := child.Subs[0].Parent; old != NoParent {
		w.Node(old).removeChild(0, child.ID)
	}
	child.Subs[0].Parent = weak.ID
	child.Subs[0].RateBps = 0
	weak.addChild(0, child.ID)

	// The weak parent's 0.05R upload (~0.4 seq/s vs the 2 seq/s stream)
	// lets sub-stream 0 fall behind; Inequality (1) crosses Ts after
	// ~12 s and the cool-down allows a switch.
	engine.Run(engine.Now() + 60*sim.Second)
	if got := child.Subs[0].Parent; got == weak.ID {
		t.Fatalf("child still under weak parent; H0=%v maxH=%v", child.Subs[0].H, child.MaxH())
	}
	// And the lagging sub-stream must recover.
	engine.Run(engine.Now() + 60*sim.Second)
	if dev := child.MaxH() - child.Subs[0].H; dev > float64(w.P.Ts) {
		t.Fatalf("sub-stream 0 never recovered: deviation %.1f", dev)
	}
}

func TestDepartStallsChildrenThenTheyRecover(t *testing.T) {
	w, engine, _ := testWorld(t, 5)
	w.AddServer(50 * testRate)
	engine.Run(30 * sim.Second)
	parent := w.Join(100, ep(netmodel.Direct, 4, 4), 20*sim.Minute, 0, 0)
	child := w.Join(101, ep(netmodel.Direct, 1, 4), 20*sim.Minute, 0, 0)
	engine.Run(60 * sim.Second)
	// Rewire child sub 0 under parent.
	now := engine.Now()
	if _, ok := child.Partners[parent.ID]; !ok {
		child.setPartner(parent.ID, &Partner{Outgoing: true, BM: parent.BufferMap(child.ID), BMAt: now, EstablishedAt: now})
		parent.setPartner(child.ID, &Partner{Outgoing: false, BM: child.BufferMap(parent.ID), BMAt: now, EstablishedAt: now})
	}
	if old := child.Subs[0].Parent; old != NoParent {
		w.Node(old).removeChild(0, child.ID)
	}
	child.Subs[0].Parent = parent.ID
	parent.addChild(0, child.ID)

	w.depart(parent, "user")
	if child.Subs[0].Parent != NoParent {
		t.Fatal("child not stalled by parent departure")
	}
	if parent.State != StateDeparted {
		t.Fatal("parent not departed")
	}
	if _, still := child.Partners[parent.ID]; still {
		t.Fatal("departed parent still a partner")
	}
	// fillStalledSubstreams finds a replacement within a few ticks.
	engine.Run(engine.Now() + 10*sim.Second)
	if child.Subs[0].Parent == NoParent {
		t.Fatal("child never re-parented")
	}
	// depart is idempotent.
	w.depart(parent, "user")
}

func TestJoinTimeoutFailsAndRetries(t *testing.T) {
	w, engine, sink := testWorld(t, 6)
	// No servers, no other peers: the join cannot succeed.
	engine.Run(30 * sim.Second)
	w.Join(100, ep(netmodel.NAT, 0.5, 2), 10*sim.Minute, 2, 0)
	engine.Run(30*sim.Second + 3*w.P.JoinTimeout + 3*w.P.RetryDelay + 10*sim.Second)

	if w.FailedSessions < 3 {
		t.Fatalf("failed sessions = %d, want 3 (initial + 2 retries)", w.FailedSessions)
	}
	if w.JoinedSessions != 3 {
		t.Fatalf("joined sessions = %d, want 3", w.JoinedSessions)
	}
	timeouts := 0
	maxRetries := 0
	for _, rec := range sink.Records() {
		if rec.Kind == logsys.KindLeave && rec.Reason == "join-timeout" {
			timeouts++
		}
		if rec.Kind == logsys.KindJoin {
			n := w.Node(rec.Peer)
			if n.Retries > maxRetries {
				maxRetries = n.Retries
			}
		}
	}
	if timeouts != 3 {
		t.Fatalf("join-timeout leaves = %d", timeouts)
	}
	if maxRetries != 2 {
		t.Fatalf("max retry count = %d, want 2", maxRetries)
	}
}

func TestNATPartnersAreOutgoingOnly(t *testing.T) {
	w, engine, _ := testWorld(t, 7)
	w.P.TraversalProb = 0
	w.Reach = netmodel.Reachability{TraversalProb: 0}
	w.AddServer(20 * testRate)
	engine.Run(30 * sim.Second)
	var natNodes []*Node
	for i := 0; i < 10; i++ {
		natNodes = append(natNodes, w.Join(100+i, ep(netmodel.NAT, 0.5, 2), 10*sim.Minute, 0, 0))
	}
	for i := 0; i < 4; i++ {
		w.Join(200+i, ep(netmodel.Direct, 3, 4), 10*sim.Minute, 0, 0)
	}
	engine.Run(150 * sim.Second)
	for _, n := range natNodes {
		if n.State == StateDeparted {
			continue
		}
		for pid, p := range n.Partners {
			if !p.Outgoing {
				t.Fatalf("NAT node %d has incoming partner %d", n.ID, pid)
			}
			if !w.Node(pid).EP.Class.Reachable() && !w.Node(pid).IsServer() {
				t.Fatalf("NAT node %d connected to unreachable peer %d with traversal off", n.ID, pid)
			}
		}
	}
}

func TestPopulationRunMostPeersReady(t *testing.T) {
	w, engine, sink := testWorld(t, 8)
	for i := 0; i < 3; i++ {
		w.AddServer(15 * testRate)
	}
	engine.Run(30 * sim.Second)
	mix := netmodel.DefaultClassMix()
	prof := netmodel.DefaultCapacityProfile(testRate)
	classSampler := mix.Sampler()
	rng := w.rng.SplitLabeled("test-population")
	const nPeers = 40
	for i := 0; i < nPeers; i++ {
		at := 30*sim.Second + sim.Time(i)*500*sim.Millisecond
		i := i
		engine.Schedule(at, func() {
			class := netmodel.UserClass(classSampler.Draw(rng))
			w.Join(1000+i, prof.Draw(class, rng), 15*sim.Minute, 1, 0)
		})
	}
	engine.Run(5 * sim.Minute)

	ready := 0
	for _, id := range w.activeView() {
		n := w.Node(id)
		if !n.IsServer() && n.State == StateReady {
			ready++
		}
	}
	if ready < nPeers*3/4 {
		t.Fatalf("only %d/%d peers ready", ready, nPeers)
	}
	// QoS reports must show high continuity overall.
	var ciSum float64
	var ciN int
	for _, rec := range sink.Records() {
		if rec.Kind == logsys.KindQoS {
			ciSum += rec.Continuity
			ciN++
		}
	}
	if ciN == 0 {
		t.Fatal("no QoS reports")
	}
	if mean := ciSum / float64(ciN); mean < 0.9 {
		t.Fatalf("mean continuity %.3f too low", mean)
	}
	// Topology snapshot sanity.
	snap := w.Snapshot()
	if snap.ActivePeers == 0 || snap.ParentLinks == 0 {
		t.Fatalf("empty snapshot: %+v", snap)
	}
	for _, frac := range []float64{snap.FractionReachableLinks(), snap.FractionRandomLinks(), snap.FractionClogged()} {
		if frac < 0 || frac > 1 {
			t.Fatalf("snapshot fraction out of range: %+v", snap)
		}
	}
	if snap.MaxDepth < 1 {
		t.Fatalf("no depth in overlay: %+v", snap)
	}
}

func TestWorldDeterministic(t *testing.T) {
	run := func() []string {
		w, engine, sink := testWorld(t, 99)
		w.AddServer(15 * testRate)
		w.AddServer(15 * testRate)
		engine.Run(30 * sim.Second)
		prof := netmodel.DefaultCapacityProfile(testRate)
		rng := w.rng.SplitLabeled("det")
		for i := 0; i < 25; i++ {
			i := i
			at := 30*sim.Second + sim.Time(i%10)*sim.Second
			engine.Schedule(at, func() {
				class := netmodel.UserClass(i % 4)
				w.Join(500+i, prof.Draw(class, rng), sim.Time(60+i*7)*sim.Second, 1, 0)
			})
		}
		engine.Run(4 * sim.Minute)
		var out []string
		for _, rec := range sink.Records() {
			out = append(out, rec.LogString())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at record %d:\n%s\n%s", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("no records produced")
	}
}

func TestUploadByClassAccounting(t *testing.T) {
	w, engine, _ := testWorld(t, 10)
	w.AddServer(20 * testRate)
	engine.Run(30 * sim.Second)
	w.Join(1, ep(netmodel.Direct, 5, 5), 10*sim.Minute, 0, 0)
	w.Join(2, ep(netmodel.NAT, 0.3, 2), 10*sim.Minute, 0, 0)
	engine.Run(3 * sim.Minute)
	bytes, counts := w.UploadByClass()
	if counts[netmodel.Direct] != 1 || counts[netmodel.NAT] != 1 {
		t.Fatalf("counts %v", counts)
	}
	// Download totals must be positive for both peers.
	for _, id := range []int{1, 2} {
		n := w.Node(id)
		if n.CumDownloadB <= 0 {
			t.Fatalf("peer %d downloaded nothing", id)
		}
	}
	_ = bytes // upload depends on whether peers served each other; just exercised
}
