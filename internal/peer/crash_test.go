package peer

import (
	"testing"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

func TestCrashLeavesDanglingStateThatHeals(t *testing.T) {
	w, engine, _ := testWorld(t, 31)
	w.CrashProb = 0 // explicit crashes below; no random ones
	w.AddServer(20 * testRate)
	engine.Run(30 * sim.Second)
	parent := w.Join(100, ep(netmodel.Direct, 4, 4), 20*sim.Minute, 0, 0)
	child := w.Join(101, ep(netmodel.Direct, 1, 4), 20*sim.Minute, 0, 0)
	engine.Run(60 * sim.Second)
	// Wire the child's sub-stream 0 under the parent (white box).
	now := engine.Now()
	if _, ok := child.Partners[parent.ID]; !ok {
		child.setPartner(parent.ID, &Partner{Outgoing: true, BM: parent.BufferMap(child.ID), BMAt: now, EstablishedAt: now})
		parent.setPartner(child.ID, &Partner{Outgoing: false, BM: child.BufferMap(parent.ID), BMAt: now, EstablishedAt: now})
	}
	if old := child.Subs[0].Parent; old != NoParent {
		w.Node(old).removeChild(0, child.ID)
	}
	child.Subs[0].Parent = parent.ID
	parent.addChild(0, child.ID)

	w.departCrash(parent, "user")
	// Crash: the child still points at the corpse and keeps a dangling
	// partner entry.
	if child.Subs[0].Parent != parent.ID {
		t.Fatal("crash should not detach children immediately")
	}
	if _, dangling := child.Partners[parent.ID]; !dangling {
		t.Fatal("crash should leave a dangling partner entry")
	}
	hBefore := child.Subs[0].H

	// Within roughly a BM period the corpse is detected and the child
	// re-parents; the sub-stream resumes.
	engine.Run(engine.Now() + 15*sim.Second)
	if child.Subs[0].Parent == parent.ID {
		t.Fatal("corpse never detected")
	}
	if _, dangling := child.Partners[parent.ID]; dangling {
		t.Fatal("dangling partner entry never cleaned")
	}
	engine.Run(engine.Now() + 30*sim.Second)
	if child.Subs[0].H <= hBefore {
		t.Fatalf("sub-stream 0 never resumed after crash (H %v)", child.Subs[0].H)
	}
}

func TestCrashFreezesSubtreeUntilDetection(t *testing.T) {
	w, engine, _ := testWorld(t, 32)
	w.CrashProb = 0
	w.AddServer(20 * testRate)
	engine.Run(30 * sim.Second)
	mid := w.Join(100, ep(netmodel.Direct, 4, 4), 20*sim.Minute, 0, 0)
	leaf := w.Join(101, ep(netmodel.Direct, 1, 4), 20*sim.Minute, 0, 0)
	engine.Run(60 * sim.Second)
	now := engine.Now()
	if _, ok := leaf.Partners[mid.ID]; !ok {
		leaf.setPartner(mid.ID, &Partner{Outgoing: true, BM: mid.BufferMap(leaf.ID), BMAt: now, EstablishedAt: now})
		mid.setPartner(leaf.ID, &Partner{Outgoing: false, BM: leaf.BufferMap(mid.ID), BMAt: now, EstablishedAt: now})
	}
	for j := range leaf.Subs {
		if old := leaf.Subs[j].Parent; old != NoParent {
			w.Node(old).removeChild(j, leaf.ID)
		}
		leaf.Subs[j].Parent = mid.ID
		mid.addChild(j, leaf.ID)
	}
	w.departCrash(mid, "user")
	// One tick later the leaf's H must be frozen (its parent is dead
	// and undetected); the freeze is what Inequality (1) eventually
	// sees as lag.
	h0 := leaf.Subs[0].H
	engine.Run(engine.Now() + 2*sim.Second)
	if leaf.Subs[0].Parent == mid.ID && leaf.Subs[0].H != h0 {
		t.Fatalf("subtree advanced under a crashed parent: %v -> %v", h0, leaf.Subs[0].H)
	}
	// Full recovery follows.
	engine.Run(engine.Now() + 60*sim.Second)
	if leaf.MinH() <= h0 {
		t.Fatal("leaf never recovered after crash")
	}
}

func TestCrashProbDrawsBothModes(t *testing.T) {
	w, engine, sink := testWorld(t, 33)
	w.CrashProb = 0.5
	w.AddServer(20 * testRate)
	engine.Run(30 * sim.Second)
	for i := 0; i < 30; i++ {
		w.Join(100+i, ep(netmodel.Direct, 2, 3), sim.Time(40+i)*sim.Second, 0, 0)
	}
	engine.Run(4 * sim.Minute)
	leaves := 0
	for _, rec := range sink.Records() {
		if rec.Kind == "leave" && rec.Reason == "user" {
			leaves++
		}
	}
	if leaves < 25 {
		t.Fatalf("only %d user leaves", leaves)
	}
	// Both crash and graceful departures are logged identically (the
	// reporter fires either way); the distinction is protocol-level.
	// The run completing with invariants intact is asserted elsewhere;
	// here we confirm sessions closed.
}
