package peer

import (
	"reflect"
	"runtime"
	"testing"

	"coolstream/internal/faults"
	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// schedScenario runs the mixed-churn digest scenario with every fault
// class active (tracker outage, NAT refusals, partner kills, burst
// loss) plus control loss, under either control mode, and returns the
// digest and the final world. This is the adversarial workload for the
// due-wheel equivalence property: it exercises every touch point —
// partnership completion, severed links, graceful and crash
// departures, stall abandons, the program-end cliff.
func schedScenario(t *testing.T, seed uint64, fullSweep bool, mut ...func(*World)) (uint64, *World) {
	t.Helper()
	p := DefaultParams()
	p.ReportPeriod = 30 * sim.Second
	p.ControlLossProb = 0.1
	engine := sim.NewEngine(sim.Second)
	sink := &logsys.MemorySink{}
	w, err := NewWorld(p, engine, sink, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	w.FullSweepControl = fullSweep
	for _, m := range mut {
		m(w)
	}
	sch, err := faults.NewSchedule(faults.Config{
		TrackerOutages:  []faults.Window{{Start: 60 * sim.Second, End: 90 * sim.Second}},
		NATRefusalProb:  0.3,
		PartnerKillRate: 0.5,
		BurstLoss: []faults.LossWindow{
			{Window: faults.Window{Start: 2 * sim.Minute, End: 150 * sim.Second}, Frac: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Faults = sch
	w.Retry = faults.Backoff{Base: 2 * sim.Second, Cap: 20 * sim.Second, JitterFrac: 0.5}
	w.AddServer(15 * testRate)
	w.AddServer(15 * testRate)
	engine.Run(30 * sim.Second)
	prof := netmodel.DefaultCapacityProfile(testRate)
	rng := w.rng.SplitLabeled("digest")
	for i := 0; i < 80; i++ {
		i := i
		at := 30*sim.Second + sim.Time(i%40)*2*sim.Second
		engine.Schedule(at, func() {
			class := netmodel.UserClass(i % 4)
			watch := sim.Time(30+(i*13)%200) * sim.Second
			w.Join(600+i, prof.Draw(class, rng), watch, 1, 0)
		})
	}
	engine.Run(4 * sim.Minute)
	w.DepartAllPeers("program-end")
	engine.Run(engine.Now() + 10*sim.Second)
	return worldDigest(w, sink.Records()), w
}

// nodeProjection is the mode-independent view of a node's final state:
// everything observable by the protocol, excluding the wheel's private
// bookkeeping (adaptDue, wheelAt) and the recycled-storage pointers.
type nodeProjection struct {
	ID, UserID, Session int
	State               State
	JoinedAt, ReadyAt   sim.Time
	StartSubAt, LeftAt  sim.Time
	Retries             int
	Subs                []Subscription
	PartnerIDs          []int
	BMDue               sim.Time
	LastGossipAt        sim.Time
	LastReportAt        sim.Time
	LastAdaptAt         sim.Time
	RecruitingDue       sim.Time
	CumUp, CumDown      float64
	Missed, Total       float64
	PlayDeadline        float64
	StartPos            float64
	PartnerChanges      int
	MCacheIDs           []int
}

func projectNode(n *Node) nodeProjection {
	pr := nodeProjection{
		ID: n.ID, UserID: n.UserID, Session: n.Session,
		State:    n.State,
		JoinedAt: n.JoinedAt, ReadyAt: n.ReadyAt,
		StartSubAt: n.StartSubAt, LeftAt: n.LeftAt,
		Retries:       n.Retries,
		Subs:          append([]Subscription(nil), n.Subs...),
		PartnerIDs:    append([]int(nil), n.partnerIDs...),
		BMDue:         n.bmDue,
		LastGossipAt:  n.lastGossipAt,
		LastReportAt:  n.lastReportAt,
		LastAdaptAt:   n.lastAdaptAt,
		RecruitingDue: n.recruitingDue,
		CumUp:         n.CumUploadB, CumDown: n.CumDownloadB,
		Missed: n.hot.missedBlocks, Total: n.hot.totalBlocks,
		PlayDeadline:   n.hot.playDeadline,
		StartPos:       n.startPos,
		PartnerChanges: n.partnerChanges,
	}
	if n.MCache != nil {
		for _, e := range n.MCache.Snapshot() {
			pr.MCacheIDs = append(pr.MCacheIDs, e.ID)
		}
	}
	return pr
}

// TestWheelMatchesFullSweep is the core equivalence property of the
// due-driven control plane: under adversarial churn and faults, a run
// with the wheel must be bit-identical to the legacy full sweep —
// same digest (all log records plus final fluid state) and
// deep-equal per-node protocol state — across seeds.
func TestWheelMatchesFullSweep(t *testing.T) {
	for _, seed := range []uint64{7, 101, 4242} {
		dWheel, wWheel := schedScenario(t, seed, false)
		dSweep, wSweep := schedScenario(t, seed, true)
		if dWheel != dSweep {
			t.Fatalf("seed %d: wheel digest %#x != full-sweep digest %#x", seed, dWheel, dSweep)
		}
		if len(wWheel.Nodes()) != len(wSweep.Nodes()) {
			t.Fatalf("seed %d: node counts differ: %d vs %d",
				seed, len(wWheel.Nodes()), len(wSweep.Nodes()))
		}
		for i, n := range wWheel.Nodes() {
			a, b := projectNode(n), projectNode(wSweep.Nodes()[i])
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d: node %d state diverged:\nwheel: %+v\nsweep: %+v", seed, i, a, b)
			}
		}
		if wWheel.Adaptations != wSweep.Adaptations ||
			wWheel.ReadySessions != wSweep.ReadySessions ||
			wWheel.AbandonSessions != wSweep.AbandonSessions ||
			wWheel.FailedSessions != wSweep.FailedSessions {
			t.Fatalf("seed %d: world counters diverged", seed)
		}
		t.Logf("seed %d: wheel == sweep, digest %#x", seed, dWheel)
	}
}

// TestWheelMatchesFullSweepAcrossGOMAXPROCS pins mode equivalence at
// both parallelism settings: {wheel, sweep} × {GOMAXPROCS 1, 8} must
// all produce one digest.
func TestWheelMatchesFullSweepAcrossGOMAXPROCS(t *testing.T) {
	orig := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(orig)
	wheel1, _ := schedScenario(t, 4242, false)
	sweep1, _ := schedScenario(t, 4242, true)
	runtime.GOMAXPROCS(8)
	wheel8, _ := schedScenario(t, 4242, false)
	sweep8, _ := schedScenario(t, 4242, true)
	if wheel1 != sweep1 || wheel1 != wheel8 || wheel1 != sweep8 {
		t.Fatalf("digests diverged: wheel1=%#x sweep1=%#x wheel8=%#x sweep8=%#x",
			wheel1, sweep1, wheel8, sweep8)
	}
}

// TestFullSweepStillMatchesGolden runs the golden scenario with the
// wheel disabled: the legacy sweep path must keep reproducing the
// pre-optimisation digest, so the A/B switch really selects the seed
// behaviour (the default-on wheel is pinned by TestRunDigestMatchesGolden).
func TestFullSweepStillMatchesGolden(t *testing.T) {
	p := DefaultParams()
	p.ReportPeriod = 30 * sim.Second
	engine := sim.NewEngine(sim.Second)
	sink := &logsys.MemorySink{}
	w, err := NewWorld(p, engine, sink, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, 4242)
	if err != nil {
		t.Fatal(err)
	}
	w.FullSweepControl = true
	w.AddServer(15 * testRate)
	w.AddServer(15 * testRate)
	engine.Run(30 * sim.Second)
	prof := netmodel.DefaultCapacityProfile(testRate)
	rng := w.rng.SplitLabeled("digest")
	for i := 0; i < 80; i++ {
		i := i
		at := 30*sim.Second + sim.Time(i%40)*2*sim.Second
		engine.Schedule(at, func() {
			class := netmodel.UserClass(i % 4)
			watch := sim.Time(30+(i*13)%200) * sim.Second
			w.Join(600+i, prof.Draw(class, rng), watch, 1, 0)
		})
	}
	engine.Run(4 * sim.Minute)
	w.DepartAllPeers("program-end")
	engine.Run(engine.Now() + 10*sim.Second)
	if got := worldDigest(w, sink.Records()); got != goldenRunDigest {
		t.Fatalf("full-sweep digest %#x differs from golden %#x", got, goldenRunDigest)
	}
}
