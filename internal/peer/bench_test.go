package peer

import (
	"testing"

	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// BenchmarkWorldTick measures the steady-state cost of advancing a
// ~150-peer overlay by one control tick (all five phases).
func BenchmarkWorldTick(b *testing.B) {
	p := DefaultParams()
	engine := sim.NewEngine(sim.Second)
	w, err := NewWorld(p, engine, logsys.NopSink{}, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		w.AddServer(20 * 768e3)
	}
	engine.Run(30 * sim.Second)
	prof := netmodel.DefaultCapacityProfile(768e3)
	rng := w.rng.SplitLabeled("bench")
	for i := 0; i < 150; i++ {
		class := netmodel.UserClass(i % 4)
		// Effectively infinite watch time so the population cannot
		// drain no matter how many virtual seconds b.N covers.
		w.Join(1000+i, prof.Draw(class, rng), 1000*sim.Hour, 0, 0)
	}
	engine.Run(2 * sim.Minute) // let the overlay settle
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Run(engine.Now() + sim.Second)
	}
	b.ReportMetric(float64(w.ActivePeerCount()), "active_peers")
}
