package peer

import (
	"testing"

	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// benchWorld builds a world with nPeers long-lived peers, settles the
// overlay, and returns it ready for per-tick measurement.
func benchWorld(b *testing.B, nPeers int, churnFree bool) (*World, *sim.Engine) {
	b.Helper()
	p := DefaultParams()
	engine := sim.NewEngine(sim.Second)
	w, err := NewWorld(p, engine, logsys.NopSink{}, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	if churnFree {
		// Fixed topology: no stall-abandons, no crashes, infinite watches.
		w.StallAbandonProb = 0
		w.CrashProb = 0
	}
	for i := 0; i < 4+nPeers/100; i++ {
		w.AddServer(20 * 768e3)
	}
	engine.Run(30 * sim.Second)
	prof := netmodel.DefaultCapacityProfile(768e3)
	rng := w.rng.SplitLabeled("bench")
	for i := 0; i < nPeers; i++ {
		i := i
		at := 30*sim.Second + sim.Time(i%60)*sim.Second
		engine.Schedule(at, func() {
			class := netmodel.UserClass(i % 4)
			// Effectively infinite watch time so the population cannot
			// drain no matter how many virtual seconds b.N covers.
			w.Join(1000+i, prof.Draw(class, rng), 1000*sim.Hour, 0, 0)
		})
	}
	engine.Run(4 * sim.Minute) // let the overlay settle
	return w, engine
}

// BenchmarkTickSteadyState measures one control tick over a settled
// 1k-peer overlay with a fixed topology (no churn, no adaptation
// pressure) — the hot path the topology-epoch cache targets. The
// allocs/op figure is the PR's zero-allocation acceptance metric.
func BenchmarkTickSteadyState(b *testing.B) {
	w, engine := benchWorld(b, 1000, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Run(engine.Now() + sim.Second)
	}
	b.ReportMetric(float64(w.ActivePeerCount()), "active_peers")
}

// BenchmarkTickChurn measures ticks under heavy adaptation: a steady
// arrival stream of short-watch peers keeps the overlay re-wiring, so
// the topology cache is invalidated nearly every tick.
func BenchmarkTickChurn(b *testing.B) {
	w, engine := benchWorld(b, 600, false)
	prof := netmodel.DefaultCapacityProfile(768e3)
	rng := w.rng.SplitLabeled("bench-churn")
	next := 2000
	// Self-rescheduling arrival process: four short-lived joins per
	// virtual second keep churn going for any b.N.
	var arrive func()
	arrive = func() {
		for k := 0; k < 4; k++ {
			id := next
			next++
			class := netmodel.UserClass(id % 4)
			watch := sim.Time(20+rng.Intn(90)) * sim.Second
			w.Join(id, prof.Draw(class, rng), watch, 1, 0)
		}
		engine.After(sim.Second, arrive)
	}
	engine.After(sim.Second, arrive)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Run(engine.Now() + sim.Second)
	}
	b.ReportMetric(float64(w.ActivePeerCount()), "active_peers")
}

// BenchmarkWorldTick measures the steady-state cost of advancing a
// ~150-peer overlay by one control tick (all five phases).
func BenchmarkWorldTick(b *testing.B) {
	p := DefaultParams()
	engine := sim.NewEngine(sim.Second)
	w, err := NewWorld(p, engine, logsys.NopSink{}, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		w.AddServer(20 * 768e3)
	}
	engine.Run(30 * sim.Second)
	prof := netmodel.DefaultCapacityProfile(768e3)
	rng := w.rng.SplitLabeled("bench")
	for i := 0; i < 150; i++ {
		class := netmodel.UserClass(i % 4)
		// Effectively infinite watch time so the population cannot
		// drain no matter how many virtual seconds b.N covers.
		w.Join(1000+i, prof.Draw(class, rng), 1000*sim.Hour, 0, 0)
	}
	engine.Run(2 * sim.Minute) // let the overlay settle
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Run(engine.Now() + sim.Second)
	}
	b.ReportMetric(float64(w.ActivePeerCount()), "active_peers")
}
