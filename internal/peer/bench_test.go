package peer

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"testing"

	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// peakBenchSize is the flash-crowd population: the paper's 40k evening
// peak by default, overridable via PEAK_BENCH_PEERS for CI smoke runs
// that only need the bench exercised, not held at full scale.
func peakBenchSize() int {
	if s := os.Getenv("PEAK_BENCH_PEERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 40000
}

// benchWorld builds a world with nPeers long-lived peers, settles the
// overlay, and returns it ready for per-tick measurement.
func benchWorld(b *testing.B, nPeers int, churnFree bool) (*World, *sim.Engine) {
	b.Helper()
	p := DefaultParams()
	engine := sim.NewEngine(sim.Second)
	w, err := NewWorld(p, engine, logsys.NopSink{}, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	if churnFree {
		// Fixed topology: no stall-abandons, no crashes, infinite watches.
		w.StallAbandonProb = 0
		w.CrashProb = 0
	}
	for i := 0; i < 4+nPeers/100; i++ {
		w.AddServer(20 * 768e3)
	}
	engine.Run(30 * sim.Second)
	prof := netmodel.DefaultCapacityProfile(768e3)
	rng := w.rng.SplitLabeled("bench")
	for i := 0; i < nPeers; i++ {
		i := i
		at := 30*sim.Second + sim.Time(i%60)*sim.Second
		engine.Schedule(at, func() {
			class := netmodel.UserClass(i % 4)
			// Effectively infinite watch time so the population cannot
			// drain no matter how many virtual seconds b.N covers.
			w.Join(1000+i, prof.Draw(class, rng), 1000*sim.Hour, 0, 0)
		})
	}
	engine.Run(4 * sim.Minute) // let the overlay settle
	return w, engine
}

// BenchmarkTickSteadyState measures one control tick over a settled
// 1k-peer overlay with a fixed topology (no churn, no adaptation
// pressure) — the hot path the topology-epoch cache targets. The
// allocs/op figure is the PR's zero-allocation acceptance metric.
func BenchmarkTickSteadyState(b *testing.B) {
	w, engine := benchWorld(b, 1000, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Run(engine.Now() + sim.Second)
	}
	b.ReportMetric(float64(w.ActivePeerCount()), "active_peers")
}

// BenchmarkTickChurn measures ticks under heavy adaptation: a steady
// arrival stream of short-watch peers keeps the overlay re-wiring, so
// the topology cache is invalidated nearly every tick.
func BenchmarkTickChurn(b *testing.B) {
	w, engine := benchWorld(b, 600, false)
	prof := netmodel.DefaultCapacityProfile(768e3)
	rng := w.rng.SplitLabeled("bench-churn")
	next := 2000
	// Self-rescheduling arrival process: four short-lived joins per
	// virtual second keep churn going for any b.N.
	var arrive func()
	arrive = func() {
		for k := 0; k < 4; k++ {
			id := next
			next++
			class := netmodel.UserClass(id % 4)
			watch := sim.Time(20+rng.Intn(90)) * sim.Second
			w.Join(id, prof.Draw(class, rng), watch, 1, 0)
		}
		engine.After(sim.Second, arrive)
	}
	engine.After(sim.Second, arrive)
	// Reach churn equilibrium before the timer starts: the measured
	// region is steady-state churn, not the arrival ramp (whose one-time
	// pool-warming allocations would otherwise smear into allocs/op).
	engine.Run(engine.Now() + 3000*sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Run(engine.Now() + sim.Second)
	}
	b.ReportMetric(float64(w.ActivePeerCount()), "active_peers")
}

// BenchmarkJoinDepartChurn hammers the membership machinery: a large
// settled overlay with a continuous stream of short-watch arrivals, so
// every virtual second joins peers, retires peers, and recycles their
// internals through the free lists. The allocs/op figure is the
// churn-path acceptance metric for the node arena.
func BenchmarkJoinDepartChurn(b *testing.B) {
	w, engine := benchWorld(b, 2000, false)
	prof := netmodel.DefaultCapacityProfile(768e3)
	rng := w.rng.SplitLabeled("bench-jdc")
	next := 100000
	var arrive func()
	arrive = func() {
		for k := 0; k < 8; k++ {
			id := next
			next++
			class := netmodel.UserClass(id % 4)
			watch := sim.Time(15+rng.Intn(45)) * sim.Second
			w.Join(id, prof.Draw(class, rng), watch, 1, 0)
		}
		engine.After(sim.Second, arrive)
	}
	engine.After(sim.Second, arrive)
	engine.Run(engine.Now() + 3000*sim.Second) // reach churn equilibrium
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Run(engine.Now() + sim.Second)
	}
	b.ReportMetric(float64(w.ActivePeerCount()), "active_peers")
}

// benchWorldPeak builds the paper's evening-peak regime: a diurnal-style
// accelerating ramp to nPeers concurrent viewers (arrival rate grows
// linearly across the ramp, like the Fig. 5 build-up toward 21:00),
// settled and ready for peak-hold measurement.
func benchWorldPeak(b testing.TB, nPeers int, fullSweep bool, shards int, tune func(*Params)) (*World, *sim.Engine) {
	b.Helper()
	p := DefaultParams()
	if tune != nil {
		tune(&p)
	}
	engine := sim.NewEngine(sim.Second)
	w, err := NewWorld(p, engine, logsys.NopSink{}, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	w.FullSweepControl = fullSweep // must precede joins: the wheel arms at newNode
	if shards > 1 {
		if err := w.SetShards(shards); err != nil {
			b.Fatal(err)
		}
	}
	w.StallAbandonProb = 0
	w.CrashProb = 0
	// A handful of fat servers, not a server farm: bootstrap replies are
	// servers-first, so a large server tier would crowd every regular
	// peer out of the candidate lists and the overlay could never absorb
	// the arrival wave through peer-to-peer capacity.
	for i := 0; i < 8; i++ {
		w.AddServer(250 * 768e3)
	}
	engine.Run(30 * sim.Second)
	// Provision uploads at 2x the stream rate's default mix. At the
	// paper's tight ~1.35x resource index a 40k overlay degenerates into
	// frozen sub-stream trees (most nodes permanently re-subscribing),
	// which measures the stall cascade, not the control plane. The
	// well-provisioned mix keeps the overlay in healthy steady state so
	// the peak-hold tick is representative.
	prof := netmodel.DefaultCapacityProfile(2 * 768e3)
	rng := w.rng.SplitLabeled("bench-peak")
	const ramp = 600.0 // seconds of virtual build-up
	for i := 0; i < nPeers; i++ {
		i := i
		// sqrt spacing: instantaneous arrival rate grows linearly with
		// time, an accelerating evening build-up rather than a step.
		// Patience lets arrivals caught in the crowd retry (the paper's
		// users reloading through the flash-crowd join struggle).
		off := sim.Time(ramp*math.Sqrt(float64(i)/float64(nPeers))*1000) * sim.Millisecond
		engine.Schedule(30*sim.Second+off, func() {
			class := netmodel.UserClass(i % 4)
			w.Join(1000+i, prof.Draw(class, rng), 1000*sim.Hour, 5, 0)
		})
	}
	// Settle well past the crowd: retry chains run up to
	// patience*(JoinTimeout+RetryDelay) ~ 5 min past the last arrival,
	// and the sub-stream trees knocked over by the wave need a few
	// minutes to re-parent before the population is in steady viewing.
	engine.Run(30*sim.Second + sim.Time(ramp)*sim.Second + 600*sim.Second)
	return w, engine
}

// BenchmarkTickFlashCrowd40k measures one tick while holding the
// paper's evening peak of 40k concurrent viewers, under both control
// modes. The control_ns_op metric isolates the control phase (via
// MeterControl), which is what the due-wheel accelerates: the fluid
// allocate/advance phases are O(population) in both modes and dominated
// by the same code. After the timed hold, the run finishes with the
// 22:00 program-end cliff (every viewer departs) to exercise the
// departure storm at full scale.
func BenchmarkTickFlashCrowd40k(b *testing.B) {
	for _, mode := range []struct {
		name      string
		fullSweep bool
		shards    int
	}{{"wheel", false, 1}, {"sweep", true, 1}, {"sharded4", false, 4}} {
		b.Run(mode.name, func(b *testing.B) {
			w, engine := benchWorldPeak(b, peakBenchSize(), mode.fullSweep, mode.shards, nil)
			b.Logf("peak population: %d active, %d failed sessions", w.ActivePeerCount(), w.FailedSessions)
			w.MeterControl(true)
			base := w.ControlNanos
			baseVisits := w.ControlVisits
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.Run(engine.Now() + sim.Second)
			}
			b.StopTimer()
			b.ReportMetric(float64(w.ControlNanos-base)/float64(b.N), "control_ns_op")
			b.ReportMetric(float64(w.ControlVisits-baseVisits)/float64(b.N), "visits_op")
			b.ReportMetric(float64(w.ActivePeerCount()), "active_peers")
			// The 22:00 cliff: everyone leaves at once. Arrivals that were
			// mid-retry when the program ended re-join moments later, so
			// sweep the stragglers until the retry chains are exhausted.
			for i := 0; ; i++ {
				w.DepartAllPeers("program-end")
				engine.Run(engine.Now() + 5*sim.Second)
				if w.ActivePeerCount() == 0 && engine.Pending() == 0 {
					break
				}
				if i > 200 {
					b.Fatalf("%d peers still active after the cliff", w.ActivePeerCount())
				}
			}
		})
	}
}

// BenchmarkTickSparseControl holds a 10k peak under a sparse control
// plane: BMPeriod 30 s (Tp/Ts widened proportionally so the staler
// views don't thrash adaptation) and gossip once a minute. At the
// Table I defaults BM phase dispersion keeps ~75-83% of nodes
// genuinely due every tick, which caps what any scheduler can skip
// (DESIGN.md §9); with sparse periods the duty cycle drops to ~20%
// and the due wheel's asymptotic advantage over the O(population)
// sweep shows directly.
func BenchmarkTickSparseControl(b *testing.B) {
	sparse := func(p *Params) {
		p.BMPeriod = 30 * sim.Second
		p.GossipPeriod = 60 * sim.Second
		p.Tp = 80
		p.Ts = 40
	}
	for _, mode := range []struct {
		name      string
		fullSweep bool
	}{{"wheel", false}, {"sweep", true}} {
		b.Run(mode.name, func(b *testing.B) {
			w, engine := benchWorldPeak(b, 10000, mode.fullSweep, 1, sparse)
			b.Logf("peak population: %d active, %d failed sessions", w.ActivePeerCount(), w.FailedSessions)
			w.MeterControl(true)
			base := w.ControlNanos
			baseVisits := w.ControlVisits
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.Run(engine.Now() + sim.Second)
			}
			b.StopTimer()
			b.ReportMetric(float64(w.ControlNanos-base)/float64(b.N), "control_ns_op")
			b.ReportMetric(float64(w.ControlVisits-baseVisits)/float64(b.N), "visits_op")
			b.ReportMetric(float64(w.ActivePeerCount()), "active_peers")
		})
	}
}

// millionBenchSize is the synthetic-overlay population for the
// million-peer scaling benchmark, overridable via MILLION_BENCH_PEERS
// for CI smoke runs.
func millionBenchSize() int {
	if s := os.Getenv("MILLION_BENCH_PEERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 1_000_000
}

// benchWorldSynthetic wraps NewSyntheticWorld (synthetic.go) — the
// settled steady-state overlay shared with the cmd/coolbench -tickab
// interleaved harness — converting construction errors to b.Fatal.
func benchWorldSynthetic(b testing.TB, nPeers, shards int) (*World, *sim.Engine) {
	b.Helper()
	w, engine, err := NewSyntheticWorld(nPeers, shards)
	if err != nil {
		b.Fatal(err)
	}
	return w, engine
}

// BenchmarkTickMillionPeer measures one control tick holding a
// million-peer synthetic overlay (MILLION_BENCH_PEERS overrides the
// population), at one shard and at eight. The per-phase nanosecond
// metrics come from MeterPhases; merge_ns_op is the deferred engine's
// sequential barrier (effect drain + record-lane flush), the
// serialization cost the sharded control pays for determinism. Wall
// speedup requires real cores: on a single-CPU runner the eight-shard
// figure measures engine overhead, not parallelism.
func BenchmarkTickMillionPeer(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			w, engine := benchWorldSynthetic(b, millionBenchSize(), shards)
			b.Logf("population: %d active peers, %d shards, GOMAXPROCS %d",
				w.ActivePeerCount(), w.NumShards(), runtime.GOMAXPROCS(0))
			w.MeterPhases(true)
			base := w.PhaseStats()
			baseVisits := w.ControlVisits
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.Run(engine.Now() + sim.Second)
			}
			b.StopTimer()
			ph := w.PhaseStats()
			n := float64(b.N)
			b.ReportMetric(float64(ph.Allocate-base.Allocate)/n, "alloc_ns_op")
			b.ReportMetric(float64(ph.Advance-base.Advance)/n, "advance_ns_op")
			b.ReportMetric(float64(ph.Playback-base.Playback)/n, "playback_ns_op")
			b.ReportMetric(float64(ph.Control-base.Control)/n, "control_ns_op")
			b.ReportMetric(float64(ph.Drain-base.Drain)/n, "drain_ns_op")
			b.ReportMetric(float64(ph.Merge-base.Merge)/n, "merge_ns_op")
			// The Amdahl number of the sharded tick: the sequential
			// barrier's share of whole-tick time. The drain passes are
			// excluded — they partition by target/source shard and run
			// on the worker pool.
			if el := b.Elapsed(); el > 0 {
				b.ReportMetric(float64(ph.Merge-base.Merge)/float64(el.Nanoseconds()), "merge_share")
			}
			b.ReportMetric(float64(w.ControlVisits-baseVisits)/n, "visits_op")
			b.ReportMetric(float64(w.ActivePeerCount()), "active_peers")
		})
	}
}

// BenchmarkWorldTick measures the steady-state cost of advancing a
// ~150-peer overlay by one control tick (all five phases).
func BenchmarkWorldTick(b *testing.B) {
	p := DefaultParams()
	engine := sim.NewEngine(sim.Second)
	w, err := NewWorld(p, engine, logsys.NopSink{}, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		w.AddServer(20 * 768e3)
	}
	engine.Run(30 * sim.Second)
	prof := netmodel.DefaultCapacityProfile(768e3)
	rng := w.rng.SplitLabeled("bench")
	for i := 0; i < 150; i++ {
		class := netmodel.UserClass(i % 4)
		// Effectively infinite watch time so the population cannot
		// drain no matter how many virtual seconds b.N covers.
		w.Join(1000+i, prof.Draw(class, rng), 1000*sim.Hour, 0, 0)
	}
	engine.Run(2 * sim.Minute) // let the overlay settle
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Run(engine.Now() + sim.Second)
	}
	b.ReportMetric(float64(w.ActivePeerCount()), "active_peers")
}
