package peer

import (
	"slices"

	"coolstream/internal/sim"
)

// This file implements the due-driven control plane: instead of
// sweeping every active node per tick, the world keeps a timing wheel
// of per-node control due times and visits only the nodes whose next
// possible control action has arrived.
//
// Correctness rests on a single invariant, the *conservative-visit*
// contract: every control sub-function is a provable no-op (no RNG
// draw, no observable mutation) when invoked before its own gate, so
// visiting a node early is always safe — only a missed visit can
// change behaviour. The due computation below therefore only ever
// under-estimates the next action time, never over-estimates it:
//
//   - BM refresh, gossip, status reports and recruiting are exact
//     timers owned by the node (bmDue, lastGossipAt, lastReportAt,
//     recruitingDue).
//   - The §IV-B Inequality (1) depends on the continuously evolving
//     fluid H state, which only the advance phase moves; crossings are
//     detected in the playback phase of the same tick (per-shard flag
//     lists merged into the drain set, see playbackShard) instead of
//     being predicted. Inequality (2) and the parent-link condition
//     are frozen between BM refreshes; refreshBMs reports the refresh
//     outcomes that can change their verdicts (evalHint) and
//     adaptEvalBound covers the cool-down expiry. The stall-abandon
//     check gets a provable lower bound on its first possible draw
//     (stallDue).
//   - State changed *from outside* a node's own visit (partnership
//     established or severed, parent departed) is signalled through
//     touchNode, which forces a visit on the next drained tick — the
//     same tick a full sweep would first observe the change.
//
// Visits drain in ascending node-ID order, matching the full sweep's
// iteration order exactly, so a run with the wheel enabled is
// bit-identical (RNG streams, log records, digest) to the legacy
// O(population) sweep.

// farFuture is the "no finite deadline" sentinel for due components.
const farFuture = sim.Time(1) << 62

// wheelOn reports whether due-driven control is active. FullSweepControl
// must be set before the first join is scheduled; toggling it mid-run is
// unsupported (the wheel would hold a stale schedule).
func (w *World) wheelOn() bool { return len(w.shards) > 0 && !w.FullSweepControl }

// touchNode signals that a node's control-relevant state was changed
// from outside its own control visit, scheduling a visit on the next
// drained tick on the node's own shard wheel. Safe to call for servers
// and departed nodes (no-op).
//
// During the legacy single-shard drain the rule mirrors the full sweep
// exactly: a touched node whose ID is still ahead of the drain cursor
// is inserted into this tick's due set (the sweep would reach it this
// tick); one at or behind the cursor is deferred to the next tick (the
// sweep already passed it). The deferred-effect engine only touches
// nodes from sequential phases (events, the barrier drain) — its
// wheels are drained before the barrier, so Schedule clamps to the
// next tick, which is exactly "the sweep already passed".
func (w *World) touchNode(id int) {
	if !w.wheelOn() {
		return
	}
	n := w.nodes[id]
	if n.IsServer() || n.State == StateDeparted {
		return
	}
	// Membership around the node changed: force a §IV-B evaluation at
	// the next visit (conservative; evaluation without violation draws
	// no randomness and changes nothing).
	n.adaptDue = 0
	sh := w.shards[n.shard]
	if w.draining {
		if id > w.drainPos {
			w.insertDue(sh, id)
			return
		}
		w.wheelSchedule(sh, n, sh.wheel.Base())
		return
	}
	w.wheelSchedule(sh, n, w.Engine.Now())
}

// wheelSchedule enqueues the node on its shard's wheel at the given
// due time, suppressing the enqueue when an earlier (still pending)
// entry already covers it. Duplicate entries are harmless — the drain
// deduplicates per tick — so the wheelAt bookkeeping is best-effort,
// not exact.
func (w *World) wheelSchedule(sh *worldShard, n *Node, at sim.Time) {
	if at >= farFuture {
		return
	}
	if n.wheelAt != 0 && n.wheelAt <= at {
		return
	}
	sh.wheel.Schedule(n.ID, at)
	n.wheelAt = at
}

// insertDue adds id into the not-yet-visited tail of the current drain
// set, keeping it sorted and duplicate-free. Only the legacy
// single-shard drain uses it (the deferred engine never touches nodes
// mid-drain).
func (w *World) insertDue(sh *worldShard, id int) {
	due := sh.dueIDs
	v := int32(id)
	// Plain binary search (sort.Search's func parameter would allocate
	// a closure on this churn-hot path).
	i, hi := w.drainIdx+1, len(due)
	for i < hi {
		mid := int(uint(i+hi) >> 1)
		if due[mid] < v {
			i = mid + 1
		} else {
			hi = mid
		}
	}
	if i < len(due) && due[i] == v {
		return
	}
	due = append(due, 0)
	copy(due[i+1:], due[i:])
	due[i] = v
	sh.dueIDs = due
}

// nextControlDue computes the node's next control deadline as the
// minimum over every control component's own due time. Called at the
// end of a visit, when every component that was due has just acted and
// pushed its own timer forward. Reads parents through the visit
// context so a deferred detach (applied only at the barrier) still
// registers as a stalled sub-stream — missing it would skip the
// every-tick re-subscribe polling and stall the node forever.
func (w *World) nextControlDue(vc *vctx, n *Node, now sim.Time) sim.Time {
	tick := w.Engine.TickPeriod()
	next := now + tick
	if n.State == StateJoining || n.State == StateSubscribing {
		// Startup phases poll every tick: the initial subscription and
		// the media-ready transition both depend on per-tick fluid state.
		return next
	}
	if n.bmDue <= now {
		return next // a partner-BM scan is already due
	}
	due := n.bmDue // refreshBMs keeps this ≤ lastScan + BMPeriod
	if len(n.partnerIDs) > 0 {
		if g := n.lastGossipAt + w.P.GossipPeriod; g < due {
			due = g
		}
	}
	if r := n.lastReportAt + w.P.ReportPeriod; r < due {
		due = r
	}
	if len(n.Partners) < w.P.MinPartners && n.recruitingDue < due {
		due = n.recruitingDue
	}
	for j := range n.Subs {
		if vc.parent(n, j) == NoParent {
			return next // stalled sub-stream: re-subscribe retries every tick
		}
	}
	if n.adaptDue < due {
		due = n.adaptDue
	}
	if s := w.stallDue(n, now); s < due {
		due = s
	}
	if due <= now {
		return next
	}
	return due
}

// adaptEvalBound returns the next time the §IV-B adaptation check must
// be re-evaluated on a timer, given that a visit just considered it at
// now. Outside the cool-down no timer is needed — every way an
// adaptation input can newly violate an inequality carries its own
// signal: Inequality (1) crossings of the fluid H state are flagged by
// the playback phase of the tick they happen (see playbackShard),
// Inequality (2) and the parent-link condition are frozen between BM
// refreshes and refreshBMs reports the refresh outcomes that can flip
// them (evalHint), and membership changes from outside the visit zero
// adaptDue through touchNode. During the cool-down adapt is a provable
// no-op, but a violation signalled meanwhile must still be acted on
// when the cool-down expires — hence the expiry deadline.
func (w *World) adaptEvalBound(n *Node, now sim.Time) sim.Time {
	if now-n.lastAdaptAt < w.P.Ta {
		// Cool-down: adapt is a provable no-op until it expires (an
		// adaptation that just fired lands here too). Re-evaluating at
		// expiry is conservative — if the signalled violation cleared
		// itself, the evaluation finds nothing, draws no randomness and
		// changes nothing.
		return n.lastAdaptAt + w.P.Ta
	}
	return farFuture
}

// stallDue returns a conservative lower bound on the next time the
// frustrated-user stall check can draw its abandon hazard. The check
// requires a quarter report interval of evidence and a continuity
// index below the threshold; between visits missed and total blocks
// both grow at most (and total exactly) K·β per second, so the index
// can first cross below StallContinuity at the δ* solving
// (missed + Kβδ)/(total + Kβδ) = 1 − SC.
func (w *World) stallDue(n *Node, now sim.Time) sim.Time {
	if n.State != StateReady || w.StallAbandonProb <= 0 || w.StallContinuity <= 0 {
		return farFuture
	}
	gate := n.lastReportAt + w.P.ReportPeriod/4
	kbeta := float64(w.P.Layout.K) * w.P.Layout.SubBlocksPerSecond()
	if kbeta <= 0 {
		return farFuture
	}
	cross := now
	if num := (1-w.StallContinuity)*n.hot.totalBlocks - n.hot.missedBlocks; num > 0 {
		cross = now + sim.Time(num/(w.StallContinuity*kbeta)*1000)
	}
	if gate > cross {
		return gate
	}
	return cross
}

// controlWheel is the legacy single-shard due-driven control phase:
// drain this tick's due set from the wheel, visit the unique IDs in
// ascending order, and re-arm each survivor at its next control
// deadline. Bit-identical to the pre-shard engine.
func (w *World) controlWheel(now sim.Time) {
	sh := w.shards[0]
	sh.wheelBuf = sh.wheel.DrainTo(now, sh.wheelBuf[:0])
	buf := sh.wheelBuf
	// Merge the playback phase's Inequality (1) flag lists: a flagged
	// node must be visited this tick (the full sweep would evaluate it
	// now), whether or not a timer already had it due.
	for _, flagged := range w.advFlagShards {
		buf = append(buf, flagged...)
	}
	sh.wheelBuf = buf
	sortInt32(buf)
	due := sh.dueIDs[:0]
	prev := int32(-1)
	for _, id := range buf {
		if id != prev {
			due = append(due, id)
			prev = id
		}
	}
	sh.dueIDs = due
	w.draining = true
	for w.drainIdx = 0; w.drainIdx < len(sh.dueIDs); w.drainIdx++ {
		id := int(sh.dueIDs[w.drainIdx])
		w.drainPos = id
		n := w.nodes[id]
		n.wheelAt = 0
		if n.State == StateDeparted || n.IsServer() {
			continue
		}
		w.controlVisit(&w.seqCtx, n, now)
		if n.State != StateDeparted {
			w.wheelSchedule(sh, n, w.nextControlDue(&w.seqCtx, n, now))
		}
	}
	w.draining = false
}

// sortInt32 sorts ascending in place (insertion sort below a small
// threshold, allocation-free pdq via slices.Sort above it — the
// drained set is usually tiny relative to the population).
func sortInt32(a []int32) {
	if len(a) < 32 {
		for i := 1; i < len(a); i++ {
			v := a[i]
			j := i - 1
			for j >= 0 && a[j] > v {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = v
		}
		return
	}
	slices.Sort(a)
}
