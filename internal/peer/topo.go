package peer

// The fluid data plane advances H values along the per-sub-stream
// parent forests every tick, but the forests themselves change orders
// of magnitude more slowly — overlay adaptation is rate-limited by Ta,
// BM periods and churn, while the tick clock runs every second. The
// topology cache exploits that separation: each sub-stream carries an
// epoch counter bumped by every structural mutation (child add/remove,
// departures, crash teardown), and the advance phase consumes a
// flattened parent→child edge array in topological (pre-)order that is
// rebuilt lazily only when the epoch moved. At steady state the
// recursive forest walk of the seed engine becomes a branch-light
// linear sweep over a cached array, with zero closure allocations, and
// sub-streams parallelise over the persistent worker pool.
//
// Determinism contract: epochs are bumped and orders rebuilt only in
// sequential phases (control, discrete events); the parallel advance
// phase is read-only on the cache. Any topological order yields
// bit-identical H values because each edge's update depends only on
// the child's state and its parent's already-advanced position.

// edge is one parent→child link of a sub-stream forest. IDs are int32
// to halve the cache footprint of the hot sweep; the simulator would
// exhaust memory long before node IDs overflow 31 bits.
type edge struct {
	parent, child int32
}

// topoCache holds the per-sub-stream epoch counters and the cached
// flattened traversal orders. It is owned by the World; every Node
// keeps a pointer so the child-registry mutators can bump epochs
// without reaching through the World.
type topoCache struct {
	// epoch[j] counts structural mutations of sub-stream j's forest.
	// Starts at 1 so a zeroed builtEpoch is always stale.
	epoch []uint64
	// builtEpoch[j] is the epoch order[j] was flattened at.
	builtEpoch []uint64
	// order[j] is the parent→child edge list of sub-stream j in
	// pre-order from the forest roots: a valid topological order.
	order [][]edge
}

func newTopoCache(k int) *topoCache {
	t := &topoCache{
		epoch:      make([]uint64, k),
		builtEpoch: make([]uint64, k),
		order:      make([][]edge, k),
	}
	for j := range t.epoch {
		t.epoch[j] = 1
	}
	return t
}

// bump invalidates sub-stream j's cached order.
func (t *topoCache) bump(j int) { t.epoch[j]++ }

// bumpAll invalidates every sub-stream (node departure: the active
// set and root determination change for all forests at once).
func (t *topoCache) bumpAll() {
	for j := range t.epoch {
		t.epoch[j]++
	}
}

// ensureTopo rebuilds every stale flattened order. Called sequentially
// at the top of the advance phase.
func (w *World) ensureTopo() {
	for j := range w.topo.epoch {
		if w.topo.builtEpoch[j] != w.topo.epoch[j] {
			w.rebuildTopo(j)
		}
	}
}

// rebuildTopo re-flattens sub-stream j's forests into pre-order edge
// lists, reusing the previous array's storage. Roots are servers
// (pinned to the live edge each tick), parentless nodes, and nodes
// whose parent crashed without notification (their subtrees freeze
// until adaptation re-selects) — exactly the roots the seed engine's
// recursive walk started from.
func (w *World) rebuildTopo(j int) {
	order := w.topo.order[j][:0]
	for _, id := range w.tickIDs {
		n := w.nodes[id]
		root := n.IsServer()
		if !root {
			p := n.Subs[j].Parent
			root = p == NoParent || w.nodes[p].State == StateDeparted
		}
		if root {
			order = appendSubtree(order, w.nodes, j, id)
		}
	}
	w.topo.order[j] = order
	w.topo.builtEpoch[j] = w.topo.epoch[j]
}

// appendSubtree emits id's sub-stream-j subtree edges in pre-order.
// Active nodes' child registries are exact (only departed nodes keep
// dangling lists, and those are never roots nor reachable), so every
// attached node is visited exactly once.
func appendSubtree(order []edge, nodes []*Node, j, id int) []edge {
	for _, c := range nodes[id].children[j] {
		order = append(order, edge{int32(id), int32(c)})
		order = appendSubtree(order, nodes, j, c)
	}
	return order
}
