package peer

import "sync/atomic"

// The fluid data plane advances H values along the per-sub-stream
// parent forests every tick, but the forests themselves change orders
// of magnitude more slowly — overlay adaptation is rate-limited by Ta,
// BM periods and churn, while the tick clock runs every second. The
// topology cache exploits that separation: each sub-stream carries an
// epoch counter bumped by every structural mutation (child add/remove,
// departures, crash teardown), and the advance phase consumes a
// flattened parent→child edge array in topological (pre-)order that is
// rebuilt lazily only when the epoch moved. At steady state the
// recursive forest walk of the seed engine becomes a branch-light
// linear sweep over a cached array, with zero closure allocations, and
// sub-streams parallelise over the persistent worker pool.
//
// Determinism contract: epochs are bumped and orders rebuilt only in
// sequential phases (control, discrete events); the parallel advance
// phase is read-only on the cache. Any topological order yields
// bit-identical H values because each edge's update depends only on
// the child's state and its parent's already-advanced position.

// edge is one parent→child link of a sub-stream forest. cs points at
// the child's sub-stream-j subscription and ph at the parent's H —
// both resolved once at rebuild time, so the advance sweep loads its
// hot floats directly instead of chasing node pointer → Subs slice
// header → element twice per edge per tick. The pointers stay valid
// between rebuilds because subscription slots are arena-carved and
// never move; any structural change bumps the epoch and re-resolves.
// parent/child keep the IDs (int32 — the simulator would exhaust
// memory long before they overflow 31 bits) for the topology oracle
// tests and debugging.
type edge struct {
	cs     *Subscription
	ph     *float64
	parent int32
	child  int32
}

// topoCache holds the per-sub-stream epoch counters and the cached
// flattened traversal orders. It is owned by the World; every Node
// keeps a pointer so the child-registry mutators can bump epochs
// without reaching through the World.
type topoCache struct {
	// epoch[j] counts structural mutations of sub-stream j's forest.
	// Starts at 1 so a zeroed builtEpoch is always stale.
	epoch []uint64
	// builtEpoch[j] is the epoch order[j] was flattened at.
	builtEpoch []uint64
	// order[j] is the parent→child edge list of sub-stream j in
	// pre-order from the forest roots: a valid topological order.
	order [][]edge
}

func newTopoCache(k int) *topoCache {
	t := &topoCache{
		epoch:      make([]uint64, k),
		builtEpoch: make([]uint64, k),
		order:      make([][]edge, k),
	}
	for j := range t.epoch {
		t.epoch[j] = 1
	}
	return t
}

// bump invalidates sub-stream j's cached order. Atomic: the parallel
// target drain pass lets distinct shards tear down children of
// distinct corpses concurrently, and two corpses can share a
// sub-stream index. The counter only needs to move, not to be read
// coherently mid-pass — ensureTopo reads it after the barrier.
func (t *topoCache) bump(j int) { atomic.AddUint64(&t.epoch[j], 1) }

// bumpAll invalidates every sub-stream (node departure: the active
// set and root determination change for all forests at once).
func (t *topoCache) bumpAll() {
	for j := range t.epoch {
		atomic.AddUint64(&t.epoch[j], 1)
	}
}

// ensureTopo rebuilds every stale flattened order. Called sequentially
// at the top of the advance phase.
func (w *World) ensureTopo() {
	for j := range w.topo.epoch {
		if w.topo.builtEpoch[j] != w.topo.epoch[j] {
			w.rebuildTopo(j)
		}
	}
}

// rebuildTopo re-flattens sub-stream j's forests into pre-order edge
// lists, reusing the previous array's storage. Roots are servers
// (pinned to the live edge each tick), parentless nodes, and nodes
// whose parent crashed without notification (their subtrees freeze
// until adaptation re-selects) — exactly the roots the seed engine's
// recursive walk started from.
func (w *World) rebuildTopo(j int) {
	order := w.topo.order[j][:0]
	for _, id := range w.tickIDs {
		n := w.nodes[id]
		root := n.IsServer()
		if !root {
			p := n.Subs[j].Parent
			root = p == NoParent || w.nodes[p].State == StateDeparted
		}
		if root {
			order = appendSubtree(order, w.nodes, j, id)
		}
	}
	w.topo.order[j] = order
	w.topo.builtEpoch[j] = w.topo.epoch[j]
}

// appendSubtree emits id's sub-stream-j subtree edges in pre-order.
// Active nodes' child registries are exact (only departed nodes keep
// dangling lists, and those are never roots nor reachable), so every
// attached node is visited exactly once.
func appendSubtree(order []edge, nodes []*Node, j, id int) []edge {
	children := nodes[id].children[j]
	if len(children) == 0 {
		return order
	}
	ph := &nodes[id].Subs[j].H
	for _, c := range children {
		order = append(order, edge{
			cs: &nodes[c].Subs[j], ph: ph, parent: int32(id), child: int32(c),
		})
		order = appendSubtree(order, nodes, j, c)
	}
	return order
}
