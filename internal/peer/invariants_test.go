package peer

import (
	"testing"

	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// checkInvariants asserts the World's structural invariants:
//
//  1. parent/children symmetry: child.Subs[j].Parent == p iff child is
//     in p.children[j];
//  2. no cycles in any sub-stream forest;
//  3. H never exceeds the live edge, never negative;
//  4. departed nodes hold no links;
//  5. partnerships are symmetric with opposite directions;
//  6. active list matches node states.
func checkInvariants(t *testing.T, w *World) {
	t.Helper()
	now := w.Engine.Now()
	live := w.liveEdge(now)
	activeSet := make(map[int]bool)
	for _, id := range w.activeView() {
		activeSet[id] = true
	}
	for _, n := range w.nodes {
		if n == nil {
			continue
		}
		if (n.State != StateDeparted) != activeSet[n.ID] {
			t.Fatalf("t=%v node %d state %v vs active-list membership %v",
				now, n.ID, n.State, activeSet[n.ID])
		}
		if n.State == StateDeparted {
			// A departed node's own maps are always cleared; with
			// crash departures its *children list* may stay populated
			// until the orphans detect the loss, but the entries must
			// then point back at it.
			if len(n.Partners) != 0 || len(n.partnerIDs) != 0 {
				t.Fatalf("departed node %d still has partners", n.ID)
			}
			for j := range n.Subs {
				if n.Subs[j].Parent != NoParent {
					t.Fatalf("departed node %d still has a parent", n.ID)
				}
				for _, c := range n.children[j] {
					if w.nodes[c].Subs[j].Parent != n.ID {
						t.Fatalf("corpse %d children list stale: %d points elsewhere", n.ID, c)
					}
				}
			}
			continue
		}
		for j := range n.Subs {
			h := n.Subs[j].H
			if h < 0 || h > live+1e-6 {
				t.Fatalf("t=%v node %d sub %d H=%v outside [0, live=%v]", now, n.ID, j, h, live)
			}
			// Symmetry child → parent. Pointing at a departed parent is
			// legal transiently (crash not yet detected), but the
			// corpse must still list the child so the edge is tracked.
			if p := n.Subs[j].Parent; p != NoParent {
				parent := w.nodes[p]
				found := false
				for _, c := range parent.children[j] {
					if c == n.ID {
						found = true
					}
				}
				if !found {
					t.Fatalf("node %d sub %d parent %d does not list it as child", n.ID, j, p)
				}
			}
			// Symmetry parent → children.
			for _, c := range n.children[j] {
				child := w.nodes[c]
				if child.Subs[j].Parent != n.ID {
					t.Fatalf("node %d lists child %d on sub %d but child's parent is %d",
						n.ID, c, j, child.Subs[j].Parent)
				}
			}
			// Acyclicity: walk to a root.
			seen := map[int]bool{n.ID: true}
			cur := n.Subs[j].Parent
			for cur != NoParent {
				if seen[cur] {
					t.Fatalf("cycle on sub-stream %d through node %d", j, cur)
				}
				seen[cur] = true
				cur = w.nodes[cur].Subs[j].Parent
			}
		}
		// partnerIDs mirrors the Partners keys, sorted ascending.
		if len(n.partnerIDs) != len(n.Partners) {
			t.Fatalf("node %d partnerIDs len %d vs Partners len %d",
				n.ID, len(n.partnerIDs), len(n.Partners))
		}
		for i, pid := range n.partnerIDs {
			if _, ok := n.Partners[pid]; !ok {
				t.Fatalf("node %d partnerIDs has %d not in Partners", n.ID, pid)
			}
			if i > 0 && n.partnerIDs[i-1] >= pid {
				t.Fatalf("node %d partnerIDs not strictly sorted: %v", n.ID, n.partnerIDs)
			}
		}
		// Partnership symmetry (dangling links to crashed partners are
		// legal until the next BM refresh tears them down).
		for pid, p := range n.Partners {
			other := w.nodes[pid]
			if other.State == StateDeparted {
				continue
			}
			back, ok := other.Partners[n.ID]
			if !ok {
				t.Fatalf("partnership %d→%d not symmetric", n.ID, pid)
			}
			if back.Outgoing == p.Outgoing {
				t.Fatalf("partnership %d↔%d has same direction on both ends", n.ID, pid)
			}
		}
	}
}

func TestWorldInvariantsUnderChurn(t *testing.T) {
	w, engine, _ := testWorld(t, 77)
	for i := 0; i < 3; i++ {
		w.AddServer(10 * testRate)
	}
	engine.Run(30 * sim.Second)
	prof := netmodel.DefaultCapacityProfile(testRate)
	rng := w.rng.SplitLabeled("churn-test")
	// Aggressive churn: short watches, retries, stall-abandons.
	for i := 0; i < 60; i++ {
		i := i
		at := 30*sim.Second + sim.Time(i%20)*2*sim.Second
		engine.Schedule(at, func() {
			class := netmodel.UserClass(rng.Intn(4))
			watch := sim.Time(10+rng.Intn(120)) * sim.Second
			w.Join(2000+i, prof.Draw(class, rng), watch, 2, 0)
		})
	}
	engine.OnTick(func(_, _ sim.Time) { checkInvariants(t, w) })
	engine.Run(4 * sim.Minute)
	// The run must have exercised real churn.
	if w.JoinedSessions < 60 {
		t.Fatalf("only %d sessions", w.JoinedSessions)
	}
	departed := 0
	for _, n := range w.Nodes() {
		if n.State == StateDeparted {
			departed++
		}
	}
	if departed < 30 {
		t.Fatalf("churn too weak: %d departed", departed)
	}
}

func TestWorldInvariantsWithEqualSplitAndLoss(t *testing.T) {
	p := DefaultParams()
	p.ReportPeriod = 30 * sim.Second
	p.Allocator = "equalsplit"
	p.ControlLossProb = 0.2
	engine := sim.NewEngine(sim.Second)
	w, err := NewWorld(p, engine, logsys.NopSink{}, netmodel.ConstantLatency{D: 50 * sim.Millisecond},
		gossip.RandomReplace{}, 78)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		w.AddServer(10 * testRate)
	}
	engine.Run(30 * sim.Second)
	prof := netmodel.DefaultCapacityProfile(testRate)
	rng := w.rng.SplitLabeled("es-test")
	for i := 0; i < 30; i++ {
		i := i
		engine.Schedule(30*sim.Second+sim.Time(i)*sim.Second, func() {
			w.Join(3000+i, prof.Draw(netmodel.UserClass(i%4), rng), 3*sim.Minute, 1, 0)
		})
	}
	engine.OnTick(func(_, _ sim.Time) { checkInvariants(t, w) })
	engine.Run(3 * sim.Minute)
	ready := 0
	for _, n := range w.Nodes() {
		if n.State == StateReady {
			ready++
		}
	}
	if ready == 0 {
		t.Fatal("no peer ready under equal-split allocator")
	}
}
