package peer

import (
	"runtime"
	"testing"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// TestWorldDeterministicAcrossGOMAXPROCS runs the same seeded scenario
// single-threaded and with real worker fan-out; the log streams must
// be bit-identical — the property the deterministic parallel design
// guarantees.
func TestWorldDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) []string {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		w, engine, sink := testWorld(t, 555)
		w.AddServer(15 * testRate)
		w.AddServer(15 * testRate)
		engine.Run(30 * sim.Second)
		prof := netmodel.DefaultCapacityProfile(testRate)
		rng := w.rng.SplitLabeled("gomaxprocs")
		for i := 0; i < 120; i++ {
			i := i
			at := 30*sim.Second + sim.Time(i%30)*sim.Second
			engine.Schedule(at, func() {
				w.Join(700+i, prof.Draw(netmodel.UserClass(i%4), rng), sim.Time(40+i)*sim.Second, 1, 0)
			})
		}
		engine.Run(3 * sim.Minute)
		var out []string
		for _, rec := range sink.Records() {
			out = append(out, rec.LogString())
		}
		return out
	}
	serial := run(1)
	parallel := run(8)
	if len(serial) != len(parallel) {
		t.Fatalf("record counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("record %d differs between GOMAXPROCS=1 and 8:\n%s\n%s",
				i, serial[i], parallel[i])
		}
	}
	if len(serial) < 100 {
		t.Fatalf("scenario too small to be meaningful: %d records", len(serial))
	}
}
