// Package netchaos is the network chaos harness for the live socket
// stack: it builds a real TCP overlay (bootstrap tracker, source, N
// peers with the §IV-B adaptation monitor and the self-healing
// membership manager enabled), then injects the faults the paper's §V
// measurements say dominate a deployed mesh-pull system —
//
//   - abrupt peer death (Abort: conns die with no Leave frame),
//   - hung connections (a "zombie" handshakes and then freezes with the
//     TCP connection open: the stale-BM case no read error ever
//     surfaces),
//   - a tracker outage window (the binary tracker answers "unavailable"
//     until lifted, exercising the capped-exponential re-bootstrap
//     backoff),
//
// and finally asserts recovery: every surviving peer back at or above
// the target partner count with positive per-lane progress inside the
// recovery window. The same harness backs the netchaos test suite and
// `coolnet -scenario chaos`.
package netchaos

import (
	"fmt"
	"net"
	"time"

	"coolstream/internal/buffer"
	"coolstream/internal/faults"
	"coolstream/internal/netboot"
	"coolstream/internal/netpeer"
	"coolstream/internal/protocol"
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

// Config sizes one chaos run. The zero value selects CI-friendly
// defaults (see applyDefaults).
type Config struct {
	// Peers is the number of non-source peers.
	Peers int
	// TargetPartners is each peer's target M.
	TargetPartners int
	// Kills is how many random peers die abruptly mid-run.
	Kills int
	// Zombies is how many hung connections are injected into random
	// live peers.
	Zombies int
	// BootOutage is how long the tracker answers "unavailable" mid-run
	// (0 = no outage).
	BootOutage time.Duration
	// Warmup is the streaming time before any fault fires.
	Warmup time.Duration
	// RecoveryWindow is the healing time after the last fault; per-lane
	// progress is measured over its second half.
	RecoveryWindow time.Duration
	// Seed drives victim selection and all per-node seeds.
	Seed uint64
	// Layout overrides the stream geometry (default 256 kbps, K=4,
	// 800-byte blocks: 40 blocks/s — fast enough to measure, light
	// enough for -race CI).
	Layout buffer.Layout
	// Logf, when set, receives run narration (coolnet wires stdout).
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() {
	if c.Peers <= 0 {
		c.Peers = 8
	}
	if c.TargetPartners <= 0 {
		c.TargetPartners = 3
	}
	if c.Kills < 0 {
		c.Kills = 0
	}
	if c.Zombies < 0 {
		c.Zombies = 0
	}
	if c.Warmup <= 0 {
		c.Warmup = 2 * time.Second
	}
	if c.RecoveryWindow <= 0 {
		c.RecoveryWindow = 4 * time.Second
	}
	if c.Layout.K == 0 {
		c.Layout = buffer.Layout{K: 4, RateBps: 256e3, BlockBytes: 800}
	}
}

// PeerStatus is one surviving peer's end-of-run state.
type PeerStatus struct {
	ID           int32
	Partners     int
	Continuity   float64
	LaneProgress []int64 // per-lane block delta over the measured window
	Recovery     netpeer.RecoveryStats
}

// Recovered reports whether this peer healed: partner set at or above
// target and every lane advancing.
func (s PeerStatus) Recovered(target int) bool {
	if s.Partners < target {
		return false
	}
	for _, d := range s.LaneProgress {
		if d <= 0 {
			return false
		}
	}
	return true
}

// Report is the outcome of one chaos run.
type Report struct {
	Survivors []PeerStatus
	Killed    []int32
	// Recovered is the acceptance bit: every survivor back at ≥ target
	// partners with positive progress on every lane.
	Recovered bool
	// Aggregate recovery counters across survivors.
	StaleTeardowns   int
	PartnersReplaced int
	Rebootstraps     int
	GossipSent       int
	PusherAborts     int
}

// Run executes one chaos scenario and reports recovery.
func Run(cfg Config) (Report, error) {
	cfg.applyDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := xrand.New(cfg.Seed ^ 0xc001c0de)

	// --- Bootstrap tracker: the production binary protocol on a real
	// socket. SetDown makes it answer retryable "unavailable" for the
	// outage window.
	tracker := netboot.NewTCPServer(
		netboot.NewRegistry(netboot.RegistryConfig{Seed: cfg.Seed}),
		netboot.TCPServerConfig{})
	trackerAddr, err := tracker.Listen("127.0.0.1:0")
	if err != nil {
		return Report{}, err
	}
	defer tracker.Close()
	logf("bootstrap tracker (binary) at %s", trackerAddr)

	var clients []*netboot.TCPClient
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	bootClient := func(id int32) *netboot.TCPClient {
		c := netboot.NewTCPClient(trackerAddr)
		c.SetTimeout(2 * time.Second)
		c.SetBackoff(faults.Backoff{
			Base: 50 * sim.Millisecond, Cap: 400 * sim.Millisecond, JitterFrac: 0.5,
		}, 4, uint64(id))
		clients = append(clients, c)
		return c
	}

	nodeCfg := func(id int32, uploadBps float64) netpeer.Config {
		return netpeer.Config{
			ID: id, Layout: cfg.Layout, UploadBps: uploadBps,
			BMPeriod: 100 * time.Millisecond,
			BufferBlocks: 600, ReadyBlocks: 5,
			WriteTimeout: 2 * time.Second,
		}
	}

	// --- Source. ---
	src, err := netpeer.New(nodeCfg(0, 0))
	if err != nil {
		return Report{}, err
	}
	defer src.Close()
	srcAddr, err := src.Listen()
	if err != nil {
		return Report{}, err
	}
	if err := src.StartSource(); err != nil {
		return Report{}, err
	}
	if err := bootClient(0).Register(0, srcAddr); err != nil {
		return Report{}, fmt.Errorf("netchaos: register source: %w", err)
	}
	logf("source 0 streaming %.0f blocks/s at %s", cfg.Layout.BlocksPerSecond(), srcAddr)
	time.Sleep(300 * time.Millisecond) // let the live edge advance

	// --- Peers. ---
	peers := make(map[int32]*netpeer.Node, cfg.Peers)
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()
	for i := 1; i <= cfg.Peers; i++ {
		id := int32(i)
		n, err := netpeer.New(nodeCfg(id, 4*cfg.Layout.RateBps))
		if err != nil {
			return Report{}, err
		}
		addr, err := n.Listen()
		if err != nil {
			n.Close()
			return Report{}, err
		}
		bc := bootClient(id)
		if err := bc.Register(id, addr); err != nil {
			n.Close()
			return Report{}, fmt.Errorf("netchaos: register peer %d: %w", id, err)
		}
		if err := n.EnableMaintenance(netpeer.ManagerConfig{
			TargetPartners: cfg.TargetPartners,
			Stale:          1200 * time.Millisecond,
			Interval:       150 * time.Millisecond,
			DialCooldown:   2 * time.Second,
			Seed:           cfg.Seed,
		}, bc); err != nil {
			n.Close()
			return Report{}, err
		}
		// Initial discovery: dial tracker candidates toward the target.
		cands, err := bc.Candidates(cfg.TargetPartners, id)
		if err != nil {
			n.Close()
			return Report{}, err
		}
		for _, e := range cands {
			n.Connect(e.Addr) // failures heal via maintenance
		}
		start := waitForStart(n, 3, 4*time.Second)
		if err := n.InitBuffers(start); err != nil {
			n.Close()
			return Report{}, err
		}
		subscribeLanes(n, cfg.Layout.K, start)
		n.EnableAdaptation(netpeer.AdaptConfig{
			Ts: 10, Tp: 20,
			Ta:    400 * time.Millisecond,
			Check: 150 * time.Millisecond,
			Seed:  cfg.Seed + uint64(id),
		})
		peers[id] = n
		time.Sleep(50 * time.Millisecond) // stagger joins slightly
	}
	logf("%d peers joined; warming up %v", cfg.Peers, cfg.Warmup)
	time.Sleep(cfg.Warmup)

	// --- Fault injection. ---
	// Zombies first: hung conns that never send a frame after the
	// handshake — the victims must reap them via the staleness deadline.
	var zombieConns []net.Conn
	defer func() {
		for _, c := range zombieConns {
			c.Close()
		}
	}()
	ids := make([]int32, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sortIDs(ids)
	for z := 0; z < cfg.Zombies && len(ids) > 0; z++ {
		victim := peers[ids[rng.Intn(len(ids))]]
		zc, err := dialZombie(victim.Addr(), int32(1000+z))
		if err != nil {
			logf("zombie %d dial failed: %v", z, err)
			continue
		}
		zombieConns = append(zombieConns, zc)
		logf("zombie conn %d hung into a live peer", 1000+z)
	}

	// Abrupt kills: no Leave frames, no tracker deregistration — the
	// tracker keeps advertising the dead addresses.
	var killed []int32
	for k := 0; k < cfg.Kills && len(ids) > 1; k++ {
		pick := ids[rng.Intn(len(ids))]
		ids = removeID(ids, pick)
		peers[pick].Abort()
		delete(peers, pick)
		killed = append(killed, pick)
		logf("killed peer %d abruptly", pick)
	}

	// Tracker outage while the survivors are re-partnering.
	if cfg.BootOutage > 0 {
		tracker.SetDown(true)
		logf("tracker down for %v", cfg.BootOutage)
		time.Sleep(cfg.BootOutage)
		tracker.SetDown(false)
		logf("tracker restored")
	}

	// --- Recovery window: heal, then measure progress over the second
	// half. ---
	time.Sleep(cfg.RecoveryWindow / 2)
	before := snapshotLanes(peers, cfg.Layout.K)
	time.Sleep(cfg.RecoveryWindow / 2)

	rep := Report{Killed: killed, Recovered: true}
	for _, id := range ids {
		n := peers[id]
		st := PeerStatus{
			ID:           id,
			Partners:     len(n.Partners()),
			Continuity:   n.Continuity(),
			LaneProgress: make([]int64, cfg.Layout.K),
			Recovery:     n.Recovery(),
		}
		for j := 0; j < cfg.Layout.K; j++ {
			st.LaneProgress[j] = n.Latest(j) - before[id][j]
		}
		if !st.Recovered(cfg.TargetPartners) {
			rep.Recovered = false
		}
		rep.StaleTeardowns += st.Recovery.StaleTeardowns
		rep.PartnersReplaced += st.Recovery.PartnersReplaced
		rep.Rebootstraps += st.Recovery.Rebootstraps
		rep.GossipSent += st.Recovery.GossipSent
		rep.PusherAborts += st.Recovery.PusherAborts
		rep.Survivors = append(rep.Survivors, st)
		logf("peer %d: partners=%d continuity=%.3f laneΔ=%v replaced=%d stale=%d reboot=%d",
			id, st.Partners, st.Continuity, st.LaneProgress,
			st.Recovery.PartnersReplaced, st.Recovery.StaleTeardowns, st.Recovery.Rebootstraps)
	}
	return rep, nil
}

// dialZombie completes a partnership handshake and then goes silent,
// keeping the connection open — the hung-partner fault.
func dialZombie(addr string, id int32) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	if err := writeHandshake(c, id); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func writeHandshake(c net.Conn, id int32) error {
	// A zombie advertises no listen address: it must never enter a
	// victim's mCache as a dialable candidate.
	if err := protocol.WriteFrame(c, protocol.Message{
		Type: protocol.TypePartnerRequest, From: id, To: -1,
	}); err != nil {
		return err
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	defer c.SetReadDeadline(time.Time{})
	resp, err := protocol.ReadFrame(c)
	if err != nil {
		return err
	}
	if resp.Type != protocol.TypePartnerAccept {
		return fmt.Errorf("netchaos: zombie handshake rejected: %v", resp.Type)
	}
	return nil
}

// waitForStart blocks until some partner advertises progress past
// shift, then returns the shift-adjusted join position (0 on timeout).
func waitForStart(n *netpeer.Node, shift int64, timeout time.Duration) int64 {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var start int64 = -1
		for _, pid := range n.Partners() {
			if bm, ok := n.PartnerBM(pid); ok && bm.MaxLatest() > shift {
				if s := bm.MaxLatest() - shift; s > start {
					start = s
				}
			}
		}
		if start >= 0 {
			return start
		}
		time.Sleep(50 * time.Millisecond)
	}
	return 0
}

// subscribeLanes subscribes every lane, each to the partner advertising
// the most progress on it (falling back to any partner); the adaptation
// monitor rebalances from there.
func subscribeLanes(n *netpeer.Node, k int, start int64) {
	partners := n.Partners()
	if len(partners) == 0 {
		return
	}
	for j := 0; j < k; j++ {
		best := partners[j%len(partners)]
		var bestLatest int64 = -1
		for _, pid := range partners {
			if bm, ok := n.PartnerBM(pid); ok && bm.K() > j && bm.Latest[j] > bestLatest {
				best, bestLatest = pid, bm.Latest[j]
			}
		}
		n.SubscribeTracked(best, j, start)
	}
}

func snapshotLanes(peers map[int32]*netpeer.Node, k int) map[int32][]int64 {
	out := make(map[int32][]int64, len(peers))
	for id, n := range peers {
		lanes := make([]int64, k)
		for j := 0; j < k; j++ {
			lanes[j] = n.Latest(j)
		}
		out[id] = lanes
	}
	return out
}

func sortIDs(ids []int32) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func removeID(ids []int32, id int32) []int32 {
	out := ids[:0]
	for _, v := range ids {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}
