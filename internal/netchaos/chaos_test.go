package netchaos

import (
	"testing"
	"time"
)

// TestChaosKillRecovery is the partner-death scenario alone: one peer
// dies abruptly and the survivors must re-partner and keep every lane
// moving.
func TestChaosKillRecovery(t *testing.T) {
	rep, err := Run(Config{
		Peers:          5,
		TargetPartners: 2,
		Kills:          1,
		Zombies:        0,
		Warmup:         1500 * time.Millisecond,
		RecoveryWindow: 3 * time.Second,
		Seed:           7,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if len(rep.Killed) != 1 {
		t.Fatalf("expected 1 kill, got %v", rep.Killed)
	}
	if len(rep.Survivors) != 4 {
		t.Fatalf("expected 4 survivors, got %d", len(rep.Survivors))
	}
	if !rep.Recovered {
		t.Fatalf("survivors did not recover: %+v", rep.Survivors)
	}
}

// TestChaosFullScenario is the acceptance run: abrupt kills, hung
// connections, and a tracker outage all land mid-stream; every survivor
// must return to the target partner count with positive per-lane
// progress, and the recovery counters must show the healing actually
// exercised each mechanism.
func TestChaosFullScenario(t *testing.T) {
	rep, err := Run(Config{
		Peers:          8,
		TargetPartners: 3,
		Kills:          2,
		Zombies:        2,
		BootOutage:     1200 * time.Millisecond,
		Warmup:         2 * time.Second,
		RecoveryWindow: 4 * time.Second,
		Seed:           42,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if len(rep.Killed) != 2 {
		t.Fatalf("expected 2 kills, got %v", rep.Killed)
	}
	if !rep.Recovered {
		t.Fatalf("overlay did not recover: %+v", rep.Survivors)
	}
	// The healing must be observable, not incidental: dead and hung
	// partners were torn down by deadline, and losses were made up by
	// replacement dials.
	if rep.StaleTeardowns == 0 {
		t.Error("no stale teardowns recorded despite kills and zombies")
	}
	if rep.PartnersReplaced == 0 {
		t.Error("no partner replacements recorded despite kills")
	}
	for _, s := range rep.Survivors {
		if s.Continuity < 0.5 {
			t.Errorf("peer %d continuity %.3f below floor", s.ID, s.Continuity)
		}
	}
}
