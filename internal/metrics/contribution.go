package metrics

import (
	"coolstream/internal/netmodel"
	"coolstream/internal/stats"
)

// ContributionReport summarises the upload-byte skew of Fig. 3b.
type ContributionReport struct {
	// ShareByClass[c] is the fraction of all uploaded bytes contributed
	// by sessions inferred as class c.
	ShareByClass [netmodel.NumClasses]float64
	// ReachableShare is the direct+UPnP share — the paper's headline
	// "~30% of peers contribute >80%".
	ReachableShare float64
	// ReachablePopulation is the population fraction inferred
	// direct+UPnP.
	ReachablePopulation float64
	// Top30Share is the byte share of the top 30% of uploaders
	// regardless of class.
	Top30Share float64
	// Gini is the upload-byte Gini coefficient.
	Gini float64
	// Lorenz is the full Lorenz curve of per-session upload bytes.
	Lorenz []stats.LorenzPoint
}

// Contribution computes the Fig. 3b analysis over all sessions.
func (a *Analysis) Contribution() ContributionReport {
	var rep ContributionReport
	var bytesByClass [netmodel.NumClasses]float64
	var popByClass [netmodel.NumClasses]int
	var uploads []float64
	total := 0.0
	for _, s := range a.Sessions {
		c := Classify(s)
		b := float64(s.UploadBytes)
		bytesByClass[c] += b
		popByClass[c]++
		uploads = append(uploads, b)
		total += b
	}
	if len(uploads) == 0 {
		return rep
	}
	pop := float64(len(uploads))
	for c := 0; c < netmodel.NumClasses; c++ {
		if total > 0 {
			rep.ShareByClass[c] = bytesByClass[c] / total
		}
	}
	rep.ReachableShare = rep.ShareByClass[netmodel.Direct] + rep.ShareByClass[netmodel.UPnP]
	rep.ReachablePopulation = float64(popByClass[netmodel.Direct]+popByClass[netmodel.UPnP]) / pop
	rep.Top30Share = stats.TopShare(uploads, 0.3)
	rep.Gini = stats.Gini(uploads)
	rep.Lorenz = stats.Lorenz(uploads)
	return rep
}
