package metrics

import (
	"coolstream/internal/netmodel"
	"coolstream/internal/stats"
)

// PeerwiseReport addresses the paper's first open issue (§VI): "the
// data set does not allow us to derive the peer-wise performance".
// With the reproduced logging system we can: per-session continuity
// distributions, the bottleneck population (sessions whose own mean
// continuity falls below a threshold), and its composition by class.
type PeerwiseReport struct {
	// SessionCI is the per-session mean continuity sample (sessions
	// with at least one QoS report).
	SessionCI stats.Sample
	// BottleneckFrac is the fraction of reporting sessions below the
	// threshold.
	BottleneckFrac float64
	// BottleneckByClass decomposes the bottleneck population by
	// inferred class (fractions of the bottleneck set, summing to 1).
	BottleneckByClass [netmodel.NumClasses]float64
	// Threshold echoes the cutoff used.
	Threshold float64
}

// Peerwise computes the per-peer performance report at the given
// continuity threshold (e.g. 0.95).
func (a *Analysis) Peerwise(threshold float64) PeerwiseReport {
	rep := PeerwiseReport{Threshold: threshold}
	var bottleneckCounts [netmodel.NumClasses]int
	bottleneckTotal := 0
	for _, s := range a.Sessions {
		if len(s.QoS) == 0 {
			continue
		}
		sum := 0.0
		for _, q := range s.QoS {
			sum += q.CI
		}
		ci := sum / float64(len(s.QoS))
		rep.SessionCI.Add(ci)
		if ci < threshold {
			bottleneckCounts[Classify(s)]++
			bottleneckTotal++
		}
	}
	if n := rep.SessionCI.N(); n > 0 {
		rep.BottleneckFrac = float64(bottleneckTotal) / float64(n)
	}
	if bottleneckTotal > 0 {
		for c := range bottleneckCounts {
			rep.BottleneckByClass[c] = float64(bottleneckCounts[c]) / float64(bottleneckTotal)
		}
	}
	return rep
}

// StabilityReport quantifies the paper's third scalability factor
// (§V-E): overlay stability, measured as partnership changes per
// report interval.
type StabilityReport struct {
	// ChangesPerReport is the distribution of per-report partnership
	// change counts across sessions.
	ChangesPerReport stats.Sample
	// MeanByClass is the mean changes-per-report per inferred class.
	MeanByClass [netmodel.NumClasses]float64
}

// Stability computes the overlay-stability report.
func (a *Analysis) Stability() StabilityReport {
	var rep StabilityReport
	var sums [netmodel.NumClasses]float64
	var ns [netmodel.NumClasses]int
	for _, s := range a.Sessions {
		if s.PartnerReports == 0 {
			continue
		}
		rate := float64(s.PartnerChangesSum) / float64(s.PartnerReports)
		rep.ChangesPerReport.Add(rate)
		c := Classify(s)
		sums[c] += rate
		ns[c]++
	}
	for c := range sums {
		if ns[c] > 0 {
			rep.MeanByClass[c] = sums[c] / float64(ns[c])
		}
	}
	return rep
}
