// Package metrics reconstructs the paper's measurements from the log
// records: session-level performance (Figs. 5-7, 10), QoS continuity
// (Figs. 8-9), user classification and upload contribution (Fig. 3),
// and overlay structure series (Fig. 4). It deliberately consumes only
// what the log server saw, reproducing the paper's methodology
// together with its measurement artifacts.
package metrics

import (
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// None marks an absent timestamp.
const None = sim.Time(-1)

// Session is one reconstructed join→leave lifecycle.
type Session struct {
	SessionID int
	UserID    int
	PeerID    int

	// TrueClass is ground truth when the trace carries it (simulation
	// runs do); the classifier never reads it.
	TrueClass netmodel.UserClass
	HasTruth  bool
	// PrivateAddr is the address visibility the peer reported.
	PrivateAddr bool

	JoinAt     sim.Time
	StartSubAt sim.Time
	ReadyAt    sim.Time
	LeaveAt    sim.Time
	Reason     string

	// MaxIn/MaxOut are the largest partner counts seen in any partner
	// report of the session; the classifier keys on MaxIn > 0.
	MaxIn  int
	MaxOut int

	// ParentReachableSum/ParentTotalSum aggregate partner reports for
	// topology statistics.
	ParentReachableSum int
	ParentTotalSum     int
	NATLinkSum         int
	// PartnerChangesSum totals partnership establishments/losses over
	// the session, and PartnerReports counts partner reports, so
	// changes-per-interval is recoverable.
	PartnerChangesSum int
	PartnerReports    int

	UploadBytes   int64
	DownloadBytes int64

	// QoS carries the periodic continuity reports.
	QoS []QoSPoint
}

// QoSPoint is one periodic continuity report.
type QoSPoint struct {
	At sim.Time
	CI float64
}

// Ready reports whether the session reached media-ready.
func (s *Session) Ready() bool { return s.ReadyAt != None }

// Duration returns leave-join, or None when either end is missing.
func (s *Session) Duration() sim.Time {
	if s.JoinAt == None || s.LeaveAt == None {
		return None
	}
	return s.LeaveAt - s.JoinAt
}

// StartSubDelay returns the start-subscription time of Fig. 6.
func (s *Session) StartSubDelay() sim.Time {
	if s.JoinAt == None || s.StartSubAt == None {
		return None
	}
	return s.StartSubAt - s.JoinAt
}

// ReadyDelay returns the media-player-ready time of Fig. 6.
func (s *Session) ReadyDelay() sim.Time {
	if s.JoinAt == None || s.ReadyAt == None {
		return None
	}
	return s.ReadyAt - s.JoinAt
}

// BufferingDelay returns ready minus start-subscription (the Fig. 6
// difference curve: the wait for the buffer to fill).
func (s *Session) BufferingDelay() sim.Time {
	if s.StartSubAt == None || s.ReadyAt == None {
		return None
	}
	return s.ReadyAt - s.StartSubAt
}

// Analysis indexes a full log.
type Analysis struct {
	Sessions []*Session
	// ByUser groups sessions per user, ordered by join time; retry
	// analysis walks these chains.
	ByUser map[int][]*Session
}

// Analyze reconstructs sessions from log records (any order). It is
// the batch facade over the streaming Analyzer: large logs are
// sessionized in parallel across session-ID partitions, small ones
// inline — the result is identical either way.
func Analyze(records []logsys.Record) *Analysis {
	workers := 0 // GOMAXPROCS
	if len(records) < serialThreshold {
		workers = 1
	}
	a := NewAnalyzer(workers)
	if workers == 1 {
		// Single partition: ingest in place, no per-record copy.
		for i := range records {
			a.parts[0].ingest(&records[i])
		}
	} else {
		for _, rec := range records {
			a.Feed(rec)
		}
	}
	return a.Finish()
}

// SeriesPoint is one (time, value) sample of a time series.
type SeriesPoint struct {
	At    sim.Time
	Value float64
}

// Concurrency returns the number of in-system sessions sampled every
// bucket — Fig. 5's curve. Sessions without a leave record are treated
// as lasting to the horizon.
func (a *Analysis) Concurrency(bucket, horizon sim.Time) []SeriesPoint {
	if bucket <= 0 || horizon <= 0 {
		return nil
	}
	nBuckets := int(horizon/bucket) + 1
	delta := make([]int, nBuckets+1)
	for _, s := range a.Sessions {
		if s.JoinAt == None {
			continue
		}
		lo := int(s.JoinAt / bucket)
		end := s.LeaveAt
		if end == None {
			end = horizon
		}
		hi := int(end / bucket)
		if lo >= nBuckets {
			continue
		}
		if hi >= nBuckets {
			hi = nBuckets - 1
		}
		delta[lo]++
		delta[hi+1]--
	}
	out := make([]SeriesPoint, nBuckets)
	cur := 0
	for i := 0; i < nBuckets; i++ {
		cur += delta[i]
		out[i] = SeriesPoint{At: sim.Time(i) * bucket, Value: float64(cur)}
	}
	return out
}

// JoinRate returns arrivals per second in each bucket.
func (a *Analysis) JoinRate(bucket, horizon sim.Time) []SeriesPoint {
	if bucket <= 0 || horizon <= 0 {
		return nil
	}
	nBuckets := int(horizon/bucket) + 1
	counts := make([]int, nBuckets)
	for _, s := range a.Sessions {
		if s.JoinAt == None {
			continue
		}
		i := int(s.JoinAt / bucket)
		if i < nBuckets {
			counts[i]++
		}
	}
	out := make([]SeriesPoint, nBuckets)
	for i := range counts {
		out[i] = SeriesPoint{
			At:    sim.Time(i) * bucket,
			Value: float64(counts[i]) / bucket.Seconds(),
		}
	}
	return out
}

// Retries tallies, per user, how many failed sessions preceded the
// first successful one (all failures when no success) — Fig. 10b.
func (a *Analysis) Retries() map[int]int {
	out := make(map[int]int)
	for user, sessions := range a.ByUser {
		fails := 0
		for _, s := range sessions {
			if s.Ready() {
				break
			}
			fails++
		}
		out[user] = fails
	}
	return out
}

// RetryDistribution folds Retries into a histogram: index k holds the
// fraction of users with exactly k failed attempts, with the last
// bucket aggregating >= len-1.
func (a *Analysis) RetryDistribution(buckets int) []float64 {
	if buckets <= 0 {
		return nil
	}
	counts := make([]int, buckets)
	total := 0
	for _, k := range a.Retries() {
		if k >= buckets {
			k = buckets - 1
		}
		counts[k]++
		total++
	}
	out := make([]float64, buckets)
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}
