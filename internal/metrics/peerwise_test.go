package metrics

import (
	"math"
	"testing"

	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

func TestPeerwiseReport(t *testing.T) {
	var recs []logsys.Record
	// Healthy direct session: CI 1.0 twice.
	s1 := mkSession(1, 1, netmodel.Direct, 0, sim.Second, 5*sim.Second, sim.Hour)
	s1 = withPartner(s1, sim.Minute, 2)
	s1 = withQoS(s1, 5*sim.Minute, 1.0)
	s1 = withQoS(s1, 10*sim.Minute, 1.0)
	recs = append(recs, s1...)
	// Struggling NAT session: CI 0.6.
	s2 := mkSession(2, 2, netmodel.NAT, 0, sim.Second, 5*sim.Second, sim.Hour)
	s2 = withQoS(s2, 5*sim.Minute, 0.6)
	recs = append(recs, s2...)
	// Session without QoS reports is excluded.
	recs = append(recs, mkSession(3, 3, netmodel.NAT, 0, None, None, 30*sim.Second)...)

	a := Analyze(recs)
	rep := a.Peerwise(0.95)
	if rep.SessionCI.N() != 2 {
		t.Fatalf("session sample %d", rep.SessionCI.N())
	}
	if math.Abs(rep.BottleneckFrac-0.5) > 1e-9 {
		t.Fatalf("bottleneck frac %v", rep.BottleneckFrac)
	}
	if rep.BottleneckByClass[netmodel.NAT] != 1 {
		t.Fatalf("bottleneck composition %v", rep.BottleneckByClass)
	}
	if rep.Threshold != 0.95 {
		t.Fatalf("threshold %v", rep.Threshold)
	}
}

func TestPeerwiseEmpty(t *testing.T) {
	rep := Analyze(nil).Peerwise(0.9)
	if rep.SessionCI.N() != 0 || rep.BottleneckFrac != 0 {
		t.Fatal("empty peerwise nonzero")
	}
}

func TestStabilityReport(t *testing.T) {
	var recs []logsys.Record
	// Direct session: 2 partner reports, 4 changes total → rate 2.
	s1 := mkSession(1, 1, netmodel.Direct, 0, None, None, sim.Hour)
	p := s1[0]
	p.Kind = logsys.KindPartner
	p.At = 5 * sim.Minute
	p.InPartners = 1
	p.PartnerChanges = 3
	p2 := p
	p2.At = 10 * sim.Minute
	p2.PartnerChanges = 1
	recs = append(recs, s1...)
	recs = append(recs, p, p2)
	// NAT session: 1 report, 6 changes → rate 6 (unstable).
	s2 := mkSession(2, 2, netmodel.NAT, 0, None, None, sim.Hour)
	q := s2[0]
	q.Kind = logsys.KindPartner
	q.At = 5 * sim.Minute
	q.PartnerChanges = 6
	recs = append(recs, s2...)
	recs = append(recs, q)

	a := Analyze(recs)
	rep := a.Stability()
	if rep.ChangesPerReport.N() != 2 {
		t.Fatalf("sample %d", rep.ChangesPerReport.N())
	}
	if math.Abs(rep.MeanByClass[netmodel.Direct]-2) > 1e-9 {
		t.Fatalf("direct rate %v", rep.MeanByClass[netmodel.Direct])
	}
	if math.Abs(rep.MeanByClass[netmodel.NAT]-6) > 1e-9 {
		t.Fatalf("nat rate %v", rep.MeanByClass[netmodel.NAT])
	}
}

func TestStabilityEmpty(t *testing.T) {
	rep := Analyze(nil).Stability()
	if rep.ChangesPerReport.N() != 0 {
		t.Fatal("empty stability nonzero")
	}
}
