package metrics

import (
	"strings"
	"testing"

	"coolstream/internal/sim"
)

func TestASCIIPlotShapes(t *testing.T) {
	var pts []SeriesPoint
	for i := 0; i < 100; i++ {
		v := float64(i)
		if i > 50 {
			v = float64(100 - i)
		}
		pts = append(pts, SeriesPoint{At: sim.Time(i) * sim.Second, Value: v})
	}
	var b strings.Builder
	ASCIIPlot(&b, "triangle", pts, 40, 8)
	out := b.String()
	if !strings.Contains(out, "triangle") || !strings.Contains(out, "#") {
		t.Fatalf("plot missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + 8 rows + axis + labels
	if len(lines) != 11 {
		t.Fatalf("plot has %d lines:\n%s", len(lines), out)
	}
	// The middle column should be taller than the edges: count '#' per
	// column.
	colHeight := func(c int) int {
		n := 0
		for _, ln := range lines[1:9] {
			if c+1 < len(ln) && ln[c+1] == '#' {
				n++
			}
		}
		return n
	}
	if colHeight(20) <= colHeight(1) || colHeight(20) <= colHeight(38) {
		t.Fatalf("peak not in the middle:\n%s", out)
	}
}

func TestASCIIPlotDegenerate(t *testing.T) {
	var b strings.Builder
	ASCIIPlot(&b, "empty", nil, 10, 4)
	if !strings.Contains(b.String(), "no data") {
		t.Fatal("empty plot not flagged")
	}
	b.Reset()
	// Constant series must not divide by zero.
	pts := []SeriesPoint{{At: 0, Value: 5}, {At: sim.Second, Value: 5}}
	ASCIIPlot(&b, "flat", pts, 2, 1) // also exercises min clamps
	if !strings.Contains(b.String(), "flat") {
		t.Fatal("flat plot failed")
	}
	b.Reset()
	// Single point.
	ASCIIPlot(&b, "point", pts[:1], 10, 3)
	if !strings.Contains(b.String(), "point") {
		t.Fatal("single-point plot failed")
	}
}
