package metrics

import (
	"runtime"
	"testing"

	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

func syntheticLog(sessions int) []logsys.Record {
	var recs []logsys.Record
	for i := 1; i <= sessions; i++ {
		join := sim.Time(i) * sim.Second
		s := mkSession(i, i, netmodel.UserClass(i%4), join, join+sim.Second,
			join+10*sim.Second, join+20*sim.Minute)
		base := s[0]
		for r := 1; r <= 3; r++ {
			q := base
			q.Kind = logsys.KindQoS
			q.At = join + sim.Time(r)*5*sim.Minute
			q.Continuity = 0.99
			tr := base
			tr.Kind = logsys.KindTraffic
			tr.At = q.At
			tr.UploadBytes = 1 << 20
			s = append(s, q, tr)
		}
		recs = append(recs, s...)
	}
	return recs
}

func BenchmarkAnalyze(b *testing.B) {
	recs := syntheticLog(500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(recs)
	}
}

// BenchmarkAnalyzeStreaming compares sessionizing a 50k-session log
// (500k records) single-threaded against the partitioned parallel
// analyzer — the coolanalyze re-analysis hot path.
func BenchmarkAnalyzeStreaming(b *testing.B) {
	recs := syntheticLog(50000)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			an := NewAnalyzer(1)
			for _, rec := range recs {
				an.Feed(rec)
			}
			an.Finish()
		}
	})
	// Force the partitioned path even on a single-CPU host so the
	// chunked hand-off is always exercised; the speedup shows on
	// multicore runners.
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			an := NewAnalyzer(workers)
			for _, rec := range recs {
				an.Feed(rec)
			}
			an.Finish()
		}
	})
}

func BenchmarkContinuityByClass(b *testing.B) {
	a := Analyze(syntheticLog(500))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ContinuityByClass(5*sim.Minute, sim.Hour)
	}
}
