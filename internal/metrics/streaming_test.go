package metrics

import (
	"reflect"
	"strconv"
	"testing"

	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// interleaveSessions merges per-session record sequences round-robin,
// preserving each session's internal order — the shape a real log has
// (sessions overlap in time) and the one that exposes partitioning
// bugs (order-sensitive last-wins fields, QoS append order).
func interleaveSessions(perSession [][]logsys.Record) []logsys.Record {
	var out []logsys.Record
	for row := 0; ; row++ {
		emitted := false
		for _, s := range perSession {
			if row < len(s) {
				out = append(out, s[row])
				emitted = true
			}
		}
		if !emitted {
			return out
		}
	}
}

// streamingWorkload builds an interleaved log exercising every record
// kind plus the awkward cases: sessions without joins, users with
// retry chains, partner reports, and traffic accumulation.
func streamingWorkload(sessions int) []logsys.Record {
	perSession := make([][]logsys.Record, 0, sessions)
	for i := 1; i <= sessions; i++ {
		join := sim.Time(i%17) * sim.Second // many join-time ties
		user := i % (sessions/3 + 1)        // users with several sessions
		class := netmodel.UserClass(i % 4)
		var s []logsys.Record
		switch {
		case i%7 == 0: // failed session: join then leave, never ready
			s = mkSession(i, user, class, join, None, None, join+3*sim.Second)
		case i%11 == 0: // truncated session: no leave record
			s = mkSession(i, user, class, join, join+sim.Second, join+2*sim.Second, None)
		default:
			s = mkSession(i, user, class, join, join+sim.Second,
				join+2*sim.Second, join+sim.Time(i)*sim.Second)
		}
		base := s[0]
		for r := 1; r <= i%4; r++ {
			q := base
			q.Kind = logsys.KindQoS
			q.At = join + sim.Time(r)*10*sim.Second
			q.Continuity = float64(r) / 4
			tr := base
			tr.Kind = logsys.KindTraffic
			tr.At = q.At
			tr.UploadBytes = int64(i * r * 1000)
			tr.DownloadBytes = int64(i * r * 2000)
			pn := base
			pn.Kind = logsys.KindPartner
			pn.At = q.At
			pn.InPartners = r
			pn.OutPartners = i % 5
			pn.ParentReachable = r % 3
			pn.ParentTotal = 3
			pn.NATParentLinks = r % 2
			pn.PartnerChanges = r
			s = append(s, q, tr, pn)
		}
		perSession = append(perSession, s)
	}
	return interleaveSessions(perSession)
}

// equalAnalyses asserts deep equality of the full analysis output.
func equalAnalyses(t *testing.T, label string, got, want *Analysis) {
	t.Helper()
	if len(got.Sessions) != len(want.Sessions) {
		t.Fatalf("%s: %d sessions, want %d", label, len(got.Sessions), len(want.Sessions))
	}
	for i := range want.Sessions {
		if !reflect.DeepEqual(got.Sessions[i], want.Sessions[i]) {
			t.Fatalf("%s: session %d differs:\n got %+v\nwant %+v",
				label, i, got.Sessions[i], want.Sessions[i])
		}
	}
	if !reflect.DeepEqual(got.ByUser, want.ByUser) {
		t.Fatalf("%s: ByUser differs", label)
	}
}

// TestStreamingMatchesSerial is the equivalence guarantee: any worker
// count must reproduce the single-threaded sessionization exactly —
// same Session values, same order, same ByUser chains.
func TestStreamingMatchesSerial(t *testing.T) {
	recs := streamingWorkload(120)
	serial := NewAnalyzer(1)
	for _, rec := range recs {
		serial.Feed(rec)
	}
	want := serial.Finish()
	for _, workers := range []int{2, 4, 13} {
		an := NewAnalyzer(workers)
		for _, rec := range recs {
			an.Feed(rec)
		}
		equalAnalyses(t, "workers="+strconv.Itoa(workers), an.Finish(), want)
	}
}

// TestAnalyzeBatchMatchesStreaming pins the facade: batch Analyze on
// both sides of the serial threshold equals an explicit streaming pass.
func TestAnalyzeBatchMatchesStreaming(t *testing.T) {
	for _, sessions := range []int{40, 800} { // below and above serialThreshold
		recs := streamingWorkload(sessions)
		serial := NewAnalyzer(1)
		for _, rec := range recs {
			serial.Feed(rec)
		}
		equalAnalyses(t, "batch", Analyze(recs), serial.Finish())
	}
}

// TestStreamingFeedIncremental checks that chunk boundaries are
// invisible: feeding one record at a time with flushes forced by odd
// chunk fill levels gives the same result as the batch pass.
func TestStreamingFeedIncremental(t *testing.T) {
	recs := streamingWorkload(30)
	an := NewAnalyzer(3)
	for _, rec := range recs {
		an.Feed(rec)
	}
	got := an.Finish()
	equalAnalyses(t, "incremental", got, Analyze(recs))
	// The analysis derived metrics must work off the streamed result.
	if got.MeanContinuity() != Analyze(recs).MeanContinuity() {
		t.Fatal("derived metric differs")
	}
}
