package metrics

import (
	"fmt"
	"io"
	"strings"
)

// ASCIIPlot renders a time series as a fixed-size terminal chart, the
// visual form of Figs. 5/8 for the CLI tools. Values are linearly
// binned into `width` columns (averaging within a column) and scaled
// to `height` rows.
func ASCIIPlot(w io.Writer, title string, pts []SeriesPoint, width, height int) {
	if width < 8 {
		width = 8
	}
	if height < 3 {
		height = 3
	}
	if len(pts) == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	// Bin points into columns.
	cols := make([]float64, width)
	counts := make([]int, width)
	t0, t1 := pts[0].At, pts[len(pts)-1].At
	span := t1 - t0
	for _, p := range pts {
		i := 0
		if span > 0 {
			i = int(float64(width-1) * float64(p.At-t0) / float64(span))
		}
		cols[i] += p.Value
		counts[i]++
	}
	lo, hi := 0.0, 0.0
	first := true
	for i := range cols {
		if counts[i] == 0 {
			continue
		}
		cols[i] /= float64(counts[i])
		if first {
			lo, hi = cols[i], cols[i]
			first = false
			continue
		}
		if cols[i] < lo {
			lo = cols[i]
		}
		if cols[i] > hi {
			hi = cols[i]
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	fmt.Fprintf(w, "%s  [%.6g .. %.6g]\n", title, lo, hi)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c := 0; c < width; c++ {
		if counts[c] == 0 {
			continue
		}
		level := int(float64(height-1) * (cols[c] - lo) / (hi - lo))
		for r := 0; r <= level; r++ {
			grid[height-1-r][c] = '#'
		}
	}
	for _, row := range grid {
		fmt.Fprintf(w, "|%s|\n", row)
	}
	fmt.Fprintf(w, "+%s+\n", strings.Repeat("-", width))
	fmt.Fprintf(w, " %-*s%s\n", width-8, t0.String(), t1.String())
}
