package metrics

import (
	"math"
	"testing"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

func sessionWith(private bool, in int) *Session {
	return &Session{PrivateAddr: private, MaxIn: in}
}

func TestClassifyQuadrants(t *testing.T) {
	cases := []struct {
		private bool
		in      int
		want    netmodel.UserClass
	}{
		{true, 2, netmodel.UPnP},
		{true, 0, netmodel.NAT},
		{false, 1, netmodel.Direct},
		{false, 0, netmodel.Firewall},
	}
	for _, c := range cases {
		if got := Classify(sessionWith(c.private, c.in)); got != c.want {
			t.Errorf("Classify(private=%v,in=%d) = %v, want %v", c.private, c.in, got, c.want)
		}
	}
}

func TestClassDistributionAndConfusion(t *testing.T) {
	var recs = mkSession(1, 1, netmodel.Direct, 0, None, None, None)
	// Give session 1 an incoming partner so it classifies as direct.
	p := recs[0]
	p.Kind = "partner"
	p.At = sim.Minute
	p.InPartners = 1
	p.OutPartners = 1
	recs = append(recs, p)
	// Session 2: truly Direct but never got incoming partners →
	// misclassified as firewall (the paper's known error mode).
	recs = append(recs, mkSession(2, 2, netmodel.Direct, 0, None, None, None)...)
	// Session 3: NAT.
	recs = append(recs, mkSession(3, 3, netmodel.NAT, 0, None, None, None)...)

	a := Analyze(recs)
	dist := a.ClassDistribution()
	if math.Abs(dist[netmodel.Direct]-1.0/3) > 1e-9 ||
		math.Abs(dist[netmodel.Firewall]-1.0/3) > 1e-9 ||
		math.Abs(dist[netmodel.NAT]-1.0/3) > 1e-9 {
		t.Fatalf("distribution %v", dist)
	}
	m := a.ConfusionMatrix()
	if m[netmodel.Direct][netmodel.Direct] != 1 {
		t.Fatalf("confusion %v", m)
	}
	if m[netmodel.Firewall][netmodel.Direct] != 1 {
		t.Fatalf("misclassification not recorded: %v", m)
	}
	acc := a.ClassifierAccuracy()
	if math.Abs(acc-2.0/3) > 1e-9 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestClassifierAccuracyEmpty(t *testing.T) {
	if Analyze(nil).ClassifierAccuracy() != 0 {
		t.Fatal("empty accuracy not 0")
	}
}
