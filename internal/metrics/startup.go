package metrics

import (
	"coolstream/internal/sim"
	"coolstream/internal/stats"
)

// StartupDelays returns samples (in seconds) of the three Fig. 6
// curves over sessions that reached the respective milestone: the
// start-subscription time, the media-player-ready time, and their
// difference (the buffer-filling wait).
func (a *Analysis) StartupDelays() (startSub, ready, diff stats.Sample) {
	for _, s := range a.Sessions {
		if d := s.StartSubDelay(); d != None {
			startSub.Add(d.Seconds())
		}
		if d := s.ReadyDelay(); d != None {
			ready.Add(d.Seconds())
		}
		if d := s.BufferingDelay(); d != None {
			diff.Add(d.Seconds())
		}
	}
	return
}

// ReadyDelaysInWindows splits media-ready delays by the join-time
// windows of Fig. 7 (the paper uses four day periods).
func (a *Analysis) ReadyDelaysInWindows(windows [][2]sim.Time) []stats.Sample {
	out := make([]stats.Sample, len(windows))
	for _, s := range a.Sessions {
		d := s.ReadyDelay()
		if d == None || s.JoinAt == None {
			continue
		}
		for i, w := range windows {
			if s.JoinAt >= w[0] && s.JoinAt < w[1] {
				out[i].Add(d.Seconds())
				break
			}
		}
	}
	return out
}

// Durations returns the session-duration sample in seconds (Fig. 10a),
// over sessions with both join and leave records.
func (a *Analysis) Durations() stats.Sample {
	var out stats.Sample
	for _, s := range a.Sessions {
		if d := s.Duration(); d != None {
			out.Add(d.Seconds())
		}
	}
	return out
}

// ShortSessionFraction returns the fraction of completed sessions
// shorter than the cutoff — the paper's "significant number of short
// sessions (less than 1 minute)".
func (a *Analysis) ShortSessionFraction(cutoff sim.Time) float64 {
	short, total := 0, 0
	for _, s := range a.Sessions {
		d := s.Duration()
		if d == None {
			continue
		}
		total++
		if d < cutoff {
			short++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(short) / float64(total)
}

// TopologySeries derives the Fig. 4 structural indicators from the
// periodic partner reports: per time bucket, the fraction of parent
// links pointing at reachable (direct/UPnP/server) peers and the
// fraction that are NAT↔NAT "random links".
func (a *Analysis) TopologySeries(bucket, horizon sim.Time) (reachable, random []SeriesPoint) {
	if bucket <= 0 || horizon <= 0 {
		return nil, nil
	}
	// Partner reports were aggregated per session at Analyze time; for
	// the series we need per-report granularity, so sessions keep sums
	// only. Approximate the series from QoS-aligned sums would lose
	// time structure, so TopologySeries instead reports one aggregate
	// point per session bucketed at its midpoint. This matches how the
	// paper reasons about the conceptual overlay (aggregate shares).
	nBuckets := int(horizon/bucket) + 1
	type acc struct{ reach, total, nat int }
	accs := make([]acc, nBuckets)
	for _, s := range a.Sessions {
		if s.ParentTotalSum == 0 || s.JoinAt == None {
			continue
		}
		mid := s.JoinAt
		if s.LeaveAt != None {
			mid = (s.JoinAt + s.LeaveAt) / 2
		}
		i := int(mid / bucket)
		if i < 0 || i >= nBuckets {
			continue
		}
		accs[i].reach += s.ParentReachableSum
		accs[i].total += s.ParentTotalSum
		accs[i].nat += s.NATLinkSum
	}
	for i, acc := range accs {
		if acc.total == 0 {
			continue
		}
		at := sim.Time(i) * bucket
		reachable = append(reachable, SeriesPoint{At: at, Value: float64(acc.reach) / float64(acc.total)})
		random = append(random, SeriesPoint{At: at, Value: float64(acc.nat) / float64(acc.total)})
	}
	return reachable, random
}
