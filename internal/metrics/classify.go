package metrics

import "coolstream/internal/netmodel"

// Classify infers a session's user class from its log-visible
// observables only, exactly as §V-B describes: the reported address
// visibility splits private from public, and the presence of incoming
// partnerships splits reachable from unreachable.
//
//	private + incoming  → UPnP
//	private + none      → NAT
//	public  + incoming  → direct-connect
//	public  + none      → firewall
//
// The paper notes this classification is error-prone ("errors can
// occur"): a reachable peer that simply never attracted an incoming
// partner is misread as NAT/firewall. ClassifierAccuracy quantifies
// that error against ground truth when the trace carries it.
func Classify(s *Session) netmodel.UserClass {
	if s.PrivateAddr {
		if s.MaxIn > 0 {
			return netmodel.UPnP
		}
		return netmodel.NAT
	}
	if s.MaxIn > 0 {
		return netmodel.Direct
	}
	return netmodel.Firewall
}

// ClassDistribution returns the fraction of sessions inferred in each
// class — Fig. 3a.
func (a *Analysis) ClassDistribution() [netmodel.NumClasses]float64 {
	var counts [netmodel.NumClasses]int
	total := 0
	for _, s := range a.Sessions {
		counts[Classify(s)]++
		total++
	}
	var out [netmodel.NumClasses]float64
	if total == 0 {
		return out
	}
	for c, n := range counts {
		out[c] = float64(n) / float64(total)
	}
	return out
}

// ConfusionMatrix cross-tabulates inferred class (rows) against ground
// truth (columns) over sessions that carry truth.
func (a *Analysis) ConfusionMatrix() [netmodel.NumClasses][netmodel.NumClasses]int {
	var m [netmodel.NumClasses][netmodel.NumClasses]int
	for _, s := range a.Sessions {
		if !s.HasTruth {
			continue
		}
		m[Classify(s)][s.TrueClass]++
	}
	return m
}

// ClassifierAccuracy returns the fraction of truth-carrying sessions
// whose inferred class matches the truth.
func (a *Analysis) ClassifierAccuracy() float64 {
	m := a.ConfusionMatrix()
	correct, total := 0, 0
	for i := 0; i < netmodel.NumClasses; i++ {
		for j := 0; j < netmodel.NumClasses; j++ {
			total += m[i][j]
			if i == j {
				correct += m[i][j]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
