package metrics

import (
	"runtime"
	"sort"
	"sync"

	"coolstream/internal/logsys"
)

// chunkSize is how many records a feed batch carries before it is
// handed to a partition worker. Big enough to amortize channel
// operations, small enough to keep workers busy on modest logs.
const chunkSize = 512

// serialThreshold is the record count below which batch Analyze stays
// single-threaded: worker startup and chunk hand-off cost more than
// they save on small logs.
const serialThreshold = 4096

// partition owns the sessions of one session-ID residue class. All
// records of a session land in exactly one partition, in feed order,
// so per-session state (last-wins fields, QoS append order) is
// byte-identical to a single-threaded pass.
type partition struct {
	byID     map[int]*Session
	sessions []*Session
}

func (p *partition) ingest(rec *logsys.Record) {
	s, ok := p.byID[rec.Session]
	if !ok {
		s = &Session{
			SessionID: rec.Session,
			UserID:    rec.User,
			PeerID:    rec.Peer,
			JoinAt:    None, StartSubAt: None, ReadyAt: None, LeaveAt: None,
		}
		p.byID[rec.Session] = s
		p.sessions = append(p.sessions, s)
	}
	s.absorb(rec)
}

// absorb folds one record into the session. This is the single
// reduction step shared by the batch and streaming analyzers.
func (s *Session) absorb(rec *logsys.Record) {
	if rec.HasTruth {
		s.TrueClass = rec.TrueClass
		s.HasTruth = true
	}
	s.PrivateAddr = rec.PrivateAddr
	switch rec.Kind {
	case logsys.KindJoin:
		s.JoinAt = rec.At
	case logsys.KindStartSub:
		s.StartSubAt = rec.At
	case logsys.KindMediaReady:
		s.ReadyAt = rec.At
	case logsys.KindLeave:
		s.LeaveAt = rec.At
		s.Reason = rec.Reason
	case logsys.KindQoS:
		s.QoS = append(s.QoS, QoSPoint{At: rec.At, CI: rec.Continuity})
	case logsys.KindTraffic:
		s.UploadBytes += rec.UploadBytes
		s.DownloadBytes += rec.DownloadBytes
	case logsys.KindPartner:
		if rec.InPartners > s.MaxIn {
			s.MaxIn = rec.InPartners
		}
		if rec.OutPartners > s.MaxOut {
			s.MaxOut = rec.OutPartners
		}
		s.ParentReachableSum += rec.ParentReachable
		s.ParentTotalSum += rec.ParentTotal
		s.NATLinkSum += rec.NATParentLinks
		s.PartnerChangesSum += rec.PartnerChanges
		s.PartnerReports++
	}
}

// Analyzer reconstructs sessions from a record stream without ever
// materializing the full log. Records are partitioned by session ID
// across workers; because every record of a session reaches the same
// partition in feed order, and the final merge sorts by the total
// order (JoinAt, SessionID), Finish returns exactly what the batch
// Analyze would for the same stream. Feed and Finish must be called
// from one goroutine.
type Analyzer struct {
	parts []*partition

	// Parallel mode only: per-partition input channels fed with record
	// chunks, a shared free list recycling chunk storage, and the
	// per-partition chunk currently being filled.
	chans   []chan []logsys.Record
	free    chan []logsys.Record
	pending [][]logsys.Record
	wg      sync.WaitGroup
}

// NewAnalyzer returns a streaming analyzer with the given number of
// partition workers (n <= 0 selects GOMAXPROCS, n == 1 runs fully
// inline with no goroutines).
func NewAnalyzer(workers int) *Analyzer {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	a := &Analyzer{parts: make([]*partition, workers)}
	for i := range a.parts {
		a.parts[i] = &partition{byID: make(map[int]*Session)}
	}
	if workers == 1 {
		return a
	}
	a.chans = make([]chan []logsys.Record, workers)
	a.free = make(chan []logsys.Record, 2*workers)
	a.pending = make([][]logsys.Record, workers)
	for i := range a.chans {
		ch := make(chan []logsys.Record, 2)
		a.chans[i] = ch
		p := a.parts[i]
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			for chunk := range ch {
				for i := range chunk {
					p.ingest(&chunk[i])
				}
				select {
				case a.free <- chunk[:0]:
				default:
				}
			}
		}()
	}
	return a
}

// Feed routes one record to its session's partition.
func (a *Analyzer) Feed(rec logsys.Record) {
	i := int(uint(rec.Session) % uint(len(a.parts)))
	if a.chans == nil {
		a.parts[i].ingest(&rec)
		return
	}
	chunk := a.pending[i]
	if chunk == nil {
		select {
		case chunk = <-a.free:
		default:
			chunk = make([]logsys.Record, 0, chunkSize)
		}
	}
	chunk = append(chunk, rec)
	if len(chunk) >= chunkSize {
		a.chans[i] <- chunk
		chunk = nil
	}
	a.pending[i] = chunk
}

// Finish flushes pending input, waits for the partition workers and
// merges their sessions into an Analysis. The Analyzer must not be
// fed again afterwards.
func (a *Analyzer) Finish() *Analysis {
	if a.chans != nil {
		for i, chunk := range a.pending {
			if len(chunk) > 0 {
				a.chans[i] <- chunk
			}
			a.pending[i] = nil
		}
		for _, ch := range a.chans {
			close(ch)
		}
		a.wg.Wait()
		a.chans = nil
	}
	total := 0
	for _, p := range a.parts {
		total += len(p.sessions)
	}
	res := &Analysis{
		Sessions: make([]*Session, 0, total),
		ByUser:   make(map[int][]*Session),
	}
	for _, p := range a.parts {
		res.Sessions = append(res.Sessions, p.sessions...)
	}
	// (JoinAt, SessionID) is a total order — session IDs are unique —
	// so the merged order is independent of the partition count.
	sort.Slice(res.Sessions, func(i, j int) bool {
		ji, jj := res.Sessions[i].JoinAt, res.Sessions[j].JoinAt
		if ji != jj {
			return ji < jj
		}
		return res.Sessions[i].SessionID < res.Sessions[j].SessionID
	})
	for _, s := range res.Sessions {
		res.ByUser[s.UserID] = append(res.ByUser[s.UserID], s)
	}
	return res
}
