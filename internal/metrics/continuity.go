package metrics

import (
	"sort"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/stats"
)

// ContinuityByClass returns, per inferred user class, the time series
// of mean continuity index per bucket — Fig. 8.
func (a *Analysis) ContinuityByClass(bucket, horizon sim.Time) [netmodel.NumClasses][]SeriesPoint {
	var out [netmodel.NumClasses][]SeriesPoint
	if bucket <= 0 || horizon <= 0 {
		return out
	}
	nBuckets := int(horizon/bucket) + 1
	type acc struct {
		sum float64
		n   int
	}
	accs := make([][netmodel.NumClasses]acc, nBuckets)
	for _, s := range a.Sessions {
		c := Classify(s)
		for _, q := range s.QoS {
			i := int(q.At / bucket)
			if i >= 0 && i < nBuckets {
				accs[i][c].sum += q.CI
				accs[i][c].n++
			}
		}
	}
	for c := 0; c < netmodel.NumClasses; c++ {
		for i := 0; i < nBuckets; i++ {
			if accs[i][c].n == 0 {
				continue
			}
			out[c] = append(out[c], SeriesPoint{
				At:    sim.Time(i) * bucket,
				Value: accs[i][c].sum / float64(accs[i][c].n),
			})
		}
	}
	return out
}

// MeanContinuity returns the overall mean continuity index across all
// QoS reports.
func (a *Analysis) MeanContinuity() float64 {
	var w stats.Welford
	for _, s := range a.Sessions {
		for _, q := range s.QoS {
			w.Add(q.CI)
		}
	}
	return w.Mean()
}

// MeanContinuityByClass returns the session-report mean CI per
// inferred class, the scalar comparison behind Fig. 8's observation
// that NAT/firewall users report marginally *higher* CI than
// direct-connect users (a reporting artifact, §V-D).
func (a *Analysis) MeanContinuityByClass() [netmodel.NumClasses]float64 {
	var sums [netmodel.NumClasses]float64
	var ns [netmodel.NumClasses]int
	for _, s := range a.Sessions {
		c := Classify(s)
		for _, q := range s.QoS {
			sums[c] += q.CI
			ns[c]++
		}
	}
	var out [netmodel.NumClasses]float64
	for c := range out {
		if ns[c] > 0 {
			out[c] = sums[c] / float64(ns[c])
		}
	}
	return out
}

// XYPoint pairs an independent variable with a mean response.
type XYPoint struct {
	X float64
	Y float64
	N int // sample support
}

// ContinuityVsLoad buckets time, pairs each bucket's mean continuity
// with a load measure (system size for Fig. 9a, join rate for
// Fig. 9b), and merges buckets into load bins.
func (a *Analysis) ContinuityVsLoad(load []SeriesPoint, bucket, horizon sim.Time, bins int) []XYPoint {
	if bins <= 0 || bucket <= 0 || horizon <= 0 || len(load) == 0 {
		return nil
	}
	nBuckets := int(horizon/bucket) + 1
	ciSum := make([]float64, nBuckets)
	ciN := make([]int, nBuckets)
	for _, s := range a.Sessions {
		for _, q := range s.QoS {
			i := int(q.At / bucket)
			if i >= 0 && i < nBuckets {
				ciSum[i] += q.CI
				ciN[i]++
			}
		}
	}
	// Align the load series to buckets by index.
	type pair struct{ x, y float64 }
	var pairs []pair
	for i := 0; i < nBuckets && i < len(load); i++ {
		if ciN[i] == 0 {
			continue
		}
		pairs = append(pairs, pair{x: load[i].Value, y: ciSum[i] / float64(ciN[i])})
	}
	if len(pairs) == 0 {
		return nil
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].x < pairs[j].x })
	lo, hi := pairs[0].x, pairs[len(pairs)-1].x
	if hi <= lo {
		// Single load level: one point.
		var sum float64
		for _, p := range pairs {
			sum += p.y
		}
		return []XYPoint{{X: lo, Y: sum / float64(len(pairs)), N: len(pairs)}}
	}
	sums := make([]float64, bins)
	xs := make([]float64, bins)
	ns := make([]int, bins)
	for _, p := range pairs {
		b := int(float64(bins) * (p.x - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		sums[b] += p.y
		xs[b] += p.x
		ns[b]++
	}
	var out []XYPoint
	for b := 0; b < bins; b++ {
		if ns[b] == 0 {
			continue
		}
		out = append(out, XYPoint{
			X: xs[b] / float64(ns[b]),
			Y: sums[b] / float64(ns[b]),
			N: ns[b],
		})
	}
	return out
}
