package metrics

import (
	"math"
	"strings"
	"testing"

	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

func withQoS(recs []logsys.Record, at sim.Time, ci float64) []logsys.Record {
	q := recs[0]
	q.Kind = logsys.KindQoS
	q.At = at
	q.Continuity = ci
	return append(recs, q)
}

func withTraffic(recs []logsys.Record, at sim.Time, up int64) []logsys.Record {
	tr := recs[0]
	tr.Kind = logsys.KindTraffic
	tr.At = at
	tr.UploadBytes = up
	return append(recs, tr)
}

func withPartner(recs []logsys.Record, at sim.Time, in int) []logsys.Record {
	p := recs[0]
	p.Kind = logsys.KindPartner
	p.At = at
	p.InPartners = in
	p.ParentReachable = 2
	p.ParentTotal = 2
	return append(recs, p)
}

func TestContribution(t *testing.T) {
	// One direct uploader with nearly all bytes, three NAT freeloaders.
	recs := mkSession(1, 1, netmodel.Direct, 0, None, None, sim.Hour)
	recs = withPartner(recs, sim.Minute, 3)
	recs = withTraffic(recs, sim.Minute, 9000)
	for i := 2; i <= 4; i++ {
		s := mkSession(i, i, netmodel.NAT, 0, None, None, sim.Hour)
		s = withTraffic(s, sim.Minute, 500)
		recs = append(recs, s...)
	}
	a := Analyze(recs)
	rep := a.Contribution()
	wantShare := 9000.0 / 10500.0
	if math.Abs(rep.ShareByClass[netmodel.Direct]-wantShare) > 1e-9 {
		t.Fatalf("direct share %v, want %v", rep.ShareByClass[netmodel.Direct], wantShare)
	}
	if math.Abs(rep.ReachableShare-wantShare) > 1e-9 {
		t.Fatalf("reachable share %v", rep.ReachableShare)
	}
	if math.Abs(rep.ReachablePopulation-0.25) > 1e-9 {
		t.Fatalf("reachable population %v", rep.ReachablePopulation)
	}
	// Top 30% = top 1 of 4 sessions = the direct uploader.
	if math.Abs(rep.Top30Share-wantShare) > 1e-9 {
		t.Fatalf("top30 %v", rep.Top30Share)
	}
	if rep.Gini <= 0.3 {
		t.Fatalf("Gini %v too equal", rep.Gini)
	}
	if len(rep.Lorenz) != 5 {
		t.Fatalf("Lorenz points %d", len(rep.Lorenz))
	}
}

func TestContributionEmpty(t *testing.T) {
	rep := Analyze(nil).Contribution()
	if rep.Top30Share != 0 || rep.Gini != 0 {
		t.Fatal("empty contribution nonzero")
	}
}

func TestContinuityByClassSeries(t *testing.T) {
	recs := mkSession(1, 1, netmodel.Direct, 0, None, None, sim.Hour)
	recs = withPartner(recs, sim.Minute, 1) // direct
	recs = withQoS(recs, 5*sim.Minute, 0.9)
	recs = withQoS(recs, 15*sim.Minute, 1.0)
	nat := mkSession(2, 2, netmodel.NAT, 0, None, None, sim.Hour)
	nat = withQoS(nat, 5*sim.Minute, 0.8)
	recs = append(recs, nat...)

	a := Analyze(recs)
	series := a.ContinuityByClass(10*sim.Minute, sim.Hour)
	d := series[netmodel.Direct]
	if len(d) != 2 || d[0].Value != 0.9 || d[1].Value != 1.0 {
		t.Fatalf("direct series %v", d)
	}
	n := series[netmodel.NAT]
	if len(n) != 1 || n[0].Value != 0.8 {
		t.Fatalf("nat series %v", n)
	}
	means := a.MeanContinuityByClass()
	if math.Abs(means[netmodel.Direct]-0.95) > 1e-9 || math.Abs(means[netmodel.NAT]-0.8) > 1e-9 {
		t.Fatalf("means %v", means)
	}
	if math.Abs(a.MeanContinuity()-(0.9+1.0+0.8)/3) > 1e-9 {
		t.Fatalf("overall mean %v", a.MeanContinuity())
	}
}

func TestContinuityVsLoad(t *testing.T) {
	// Two load regimes: low load with high CI, high load with lower CI.
	var recs []logsys.Record
	// 1 session alive early with CI 1.0; 5 sessions alive late with CI 0.9.
	early := mkSession(1, 1, netmodel.Direct, 0, None, None, 30*sim.Minute)
	early = withQoS(early, 10*sim.Minute, 1.0)
	recs = append(recs, early...)
	for i := 2; i <= 6; i++ {
		s := mkSession(i, i, netmodel.NAT, 40*sim.Minute, None, None, 2*sim.Hour)
		s = withQoS(s, 60*sim.Minute, 0.9)
		recs = append(recs, s...)
	}
	a := Analyze(recs)
	load := a.Concurrency(10*sim.Minute, 2*sim.Hour)
	pts := a.ContinuityVsLoad(load, 10*sim.Minute, 2*sim.Hour, 4)
	if len(pts) < 2 {
		t.Fatalf("points %v", pts)
	}
	if pts[0].X >= pts[len(pts)-1].X {
		t.Fatalf("bins unsorted: %v", pts)
	}
	if pts[0].Y <= pts[len(pts)-1].Y {
		t.Fatalf("expected CI to fall with load in this construction: %v", pts)
	}
}

func TestContinuityVsLoadDegenerate(t *testing.T) {
	a := Analyze(nil)
	if a.ContinuityVsLoad(nil, sim.Minute, sim.Hour, 4) != nil {
		t.Fatal("nil load accepted")
	}
}

func TestStartupDelaysAndWindows(t *testing.T) {
	var recs []logsys.Record
	recs = append(recs, mkSession(1, 1, netmodel.Direct, 0, 2*sim.Second, 12*sim.Second, sim.Hour)...)
	recs = append(recs, mkSession(2, 2, netmodel.NAT, 30*sim.Minute, 30*sim.Minute+5*sim.Second, 30*sim.Minute+25*sim.Second, sim.Hour)...)
	recs = append(recs, mkSession(3, 3, netmodel.NAT, 0, None, None, 60*sim.Second)...) // failed
	a := Analyze(recs)
	sub, ready, diff := a.StartupDelays()
	if sub.N() != 2 || ready.N() != 2 || diff.N() != 2 {
		t.Fatalf("sample sizes %d/%d/%d", sub.N(), ready.N(), diff.N())
	}
	if diff.Mean() != 15 { // (10+20)/2
		t.Fatalf("buffering mean %v", diff.Mean())
	}
	windows := [][2]sim.Time{{0, 10 * sim.Minute}, {10 * sim.Minute, sim.Hour}}
	ws := a.ReadyDelaysInWindows(windows)
	if ws[0].N() != 1 || ws[1].N() != 1 {
		t.Fatalf("window sizes %d/%d", ws[0].N(), ws[1].N())
	}
	if ws[1].Mean() != 25 {
		t.Fatalf("window mean %v", ws[1].Mean())
	}
}

func TestDurationsAndShortFraction(t *testing.T) {
	var recs []logsys.Record
	recs = append(recs, mkSession(1, 1, netmodel.Direct, 0, None, None, 30*sim.Second)...)
	recs = append(recs, mkSession(2, 2, netmodel.Direct, 0, None, None, 2*sim.Hour)...)
	recs = append(recs, mkSession(3, 3, netmodel.Direct, 0, None, None, None)...) // open
	a := Analyze(recs)
	d := a.Durations()
	if d.N() != 2 {
		t.Fatalf("durations %d", d.N())
	}
	if got := a.ShortSessionFraction(sim.Minute); got != 0.5 {
		t.Fatalf("short fraction %v", got)
	}
}

func TestTopologySeries(t *testing.T) {
	recs := mkSession(1, 1, netmodel.NAT, 0, None, None, 10*sim.Minute)
	p := recs[0]
	p.Kind = logsys.KindPartner
	p.At = 5 * sim.Minute
	p.ParentReachable = 3
	p.ParentTotal = 4
	p.NATParentLinks = 1
	recs = append(recs, p)
	a := Analyze(recs)
	reach, random := a.TopologySeries(10*sim.Minute, sim.Hour)
	if len(reach) != 1 || math.Abs(reach[0].Value-0.75) > 1e-9 {
		t.Fatalf("reachable series %v", reach)
	}
	if len(random) != 1 || math.Abs(random[0].Value-0.25) > 1e-9 {
		t.Fatalf("random series %v", random)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRowf("%d\t%.2f", 10, 0.5)
	out := tab.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "0.50") {
		t.Fatalf("render: %q", out)
	}
	var csv strings.Builder
	tab.RenderCSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,bb" || lines[1] != "1,2" {
		t.Fatalf("csv: %q", csv.String())
	}
}
