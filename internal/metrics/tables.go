package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple row/column container rendered as aligned ASCII or
// CSV — the output format of the benchmark harness and CLI tools.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row, formatting each value with the matching verb.
func (t *Table) AddRowf(format string, values ...any) {
	formatted := fmt.Sprintf(format, values...)
	t.Rows = append(t.Rows, strings.Split(formatted, "\t"))
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				io.WriteString(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		io.WriteString(w, "\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// RenderCSV writes the table as CSV (no quoting needed for our cells;
// commas in cells are replaced by semicolons defensively).
func (t *Table) RenderCSV(w io.Writer) {
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = clean(h)
	}
	io.WriteString(w, strings.Join(cells, ","))
	io.WriteString(w, "\n")
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, clean(c))
		}
		io.WriteString(w, strings.Join(cells, ","))
		io.WriteString(w, "\n")
	}
}

// String renders to a string (ASCII form).
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
