package metrics

import (
	"testing"

	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// mkSession emits a full normal-session record sequence.
func mkSession(sess, user int, class netmodel.UserClass, join, sub, ready, leave sim.Time) []logsys.Record {
	base := logsys.Record{
		Peer: sess, Session: sess, User: user,
		PrivateAddr: class.HasPrivateAddress(),
		TrueClass:   class, HasTruth: true,
	}
	var recs []logsys.Record
	add := func(kind logsys.EventKind, at sim.Time) {
		r := base
		r.Kind = kind
		r.At = at
		recs = append(recs, r)
	}
	add(logsys.KindJoin, join)
	if sub != None {
		add(logsys.KindStartSub, sub)
	}
	if ready != None {
		add(logsys.KindMediaReady, ready)
	}
	if leave != None {
		add(logsys.KindLeave, leave)
	}
	return recs
}

func TestAnalyzeReconstructsSessions(t *testing.T) {
	var recs []logsys.Record
	recs = append(recs, mkSession(1, 10, netmodel.Direct, 5*sim.Second, 7*sim.Second, 20*sim.Second, 10*sim.Minute)...)
	recs = append(recs, mkSession(2, 11, netmodel.NAT, 8*sim.Second, None, None, 68*sim.Second)...)
	a := Analyze(recs)
	if len(a.Sessions) != 2 {
		t.Fatalf("sessions = %d", len(a.Sessions))
	}
	s1 := a.Sessions[0]
	if s1.SessionID != 1 || !s1.Ready() {
		t.Fatalf("session 1 wrong: %+v", s1)
	}
	if s1.StartSubDelay() != 2*sim.Second || s1.ReadyDelay() != 15*sim.Second || s1.BufferingDelay() != 13*sim.Second {
		t.Fatalf("delays wrong: %v %v %v", s1.StartSubDelay(), s1.ReadyDelay(), s1.BufferingDelay())
	}
	if s1.Duration() != 10*sim.Minute-5*sim.Second {
		t.Fatalf("duration %v", s1.Duration())
	}
	s2 := a.Sessions[1]
	if s2.Ready() || s2.StartSubDelay() != None || s2.ReadyDelay() != None {
		t.Fatalf("failed session misread: %+v", s2)
	}
}

func TestAnalyzeAggregatesReports(t *testing.T) {
	recs := mkSession(1, 10, netmodel.Direct, 0, sim.Second, 2*sim.Second, sim.Hour)
	base := recs[0]
	qos := base
	qos.Kind = logsys.KindQoS
	qos.At = 5 * sim.Minute
	qos.Continuity = 0.97
	traffic := base
	traffic.Kind = logsys.KindTraffic
	traffic.At = 5 * sim.Minute
	traffic.UploadBytes = 1000
	traffic.DownloadBytes = 2000
	traffic2 := traffic
	traffic2.At = 10 * sim.Minute
	traffic2.UploadBytes = 500
	traffic2.DownloadBytes = 0
	partner := base
	partner.Kind = logsys.KindPartner
	partner.At = 5 * sim.Minute
	partner.InPartners = 3
	partner.OutPartners = 2
	partner.ParentReachable = 3
	partner.ParentTotal = 4
	partner.NATParentLinks = 1
	recs = append(recs, qos, traffic, traffic2, partner)

	a := Analyze(recs)
	s := a.Sessions[0]
	if len(s.QoS) != 1 || s.QoS[0].CI != 0.97 {
		t.Fatalf("QoS %v", s.QoS)
	}
	if s.UploadBytes != 1500 || s.DownloadBytes != 2000 {
		t.Fatalf("traffic %d/%d", s.UploadBytes, s.DownloadBytes)
	}
	if s.MaxIn != 3 || s.MaxOut != 2 {
		t.Fatalf("partners %d/%d", s.MaxIn, s.MaxOut)
	}
	if s.ParentReachableSum != 3 || s.ParentTotalSum != 4 || s.NATLinkSum != 1 {
		t.Fatalf("parent sums %d/%d/%d", s.ParentReachableSum, s.ParentTotalSum, s.NATLinkSum)
	}
}

func TestConcurrencySeries(t *testing.T) {
	var recs []logsys.Record
	recs = append(recs, mkSession(1, 1, netmodel.Direct, 0, None, None, 100*sim.Second)...)
	recs = append(recs, mkSession(2, 2, netmodel.Direct, 30*sim.Second, None, None, 200*sim.Second)...)
	a := Analyze(recs)
	pts := a.Concurrency(10*sim.Second, 250*sim.Second)
	at := func(t sim.Time) float64 {
		for _, p := range pts {
			if p.At == t {
				return p.Value
			}
		}
		return -1
	}
	if at(0) != 1 || at(50*sim.Second) != 2 || at(150*sim.Second) != 1 || at(240*sim.Second) != 0 {
		t.Fatalf("concurrency wrong: %v", pts)
	}
}

func TestConcurrencyOpenSessionLastsToHorizon(t *testing.T) {
	recs := mkSession(1, 1, netmodel.Direct, 0, None, None, None)
	a := Analyze(recs)
	pts := a.Concurrency(10*sim.Second, 100*sim.Second)
	if pts[len(pts)-1].Value != 1 {
		t.Fatal("open session dropped before horizon")
	}
}

func TestJoinRate(t *testing.T) {
	var recs []logsys.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, mkSession(i+1, i+1, netmodel.NAT, sim.Time(i)*sim.Second, None, None, None)...)
	}
	a := Analyze(recs)
	pts := a.JoinRate(5*sim.Second, 20*sim.Second)
	if pts[0].Value != 1.0 { // 5 joins in 5 seconds
		t.Fatalf("join rate %v", pts[0].Value)
	}
	if pts[1].Value != 0 {
		t.Fatalf("empty bucket rate %v", pts[1].Value)
	}
}

func TestRetries(t *testing.T) {
	var recs []logsys.Record
	// User 1: two failures then success.
	recs = append(recs, mkSession(1, 1, netmodel.NAT, 0, None, None, 60*sim.Second)...)
	recs = append(recs, mkSession(2, 1, netmodel.NAT, 63*sim.Second, None, None, 123*sim.Second)...)
	recs = append(recs, mkSession(3, 1, netmodel.NAT, 126*sim.Second, 130*sim.Second, 140*sim.Second, sim.Hour)...)
	// User 2: immediate success.
	recs = append(recs, mkSession(4, 2, netmodel.Direct, 0, sim.Second, 10*sim.Second, sim.Hour)...)
	// User 3: never succeeds.
	recs = append(recs, mkSession(5, 3, netmodel.NAT, 0, None, None, 60*sim.Second)...)
	a := Analyze(recs)
	r := a.Retries()
	if r[1] != 2 || r[2] != 0 || r[3] != 1 {
		t.Fatalf("retries %v", r)
	}
	dist := a.RetryDistribution(3)
	if dist[0] != 1.0/3 || dist[1] != 1.0/3 || dist[2] != 1.0/3 {
		t.Fatalf("retry distribution %v", dist)
	}
}

func TestRetryDistributionDegenerate(t *testing.T) {
	a := Analyze(nil)
	if a.RetryDistribution(0) != nil {
		t.Fatal("zero buckets not nil")
	}
	dist := a.RetryDistribution(3)
	for _, v := range dist {
		if v != 0 {
			t.Fatal("empty analysis nonzero distribution")
		}
	}
}

func TestSessionsSortedByJoin(t *testing.T) {
	var recs []logsys.Record
	recs = append(recs, mkSession(5, 1, netmodel.Direct, 50*sim.Second, None, None, None)...)
	recs = append(recs, mkSession(3, 2, netmodel.Direct, 10*sim.Second, None, None, None)...)
	a := Analyze(recs)
	if a.Sessions[0].SessionID != 3 || a.Sessions[1].SessionID != 5 {
		t.Fatal("sessions unsorted")
	}
}
