package core

import (
	"strings"
	"testing"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/workload"
)

func presetScenario() *workload.Scenario {
	sc := &workload.Scenario{Horizon: 4 * sim.Minute}
	ep := netmodel.Endpoint{Class: netmodel.Direct, UploadBps: 2 * 768e3, DownloadBps: 3 * 768e3}
	for i := 0; i < 20; i++ {
		sc.Specs = append(sc.Specs, workload.UserSpec{
			UserID:   i + 1,
			At:       sim.Time(i) * 5 * sim.Second,
			Endpoint: ep,
			Watch:    2 * sim.Minute,
			Patience: 1,
		})
	}
	return sc
}

func TestRunWithPresetScenario(t *testing.T) {
	cfg := smallConfig(3)
	cfg.PresetScenario = presetScenario()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinedSessions != 20 {
		t.Fatalf("joined %d, want exactly the preset's 20", res.JoinedSessions)
	}
	if res.Horizon() != cfg.Warmup+4*sim.Minute+cfg.Drain {
		t.Fatalf("horizon %v", res.Horizon())
	}
	if res.ReadySessions == 0 {
		t.Fatal("no preset session became ready")
	}
}

func TestPresetScenarioThroughFileRoundTrip(t *testing.T) {
	sc := presetScenario()
	var buf strings.Builder
	if err := workload.WriteScenario(&buf, *sc); err != nil {
		t.Fatal(err)
	}
	loaded, err := workload.ReadScenario(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(4)
	cfg.PresetScenario = &loaded
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinedSessions != 20 {
		t.Fatalf("joined %d after file round trip", res.JoinedSessions)
	}
}

func TestPresetScenarioValidation(t *testing.T) {
	cfg := smallConfig(5)
	cfg.PresetScenario = &workload.Scenario{}
	if cfg.Validate() == nil {
		t.Fatal("zero-horizon preset accepted")
	}
	// A preset makes the Workload options irrelevant.
	cfg.PresetScenario = presetScenario()
	cfg.Workload = workload.Options{}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("preset with empty workload rejected: %v", err)
	}
}
