package core

import (
	"math"
	"strings"
	"testing"
)

func TestReplicateSummarises(t *testing.T) {
	cfg := smallConfig(100)
	cfg.Workload.Horizon = 4 * minute
	reps, err := Replicate(cfg, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(StandardMetrics()) {
		t.Fatalf("metrics %d", len(reps))
	}
	byName := map[string]Replication{}
	for _, r := range reps {
		byName[r.Name] = r
	}
	ci := byName["mean_continuity"]
	if ci.N != 3 || ci.Mean < 0.8 || ci.Mean > 1.0001 {
		t.Fatalf("continuity replication %+v", ci)
	}
	if ci.HalfWidth < 0 || math.IsNaN(ci.HalfWidth) {
		t.Fatalf("half width %v", ci.HalfWidth)
	}
	ready := byName["ready_median_s"]
	if ready.N == 0 || ready.Mean <= 0 {
		t.Fatalf("ready replication %+v", ready)
	}
	// Seeds must actually differ: peak concurrency should have spread
	// unless the workload is degenerate.
	peak := byName["peak_concurrent"]
	if peak.Mean <= 0 {
		t.Fatalf("peak replication %+v", peak)
	}
}

func TestReplicateValidation(t *testing.T) {
	if _, err := Replicate(smallConfig(1), 1, nil); err == nil {
		t.Fatal("single-seed replication accepted")
	}
	bad := smallConfig(1)
	bad.Servers = 0
	if _, err := Replicate(bad, 2, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestReplicationTableAndString(t *testing.T) {
	reps := []Replication{{Name: "x", Mean: 1.5, HalfWidth: 0.25, N: 5}}
	if s := reps[0].String(); !strings.Contains(s, "1.5000 ± 0.2500") {
		t.Fatalf("string %q", s)
	}
	tab := ReplicationTable("demo", reps)
	if !strings.Contains(tab.String(), "ci95_halfwidth") {
		t.Fatalf("table %q", tab.String())
	}
}

func TestReplicateCustomMetric(t *testing.T) {
	cfg := smallConfig(7)
	cfg.Workload.Horizon = 3 * minute
	reps, err := Replicate(cfg, 2, []Metric{
		{"sessions", func(r *Result) float64 { return float64(r.JoinedSessions) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].Mean <= 0 {
		t.Fatalf("custom metric %+v", reps)
	}
}
