package core

import (
	"coolstream/internal/netmodel"
	"coolstream/internal/stats"
)

// ResourceSweepConfig builds a configuration whose system-wide
// resource index (aggregate upload supply / streaming demand, the
// critical quantity of Kumar/Ross cited in §V-E) is pushed towards the
// given target by scaling peer upload capacities and pinning a small
// server tier. Sweeping the target across 1.0 exposes the critical
// value: continuity collapses once supply falls below demand.
func ResourceSweepConfig(capacityScale float64, seed uint64) Config {
	c := DefaultConfig()
	c.Seed = seed
	c.Workload.Profile = c.Workload.Profile.Scale(1.2)
	// A deliberately small server tier so the peers' own capacity
	// dominates the balance.
	c.Servers = 2
	c.ServerUploadBps = 10 * c.Params.Layout.RateBps
	// Loosen the partnership bound so bandwidth, not partner slots, is
	// the binding constraint being swept.
	c.Params.MaxPartners = 16
	c.Params.DesiredPartners = 8
	prof := netmodel.DefaultCapacityProfile(c.Params.Layout.RateBps)
	var scaled netmodel.CapacityProfile
	for class := 0; class < netmodel.NumClasses; class++ {
		scaled.Upload[class] = stats.Scaled{S: prof.Upload[class], Factor: capacityScale}
		scaled.Download[class] = prof.Download[class]
	}
	c.Workload.Capacity = scaled
	return c
}

// MeanResourceIndex averages the resource index over a run's topology
// snapshots, ignoring warm-up and drain phases (snapshots with fewer
// than minPeers active peers).
func (r *Result) MeanResourceIndex(minPeers int) float64 {
	sum, n := 0.0, 0
	for _, s := range r.Snapshots {
		if s.ActivePeers < minPeers {
			continue
		}
		sum += s.ResourceIndex()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
