package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coolstream/internal/logsys"
	"coolstream/internal/trace"
)

func TestWriteArtifacts(t *testing.T) {
	res, err := Run(smallConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.WriteArtifacts(dir); err != nil {
		t.Fatal(err)
	}
	// Mandatory files exist and are non-empty.
	for _, name := range []string{"run.log", "run.jsonl", "sessions.csv", "joinrate.csv", "topology.csv", "figures.txt"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	// The log round-trips through the parser.
	f, err := os.Open(filepath.Join(dir, "run.log"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := logsys.ReadLog(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(res.Records) {
		t.Fatalf("log artifact has %d records, run had %d", len(recs), len(res.Records))
	}
	// The JSONL round-trips exactly.
	f, err = os.Open(filepath.Join(dir, "run.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	jrecs, err := trace.ReadRecords(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(jrecs) != len(res.Records) || jrecs[0] != res.Records[0] {
		t.Fatal("jsonl artifact mismatch")
	}
	// The series parses back.
	f, err = os.Open(filepath.Join(dir, "sessions.csv"))
	if err != nil {
		t.Fatal(err)
	}
	name, pts, err := trace.ReadSeries(f)
	f.Close()
	if err != nil || name != "sessions" || len(pts) == 0 {
		t.Fatalf("series artifact: %q %d %v", name, len(pts), err)
	}
	// figures.txt contains each figure title.
	data, err := os.ReadFile(filepath.Join(dir, "figures.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 3a", "Fig. 6", "Fig. 10b", "run summary"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("figures.txt missing %q", want)
		}
	}
	// At least one per-class continuity series was produced.
	matches, _ := filepath.Glob(filepath.Join(dir, "continuity_*.csv"))
	if len(matches) == 0 {
		t.Fatal("no per-class continuity artifacts")
	}
}

func TestWriteArtifactsBadDir(t *testing.T) {
	res, err := Run(smallConfig(18))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.WriteArtifacts("/dev/null/impossible"); err == nil {
		t.Fatal("impossible directory accepted")
	}
}
