package core

import (
	"strings"
	"testing"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/workload"
)

// smallConfig is a fast steady-state run for tests.
func smallConfig(seed uint64) Config {
	c := SteadyConfig(0.25, 6*sim.Minute, seed)
	c.Drain = time30s
	c.SnapshotPeriod = time30s
	// Faster reports so short runs still produce QoS records.
	c.Params.ReportPeriod = time30s
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Tick = 0 },
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.ServerUploadBps = 0 },
		func(c *Config) { c.LatencyMin = -1 },
		func(c *Config) { c.LatencyMax = c.LatencyMin - 1 },
		func(c *Config) { c.MCachePolicy = "alien" },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.Params.Ts = 0 },
		func(c *Config) { c.Workload.Horizon = 0 },
	}
	for i, m := range mutations {
		c := DefaultConfig()
		m(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestPresetsValid(t *testing.T) {
	presets := []Config{
		DefaultConfig(),
		DayConfig(12*sim.Minute, 0.3, 7),
		FlashCrowdConfig(2*sim.Minute, time30s, 0.1, 3, 7),
		SteadyConfig(1, 5*sim.Minute, 7),
	}
	for i, c := range presets {
		if err := c.Validate(); err != nil {
			t.Errorf("preset %d invalid: %v", i, err)
		}
	}
}

func TestRunSteadyState(t *testing.T) {
	res, err := Run(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinedSessions < 30 {
		t.Fatalf("only %d sessions joined", res.JoinedSessions)
	}
	if res.ReadySessions == 0 {
		t.Fatal("no session reached media-ready")
	}
	if res.PeakConcurrent < 5 {
		t.Fatalf("peak concurrency %d", res.PeakConcurrent)
	}
	if len(res.Records) == 0 || res.Analysis == nil {
		t.Fatal("no records analysed")
	}
	if len(res.Snapshots) < 3 {
		t.Fatalf("snapshots %d", len(res.Snapshots))
	}
	// Overall continuity should be high in an under-loaded system.
	if ci := res.Analysis.MeanContinuity(); ci < 0.85 {
		t.Fatalf("mean continuity %.3f", ci)
	}
	// Most sessions eventually ready: failure rate bounded.
	if res.FailedSessions*3 > res.JoinedSessions {
		t.Fatalf("too many failures: %d of %d", res.FailedSessions, res.JoinedSessions)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	c := smallConfig(1)
	c.Servers = 0
	if _, err := Run(c); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if a.PeakConcurrent != b.PeakConcurrent || a.FailedSessions != b.FailedSessions {
		t.Fatal("counters differ across identical runs")
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	a, _ := Run(smallConfig(1))
	b, _ := Run(smallConfig(2))
	if len(a.Records) == len(b.Records) {
		same := true
		for i := range a.Records {
			if a.Records[i] != b.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

func TestFigureTablesPopulated(t *testing.T) {
	res, err := Run(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	bucket := time30s
	tables := []struct {
		name string
		tab  interface{ String() string }
		want string
	}{
		{"fig3a", res.Fig3a(), "classifier_accuracy"},
		{"fig3b", res.Fig3b(), "top30pct_upload_share"},
		{"fig4", res.Fig4(), "frac_links_to_reachable"},
		{"fig5", res.Fig5(bucket), "sessions"},
		{"fig6", res.Fig6(), "media_ready"},
		{"fig7", res.Fig7(), "prime time"},
		{"fig8", res.Fig8(bucket), "overall"},
		{"fig9a", res.Fig9a(bucket, 4), "system_size"},
		{"fig9b", res.Fig9b(bucket, 4), "join_rate"},
		{"fig10a", res.Fig10a(), "short(<1min)_frac"},
		{"fig10b", res.Fig10b(), "fraction_of_users"},
		{"summary", res.Summary(), "peak_concurrent_peers"},
	}
	for _, tc := range tables {
		out := tc.tab.String()
		if !strings.Contains(out, tc.want) {
			t.Errorf("%s table missing %q:\n%s", tc.name, tc.want, out)
		}
		if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
			t.Errorf("%s table has no data rows:\n%s", tc.name, out)
		}
	}
}

func TestFig6QuantilesOrdered(t *testing.T) {
	res, err := Run(smallConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	sub, ready, diff := res.Analysis.StartupDelays()
	if sub.N() == 0 || ready.N() == 0 || diff.N() == 0 {
		t.Fatal("no startup delay samples")
	}
	// Ready time exceeds start-subscription time for the same session
	// population (medians must reflect that ordering).
	if ready.Median() <= sub.Median() {
		t.Fatalf("ready median %.2f <= startsub median %.2f", ready.Median(), sub.Median())
	}
	// The paper reports users waiting ~10-20 s for the buffer; with
	// our scaled parameters the difference must at least be positive
	// and bounded.
	if diff.Median() <= 0 || diff.Median() > 60 {
		t.Fatalf("buffering median %.2f implausible", diff.Median())
	}
}

func TestDayRunHasCliffAndPeak(t *testing.T) {
	day := 12 * sim.Minute
	c := DayConfig(day, 0.6, 9)
	c.Params.ReportPeriod = time30s
	c.SnapshotPeriod = sim.Minute
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	conc := res.Analysis.Concurrency(10*sim.Second, res.Horizon())
	at := func(tm sim.Time) float64 {
		bestIdx := 0
		for i, p := range conc {
			if p.At <= tm {
				bestIdx = i
			}
		}
		return conc[bestIdx].Value
	}
	warm := c.Warmup
	evening := at(warm + sim.Time(float64(day)*21/24))
	cliffAfter := at(warm + sim.Time(float64(day)*23/24))
	morning := at(warm + sim.Time(float64(day)*6/24))
	if evening <= morning {
		t.Fatalf("no evening peak: morning %.0f evening %.0f", morning, evening)
	}
	if cliffAfter > 0.6*evening {
		t.Fatalf("no 22:00 cliff: evening %.0f after %.0f", evening, cliffAfter)
	}
}

func TestRetryDistributionHasRetries(t *testing.T) {
	// Saturate a tiny server tier with NAT-heavy arrivals so some
	// joins fail and retry.
	c := smallConfig(13)
	c.Servers = 1
	c.ServerUploadBps = 3 * c.Params.Layout.RateBps
	c.Params.MaxServerPartners = 6
	c.Workload.Profile = workload.Constant(1.0)
	c.Workload.Mix = netmodel.ClassMix{netmodel.Direct: 0.05, netmodel.UPnP: 0.05, netmodel.NAT: 0.8, netmodel.Firewall: 0.1}
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedSessions == 0 {
		t.Skip("no failures under this seed; retry path exercised elsewhere")
	}
	dist := res.Analysis.RetryDistribution(5)
	sum := 0.0
	for _, v := range dist {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("retry distribution not normalised: %v", dist)
	}
	if dist[0] == 1 {
		t.Fatalf("failures recorded but nobody retried: %v (failed=%d)", dist, res.FailedSessions)
	}
}
