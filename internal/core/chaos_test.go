package core

import (
	"runtime"
	"testing"
)

// chaosDigest runs the chaos preset and returns the result.
func chaosResult(t *testing.T) *Result {
	t.Helper()
	res, err := Run(ChaosConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChaosRunReproducible is the acceptance gate of the fault layer:
// the seeded chaos scenario (tracker outage + NAT refusals + partner
// kills + burst loss + log outage, with backoff) must reproduce
// bit-identical digests across two runs and across GOMAXPROCS 1 vs 8 —
// fault firings included.
func TestChaosRunReproducible(t *testing.T) {
	orig := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(orig)
	a := chaosResult(t)
	b := chaosResult(t)
	if a.Digest() != b.Digest() {
		t.Fatalf("same-seed chaos runs diverged: %#x vs %#x", a.Digest(), b.Digest())
	}
	runtime.GOMAXPROCS(8)
	c := chaosResult(t)
	if a.Digest() != c.Digest() {
		t.Fatalf("chaos digest differs across GOMAXPROCS: %#x vs %#x", a.Digest(), c.Digest())
	}
	if a.FaultStats != c.FaultStats {
		t.Fatalf("fault firings diverged across GOMAXPROCS: %+v vs %+v", a.FaultStats, c.FaultStats)
	}
	t.Logf("chaos digest %#x, faults %+v", a.Digest(), a.FaultStats)
}

// TestChaosRetryHistogramNonDegenerate checks that the chaos scenario
// actually exercises the retry machinery end to end: failed joins flow
// through the log pipeline into metrics.RetryDistribution with at
// least two non-zero buckets (some users succeed at once, some retry),
// and the distribution surfaces in the Fig. 10c artifact.
func TestChaosRetryHistogramNonDegenerate(t *testing.T) {
	res := chaosResult(t)
	dist := res.Analysis.RetryDistribution(6)
	nonZero := 0
	for _, f := range dist {
		if f > 0 {
			nonZero++
		}
	}
	if nonZero < 2 {
		t.Fatalf("degenerate retry histogram %v; want >=2 non-zero buckets", dist)
	}
	if res.FaultStats.TrackerRefusals == 0 {
		t.Error("tracker outage never fired")
	}
	if res.FaultStats.NATRefusals == 0 {
		t.Error("NAT refusal never fired")
	}
	if res.FaultStats.PartnerKills == 0 {
		t.Error("partner kill never fired")
	}
	if res.FailedSessions == 0 {
		t.Error("no session failed despite the tracker outage")
	}
	if res.ReadySessions == 0 {
		t.Error("no session reached media-ready; scenario degenerate")
	}
	fig := res.Fig10c()
	if len(fig.Rows) < 8 {
		t.Fatalf("Fig10c has %d rows", len(fig.Rows))
	}
}

// TestFaultFreeDigestUnchangedByFaultSupport pins the gating contract
// at the experiment level: a fault-free config must produce the same
// digest whether or not the binary carries the fault layer — i.e. two
// identical fault-free runs agree, and enabling only the Retry backoff
// does not disturb RNG streams (covered in internal/peer). Here we
// additionally check a fault-free run still reproduces bit-identically.
func TestFaultFreeDigestUnchangedByFaultSupport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Horizon = 2 * 60 * 1000 // 2 minutes
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("fault-free runs diverged: %#x vs %#x", a.Digest(), b.Digest())
	}
}

// TestChaosLogOutageBuffers checks the buffered log pipeline: records
// emitted inside the log outage window arrive late (or are counted
// dropped), never silently lost, and the drop counter reaches the
// result.
func TestChaosLogOutageBuffers(t *testing.T) {
	cfg := ChaosConfig(7)
	cfg.LogBufferCap = 8 // tiny buffer to force visible drops
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedLogs == 0 {
		t.Fatalf("tiny log buffer never overflowed (dropped=0)")
	}
	// With the default (large) buffer nothing is dropped.
	res2 := chaosResult(t)
	if res2.DroppedLogs != 0 {
		t.Fatalf("default buffer dropped %d records", res2.DroppedLogs)
	}
}
