package core

import (
	"fmt"

	"coolstream/internal/metrics"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/stats"
)

// classNames lists user classes in presentation order.
var classNames = []netmodel.UserClass{
	netmodel.Direct, netmodel.UPnP, netmodel.NAT, netmodel.Firewall,
}

// Fig3a builds the user-type distribution table: inferred fractions
// (the paper's methodology) against ground truth, plus classifier
// accuracy.
func (r *Result) Fig3a() *metrics.Table {
	t := &metrics.Table{
		Title:  "Fig. 3a — user type distribution",
		Header: []string{"class", "inferred_frac", "true_frac"},
	}
	inferred := r.Analysis.ClassDistribution()
	var truth [netmodel.NumClasses]float64
	total := 0
	for _, s := range r.Analysis.Sessions {
		if s.HasTruth {
			truth[s.TrueClass]++
			total++
		}
	}
	if total > 0 {
		for c := range truth {
			truth[c] /= float64(total)
		}
	}
	for _, c := range classNames {
		t.AddRowf("%s\t%.3f\t%.3f", c.String(), inferred[c], truth[c])
	}
	t.AddRowf("classifier_accuracy\t%.3f\t", r.Analysis.ClassifierAccuracy())
	return t
}

// Fig3b builds the upload-contribution table: byte share by class, the
// reachable (direct+UPnP) population vs byte share, the top-30% share
// and the Gini coefficient.
func (r *Result) Fig3b() *metrics.Table {
	rep := r.Analysis.Contribution()
	t := &metrics.Table{
		Title:  "Fig. 3b — upload contribution",
		Header: []string{"metric", "value"},
	}
	for _, c := range classNames {
		t.AddRowf("share[%s]\t%.3f", c.String(), rep.ShareByClass[c])
	}
	t.AddRowf("reachable_population_frac\t%.3f", rep.ReachablePopulation)
	t.AddRowf("reachable_upload_share\t%.3f", rep.ReachableShare)
	t.AddRowf("top30pct_upload_share\t%.3f", rep.Top30Share)
	t.AddRowf("gini\t%.3f", rep.Gini)
	return t
}

// Fig4 builds the overlay-structure evolution from topology snapshots:
// the convergence towards direct/UPnP parents and the rarity of
// NAT↔NAT random links.
func (r *Result) Fig4() *metrics.Table {
	t := &metrics.Table{
		Title: "Fig. 4 — overlay structure over time",
		Header: []string{"t", "peers", "ready", "frac_links_to_reachable",
			"frac_random_links", "frac_peers_all_reachable_parents", "mean_depth", "max_depth"},
	}
	for _, s := range r.Snapshots {
		t.AddRowf("%s\t%d\t%d\t%.3f\t%.3f\t%.3f\t%.2f\t%d",
			s.At.String(), s.ActivePeers, s.ReadyPeers,
			s.FractionReachableLinks(), s.FractionRandomLinks(), s.FractionClogged(),
			s.MeanDepth, s.MaxDepth)
	}
	return t
}

// Fig5 builds the concurrent-sessions evolution (whole run and the
// evening window when the run is a day scenario).
func (r *Result) Fig5(bucket sim.Time) *metrics.Table {
	t := &metrics.Table{
		Title:  "Fig. 5 — concurrent sessions over time",
		Header: []string{"t", "sessions", "join_rate_per_s"},
	}
	horizon := r.Horizon()
	conc := r.Analysis.Concurrency(bucket, horizon)
	rate := r.Analysis.JoinRate(bucket, horizon)
	for i, p := range conc {
		jr := 0.0
		if i < len(rate) {
			jr = rate[i].Value
		}
		t.AddRowf("%s\t%.0f\t%.3f", p.At.String(), p.Value, jr)
	}
	return t
}

// Fig6 builds the startup-delay CDF table: deciles of the
// start-subscription time, the media-ready time and their difference.
func (r *Result) Fig6() *metrics.Table {
	sub, ready, diff := r.Analysis.StartupDelays()
	t := &metrics.Table{
		Title:  "Fig. 6 — startup delay CDFs (seconds)",
		Header: []string{"quantile", "start_subscription", "media_ready", "difference"},
	}
	if sub.N() == 0 || ready.N() == 0 {
		return t
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		t.AddRowf("p%02.0f\t%.2f\t%.2f\t%.2f", q*100, sub.Quantile(q), ready.Quantile(q), diff.Quantile(q))
	}
	t.AddRowf("mean\t%.2f\t%.2f\t%.2f", sub.Mean(), ready.Mean(), diff.Mean())
	t.AddRowf("n\t%d\t%d\t%d", sub.N(), ready.N(), diff.N())
	return t
}

// Fig7Windows partitions the run into the paper's four day periods,
// scaled to the configured horizon.
func (r *Result) Fig7Windows() [][2]sim.Time {
	h := float64(r.Horizon())
	frac := func(f float64) sim.Time { return sim.Time(h * f) }
	// Paper periods (i) 01:00-13:29 (ii) 13:30-17:29 (iii) 17:30-20:29
	// (iv) 20:30-23:59, mapped proportionally onto the horizon.
	return [][2]sim.Time{
		{frac(1.0 / 24), frac(13.5 / 24)},
		{frac(13.5 / 24), frac(17.5 / 24)},
		{frac(17.5 / 24), frac(20.5 / 24)},
		{frac(20.5 / 24), frac(1)},
	}
}

// Fig7 builds the media-ready-time distribution per day period.
func (r *Result) Fig7() *metrics.Table {
	windows := r.Fig7Windows()
	samples := r.Analysis.ReadyDelaysInWindows(windows)
	t := &metrics.Table{
		Title:  "Fig. 7 — media ready time by day period (seconds)",
		Header: []string{"period", "n", "median", "p90", "mean"},
	}
	names := []string{"(i) night-morning", "(ii) afternoon", "(iii) evening ramp", "(iv) prime time"}
	for i, s := range samples {
		if s.N() == 0 {
			t.AddRowf("%s\t0\t-\t-\t-", names[i])
			continue
		}
		t.AddRowf("%s\t%d\t%.2f\t%.2f\t%.2f", names[i], s.N(), s.Median(), s.Quantile(0.9), s.Mean())
	}
	return t
}

// Fig8 builds continuity-by-class: the scalar means plus the bucketed
// time series.
func (r *Result) Fig8(bucket sim.Time) *metrics.Table {
	means := r.Analysis.MeanContinuityByClass()
	t := &metrics.Table{
		Title:  "Fig. 8 — continuity index by user type",
		Header: []string{"class", "mean_continuity"},
	}
	for _, c := range classNames {
		t.AddRowf("%s\t%.4f", c.String(), means[c])
	}
	t.AddRowf("overall\t%.4f", r.Analysis.MeanContinuity())
	return t
}

// Fig8Series returns the per-class CI time series for plotting.
func (r *Result) Fig8Series(bucket sim.Time) [netmodel.NumClasses][]metrics.SeriesPoint {
	return r.Analysis.ContinuityByClass(bucket, r.Horizon())
}

// Fig9a builds continuity vs system size.
func (r *Result) Fig9a(bucket sim.Time, bins int) *metrics.Table {
	load := r.Analysis.Concurrency(bucket, r.Horizon())
	pts := r.Analysis.ContinuityVsLoad(load, bucket, r.Horizon(), bins)
	t := &metrics.Table{
		Title:  "Fig. 9a — continuity vs system size",
		Header: []string{"system_size", "mean_continuity", "buckets"},
	}
	for _, p := range pts {
		t.AddRowf("%.0f\t%.4f\t%d", p.X, p.Y, p.N)
	}
	return t
}

// Fig9b builds continuity vs join rate.
func (r *Result) Fig9b(bucket sim.Time, bins int) *metrics.Table {
	load := r.Analysis.JoinRate(bucket, r.Horizon())
	pts := r.Analysis.ContinuityVsLoad(load, bucket, r.Horizon(), bins)
	t := &metrics.Table{
		Title:  "Fig. 9b — continuity vs join rate",
		Header: []string{"join_rate_per_s", "mean_continuity", "buckets"},
	}
	for _, p := range pts {
		t.AddRowf("%.3f\t%.4f\t%d", p.X, p.Y, p.N)
	}
	return t
}

// Fig10a builds the session-duration distribution on log-spaced bins.
func (r *Result) Fig10a() *metrics.Table {
	durations := r.Analysis.Durations()
	t := &metrics.Table{
		Title:  "Fig. 10a — session duration distribution",
		Header: []string{"range_s", "fraction"},
	}
	if durations.N() == 0 {
		return t
	}
	h := stats.NewLogHistogram(1, 100000, 10)
	for _, d := range durations.Values() {
		h.Add(d)
	}
	for i := 0; i < h.Bins(); i++ {
		lo, hi := h.BinBounds(i)
		t.AddRowf("%.0f-%.0f\t%.4f", lo, hi, h.Fraction(i))
	}
	cutoff := r.Config.ScaledCutoff(sim.Minute)
	t.AddRowf("short(<1min)_frac\t%.4f", r.Analysis.ShortSessionFraction(cutoff))
	t.AddRowf("n\t%d", durations.N())
	return t
}

// Fig10b builds the retry distribution.
func (r *Result) Fig10b() *metrics.Table {
	dist := r.Analysis.RetryDistribution(5)
	t := &metrics.Table{
		Title:  "Fig. 10b — join re-try distribution",
		Header: []string{"failed_attempts_before_success", "fraction_of_users"},
	}
	for k, frac := range dist {
		label := fmt.Sprintf("%d", k)
		if k == len(dist)-1 {
			label = fmt.Sprintf(">=%d", k)
		}
		t.AddRowf("%s\t%.4f", label, frac)
	}
	return t
}

// Fig10c builds the retry-under-faults table: the Fig. 10b per-user
// failed-attempt histogram re-measured with fault injection active,
// alongside the fault firing counters and the log-pipeline losses that
// produced it. The paper's Fig. 10b retry tail is driven by exactly
// these failure classes (unreachable trackers, refused connections);
// this artifact ties the reproduced distribution to its causes.
func (r *Result) Fig10c() *metrics.Table {
	dist := r.Analysis.RetryDistribution(6)
	t := &metrics.Table{
		Title:  "Fig. 10c — join re-tries under fault injection",
		Header: []string{"metric", "value"},
	}
	for k, frac := range dist {
		label := fmt.Sprintf("failed_attempts[%d]", k)
		if k == len(dist)-1 {
			label = fmt.Sprintf("failed_attempts[>=%d]", k)
		}
		t.AddRowf("%s\t%.4f", label, frac)
	}
	t.AddRowf("tracker_refusals\t%d", r.FaultStats.TrackerRefusals)
	t.AddRowf("nat_refusals\t%d", r.FaultStats.NATRefusals)
	t.AddRowf("partner_kills\t%d", r.FaultStats.PartnerKills)
	t.AddRowf("logs_dropped\t%d", r.DroppedLogs)
	t.AddRowf("logs_flushed_late\t%d", r.FlushedLogs)
	t.AddRowf("sessions_failed\t%d", r.FailedSessions)
	return t
}

// Summary builds the run-level counter table.
func (r *Result) Summary() *metrics.Table {
	t := &metrics.Table{
		Title:  "run summary",
		Header: []string{"metric", "value"},
	}
	t.AddRowf("sessions_joined\t%d", r.JoinedSessions)
	t.AddRowf("sessions_ready\t%d", r.ReadySessions)
	t.AddRowf("sessions_failed\t%d", r.FailedSessions)
	t.AddRowf("sessions_stall_abandoned\t%d", r.AbandonSessions)
	t.AddRowf("parent_adaptations\t%d", r.Adaptations)
	t.AddRowf("peak_concurrent_peers\t%d", r.PeakConcurrent)
	t.AddRowf("mean_continuity\t%.4f", r.Analysis.MeanContinuity())
	t.AddRowf("log_records\t%d", len(r.Records))
	return t
}
