package core

import (
	"fmt"
	"os"
	"path/filepath"

	"coolstream/internal/logsys"
	"coolstream/internal/metrics"
	"coolstream/internal/sim"
	"coolstream/internal/trace"
)

// WriteArtifacts persists a run's full artifact set into dir
// (created if missing):
//
//	run.log              — log-server wire format, one log string per line
//	run.jsonl            — JSONL record dump for re-analysis
//	sessions.csv         — Fig. 5 concurrency series
//	joinrate.csv         — arrivals per second series
//	continuity_<c>.csv   — per-class Fig. 8 series
//	topology.csv         — Fig. 4 snapshot table (CSV form)
//	figures.txt          — every figure table, rendered
func (r *Result) WriteArtifacts(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("core: artifact %s: %w", name, err)
		}
		return f.Close()
	}

	if err := write("run.log", func(f *os.File) error {
		sink := logsys.NewWriterSink(f)
		for _, rec := range r.Records {
			sink.Log(rec)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := write("run.jsonl", func(f *os.File) error {
		return trace.WriteRecords(f, r.Records)
	}); err != nil {
		return err
	}
	bucket := r.Horizon() / 200
	if bucket < sim.Second {
		bucket = sim.Second
	}
	if err := write("sessions.csv", func(f *os.File) error {
		return trace.WriteSeries(f, "sessions", r.Analysis.Concurrency(bucket, r.Horizon()))
	}); err != nil {
		return err
	}
	if err := write("joinrate.csv", func(f *os.File) error {
		return trace.WriteSeries(f, "joins_per_s", r.Analysis.JoinRate(bucket, r.Horizon()))
	}); err != nil {
		return err
	}
	series := r.Fig8Series(bucket)
	for c, pts := range series {
		if len(pts) == 0 {
			continue
		}
		name := fmt.Sprintf("continuity_%s.csv", classNames[c].String())
		pts := pts
		if err := write(name, func(f *os.File) error {
			return trace.WriteSeries(f, "continuity", pts)
		}); err != nil {
			return err
		}
	}
	if err := write("topology.csv", func(f *os.File) error {
		t := r.Fig4()
		t.RenderCSV(f)
		return nil
	}); err != nil {
		return err
	}
	return write("figures.txt", func(f *os.File) error {
		for _, t := range []*metrics.Table{
			r.Summary(), r.Fig3a(), r.Fig3b(), r.Fig4(), r.Fig5(bucket),
			r.Fig6(), r.Fig7(), r.Fig8(bucket), r.Fig9a(bucket, 6),
			r.Fig9b(bucket, 6), r.Fig10a(), r.Fig10b(),
		} {
			t.Render(f)
			fmt.Fprintln(f)
		}
		return nil
	})
}
