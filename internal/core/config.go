// Package core wires the full Coolstreaming reproduction together: it
// builds a World from a Config, drives a workload scenario through it,
// collects logs and topology snapshots, and exposes figure-builder
// methods that regenerate each of the paper's tables and figures from
// the collected measurements. This is the package the examples, CLI
// tools and benchmarks consume.
package core

import (
	"fmt"

	"coolstream/internal/faults"
	"coolstream/internal/gossip"
	"coolstream/internal/netmodel"
	"coolstream/internal/peer"
	"coolstream/internal/sim"
	"coolstream/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	// Seed makes the whole run reproducible.
	Seed uint64
	// Params are the protocol parameters (Table I).
	Params peer.Params
	// Tick is the control-tick period of the hybrid simulator.
	Tick sim.Time
	// Servers is the dedicated-server count (the deployment used 24).
	Servers int
	// ServerUploadBps is each server's upload capacity.
	ServerUploadBps float64
	// LatencyMin/LatencyMax bound pairwise one-way delays.
	LatencyMin, LatencyMax sim.Time
	// MCachePolicy selects the membership replacement policy:
	// "random" (deployed) or "stability" (the paper's improvement).
	MCachePolicy string
	// Warmup runs the server tier alone before the first join so the
	// live edge is ahead of the Tp join shift.
	Warmup sim.Time
	// Drain keeps simulating after the last scheduled arrival so
	// sessions wind down.
	Drain sim.Time
	// Workload generates the user arrivals.
	Workload workload.Options
	// PresetScenario, when non-nil, is used verbatim instead of
	// generating arrivals from Workload (e.g. a scenario loaded from a
	// file via workload.ReadScenario). Its horizon replaces
	// Workload.Horizon.
	PresetScenario *workload.Scenario
	// SnapshotPeriod samples overlay topology (0 disables).
	SnapshotPeriod sim.Time
	// StallContinuity / StallAbandonProb configure frustrated-user
	// churn (see peer.World).
	StallContinuity  float64
	StallAbandonProb float64
	// SessionTimeScale records how much the workload compresses real
	// session durations (1 = real time). Analyses with real-time
	// cutoffs (e.g. the Fig. 10a "< 1 minute" spike) scale by it.
	SessionTimeScale float64
	// CrashProb is the fraction of user departures that are ungraceful
	// (no teardown; partners detect via failed BM exchanges).
	CrashProb float64
	// Faults is the deterministic fault-injection plan; the zero value
	// is fault-free (see internal/faults).
	Faults faults.Config
	// Retry is the capped-exponential join/re-contact backoff with
	// deterministic jitter; the zero value keeps the fixed
	// Params.RetryDelay.
	Retry faults.Backoff
	// LogBufferCap bounds the client-side report buffer used during
	// log-server outage windows (0 selects logsys.DefaultLogBuffer).
	LogBufferCap int
	// DisableControlWheel restores the legacy O(population) per-tick
	// control sweep instead of the due-driven wheel scheduler — the A/B
	// switch for determinism property tests and scaling comparisons.
	// Both modes are bit-identical; the wheel is just faster.
	DisableControlWheel bool
	// Shards partitions the world into per-core shards with parallel,
	// deferred-effect control (DESIGN.md §11). 0 and 1 select the
	// single-shard legacy engine; 0 additionally lets tools map it to
	// GOMAXPROCS before building the Config. Shards > 1 requires the
	// control wheel (incompatible with DisableControlWheel). Results
	// are identical for every Shards ≥ 2 at any GOMAXPROCS, but are a
	// different (equally valid) serialization than the sequential
	// engine's.
	Shards int
	// DeferControl forces the deferred-effect serialization at one
	// shard — the A/B hook pinning Shards=1 ≡ Shards=N.
	DeferControl bool
	// LabelPhases tags every tick-phase worker with a runtime/pprof
	// label (phase=allocate/advance/playback/control/drain/merge) so a
	// CPU profile captured alongside the run splits by phase. Costs a
	// small per-worker-call allocation — tools enable it only when a
	// profile is actually being collected.
	LabelPhases bool
}

// ScaledCutoff converts a real-time duration to the workload's
// compressed time base.
func (c Config) ScaledCutoff(d sim.Time) sim.Time {
	if c.SessionTimeScale <= 0 || c.SessionTimeScale >= 1 {
		return d
	}
	return sim.Time(float64(d) * c.SessionTimeScale)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Tick <= 0 {
		return fmt.Errorf("core: tick %v", c.Tick)
	}
	if c.Servers < 1 {
		return fmt.Errorf("core: %d servers; the tier seeds the overlay", c.Servers)
	}
	if c.ServerUploadBps <= c.Params.Layout.RateBps {
		return fmt.Errorf("core: server upload %v must exceed the stream rate", c.ServerUploadBps)
	}
	if c.LatencyMax < c.LatencyMin || c.LatencyMin < 0 {
		return fmt.Errorf("core: latency bounds [%v,%v]", c.LatencyMin, c.LatencyMax)
	}
	if _, err := c.policy(); err != nil {
		return err
	}
	if c.Warmup < 0 || c.Drain < 0 {
		return fmt.Errorf("core: negative warmup/drain")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	if c.LogBufferCap < 0 {
		return fmt.Errorf("core: LogBufferCap %d", c.LogBufferCap)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: Shards %d", c.Shards)
	}
	if c.Shards > 1 && c.DisableControlWheel {
		return fmt.Errorf("core: Shards %d requires the control wheel (DisableControlWheel is set)", c.Shards)
	}
	if c.PresetScenario != nil {
		if c.PresetScenario.Horizon <= 0 {
			return fmt.Errorf("core: preset scenario horizon %v", c.PresetScenario.Horizon)
		}
		return nil
	}
	return c.Workload.Validate()
}

func (c Config) policy() (gossip.Policy, error) {
	switch c.MCachePolicy {
	case "", "random":
		return gossip.RandomReplace{}, nil
	case "stability":
		return gossip.StabilityAware{}, nil
	}
	return nil, fmt.Errorf("core: unknown mCache policy %q", c.MCachePolicy)
}

// Horizon returns the total simulated duration.
func (c Config) Horizon() sim.Time {
	h := c.Workload.Horizon
	if c.PresetScenario != nil {
		h = c.PresetScenario.Horizon
	}
	return c.Warmup + h + c.Drain
}

// DefaultConfig returns a mid-sized steady-state configuration: a few
// hundred concurrent peers at a constant arrival rate — the starting
// point the presets below specialise.
func DefaultConfig() Config {
	p := peer.DefaultParams()
	horizon := 20 * sim.Minute
	return Config{
		Seed:             1,
		Params:           p,
		Tick:             sim.Second,
		Servers:          6,
		ServerUploadBps:  25 * p.Layout.RateBps, // ≈ 100 Mbps-class at 768 kbps... scaled tier
		LatencyMin:       20 * sim.Millisecond,
		LatencyMax:       250 * sim.Millisecond,
		MCachePolicy:     "random",
		Warmup:           30 * sim.Second,
		Drain:            2 * sim.Minute,
		SnapshotPeriod:   time30s,
		StallContinuity:  0.85,
		StallAbandonProb: 0.7,
		SessionTimeScale: 0.1,
		CrashProb:        0.3,
		Workload: workload.Options{
			Profile:  workload.Constant(0.5),
			Horizon:  horizon,
			Mix:      netmodel.DefaultClassMix(),
			Capacity: netmodel.DefaultCapacityProfile(p.Layout.RateBps),
			Sessions: workload.DefaultSessionModel(0.1),
		},
	}
}

const time30s = 30 * sim.Second

// DayConfig returns the compressed broadcast-day scenario standing in
// for the 2006-09-27 traces: a 24 h day compressed into `dayLength`
// with the Fig. 5 diurnal shape, evening flash crowd and 22:00
// program-end cliff. baseRate tunes population size.
func DayConfig(dayLength sim.Time, baseRate float64, seed uint64) Config {
	c := DefaultConfig()
	c.Seed = seed
	timeScale := float64(dayLength) / float64(24*sim.Hour)
	// Protocol timing (handshakes, buffering, Table I thresholds) does
	// not compress with the day, so session durations must not shrink
	// below the startup scale either: floor the session time scale at
	// 1/60 (durations as if the day were at most 60× compressed).
	sessionScale := timeScale
	if sessionScale < 1.0/60 {
		sessionScale = 1.0 / 60
	}
	c.Workload = workload.Options{
		Profile:    workload.DiurnalProfile(dayLength, baseRate, 6),
		Horizon:    dayLength,
		Mix:        netmodel.DefaultClassMix(),
		Capacity:   netmodel.DefaultCapacityProfile(c.Params.Layout.RateBps),
		Sessions:   workload.DefaultSessionModel(sessionScale),
		ProgramEnd: workload.ProgramEnd(dayLength),
		// (sessionScale is also recorded on the Config below.)
		EndJitter: sim.Time(float64(2*sim.Minute) * timeScale * 24),
	}
	c.Drain = dayLength / 24
	c.SessionTimeScale = sessionScale
	// Keep the 5-minute-of-real-day reporting cadence in compressed
	// time, with a floor so reports stay meaningful.
	c.Params.ReportPeriod = dayLength / 288
	if c.Params.ReportPeriod < 10*sim.Second {
		c.Params.ReportPeriod = 10 * sim.Second
	}
	return c
}

// FlashCrowdConfig returns a warm steady system hit by an arrival
// burst — the Fig. 7 / Fig. 9b regime. burstRate is in joins/second.
func FlashCrowdConfig(warm, burst sim.Time, quietRate, burstRate float64, seed uint64) Config {
	c := DefaultConfig()
	c.Seed = seed
	c.Workload.Profile = workload.FlashCrowd(warm, burst, quietRate, burstRate)
	c.Workload.Horizon = warm + burst + warm
	return c
}

// ChaosConfig returns the fault-injection scenario: a steady arrival
// stream hit by a mid-run tracker outage, a log-server outage, NAT
// refusals, mid-session partner kills and a burst-loss window, with
// capped-exponential join backoff. Sized so users joining inside the
// tracker outage fail and retry several times (a non-degenerate
// Fig. 10-style retry histogram) while earlier joiners succeed at once.
func ChaosConfig(seed uint64) Config {
	c := DefaultConfig()
	c.Seed = seed
	c.Workload.Profile = workload.Constant(0.8)
	c.Workload.Horizon = 5 * sim.Minute
	c.Drain = sim.Minute
	// A short join timeout makes each tracker-outage failure cheap, so
	// one outage window produces multi-failure users.
	c.Params.JoinTimeout = 15 * sim.Second
	c.Retry = faults.Backoff{Base: 2 * sim.Second, Cap: 20 * sim.Second, JitterFrac: 0.5}
	c.Faults = faults.Config{
		// Warmup is 30s, so arrivals span [30s, 330s): the outage
		// catches roughly a quarter of them mid-join.
		TrackerOutages:  []faults.Window{{Start: 70 * sim.Second, End: 160 * sim.Second}},
		LogOutages:      []faults.Window{{Start: 3 * sim.Minute, End: 210 * sim.Second}},
		NATRefusalProb:  0.02,
		PartnerKillRate: 0.2,
		BurstLoss: []faults.LossWindow{
			{Window: faults.Window{Start: 220 * sim.Second, End: 250 * sim.Second}, Frac: 0.5},
		},
	}
	return c
}

// SteadyConfig returns a constant-arrival configuration whose
// stationary population scales with rate (Little's law: rate × mean
// session duration).
func SteadyConfig(rate float64, horizon sim.Time, seed uint64) Config {
	c := DefaultConfig()
	c.Seed = seed
	c.Workload.Profile = workload.Constant(rate)
	c.Workload.Horizon = horizon
	return c
}
