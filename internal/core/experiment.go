package core

import (
	"coolstream/internal/logsys"
	"coolstream/internal/metrics"
	"coolstream/internal/netmodel"
	"coolstream/internal/peer"
	"coolstream/internal/sim"
	"coolstream/internal/workload"
	"coolstream/internal/xrand"
)

// Result carries everything a run produced.
type Result struct {
	Config   Config
	Records  []logsys.Record
	Analysis *metrics.Analysis
	// Snapshots are periodic topology measurements (direct, not
	// log-derived — the simulator's privileged view for Fig. 4).
	Snapshots []peer.TopologySnapshot
	// Scenario is the workload that was applied.
	Scenario workload.Scenario

	// Counters copied from the world.
	JoinedSessions  int
	FailedSessions  int
	ReadySessions   int
	AbandonSessions int
	Adaptations     int
	// PeakConcurrent is the largest observed active peer count.
	PeakConcurrent int
}

// Horizon returns the run's total virtual duration.
func (r *Result) Horizon() sim.Time { return r.Config.Horizon() }

// Run executes one full experiment: build the world, apply the
// workload, simulate to the horizon, and analyse the logs.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	policy, err := cfg.policy()
	if err != nil {
		return nil, err
	}
	engine := sim.NewEngine(cfg.Tick)
	sink := &logsys.MemorySink{}
	latency := netmodel.UniformLatency{Min: cfg.LatencyMin, Max: cfg.LatencyMax, Seed: cfg.Seed ^ 0x1a7e9c3}
	world, err := peer.NewWorld(cfg.Params, engine, sink, latency, policy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.StallContinuity > 0 {
		world.StallContinuity = cfg.StallContinuity
		world.StallAbandonProb = cfg.StallAbandonProb
	}
	world.CrashProb = cfg.CrashProb
	for i := 0; i < cfg.Servers; i++ {
		world.AddServer(cfg.ServerUploadBps)
	}

	// Materialise the workload (or take the preset verbatim).
	var scenario workload.Scenario
	if cfg.PresetScenario != nil {
		scenario = *cfg.PresetScenario
	} else {
		scenRNG := xrand.New(cfg.Seed).SplitLabeled("scenario")
		scenario, err = workload.Generate(cfg.Workload, scenRNG)
		if err != nil {
			return nil, err
		}
	}
	for _, spec := range scenario.Specs {
		spec := spec
		engine.Schedule(cfg.Warmup+spec.At, func() {
			world.Join(spec.UserID, spec.Endpoint, spec.Watch, spec.Patience, 0)
		})
	}

	res := &Result{Config: cfg, Scenario: scenario}

	// Periodic topology snapshots and peak tracking.
	if cfg.SnapshotPeriod > 0 {
		var snapshotLoop func()
		snapshotLoop = func() {
			res.Snapshots = append(res.Snapshots, world.Snapshot())
			if engine.Now()+cfg.SnapshotPeriod <= cfg.Horizon() {
				engine.After(cfg.SnapshotPeriod, snapshotLoop)
			}
		}
		engine.After(cfg.SnapshotPeriod, snapshotLoop)
	}
	engine.OnTick(func(_, _ sim.Time) {
		if n := world.ActivePeerCount(); n > res.PeakConcurrent {
			res.PeakConcurrent = n
		}
	})

	engine.Run(cfg.Horizon())

	res.Records = sink.Records()
	res.Analysis = metrics.Analyze(res.Records)
	res.JoinedSessions = world.JoinedSessions
	res.FailedSessions = world.FailedSessions
	res.ReadySessions = world.ReadySessions
	res.AbandonSessions = world.AbandonSessions
	res.Adaptations = world.Adaptations
	return res, nil
}
