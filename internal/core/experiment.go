package core

import (
	"fmt"
	"hash/fnv"

	"coolstream/internal/faults"
	"coolstream/internal/logsys"
	"coolstream/internal/metrics"
	"coolstream/internal/netmodel"
	"coolstream/internal/peer"
	"coolstream/internal/sim"
	"coolstream/internal/workload"
	"coolstream/internal/xrand"
)

// Result carries everything a run produced.
type Result struct {
	Config   Config
	Records  []logsys.Record
	Analysis *metrics.Analysis
	// Snapshots are periodic topology measurements (direct, not
	// log-derived — the simulator's privileged view for Fig. 4).
	Snapshots []peer.TopologySnapshot
	// Scenario is the workload that was applied.
	Scenario workload.Scenario

	// Counters copied from the world.
	JoinedSessions  int
	FailedSessions  int
	ReadySessions   int
	AbandonSessions int
	Adaptations     int
	// PeakConcurrent is the largest observed active peer count.
	PeakConcurrent int

	// FaultStats counts fault firings when a fault plan was configured.
	FaultStats faults.Stats
	// ShardStats and PhaseStats carry the per-shard control-plane load
	// and the per-phase wall-time split. Populated only for sharded runs
	// (Config.Shards > 1), where phase metering is always on.
	ShardStats []peer.ShardStat
	PhaseStats peer.PhaseNanos
	// DroppedLogs counts reports lost to log-buffer overflow during
	// log-server outages; FlushedLogs counts reports delivered late at
	// run teardown (still pending when the horizon was reached).
	DroppedLogs int
	FlushedLogs int
}

// Digest folds every emitted log record, the run counters and the
// fault firing counters into one FNV-1a hash: two runs with equal
// digests behaved identically in every externally observable way,
// *including* which faults fired. This is the reproducibility check of
// the fault-injection contract (same seed + same plan ⇒ same digest).
func (r *Result) Digest() uint64 {
	h := fnv.New64a()
	for _, rec := range r.Records {
		fmt.Fprintln(h, rec.LogString())
	}
	fmt.Fprintf(h, "joined %d failed %d ready %d abandoned %d adapt %d peak %d\n",
		r.JoinedSessions, r.FailedSessions, r.ReadySessions,
		r.AbandonSessions, r.Adaptations, r.PeakConcurrent)
	fmt.Fprintf(h, "faults tracker %d nat %d kills %d dropped %d flushed %d\n",
		r.FaultStats.TrackerRefusals, r.FaultStats.NATRefusals,
		r.FaultStats.PartnerKills, r.DroppedLogs, r.FlushedLogs)
	return h.Sum64()
}

// Horizon returns the run's total virtual duration.
func (r *Result) Horizon() sim.Time { return r.Config.Horizon() }

// Run executes one full experiment: build the world, apply the
// workload, simulate to the horizon, and analyse the logs.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	policy, err := cfg.policy()
	if err != nil {
		return nil, err
	}
	engine := sim.NewEngine(cfg.Tick)
	// The collecting sink is sharded: sequential phases log through the
	// mutex-guarded shared lane, parallel phases log lock-free into
	// per-shard lanes, and the end-of-run drain merges deterministically
	// by (time, peer, kind) — the same order MemorySink produced.
	sink := logsys.NewShardedSink(0)

	// Fault plan: the world consumes the schedule directly; log-server
	// outages additionally interpose the client-side report buffer
	// between the peers and the collecting sink.
	var schedule *faults.Schedule
	var buffered *logsys.BufferedSink
	worldSink := logsys.Sink(sink)
	if cfg.Faults.Enabled() {
		schedule, err = faults.NewSchedule(cfg.Faults)
		if err != nil {
			return nil, err
		}
		if len(cfg.Faults.LogOutages) > 0 {
			buffered = logsys.NewBufferedSink(sink, cfg.LogBufferCap, func(rec logsys.Record) bool {
				return schedule.LogDown(rec.At)
			})
			worldSink = buffered
		}
	}

	latency := netmodel.UniformLatency{Min: cfg.LatencyMin, Max: cfg.LatencyMax, Seed: cfg.Seed ^ 0x1a7e9c3}
	world, err := peer.NewWorld(cfg.Params, engine, worldSink, latency, policy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	world.Faults = schedule
	world.Retry = cfg.Retry
	world.FullSweepControl = cfg.DisableControlWheel
	if cfg.Shards > 1 {
		if err := world.SetShards(cfg.Shards); err != nil {
			return nil, err
		}
		world.MeterPhases(true)
	}
	world.ForceDeferredControl = cfg.DeferControl
	world.LabelPhases(cfg.LabelPhases)
	if cfg.StallContinuity > 0 {
		world.StallContinuity = cfg.StallContinuity
		world.StallAbandonProb = cfg.StallAbandonProb
	}
	world.CrashProb = cfg.CrashProb
	for i := 0; i < cfg.Servers; i++ {
		world.AddServer(cfg.ServerUploadBps)
	}

	// Materialise the workload (or take the preset verbatim).
	var scenario workload.Scenario
	if cfg.PresetScenario != nil {
		scenario = *cfg.PresetScenario
	} else {
		scenRNG := xrand.New(cfg.Seed).SplitLabeled("scenario")
		scenario, err = workload.Generate(cfg.Workload, scenRNG)
		if err != nil {
			return nil, err
		}
	}
	for _, spec := range scenario.Specs {
		spec := spec
		engine.Schedule(cfg.Warmup+spec.At, func() {
			world.Join(spec.UserID, spec.Endpoint, spec.Watch, spec.Patience, 0)
		})
	}

	res := &Result{Config: cfg, Scenario: scenario}

	// Periodic topology snapshots and peak tracking.
	if cfg.SnapshotPeriod > 0 {
		var snapshotLoop func()
		snapshotLoop = func() {
			res.Snapshots = append(res.Snapshots, world.Snapshot())
			if engine.Now()+cfg.SnapshotPeriod <= cfg.Horizon() {
				engine.After(cfg.SnapshotPeriod, snapshotLoop)
			}
		}
		engine.After(cfg.SnapshotPeriod, snapshotLoop)
	}
	engine.OnTick(func(_, _ sim.Time) {
		if n := world.ActivePeerCount(); n > res.PeakConcurrent {
			res.PeakConcurrent = n
		}
	})

	engine.Run(cfg.Horizon())

	if buffered != nil {
		// Reports still queued when the run ends are delivered late at
		// teardown (the deployed reporter flushes on unload); overflow
		// losses stay lost and are surfaced as a counter.
		res.FlushedLogs = buffered.Flush()
		res.DroppedLogs = buffered.Dropped()
	}
	if schedule != nil {
		res.FaultStats = schedule.Stats
	}
	res.Records = sink.Drain()
	res.Analysis = metrics.Analyze(res.Records)
	res.JoinedSessions = world.JoinedSessions
	res.FailedSessions = world.FailedSessions
	res.ReadySessions = world.ReadySessions
	res.AbandonSessions = world.AbandonSessions
	res.Adaptations = world.Adaptations
	if cfg.Shards > 1 {
		res.ShardStats = world.ShardStats()
		res.PhaseStats = world.PhaseStats()
	}
	return res, nil
}
