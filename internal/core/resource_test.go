package core

import (
	"testing"
)

func TestResourceSweepConfigValid(t *testing.T) {
	for _, scale := range []float64{0.2, 1, 3} {
		c := ResourceSweepConfig(scale, 1)
		if err := c.Validate(); err != nil {
			t.Fatalf("scale %v: %v", scale, err)
		}
	}
}

func TestResourceIndexTracksCapacityScale(t *testing.T) {
	run := func(scale float64) (*Result, float64) {
		c := ResourceSweepConfig(scale, 4)
		c.Workload.Horizon = 5 * minute
		c.Drain = time30s
		c.Params.ReportPeriod = time30s
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return res, res.MeanResourceIndex(5)
	}
	_, lowIdx := run(0.3)
	_, highIdx := run(3)
	if lowIdx <= 0 || highIdx <= 0 {
		t.Fatalf("resource indices not measured: %v %v", lowIdx, highIdx)
	}
	if highIdx <= lowIdx*2 {
		t.Fatalf("capacity scaling did not move the resource index: %v -> %v", lowIdx, highIdx)
	}
}

func TestContinuityDegradesBelowCriticalIndex(t *testing.T) {
	run := func(scale float64) (ci, idx float64) {
		c := ResourceSweepConfig(scale, 7)
		c.Workload.Horizon = 6 * minute
		c.Drain = time30s
		c.Params.ReportPeriod = time30s
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return res.Analysis.MeanContinuity(), res.MeanResourceIndex(5)
	}
	ciStarved, idxStarved := run(0.15)
	ciRich, idxRich := run(3)
	if idxRich <= 1 {
		t.Skipf("rich run index %v unexpectedly below critical; population too small", idxRich)
	}
	// Note: even at nominal index > 1 much of the supply sits behind
	// NATs and is hard to use, so the rich bar is 0.9, not 0.99.
	if ciRich < 0.9 {
		t.Fatalf("rich system continuity %.3f too low (index %.2f)", ciRich, idxRich)
	}
	// The starved system must do visibly worse — the §V-E critical
	// value in action.
	if ciStarved >= ciRich-0.02 {
		t.Fatalf("no degradation below critical index: starved CI %.4f (idx %.2f) vs rich CI %.4f (idx %.2f)",
			ciStarved, idxStarved, ciRich, idxRich)
	}
}

func TestMeanResourceIndexEmpty(t *testing.T) {
	r := &Result{}
	if r.MeanResourceIndex(1) != 0 {
		t.Fatal("empty result index not 0")
	}
}

const minute = 60 * 1000
