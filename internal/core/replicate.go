package core

import (
	"fmt"
	"math"

	"coolstream/internal/metrics"
	"coolstream/internal/stats"
)

// Metric is one scalar extracted from a run for replication studies.
type Metric struct {
	Name    string
	Extract func(*Result) float64
}

// StandardMetrics are the headline quantities reported with error bars
// by the replicated experiments.
func StandardMetrics() []Metric {
	return []Metric{
		{"mean_continuity", func(r *Result) float64 { return r.Analysis.MeanContinuity() }},
		{"ready_median_s", func(r *Result) float64 {
			_, ready, _ := r.Analysis.StartupDelays()
			if ready.N() == 0 {
				return math.NaN()
			}
			return ready.Median()
		}},
		{"peak_concurrent", func(r *Result) float64 { return float64(r.PeakConcurrent) }},
		{"failed_frac", func(r *Result) float64 {
			if r.JoinedSessions == 0 {
				return math.NaN()
			}
			return float64(r.FailedSessions) / float64(r.JoinedSessions)
		}},
	}
}

// Replication summarises one metric across seeds.
type Replication struct {
	Name string
	Mean float64
	// HalfWidth is the 95% confidence half-interval (t≈2 for small n).
	HalfWidth float64
	N         int
}

// String renders "name = mean ± halfwidth (n=N)".
func (r Replication) String() string {
	return fmt.Sprintf("%s = %.4f ± %.4f (n=%d)", r.Name, r.Mean, r.HalfWidth, r.N)
}

// Replicate runs the configuration under `seeds` different seeds and
// returns each metric's mean and 95% confidence half-width. Runs whose
// metric is NaN (e.g. no ready sessions) are excluded from that
// metric's summary.
func Replicate(cfg Config, seeds int, ms []Metric) ([]Replication, error) {
	if seeds < 2 {
		return nil, fmt.Errorf("core: replication needs >= 2 seeds")
	}
	if len(ms) == 0 {
		ms = StandardMetrics()
	}
	accs := make([]stats.Welford, len(ms))
	for s := 0; s < seeds; s++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(s)*0x9e3779b97f4a7c15
		res, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("core: replicate seed %d: %w", s, err)
		}
		for i, m := range ms {
			if v := m.Extract(res); !math.IsNaN(v) {
				accs[i].Add(v)
			}
		}
	}
	out := make([]Replication, len(ms))
	for i, m := range ms {
		n := int(accs[i].N())
		rep := Replication{Name: m.Name, N: n}
		if n > 0 {
			rep.Mean = accs[i].Mean()
		}
		if n > 1 {
			// Two-sided 95% with the small-sample t ≈ 2.0-2.8 for the
			// n we use; 2.26 (n=10) is a reasonable fixed factor for
			// the 5-10 seed range.
			rep.HalfWidth = 2.26 * accs[i].StdDev() / math.Sqrt(float64(n))
		}
		out[i] = rep
	}
	return out, nil
}

// ReplicationTable renders replications as a metrics table.
func ReplicationTable(title string, reps []Replication) *metrics.Table {
	t := &metrics.Table{
		Title:  title,
		Header: []string{"metric", "mean", "ci95_halfwidth", "n"},
	}
	for _, r := range reps {
		t.AddRowf("%s\t%.4f\t%.4f\t%d", r.Name, r.Mean, r.HalfWidth, r.N)
	}
	return t
}
