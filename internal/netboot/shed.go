// Adaptive load shedding for the tracker. The registry keeps a load
// signal — an exponentially-decayed ops-rate plus an in-flight request
// gauge — shared by both endpoints (binary TCP and the HTTP shim).
// When the signal crosses the configured bounds the servers flip
// answers to the retryable unavailable status with a retry-after hint,
// shedding NEW registrations first: renewals are what keep the
// established swarm's leases (and therefore the candidate set) alive,
// and candidate queries are what let already-admitted joiners finish,
// so both keep working until the hard threshold. The ladder:
//
//	level 1 (soft): shed registrations from unknown IDs
//	level 2 (hard, at HardFactor × the soft bounds): also shed
//	                candidate queries
//
// Leave and count are never shed — they only reduce load.
package netboot

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Shed levels, in escalation order.
const (
	shedNone = iota
	shedNew  // refuse registrations for IDs without a live lease
	shedAll  // additionally refuse candidate queries
)

// DefaultRetryAfter is the retry-after hint on shed responses when the
// config does not override it.
const DefaultRetryAfter = 500 * time.Millisecond

// ShedConfig bounds the tracker's load. The zero value disables
// shedding entirely (no meter is kept).
type ShedConfig struct {
	// MaxOpsPerSec is the soft bound on the decayed ops rate (0 = no
	// rate bound).
	MaxOpsPerSec float64
	// MaxInFlight is the soft bound on concurrently-handled requests
	// (0 = no depth bound).
	MaxInFlight int
	// HardFactor scales the soft bounds up to the hard (shed-all)
	// threshold (default 2).
	HardFactor float64
	// Tau is the decay time constant of the ops-rate estimate (default
	// 1s): roughly "ops per Tau, scaled to per-second".
	Tau time.Duration
	// RetryAfter is the hint carried on shed responses (default
	// DefaultRetryAfter).
	RetryAfter time.Duration
}

func (c *ShedConfig) applyDefaults() {
	if c.HardFactor <= 1 {
		c.HardFactor = 2
	}
	if c.Tau <= 0 {
		c.Tau = time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
}

// enabled reports whether any bound is active.
func (c ShedConfig) enabled() bool { return c.MaxOpsPerSec > 0 || c.MaxInFlight > 0 }

// ShedStats counts refusals by kind.
type ShedStats struct {
	// NewRegistrations shed at the soft level or above.
	NewRegistrations uint64
	// Candidates queries shed at the hard level.
	Candidates uint64
}

// shedState is the registry's load meter plus refusal counters.
type shedState struct {
	cfg ShedConfig

	mu     sync.Mutex
	weight float64   // decayed op count (rate ≈ weight/Tau)
	last   time.Time // last decay timestamp

	inFlight atomic.Int64
	shedRegs atomic.Uint64
	shedCand atomic.Uint64
}

// EnableShedding installs the load meter. Call before serving; a zero
// (or bound-less) config leaves shedding off.
func (r *Registry) EnableShedding(cfg ShedConfig) {
	cfg.applyDefaults()
	if !cfg.enabled() {
		return
	}
	r.shed.Store(&shedState{cfg: cfg, last: r.cfg.Clock()})
}

// BeginOp records one request entering a server handler and returns
// the release to defer. A no-op when shedding is disabled.
func (r *Registry) BeginOp() func() {
	s := r.shed.Load()
	if s == nil {
		return func() {}
	}
	now := r.cfg.Clock()
	s.mu.Lock()
	s.decayLocked(now)
	s.weight++
	s.mu.Unlock()
	s.inFlight.Add(1)
	return func() { s.inFlight.Add(-1) }
}

// decayLocked ages the op count to now.
func (s *shedState) decayLocked(now time.Time) {
	if dt := now.Sub(s.last); dt > 0 {
		s.weight *= math.Exp(-float64(dt) / float64(s.cfg.Tau))
		s.last = now
	}
}

// level computes the current shed level from the rate and depth.
func (s *shedState) level(now time.Time) int {
	s.mu.Lock()
	s.decayLocked(now)
	rate := s.weight / s.cfg.Tau.Seconds()
	s.mu.Unlock()
	depth := float64(s.inFlight.Load())
	lvl := shedNone
	if (s.cfg.MaxOpsPerSec > 0 && rate > s.cfg.MaxOpsPerSec) ||
		(s.cfg.MaxInFlight > 0 && depth > float64(s.cfg.MaxInFlight)) {
		lvl = shedNew
	}
	if (s.cfg.MaxOpsPerSec > 0 && rate > s.cfg.HardFactor*s.cfg.MaxOpsPerSec) ||
		(s.cfg.MaxInFlight > 0 && depth > s.cfg.HardFactor*float64(s.cfg.MaxInFlight)) {
		lvl = shedAll
	}
	return lvl
}

// ShedLevel reports the current escalation level (0 = serving
// everything) — the observability hook for tests and harnesses.
func (r *Registry) ShedLevel() int {
	s := r.shed.Load()
	if s == nil {
		return shedNone
	}
	return s.level(r.cfg.Clock())
}

// OpsRate returns the decayed ops-per-second estimate (0 when shedding
// is disabled).
func (r *Registry) OpsRate() float64 {
	s := r.shed.Load()
	if s == nil {
		return 0
	}
	now := r.cfg.Clock()
	s.mu.Lock()
	s.decayLocked(now)
	rate := s.weight / s.cfg.Tau.Seconds()
	s.mu.Unlock()
	return rate
}

// RetryAfter is the hint servers attach to shed/down responses (0 when
// shedding is disabled — legacy SetDown answers then carry no hint).
func (r *Registry) RetryAfter() time.Duration {
	s := r.shed.Load()
	if s == nil {
		return 0
	}
	return s.cfg.RetryAfter
}

// ShedStats returns the refusal counters.
func (r *Registry) ShedStats() ShedStats {
	s := r.shed.Load()
	if s == nil {
		return ShedStats{}
	}
	return ShedStats{
		NewRegistrations: s.shedRegs.Load(),
		Candidates:       s.shedCand.Load(),
	}
}

// AdmitRegister reports whether a register for id should be served.
// Renewals — IDs holding a live lease — always pass: refusing them
// would evict the established swarm the shed exists to protect.
func (r *Registry) AdmitRegister(id int32) bool {
	s := r.shed.Load()
	if s == nil {
		return true
	}
	if s.level(r.cfg.Clock()) < shedNew || r.registered(id) {
		return true
	}
	s.shedRegs.Add(1)
	return false
}

// AdmitCandidates reports whether a candidates query should be served
// (refused only at the hard level).
func (r *Registry) AdmitCandidates() bool {
	s := r.shed.Load()
	if s == nil {
		return true
	}
	if s.level(r.cfg.Clock()) < shedAll {
		return true
	}
	s.shedCand.Add(1)
	return false
}

// registered reports whether id holds a live (unexpired) lease.
func (r *Registry) registered(id int32) bool {
	sh := r.shardFor(id)
	sh.mu.Lock()
	l, ok := sh.peers[id]
	sh.mu.Unlock()
	return ok && l.expires.Load() > r.cfg.Clock().UnixNano()
}
