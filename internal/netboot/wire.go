// The tracker's binary wire format — the zero-alloc append/scan codec
// idiom from internal/logsys applied to register/renew/leave/candidates
// (see PROTOCOL.md, "Tracker wire protocol"). Requests and responses
// are length-prefixed frames; encoders append into caller-owned buffers
// (steady-state: zero allocations) and decoders scan with explicit
// offsets, so the TCP server's per-connection loop reuses one request
// and one response buffer for its whole lifetime.
//
// All integers are big-endian, matching internal/protocol.
package netboot

import (
	"encoding/binary"
	"fmt"
	"io"
)

// maxTrackerFrame bounds one tracker frame: the largest legal frame is
// a full candidates response (MaxCandidates entries of at most
// MaxAddrBytes each), far under 64 KiB. Anything larger is corruption
// or abuse and drops the connection.
const maxTrackerFrame = 64 * 1024

// Tracker request opcodes.
const (
	opRegister   = 1 // i32 id, u16 addrLen, addr — grants/renews a lease
	opLeave      = 2 // i32 id
	opCandidates = 3 // u16 n, i32 exclude
	opCount      = 4 // empty
)

// Tracker response status codes.
const (
	stOK          = 0
	stBadRequest  = 1 // malformed params; retrying cannot help
	stUnavailable = 2 // outage/overload; retryable. Body carries a u32 retry-after hint (ms, 0 = none) after the message.
	stOwnerLimit  = 3 // per-IP registration bound hit
)

// statusText maps a status code to its error-message prefix.
func statusText(st byte) string {
	switch st {
	case stBadRequest:
		return "bad request"
	case stUnavailable:
		return "unavailable"
	case stOwnerLimit:
		return "owner limit"
	default:
		return fmt.Sprintf("status %d", st)
	}
}

// ---- Append-style encoders (request and response bodies). ----

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendI32(dst []byte, v int32) []byte { return appendU32(dst, uint32(v)) }

// appendRegisterReq appends a register/renew request body.
func appendRegisterReq(dst []byte, id int32, addr string) []byte {
	dst = append(dst, opRegister)
	dst = appendI32(dst, id)
	dst = appendU16(dst, uint16(len(addr)))
	return append(dst, addr...)
}

// appendLeaveReq appends a leave request body.
func appendLeaveReq(dst []byte, id int32) []byte {
	dst = append(dst, opLeave)
	return appendI32(dst, id)
}

// appendCandidatesReq appends a candidates request body.
func appendCandidatesReq(dst []byte, n int, exclude int32) []byte {
	dst = append(dst, opCandidates)
	dst = appendU16(dst, uint16(n))
	return appendI32(dst, exclude)
}

// appendCountReq appends a count request body.
func appendCountReq(dst []byte) []byte { return append(dst, opCount) }

// appendRegisterResp appends an OK register response (lease in ms;
// 0 = no expiry).
func appendRegisterResp(dst []byte, leaseMs uint32) []byte {
	dst = append(dst, stOK)
	return appendU32(dst, leaseMs)
}

// appendCandidatesResp appends an OK candidates response.
func appendCandidatesResp(dst []byte, entries []Entry) []byte {
	dst = append(dst, stOK)
	dst = appendU16(dst, uint16(len(entries)))
	for _, e := range entries {
		dst = appendI32(dst, e.ID)
		dst = appendU16(dst, uint16(len(e.Addr)))
		dst = append(dst, e.Addr...)
	}
	return dst
}

// appendCountResp appends an OK count response.
func appendCountResp(dst []byte, n uint32) []byte {
	dst = append(dst, stOK)
	return appendU32(dst, n)
}

// appendErrResp appends an error response with a short message.
func appendErrResp(dst []byte, st byte, msg string) []byte {
	if len(msg) > 255 {
		msg = msg[:255]
	}
	dst = append(dst, st)
	dst = appendU16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// appendUnavailableResp appends a retryable unavailable response: the
// standard error body followed by a u32 retry-after hint in ms (0 =
// no hint; back off at the client's own pace).
func appendUnavailableResp(dst []byte, msg string, retryAfterMs uint32) []byte {
	dst = appendErrResp(dst, stUnavailable, msg)
	return appendU32(dst, retryAfterMs)
}

// ---- Scan-style decoders. ----

// scanner walks a frame body with an explicit offset; the first failed
// read latches err and zero-values every subsequent read.
type scanner struct {
	b   []byte
	off int
	err error
}

func (s *scanner) fail(what string) {
	if s.err == nil {
		s.err = fmt.Errorf("netboot: truncated %s at offset %d", what, s.off)
	}
}

func (s *scanner) u8(what string) byte {
	if s.err != nil || s.off+1 > len(s.b) {
		s.fail(what)
		return 0
	}
	v := s.b[s.off]
	s.off++
	return v
}

func (s *scanner) u16(what string) uint16 {
	if s.err != nil || s.off+2 > len(s.b) {
		s.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint16(s.b[s.off:])
	s.off += 2
	return v
}

func (s *scanner) u32(what string) uint32 {
	if s.err != nil || s.off+4 > len(s.b) {
		s.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(s.b[s.off:])
	s.off += 4
	return v
}

func (s *scanner) i32(what string) int32 { return int32(s.u32(what)) }

// str reads a u16-length-prefixed string. The returned string is a
// copy: frames outlive their read buffers on neither side.
func (s *scanner) str(what string) string {
	n := int(s.u16(what))
	if s.err != nil || s.off+n > len(s.b) {
		s.fail(what)
		return ""
	}
	v := string(s.b[s.off : s.off+n])
	s.off += n
	return v
}

// done errors on trailing bytes — a length-prefixed frame must be
// consumed exactly.
func (s *scanner) done() error {
	if s.err != nil {
		return s.err
	}
	if s.off != len(s.b) {
		return fmt.Errorf("netboot: %d trailing bytes in frame", len(s.b)-s.off)
	}
	return nil
}

// trackerReq is one decoded request.
type trackerReq struct {
	op      byte
	id      int32
	addr    string
	n       int
	exclude int32
}

// decodeReq decodes a request frame body.
func decodeReq(body []byte) (trackerReq, error) {
	sc := scanner{b: body}
	var req trackerReq
	req.op = sc.u8("op")
	switch req.op {
	case opRegister:
		req.id = sc.i32("id")
		req.addr = sc.str("addr")
	case opLeave:
		req.id = sc.i32("id")
	case opCandidates:
		req.n = int(sc.u16("n"))
		req.exclude = sc.i32("exclude")
	case opCount:
	default:
		return req, fmt.Errorf("netboot: unknown tracker op %d", req.op)
	}
	return req, sc.done()
}

// respError converts a non-OK response into a client-side error.
// Unavailable keeps its sentinel so the retry loop can recognise it.
func respError(st byte, msg string) error {
	if st == stUnavailable {
		return fmt.Errorf("%w: %s", ErrUnavailable, msg)
	}
	if st == stOwnerLimit {
		return fmt.Errorf("%w: %s", ErrOwnerLimit, msg)
	}
	return fmt.Errorf("netboot: tracker %s: %s", statusText(st), msg)
}

// ---- Framing. ----

// writeTrackerFrame prefixes body with its u32 length and writes both
// in one syscall using the caller's scratch buffer (returned for
// reuse).
func writeTrackerFrame(w io.Writer, scratch, body []byte) ([]byte, error) {
	scratch = scratch[:0]
	scratch = appendU32(scratch, uint32(len(body)))
	scratch = append(scratch, body...)
	_, err := w.Write(scratch)
	return scratch, err
}

// readTrackerFrame reads one length-prefixed frame into buf (grown as
// needed) and returns the body slice aliasing buf.
func readTrackerFrame(r io.Reader, buf []byte) ([]byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return buf, nil, err // io.EOF passes through for clean close detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxTrackerFrame {
		return buf, nil, fmt.Errorf("netboot: frame length %d out of range", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return buf, nil, fmt.Errorf("netboot: truncated frame: %w", err)
	}
	return buf, body, nil
}
