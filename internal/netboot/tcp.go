// The production tracker endpoint: the binary register/renew/leave/
// candidates protocol of wire.go served over TCP, plus the matching
// client. The HTTP handler in netboot.go remains as a thin
// compatibility shim over the same Registry.
//
// Server properties the HTTP shim cannot give us:
//
//   - one length-prefixed frame per request, decoded and answered from
//     per-connection reusable buffers (steady state allocates only the
//     candidate entries themselves);
//   - explicit read/write/idle deadlines on every connection, so a slow
//     or hung client can never pin a handler goroutine;
//   - per-IP registration bounds enforced by the registry (the
//     connection's remote IP is the owner key);
//   - a SetDown switch answering stUnavailable — the graceful-
//     degradation hook the chaos harness and the internal/faults outage
//     windows drive, which clients retry through with capped-
//     exponential backoff.
package netboot

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"coolstream/internal/faults"
)

// ErrUnavailable marks a tracker-side refusal that is worth retrying
// (outage window, SetDown, overload), as opposed to a caller bug.
var ErrUnavailable = errors.New("netboot: tracker unavailable")

// UnavailableError is the concrete retryable refusal: it satisfies
// errors.Is(err, ErrUnavailable) and carries the server's retry-after
// hint (0 = none; back off at the client's own pace). Retry loops —
// the client's own and netpeer's join engine — honour the hint.
type UnavailableError struct {
	Msg        string
	RetryAfter time.Duration
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("%v: %s", ErrUnavailable, e.Msg)
}

// Is makes errors.Is(err, ErrUnavailable) hold.
func (e *UnavailableError) Is(target error) bool { return target == ErrUnavailable }

// TCPServerConfig parameterises the binary tracker endpoint. The zero
// value selects production defaults.
type TCPServerConfig struct {
	// ReadTimeout bounds reading one request frame once its header has
	// arrived (default 5s).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response frame (default 5s).
	WriteTimeout time.Duration
	// IdleTimeout closes a connection with no complete request for this
	// long (default 60s).
	IdleTimeout time.Duration
	// SweepEvery is the lease-sweep period (default LeaseTTL/4, floor
	// 250ms; expiry-disabled registries never sweep).
	SweepEvery time.Duration
}

func (c *TCPServerConfig) applyDefaults(ttl time.Duration) {
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.SweepEvery <= 0 && ttl > 0 {
		c.SweepEvery = ttl / 4
		if c.SweepEvery < 250*time.Millisecond {
			c.SweepEvery = 250 * time.Millisecond
		}
	}
}

// TCPServer serves the binary tracker protocol over TCP.
type TCPServer struct {
	reg  *Registry
	cfg  TCPServerConfig
	down atomic.Bool

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewTCPServer wraps reg with a binary TCP endpoint.
func NewTCPServer(reg *Registry, cfg TCPServerConfig) *TCPServer {
	cfg.applyDefaults(reg.LeaseTTL())
	return &TCPServer{
		reg:   reg,
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
}

// Registry returns the backing registry (shared with the HTTP shim).
func (s *TCPServer) Registry() *Registry { return s.reg }

// SetDown toggles the outage switch: while down, every request answers
// stUnavailable (retryable) without touching the registry.
func (s *TCPServer) SetDown(down bool) { s.down.Store(down) }

// Listen binds addr, starts serving in the background, and returns the
// bound address (use "127.0.0.1:0" for an ephemeral port).
func (s *TCPServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("netboot: tracker server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.serve(ln)
	}()
	if s.cfg.SweepEvery > 0 {
		s.wg.Add(1)
		go s.sweepLoop()
	}
	return ln.Addr().String(), nil
}

func (s *TCPServer) sweepLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.reg.Sweep()
		case <-s.done:
			return
		}
	}
}

func (s *TCPServer) serve(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return // Close shut the listener (or it failed fatally)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// handle runs one connection's request loop with reusable buffers.
func (s *TCPServer) handle(c net.Conn) {
	defer c.Close()
	owner, _, err := net.SplitHostPort(c.RemoteAddr().String())
	if err != nil {
		owner = c.RemoteAddr().String()
	}
	br := bufio.NewReaderSize(c, 4*1024)
	var reqBuf, respBuf, frameBuf []byte
	for {
		// The idle deadline covers waiting for the next request; once
		// bytes flow, the (tighter) read deadline bounds the frame.
		c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		if _, err := br.Peek(1); err != nil {
			return
		}
		c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		var body []byte
		reqBuf, body, err = readTrackerFrame(br, reqBuf)
		if err != nil {
			return // framing violation or disconnect: drop the conn
		}
		respBuf = s.respond(respBuf[:0], body, owner)
		c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		frameBuf, err = writeTrackerFrame(c, frameBuf, respBuf)
		if err != nil {
			return
		}
	}
}

// respond appends the response body for one request body to dst.
func (s *TCPServer) respond(dst, body []byte, owner string) []byte {
	req, err := decodeReq(body)
	if err != nil {
		return appendErrResp(dst, stBadRequest, err.Error())
	}
	retryMs := uint32(s.reg.RetryAfter() / time.Millisecond)
	if s.down.Load() {
		return appendUnavailableResp(dst, "tracker down", retryMs)
	}
	release := s.reg.BeginOp()
	defer release()
	switch req.op {
	case opRegister:
		if !s.reg.AdmitRegister(req.id) {
			return appendUnavailableResp(dst, "tracker overloaded", retryMs)
		}
		ttl, err := s.reg.Register(req.id, req.addr, owner)
		if errors.Is(err, ErrOwnerLimit) {
			return appendErrResp(dst, stOwnerLimit, err.Error())
		}
		if err != nil {
			return appendErrResp(dst, stBadRequest, err.Error())
		}
		return appendRegisterResp(dst, uint32(ttl/time.Millisecond))
	case opLeave:
		s.reg.Leave(req.id)
		return append(dst, stOK)
	case opCandidates:
		if req.n == 0 {
			return appendErrResp(dst, stBadRequest, "candidates: n must be >= 1")
		}
		if !s.reg.AdmitCandidates() {
			return appendUnavailableResp(dst, "tracker overloaded", retryMs)
		}
		return appendCandidatesResp(dst, s.reg.Candidates(req.n, req.exclude))
	case opCount:
		return appendCountResp(dst, uint32(s.reg.Count()))
	}
	return appendErrResp(dst, stBadRequest, "unknown op")
}

// Close stops the listener, closes live connections, and waits for the
// handler goroutines.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// TCPClient speaks the binary tracker protocol. It satisfies the same
// bootstrap surface as the HTTP Client (netpeer.Bootstrap), keeps one
// connection pooled across requests (redialing lazily after errors),
// and — with SetBackoff — retries network errors and stUnavailable
// answers through capped-exponential deterministic backoff. The
// backoff sleep honours SetStop, so a peer shutting down mid-outage
// never blocks on a retry pause.
type TCPClient struct {
	addr    string
	timeout time.Duration
	dial    faults.DialFunc

	backoff     faults.Backoff
	maxAttempts int
	retryKey    uint64
	stop        <-chan struct{}

	mu       sync.Mutex
	conn     net.Conn
	br       *bufio.Reader
	reqBuf   []byte
	frameBuf []byte
	readBuf  []byte
	retried  int
	attempts int
	closed   bool
}

// NewTCPClient targets the tracker at addr (host:port).
func NewTCPClient(addr string) *TCPClient {
	return &TCPClient{
		addr:        addr,
		timeout:     5 * time.Second,
		dial:        net.DialTimeout,
		maxAttempts: 1,
	}
}

// SetBackoff enables retries: up to maxAttempts tries per request with
// b's capped-exponential schedule between them; key seeds the
// deterministic jitter (use the peer's ID).
func (c *TCPClient) SetBackoff(b faults.Backoff, maxAttempts int, key uint64) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	c.mu.Lock()
	c.backoff = b
	c.maxAttempts = maxAttempts
	c.retryKey = key
	c.mu.Unlock()
}

// SetStop installs a cancellation channel: a close aborts any backoff
// pause (and fails the request) immediately. netpeer wires its node
// done channel here so Close/Abort never waits out a tracker outage.
func (c *TCPClient) SetStop(stop <-chan struct{}) {
	c.mu.Lock()
	c.stop = stop
	c.mu.Unlock()
}

// SetDialer overrides the dial function (faults.Injector.WrapDial
// carries outage/NAT fault plans onto this client; tests stub dials).
func (c *TCPClient) SetDialer(d faults.DialFunc) {
	if d == nil {
		d = net.DialTimeout
	}
	c.mu.Lock()
	c.dial = d
	c.mu.Unlock()
}

// SetTimeout overrides the per-request I/O deadline (default 5s).
func (c *TCPClient) SetTimeout(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// RetryStats returns (requests that needed a retry, total retry
// pauses), mirroring the HTTP client.
func (c *TCPClient) RetryStats() (retried, attempts int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retried, c.attempts
}

// Close drops the pooled connection and fails subsequent requests.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br = nil
	}
	return nil
}

func (c *TCPClient) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}

// roundTrip sends one request body and decodes one response body,
// retrying per the backoff policy. encode appends the request to the
// reusable buffer; decode consumes the response body. Both run under
// the client lock: the protocol is strictly one frame in flight.
func (c *TCPClient) roundTrip(encode func([]byte) []byte, decode func(*scanner) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 1; ; attempt++ {
		if c.closed {
			return fmt.Errorf("netboot: tracker client closed")
		}
		err := c.tryOnceLocked(encode, decode)
		if err == nil {
			return nil
		}
		// Terminal protocol answers (bad request, owner limit) are
		// caller bugs or policy; retrying cannot help.
		if !retryable(err) {
			return err
		}
		lastErr = err
		if attempt >= c.maxAttempts || !c.backoff.Enabled() {
			return lastErr
		}
		if attempt == 1 {
			c.retried++
		}
		c.attempts++
		d := c.backoff.Duration(attempt, c.retryKey)
		// A shed tracker knows its own recovery horizon better than our
		// schedule does: never retry before its hint.
		var ue *UnavailableError
		if errors.As(lastErr, &ue) && ue.RetryAfter > d {
			d = ue.RetryAfter
		}
		stop := c.stop
		c.mu.Unlock()
		stopped := !sleepOrStop(d, stop)
		c.mu.Lock()
		if stopped {
			return fmt.Errorf("netboot: tracker retry aborted by stop: %w", lastErr)
		}
	}
}

// retryable reports whether err is worth another attempt: network
// errors and explicit unavailable answers are; protocol rejections are
// not.
func retryable(err error) bool {
	if errors.Is(err, ErrUnavailable) {
		return true
	}
	var terminal *terminalError
	return !errors.As(err, &terminal)
}

// terminalError wraps a non-retryable tracker answer.
type terminalError struct{ err error }

func (t *terminalError) Error() string { return t.err.Error() }
func (t *terminalError) Unwrap() error { return t.err }

func (c *TCPClient) tryOnceLocked(encode func([]byte) []byte, decode func(*scanner) error) error {
	if c.conn == nil {
		conn, err := c.dial("tcp", c.addr, c.timeout)
		if err != nil {
			return fmt.Errorf("netboot: dial tracker %s: %w", c.addr, err)
		}
		c.conn = conn
		c.br = bufio.NewReaderSize(conn, 4*1024)
	}
	c.reqBuf = encode(c.reqBuf[:0])
	deadline := time.Now().Add(c.timeout)
	c.conn.SetDeadline(deadline)
	var err error
	c.frameBuf, err = writeTrackerFrame(c.conn, c.frameBuf, c.reqBuf)
	if err != nil {
		c.dropConnLocked()
		return fmt.Errorf("netboot: write tracker frame: %w", err)
	}
	var body []byte
	c.readBuf, body, err = readTrackerFrame(c.br, c.readBuf)
	if err != nil {
		c.dropConnLocked()
		return fmt.Errorf("netboot: read tracker frame: %w", err)
	}
	sc := scanner{b: body}
	st := sc.u8("status")
	if st != stOK {
		msg := sc.str("error message")
		var retryMs uint32
		if st == stUnavailable {
			retryMs = sc.u32("retry-after")
		}
		if err := sc.done(); err != nil {
			c.dropConnLocked()
			return err
		}
		if st == stUnavailable {
			return &UnavailableError{Msg: msg, RetryAfter: time.Duration(retryMs) * time.Millisecond}
		}
		return &terminalError{err: respError(st, msg)}
	}
	if err := decode(&sc); err != nil {
		c.dropConnLocked()
		return err
	}
	return nil
}

// RegisterLease announces (or renews) id's listen address and returns
// the granted lease duration (0 = no expiry).
func (c *TCPClient) RegisterLease(id int32, addr string) (time.Duration, error) {
	var lease time.Duration
	err := c.roundTrip(
		func(dst []byte) []byte { return appendRegisterReq(dst, id, addr) },
		func(sc *scanner) error {
			ms := sc.u32("lease")
			if err := sc.done(); err != nil {
				return err
			}
			lease = time.Duration(ms) * time.Millisecond
			return nil
		})
	return lease, err
}

// Register announces a peer's listen address (netpeer.Bootstrap).
func (c *TCPClient) Register(id int32, addr string) error {
	_, err := c.RegisterLease(id, addr)
	return err
}

// Leave removes a peer from the registry.
func (c *TCPClient) Leave(id int32) error {
	return c.roundTrip(
		func(dst []byte) []byte { return appendLeaveReq(dst, id) },
		func(sc *scanner) error { return sc.done() })
}

// Candidates fetches up to n live candidates, excluding the caller.
func (c *TCPClient) Candidates(n int, exclude int32) ([]Entry, error) {
	if n <= 0 {
		n = DefaultCandidates
	}
	if n > 0xffff {
		n = 0xffff
	}
	var out []Entry
	err := c.roundTrip(
		func(dst []byte) []byte { return appendCandidatesReq(dst, n, exclude) },
		func(sc *scanner) error {
			cnt := int(sc.u16("entry count"))
			out = make([]Entry, 0, cnt)
			for i := 0; i < cnt; i++ {
				id := sc.i32("entry id")
				addr := sc.str("entry addr")
				out = append(out, Entry{ID: id, Addr: addr})
			}
			return sc.done()
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Count returns the tracker's registered-peer count.
func (c *TCPClient) Count() (int, error) {
	var n int
	err := c.roundTrip(
		func(dst []byte) []byte { return appendCountReq(dst) },
		func(sc *scanner) error {
			n = int(sc.u32("count"))
			return sc.done()
		})
	return n, err
}

// sleepOrStop pauses for d, returning false early if stop closes
// first (stop may be nil: plain sleep).
func sleepOrStop(d time.Duration, stop <-chan struct{}) bool {
	if stop == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}
