package netboot

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"coolstream/internal/faults"
	"coolstream/internal/sim"
)

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer(1)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, nil)
}

func TestRegisterCandidatesLeave(t *testing.T) {
	srv, c := newPair(t)
	for id := int32(1); id <= 5; id++ {
		if err := c.Register(id, "127.0.0.1:900"+string(rune('0'+id))); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Count() != 5 {
		t.Fatalf("count %d", srv.Count())
	}
	cands, err := c.Candidates(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("candidates %d", len(cands))
	}
	for _, e := range cands {
		if e.ID == 1 {
			t.Fatal("excluded id returned")
		}
		if e.Addr == "" {
			t.Fatal("empty addr")
		}
	}
	if err := c.Leave(2); err != nil {
		t.Fatal(err)
	}
	if srv.Count() != 4 {
		t.Fatalf("count after leave %d", srv.Count())
	}
	// Requesting more than available returns all.
	cands, _ = c.Candidates(100, -1)
	if len(cands) != 4 {
		t.Fatalf("all candidates %d", len(cands))
	}
}

func TestReRegisterUpdatesAddr(t *testing.T) {
	srv, c := newPair(t)
	c.Register(7, "127.0.0.1:1111")
	c.Register(7, "127.0.0.1:2222")
	if srv.Count() != 1 {
		t.Fatalf("count %d", srv.Count())
	}
	cands := srv.Candidates(1, -1)
	if cands[0].Addr != "127.0.0.1:2222" {
		t.Fatalf("addr %s", cands[0].Addr)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, c := newPair(t)
	ts := httptest.NewServer(NewServer(2))
	defer ts.Close()
	for _, path := range []string{
		"/register?id=abc&addr=x",
		"/register?id=1",
		"/leave?id=xyz",
		"/nonsense",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 {
			t.Errorf("%s returned %d", path, resp.StatusCode)
		}
	}
	// Client surfaces server rejections.
	if err := c.Register(1, ""); err == nil {
		t.Error("empty addr accepted")
	}
	// Transport failure.
	dead := NewClient("http://127.0.0.1:1", nil)
	if err := dead.Register(1, "x"); err == nil {
		t.Error("dead server register succeeded")
	}
	if _, err := dead.Candidates(3, 0); err == nil {
		t.Error("dead server candidates succeeded")
	}
}

func TestCountEndpoint(t *testing.T) {
	srv := NewServer(3)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	c.Register(1, "a:1")
	resp, err := http.Get(ts.URL + "/count")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64)
	n, _ := resp.Body.Read(buf)
	if got := string(buf[:n]); got != "{\"count\":1}\n" {
		t.Fatalf("count body %q", got)
	}
}

func TestCandidatesVary(t *testing.T) {
	srv, c := newPair(t)
	for id := int32(1); id <= 30; id++ {
		c.Register(id, "x:1")
	}
	a, _ := c.Candidates(5, -1)
	varied := false
	for i := 0; i < 10 && !varied; i++ {
		b, _ := c.Candidates(5, -1)
		for j := range b {
			if b[j].ID != a[j].ID {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("candidate sampling is constant")
	}
	_ = srv
}

// flakyHandler fails the first `failures` requests with 503, then
// delegates to the real registry — a log/tracker server recovering
// from an outage.
type flakyHandler struct {
	mu       sync.Mutex
	failures int
	seen     int
	inner    http.Handler
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.seen++
	fail := f.seen <= f.failures
	f.mu.Unlock()
	if fail {
		http.Error(w, "outage", http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func TestClientRetriesThroughOutage(t *testing.T) {
	srv := NewServer(9)
	flaky := &flakyHandler{failures: 3, inner: srv}
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	c := NewClient(ts.URL, nil)
	c.SetBackoff(faults.Backoff{Base: sim.Millisecond, Cap: 4 * sim.Millisecond, JitterFrac: 0.5}, 5, 42)
	if err := c.Register(1, "127.0.0.1:9001"); err != nil {
		t.Fatalf("register through outage failed: %v", err)
	}
	if srv.Count() != 1 {
		t.Fatalf("registry count %d after retried register", srv.Count())
	}
	retried, attempts := c.RetryStats()
	if retried != 1 || attempts != 3 {
		t.Fatalf("retry stats retried=%d attempts=%d, want 1/3", retried, attempts)
	}

	// Outage longer than the attempt budget: the error surfaces.
	flaky2 := &flakyHandler{failures: 100, inner: srv}
	ts2 := httptest.NewServer(flaky2)
	defer ts2.Close()
	c2 := NewClient(ts2.URL, nil)
	c2.SetBackoff(faults.Backoff{Base: sim.Millisecond, Cap: 2 * sim.Millisecond}, 3, 7)
	if err := c2.Register(2, "x:1"); err == nil {
		t.Fatal("register through permanent outage succeeded")
	}
	if flaky2.seen != 3 {
		t.Fatalf("attempt-limited client made %d requests, want 3", flaky2.seen)
	}

	// Without SetBackoff a failure is immediate (one request).
	flaky3 := &flakyHandler{failures: 100, inner: srv}
	ts3 := httptest.NewServer(flaky3)
	defer ts3.Close()
	c3 := NewClient(ts3.URL, nil)
	if err := c3.Register(3, "x:1"); err == nil {
		t.Fatal("no-backoff client retried its way through")
	}
	if flaky3.seen != 1 {
		t.Fatalf("no-backoff client made %d requests, want 1", flaky3.seen)
	}
}

// TestCandidatesParamValidation is the /candidates regression: a
// malformed exclude used to parse as 0 and silently exclude the real
// peer 0 (the source); it must be a 400 now, and a missing exclude
// must exclude nobody.
func TestCandidatesParamValidation(t *testing.T) {
	srv := NewServer(11)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	srv.Registry().Register(0, "source:1", "")

	for _, path := range []string{
		"/candidates?n=bogus",
		"/candidates?n=0",
		"/candidates?n=-5",
		"/candidates?n=3&exclude=bogus",
		"/candidates?n=3&exclude=99999999999", // overflows int32
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s returned %d, want 400", path, resp.StatusCode)
		}
	}

	// Missing exclude: peer 0 must be a candidate.
	c := NewClient(ts.URL, nil)
	cands, err := c.Candidates(5, ExcludeNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].ID != 0 {
		t.Fatalf("peer 0 missing without an exclude: %+v", cands)
	}
	resp, err := http.Get(ts.URL + "/candidates?n=5")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if got := string(body[:n]); got == "[]\n" {
		t.Fatalf("missing exclude dropped peer 0: %q", got)
	}

	// Oversized n is clamped, not an error.
	cands, err = c.Candidates(1_000_000, ExcludeNone)
	if err != nil || len(cands) != 1 {
		t.Fatalf("huge n: %v %+v", err, cands)
	}
}

// TestHTTPClientStopCancelsBackoff pins the HTTP side of the
// un-cancellable-sleep fix: closing the stop channel aborts a backoff
// pause immediately.
func TestHTTPClientStopCancelsBackoff(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", nil) // nothing listens here
	c.SetBackoff(faults.Backoff{Base: 10 * sim.Second, Cap: 20 * sim.Second}, 5, 3)
	stop := make(chan struct{})
	c.SetStop(stop)

	done := make(chan error, 1)
	go func() { done <- c.Register(1, "x:1") }()
	time.Sleep(50 * time.Millisecond) // let it fail the dial and enter the pause
	start := time.Now()
	close(stop)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("register against dead tracker succeeded")
		}
		if waited := time.Since(start); waited > time.Second {
			t.Fatalf("stop took %v to abort the backoff", waited)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("stop did not abort the backoff pause")
	}
}
