package netboot

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer(1)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, nil)
}

func TestRegisterCandidatesLeave(t *testing.T) {
	srv, c := newPair(t)
	for id := int32(1); id <= 5; id++ {
		if err := c.Register(id, "127.0.0.1:900"+string(rune('0'+id))); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Count() != 5 {
		t.Fatalf("count %d", srv.Count())
	}
	cands, err := c.Candidates(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("candidates %d", len(cands))
	}
	for _, e := range cands {
		if e.ID == 1 {
			t.Fatal("excluded id returned")
		}
		if e.Addr == "" {
			t.Fatal("empty addr")
		}
	}
	if err := c.Leave(2); err != nil {
		t.Fatal(err)
	}
	if srv.Count() != 4 {
		t.Fatalf("count after leave %d", srv.Count())
	}
	// Requesting more than available returns all.
	cands, _ = c.Candidates(100, -1)
	if len(cands) != 4 {
		t.Fatalf("all candidates %d", len(cands))
	}
}

func TestReRegisterUpdatesAddr(t *testing.T) {
	srv, c := newPair(t)
	c.Register(7, "127.0.0.1:1111")
	c.Register(7, "127.0.0.1:2222")
	if srv.Count() != 1 {
		t.Fatalf("count %d", srv.Count())
	}
	cands := srv.Candidates(1, -1)
	if cands[0].Addr != "127.0.0.1:2222" {
		t.Fatalf("addr %s", cands[0].Addr)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, c := newPair(t)
	ts := httptest.NewServer(NewServer(2))
	defer ts.Close()
	for _, path := range []string{
		"/register?id=abc&addr=x",
		"/register?id=1",
		"/leave?id=xyz",
		"/nonsense",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 {
			t.Errorf("%s returned %d", path, resp.StatusCode)
		}
	}
	// Client surfaces server rejections.
	if err := c.Register(1, ""); err == nil {
		t.Error("empty addr accepted")
	}
	// Transport failure.
	dead := NewClient("http://127.0.0.1:1", nil)
	if err := dead.Register(1, "x"); err == nil {
		t.Error("dead server register succeeded")
	}
	if _, err := dead.Candidates(3, 0); err == nil {
		t.Error("dead server candidates succeeded")
	}
}

func TestCountEndpoint(t *testing.T) {
	srv := NewServer(3)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	c.Register(1, "a:1")
	resp, err := http.Get(ts.URL + "/count")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64)
	n, _ := resp.Body.Read(buf)
	if got := string(buf[:n]); got != "{\"count\":1}\n" {
		t.Fatalf("count body %q", got)
	}
}

func TestCandidatesVary(t *testing.T) {
	srv, c := newPair(t)
	for id := int32(1); id <= 30; id++ {
		c.Register(id, "x:1")
	}
	a, _ := c.Candidates(5, -1)
	varied := false
	for i := 0; i < 10 && !varied; i++ {
		b, _ := c.Candidates(5, -1)
		for j := range b {
			if b[j].ID != a[j].ID {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("candidate sampling is constant")
	}
	_ = srv
}
