// Package netboot is the boot-strap service for networked peers
// (§III-B over HTTP): nodes register their listen address on join,
// deregister on leave, and newcomers fetch a random partial list of
// candidates — exactly the role the deployment's boot-strap node and
// web portal played.
package netboot

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"coolstream/internal/faults"
	"coolstream/internal/xrand"
)

// Entry is one registered peer.
type Entry struct {
	ID   int32  `json:"id"`
	Addr string `json:"addr"`
}

// Server is the HTTP bootstrap registry.
type Server struct {
	mu    sync.Mutex
	peers map[int32]string
	rng   *xrand.RNG
}

// NewServer creates an empty registry.
func NewServer(seed uint64) *Server {
	return &Server{peers: make(map[int32]string), rng: xrand.New(seed)}
}

// ServeHTTP implements http.Handler:
//
//	GET /register?id=N&addr=HOST:PORT → 204
//	GET /leave?id=N                   → 204
//	GET /candidates?n=K&exclude=N     → JSON [Entry...]
//	GET /count                        → JSON {"count":N}
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	switch r.URL.Path {
	case "/register":
		id, err := parseID(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		addr := q.Get("addr")
		if addr == "" {
			http.Error(w, "netboot: missing addr", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.peers[id] = addr
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	case "/leave":
		id, err := parseID(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		delete(s.peers, id)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	case "/candidates":
		n, _ := strconv.Atoi(q.Get("n"))
		if n <= 0 {
			n = 10
		}
		exclude64, _ := strconv.ParseInt(q.Get("exclude"), 10, 32)
		exclude := int32(exclude64)
		out := s.Candidates(n, exclude)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	case "/count":
		s.mu.Lock()
		n := len(s.peers)
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"count":%d}`+"\n", n)
	default:
		http.NotFound(w, r)
	}
}

func parseID(q url.Values) (int32, error) {
	id, err := strconv.ParseInt(q.Get("id"), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("netboot: bad id %q", q.Get("id"))
	}
	return int32(id), nil
}

// Candidates returns up to n random registered peers, excluding one ID.
func (s *Server) Candidates(n int, exclude int32) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int32, 0, len(s.peers))
	for id := range s.peers {
		if id != exclude {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if n > len(ids) {
		n = len(ids)
	}
	out := make([]Entry, 0, n)
	for _, id := range ids[:n] {
		out = append(out, Entry{ID: id, Addr: s.peers[id]})
	}
	return out
}

// Count returns the number of registered peers.
func (s *Server) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peers)
}

// Client talks to a bootstrap server. With SetBackoff configured, a
// failed request (connection error, injected outage, 5xx) is retried
// up to the attempt limit with capped-exponential, deterministically
// jittered pauses — the recovery half of the tracker-outage fault.
type Client struct {
	base string
	hc   *http.Client

	backoff     faults.Backoff
	maxAttempts int
	// retryKey salts the deterministic jitter so distinct clients
	// retrying through the same outage de-synchronise.
	retryKey uint64
	// Retried counts requests that needed at least one retry; Attempts
	// counts every retry sleep taken (observability for tests and the
	// chaos harness).
	mu       sync.Mutex
	retried  int
	attempts int
}

// NewClient wraps the server at base (e.g. "http://127.0.0.1:7000").
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc, maxAttempts: 1}
}

// SetBackoff enables request retries: up to maxAttempts total tries
// per request, pausing per b's schedule between them. key seeds the
// deterministic jitter (use the peer's ID).
func (c *Client) SetBackoff(b faults.Backoff, maxAttempts int, key uint64) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	c.backoff = b
	c.maxAttempts = maxAttempts
	c.retryKey = key
}

// RetryStats returns (requests that needed a retry, total retry sleeps).
func (c *Client) RetryStats() (retried, attempts int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retried, c.attempts
}

func (c *Client) get(path string) (*http.Response, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, err := c.hc.Get(c.base + path)
		if err == nil && resp.StatusCode < 500 {
			if resp.StatusCode >= 300 {
				// 4xx is a caller bug; retrying cannot help.
				resp.Body.Close()
				return nil, fmt.Errorf("netboot: %s: %s", path, resp.Status)
			}
			return resp, nil
		}
		if err != nil {
			lastErr = err
		} else {
			resp.Body.Close()
			lastErr = fmt.Errorf("netboot: %s: %s", path, resp.Status)
		}
		if attempt >= c.maxAttempts || !c.backoff.Enabled() {
			return nil, lastErr
		}
		c.mu.Lock()
		if attempt == 1 {
			c.retried++
		}
		c.attempts++
		c.mu.Unlock()
		time.Sleep(c.backoff.Duration(attempt, c.retryKey))
	}
}

// Register announces a peer's listen address.
func (c *Client) Register(id int32, addr string) error {
	resp, err := c.get(fmt.Sprintf("/register?id=%d&addr=%s", id, url.QueryEscape(addr)))
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Leave removes a peer from the registry.
func (c *Client) Leave(id int32) error {
	resp, err := c.get(fmt.Sprintf("/leave?id=%d", id))
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Candidates fetches up to n candidates, excluding the caller's ID.
func (c *Client) Candidates(n int, exclude int32) ([]Entry, error) {
	resp, err := c.get(fmt.Sprintf("/candidates?n=%d&exclude=%d", n, exclude))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []Entry
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("netboot: decode candidates: %w", err)
	}
	return out, nil
}
