// Package netboot is the boot-strap/tracker service for networked
// peers (§III-B): nodes register their listen address on join, renew
// the resulting lease while alive, deregister on leave, and newcomers
// fetch a random partial list of live candidates — the role the
// deployment's boot-strap node and web portal played.
//
// The service core is the sharded lease Registry (registry.go). Two
// endpoints expose it:
//
//   - the binary TCP tracker (tcp.go) — the production path;
//   - this file's HTTP handler — a thin compatibility shim kept for
//     the examples and for anything that still speaks the original
//     url-encoded API.
//
// Both endpoints share one Registry, so a peer registered over HTTP is
// a candidate over TCP and vice versa.
package netboot

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"coolstream/internal/faults"
)

// Entry is one registered peer.
type Entry struct {
	ID   int32  `json:"id"`
	Addr string `json:"addr"`
}

// ExcludeNone asks Candidates to exclude nobody. (The old HTTP handler
// defaulted a missing/malformed exclude to 0, silently excluding the
// real peer with ID 0 — the source, typically.)
const ExcludeNone int32 = math.MinInt32

// Server is the HTTP bootstrap shim over a Registry.
type Server struct {
	reg *Registry
}

// NewServer creates a server over a fresh default Registry (8 shards,
// 30 s leases) seeded for candidate sampling.
func NewServer(seed uint64) *Server {
	return NewServerWith(NewRegistry(RegistryConfig{Seed: seed}))
}

// NewServerWith wraps an existing registry (shared with a TCPServer,
// or configured with custom lease/shard/bound settings).
func NewServerWith(reg *Registry) *Server { return &Server{reg: reg} }

// Registry returns the backing registry.
func (s *Server) Registry() *Registry { return s.reg }

// ServeHTTP implements http.Handler:
//
//	GET /register?id=N&addr=HOST:PORT → 204 (grants/renews the lease)
//	GET /leave?id=N                   → 204
//	GET /candidates?n=K&exclude=N     → JSON [Entry...]
//	GET /count                        → JSON {"count":N}
//
// Malformed parameters are 400s: in particular a bad `exclude` no
// longer parses as 0 (which silently excluded peer 0), and `n` is
// clamped server-side so one query cannot serialize the registry.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	release := s.reg.BeginOp()
	defer release()
	q := r.URL.Query()
	switch r.URL.Path {
	case "/register":
		id, err := parseID(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !s.reg.AdmitRegister(id) {
			s.unavailable(w)
			return
		}
		owner := r.RemoteAddr
		if host, _, err := net.SplitHostPort(owner); err == nil {
			owner = host
		}
		ttl, err := s.reg.Register(id, q.Get("addr"), owner)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrOwnerLimit) {
				code = http.StatusTooManyRequests
			}
			http.Error(w, err.Error(), code)
			return
		}
		w.Header().Set("X-Lease-Ms", strconv.FormatInt(int64(ttl/time.Millisecond), 10))
		w.WriteHeader(http.StatusNoContent)
	case "/leave":
		id, err := parseID(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.reg.Leave(id)
		w.WriteHeader(http.StatusNoContent)
	case "/candidates":
		n := DefaultCandidates
		if raw := q.Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v <= 0 {
				http.Error(w, fmt.Sprintf("netboot: bad n %q", raw), http.StatusBadRequest)
				return
			}
			n = v // Registry.Candidates clamps to the server maximum
		}
		exclude := ExcludeNone
		if raw := q.Get("exclude"); raw != "" {
			v, err := strconv.ParseInt(raw, 10, 32)
			if err != nil {
				http.Error(w, fmt.Sprintf("netboot: bad exclude %q", raw), http.StatusBadRequest)
				return
			}
			exclude = int32(v)
		}
		if !s.reg.AdmitCandidates() {
			s.unavailable(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.reg.Candidates(n, exclude))
	case "/count":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"count":%d}`+"\n", s.reg.Count())
	default:
		http.NotFound(w, r)
	}
}

// unavailable answers a shed request: 503 with a Retry-After header
// mirroring the binary protocol's retry-after hint (whole seconds,
// rounded up — the header has no finer granularity).
func (s *Server) unavailable(w http.ResponseWriter) {
	if d := s.reg.RetryAfter(); d > 0 {
		secs := int64((d + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	http.Error(w, "netboot: tracker overloaded", http.StatusServiceUnavailable)
}

func parseID(q url.Values) (int32, error) {
	id, err := strconv.ParseInt(q.Get("id"), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("netboot: bad id %q", q.Get("id"))
	}
	return int32(id), nil
}

// Candidates returns up to n random live registered peers, excluding
// one ID (test/diagnostic convenience; the registry does the work).
func (s *Server) Candidates(n int, exclude int32) []Entry {
	return s.reg.Candidates(n, exclude)
}

// Count returns the number of registered peers.
func (s *Server) Count() int { return s.reg.Count() }

// Client talks to a bootstrap server over HTTP. With SetBackoff
// configured, a failed request (connection error, injected outage,
// 5xx) is retried up to the attempt limit with capped-exponential,
// deterministically jittered pauses — the recovery half of the
// tracker-outage fault. The pause honours SetStop, so a shutting-down
// peer never waits out a backoff.
type Client struct {
	base string
	hc   *http.Client

	backoff     faults.Backoff
	maxAttempts int
	// retryKey salts the deterministic jitter so distinct clients
	// retrying through the same outage de-synchronise.
	retryKey uint64
	// Retried counts requests that needed at least one retry; Attempts
	// counts every retry sleep taken (observability for tests and the
	// chaos harness).
	mu       sync.Mutex
	stop     <-chan struct{}
	retried  int
	attempts int
}

// NewClient wraps the server at base (e.g. "http://127.0.0.1:7000").
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc, maxAttempts: 1}
}

// SetBackoff enables request retries: up to maxAttempts total tries
// per request, pausing per b's schedule between them. key seeds the
// deterministic jitter (use the peer's ID).
func (c *Client) SetBackoff(b faults.Backoff, maxAttempts int, key uint64) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	c.backoff = b
	c.maxAttempts = maxAttempts
	c.retryKey = key
}

// SetStop installs a cancellation channel: a close aborts any backoff
// pause (and fails the in-flight request) immediately, instead of
// sleeping out the full capped-exponential delay. netpeer wires its
// node done channel here so Close/Abort during a tracker outage
// returns promptly.
func (c *Client) SetStop(stop <-chan struct{}) {
	c.mu.Lock()
	c.stop = stop
	c.mu.Unlock()
}

// RetryStats returns (requests that needed a retry, total retry sleeps).
func (c *Client) RetryStats() (retried, attempts int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retried, c.attempts
}

func (c *Client) get(path string) (*http.Response, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		var hint time.Duration
		resp, err := c.hc.Get(c.base + path)
		if err == nil && resp.StatusCode < 500 {
			if resp.StatusCode >= 300 {
				// 4xx is a caller bug; retrying cannot help.
				resp.Body.Close()
				return nil, fmt.Errorf("netboot: %s: %s", path, resp.Status)
			}
			return resp, nil
		}
		if err != nil {
			lastErr = err
		} else {
			if resp.StatusCode == http.StatusServiceUnavailable {
				if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
					hint = time.Duration(secs) * time.Second
				}
				// Surface the hint like the binary client does, so
				// retry loops above us can honour it too.
				lastErr = &UnavailableError{
					Msg:        fmt.Sprintf("%s: %s", path, resp.Status),
					RetryAfter: hint,
				}
				resp.Body.Close()
			} else {
				resp.Body.Close()
				lastErr = fmt.Errorf("netboot: %s: %s", path, resp.Status)
			}
		}
		if attempt >= c.maxAttempts || !c.backoff.Enabled() {
			return nil, lastErr
		}
		c.mu.Lock()
		if attempt == 1 {
			c.retried++
		}
		c.attempts++
		stop := c.stop
		c.mu.Unlock()
		d := c.backoff.Duration(attempt, c.retryKey)
		if hint > d {
			d = hint
		}
		if !sleepOrStop(d, stop) {
			return nil, fmt.Errorf("netboot: retry aborted by stop: %w", lastErr)
		}
	}
}

// Register announces a peer's listen address (and renews its lease).
func (c *Client) Register(id int32, addr string) error {
	resp, err := c.get(fmt.Sprintf("/register?id=%d&addr=%s", id, url.QueryEscape(addr)))
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Leave removes a peer from the registry.
func (c *Client) Leave(id int32) error {
	resp, err := c.get(fmt.Sprintf("/leave?id=%d", id))
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Candidates fetches up to n candidates, excluding the caller's ID.
func (c *Client) Candidates(n int, exclude int32) ([]Entry, error) {
	if n <= 0 {
		n = DefaultCandidates
	}
	resp, err := c.get(fmt.Sprintf("/candidates?n=%d&exclude=%d", n, exclude))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []Entry
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("netboot: decode candidates: %w", err)
	}
	return out, nil
}
