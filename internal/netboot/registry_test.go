package netboot

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source for deterministic lease
// tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// TestLeaseExpiryEvictsCrashedPeer is the dead-peer regression the
// original tracker failed: a peer that crashes (Abort — no Leave)
// simply stops renewing, and candidates must stop returning it as
// soon as the lease lapses, before any sweep runs.
func TestLeaseExpiryEvictsCrashedPeer(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(RegistryConfig{LeaseTTL: 10 * time.Second, Clock: clk.Now, Seed: 1})
	if _, err := r.Register(1, "127.0.0.1:9001", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(2, "127.0.0.1:9002", ""); err != nil {
		t.Fatal(err)
	}

	if got := len(r.Candidates(10, ExcludeNone)); got != 2 {
		t.Fatalf("candidates before expiry: %d, want 2", got)
	}

	// Peer 1 keeps renewing; peer 2 crashed and goes silent.
	clk.Advance(6 * time.Second)
	if _, err := r.Register(1, "127.0.0.1:9001", ""); err != nil {
		t.Fatal(err)
	}
	clk.Advance(6 * time.Second) // peer 2's lease lapsed (12 s > 10 s)

	cands := r.Candidates(10, ExcludeNone)
	if len(cands) != 1 || cands[0].ID != 1 {
		t.Fatalf("candidates after crash: %+v, want only peer 1", cands)
	}
	// No sweep has run yet: eviction must be a read-side property.
	if n := r.Count(); n != 2 {
		t.Fatalf("pre-sweep count %d, want 2 (lazy reclamation)", n)
	}
	if evicted := r.Sweep(); evicted != 1 {
		t.Fatalf("sweep evicted %d, want 1", evicted)
	}
	if n := r.Count(); n != 1 {
		t.Fatalf("post-sweep count %d, want 1", n)
	}

	// The crashed peer can come back: a fresh Register resurrects it.
	if _, err := r.Register(2, "127.0.0.1:9002", ""); err != nil {
		t.Fatal(err)
	}
	if got := len(r.Candidates(10, ExcludeNone)); got != 2 {
		t.Fatalf("candidates after re-join: %d, want 2", got)
	}
}

// TestRenewalIsNotAMembershipChange pins the hot path: renewing an
// unchanged address must not bump the shard's membership version (and
// so must not invalidate the epoch snapshot).
func TestRenewalIsNotAMembershipChange(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(RegistryConfig{Shards: 1, LeaseTTL: 10 * time.Second, Clock: clk.Now})
	r.Register(7, "a:1", "")
	v := r.shards[0].version.Load()
	for i := 0; i < 100; i++ {
		clk.Advance(time.Second)
		if _, err := r.Register(7, "a:1", ""); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.shards[0].version.Load(); got != v {
		t.Fatalf("renewals moved the membership version %d→%d", v, got)
	}
	// The renewed lease is alive far past its original expiry.
	if got := len(r.Candidates(5, ExcludeNone)); got != 1 {
		t.Fatalf("renewed peer missing from candidates")
	}
	// An address change IS a membership change.
	r.Register(7, "b:2", "")
	if got := r.shards[0].version.Load(); got == v {
		t.Fatal("address change did not move the membership version")
	}
	cands := r.Candidates(5, ExcludeNone)
	if len(cands) != 1 || cands[0].Addr != "b:2" {
		t.Fatalf("candidates after addr change: %+v", cands)
	}
}

// TestPerOwnerBound pins the bounded per-IP registration state: one
// owner key cannot hold more than MaxPerOwner live registrations, and
// leaves/evictions free the quota.
func TestPerOwnerBound(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(RegistryConfig{LeaseTTL: 10 * time.Second, MaxPerOwner: 2, Clock: clk.Now})
	if _, err := r.Register(1, "a:1", "10.0.0.9"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(2, "a:2", "10.0.0.9"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(3, "a:3", "10.0.0.9"); !errors.Is(err, ErrOwnerLimit) {
		t.Fatalf("third registration for one owner: %v, want ErrOwnerLimit", err)
	}
	// A different owner is unaffected; renewals don't consume quota.
	if _, err := r.Register(4, "b:1", "10.0.0.10"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(1, "a:1", "10.0.0.9"); err != nil {
		t.Fatalf("renewal hit the owner bound: %v", err)
	}
	// Leave frees a slot.
	r.Leave(2)
	if _, err := r.Register(3, "a:3", "10.0.0.9"); err != nil {
		t.Fatalf("register after leave freed quota: %v", err)
	}
	// Lease expiry (sweep) frees slots too.
	clk.Advance(11 * time.Second)
	r.Sweep()
	if _, err := r.Register(5, "a:5", "10.0.0.9"); err != nil {
		t.Fatalf("register after sweep freed quota: %v", err)
	}
}

// TestCandidatesClamp pins the server-side n cap: one query cannot
// serialize the registry.
func TestCandidatesClamp(t *testing.T) {
	r := NewRegistry(RegistryConfig{MaxCandidates: 8})
	for id := int32(0); id < 100; id++ {
		r.Register(id, "x:1", "")
	}
	if got := len(r.Candidates(1_000_000, ExcludeNone)); got != 8 {
		t.Fatalf("clamped candidates %d, want 8", got)
	}
	if got := len(r.Candidates(-3, ExcludeNone)); got != 8 {
		// default 10, clamped to 8
		t.Fatalf("default candidates %d, want 8", got)
	}
}

// TestRegisterValidation pins address validation.
func TestRegisterValidation(t *testing.T) {
	r := NewRegistry(RegistryConfig{})
	if _, err := r.Register(1, "", ""); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("empty addr: %v", err)
	}
	long := make([]byte, MaxAddrBytes+1)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := r.Register(1, string(long), ""); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("oversized addr: %v", err)
	}
}

// TestCandidatesProperty is the concurrency property test: across
// shard counts {1,4,8}, with register/renew/leave/candidates running
// concurrently under the race detector, every candidate set must be
// (a) within the requested size, (b) duplicate-free, (c) exclude-
// filtered, (d) free of expired leases, and (e) free of peers whose
// Leave completed before the query began.
func TestCandidatesProperty(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			clk := newFakeClock()
			r := NewRegistry(RegistryConfig{
				Shards:   shards,
				LeaseTTL: time.Hour,
				Clock:    clk.Now,
				Seed:     uint64(shards),
			})

			// A batch of crashed peers: registered, then expired by a
			// clock jump. They must never be sampled.
			for id := int32(1000); id < 1100; id++ {
				r.Register(id, "dead:1", "")
			}
			clk.Advance(2 * time.Hour)

			// left[id] is set (under leftMu) BEFORE Leave returns; a
			// query started after that must not see the peer.
			var leftMu sync.Mutex
			left := make(map[int32]bool)
			markLeft := func(id int32) {
				r.Leave(id)
				leftMu.Lock()
				left[id] = true
				leftMu.Unlock()
			}
			leftBefore := func() map[int32]bool {
				leftMu.Lock()
				defer leftMu.Unlock()
				out := make(map[int32]bool, len(left))
				for id := range left {
					out[id] = true
				}
				return out
			}

			const live = 200
			for id := int32(0); id < live; id++ {
				r.Register(id, "x:1", "")
			}

			var stopFlag atomic.Bool
			var wg sync.WaitGroup
			// Churners: each registers a stream of fresh IDs (never
			// reused, so a left ID stays left — the property below
			// depends on that) and leaves a third of them.
			for w := 0; w < 4; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					base := int32(1_000_000 * (w + 1))
					for i := int32(0); !stopFlag.Load(); i++ {
						id := base + i
						r.Register(id, "y:1", "")
						if i%3 == 0 {
							markLeft(id)
						}
					}
				}()
			}
			// Renewers keep the stable population fresh.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; !stopFlag.Load(); i++ {
					r.Register(int32(i%live), "x:1", "")
				}
			}()

			errCh := make(chan error, 8)
			for q := 0; q < 4; q++ {
				q := q
				wg.Add(1)
				go func() {
					defer wg.Done()
					exclude := int32(q * 7)
					for i := 0; i < 300; i++ {
						gone := leftBefore()
						n := 1 + (i % 16)
						cands := r.Candidates(n, exclude)
						if len(cands) > n {
							errCh <- fmt.Errorf("%d candidates for n=%d", len(cands), n)
							return
						}
						seen := make(map[int32]bool, len(cands))
						for _, e := range cands {
							switch {
							case e.ID == exclude:
								errCh <- fmt.Errorf("excluded id %d returned", exclude)
								return
							case seen[e.ID]:
								errCh <- fmt.Errorf("duplicate id %d", e.ID)
								return
							case e.ID >= 1000 && e.ID < 1100:
								errCh <- fmt.Errorf("expired (crashed) id %d returned", e.ID)
								return
							case gone[e.ID]:
								errCh <- fmt.Errorf("id %d returned after its Leave completed", e.ID)
								return
							case e.Addr == "":
								errCh <- fmt.Errorf("empty addr for id %d", e.ID)
								return
							}
							seen[e.ID] = true
						}
					}
				}()
			}

			waitDone := make(chan struct{})
			go func() {
				// Queriers are bounded; once they finish, stop the churners.
				wg.Wait()
				close(waitDone)
			}()
			// Give the queriers their run, then stop churn.
			time.Sleep(100 * time.Millisecond)
			stopFlag.Store(true)
			<-waitDone
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}
			// Sanity: the stable population is still fully discoverable.
			r.Sweep()
			cands := r.Candidates(64, ExcludeNone)
			if len(cands) == 0 {
				t.Fatal("no candidates after churn")
			}
		})
	}
}

// TestCountIsShardFold pins Count's cost model indirectly: it must
// agree with the real population across shard counts after sweeps.
func TestCountIsShardFold(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		r := NewRegistry(RegistryConfig{Shards: shards})
		for id := int32(0); id < 500; id++ {
			r.Register(id, "x:1", "")
		}
		for id := int32(0); id < 500; id += 2 {
			r.Leave(id)
		}
		if got := r.Count(); got != 250 {
			t.Fatalf("shards=%d count %d, want 250", shards, got)
		}
	}
}
