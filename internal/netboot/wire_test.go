package netboot

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestWireRequestRoundTrips pins every request encoding against its
// decoder.
func TestWireRequestRoundTrips(t *testing.T) {
	cases := []struct {
		name string
		enc  func([]byte) []byte
		want trackerReq
	}{
		{"register", func(b []byte) []byte { return appendRegisterReq(b, 42, "10.1.2.3:9000") },
			trackerReq{op: opRegister, id: 42, addr: "10.1.2.3:9000"}},
		{"register-negative-id", func(b []byte) []byte { return appendRegisterReq(b, -7, "x:1") },
			trackerReq{op: opRegister, id: -7, addr: "x:1"}},
		{"leave", func(b []byte) []byte { return appendLeaveReq(b, 99) },
			trackerReq{op: opLeave, id: 99}},
		{"candidates", func(b []byte) []byte { return appendCandidatesReq(b, 12, -1) },
			trackerReq{op: opCandidates, n: 12, exclude: -1}},
		{"candidates-exclude-none", func(b []byte) []byte { return appendCandidatesReq(b, 3, ExcludeNone) },
			trackerReq{op: opCandidates, n: 3, exclude: ExcludeNone}},
		{"count", appendCountReq, trackerReq{op: opCount}},
	}
	for _, tc := range cases {
		body := tc.enc(nil)
		got, err := decodeReq(body)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("%s: got %+v want %+v", tc.name, got, tc.want)
		}
		// Truncations at every prefix length must error, never panic.
		for cut := 0; cut < len(body); cut++ {
			if _, err := decodeReq(body[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d decoded successfully", tc.name, cut)
			}
		}
		// Trailing garbage must be rejected (frames are exact).
		if _, err := decodeReq(append(append([]byte{}, body...), 0xee)); err == nil {
			t.Fatalf("%s: trailing byte accepted", tc.name)
		}
	}
	if _, err := decodeReq([]byte{250}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := decodeReq(nil); err == nil {
		t.Fatal("empty body accepted")
	}
}

// TestWireCandidatesRespRoundTrip pins the candidates response
// encoding through the client-side scanner.
func TestWireCandidatesRespRoundTrip(t *testing.T) {
	entries := []Entry{{ID: 1, Addr: "a:1"}, {ID: -9, Addr: "host.example:65535"}, {ID: 3, Addr: ""}}
	body := appendCandidatesResp(nil, entries)
	sc := scanner{b: body}
	if st := sc.u8("status"); st != stOK {
		t.Fatalf("status %d", st)
	}
	n := int(sc.u16("count"))
	got := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		got = append(got, Entry{ID: sc.i32("id"), Addr: sc.str("addr")})
	}
	if err := sc.done(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("entries %d, want %d", len(got), len(entries))
	}
	for i := range got {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v want %+v", i, got[i], entries[i])
		}
	}
}

// TestWireErrorResp pins error responses and their client-side
// classification.
func TestWireErrorResp(t *testing.T) {
	body := appendErrResp(nil, stUnavailable, "tracker down")
	sc := scanner{b: body}
	st := sc.u8("status")
	msg := sc.str("msg")
	if err := sc.done(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(respError(st, msg), ErrUnavailable) {
		t.Fatal("unavailable status did not map to ErrUnavailable")
	}
	if err := respError(stOwnerLimit, "x"); !errors.Is(err, ErrOwnerLimit) {
		t.Fatalf("owner-limit status mapped to %v", err)
	}
	if err := respError(stBadRequest, "nope"); errors.Is(err, ErrUnavailable) {
		t.Fatal("bad-request status retryable")
	}
	// Long messages are truncated, not rejected.
	long := strings.Repeat("m", 1000)
	body = appendErrResp(nil, stBadRequest, long)
	sc = scanner{b: body}
	sc.u8("status")
	if got := sc.str("msg"); len(got) != 255 {
		t.Fatalf("message length %d, want 255", len(got))
	}
}

// TestWireUnavailableRetryAfter pins the extended unavailable
// response — error body plus u32 retry-after hint — as the client
// scans it.
func TestWireUnavailableRetryAfter(t *testing.T) {
	body := appendUnavailableResp(nil, "tracker overloaded", 750)
	sc := scanner{b: body}
	if st := sc.u8("status"); st != stUnavailable {
		t.Fatalf("status %d", st)
	}
	if msg := sc.str("msg"); msg != "tracker overloaded" {
		t.Fatalf("msg %q", msg)
	}
	if ms := sc.u32("retry-after"); ms != 750 {
		t.Fatalf("retry-after %d, want 750", ms)
	}
	if err := sc.done(); err != nil {
		t.Fatal(err)
	}
	// Truncating the hint must error, never panic.
	for cut := len(body) - 4; cut < len(body); cut++ {
		sc := scanner{b: body[:cut]}
		sc.u8("status")
		sc.str("msg")
		sc.u32("retry-after")
		if sc.done() == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestWireFraming pins the frame reader's bounds and the scratch-buffer
// reuse contract.
func TestWireFraming(t *testing.T) {
	var buf bytes.Buffer
	body := appendRegisterReq(nil, 7, "a:1")
	scratch, err := writeTrackerFrame(&buf, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	readBuf, got, err := readTrackerFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("frame body %x, want %x", got, body)
	}
	// Reuse: a second frame through the same buffers must not allocate
	// differently or corrupt.
	buf.Reset()
	body2 := appendLeaveReq(nil, 8)
	if _, err := writeTrackerFrame(&buf, scratch, body2); err != nil {
		t.Fatal(err)
	}
	if _, got, err = readTrackerFrame(&buf, readBuf); err != nil || !bytes.Equal(got, body2) {
		t.Fatalf("reused-buffer frame: %x err=%v", got, err)
	}

	// Zero-length and oversized frames are rejected.
	for _, hdr := range [][]byte{
		{0, 0, 0, 0},
		{0xff, 0xff, 0xff, 0xff},
		{0, 2, 0, 0}, // 128 KiB > maxTrackerFrame
	} {
		if _, _, err := readTrackerFrame(bytes.NewReader(hdr), nil); err == nil {
			t.Fatalf("frame header %x accepted", hdr)
		}
	}
	// Truncated body errors.
	short := []byte{0, 0, 0, 10, 1, 2}
	if _, _, err := readTrackerFrame(bytes.NewReader(short), nil); err == nil {
		t.Fatal("truncated frame accepted")
	}
}
