package netboot

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"coolstream/internal/faults"
	"coolstream/internal/sim"
)

// TestShedLadder drives the load meter through both levels with a
// pinned clock: new registrations shed first, renewals and candidates
// keep working, candidates shed only at the hard level, and an idle
// tracker recovers.
func TestShedLadder(t *testing.T) {
	now := time.Unix(1000, 0)
	reg := NewRegistry(RegistryConfig{Clock: func() time.Time { return now }})
	reg.EnableShedding(ShedConfig{MaxOpsPerSec: 50, RetryAfter: 250 * time.Millisecond})

	// Establish a lease before the storm.
	if _, err := reg.Register(1, "a:1", ""); err != nil {
		t.Fatal(err)
	}

	// A quiet tracker admits everything.
	if reg.ShedLevel() != shedNone || !reg.AdmitRegister(2) || !reg.AdmitCandidates() {
		t.Fatal("quiet tracker shed")
	}

	// Burst: 80 ops in one instant → rate 80/s, over the 50/s soft
	// bound but under the 100/s hard one.
	for i := 0; i < 80; i++ {
		reg.BeginOp()()
	}
	if lvl := reg.ShedLevel(); lvl != shedNew {
		t.Fatalf("level %d after soft burst, want %d", lvl, shedNew)
	}
	if reg.AdmitRegister(2) {
		t.Fatal("new registration admitted at soft level")
	}
	if !reg.AdmitRegister(1) {
		t.Fatal("renewal shed — the established swarm must keep its leases")
	}
	if !reg.AdmitCandidates() {
		t.Fatal("candidates shed at soft level")
	}

	// Push past the hard threshold: candidates shed too.
	for i := 0; i < 40; i++ {
		reg.BeginOp()()
	}
	if lvl := reg.ShedLevel(); lvl != shedAll {
		t.Fatalf("level %d after hard burst, want %d", lvl, shedAll)
	}
	if reg.AdmitCandidates() {
		t.Fatal("candidates admitted at hard level")
	}

	if st := reg.ShedStats(); st.NewRegistrations == 0 || st.Candidates == 0 {
		t.Fatalf("shed counters not recorded: %+v", st)
	}

	// Idle recovery: the decayed rate sinks below the bound.
	now = now.Add(3 * time.Second)
	if lvl := reg.ShedLevel(); lvl != shedNone {
		t.Fatalf("level %d after idle, want %d", lvl, shedNone)
	}
	if !reg.AdmitRegister(2) || !reg.AdmitCandidates() {
		t.Fatal("tracker did not recover after idling")
	}
}

// TestShedInFlightDepth exercises the depth bound: requests held open
// past the limit shed new registrations until they drain.
func TestShedInFlightDepth(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	reg.EnableShedding(ShedConfig{MaxInFlight: 4})
	var releases []func()
	for i := 0; i < 6; i++ {
		releases = append(releases, reg.BeginOp())
	}
	if reg.AdmitRegister(9) {
		t.Fatal("registration admitted past the depth bound")
	}
	for _, r := range releases {
		r()
	}
	if !reg.AdmitRegister(9) {
		t.Fatal("registration shed after the depth drained")
	}
}

// TestTCPServerShedsAndRecovers floods a shedding binary tracker with
// new registrations and verifies the refusals are retryable, carry the
// retry-after hint, spare renewals, and clear once the storm stops.
func TestTCPServerShedsAndRecovers(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	reg.EnableShedding(ShedConfig{MaxOpsPerSec: 40, RetryAfter: 200 * time.Millisecond})
	srv := NewTCPServer(reg, TCPServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// An established peer registers while the tracker is quiet.
	est := NewTCPClient(addr)
	defer est.Close()
	if err := est.Register(1, "a:1"); err != nil {
		t.Fatal(err)
	}

	// Storm: no backoff configured, so the first refusal surfaces.
	c := NewTCPClient(addr)
	defer c.Close()
	var shed *UnavailableError
	for i := 0; i < 2000 && shed == nil; i++ {
		err := c.Register(int32(100+i), "b:1")
		if err != nil && !errors.As(err, &shed) {
			t.Fatalf("storm register %d: %v", i, err)
		}
	}
	if shed == nil {
		t.Fatal("storm never shed")
	}
	if shed.RetryAfter != 200*time.Millisecond {
		t.Fatalf("retry-after %v, want 200ms", shed.RetryAfter)
	}
	// Renewals ride through the overload.
	if err := est.Register(1, "a:1"); err != nil {
		t.Fatalf("renewal shed: %v", err)
	}
	// Recovery: once the storm stops the meter decays and new
	// registrations are admitted again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.Register(7777, "c:1"); err == nil {
			break
		} else if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("recovery register: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("tracker never recovered")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestTCPClientHonorsRetryAfter verifies the binary client floors its
// backoff pause at the server's hint.
func TestTCPClientHonorsRetryAfter(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	reg.EnableShedding(ShedConfig{MaxOpsPerSec: 1, RetryAfter: 400 * time.Millisecond})
	srv := NewTCPServer(reg, TCPServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Heat the meter so the first request is shed.
	for i := 0; i < 10; i++ {
		reg.BeginOp()()
	}
	c := NewTCPClient(addr)
	defer c.Close()
	c.SetBackoff(faults.Backoff{Base: sim.Millisecond, Cap: 2 * sim.Millisecond}, 2, 1)
	t0 := time.Now()
	err = c.Register(50, "x:1")
	elapsed := time.Since(t0)
	// Two attempts, one pause between them: the 400ms hint must floor
	// the (tiny) backoff schedule.
	if err == nil {
		// The meter may have decayed under 1 op/s by the retry — fine,
		// as long as the pause respected the hint.
		if elapsed < 350*time.Millisecond {
			t.Fatalf("retry after %v, hint was 400ms", elapsed)
		}
	} else if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("unexpected error: %v", err)
	} else if elapsed < 350*time.Millisecond {
		t.Fatalf("gave up after %v, hint was 400ms", elapsed)
	}
}

// TestHTTPShedRetryAfter drives the registry to hard shed and checks
// the HTTP shim mirrors the hint as a Retry-After header which the
// HTTP client surfaces as an UnavailableError.
func TestHTTPShedRetryAfter(t *testing.T) {
	now := time.Unix(0, 0)
	reg := NewRegistry(RegistryConfig{Clock: func() time.Time { return now }})
	reg.EnableShedding(ShedConfig{MaxOpsPerSec: 10, RetryAfter: 300 * time.Millisecond})
	for i := 0; i < 100; i++ {
		reg.BeginOp()()
	}
	srv := httptest.NewServer(NewServerWith(reg))
	defer srv.Close()
	c := NewClient(srv.URL, nil)
	var ue *UnavailableError
	if err := c.Register(5, "a:1"); !errors.As(err, &ue) {
		t.Fatalf("want UnavailableError, got %v", err)
	}
	// 300ms rounds up to the header's whole-second floor.
	if ue.RetryAfter != time.Second {
		t.Fatalf("retry-after %v, want 1s", ue.RetryAfter)
	}
	if _, err := c.Candidates(4, ExcludeNone); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("hard shed served candidates")
	}
}
