// The sharded, lease-based peer registry — the production core behind
// both the HTTP shim (netboot.go) and the binary TCP tracker (tcp.go).
//
// The original tracker was a single map behind a single mutex, with
// two production bugs the chaos harness exposed at scale:
//
//   - crashed peers stayed registered forever: Abort() sends no Leave,
//     so /candidates kept handing out dead addresses indefinitely;
//   - every candidates query sorted and shuffled the ENTIRE registry
//     under the global lock — O(N log N) per request, serialized across
//     all requests, which collapses exactly at the paper's 40k evening
//     peak.
//
// This registry fixes both structurally:
//
//   - Leases: Register grants a TTL lease and re-Register renews it.
//     A peer that dies silently simply stops renewing; its lease
//     lapses, candidate sampling skips it immediately (the expiry is
//     checked per returned entry), and the next sweep reclaims the
//     memory. Liveness is a property of the data, not of a cleanup
//     protocol the crashed peer was supposed to run.
//   - Sharding: peers hash to one of S shards (splitmix64 finalizer,
//     the same stable hash the sharded fluid engine uses for its
//     node→shard assignment) with per-shard locks, so registrations
//     and renewals contend only within a shard. Count is an O(S) fold
//     of per-shard counters.
//   - Epoch snapshots: each shard keeps a compact immutable slice of
//     its leases, rebuilt only when the shard's membership version
//     bumps (join/leave/address change — NOT renewals, which only
//     touch the lease's atomic expiry). Candidate queries sample from
//     the snapshots without sorting, without holding any write lock,
//     and without touching the maps at all.
//
// Renewal is therefore the hot path by design: one shard-lock map hit
// plus one atomic store, no version bump, no snapshot invalidation.
package netboot

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"coolstream/internal/xrand"
)

// Registry limits and defaults.
const (
	// DefaultLeaseTTL is the lease granted per Register when the config
	// does not override it.
	DefaultLeaseTTL = 30 * time.Second
	// DefaultCandidates is the candidate count when a query asks for
	// n <= 0 (the HTTP shim's historical default).
	DefaultCandidates = 10
	// DefaultMaxCandidates caps one query's result server-side: a single
	// request must not be able to serialize the whole registry.
	DefaultMaxCandidates = 64
	// MaxAddrBytes bounds one registered address on both the HTTP and
	// binary paths; anything longer is abuse, not an address.
	MaxAddrBytes = 256
)

// Registry errors, distinguishable with errors.Is.
var (
	// ErrOwnerLimit rejects a registration that would exceed the
	// per-owner (per-IP) bound.
	ErrOwnerLimit = errors.New("netboot: per-owner registration limit reached")
	// ErrBadAddr rejects an empty or oversized address.
	ErrBadAddr = errors.New("netboot: bad addr")
)

// RegistryConfig sizes a Registry. The zero value selects production
// defaults (8 shards, 30 s leases, 64-candidate clamp, no per-owner
// bound).
type RegistryConfig struct {
	// Shards is the shard count (default 8). More shards mean less
	// write contention; Count stays O(Shards).
	Shards int
	// LeaseTTL is the lease granted per Register/renewal. 0 selects
	// DefaultLeaseTTL; negative disables expiry (entries live until
	// Leave — the pre-lease behaviour, for tests that need it).
	LeaseTTL time.Duration
	// MaxCandidates clamps one query's n server-side (default
	// DefaultMaxCandidates).
	MaxCandidates int
	// MaxPerOwner bounds live registrations per owner key (the
	// registrant's IP on both server paths). 0 = unbounded.
	MaxPerOwner int
	// Seed drives candidate sampling.
	Seed uint64
	// Clock overrides the time source (tests pin lease expiry).
	Clock func() time.Time
}

// lease is one registered peer. The addr and owner are immutable — a
// re-registration under a new address replaces the lease object — so
// snapshot readers may use them without locks; only the expiry mutates,
// atomically, on renewal.
type lease struct {
	id      int32
	addr    string
	owner   string
	expires atomic.Int64 // UnixNano; math.MaxInt64 when expiry is disabled
}

// regSnapshot is one shard's immutable lease slice at a membership
// version.
type regSnapshot struct {
	version uint64
	leases  []*lease
}

// regShard is one lock domain of the registry.
type regShard struct {
	mu      sync.Mutex
	peers   map[int32]*lease
	version atomic.Uint64 // bumped on join/leave/addr change, not renewal
	live    atomic.Int64  // len(peers); expired-but-unswept entries included

	snapMu sync.Mutex // serializes snapshot rebuilds
	snap   atomic.Pointer[regSnapshot]
}

// Registry is the sharded lease registry.
type Registry struct {
	cfg     RegistryConfig
	shards  []*regShard
	queries atomic.Uint64 // per-query sampling stream derivation
	shed    atomic.Pointer[shedState]

	ownerMu sync.Mutex
	owners  map[string]int
}

// NewRegistry builds a registry from cfg (zero value = defaults).
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = DefaultMaxCandidates
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	r := &Registry{cfg: cfg, shards: make([]*regShard, cfg.Shards)}
	for i := range r.shards {
		r.shards[i] = &regShard{peers: make(map[int32]*lease)}
	}
	if cfg.MaxPerOwner > 0 {
		r.owners = make(map[string]int)
	}
	return r
}

// splitmix64 is the finalizer mix used repo-wide for stable ID→shard
// assignment (Steele et al., OOPSLA 2014).
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *Registry) shardFor(id int32) *regShard {
	return r.shards[splitmix64(uint64(uint32(id)))%uint64(len(r.shards))]
}

// LeaseTTL returns the configured lease duration (0 when expiry is
// disabled).
func (r *Registry) LeaseTTL() time.Duration {
	if r.cfg.LeaseTTL < 0 {
		return 0
	}
	return r.cfg.LeaseTTL
}

// MaxCandidates returns the server-side clamp on one query's n.
func (r *Registry) MaxCandidates() int { return r.cfg.MaxCandidates }

func (r *Registry) expiryAt(now time.Time) int64 {
	if r.cfg.LeaseTTL < 0 {
		return math.MaxInt64
	}
	return now.Add(r.cfg.LeaseTTL).UnixNano()
}

// ownerInc reserves one registration slot for owner (no-op when the
// bound is off). Callers may hold a shard lock; the owner lock is
// strictly innermost.
func (r *Registry) ownerInc(owner string) error {
	if r.owners == nil || owner == "" {
		return nil
	}
	r.ownerMu.Lock()
	defer r.ownerMu.Unlock()
	if r.owners[owner] >= r.cfg.MaxPerOwner {
		return fmt.Errorf("%w (%q at %d)", ErrOwnerLimit, owner, r.cfg.MaxPerOwner)
	}
	r.owners[owner]++
	return nil
}

func (r *Registry) ownerDec(owner string) {
	if r.owners == nil || owner == "" {
		return
	}
	r.ownerMu.Lock()
	if r.owners[owner] > 1 {
		r.owners[owner]--
	} else {
		delete(r.owners, owner)
	}
	r.ownerMu.Unlock()
}

// Register grants (or renews) id's lease at addr and returns the lease
// duration. owner keys the per-IP bound ("" = exempt). Renewing with an
// unchanged address is the hot path: one atomic expiry store, no
// membership version bump, no snapshot invalidation.
func (r *Registry) Register(id int32, addr, owner string) (time.Duration, error) {
	if addr == "" || len(addr) > MaxAddrBytes {
		return 0, fmt.Errorf("%w: %d bytes", ErrBadAddr, len(addr))
	}
	exp := r.expiryAt(r.cfg.Clock())
	sh := r.shardFor(id)
	sh.mu.Lock()
	if l, ok := sh.peers[id]; ok {
		if l.addr == addr {
			l.expires.Store(exp) // renewal
			sh.mu.Unlock()
			return r.LeaseTTL(), nil
		}
		// Address change: replace the lease object so snapshot readers
		// never observe a mutating addr.
		delete(sh.peers, id)
		sh.live.Add(-1)
		sh.version.Add(1)
		r.ownerDec(l.owner)
	}
	if err := r.ownerInc(owner); err != nil {
		sh.mu.Unlock()
		return 0, err
	}
	l := &lease{id: id, addr: addr, owner: owner}
	l.expires.Store(exp)
	sh.peers[id] = l
	sh.live.Add(1)
	sh.version.Add(1)
	sh.mu.Unlock()
	return r.LeaseTTL(), nil
}

// Leave removes id's registration (graceful departure).
func (r *Registry) Leave(id int32) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	if l, ok := sh.peers[id]; ok {
		delete(sh.peers, id)
		sh.live.Add(-1)
		sh.version.Add(1)
		r.ownerDec(l.owner)
	}
	sh.mu.Unlock()
}

// Count returns the registered-peer count as an O(shards) fold. It may
// transiently include expired leases not yet reclaimed by Sweep;
// candidate queries never return them regardless.
func (r *Registry) Count() int {
	var n int64
	for _, sh := range r.shards {
		n += sh.live.Load()
	}
	return int(n)
}

// Sweep reclaims expired leases and returns how many it evicted.
// Servers run it periodically; correctness never depends on it —
// sampling checks every lease's expiry — it only bounds memory and
// keeps Count honest.
func (r *Registry) Sweep() int {
	if r.cfg.LeaseTTL < 0 {
		return 0
	}
	now := r.cfg.Clock().UnixNano()
	evicted := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		changed := false
		for id, l := range sh.peers {
			if l.expires.Load() <= now {
				delete(sh.peers, id)
				sh.live.Add(-1)
				r.ownerDec(l.owner)
				changed = true
				evicted++
			}
		}
		if changed {
			sh.version.Add(1)
		}
		sh.mu.Unlock()
	}
	return evicted
}

// snapshot returns the shard's lease slice for its current membership
// version, rebuilding it only when the version moved. Readers get an
// immutable slice; the only mutable state they touch afterwards is each
// lease's atomic expiry.
func (sh *regShard) snapshot() *regSnapshot {
	if s := sh.snap.Load(); s != nil && s.version == sh.version.Load() {
		return s
	}
	sh.snapMu.Lock()
	defer sh.snapMu.Unlock()
	if s := sh.snap.Load(); s != nil && s.version == sh.version.Load() {
		return s
	}
	sh.mu.Lock()
	v := sh.version.Load() // stable: bumps happen under sh.mu
	leases := make([]*lease, 0, len(sh.peers))
	for _, l := range sh.peers {
		leases = append(leases, l)
	}
	sh.mu.Unlock()
	s := &regSnapshot{version: v, leases: leases}
	sh.snap.Store(s)
	return s
}

// Candidates returns up to n random live peers, excluding one ID. n is
// clamped to the configured maximum; n <= 0 selects the default. Only
// unexpired leases are returned — a crashed peer drops out of the
// candidate set the moment its lease lapses, swept or not.
//
// Large registries are sampled by random probing into the epoch
// snapshots (O(n) expected, no sorting, no locks); small ones by a
// single reservoir pass. Neither path blocks writers.
func (r *Registry) Candidates(n int, exclude int32) []Entry {
	if n <= 0 {
		n = DefaultCandidates
	}
	if n > r.cfg.MaxCandidates {
		n = r.cfg.MaxCandidates
	}
	now := r.cfg.Clock().UnixNano()
	snaps := make([]*regSnapshot, len(r.shards))
	total := 0
	for i, sh := range r.shards {
		snaps[i] = sh.snapshot()
		total += len(snaps[i].leases)
	}
	out := make([]Entry, 0, min(n, total))
	if total == 0 {
		return out
	}
	rng := xrand.New(r.cfg.Seed ^ splitmix64(r.queries.Add(1)))

	if total <= 4*n {
		// Small registry: one reservoir pass over the snapshots.
		live := 0
		for _, s := range snaps {
			for _, l := range s.leases {
				if l.id == exclude || l.expires.Load() <= now {
					continue
				}
				live++
				if len(out) < n {
					out = append(out, Entry{ID: l.id, Addr: l.addr})
				} else if j := rng.Intn(live); j < n {
					out[j] = Entry{ID: l.id, Addr: l.addr}
				}
			}
		}
		return out
	}

	// Large registry: probe random snapshot positions. n is clamped
	// small, so linear duplicate checks beat a map.
	for attempts := 6*n + 16; attempts > 0 && len(out) < n; attempts-- {
		idx := rng.Intn(total)
		var l *lease
		for _, s := range snaps {
			if idx < len(s.leases) {
				l = s.leases[idx]
				break
			}
			idx -= len(s.leases)
		}
		if l.id == exclude || l.expires.Load() <= now {
			continue
		}
		if !containsID(out, l.id) {
			out = append(out, Entry{ID: l.id, Addr: l.addr})
		}
	}
	if len(out) < n {
		// Probe budget exhausted (heavy expiry or pathological luck):
		// finish with a scan so callers still get everything available.
		for _, s := range snaps {
			for _, l := range s.leases {
				if len(out) >= n {
					return out
				}
				if l.id == exclude || l.expires.Load() <= now || containsID(out, l.id) {
					continue
				}
				out = append(out, Entry{ID: l.id, Addr: l.addr})
			}
		}
	}
	return out
}

func containsID(es []Entry, id int32) bool {
	for i := range es {
		if es[i].ID == id {
			return true
		}
	}
	return false
}
