package netboot

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"coolstream/internal/faults"
	"coolstream/internal/sim"
)

func newTCPPair(t *testing.T, cfg RegistryConfig) (*TCPServer, *TCPClient) {
	t.Helper()
	srv := NewTCPServer(NewRegistry(cfg), TCPServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := NewTCPClient(addr)
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// TestTCPRegisterCandidatesLeave is the binary-protocol counterpart of
// the HTTP smoke test: the full register → candidates → leave → count
// cycle over a real socket.
func TestTCPRegisterCandidatesLeave(t *testing.T) {
	srv, c := newTCPPair(t, RegistryConfig{Seed: 1})
	for id := int32(1); id <= 5; id++ {
		lease, err := c.RegisterLease(id, "127.0.0.1:9000")
		if err != nil {
			t.Fatal(err)
		}
		if lease != DefaultLeaseTTL {
			t.Fatalf("lease %v, want %v", lease, DefaultLeaseTTL)
		}
	}
	if n, err := c.Count(); err != nil || n != 5 {
		t.Fatalf("count %d err=%v", n, err)
	}
	cands, err := c.Candidates(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("candidates %d", len(cands))
	}
	for _, e := range cands {
		if e.ID == 1 || e.Addr == "" {
			t.Fatalf("bad candidate %+v", e)
		}
	}
	if err := c.Leave(2); err != nil {
		t.Fatal(err)
	}
	if srv.Registry().Count() != 4 {
		t.Fatalf("registry count %d after leave", srv.Registry().Count())
	}
	// Requesting more than available returns all (clamped server-side).
	cands, err = c.Candidates(60_000, ExcludeNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 4 {
		t.Fatalf("all candidates %d, want 4", len(cands))
	}
}

// TestTCPSharedRegistryWithHTTP pins the shim contract: one registry,
// two protocols — a peer registered over TCP is a candidate over HTTP.
func TestTCPSharedRegistryWithHTTP(t *testing.T) {
	srv, c := newTCPPair(t, RegistryConfig{Seed: 2})
	if err := c.Register(9, "1.2.3.4:9"); err != nil {
		t.Fatal(err)
	}
	shim := NewServerWith(srv.Registry())
	cands := shim.Candidates(5, ExcludeNone)
	if len(cands) != 1 || cands[0].ID != 9 {
		t.Fatalf("HTTP shim candidates %+v", cands)
	}
}

// TestTCPOutageRetry drives the graceful-degradation path: with the
// server marked down, requests answer retryable stUnavailable; a
// backoff client rides through a short outage, and the retry counters
// record it.
func TestTCPOutageRetry(t *testing.T) {
	srv, c := newTCPPair(t, RegistryConfig{Seed: 3})
	c.SetBackoff(faults.Backoff{Base: 20 * sim.Millisecond, Cap: 50 * sim.Millisecond, JitterFrac: 0.5}, 10, 1)

	srv.SetDown(true)
	var wg sync.WaitGroup
	wg.Add(1)
	var regErr error
	go func() {
		defer wg.Done()
		regErr = c.Register(1, "x:1")
	}()
	time.Sleep(80 * time.Millisecond)
	srv.SetDown(false)
	wg.Wait()
	if regErr != nil {
		t.Fatalf("register through outage: %v", regErr)
	}
	retried, attempts := c.RetryStats()
	if retried != 1 || attempts == 0 {
		t.Fatalf("retry stats retried=%d attempts=%d", retried, attempts)
	}
	if srv.Registry().Count() != 1 {
		t.Fatalf("count %d after retried register", srv.Registry().Count())
	}

	// Without backoff the outage surfaces immediately as ErrUnavailable.
	srv.SetDown(true)
	c2 := NewTCPClient(srvAddr(t, srv))
	defer c2.Close()
	if err := c2.Register(2, "x:2"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("outage error %v, want ErrUnavailable", err)
	}
}

func srvAddr(t *testing.T, s *TCPServer) string {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		t.Fatal("server not listening")
	}
	return s.ln.Addr().String()
}

// TestTCPStopCancelsBackoff is the un-cancellable-sleep regression: a
// client mid-backoff against a dead tracker must abort as soon as its
// stop channel closes, not after the remaining backoff.
func TestTCPStopCancelsBackoff(t *testing.T) {
	c := NewTCPClient("127.0.0.1:1") // nothing listens here
	defer c.Close()
	c.SetBackoff(faults.Backoff{Base: 10 * sim.Second, Cap: 20 * sim.Second}, 5, 7)
	stop := make(chan struct{})
	c.SetStop(stop)

	done := make(chan error, 1)
	go func() { done <- c.Register(1, "x:1") }()
	time.Sleep(100 * time.Millisecond) // let it fail the dial and enter the pause
	start := time.Now()
	close(stop)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("register against dead tracker succeeded")
		}
		if waited := time.Since(start); waited > time.Second {
			t.Fatalf("stop took %v to abort the backoff", waited)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("stop did not abort the backoff pause")
	}
}

// TestTCPBadRequestNotRetried pins retry classification: protocol
// rejections must fail fast even with a generous retry budget.
func TestTCPBadRequestNotRetried(t *testing.T) {
	_, c := newTCPPair(t, RegistryConfig{Seed: 4})
	c.SetBackoff(faults.Backoff{Base: 50 * sim.Millisecond, Cap: 100 * sim.Millisecond}, 10, 1)
	start := time.Now()
	if err := c.Register(1, ""); err == nil {
		t.Fatal("empty addr accepted")
	}
	if retried, _ := c.RetryStats(); retried != 0 {
		t.Fatalf("bad request was retried %d times", retried)
	}
	if time.Since(start) > time.Second {
		t.Fatal("bad request burned the retry budget")
	}
}

// TestTCPPerIPBound pins the bounded per-IP state end-to-end: the
// connection's remote IP is the owner key.
func TestTCPPerIPBound(t *testing.T) {
	_, c := newTCPPair(t, RegistryConfig{Seed: 5, MaxPerOwner: 2})
	if err := c.Register(1, "a:1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(2, "a:2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(3, "a:3"); !errors.Is(err, ErrOwnerLimit) {
		t.Fatalf("third registration: %v, want ErrOwnerLimit", err)
	}
	// Renewals are exempt; leaving frees quota.
	if err := c.Register(1, "a:1"); err != nil {
		t.Fatalf("renewal: %v", err)
	}
	if err := c.Leave(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(3, "a:3"); err != nil {
		t.Fatalf("register after leave: %v", err)
	}
}

// TestTCPMalformedFramesDropConn pins server robustness: garbage,
// oversized, and truncated frames drop that connection without taking
// the server down.
func TestTCPMalformedFramesDropConn(t *testing.T) {
	srv, c := newTCPPair(t, RegistryConfig{Seed: 6})
	addr := srvAddr(t, srv)
	payloads := [][]byte{
		{0xff, 0xff, 0xff, 0xff},             // absurd length
		{0, 0, 0, 0},                         // zero length
		{0, 0, 0, 3, 0xaa, 0xbb, 0xcc},       // unknown op
		{0, 0, 0, 6, byte(opRegister), 0, 0}, // truncated body (conn stalls, read deadline applies)
	}
	for i, p := range payloads[:3] {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		raw.Write(p)
		raw.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 64)
		// Either an error frame comes back (unknown op) or the conn is
		// dropped; both are acceptable. What matters is below: the
		// server still answers well-formed clients.
		raw.Read(buf)
		raw.Close()
		_ = i
	}
	if err := c.Register(1, "x:1"); err != nil {
		t.Fatalf("server unhealthy after malformed frames: %v", err)
	}
}

// TestTCPIdleTimeout pins the slow-client defence: a connection that
// never sends a complete request is closed by the idle deadline.
func TestTCPIdleTimeout(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Seed: 7})
	srv := NewTCPServer(reg, TCPServerConfig{IdleTimeout: 200 * time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 16)
	start := time.Now()
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("idle connection was not closed")
	}
	if since := time.Since(start); since > 2*time.Second {
		t.Fatalf("idle close took %v", since)
	}
}

// TestTCPServerSweepsLeases pins the background sweep: with a short
// TTL, a silent registration disappears from Count without any query
// touching it.
func TestTCPServerSweepsLeases(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Seed: 8, LeaseTTL: 300 * time.Millisecond})
	srv := NewTCPServer(reg, TCPServerConfig{SweepEvery: 50 * time.Millisecond})
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg.Register(1, "x:1", "")
	deadline := time.Now().Add(3 * time.Second)
	for reg.Count() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("lease never swept; count %d", reg.Count())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestTCPClientThroughFaultInjector pins graceful degradation against
// the internal/faults outage machinery: a dialer wrapped by an
// Injector with a tracker outage window fails during the window and
// recovers after it, through the client's own backoff.
func TestTCPClientThroughFaultInjector(t *testing.T) {
	_, c := newTCPPair(t, RegistryConfig{Seed: 9})
	inj, err := faults.NewInjector(faults.Config{
		TrackerOutages: []faults.Window{{Start: 0, End: 200 * sim.Millisecond}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var now atomic.Int64 // virtual ms
	inj.SetClock(func() sim.Time { return sim.Time(now.Load()) })
	c.SetDialer(inj.TrackerDial(nil))
	c.SetBackoff(faults.Backoff{Base: 20 * sim.Millisecond, Cap: 40 * sim.Millisecond}, 10, 3)

	go func() {
		time.Sleep(60 * time.Millisecond)
		now.Store(300) // outage window [0,200) over
	}()
	if err := c.Register(1, "x:1"); err != nil {
		t.Fatalf("register through injected outage: %v", err)
	}
	if retried, _ := c.RetryStats(); retried == 0 {
		t.Fatal("client never retried through the injected outage")
	}
	if inj.Stats().TrackerRefusals == 0 {
		t.Fatal("injector recorded no tracker refusals")
	}
}
