package gossip

import (
	"sort"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

// Bootstrap is the boot-strap node of §III-B: it tracks currently
// active peers (from join/leave notifications) and hands newcomers a
// random partial list. Like the deployed system it has global
// membership knowledge but gives out only small random samples, so the
// overlay is still built by gossip.
type Bootstrap struct {
	rng    *xrand.RNG
	active map[int]Entry
	// ServerIDs are the dedicated-server peers, always included in
	// replies so every newcomer can reach the server tier even when the
	// random sample is unlucky. The paper's deployment seeds clients
	// with server addresses the same way.
	serverIDs []int
}

// NewBootstrap creates an empty bootstrap node.
func NewBootstrap(rng *xrand.RNG) *Bootstrap {
	if rng == nil {
		panic("gossip: nil rng")
	}
	return &Bootstrap{rng: rng, active: make(map[int]Entry)}
}

// RegisterServer marks a peer ID as a dedicated server.
func (b *Bootstrap) RegisterServer(id int) {
	b.serverIDs = append(b.serverIDs, id)
	sort.Ints(b.serverIDs)
}

// Join records a newly active peer.
func (b *Bootstrap) Join(e Entry, now sim.Time) {
	e.LastSeen = now
	b.active[e.ID] = e
}

// Leave removes a departed peer.
func (b *Bootstrap) Leave(id int) { delete(b.active, id) }

// ActiveCount returns the number of known-active peers.
func (b *Bootstrap) ActiveCount() int { return len(b.active) }

// Candidates returns up to n entries for a joining peer: every
// dedicated server first, then a uniform random sample of other active
// peers (excluding the requester).
func (b *Bootstrap) Candidates(requester, n int) []Entry {
	if n <= 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	for _, id := range b.serverIDs {
		if id == requester {
			continue
		}
		if e, ok := b.active[id]; ok && len(out) < n {
			out = append(out, e)
		}
	}
	// Uniform sample of non-server peers. Iterate in sorted ID order so
	// the reservoir is deterministic for a given RNG state.
	ids := make([]int, 0, len(b.active))
	isServer := make(map[int]bool, len(b.serverIDs))
	for _, id := range b.serverIDs {
		isServer[id] = true
	}
	for id := range b.active {
		if id != requester && !isServer[id] {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	b.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids {
		if len(out) >= n {
			break
		}
		out = append(out, b.active[id])
	}
	return out
}

// UpdatePartnerCount refreshes the advertised partner count of a peer,
// used by stability-aware sampling.
func (b *Bootstrap) UpdatePartnerCount(id, count int) {
	if e, ok := b.active[id]; ok {
		e.PartnerCount = count
		b.active[id] = e
	}
}

// EntryOf returns the bootstrap's record of the peer, if active.
func (b *Bootstrap) EntryOf(id int) (Entry, bool) {
	e, ok := b.active[id]
	return e, ok
}

// ClassCounts tallies active peers by class; used in experiments.
func (b *Bootstrap) ClassCounts() [netmodel.NumClasses]int {
	var counts [netmodel.NumClasses]int
	for _, e := range b.active {
		counts[e.Class]++
	}
	return counts
}
