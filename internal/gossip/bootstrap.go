package gossip

import (
	"sort"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

// Bootstrap is the boot-strap node of §III-B: it tracks currently
// active peers (from join/leave notifications) and hands newcomers a
// random partial list. Like the deployed system it has global
// membership knowledge but gives out only small random samples, so the
// overlay is still built by gossip.
type Bootstrap struct {
	rng    *xrand.RNG
	active map[int]Entry
	// ServerIDs are the dedicated-server peers, always included in
	// replies so every newcomer can reach the server tier even when the
	// random sample is unlucky. The paper's deployment seeds clients
	// with server addresses the same way.
	serverIDs []int
	// sortedIDs mirrors the non-server keys of active in ascending
	// order, maintained incrementally on join/leave so Candidates does
	// not rebuild and re-sort the full membership per request — at the
	// paper's 40k evening peak that rebuild dominated every join.
	sortedIDs []int
	// idScratch/outScratch are reused across Candidates calls so the
	// join hot path allocates nothing.
	idScratch  []int
	outScratch []Entry
}

// NewBootstrap creates an empty bootstrap node.
func NewBootstrap(rng *xrand.RNG) *Bootstrap {
	if rng == nil {
		panic("gossip: nil rng")
	}
	return &Bootstrap{rng: rng, active: make(map[int]Entry)}
}

// RegisterServer marks a peer ID as a dedicated server. The peer is
// pulled out of the random-sample pool: servers are handed out
// unconditionally instead.
func (b *Bootstrap) RegisterServer(id int) {
	b.serverIDs = append(b.serverIDs, id)
	sort.Ints(b.serverIDs)
	b.sortedRemove(id)
}

// Join records a newly active peer.
func (b *Bootstrap) Join(e Entry, now sim.Time) {
	e.LastSeen = now
	if _, known := b.active[e.ID]; !known && !b.isServer(e.ID) {
		b.sortedInsert(e.ID)
	}
	b.active[e.ID] = e
}

// Leave removes a departed peer.
func (b *Bootstrap) Leave(id int) {
	if _, known := b.active[id]; known {
		delete(b.active, id)
		if !b.isServer(id) {
			b.sortedRemove(id)
		}
	}
}

func (b *Bootstrap) isServer(id int) bool {
	i := sort.SearchInts(b.serverIDs, id)
	return i < len(b.serverIDs) && b.serverIDs[i] == id
}

func (b *Bootstrap) sortedInsert(id int) {
	i := sort.SearchInts(b.sortedIDs, id)
	if i < len(b.sortedIDs) && b.sortedIDs[i] == id {
		return
	}
	b.sortedIDs = append(b.sortedIDs, 0)
	copy(b.sortedIDs[i+1:], b.sortedIDs[i:])
	b.sortedIDs[i] = id
}

func (b *Bootstrap) sortedRemove(id int) {
	i := sort.SearchInts(b.sortedIDs, id)
	if i < len(b.sortedIDs) && b.sortedIDs[i] == id {
		b.sortedIDs = append(b.sortedIDs[:i], b.sortedIDs[i+1:]...)
	}
}

// ActiveCount returns the number of known-active peers.
func (b *Bootstrap) ActiveCount() int { return len(b.active) }

// Candidates returns up to n entries for a joining peer: every
// dedicated server first, then a uniform random sample of other active
// peers (excluding the requester).
//
// The candidate pool walks the incrementally maintained sorted ID
// mirror instead of collecting and sorting the membership map per call;
// the draw sequence (one Shuffle over the non-server, non-requester
// IDs in ascending order) is bit-identical to the rebuild-and-sort
// implementation. The returned slice is scratch owned by the
// bootstrap: it is valid only until the next Candidates call.
func (b *Bootstrap) Candidates(requester, n int) []Entry {
	if n <= 0 {
		return nil
	}
	out := b.outScratch[:0]
	for _, id := range b.serverIDs {
		if id == requester {
			continue
		}
		if e, ok := b.active[id]; ok && len(out) < n {
			out = append(out, e)
		}
	}
	ids := b.idScratch[:0]
	for _, id := range b.sortedIDs {
		if id != requester {
			ids = append(ids, id)
		}
	}
	b.idScratch = ids
	b.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids {
		if len(out) >= n {
			break
		}
		out = append(out, b.active[id])
	}
	b.outScratch = out
	return out
}

// UpdatePartnerCount refreshes the advertised partner count of a peer,
// used by stability-aware sampling.
func (b *Bootstrap) UpdatePartnerCount(id, count int) {
	if e, ok := b.active[id]; ok {
		e.PartnerCount = count
		b.active[id] = e
	}
}

// EntryOf returns the bootstrap's record of the peer, if active.
func (b *Bootstrap) EntryOf(id int) (Entry, bool) {
	e, ok := b.active[id]
	return e, ok
}

// ClassCounts tallies active peers by class; used in experiments.
func (b *Bootstrap) ClassCounts() [netmodel.NumClasses]int {
	var counts [netmodel.NumClasses]int
	for _, e := range b.active {
		counts[e.Class]++
	}
	return counts
}
