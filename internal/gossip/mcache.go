// Package gossip implements Coolstreaming's membership layer: the
// per-node membership cache (mCache) holding a partial view of the
// overlay, the bootstrap node that seeds new joiners, and the cache
// replacement policies.
//
// The paper attributes the long media-ready times under flash crowds
// (Fig. 7) to the *random-replacement* mCache policy: during bursts the
// cache fills with newly joined peers that cannot yet provide stable
// streams, and suggests a replacement algorithm that converges to
// stable peers instead (§V-C). Both policies are implemented here; the
// ablation experiment E12 compares them.
package gossip

import (
	"sort"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

// Entry is one mCache record: a partial, possibly stale view of
// another peer.
type Entry struct {
	ID           int
	Class        netmodel.UserClass
	JoinedAt     sim.Time
	LastSeen     sim.Time
	PartnerCount int
}

// Policy selects which entry a full cache evicts.
type Policy interface {
	// Evict returns the index in entries to replace when inserting
	// incoming at time now. entries is non-empty.
	Evict(entries []Entry, incoming Entry, now sim.Time, r *xrand.RNG) int
	// Name identifies the policy in logs and experiment tables.
	Name() string
}

// RandomReplace is the paper's deployed policy: replace a uniformly
// random entry.
type RandomReplace struct{}

// Evict implements Policy.
func (RandomReplace) Evict(entries []Entry, _ Entry, _ sim.Time, r *xrand.RNG) int {
	return r.Intn(len(entries))
}

// Name implements Policy.
func (RandomReplace) Name() string { return "random" }

// StabilityAware is the paper's suggested improvement: prefer to evict
// the youngest (least proven) entry so the cache converges towards
// long-lived, stable peers.
type StabilityAware struct{}

// Evict implements Policy.
func (StabilityAware) Evict(entries []Entry, _ Entry, _ sim.Time, _ *xrand.RNG) int {
	youngest := 0
	for i, e := range entries {
		if e.JoinedAt > entries[youngest].JoinedAt {
			youngest = i
		}
	}
	return youngest
}

// Name implements Policy.
func (StabilityAware) Name() string { return "stability" }

// MCache is a bounded partial view of the overlay.
type MCache struct {
	capacity int
	policy   Policy
	rng      *xrand.RNG
	entries  []Entry
	index    map[int]int // peer ID → position in entries

	// candScratch and outScratch are reused across Sample calls so the
	// per-tick gossip step allocates nothing at steady state.
	candScratch []int
	outScratch  []Entry
}

// NewMCache creates a cache with the given capacity and replacement
// policy. It panics on non-positive capacity or nil inputs, which are
// programming errors.
func NewMCache(capacity int, policy Policy, rng *xrand.RNG) *MCache {
	if capacity <= 0 {
		panic("gossip: non-positive mCache capacity")
	}
	if policy == nil || rng == nil {
		panic("gossip: nil policy or rng")
	}
	return &MCache{
		capacity: capacity,
		policy:   policy,
		rng:      rng,
		index:    make(map[int]int),
	}
}

// Reset empties the cache in place and replaces its RNG stream with
// the given state, keeping every backing allocation (entry slice,
// index map buckets, scratch) — the recycling path for node shells:
// a Reset cache behaves exactly like a NewMCache built with an RNG in
// that state.
func (c *MCache) Reset(stream xrand.RNG) {
	*c.rng = stream
	c.entries = c.entries[:0]
	for k := range c.index {
		delete(c.index, k)
	}
}

// Len returns the number of cached entries.
func (c *MCache) Len() int { return len(c.entries) }

// Capacity returns the maximum number of entries.
func (c *MCache) Capacity() int { return c.capacity }

// Insert adds or refreshes an entry. A known peer's record is updated
// in place; a new peer either fills spare capacity or displaces the
// policy's eviction choice.
func (c *MCache) Insert(e Entry, now sim.Time) {
	e.LastSeen = now
	if pos, ok := c.index[e.ID]; ok {
		c.entries[pos] = e
		return
	}
	if len(c.entries) < c.capacity {
		c.index[e.ID] = len(c.entries)
		c.entries = append(c.entries, e)
		return
	}
	victim := c.policy.Evict(c.entries, e, now, c.rng)
	delete(c.index, c.entries[victim].ID)
	c.entries[victim] = e
	c.index[e.ID] = victim
}

// Remove drops a peer from the cache if present (e.g. after a failed
// connection attempt or an observed departure).
func (c *MCache) Remove(id int) {
	pos, ok := c.index[id]
	if !ok {
		return
	}
	last := len(c.entries) - 1
	delete(c.index, id)
	if pos != last {
		c.entries[pos] = c.entries[last]
		c.index[c.entries[pos].ID] = pos
	}
	c.entries = c.entries[:last]
}

// Contains reports whether the peer is cached.
func (c *MCache) Contains(id int) bool {
	_, ok := c.index[id]
	return ok
}

// Sample returns up to n distinct entries chosen uniformly at random.
// The peer `self` is always excluded (pass a negative ID to exclude
// nothing), as is every ID in excludeIDs, which must be sorted
// ascending — callers typically pass their partner-ID slice, so the
// hot gossip/recruit paths build no per-call exclusion set.
//
// The returned slice is scratch owned by the cache: it is valid only
// until the next Sample call and must not be retained.
func (c *MCache) Sample(n int, self int, excludeIDs []int) []Entry {
	if n <= 0 {
		return nil
	}
	c.candScratch = c.candScratch[:0]
	for i := range c.entries {
		id := c.entries[i].ID
		if id == self || containsSorted(excludeIDs, id) {
			continue
		}
		c.candScratch = append(c.candScratch, i)
	}
	candidates := c.candScratch
	c.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if n > len(candidates) {
		n = len(candidates)
	}
	if n == 0 {
		return nil
	}
	c.outScratch = c.outScratch[:0]
	for i := 0; i < n; i++ {
		c.outScratch = append(c.outScratch, c.entries[candidates[i]])
	}
	return c.outScratch
}

// containsSorted reports whether id occurs in the ascending slice ids.
func containsSorted(ids []int, id int) bool {
	i := sort.SearchInts(ids, id)
	return i < len(ids) && ids[i] == id
}

// Snapshot returns a copy of all entries sorted by peer ID (for
// deterministic iteration in metrics and tests).
func (c *MCache) Snapshot() []Entry {
	out := append([]Entry(nil), c.entries...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
