package gossip

import (
	"testing"
	"testing/quick"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

func newTestCache(capacity int) *MCache {
	return NewMCache(capacity, RandomReplace{}, xrand.New(1))
}

func entry(id int) Entry {
	return Entry{ID: id, Class: netmodel.NAT, JoinedAt: sim.Time(id) * sim.Second}
}

func TestMCacheInsertAndLookup(t *testing.T) {
	c := newTestCache(4)
	for i := 0; i < 4; i++ {
		c.Insert(entry(i), 0)
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d", c.Len())
	}
	for i := 0; i < 4; i++ {
		if !c.Contains(i) {
			t.Fatalf("missing id %d", i)
		}
	}
}

func TestMCacheRefreshInPlace(t *testing.T) {
	c := newTestCache(2)
	c.Insert(entry(1), 0)
	c.Insert(entry(2), 0)
	e := entry(1)
	e.PartnerCount = 9
	c.Insert(e, 10*sim.Second)
	if c.Len() != 2 {
		t.Fatalf("refresh grew cache: %d", c.Len())
	}
	snap := c.Snapshot()
	if snap[0].ID != 1 || snap[0].PartnerCount != 9 || snap[0].LastSeen != 10*sim.Second {
		t.Fatalf("refresh lost updates: %+v", snap[0])
	}
}

func TestMCacheEvictionKeepsCapacity(t *testing.T) {
	c := newTestCache(8)
	for i := 0; i < 100; i++ {
		c.Insert(entry(i), 0)
		if c.Len() > 8 {
			t.Fatalf("cache exceeded capacity: %d", c.Len())
		}
	}
	if c.Len() != 8 {
		t.Fatalf("cache not full: %d", c.Len())
	}
}

func TestMCacheIndexConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		c := NewMCache(1+r.Intn(10), RandomReplace{}, xrand.New(seed^1))
		live := map[int]bool{}
		for op := 0; op < 300; op++ {
			id := r.Intn(30)
			if r.Bool(0.7) {
				c.Insert(entry(id), sim.Time(op))
				live[id] = true
			} else {
				c.Remove(id)
				delete(live, id)
			}
		}
		// Every snapshot entry must be findable via Contains and unique.
		snap := c.Snapshot()
		seen := map[int]bool{}
		for _, e := range snap {
			if seen[e.ID] || !c.Contains(e.ID) {
				return false
			}
			seen[e.ID] = true
		}
		return len(snap) == c.Len() && c.Len() <= c.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMCacheRemove(t *testing.T) {
	c := newTestCache(4)
	for i := 0; i < 4; i++ {
		c.Insert(entry(i), 0)
	}
	c.Remove(1)
	if c.Contains(1) || c.Len() != 3 {
		t.Fatal("remove failed")
	}
	c.Remove(1) // idempotent
	if c.Len() != 3 {
		t.Fatal("double remove changed cache")
	}
	// Remaining entries intact.
	for _, id := range []int{0, 2, 3} {
		if !c.Contains(id) {
			t.Fatalf("remove corrupted entry %d", id)
		}
	}
}

func TestMCacheSample(t *testing.T) {
	c := newTestCache(10)
	for i := 0; i < 10; i++ {
		c.Insert(entry(i), 0)
	}
	s := c.Sample(5, -1, nil)
	if len(s) != 5 {
		t.Fatalf("sample size %d", len(s))
	}
	seen := map[int]bool{}
	for _, e := range s {
		if seen[e.ID] {
			t.Fatal("sample contains duplicates")
		}
		seen[e.ID] = true
	}
	// Exclusion respected: self plus a sorted exclude slice.
	excl := []int{1, 2}
	s = c.Sample(10, 0, excl)
	if len(s) != 7 {
		t.Fatalf("excluded sample size %d, want 7", len(s))
	}
	for _, e := range s {
		if e.ID == 0 || e.ID == 1 || e.ID == 2 {
			t.Fatal("sample included excluded peer")
		}
	}
	if c.Sample(0, -1, nil) != nil {
		t.Fatal("zero sample not nil")
	}
	// The result is scratch reused by the next call: copy what must
	// survive. Two back-to-back samples must still be internally valid.
	a := c.Sample(3, -1, nil)
	ids := []int{a[0].ID, a[1].ID, a[2].ID}
	b := c.Sample(3, -1, nil)
	if len(b) != 3 {
		t.Fatalf("second sample size %d", len(b))
	}
	_ = ids
}

func TestStabilityAwareEvictsYoungest(t *testing.T) {
	entries := []Entry{
		{ID: 1, JoinedAt: 100 * sim.Second},
		{ID: 2, JoinedAt: 500 * sim.Second}, // youngest
		{ID: 3, JoinedAt: 50 * sim.Second},
	}
	idx := (StabilityAware{}).Evict(entries, Entry{ID: 9}, 1000*sim.Second, nil)
	if idx != 1 {
		t.Fatalf("evicted index %d, want 1 (youngest)", idx)
	}
}

func TestStabilityAwareCacheConvergesToOldPeers(t *testing.T) {
	c := NewMCache(5, StabilityAware{}, xrand.New(3))
	// Five old, stable peers fill the cache.
	for i := 0; i < 5; i++ {
		c.Insert(Entry{ID: i, JoinedAt: sim.Time(i) * sim.Second}, 0)
	}
	// A flash crowd of young peers must not displace them.
	for i := 100; i < 200; i++ {
		c.Insert(Entry{ID: i, JoinedAt: sim.Hour}, sim.Hour)
	}
	old := 0
	for _, e := range c.Snapshot() {
		if e.ID < 5 {
			old++
		}
	}
	if old != 4 {
		// One slot churns (each young insert displaces the previous
		// young tenant), but the four seasoned entries must survive.
		t.Fatalf("stability cache kept %d old peers, want 4", old)
	}
}

func TestRandomReplaceCacheTurnsOverUnderFlashCrowd(t *testing.T) {
	c := NewMCache(5, RandomReplace{}, xrand.New(4))
	for i := 0; i < 5; i++ {
		c.Insert(Entry{ID: i, JoinedAt: 0}, 0)
	}
	for i := 100; i < 300; i++ {
		c.Insert(Entry{ID: i, JoinedAt: sim.Hour}, sim.Hour)
	}
	old := 0
	for _, e := range c.Snapshot() {
		if e.ID < 5 {
			old++
		}
	}
	if old > 1 {
		t.Fatalf("random cache kept %d old peers after 200 inserts; expected near-total turnover", old)
	}
}

func TestPolicyNames(t *testing.T) {
	if (RandomReplace{}).Name() != "random" || (StabilityAware{}).Name() != "stability" {
		t.Fatal("policy names wrong")
	}
}

func TestNewMCachePanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewMCache(0, RandomReplace{}, xrand.New(1)) },
		func() { NewMCache(5, nil, xrand.New(1)) },
		func() { NewMCache(5, RandomReplace{}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
