package gossip

import (
	"testing"

	"coolstream/internal/netmodel"
	"coolstream/internal/xrand"
)

func TestBootstrapJoinLeave(t *testing.T) {
	b := NewBootstrap(xrand.New(1))
	b.Join(entry(1), 0)
	b.Join(entry(2), 0)
	if b.ActiveCount() != 2 {
		t.Fatalf("active = %d", b.ActiveCount())
	}
	b.Leave(1)
	if b.ActiveCount() != 1 {
		t.Fatalf("active after leave = %d", b.ActiveCount())
	}
	if _, ok := b.EntryOf(1); ok {
		t.Fatal("departed peer still known")
	}
	if _, ok := b.EntryOf(2); !ok {
		t.Fatal("active peer unknown")
	}
}

func TestBootstrapCandidatesExcludeRequester(t *testing.T) {
	b := NewBootstrap(xrand.New(2))
	for i := 0; i < 10; i++ {
		b.Join(entry(i), 0)
	}
	cands := b.Candidates(3, 20)
	if len(cands) != 9 {
		t.Fatalf("candidates = %d, want 9", len(cands))
	}
	for _, e := range cands {
		if e.ID == 3 {
			t.Fatal("requester included in candidates")
		}
	}
}

func TestBootstrapCandidatesLimit(t *testing.T) {
	b := NewBootstrap(xrand.New(3))
	for i := 0; i < 50; i++ {
		b.Join(entry(i), 0)
	}
	if got := len(b.Candidates(0, 5)); got != 5 {
		t.Fatalf("limited candidates = %d", got)
	}
	if b.Candidates(0, 0) != nil {
		t.Fatal("zero-limit candidates not nil")
	}
}

func TestBootstrapServersAlwaysFirst(t *testing.T) {
	b := NewBootstrap(xrand.New(4))
	for i := 0; i < 30; i++ {
		b.Join(entry(i), 0)
	}
	srv := Entry{ID: 1000, Class: netmodel.Direct}
	b.Join(srv, 0)
	b.RegisterServer(1000)
	for trial := 0; trial < 10; trial++ {
		cands := b.Candidates(5, 4)
		if len(cands) == 0 || cands[0].ID != 1000 {
			t.Fatalf("server not first in candidates: %+v", cands)
		}
	}
	// The requester being the server itself is excluded.
	cands := b.Candidates(1000, 4)
	for _, e := range cands {
		if e.ID == 1000 {
			t.Fatal("server returned to itself")
		}
	}
}

func TestBootstrapSampleVaries(t *testing.T) {
	b := NewBootstrap(xrand.New(5))
	for i := 0; i < 100; i++ {
		b.Join(entry(i), 0)
	}
	// Candidates returns bootstrap-owned scratch; copy before the next call.
	first := append([]Entry(nil), b.Candidates(-1, 5)...)
	varied := false
	for trial := 0; trial < 10 && !varied; trial++ {
		next := b.Candidates(-1, 5)
		for i := range next {
			if next[i].ID != first[i].ID {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("bootstrap always returns the identical sample")
	}
}

func TestBootstrapUpdatePartnerCount(t *testing.T) {
	b := NewBootstrap(xrand.New(6))
	b.Join(entry(1), 0)
	b.UpdatePartnerCount(1, 7)
	e, _ := b.EntryOf(1)
	if e.PartnerCount != 7 {
		t.Fatalf("partner count = %d", e.PartnerCount)
	}
	b.UpdatePartnerCount(99, 3) // unknown peer: no-op
}

func TestBootstrapClassCounts(t *testing.T) {
	b := NewBootstrap(xrand.New(7))
	b.Join(Entry{ID: 1, Class: netmodel.Direct}, 0)
	b.Join(Entry{ID: 2, Class: netmodel.NAT}, 0)
	b.Join(Entry{ID: 3, Class: netmodel.NAT}, 0)
	counts := b.ClassCounts()
	if counts[netmodel.Direct] != 1 || counts[netmodel.NAT] != 2 {
		t.Fatalf("class counts %v", counts)
	}
}
