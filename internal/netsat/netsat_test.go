package netsat

import (
	"testing"
	"time"

	"coolstream/internal/buffer"
)

// quickConfig keeps the harness affordable inside the test suite: a
// modest rate, two peers, sub-second window.
func quickConfig(legacy bool) Config {
	return Config{
		Peers:    2,
		Layout:   buffer.Layout{K: 4, RateBps: 1e6, BlockBytes: 800},
		BMPeriod: 25 * time.Millisecond,
		Duration: 500 * time.Millisecond,
		Settle:   300 * time.Millisecond,
		Legacy:   legacy,
	}
}

func TestRunBothPlanes(t *testing.T) {
	for _, legacy := range []bool{true, false} {
		rep, err := Run(quickConfig(legacy))
		if err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		if rep.Delivered == 0 || rep.WriteCalls == 0 || rep.BytesSent == 0 {
			t.Fatalf("legacy=%v: empty measurement %+v", legacy, rep)
		}
		if rep.MinContinuity < 0.5 {
			t.Fatalf("legacy=%v: continuity collapsed at 2 peers: %+v", legacy, rep)
		}
		if rep.BMFrames == 0 {
			t.Fatalf("legacy=%v: no BM traffic measured", legacy)
		}
		if legacy && rep.FanShared > 0 {
			t.Fatalf("legacy plane used the fan-out cache: %+v", rep)
		}
		if !legacy && rep.FanEncodes == 0 {
			t.Fatalf("batched plane never used the fan-out encoder: %+v", rep)
		}
	}
}

func TestSweepStopsAtMax(t *testing.T) {
	cfg := quickConfig(false)
	cfg.Duration = 300 * time.Millisecond
	cfg.Settle = 200 * time.Millisecond
	reps, sustainable, err := Sweep(cfg, 2, 4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) == 0 || sustainable < 2 {
		t.Fatalf("sweep: %d runs, sustainable %d", len(reps), sustainable)
	}
}
