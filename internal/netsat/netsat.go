// Package netsat is the data-plane saturation harness: it stands up a
// real-TCP star overlay (one source fanning the full stream out to N
// peers over internal/netpeer) at a deliberately hot block rate,
// measures a steady-state window, and reports the costs the batched
// plane is meant to cut — write syscalls and bytes per delivered
// block, and buffer-map signalling bytes per peer — next to the
// delivered continuity. Running it once with Legacy=true and once
// without gives the before/after the ISSUE's acceptance bars are
// stated over; Sweep grows the peer count until continuity collapses
// to find the sustainable population per plane.
package netsat

import (
	"fmt"
	"time"

	"coolstream/internal/buffer"
	"coolstream/internal/netpeer"
)

// Config parameterises one saturation run.
type Config struct {
	// Peers is the number of full-stream children on the source.
	Peers int
	// Layout is the stream geometry; the default is intentionally hot
	// (8 Mbps in 16 sub-streams of 1250-byte blocks → 800 blocks/s per
	// child) so per-frame overheads dominate and batching is visible.
	// The fine striping also makes full buffer maps expensive (16×8-byte
	// lanes per exchange) — the regime BM deltas exist for.
	Layout buffer.Layout
	// BMPeriod is the buffer-map exchange period (default 10ms —
	// saturation-grade signalling, fast enough that only a few lanes
	// change per tick, which is where deltas pay off).
	BMPeriod time.Duration
	// FlushDelay overrides the writer linger (default 4ms: at 800
	// blocks/s a flush gathers ~3 block frames plus whatever control
	// traffic accumulated).
	FlushDelay time.Duration
	// Duration is the measured steady-state window (default 3s).
	Duration time.Duration
	// Settle is how long after the last join measurement starts
	// (default 500ms).
	Settle time.Duration
	// Legacy selects the pre-batching plane: direct one-write-per-frame
	// sends and full BM maps.
	Legacy bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() {
	if c.Peers <= 0 {
		c.Peers = 8
	}
	if c.Layout.K == 0 {
		c.Layout = buffer.Layout{K: 16, RateBps: 8e6, BlockBytes: 1250}
	}
	if c.BMPeriod <= 0 {
		c.BMPeriod = 10 * time.Millisecond
	}
	if c.FlushDelay == 0 {
		c.FlushDelay = 4 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Settle <= 0 {
		c.Settle = 500 * time.Millisecond
	}
}

// Report is one run's measurement. Totals are deltas over the measured
// window, summed across every node (source and peers).
type Report struct {
	Peers       int     `json:"peers"`
	Legacy      bool    `json:"legacy"`
	DurationSec float64 `json:"duration_sec"`

	// Delivered counts blocks landed in peer sync buffers.
	Delivered uint64 `json:"delivered_blocks"`

	FramesSent  uint64 `json:"frames_sent"`
	WriteCalls  uint64 `json:"write_calls"`
	BytesSent   uint64 `json:"bytes_sent"`
	BMFrames    uint64 `json:"bm_frames"`
	BMBytes     uint64 `json:"bm_bytes"`
	BlockFrames uint64 `json:"block_frames"`
	BlockBytes  uint64 `json:"block_bytes"`
	FanEncodes  uint64 `json:"fan_encodes"`
	FanShared   uint64 `json:"fan_shared"`

	WritesPerBlock    float64 `json:"writes_per_block"`
	BytesPerBlock     float64 `json:"bytes_per_block"`
	BMBytesPerPeerSec float64 `json:"bm_bytes_per_peer_sec"`

	MeanContinuity float64 `json:"mean_continuity"`
	MinContinuity  float64 `json:"min_continuity"`
}

func sumStats(nodes []*netpeer.Node) netpeer.NetStats {
	var t netpeer.NetStats
	for _, n := range nodes {
		s := n.Stats()
		t.FramesSent += s.FramesSent
		t.WriteCalls += s.WriteCalls
		t.BytesSent += s.BytesSent
		t.BMFrames += s.BMFrames
		t.BMBytes += s.BMBytes
		t.BlockFrames += s.BlockFrames
		t.BlockBytes += s.BlockBytes
		t.FanEncodes += s.FanEncodes
		t.FanShared += s.FanShared
		t.BlocksReceived += s.BlocksReceived
	}
	return t
}

// Run executes one saturation measurement.
func Run(cfg Config) (Report, error) {
	cfg.setDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	mkConfig := func(id int32) netpeer.Config {
		return netpeer.Config{
			ID:           id,
			Layout:       cfg.Layout,
			BMPeriod:     cfg.BMPeriod,
			BufferBlocks: 4000,
			ReadyBlocks:  10,
			LegacyPlane:  cfg.Legacy,
			FlushDelay:   cfg.FlushDelay,
		}
	}
	src, err := netpeer.New(mkConfig(0))
	if err != nil {
		return Report{}, err
	}
	defer src.Close()
	addr, err := src.Listen()
	if err != nil {
		return Report{}, err
	}
	if err := src.StartSource(); err != nil {
		return Report{}, err
	}

	peers := make([]*netpeer.Node, 0, cfg.Peers)
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()
	for i := 1; i <= cfg.Peers; i++ {
		p, err := netpeer.New(mkConfig(int32(i)))
		if err != nil {
			return Report{}, err
		}
		peers = append(peers, p)
		if _, err := p.Listen(); err != nil {
			return Report{}, err
		}
		if _, err := p.Connect(addr); err != nil {
			return Report{}, fmt.Errorf("peer %d connect: %w", i, err)
		}
		start := src.Latest(0) - 2
		if start < 0 {
			start = 0
		}
		if err := p.InitBuffers(start); err != nil {
			return Report{}, err
		}
		for j := 0; j < cfg.Layout.K; j++ {
			if err := p.Subscribe(0, j, start); err != nil {
				return Report{}, fmt.Errorf("peer %d lane %d: %w", i, j, err)
			}
		}
	}
	logf("%d peers joined (legacy=%v), settling %v", cfg.Peers, cfg.Legacy, cfg.Settle)
	time.Sleep(cfg.Settle)

	all := append([]*netpeer.Node{src}, peers...)
	before := sumStats(all)
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	after := sumStats(all)
	elapsed := time.Since(t0).Seconds()

	rep := Report{
		Peers:       cfg.Peers,
		Legacy:      cfg.Legacy,
		DurationSec: elapsed,
		Delivered:   after.BlocksReceived - before.BlocksReceived,
		FramesSent:  after.FramesSent - before.FramesSent,
		WriteCalls:  after.WriteCalls - before.WriteCalls,
		BytesSent:   after.BytesSent - before.BytesSent,
		BMFrames:    after.BMFrames - before.BMFrames,
		BMBytes:     after.BMBytes - before.BMBytes,
		BlockFrames: after.BlockFrames - before.BlockFrames,
		BlockBytes:  after.BlockBytes - before.BlockBytes,
		FanEncodes:  after.FanEncodes - before.FanEncodes,
		FanShared:   after.FanShared - before.FanShared,
	}
	if rep.Delivered > 0 {
		rep.WritesPerBlock = float64(rep.WriteCalls) / float64(rep.Delivered)
		rep.BytesPerBlock = float64(rep.BytesSent) / float64(rep.Delivered)
	}
	if elapsed > 0 {
		rep.BMBytesPerPeerSec = float64(rep.BMBytes) / float64(cfg.Peers) / elapsed
	}
	rep.MeanContinuity, rep.MinContinuity = continuity(peers)
	logf("delivered %d blocks, %.2f writes/block, %.0f bytes/block, min CI %.3f",
		rep.Delivered, rep.WritesPerBlock, rep.BytesPerBlock, rep.MinContinuity)
	return rep, nil
}

func continuity(peers []*netpeer.Node) (mean, min float64) {
	if len(peers) == 0 {
		return 1, 1
	}
	min = 1
	for _, p := range peers {
		ci := p.Continuity()
		mean += ci
		if ci < min {
			min = ci
		}
	}
	return mean / float64(len(peers)), min
}

// Sweep doubles the peer count from start until the worst peer's
// continuity drops below minCI or maxPeers is reached, returning every
// run's report and the largest sustainable population (0 when even the
// first run collapsed).
func Sweep(base Config, start, maxPeers int, minCI float64) ([]Report, int, error) {
	if start <= 0 {
		start = 2
	}
	if maxPeers < start {
		maxPeers = start
	}
	var reps []Report
	sustainable := 0
	for n := start; n <= maxPeers; n *= 2 {
		cfg := base
		cfg.Peers = n
		rep, err := Run(cfg)
		if err != nil {
			return reps, sustainable, err
		}
		reps = append(reps, rep)
		if rep.MinContinuity < minCI {
			break
		}
		sustainable = n
	}
	return reps, sustainable, nil
}
