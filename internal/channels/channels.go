// Package channels models the multi-program dimension of the
// deployment: the 2006-09-27 system broadcast several programs at
// once ("The users contact a web server to select the program that
// they intend to watch", §V-A), each program running its own
// data-driven overlay over a shared server tier. Users pick channels
// with a Zipf-like popularity bias and *zap*: after a dwell period
// they either switch to another channel (a leave in one overlay and a
// fresh join in another) or leave the system.
//
// Each channel is an independent peer.World sharing one simulation
// engine, so a multi-channel run is exactly as deterministic as a
// single-channel one.
package channels

import (
	"fmt"
	"math"

	"coolstream/internal/gossip"
	"coolstream/internal/logsys"
	"coolstream/internal/netmodel"
	"coolstream/internal/peer"
	"coolstream/internal/sim"
	"coolstream/internal/stats"
	"coolstream/internal/xrand"
)

// Config describes a multi-channel system.
type Config struct {
	// Channels is the number of programs.
	Channels int
	// Params apply to every channel's overlay.
	Params peer.Params
	// ServersPerChannel and ServerUploadBps provision each channel's
	// slice of the server tier.
	ServersPerChannel int
	ServerUploadBps   float64
	// ZipfS is the popularity skew (P(channel k) ∝ 1/(k+1)^ZipfS).
	ZipfS float64
	// ZapProb is the probability that a user switches channels at the
	// end of a dwell instead of leaving.
	ZapProb float64
	// ZapDelay is the pause between leaving one channel and joining
	// the next.
	ZapDelay sim.Time
	// Latency is shared across channels.
	Latency netmodel.LatencyModel
	// Seed drives all channel worlds and the zap behaviour.
	Seed uint64
}

// DefaultConfig returns a 4-channel system with Zipf(1.2) popularity.
func DefaultConfig(seed uint64) Config {
	p := peer.DefaultParams()
	p.ReportPeriod = 30 * sim.Second
	return Config{
		Channels:          4,
		Params:            p,
		ServersPerChannel: 2,
		ServerUploadBps:   20 * p.Layout.RateBps,
		ZipfS:             1.2,
		ZapProb:           0.4,
		ZapDelay:          2 * sim.Second,
		Latency:           netmodel.UniformLatency{Min: 20 * sim.Millisecond, Max: 250 * sim.Millisecond, Seed: seed},
		Seed:              seed,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Channels < 1 {
		return fmt.Errorf("channels: %d channels", c.Channels)
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.ServersPerChannel < 1 || c.ServerUploadBps <= c.Params.Layout.RateBps {
		return fmt.Errorf("channels: server tier underprovisioned")
	}
	if c.ZipfS < 0 {
		return fmt.Errorf("channels: negative Zipf skew")
	}
	if c.ZapProb < 0 || c.ZapProb > 1 {
		return fmt.Errorf("channels: ZapProb %v", c.ZapProb)
	}
	if c.ZapDelay < 0 {
		return fmt.Errorf("channels: negative zap delay")
	}
	if c.Latency == nil {
		return fmt.Errorf("channels: nil latency model")
	}
	return nil
}

// System is a running multi-channel deployment.
type System struct {
	Cfg    Config
	Engine *sim.Engine
	// Worlds holds one overlay per channel.
	Worlds []*peer.World
	// Sinks holds each channel's log sink (indexed like Worlds).
	Sinks []*logsys.MemorySink

	pop *stats.Categorical
	rng *xrand.RNG
	// Zaps counts completed channel switches.
	Zaps int
	// watchersSpawned counts SpawnUser calls.
	watchersSpawned int
}

// New builds the system on the engine.
func New(cfg Config, engine *sim.Engine) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if engine == nil {
		return nil, fmt.Errorf("channels: nil engine")
	}
	weights := make([]float64, cfg.Channels)
	for k := range weights {
		weights[k] = 1 / math.Pow(float64(k+1), cfg.ZipfS)
	}
	root := xrand.New(cfg.Seed)
	s := &System{
		Cfg:    cfg,
		Engine: engine,
		pop:    stats.NewCategorical(weights),
		rng:    root.SplitLabeled("channels"),
	}
	for k := 0; k < cfg.Channels; k++ {
		sink := &logsys.MemorySink{}
		w, err := peer.NewWorld(cfg.Params, engine, sink, cfg.Latency,
			gossip.RandomReplace{}, cfg.Seed+uint64(k)*0x9e3779b9)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cfg.ServersPerChannel; i++ {
			w.AddServer(cfg.ServerUploadBps)
		}
		s.Worlds = append(s.Worlds, w)
		s.Sinks = append(s.Sinks, sink)
	}
	return s, nil
}

// SpawnUser starts a viewing career at the current virtual time: the
// user joins a popularity-drawn channel, dwells, then zaps or leaves.
// dwell samples each channel visit's duration; patience is the
// per-join retry budget.
func (s *System) SpawnUser(userID int, ep netmodel.Endpoint, dwell stats.Sampler, patience int) {
	s.watchersSpawned++
	s.visit(userID, ep, dwell, patience)
}

func (s *System) visit(userID int, ep netmodel.Endpoint, dwell stats.Sampler, patience int) {
	ch := s.pop.Draw(s.rng)
	d := sim.FromSeconds(dwell.Sample(s.rng))
	if d < sim.Second {
		d = sim.Second
	}
	s.Worlds[ch].Join(userID, ep, d, patience, 0)
	// Decide the user's next move now (deterministic given the seed).
	zap := s.rng.Bool(s.Cfg.ZapProb)
	if !zap {
		return
	}
	s.Engine.After(d+s.Cfg.ZapDelay, func() {
		s.Zaps++
		s.visit(userID, ep, dwell, patience)
	})
}

// EndProgram schedules channel ch's program boundary: at `at`, every
// viewer of that channel departs at once (the per-channel form of the
// paper's 22:00 cliff). Users whose zap chain continues re-enter the
// system on another channel afterwards.
func (s *System) EndProgram(ch int, at sim.Time) error {
	if ch < 0 || ch >= len(s.Worlds) {
		return fmt.Errorf("channels: no channel %d", ch)
	}
	s.Engine.Schedule(at, func() {
		s.Worlds[ch].DepartAllPeers("program-end")
	})
	return nil
}

// ChannelViewers returns the current viewer count per channel.
func (s *System) ChannelViewers() []int {
	out := make([]int, len(s.Worlds))
	for k, w := range s.Worlds {
		out[k] = w.ActivePeerCount()
	}
	return out
}

// TotalViewers sums viewers across channels.
func (s *System) TotalViewers() int {
	n := 0
	for _, v := range s.ChannelViewers() {
		n += v
	}
	return n
}
