package channels

import (
	"testing"

	"coolstream/internal/metrics"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/stats"
	"coolstream/internal/xrand"
)

func testSystem(t *testing.T, seed uint64) (*System, *sim.Engine) {
	t.Helper()
	engine := sim.NewEngine(sim.Second)
	s, err := New(DefaultConfig(seed), engine)
	if err != nil {
		t.Fatal(err)
	}
	return s, engine
}

func spawnPopulation(s *System, engine *sim.Engine, n int, seed uint64) {
	prof := netmodel.DefaultCapacityProfile(768e3)
	rng := xrand.New(seed)
	dwell := stats.LogNormal{Mu: 4.1, Sigma: 0.6} // ~60 s dwells
	for i := 0; i < n; i++ {
		i := i
		at := 30*sim.Second + sim.Time(rng.Intn(60))*sim.Second
		engine.Schedule(at, func() {
			class := netmodel.UserClass(rng.Intn(netmodel.NumClasses))
			s.SpawnUser(5000+i, prof.Draw(class, rng), dwell, 1)
		})
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(1).Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.Params.Ts = 0 },
		func(c *Config) { c.ServersPerChannel = 0 },
		func(c *Config) { c.ServerUploadBps = 0 },
		func(c *Config) { c.ZipfS = -1 },
		func(c *Config) { c.ZapProb = 2 },
		func(c *Config) { c.ZapDelay = -1 },
		func(c *Config) { c.Latency = nil },
	}
	for i, m := range mutations {
		c := DefaultConfig(1)
		m(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
	if _, err := New(DefaultConfig(1), nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestPopularityFollowsZipf(t *testing.T) {
	s, engine := testSystem(t, 2)
	spawnPopulation(s, engine, 150, 3)
	engine.Run(2 * sim.Minute)
	viewers := s.ChannelViewers()
	if len(viewers) != 4 {
		t.Fatalf("channels %d", len(viewers))
	}
	// Channel 0 must dominate channel 3 clearly under Zipf(1.2).
	if viewers[0] <= viewers[3] {
		t.Fatalf("no popularity skew: %v", viewers)
	}
	if s.TotalViewers() == 0 {
		t.Fatal("no viewers at all")
	}
}

func TestZappingMovesUsersBetweenChannels(t *testing.T) {
	s, engine := testSystem(t, 4)
	spawnPopulation(s, engine, 80, 5)
	engine.Run(6 * sim.Minute)
	if s.Zaps == 0 {
		t.Fatal("nobody zapped")
	}
	// A zapping user appears as sessions in more than one channel's log.
	userChannels := map[int]map[int]bool{}
	for k, sink := range s.Sinks {
		for _, rec := range sink.Records() {
			if rec.Kind == "join" {
				if userChannels[rec.User] == nil {
					userChannels[rec.User] = map[int]bool{}
				}
				userChannels[rec.User][k] = true
			}
		}
	}
	multi := 0
	for _, chs := range userChannels {
		if len(chs) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no user visited multiple channels")
	}
}

func TestPerChannelQoSHolds(t *testing.T) {
	s, engine := testSystem(t, 6)
	spawnPopulation(s, engine, 120, 7)
	engine.Run(6 * sim.Minute)
	for k, sink := range s.Sinks {
		a := metrics.Analyze(sink.Records())
		if len(a.Sessions) == 0 {
			continue // unpopular channel may be empty at this scale
		}
		if ci := a.MeanContinuity(); ci != 0 && ci < 0.85 {
			t.Fatalf("channel %d continuity %.3f", k, ci)
		}
	}
}

func TestMultiChannelDeterminism(t *testing.T) {
	run := func() (int, []int, int) {
		s, engine := testSystem(t, 9)
		spawnPopulation(s, engine, 60, 10)
		engine.Run(4 * sim.Minute)
		records := 0
		for _, sink := range s.Sinks {
			records += sink.Len()
		}
		return s.Zaps, s.ChannelViewers(), records
	}
	z1, v1, r1 := run()
	z2, v2, r2 := run()
	if z1 != z2 || r1 != r2 {
		t.Fatalf("nondeterministic: zaps %d/%d records %d/%d", z1, z2, r1, r2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("viewer counts differ: %v vs %v", v1, v2)
		}
	}
}

func TestChannelsShareOneEngineCleanly(t *testing.T) {
	// Worlds on a shared engine must not interfere: a run with 1
	// channel and a run where that channel is accompanied by others
	// give the same results for the lone channel only if nothing is
	// shared; here we just assert independent sinks and live clocks.
	s, engine := testSystem(t, 11)
	spawnPopulation(s, engine, 40, 12)
	engine.Run(3 * sim.Minute)
	for k, w := range s.Worlds {
		if w.Engine != engine {
			t.Fatalf("world %d on foreign engine", k)
		}
	}
	total := 0
	for _, sink := range s.Sinks {
		total += sink.Len()
	}
	if total == 0 {
		t.Fatal("no records across channels")
	}
}

func TestEndProgramEmptiesChannel(t *testing.T) {
	s, engine := testSystem(t, 20)
	spawnPopulation(s, engine, 100, 21)
	// End channel 0's program mid-run.
	if err := s.EndProgram(0, 3*sim.Minute); err != nil {
		t.Fatal(err)
	}
	if err := s.EndProgram(99, sim.Minute); err == nil {
		t.Fatal("bogus channel accepted")
	}
	engine.Run(3*sim.Minute - sim.Second)
	before := s.ChannelViewers()[0]
	if before < 5 {
		t.Skipf("channel 0 too small before the boundary: %d", before)
	}
	engine.Run(3*sim.Minute + 2*sim.Second)
	after := s.ChannelViewers()[0]
	if after > before/3 {
		t.Fatalf("program end did not empty channel 0: %d -> %d", before, after)
	}
	// The leave reason is recorded in the channel's log.
	found := false
	for _, rec := range s.Sinks[0].Records() {
		if rec.Kind == "leave" && rec.Reason == "program-end" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no program-end leave recorded")
	}
}
