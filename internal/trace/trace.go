// Package trace persists run artifacts: log records as JSONL (one
// record per line) and metric series as CSV, with matching readers, so
// simulation runs can be archived and re-analysed by cmd/coolanalyze
// without re-running the simulator.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"coolstream/internal/logsys"
	"coolstream/internal/metrics"
	"coolstream/internal/sim"
)

// WriteRecords streams log records as JSONL.
func WriteRecords(w io.Writer, recs []logsys.Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("trace: record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadRecords reads a JSONL record stream.
func ReadRecords(r io.Reader) ([]logsys.Record, error) {
	var out []logsys.Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec logsys.Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteSeries writes a metric series as two-column CSV.
func WriteSeries(w io.Writer, name string, pts []metrics.SeriesPoint) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "t_ms,%s\n", name); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(bw, "%d,%g\n", int64(p.At), p.Value); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSeries reads a two-column CSV produced by WriteSeries, returning
// the series name and points.
func ReadSeries(r io.Reader) (string, []metrics.SeriesPoint, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return "", nil, fmt.Errorf("trace: empty series")
	}
	header := strings.Split(sc.Text(), ",")
	if len(header) != 2 || header[0] != "t_ms" {
		return "", nil, fmt.Errorf("trace: bad series header %q", sc.Text())
	}
	var pts []metrics.SeriesPoint
	line := 1
	for sc.Scan() {
		line++
		cells := strings.Split(sc.Text(), ",")
		if len(cells) != 2 {
			return "", nil, fmt.Errorf("trace: line %d: %d cells", line, len(cells))
		}
		at, err := strconv.ParseInt(cells[0], 10, 64)
		if err != nil {
			return "", nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		v, err := strconv.ParseFloat(cells[1], 64)
		if err != nil {
			return "", nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		pts = append(pts, metrics.SeriesPoint{At: sim.Time(at), Value: v})
	}
	return header[1], pts, sc.Err()
}
