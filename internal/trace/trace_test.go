package trace

import (
	"strings"
	"testing"

	"coolstream/internal/logsys"
	"coolstream/internal/metrics"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

func TestRecordsRoundTrip(t *testing.T) {
	recs := []logsys.Record{
		{Kind: logsys.KindJoin, At: 5 * sim.Second, Peer: 1, Session: 1, User: 1,
			PrivateAddr: true, TrueClass: netmodel.NAT, HasTruth: true},
		{Kind: logsys.KindQoS, At: 300 * sim.Second, Peer: 1, Session: 1, User: 1, Continuity: 0.98},
		{Kind: logsys.KindTraffic, At: 300 * sim.Second, Peer: 1, Session: 1, User: 1,
			UploadBytes: 12345, DownloadBytes: 67890},
	}
	var buf strings.Builder
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReadRecordsSkipsBlanksRejectsGarbage(t *testing.T) {
	if recs, err := ReadRecords(strings.NewReader("\n\n")); err != nil || len(recs) != 0 {
		t.Fatalf("blank read: %v %v", recs, err)
	}
	if _, err := ReadRecords(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSeriesRoundTrip(t *testing.T) {
	pts := []metrics.SeriesPoint{
		{At: 0, Value: 1},
		{At: 10 * sim.Second, Value: 2.5},
		{At: sim.Hour, Value: 0},
	}
	var buf strings.Builder
	if err := WriteSeries(&buf, "users", pts); err != nil {
		t.Fatal(err)
	}
	name, got, err := ReadSeries(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if name != "users" || len(got) != len(pts) {
		t.Fatalf("name %q, %d points", name, len(got))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatalf("point %d: %+v vs %+v", i, got[i], pts[i])
		}
	}
}

func TestReadSeriesErrors(t *testing.T) {
	cases := []string{
		"",
		"bad header\n",
		"t_ms,v\n1,2,3\n",
		"t_ms,v\nx,2\n",
		"t_ms,v\n1,y\n",
	}
	for i, c := range cases {
		if _, _, err := ReadSeries(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
