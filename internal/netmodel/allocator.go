package netmodel

import "slices"

// Demand is one child sub-stream transmission competing for a parent's
// upload capacity.
//
// Need is the rate (bps) at which the transmission can usefully
// consume bandwidth right now: R/K for a caught-up child (it can only
// absorb the live sub-stream rate), or a higher ceiling for a child in
// catch-up (bounded by its download capacity and by how far behind it
// is). Weight scales the fair share (all 1 in the base protocol).
type Demand struct {
	Need   float64
	Weight float64
}

// wfEntry orders one demand by the water level at which it saturates.
type wfEntry struct {
	idx   int
	level float64 // Need/Weight
}

// Filler holds reusable scratch for repeated water-filling, so the
// per-tick allocator performs no allocations at steady state. The
// zero value is ready to use. Not safe for concurrent use; the tick
// engine keeps one per node, owned by the shard that owns the node.
type Filler struct {
	entries []wfEntry
	rates   []float64
	// last holds the previous call's demand list (and lastCap its
	// capacity). Steady-state demand lists are nearly always identical
	// tick over tick — children and their Need ceilings change on
	// overlay adaptation timescales, not tick timescales — so when the
	// inputs match exactly the previous rates are returned as-is,
	// skipping the sort and the fill sweep entirely. Exact float
	// equality keeps this a pure memoisation: identical inputs would
	// have produced bit-identical outputs anyway.
	last    []Demand
	lastCap float64
	warm    bool
}

// Invalidate drops the memoised previous call while keeping the scratch
// storage: an invalidated Filler behaves exactly like the zero value.
// Recycling paths call it when a Filler moves to a new owner.
func (f *Filler) Invalidate() { f.warm = false }

// Fill computes the same allocation as WaterFill into an internal
// slice, valid only until the next Fill call on this Filler.
func (f *Filler) Fill(capacity float64, demands []Demand) []float64 {
	if f.warm && capacity == f.lastCap && len(demands) == len(f.last) {
		same := true
		for i, d := range demands {
			if d != f.last[i] {
				same = false
				break
			}
		}
		if same {
			return f.rates[:len(demands)]
		}
	}
	if cap(f.rates) < len(demands) {
		f.rates = make([]float64, len(demands))
	}
	rates := f.rates[:len(demands)]
	for i := range rates {
		rates[i] = 0
	}
	f.entries = waterFill(rates, f.entries[:0], capacity, demands)
	f.last = append(f.last[:0], demands...)
	f.lastCap = capacity
	f.warm = true
	return rates
}

// WaterFill divides capacity among demands by progressive filling
// (max-min fairness): every demand grows at rate proportional to its
// weight until it hits its Need, and freed capacity is redistributed
// among the still-unsatisfied demands. The returned slice has one rate
// per demand, rates[i] <= demands[i].Need, sum(rates) <= capacity.
//
// This generalises the paper's Eq. (5): with D equal unweighted
// demands all needing more than capacity/D, every child receives
// exactly capacity/D. Allocation-sensitive callers should keep a
// Filler instead.
func WaterFill(capacity float64, demands []Demand) []float64 {
	rates := make([]float64, len(demands))
	waterFill(rates, nil, capacity, demands)
	return rates
}

// waterFill writes the allocation into rates (len(demands), zeroed)
// using entries as scratch, and returns the grown scratch for reuse.
func waterFill(rates []float64, entries []wfEntry, capacity float64, demands []Demand) []wfEntry {
	if capacity <= 0 || len(demands) == 0 {
		return entries
	}
	// Order demand indices by Need/Weight, the level at which each
	// demand saturates; ties break by index so the fill order — and
	// hence the floating-point rounding of `remaining` — is a pure
	// function of the demand list.
	totalWeight := 0.0
	for i, d := range demands {
		if d.Need <= 0 || d.Weight <= 0 {
			continue
		}
		entries = append(entries, wfEntry{idx: i, level: d.Need / d.Weight})
		totalWeight += d.Weight
	}
	slices.SortFunc(entries, func(a, b wfEntry) int {
		switch {
		case a.level < b.level:
			return -1
		case a.level > b.level:
			return 1
		default:
			return a.idx - b.idx
		}
	})

	remaining := capacity
	for k, e := range entries {
		d := demands[e.idx]
		// Fair level if all remaining demands shared `remaining`.
		share := remaining * d.Weight / totalWeight
		if share >= d.Need {
			// Demand saturates; give it exactly Need and move on.
			rates[e.idx] = d.Need
			remaining -= d.Need
			totalWeight -= d.Weight
			continue
		}
		// No remaining demand saturates: split the rest by weight.
		for _, e2 := range entries[k:] {
			d2 := demands[e2.idx]
			rates[e2.idx] = remaining * d2.Weight / totalWeight
		}
		return entries
	}
	return entries
}

// EqualSplit is the paper's literal Eq. (5) allocation: capacity/D per
// transmission regardless of need. Kept as an ablation comparator for
// WaterFill.
func EqualSplit(capacity float64, n int) float64 {
	if n <= 0 || capacity <= 0 {
		return 0
	}
	return capacity / float64(n)
}
