package netmodel

import "sort"

// Demand is one child sub-stream transmission competing for a parent's
// upload capacity.
//
// Need is the rate (bps) at which the transmission can usefully
// consume bandwidth right now: R/K for a caught-up child (it can only
// absorb the live sub-stream rate), or a higher ceiling for a child in
// catch-up (bounded by its download capacity and by how far behind it
// is). Weight scales the fair share (all 1 in the base protocol).
type Demand struct {
	Need   float64
	Weight float64
}

// WaterFill divides capacity among demands by progressive filling
// (max-min fairness): every demand grows at rate proportional to its
// weight until it hits its Need, and freed capacity is redistributed
// among the still-unsatisfied demands. The returned slice has one rate
// per demand, rates[i] <= demands[i].Need, sum(rates) <= capacity.
//
// This generalises the paper's Eq. (5): with D equal unweighted
// demands all needing more than capacity/D, every child receives
// exactly capacity/D.
func WaterFill(capacity float64, demands []Demand) []float64 {
	rates := make([]float64, len(demands))
	if capacity <= 0 || len(demands) == 0 {
		return rates
	}
	// Order demand indices by Need/Weight, the level at which each
	// demand saturates.
	type entry struct {
		idx   int
		level float64 // Need/Weight
	}
	entries := make([]entry, 0, len(demands))
	totalWeight := 0.0
	for i, d := range demands {
		if d.Need <= 0 || d.Weight <= 0 {
			continue
		}
		entries = append(entries, entry{idx: i, level: d.Need / d.Weight})
		totalWeight += d.Weight
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].level < entries[j].level })

	remaining := capacity
	for k, e := range entries {
		d := demands[e.idx]
		// Fair level if all remaining demands shared `remaining`.
		share := remaining * d.Weight / totalWeight
		if share >= d.Need {
			// Demand saturates; give it exactly Need and move on.
			rates[e.idx] = d.Need
			remaining -= d.Need
			totalWeight -= d.Weight
			continue
		}
		// No remaining demand saturates: split the rest by weight.
		for _, e2 := range entries[k:] {
			d2 := demands[e2.idx]
			rates[e2.idx] = remaining * d2.Weight / totalWeight
		}
		return rates
	}
	return rates
}

// EqualSplit is the paper's literal Eq. (5) allocation: capacity/D per
// transmission regardless of need. Kept as an ablation comparator for
// WaterFill.
func EqualSplit(capacity float64, n int) float64 {
	if n <= 0 || capacity <= 0 {
		return 0
	}
	return capacity / float64(n)
}
