package netmodel

import (
	"coolstream/internal/stats"
	"coolstream/internal/xrand"
)

// CapacityProfile draws upload/download capacities per user class.
// The per-class samplers encode the paper's central empirical fact:
// direct-connect/UPnP peers carry most of the upload capacity while
// NAT/firewall peers contribute little (Fig. 3b).
type CapacityProfile struct {
	// Upload[class] samples upload capacity in bps.
	Upload [NumClasses]stats.Sampler
	// Download[class] samples download capacity in bps.
	Download [NumClasses]stats.Sampler
}

// DefaultCapacityProfile returns a profile calibrated to a 2006-era
// broadband mix for a streamRate-bps program:
//
//   - direct:  university/office links, 1–10× stream rate upload
//   - upnp:    home broadband with working UPnP, 0.5–4× stream rate
//   - nat:     ADSL uplinks, 0.1–1× stream rate
//   - firewall: office links behind strict firewalls, 0.2–1.5×
//
// Downloads are provisioned at >= 1.5× stream rate for all classes so
// that download capacity is rarely the binding constraint, matching
// the paper's focus on upload scarcity.
func DefaultCapacityProfile(streamRate float64) CapacityProfile {
	var p CapacityProfile
	p.Upload[Direct] = stats.BoundedPareto{Lo: 1.0 * streamRate, Hi: 10 * streamRate, Alpha: 1.2}
	p.Upload[UPnP] = stats.BoundedPareto{Lo: 0.5 * streamRate, Hi: 4 * streamRate, Alpha: 1.5}
	p.Upload[NAT] = stats.Uniform{Lo: 0.1 * streamRate, Hi: 1.0 * streamRate}
	p.Upload[Firewall] = stats.Uniform{Lo: 0.2 * streamRate, Hi: 1.5 * streamRate}
	for c := 0; c < NumClasses; c++ {
		p.Download[c] = stats.Uniform{Lo: 1.5 * streamRate, Hi: 8 * streamRate}
	}
	return p
}

// Draw samples an Endpoint of the given class.
func (p CapacityProfile) Draw(class UserClass, r *xrand.RNG) Endpoint {
	return Endpoint{
		Class:       class,
		UploadBps:   p.Upload[class].Sample(r),
		DownloadBps: p.Download[class].Sample(r),
	}
}

// ClassMix is the population fraction of each user class. The paper's
// Fig. 3a shows roughly 30% direct+UPnP and 70% NAT+firewall.
type ClassMix [NumClasses]float64

// DefaultClassMix matches Fig. 3a's reported shape: ~15% direct,
// ~15% UPnP, ~55% NAT, ~15% firewall.
func DefaultClassMix() ClassMix {
	return ClassMix{Direct: 0.15, UPnP: 0.15, NAT: 0.55, Firewall: 0.15}
}

// Sampler returns a categorical sampler over the class mix.
func (m ClassMix) Sampler() *stats.Categorical {
	return stats.NewCategorical(m[:])
}
