package netmodel

import (
	"math"
	"testing"
	"testing/quick"

	"coolstream/internal/xrand"
)

func TestWaterFillEqualSplitWhenOverloaded(t *testing.T) {
	// Paper Eq. (5): D equal demands, each needing more than C/D,
	// each receives exactly C/D.
	demands := []Demand{{Need: 100, Weight: 1}, {Need: 100, Weight: 1}, {Need: 100, Weight: 1}, {Need: 100, Weight: 1}}
	rates := WaterFill(120, demands)
	for i, r := range rates {
		if math.Abs(r-30) > 1e-9 {
			t.Fatalf("rate[%d] = %v, want 30", i, r)
		}
	}
}

func TestWaterFillSatisfiesSmallDemands(t *testing.T) {
	demands := []Demand{{Need: 10, Weight: 1}, {Need: 200, Weight: 1}}
	rates := WaterFill(100, demands)
	if math.Abs(rates[0]-10) > 1e-9 {
		t.Fatalf("small demand got %v, want 10", rates[0])
	}
	if math.Abs(rates[1]-90) > 1e-9 {
		t.Fatalf("large demand got %v, want 90 (redistributed surplus)", rates[1])
	}
}

func TestWaterFillAllSatisfiedUnderCapacity(t *testing.T) {
	demands := []Demand{{Need: 10, Weight: 1}, {Need: 20, Weight: 1}}
	rates := WaterFill(1000, demands)
	if rates[0] != 10 || rates[1] != 20 {
		t.Fatalf("rates %v, want demands met exactly", rates)
	}
}

func TestWaterFillWeights(t *testing.T) {
	demands := []Demand{{Need: 1000, Weight: 1}, {Need: 1000, Weight: 3}}
	rates := WaterFill(100, demands)
	if math.Abs(rates[0]-25) > 1e-9 || math.Abs(rates[1]-75) > 1e-9 {
		t.Fatalf("weighted rates %v, want [25 75]", rates)
	}
}

func TestWaterFillDegenerateInputs(t *testing.T) {
	if rates := WaterFill(0, []Demand{{Need: 5, Weight: 1}}); rates[0] != 0 {
		t.Fatal("zero capacity should allocate zero")
	}
	if rates := WaterFill(-5, []Demand{{Need: 5, Weight: 1}}); rates[0] != 0 {
		t.Fatal("negative capacity should allocate zero")
	}
	if len(WaterFill(100, nil)) != 0 {
		t.Fatal("empty demands should return empty slice")
	}
	rates := WaterFill(100, []Demand{{Need: 0, Weight: 1}, {Need: -3, Weight: 1}, {Need: 10, Weight: 0}})
	for i, r := range rates {
		if r != 0 {
			t.Fatalf("invalid demand %d got %v", i, r)
		}
	}
}

func TestWaterFillInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(20)
		demands := make([]Demand, n)
		for i := range demands {
			demands[i] = Demand{Need: r.Float64() * 100, Weight: 0.1 + r.Float64()}
		}
		capacity := r.Float64() * 300
		rates := WaterFill(capacity, demands)
		sum := 0.0
		for i, rate := range rates {
			if rate < -1e-9 || rate > demands[i].Need+1e-9 {
				return false // rate within [0, Need]
			}
			sum += rate
		}
		if sum > capacity+1e-6 {
			return false // capacity respected
		}
		// Work conservation: if some demand is unsatisfied, (almost)
		// all capacity must be in use.
		unsat := false
		for i, rate := range rates {
			if demands[i].Need > 0 && rate < demands[i].Need-1e-9 {
				unsat = true
			}
		}
		totalNeed := 0.0
		for _, d := range demands {
			if d.Need > 0 && d.Weight > 0 {
				totalNeed += d.Need
			}
		}
		if unsat && totalNeed > capacity && sum < capacity-1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualSplit(t *testing.T) {
	if EqualSplit(100, 4) != 25 {
		t.Fatal("EqualSplit(100,4) != 25")
	}
	if EqualSplit(100, 0) != 0 || EqualSplit(-1, 3) != 0 {
		t.Fatal("EqualSplit degenerate cases not zero")
	}
}
