package netmodel

import (
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

// LatencyModel produces pairwise one-way delays. The overlay control
// plane (gossip, BM exchange, subscription) experiences these delays;
// the data plane is fluid and folds latency into rate ramp-up.
type LatencyModel interface {
	// Delay returns the one-way delay between two peers identified by
	// stable integer IDs.
	Delay(a, b int) sim.Time
}

// UniformLatency draws a stable delay per unordered pair from
// [Min, Max) using a hash of the pair, so repeated queries are
// consistent without storing an N² matrix.
type UniformLatency struct {
	Min, Max sim.Time
	Seed     uint64
}

// Delay implements LatencyModel.
func (u UniformLatency) Delay(a, b int) sim.Time {
	if u.Max <= u.Min {
		return u.Min
	}
	if a > b {
		a, b = b, a
	}
	h := xrand.New(u.Seed ^ (uint64(a)<<32 | uint64(uint32(b))))
	return u.Min + sim.Time(h.Int63n(int64(u.Max-u.Min)))
}

// ConstantLatency returns the same delay for every pair; used in tests
// and analytic-comparison runs.
type ConstantLatency struct{ D sim.Time }

// Delay implements LatencyModel.
func (c ConstantLatency) Delay(a, b int) sim.Time { return c.D }
