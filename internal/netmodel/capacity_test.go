package netmodel

import (
	"testing"

	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

func TestDefaultCapacityProfileOrdering(t *testing.T) {
	const rate = 768e3
	p := DefaultCapacityProfile(rate)
	r := xrand.New(1)
	const n = 5000
	var mean [NumClasses]float64
	for c := UserClass(0); c < NumClasses; c++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			ep := p.Draw(c, r)
			if ep.UploadBps <= 0 || ep.DownloadBps <= 0 {
				t.Fatalf("non-positive capacity for %v", c)
			}
			if ep.Class != c {
				t.Fatalf("Draw mislabelled class")
			}
			sum += ep.UploadBps
		}
		mean[c] = sum / n
	}
	// Direct-connect peers must dominate NAT peers in mean upload;
	// this ordering is what produces Fig. 3b's skew.
	if mean[Direct] <= mean[NAT] {
		t.Fatalf("direct mean %v not above NAT mean %v", mean[Direct], mean[NAT])
	}
	if mean[UPnP] <= mean[NAT] {
		t.Fatalf("UPnP mean %v not above NAT mean %v", mean[UPnP], mean[NAT])
	}
	// NAT mean must sit below the stream rate: NAT peers cannot on
	// average sustain a full stream, the engine of peer competition.
	if mean[NAT] >= rate {
		t.Fatalf("NAT mean %v >= stream rate", mean[NAT])
	}
}

func TestDefaultClassMixSumsToOne(t *testing.T) {
	m := DefaultClassMix()
	sum := 0.0
	for _, f := range m {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("class mix sums to %v", sum)
	}
	if m[NAT]+m[Firewall] <= m[Direct]+m[UPnP] {
		t.Fatal("mix must be NAT/firewall dominated per Fig. 3a")
	}
}

func TestClassMixSamplerFrequencies(t *testing.T) {
	m := DefaultClassMix()
	s := m.Sampler()
	r := xrand.New(2)
	var counts [NumClasses]int
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Draw(r)]++
	}
	for c := 0; c < NumClasses; c++ {
		got := float64(counts[c]) / n
		if got < m[c]-0.01 || got > m[c]+0.01 {
			t.Fatalf("class %v frequency %v, want ~%v", UserClass(c), got, m[c])
		}
	}
}

func TestUniformLatencyStableAndSymmetric(t *testing.T) {
	l := UniformLatency{Min: 10 * sim.Millisecond, Max: 200 * sim.Millisecond, Seed: 7}
	d1 := l.Delay(3, 9)
	d2 := l.Delay(9, 3)
	d3 := l.Delay(3, 9)
	if d1 != d2 {
		t.Fatal("latency not symmetric")
	}
	if d1 != d3 {
		t.Fatal("latency not stable")
	}
	if d1 < l.Min || d1 >= l.Max {
		t.Fatalf("latency %v outside [%v,%v)", d1, l.Min, l.Max)
	}
	// Degenerate range.
	flat := UniformLatency{Min: 5, Max: 5}
	if flat.Delay(1, 2) != 5 {
		t.Fatal("degenerate latency range should return Min")
	}
}

func TestUniformLatencyVariesAcrossPairs(t *testing.T) {
	l := UniformLatency{Min: 0, Max: 1000, Seed: 11}
	seen := map[sim.Time]bool{}
	for i := 0; i < 50; i++ {
		seen[l.Delay(0, i+1)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("latency nearly constant across pairs: %d distinct", len(seen))
	}
}

func TestConstantLatency(t *testing.T) {
	if (ConstantLatency{D: 42}).Delay(1, 2) != 42 {
		t.Fatal("ConstantLatency wrong")
	}
}
