package netmodel

import (
	"testing"

	"coolstream/internal/xrand"
)

func BenchmarkWaterFill(b *testing.B) {
	r := xrand.New(1)
	demands := make([]Demand, 32)
	for i := range demands {
		demands[i] = Demand{Need: 1e5 + r.Float64()*1e6, Weight: 1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WaterFill(5e6, demands)
	}
}

func BenchmarkUniformLatency(b *testing.B) {
	l := UniformLatency{Min: 10, Max: 300, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Delay(i&1023, (i>>1)&1023)
	}
}
