// Package netmodel models the Internet substrate under the overlay:
// user connection classes (direct-connect, UPnP, NAT, firewall),
// upload-capacity distributions, reachability rules for partnership
// establishment, a latency model, and the upload bandwidth allocator
// that divides a parent's capacity among its sub-stream children.
//
// The paper classifies users by IP visibility and partner
// directionality (§V-B) and shows the class mix drives both the upload
// contribution skew (Fig. 3) and the overlay's convergence towards
// direct-connect/UPnP parents (Fig. 4). This package is where those
// structural constraints live.
package netmodel

import "fmt"

// UserClass is the connection type of a peer, per §V-B of the paper.
type UserClass uint8

const (
	// Direct peers have public addresses accepting both incoming and
	// outgoing partnerships.
	Direct UserClass = iota
	// UPnP peers have private addresses but acquire a public mapping
	// from a UPnP gateway, so they behave like Direct.
	UPnP
	// NAT peers have private addresses and only outgoing partnerships.
	NAT
	// Firewall peers have public addresses but inbound connections are
	// blocked, so they too have only outgoing partnerships.
	Firewall

	// NumClasses is the number of user classes.
	NumClasses = 4
)

// String implements fmt.Stringer.
func (c UserClass) String() string {
	switch c {
	case Direct:
		return "direct"
	case UPnP:
		return "upnp"
	case NAT:
		return "nat"
	case Firewall:
		return "firewall"
	default:
		return fmt.Sprintf("UserClass(%d)", uint8(c))
	}
}

// ParseUserClass parses the String form back to a UserClass.
func ParseUserClass(s string) (UserClass, error) {
	switch s {
	case "direct":
		return Direct, nil
	case "upnp":
		return UPnP, nil
	case "nat":
		return NAT, nil
	case "firewall":
		return Firewall, nil
	}
	return 0, fmt.Errorf("netmodel: unknown user class %q", s)
}

// Reachable reports whether the class accepts incoming partnership
// establishment (public visibility). Only Direct and UPnP peers do;
// this is the structural asymmetry behind the paper's Fig. 4 overlay.
func (c UserClass) Reachable() bool { return c == Direct || c == UPnP }

// HasPrivateAddress reports whether peers of this class report a
// private (RFC1918) address to the log server. Used by the log-based
// classifier reproducing the paper's methodology.
func (c UserClass) HasPrivateAddress() bool { return c == UPnP || c == NAT }

// Endpoint is a node's network-level identity and capacity.
type Endpoint struct {
	Class UserClass
	// UploadBps is the access-link upload capacity in bits/second.
	UploadBps float64
	// DownloadBps is the access-link download capacity in bits/second.
	DownloadBps float64
	// Server marks dedicated streaming servers deployed alongside the
	// source (the paper's 24×100 Mbps tier). Servers are Direct-class
	// and never depart.
	Server bool
}

// CanEstablish reports whether an initiator can establish a TCP
// partnership with an acceptor, given the NAT/firewall rules:
// the acceptor must be publicly reachable. NAT hole punching between
// two unreachable peers is modelled by the caller with a traversal
// probability (see Reachability).
func CanEstablish(initiator, acceptor UserClass) bool {
	return acceptor.Reachable()
}

// Reachability augments CanEstablish with a NAT-traversal success
// probability for the unreachable→unreachable case. The paper observes
// such "random links" exist but are rare (§V-B.2).
type Reachability struct {
	// TraversalProb is the probability that a connection attempt
	// between two non-reachable peers succeeds anyway (UDP hole
	// punching, ALGs); typically small, e.g. 0.05.
	TraversalProb float64
}

// Attempt reports whether a partnership attempt initiator→acceptor
// succeeds, drawing on u (a uniform [0,1) variate supplied by the
// caller's RNG) only when the traversal case applies.
func (r Reachability) Attempt(initiator, acceptor UserClass, u float64) bool {
	if CanEstablish(initiator, acceptor) {
		return true
	}
	return u < r.TraversalProb
}
