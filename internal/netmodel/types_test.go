package netmodel

import "testing"

func TestUserClassString(t *testing.T) {
	cases := map[UserClass]string{
		Direct: "direct", UPnP: "upnp", NAT: "nat", Firewall: "firewall",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if UserClass(99).String() != "UserClass(99)" {
		t.Errorf("unknown class string = %q", UserClass(99).String())
	}
}

func TestParseUserClassRoundTrip(t *testing.T) {
	for c := UserClass(0); c < NumClasses; c++ {
		got, err := ParseUserClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseUserClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseUserClass("bogus"); err == nil {
		t.Error("ParseUserClass accepted bogus input")
	}
}

func TestReachable(t *testing.T) {
	if !Direct.Reachable() || !UPnP.Reachable() {
		t.Error("public classes must be reachable")
	}
	if NAT.Reachable() || Firewall.Reachable() {
		t.Error("NAT/firewall must not be reachable")
	}
}

func TestHasPrivateAddress(t *testing.T) {
	if !UPnP.HasPrivateAddress() || !NAT.HasPrivateAddress() {
		t.Error("UPnP and NAT report private addresses")
	}
	if Direct.HasPrivateAddress() || Firewall.HasPrivateAddress() {
		t.Error("direct and firewall report public addresses")
	}
}

func TestCanEstablishMatrix(t *testing.T) {
	for init := UserClass(0); init < NumClasses; init++ {
		for acc := UserClass(0); acc < NumClasses; acc++ {
			want := acc == Direct || acc == UPnP
			if got := CanEstablish(init, acc); got != want {
				t.Errorf("CanEstablish(%v,%v) = %v, want %v", init, acc, got, want)
			}
		}
	}
}

func TestReachabilityTraversal(t *testing.T) {
	r := Reachability{TraversalProb: 0.25}
	// Reachable acceptor always succeeds regardless of u.
	if !r.Attempt(NAT, Direct, 0.99) {
		t.Error("attempt to reachable acceptor failed")
	}
	// Unreachable acceptor succeeds only under the traversal draw.
	if !r.Attempt(NAT, NAT, 0.1) {
		t.Error("traversal draw under prob should succeed")
	}
	if r.Attempt(NAT, Firewall, 0.9) {
		t.Error("traversal draw over prob should fail")
	}
	// Zero traversal blocks all unreachable attempts.
	if (Reachability{}).Attempt(Firewall, NAT, 0) {
		t.Error("zero traversal prob let a NAT-NAT link through")
	}
}
