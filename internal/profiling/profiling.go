// Package profiling wires the standard runtime collectors (CPU
// profile, heap profile, execution trace) to command-line flags shared
// by the cmd binaries, so any simulation run can be captured for
// `go tool pprof` / `go tool trace` without a test harness.
package profiling

import (
	"context"
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// WithLabel runs fn with the pprof label phase=<name> attached to the
// current goroutine, so CPU profiles split samples by tick phase
// (allocate/advance/playback/control/drain/merge) without manual
// correlation: `go tool pprof -tagfocus phase=advance`. Call it
// *inside* parallel worker functions — pprof labels attach to the
// running goroutine and do not propagate to pool workers spawned
// outside the labelled region.
func WithLabel(name string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("phase", name), func(context.Context) {
		fn()
	})
}

// Flags holds the output paths of the three collectors; an empty path
// leaves that collector off.
type Flags struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// Register declares the -cpuprofile, -memprofile and -trace flags on
// the given flag set. Call before the set is parsed.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
}

// Start begins every requested collector and returns the stop function
// to run (usually deferred) when the measured work is done. Stop
// flushes and closes everything; the heap profile is captured at stop
// time, after a final GC, so it reflects live memory at end of run.
// If any collector fails to start, the ones already running are
// stopped before the error is returned.
func (f *Flags) Start() (stop func() error, err error) {
	var stops []func() error
	unwind := func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if e := stops[i](); e != nil && first == nil {
				first = e
			}
		}
		return first
	}
	if f.CPUProfile != "" {
		cf, err := os.Create(f.CPUProfile)
		if err != nil {
			unwind()
			return nil, err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			unwind()
			return nil, err
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return cf.Close()
		})
	}
	if f.Trace != "" {
		tf, err := os.Create(f.Trace)
		if err != nil {
			unwind()
			return nil, err
		}
		if err := trace.Start(tf); err != nil {
			tf.Close()
			unwind()
			return nil, err
		}
		stops = append(stops, func() error {
			trace.Stop()
			return tf.Close()
		})
	}
	if f.MemProfile != "" {
		path := f.MemProfile
		stops = append(stops, func() error {
			mf, err := os.Create(path)
			if err != nil {
				return err
			}
			runtime.GC() // report live objects, not garbage awaiting sweep
			if err := pprof.WriteHeapProfile(mf); err != nil {
				mf.Close()
				return err
			}
			return mf.Close()
		})
	}
	return unwind, nil
}
