package workload

import (
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

// Arrivals samples a non-homogeneous Poisson process over [0, horizon)
// with the given rate profile, by thinning (Lewis & Shedler): candidate
// events are drawn from a homogeneous process at the peak rate and
// accepted with probability rate(t)/peak.
func Arrivals(p RateProfile, horizon sim.Time, r *xrand.RNG) []sim.Time {
	peak := p.MaxRate()
	if peak <= 0 || horizon <= 0 {
		return nil
	}
	var out []sim.Time
	t := 0.0
	hz := horizon.Seconds()
	for {
		t += r.ExpFloat64() / peak
		if t >= hz {
			return out
		}
		at := sim.FromSeconds(t)
		if r.Float64()*peak < p.RateAt(at) {
			out = append(out, at)
		}
	}
}

// FlashCrowd returns a profile that is quiet at `quiet` arrivals/s for
// warmup seconds, then bursts at `burst` arrivals/s for burstLen, then
// returns to quiet — the §V-E flash-crowd shape.
func FlashCrowd(warmup, burstLen sim.Time, quiet, burst float64) RateProfile {
	return RateProfile{
		Boundaries: []sim.Time{0, warmup, warmup + burstLen},
		Rates:      []float64{quiet, burst, quiet},
	}
}

// Constant returns a homogeneous profile.
func Constant(rate float64) RateProfile {
	return RateProfile{Boundaries: []sim.Time{0}, Rates: []float64{rate}}
}
