package workload

import (
	"fmt"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

// UserSpec is one planned user: when they arrive, what machine they
// sit on, how long they intend to watch, and how many failed joins
// they will tolerate.
type UserSpec struct {
	UserID   int
	At       sim.Time
	Endpoint netmodel.Endpoint
	Watch    sim.Time
	Patience int
}

// Scenario is a fully materialised workload: a deterministic list of
// user arrivals for a run.
type Scenario struct {
	Specs      []UserSpec
	Horizon    sim.Time
	ProgramEnd sim.Time // zero when no program boundary applies
}

// Options configures scenario generation.
type Options struct {
	Profile  RateProfile
	Horizon  sim.Time
	Mix      netmodel.ClassMix
	Capacity netmodel.CapacityProfile
	Sessions *SessionModel
	// ProgramEnd truncates watch durations at the program boundary,
	// producing the Fig. 5b departure cliff. Zero disables it.
	ProgramEnd sim.Time
	// EndJitter spreads program-end departures over a short window so
	// the cliff is steep but not a single tick.
	EndJitter sim.Time
}

// Validate reports option errors.
func (o Options) Validate() error {
	if err := o.Profile.Validate(); err != nil {
		return err
	}
	if o.Horizon <= 0 {
		return fmt.Errorf("workload: horizon %v", o.Horizon)
	}
	if o.Sessions == nil {
		return fmt.Errorf("workload: nil session model")
	}
	return nil
}

// Generate materialises a scenario. Deterministic for a given RNG state.
func Generate(o Options, r *xrand.RNG) (Scenario, error) {
	if err := o.Validate(); err != nil {
		return Scenario{}, err
	}
	classSampler := o.Mix.Sampler()
	arrivals := Arrivals(o.Profile, o.Horizon, r)
	sc := Scenario{Horizon: o.Horizon, ProgramEnd: o.ProgramEnd}
	sc.Specs = make([]UserSpec, 0, len(arrivals))
	for i, at := range arrivals {
		class := netmodel.UserClass(classSampler.Draw(r))
		watch := o.Sessions.Duration(r)
		if o.ProgramEnd > 0 && at < o.ProgramEnd && at+watch > o.ProgramEnd {
			jitter := sim.Time(0)
			if o.EndJitter > 0 {
				jitter = sim.Time(r.Int63n(int64(o.EndJitter)))
			}
			watch = o.ProgramEnd - at + jitter
		}
		if watch < sim.Second {
			watch = sim.Second
		}
		sc.Specs = append(sc.Specs, UserSpec{
			UserID:   i + 1,
			At:       at,
			Endpoint: o.Capacity.Draw(class, r),
			Watch:    watch,
			Patience: o.Sessions.Patience(r),
		})
	}
	return sc, nil
}

// CountAt returns how many users would be concurrently present at t if
// every session succeeded immediately — the intended-load curve used
// to sanity-check generated scenarios against Fig. 5.
func (sc Scenario) CountAt(t sim.Time) int {
	n := 0
	for _, s := range sc.Specs {
		if s.At <= t && t < s.At+s.Watch {
			n++
		}
	}
	return n
}
