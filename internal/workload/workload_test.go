package workload

import (
	"math"
	"testing"
	"testing/quick"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

func TestRateProfileValidate(t *testing.T) {
	good := Constant(2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RateProfile{
		{},
		{Boundaries: []sim.Time{0, 10}, Rates: []float64{1}},
		{Boundaries: []sim.Time{5}, Rates: []float64{1}},
		{Boundaries: []sim.Time{0, 10, 10}, Rates: []float64{1, 2, 3}},
		{Boundaries: []sim.Time{0}, Rates: []float64{-1}},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad profile %d validated", i)
		}
	}
}

func TestRateAtSegments(t *testing.T) {
	p := RateProfile{
		Boundaries: []sim.Time{0, 10 * sim.Second, 20 * sim.Second},
		Rates:      []float64{1, 5, 2},
	}
	cases := []struct {
		t    sim.Time
		want float64
	}{
		{0, 1}, {9 * sim.Second, 1}, {10 * sim.Second, 5},
		{19 * sim.Second, 5}, {20 * sim.Second, 2}, {sim.Hour, 2},
	}
	for _, c := range cases {
		if got := p.RateAt(c.t); got != c.want {
			t.Errorf("RateAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if p.MaxRate() != 5 {
		t.Errorf("MaxRate = %v", p.MaxRate())
	}
}

func TestScale(t *testing.T) {
	p := Constant(3).Scale(2)
	if p.Rates[0] != 6 {
		t.Fatalf("scaled rate %v", p.Rates[0])
	}
}

func TestArrivalsRateMatches(t *testing.T) {
	r := xrand.New(1)
	const rate = 5.0
	horizon := 2000 * sim.Second
	got := Arrivals(Constant(rate), horizon, r)
	want := rate * horizon.Seconds()
	if math.Abs(float64(len(got))-want) > 4*math.Sqrt(want) {
		t.Fatalf("arrivals %d, want ~%.0f", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
	if got[len(got)-1] >= horizon {
		t.Fatal("arrival past horizon")
	}
}

func TestArrivalsThinning(t *testing.T) {
	// Profile with silent second half: no arrivals may land there.
	p := RateProfile{Boundaries: []sim.Time{0, 500 * sim.Second}, Rates: []float64{3, 0}}
	got := Arrivals(p, 1000*sim.Second, xrand.New(2))
	if len(got) == 0 {
		t.Fatal("no arrivals in active half")
	}
	for _, at := range got {
		if at >= 500*sim.Second {
			t.Fatalf("arrival at %v in silent segment", at)
		}
	}
}

func TestArrivalsDegenerate(t *testing.T) {
	if Arrivals(Constant(0), sim.Hour, xrand.New(3)) != nil {
		t.Fatal("zero-rate arrivals not empty")
	}
	if Arrivals(Constant(5), 0, xrand.New(3)) != nil {
		t.Fatal("zero-horizon arrivals not empty")
	}
}

func TestDiurnalProfileShape(t *testing.T) {
	day := 24 * sim.Hour
	p := DiurnalProfile(day, 1, 6)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	night := p.RateAt(2 * sim.Hour)
	evening := p.RateAt(19 * sim.Hour)
	late := p.RateAt(23*sim.Hour + 30*sim.Minute)
	if evening <= 3*night {
		t.Fatalf("no evening peak: night %v evening %v", night, evening)
	}
	if late >= evening {
		t.Fatalf("no post-program decay: late %v evening %v", late, evening)
	}
	if ProgramEnd(day) != 22*sim.Hour {
		t.Fatalf("program end %v", ProgramEnd(day))
	}
}

func TestFlashCrowdProfile(t *testing.T) {
	p := FlashCrowd(60*sim.Second, 30*sim.Second, 0.5, 20)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.RateAt(10*sim.Second) != 0.5 || p.RateAt(70*sim.Second) != 20 || p.RateAt(100*sim.Second) != 0.5 {
		t.Fatal("flash crowd segments wrong")
	}
}

func TestSessionModelDurations(t *testing.T) {
	m := DefaultSessionModel(1)
	r := xrand.New(4)
	var short, long int
	const n = 20000
	for i := 0; i < n; i++ {
		d := m.Duration(r)
		if d <= 0 {
			t.Fatal("non-positive duration")
		}
		if d < sim.Minute {
			short++
		}
		if d > sim.Hour {
			long++
		}
	}
	// Fig. 10a: a visible spike of sub-minute sessions and a heavy tail.
	if frac := float64(short) / n; frac < 0.10 || frac > 0.45 {
		t.Fatalf("short-session fraction %.3f outside Fig. 10a shape", frac)
	}
	if frac := float64(long) / n; frac < 0.10 {
		t.Fatalf("long-session fraction %.3f lacks heavy tail", frac)
	}
}

func TestSessionModelTimeScale(t *testing.T) {
	full := DefaultSessionModel(1)
	tenth := DefaultSessionModel(0.1)
	r1, r2 := xrand.New(5), xrand.New(5)
	var sumFull, sumTenth float64
	for i := 0; i < 5000; i++ {
		sumFull += full.Duration(r1).Seconds()
		sumTenth += tenth.Duration(r2).Seconds()
	}
	ratio := sumTenth / sumFull
	if ratio < 0.05 || ratio > 0.2 {
		t.Fatalf("time scale ratio %.3f, want ~0.1", ratio)
	}
}

func TestPatienceDistribution(t *testing.T) {
	m := DefaultSessionModel(1)
	r := xrand.New(6)
	counts := map[int]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		p := m.Patience(r)
		if p < 0 || p > m.MaxRetry {
			t.Fatalf("patience %d out of range", p)
		}
		counts[p]++
	}
	if counts[0] == 0 || counts[m.MaxRetry] == 0 {
		t.Fatal("patience distribution degenerate")
	}
	// Geometric: zero retries should be the most common single value
	// besides possibly the cap.
	if counts[0] < counts[1] {
		t.Fatalf("patience not decreasing: %v", counts)
	}
}

func TestGenerateScenario(t *testing.T) {
	day := 2 * sim.Hour
	opts := Options{
		Profile:    DiurnalProfile(day, 0.3, 6),
		Horizon:    day,
		Mix:        netmodel.DefaultClassMix(),
		Capacity:   netmodel.DefaultCapacityProfile(768e3),
		Sessions:   DefaultSessionModel(float64(day) / float64(24*sim.Hour)),
		ProgramEnd: ProgramEnd(day),
		EndJitter:  30 * sim.Second,
	}
	sc, err := Generate(opts, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Specs) < 100 {
		t.Fatalf("only %d arrivals", len(sc.Specs))
	}
	// User IDs unique and ascending arrival times.
	for i := 1; i < len(sc.Specs); i++ {
		if sc.Specs[i].At < sc.Specs[i-1].At {
			t.Fatal("arrivals unsorted")
		}
		if sc.Specs[i].UserID == sc.Specs[i-1].UserID {
			t.Fatal("duplicate user IDs")
		}
	}
	// The 22:00 cliff: intended concurrency just before program end
	// must collapse shortly after it.
	before := sc.CountAt(sc.ProgramEnd - sim.Minute)
	after := sc.CountAt(sc.ProgramEnd + 2*opts.EndJitter)
	if before < 20 {
		t.Fatalf("too few concurrent users before program end: %d", before)
	}
	if float64(after) > 0.35*float64(before) {
		t.Fatalf("no departure cliff: %d before, %d after", before, after)
	}
	// Evening concurrency must exceed early-day concurrency (Fig. 5a).
	morning := sc.CountAt(day / 4)
	evening := sc.CountAt(sim.Time(float64(day) * 20 / 24))
	if evening <= morning {
		t.Fatalf("no evening peak: morning %d evening %d", morning, evening)
	}
}

func TestGenerateValidation(t *testing.T) {
	_, err := Generate(Options{}, xrand.New(1))
	if err == nil {
		t.Fatal("empty options accepted")
	}
	opts := Options{Profile: Constant(1), Horizon: sim.Hour}
	if _, err := Generate(opts, xrand.New(1)); err == nil {
		t.Fatal("nil session model accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opts := Options{
		Profile:  Constant(1),
		Horizon:  10 * sim.Minute,
		Mix:      netmodel.DefaultClassMix(),
		Capacity: netmodel.DefaultCapacityProfile(768e3),
		Sessions: DefaultSessionModel(0.1),
	}
	a, _ := Generate(opts, xrand.New(9))
	b, _ := Generate(opts, xrand.New(9))
	if len(a.Specs) != len(b.Specs) {
		t.Fatal("non-deterministic arrival count")
	}
	for i := range a.Specs {
		if a.Specs[i] != b.Specs[i] {
			t.Fatalf("spec %d differs", i)
		}
	}
}

func TestQuickProfileNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		day := sim.Hour
		p := DiurnalProfile(day, r.Float64()*2, 2+r.Float64()*8)
		for i := 0; i < 50; i++ {
			if p.RateAt(sim.Time(r.Int63n(int64(day)))) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
