package workload

import (
	"strings"
	"testing"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

func TestScenarioFileRoundTrip(t *testing.T) {
	opts := Options{
		Profile:    Constant(0.5),
		Horizon:    5 * sim.Minute,
		Mix:        netmodel.DefaultClassMix(),
		Capacity:   netmodel.DefaultCapacityProfile(768e3),
		Sessions:   DefaultSessionModel(0.1),
		ProgramEnd: 4 * sim.Minute,
	}
	sc, err := Generate(opts, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteScenario(&buf, sc); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScenario(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Horizon != sc.Horizon || got.ProgramEnd != sc.ProgramEnd {
		t.Fatalf("header mismatch: %v/%v vs %v/%v", got.Horizon, got.ProgramEnd, sc.Horizon, sc.ProgramEnd)
	}
	if len(got.Specs) != len(sc.Specs) {
		t.Fatalf("specs %d vs %d", len(got.Specs), len(sc.Specs))
	}
	for i := range sc.Specs {
		if got.Specs[i] != sc.Specs[i] {
			t.Fatalf("spec %d: %+v vs %+v", i, got.Specs[i], sc.Specs[i])
		}
	}
}

func TestReadScenarioErrors(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"horizon_ms":0}`,
		`{"horizon_ms":1000}` + "\n" + `{"user":1,"at_ms":0,"class":"alien","upload_bps":1,"download_bps":1,"watch_ms":10}`,
		`{"horizon_ms":1000}` + "\n" + `{"user":1,"at_ms":-5,"class":"nat","upload_bps":1,"download_bps":1,"watch_ms":10}`,
		`{"horizon_ms":1000}` + "\n" + `{"user":1,"at_ms":0,"class":"nat","upload_bps":1,"download_bps":1,"watch_ms":0}`,
		`{"horizon_ms":1000}` + "\n" + "garbage",
	}
	for i, c := range cases {
		if _, err := ReadScenario(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestScenarioFileEmptySpecsOK(t *testing.T) {
	sc := Scenario{Horizon: sim.Minute}
	var buf strings.Builder
	if err := WriteScenario(&buf, sc); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScenario(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Specs) != 0 || got.Horizon != sim.Minute {
		t.Fatalf("empty scenario mangled: %+v", got)
	}
}
