// Package workload generates the synthetic user population and
// arrival process standing in for the paper's 2006-09-27 broadcast
// traces: a diurnal arrival-rate profile with an evening flash crowd
// and a program-end departure cliff (Fig. 5), heavy-tailed session
// durations with a short-session failure spike (Fig. 10a), retry
// patience (Fig. 10b), and the NAT-dominated class mix with skewed
// upload capacities (Fig. 3).
package workload

import (
	"fmt"
	"sort"

	"coolstream/internal/sim"
)

// RateProfile is a piecewise-constant arrival-rate function
// (arrivals per virtual second).
type RateProfile struct {
	// Boundaries are segment start times, ascending, starting at 0.
	Boundaries []sim.Time
	// Rates[i] applies from Boundaries[i] to Boundaries[i+1] (the last
	// rate extends to the horizon).
	Rates []float64
}

// Validate checks structural consistency.
func (p RateProfile) Validate() error {
	if len(p.Boundaries) == 0 || len(p.Boundaries) != len(p.Rates) {
		return fmt.Errorf("workload: profile has %d boundaries, %d rates",
			len(p.Boundaries), len(p.Rates))
	}
	if p.Boundaries[0] != 0 {
		return fmt.Errorf("workload: profile must start at 0, got %v", p.Boundaries[0])
	}
	for i := 1; i < len(p.Boundaries); i++ {
		if p.Boundaries[i] <= p.Boundaries[i-1] {
			return fmt.Errorf("workload: boundaries not ascending at %d", i)
		}
	}
	for i, r := range p.Rates {
		if r < 0 {
			return fmt.Errorf("workload: negative rate %v at segment %d", r, i)
		}
	}
	return nil
}

// RateAt returns the arrival rate at time t.
func (p RateProfile) RateAt(t sim.Time) float64 {
	i := sort.Search(len(p.Boundaries), func(i int) bool { return p.Boundaries[i] > t }) - 1
	if i < 0 {
		return 0
	}
	return p.Rates[i]
}

// MaxRate returns the profile's peak rate.
func (p RateProfile) MaxRate() float64 {
	max := 0.0
	for _, r := range p.Rates {
		if r > max {
			max = r
		}
	}
	return max
}

// Scale returns a copy with all rates multiplied by f.
func (p RateProfile) Scale(f float64) RateProfile {
	out := RateProfile{
		Boundaries: append([]sim.Time(nil), p.Boundaries...),
		Rates:      make([]float64, len(p.Rates)),
	}
	for i, r := range p.Rates {
		out.Rates[i] = r * f
	}
	return out
}

// DiurnalProfile builds a compressed broadcast-day profile shaped like
// Fig. 5a: low overnight arrivals, a daytime ramp, an evening flash
// crowd between the 18:00 and 22:00 equivalents, and decay afterwards.
// dayLength is the virtual duration representing 24 hours; baseRate is
// the overnight arrivals/second at that compression, and the evening
// peak is peakFactor times the base.
func DiurnalProfile(dayLength sim.Time, baseRate, peakFactor float64) RateProfile {
	frac := func(hours float64) sim.Time { return sim.Time(float64(dayLength) * hours / 24) }
	return RateProfile{
		Boundaries: []sim.Time{
			0,          // 00:00 overnight trough
			frac(7),    // 07:00 morning ramp
			frac(12),   // 12:00 lunchtime plateau
			frac(13.5), // 13:30 afternoon (paper period ii)
			frac(17.5), // 17:30 pre-evening ramp (period iii starts)
			frac(18.5), // 18:30 flash crowd
			frac(20.5), // 20:30 peak sustains (period iv)
			frac(22),   // 22:00 program end: arrivals collapse
			frac(23),   // 23:00 overnight decay
		},
		Rates: []float64{
			baseRate * 0.3,
			baseRate * 0.8,
			baseRate * 1.2,
			baseRate * 1.0,
			baseRate * 2.0,
			baseRate * peakFactor,
			baseRate * peakFactor * 0.8,
			baseRate * 0.4,
			baseRate * 0.2,
		},
	}
}

// ProgramEnd returns the virtual time of the 22:00 program boundary in
// a compressed day, where the Fig. 5b departure cliff occurs.
func ProgramEnd(dayLength sim.Time) sim.Time {
	return sim.Time(float64(dayLength) * 22 / 24)
}
