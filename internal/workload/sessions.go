package workload

import (
	"math"

	"coolstream/internal/sim"
	"coolstream/internal/stats"
	"coolstream/internal/xrand"
)

// SessionModel draws intended watch durations and retry patience.
// Durations are a three-way mixture reproducing Fig. 10a's shape:
//
//   - a spike of sub-minute "sampler" sessions (users checking a
//     channel and leaving, plus sessions doomed to fail),
//   - a lognormal body of ordinary viewing,
//   - a Pareto tail of users watching essentially the whole program.
type SessionModel struct {
	durations *stats.Mixture
	// PatienceProb[k] is the probability a user retries at least k+1
	// times after failures; geometric by default.
	RetryProb float64
	MaxRetry  int
}

// DefaultSessionModel calibrates the mixture for a compressed day:
// timeScale converts real seconds to virtual seconds (timeScale = 0.1
// compresses 24 h into 2.4 h).
func DefaultSessionModel(timeScale float64) *SessionModel {
	return &SessionModel{
		durations: stats.NewMixture(
			[]stats.Sampler{
				stats.LogNormal{Mu: math.Log(20 * timeScale), Sigma: 0.8},  // samplers, <1 min
				stats.LogNormal{Mu: math.Log(900 * timeScale), Sigma: 1.0}, // body, ~15 min
				stats.Pareto{Xm: 3600 * timeScale, Alpha: 1.3},             // stayers, 1 h+
			},
			[]float64{0.25, 0.55, 0.20},
		),
		RetryProb: 0.65,
		MaxRetry:  4,
	}
}

// Duration draws one intended watch duration.
func (m *SessionModel) Duration(r *xrand.RNG) sim.Time {
	return sim.FromSeconds(m.durations.Sample(r))
}

// Patience draws how many failed joins the user will retry.
func (m *SessionModel) Patience(r *xrand.RNG) int {
	n := 0
	for n < m.MaxRetry && r.Bool(m.RetryProb) {
		n++
	}
	return n
}
