package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// fileSpec is the JSON form of a UserSpec, with times in milliseconds
// and capacities in bits/second, so scenario files are self-describing
// and editable by hand.
type fileSpec struct {
	UserID      int     `json:"user"`
	AtMs        int64   `json:"at_ms"`
	Class       string  `json:"class"`
	UploadBps   float64 `json:"upload_bps"`
	DownloadBps float64 `json:"download_bps"`
	WatchMs     int64   `json:"watch_ms"`
	Patience    int     `json:"patience"`
}

// WriteScenario streams a scenario as JSON lines (one user per line),
// so huge workloads can be processed without loading them whole.
func WriteScenario(w io.Writer, sc Scenario) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	header := struct {
		HorizonMs    int64 `json:"horizon_ms"`
		ProgramEndMs int64 `json:"program_end_ms"`
	}{int64(sc.Horizon), int64(sc.ProgramEnd)}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for _, s := range sc.Specs {
		fs := fileSpec{
			UserID:      s.UserID,
			AtMs:        int64(s.At),
			Class:       s.Endpoint.Class.String(),
			UploadBps:   s.Endpoint.UploadBps,
			DownloadBps: s.Endpoint.DownloadBps,
			WatchMs:     int64(s.Watch),
			Patience:    s.Patience,
		}
		if err := enc.Encode(fs); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadScenario parses the WriteScenario format.
func ReadScenario(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var header struct {
		HorizonMs    int64 `json:"horizon_ms"`
		ProgramEndMs int64 `json:"program_end_ms"`
	}
	if err := dec.Decode(&header); err != nil {
		return Scenario{}, fmt.Errorf("workload: scenario header: %w", err)
	}
	sc := Scenario{
		Horizon:    sim.Time(header.HorizonMs),
		ProgramEnd: sim.Time(header.ProgramEndMs),
	}
	if sc.Horizon <= 0 {
		return Scenario{}, fmt.Errorf("workload: scenario horizon %d ms", header.HorizonMs)
	}
	line := 1
	for {
		var fs fileSpec
		if err := dec.Decode(&fs); err == io.EOF {
			break
		} else if err != nil {
			return Scenario{}, fmt.Errorf("workload: scenario entry %d: %w", line, err)
		}
		line++
		class, err := netmodel.ParseUserClass(fs.Class)
		if err != nil {
			return Scenario{}, fmt.Errorf("workload: scenario entry %d: %w", line, err)
		}
		if fs.AtMs < 0 || fs.WatchMs <= 0 || fs.UploadBps < 0 || fs.DownloadBps <= 0 {
			return Scenario{}, fmt.Errorf("workload: scenario entry %d: invalid numbers", line)
		}
		sc.Specs = append(sc.Specs, UserSpec{
			UserID: fs.UserID,
			At:     sim.Time(fs.AtMs),
			Endpoint: netmodel.Endpoint{
				Class:       class,
				UploadBps:   fs.UploadBps,
				DownloadBps: fs.DownloadBps,
			},
			Watch:    sim.Time(fs.WatchMs),
			Patience: fs.Patience,
		})
	}
	return sc, nil
}
