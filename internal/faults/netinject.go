package faults

import (
	"errors"
	"net"
	"net/http"
	"sync"
	"time"

	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

// Injection sentinels, distinguishable from genuine network errors
// with errors.Is.
var (
	// ErrRefused marks a dial refused by the NAT-refusal fault.
	ErrRefused = errors.New("faults: connection refused (injected)")
	// ErrOutage marks a request dropped inside an outage window.
	ErrOutage = errors.New("faults: service outage (injected)")
)

// DialFunc matches the dialer signature of internal/netpeer.
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// Injector carries a fault plan onto the live-socket engine: it wraps
// dial functions with the NAT-refusal fault and HTTP transports with
// the tracker/log outage windows. Refusal decisions come from a seeded
// RNG behind a mutex, so a fixed sequence of attempts sees a fixed
// sequence of refusals; outage windows are evaluated against a virtual
// clock that defaults to wall time elapsed since construction.
type Injector struct {
	mu    sync.Mutex
	sch   *Schedule
	rng   *xrand.RNG
	clock func() sim.Time
}

// NewInjector validates cfg and builds an injector seeded with seed.
func NewInjector(cfg Config, seed uint64) (*Injector, error) {
	sch, err := NewSchedule(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	return &Injector{
		sch: sch,
		rng: xrand.New(seed).SplitLabeled("netinject"),
		clock: func() sim.Time {
			return sim.Time(time.Since(start).Milliseconds())
		},
	}, nil
}

// SetClock replaces the outage-window clock (tests pin virtual time).
func (in *Injector) SetClock(fn func() sim.Time) {
	in.mu.Lock()
	in.clock = fn
	in.mu.Unlock()
}

// Stats returns a copy of the firing counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.sch.Stats
}

// refuseDial draws one refusal decision.
func (in *Injector) refuseDial() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.sch.Cfg.NATRefusalProb <= 0 {
		return false
	}
	if in.rng.Bool(in.sch.Cfg.NATRefusalProb) {
		in.sch.Stats.NATRefusals++
		return true
	}
	return false
}

// WrapDial returns a dialer that refuses attempts with the plan's
// NAT-refusal probability before delegating to dial (nil dial means
// net.DialTimeout).
func (in *Injector) WrapDial(dial DialFunc) DialFunc {
	if dial == nil {
		dial = net.DialTimeout
	}
	return func(network, addr string, timeout time.Duration) (net.Conn, error) {
		if in.refuseDial() {
			return nil, ErrRefused
		}
		return dial(network, addr, timeout)
	}
}

// TrackerDial wraps dial (nil = net.DialTimeout) so attempts fail with
// ErrOutage during tracker outage windows — the binary-protocol
// counterpart of TrackerTransport, for clients that dial the tracker
// directly instead of going through an http.RoundTripper. Firings land
// in the same TrackerRefusals counter.
func (in *Injector) TrackerDial(dial DialFunc) DialFunc {
	if dial == nil {
		dial = net.DialTimeout
	}
	return func(network, addr string, timeout time.Duration) (net.Conn, error) {
		in.mu.Lock()
		down := in.sch.TrackerDown(in.clock())
		if down {
			in.sch.Stats.TrackerRefusals++
		}
		in.mu.Unlock()
		if down {
			return nil, ErrOutage
		}
		return dial(network, addr, timeout)
	}
}

// outageTransport fails round trips inside outage windows.
type outageTransport struct {
	in      *Injector
	inner   http.RoundTripper
	down    func(*Schedule, sim.Time) bool
	tracker bool // which Stats counter the firing lands in
}

// RoundTrip implements http.RoundTripper.
func (t *outageTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.in.mu.Lock()
	now := t.in.clock()
	down := t.down(t.in.sch, now)
	if down && t.tracker {
		t.in.sch.Stats.TrackerRefusals++
	}
	t.in.mu.Unlock()
	if down {
		return nil, ErrOutage
	}
	return t.inner.RoundTrip(req)
}

// TrackerTransport wraps inner (nil = http.DefaultTransport) so
// requests fail during tracker outage windows — the bootstrap-facing
// side of the plan.
func (in *Injector) TrackerTransport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &outageTransport{in: in, inner: inner, down: (*Schedule).TrackerDown, tracker: true}
}

// LogTransport wraps inner (nil = http.DefaultTransport) so requests
// fail during log-server outage windows. Dropped reports are counted
// by the client-side buffered sink, not here.
func (in *Injector) LogTransport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &outageTransport{in: in, inner: inner, down: (*Schedule).LogDown}
}
