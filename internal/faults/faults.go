// Package faults is the deterministic fault-injection layer of the
// reproduction. The paper measures a system living under constant
// failure — users retry joins dozens of times (Fig. 10b), partner
// departures and NAT-blocked connections interrupt playback (§V) —
// so the engines need a fault substrate that is *schedulable* and
// *reproducible*: the same seed and fault plan must fire the same
// faults at the same virtual times, at any GOMAXPROCS.
//
// The package has three parts:
//
//   - Config/Schedule: a declarative fault plan (tracker and log-server
//     outage windows, NAT-class connection refusal probability, a
//     mid-session partner-kill hazard, burst packet-loss windows) and
//     its queryable clock. Window and loss queries are pure functions
//     of virtual time; probabilistic faults draw from the consumer's
//     deterministic RNG streams in sequential simulation phases only,
//     so fault firings fold into the run digest like any other draw.
//   - Backoff: capped exponential retry backoff with *deterministic*
//     jitter — the jitter is a pure hash of (attempt, key), not an RNG
//     stream, so a retry schedule is a function of identity alone and
//     re-ordering retries across peers cannot perturb each other.
//   - Injector (netinject.go): a dialer/transport wrapper carrying the
//     same plan onto the live-socket engine (internal/netpeer,
//     internal/netboot).
package faults

import (
	"fmt"
	"time"

	"coolstream/internal/sim"
)

// Window is one outage interval [Start, End) in virtual time.
type Window struct {
	Start, End sim.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t sim.Time) bool { return w.Start <= t && t < w.End }

// Validate reports malformed windows.
func (w Window) Validate() error {
	if w.End <= w.Start || w.Start < 0 {
		return fmt.Errorf("faults: window [%v,%v)", w.Start, w.End)
	}
	return nil
}

// LossWindow is a burst packet-loss interval: during the window a
// fraction Frac of the fluid transfer rate (or of pushed blocks, in
// the live engine) is lost.
type LossWindow struct {
	Window
	Frac float64
}

// Config is a declarative fault plan for one run. The zero value is
// fault-free.
type Config struct {
	// TrackerOutages are windows during which the bootstrap/tracker
	// answers nothing: joins stall and nodes re-contact with backoff.
	TrackerOutages []Window
	// LogOutages are windows during which the log server is down;
	// reports are buffered client-side (see logsys.BufferedSink) and
	// dropped once the buffer overflows.
	LogOutages []Window
	// NATRefusalProb is the probability that a partnership attempt
	// involving a NAT-class endpoint is refused (the paper's
	// NAT-blocked connections, §V-B).
	NATRefusalProb float64
	// PartnerKillRate is the expected number of mid-session partnership
	// kills per second of virtual time: an established partner link is
	// severed on both sides, stalling any sub-streams it served.
	PartnerKillRate float64
	// BurstLoss are packet-loss windows applied to data transfer.
	BurstLoss []LossWindow
}

// Enabled reports whether the plan injects anything at all.
func (c Config) Enabled() bool {
	return len(c.TrackerOutages) > 0 || len(c.LogOutages) > 0 ||
		c.NATRefusalProb > 0 || c.PartnerKillRate > 0 || len(c.BurstLoss) > 0
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, w := range c.TrackerOutages {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("tracker %w", err)
		}
	}
	for _, w := range c.LogOutages {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("log %w", err)
		}
	}
	if c.NATRefusalProb < 0 || c.NATRefusalProb > 1 {
		return fmt.Errorf("faults: NATRefusalProb %v", c.NATRefusalProb)
	}
	if c.PartnerKillRate < 0 {
		return fmt.Errorf("faults: PartnerKillRate %v", c.PartnerKillRate)
	}
	for _, lw := range c.BurstLoss {
		if err := lw.Validate(); err != nil {
			return fmt.Errorf("loss %w", err)
		}
		if lw.Frac <= 0 || lw.Frac > 1 {
			return fmt.Errorf("faults: loss fraction %v", lw.Frac)
		}
	}
	return nil
}

// Stats counts fault firings. The consuming engine increments the
// fields from sequential phases only, so the counts are deterministic
// and are folded into the run digest.
type Stats struct {
	// TrackerRefusals counts bootstrap contacts that hit an outage.
	TrackerRefusals int
	// NATRefusals counts partnership attempts refused by the NAT fault.
	NATRefusals int
	// PartnerKills counts severed mid-session partnerships.
	PartnerKills int
}

// Schedule is the queryable fault clock built from a Config. All
// window queries are pure functions of virtual time; the Stats block
// accumulates firings as consumers report them.
type Schedule struct {
	Cfg   Config
	Stats Stats
}

// NewSchedule validates cfg and wraps it.
func NewSchedule(cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Schedule{Cfg: cfg}, nil
}

// TrackerDown reports whether the bootstrap/tracker is down at t.
func (s *Schedule) TrackerDown(t sim.Time) bool {
	for _, w := range s.Cfg.TrackerOutages {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// LogDown reports whether the log server is down at t.
func (s *Schedule) LogDown(t sim.Time) bool {
	for _, w := range s.Cfg.LogOutages {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// LossFrac returns the burst-loss fraction active at t (0 outside all
// loss windows; overlapping windows take the max).
func (s *Schedule) LossFrac(t sim.Time) float64 {
	frac := 0.0
	for _, lw := range s.Cfg.BurstLoss {
		if lw.Contains(t) && lw.Frac > frac {
			frac = lw.Frac
		}
	}
	return frac
}

// hash64 is splitmix64's finalizer (Steele et al., OOPSLA 2014): a
// bijective avalanche mix used to derive deterministic jitter from an
// (attempt, key) identity without consuming any RNG stream.
func hash64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Backoff is capped exponential retry backoff with deterministic
// jitter. The zero value is disabled (consumers fall back to their
// legacy fixed delay).
type Backoff struct {
	// Base is the nominal first-retry delay.
	Base sim.Time
	// Cap bounds the exponential growth.
	Cap sim.Time
	// JitterFrac spreads each delay uniformly over
	// [1-JitterFrac/2, 1+JitterFrac/2] × nominal, keeping the mean at
	// the nominal delay. Must be in [0, 1].
	JitterFrac float64
}

// Enabled reports whether the backoff is configured.
func (b Backoff) Enabled() bool { return b.Base > 0 }

// Validate reports configuration errors.
func (b Backoff) Validate() error {
	if !b.Enabled() {
		return nil
	}
	if b.Cap < b.Base {
		return fmt.Errorf("faults: backoff cap %v < base %v", b.Cap, b.Base)
	}
	if b.JitterFrac < 0 || b.JitterFrac > 1 {
		return fmt.Errorf("faults: backoff jitter %v", b.JitterFrac)
	}
	return nil
}

// Delay returns the delay before retry number `attempt` (1-based) for
// the retrying identity `key` (a peer/user ID). The nominal delay is
// min(Cap, Base·2^(attempt-1)); jitter multiplies it by a factor drawn
// deterministically from hash64(key, attempt), so the same identity
// retrying for the same time produces the same schedule in every run,
// while distinct identities de-synchronise (no retry thundering herd).
func (b Backoff) Delay(attempt int, key uint64) sim.Time {
	if !b.Enabled() {
		return 0
	}
	if attempt < 1 {
		attempt = 1
	}
	d := b.Base
	// Shift with saturation: attempts beyond ~40 would overflow.
	for i := 1; i < attempt && d < b.Cap; i++ {
		d *= 2
	}
	if d > b.Cap {
		d = b.Cap
	}
	if b.JitterFrac > 0 {
		u := float64(hash64(key^uint64(attempt)*0x9e3779b97f4a7c15)>>11) / (1 << 53)
		d = sim.Time(float64(d) * (1 - b.JitterFrac/2 + b.JitterFrac*u))
	}
	if d < sim.Millisecond {
		d = sim.Millisecond
	}
	return d
}

// Duration is Delay converted to wall-clock time for the live-socket
// engine.
func (b Backoff) Duration(attempt int, key uint64) time.Duration {
	return b.Delay(attempt, key).Duration()
}
