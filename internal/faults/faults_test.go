package faults

import (
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"coolstream/internal/sim"
)

func TestWindowContains(t *testing.T) {
	w := Window{Start: 10 * sim.Second, End: 20 * sim.Second}
	for _, tc := range []struct {
		t    sim.Time
		want bool
	}{
		{0, false},
		{10 * sim.Second, true},
		{15 * sim.Second, true},
		{20 * sim.Second, false}, // half-open
		{25 * sim.Second, false},
	} {
		if got := w.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{
		TrackerOutages:  []Window{{Start: sim.Second, End: 2 * sim.Second}},
		LogOutages:      []Window{{Start: 0, End: sim.Second}},
		NATRefusalProb:  0.02,
		PartnerKillRate: 0.1,
		BurstLoss:       []LossWindow{{Window: Window{Start: 0, End: sim.Second}, Frac: 0.5}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if !good.Enabled() {
		t.Fatal("good config reported disabled")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config reported enabled")
	}
	for _, bad := range []Config{
		{TrackerOutages: []Window{{Start: 2 * sim.Second, End: sim.Second}}},
		{NATRefusalProb: 1.5},
		{PartnerKillRate: -1},
		{BurstLoss: []LossWindow{{Window: Window{Start: 0, End: sim.Second}, Frac: 0}}},
		{BurstLoss: []LossWindow{{Window: Window{Start: 0, End: sim.Second}, Frac: 2}}},
	} {
		if bad.Validate() == nil {
			t.Errorf("invalid config accepted: %+v", bad)
		}
	}
}

func TestScheduleQueries(t *testing.T) {
	sch, err := NewSchedule(Config{
		TrackerOutages: []Window{{Start: sim.Minute, End: 2 * sim.Minute}},
		LogOutages:     []Window{{Start: 30 * sim.Second, End: 40 * sim.Second}},
		BurstLoss: []LossWindow{
			{Window: Window{Start: 0, End: 10 * sim.Second}, Frac: 0.3},
			{Window: Window{Start: 5 * sim.Second, End: 15 * sim.Second}, Frac: 0.8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sch.TrackerDown(90*sim.Second) || sch.TrackerDown(10*sim.Second) {
		t.Fatal("tracker window misjudged")
	}
	if !sch.LogDown(35*sim.Second) || sch.LogDown(45*sim.Second) {
		t.Fatal("log window misjudged")
	}
	if got := sch.LossFrac(7 * sim.Second); got != 0.8 {
		t.Fatalf("overlapping loss windows: got %v, want max 0.8", got)
	}
	if got := sch.LossFrac(12 * sim.Second); got != 0.8 {
		t.Fatalf("loss at 12s: got %v", got)
	}
	if got := sch.LossFrac(20 * sim.Second); got != 0 {
		t.Fatalf("loss outside windows: got %v", got)
	}
}

func TestBackoffDeterministicCappedJittered(t *testing.T) {
	b := Backoff{Base: 2 * sim.Second, Cap: 30 * sim.Second, JitterFrac: 0.5}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic: same (attempt, key) → same delay.
	for attempt := 1; attempt <= 10; attempt++ {
		if a, bb := b.Delay(attempt, 7), b.Delay(attempt, 7); a != bb {
			t.Fatalf("attempt %d: non-deterministic delay %v vs %v", attempt, a, bb)
		}
	}
	// Jitter bounds: delay within [0.75, 1.25] × nominal, capped.
	for attempt := 1; attempt <= 12; attempt++ {
		nominal := 2 * sim.Second << (attempt - 1)
		if nominal > 30*sim.Second {
			nominal = 30 * sim.Second
		}
		for key := uint64(0); key < 50; key++ {
			d := b.Delay(attempt, key)
			lo := sim.Time(float64(nominal) * 0.749)
			hi := sim.Time(float64(nominal) * 1.251)
			if d < lo || d > hi {
				t.Fatalf("attempt %d key %d: delay %v outside [%v,%v]", attempt, key, d, lo, hi)
			}
		}
	}
	// Distinct keys de-synchronise.
	if b.Delay(3, 1) == b.Delay(3, 2) && b.Delay(4, 1) == b.Delay(4, 2) {
		t.Fatal("jitter does not separate keys")
	}
	// Disabled backoff.
	var zero Backoff
	if zero.Enabled() || zero.Delay(3, 1) != 0 {
		t.Fatal("zero backoff must be disabled")
	}
	// Invalid configs.
	if (Backoff{Base: sim.Second, Cap: 0}).Validate() == nil {
		t.Fatal("cap < base accepted")
	}
	if (Backoff{Base: sim.Second, Cap: sim.Second, JitterFrac: 2}).Validate() == nil {
		t.Fatal("jitter > 1 accepted")
	}
}

func TestBackoffDuration(t *testing.T) {
	b := Backoff{Base: 100 * sim.Millisecond, Cap: sim.Second}
	if got := b.Duration(1, 0); got != 100*time.Millisecond {
		t.Fatalf("Duration = %v", got)
	}
}

func TestInjectorDialRefusalDeterministic(t *testing.T) {
	run := func() ([]bool, int) {
		in, err := NewInjector(Config{NATRefusalProb: 0.3}, 99)
		if err != nil {
			t.Fatal(err)
		}
		dial := in.WrapDial(func(network, addr string, timeout time.Duration) (net.Conn, error) {
			return nil, nil // a "successful" dial for the purpose of this test
		})
		out := make([]bool, 200)
		for i := range out {
			_, err := dial("tcp", "127.0.0.1:1", time.Second)
			if err != nil && !errors.Is(err, ErrRefused) {
				t.Fatalf("unexpected dial error: %v", err)
			}
			out[i] = err != nil
		}
		return out, in.Stats().NATRefusals
	}
	a, na := run()
	b, nb := run()
	refused := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("refusal sequence diverged at %d", i)
		}
		if a[i] {
			refused++
		}
	}
	if refused == 0 || refused == len(a) {
		t.Fatalf("degenerate refusal count %d/%d", refused, len(a))
	}
	if na != refused || nb != refused {
		t.Fatalf("stats %d/%d, want %d", na, nb, refused)
	}
}

func TestInjectorTransportsRespectWindows(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	in, err := NewInjector(Config{
		TrackerOutages: []Window{{Start: 0, End: sim.Minute}},
		LogOutages:     []Window{{Start: 2 * sim.Minute, End: 3 * sim.Minute}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	in.SetClock(func() sim.Time { return now })

	trackerHC := &http.Client{Transport: in.TrackerTransport(nil)}
	logHC := &http.Client{Transport: in.LogTransport(nil)}

	// Inside the tracker outage.
	if _, err := trackerHC.Get(srv.URL); err == nil || !errors.Is(err, ErrOutage) {
		t.Fatalf("tracker request during outage: err = %v", err)
	}
	// Log server is up at t=0.
	if _, err := logHC.Get(srv.URL); err != nil {
		t.Fatalf("log request outside outage failed: %v", err)
	}
	// After the tracker outage, inside the log outage.
	now = 2*sim.Minute + 10*sim.Second
	if _, err := trackerHC.Get(srv.URL); err != nil {
		t.Fatalf("tracker request after outage failed: %v", err)
	}
	if _, err := logHC.Get(srv.URL); err == nil || !errors.Is(err, ErrOutage) {
		t.Fatalf("log request during outage: err = %v", err)
	}
	if hits != 2 {
		t.Fatalf("server hits = %d, want 2", hits)
	}
	if s := in.Stats(); s.TrackerRefusals != 1 {
		t.Fatalf("tracker refusals = %d, want 1", s.TrackerRefusals)
	}
}
