package analysis

import (
	"fmt"

	"coolstream/internal/buffer"
)

// FluidTransfer simulates the two-node fluid transfer underlying
// Eqs. (3)-(4) directly (no overlay machinery): a child starts
// lBlocks behind a parent pinned to the live edge, transfers at
// rateBps, and the function returns the time in seconds until the gap
// first shrinks to within eps blocks (catch-up) or grows beyond
// lagLimit blocks (loss), whichever happens first. The boolean reports
// whether it was a catch-up.
//
// This is the measurement side of experiment E10: the full simulator's
// behaviour reduces to exactly this trajectory for an isolated pair,
// so comparing it against Model.CatchUpTime/AbandonTime validates both
// the closed forms and the fluid engine's units.
func FluidTransfer(l buffer.Layout, lBlocks, rateBps, eps, lagLimit, dtSeconds, horizonSeconds float64) (float64, bool, error) {
	if err := l.Validate(); err != nil {
		return 0, false, err
	}
	if dtSeconds <= 0 || horizonSeconds <= 0 {
		return 0, false, fmt.Errorf("analysis: non-positive step or horizon")
	}
	beta := l.SubBlocksPerSecond()
	seqRate := rateBps / (8 * float64(l.BlockBytes))
	parent := 0.0
	child := -lBlocks
	for t := 0.0; t <= horizonSeconds; t += dtSeconds {
		gap := parent - child
		if gap <= eps {
			return t, true, nil
		}
		if gap >= lagLimit {
			return t, false, nil
		}
		parent += beta * dtSeconds
		next := child + seqRate*dtSeconds
		if next > parent {
			next = parent
		}
		child = next
	}
	return horizonSeconds, parent-child <= eps, nil
}
