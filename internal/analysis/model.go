// Package analysis implements the paper's closed-form dynamics model
// (§IV-C, Eqs. 3-6) and utilities to compare its predictions with
// fluid-simulation measurements — experiment E10.
//
// All quantities are expressed in the paper's units: block counts are
// per-sub-stream sequence numbers, rates are bits/second, and R/K is
// the nominal sub-stream rate.
package analysis

import (
	"fmt"
	"math"

	"coolstream/internal/buffer"
)

// Model binds the stream layout so block/bit conversions are explicit.
type Model struct {
	Layout buffer.Layout
}

// NewModel validates and wraps a layout.
func NewModel(l buffer.Layout) (Model, error) {
	if err := l.Validate(); err != nil {
		return Model{}, err
	}
	return Model{Layout: l}, nil
}

// blockBits returns the size of one block in bits.
func (m Model) blockBits() float64 { return 8 * float64(m.Layout.BlockBytes) }

// CatchUpTime implements Eq. (3): the time for a child to recover l
// missing blocks from a parent uploading at rUp > R/K:
//
//	t↑ = l / (r↑ - R/K)
//
// expressed here in seconds with l in per-sub-stream blocks. It
// returns an error when rUp does not exceed the sub-stream rate (the
// catch-up never completes).
func (m Model) CatchUpTime(lBlocks, rUpBps float64) (float64, error) {
	sub := m.Layout.SubRateBps()
	if rUpBps <= sub {
		return 0, fmt.Errorf("analysis: upload %v <= sub-stream rate %v; no catch-up", rUpBps, sub)
	}
	if lBlocks < 0 {
		return 0, fmt.Errorf("analysis: negative deficit %v", lBlocks)
	}
	return lBlocks * m.blockBits() / (rUpBps - sub), nil
}

// AbandonTime implements Eq. (4): with a deficient transfer rate
// rDown < R/K, the time until the sub-stream lags l further blocks
// behind (at which point the child abandons the parent):
//
//	t↓ = l / (R/K - r↓)
func (m Model) AbandonTime(lBlocks, rDownBps float64) (float64, error) {
	sub := m.Layout.SubRateBps()
	if rDownBps >= sub {
		return 0, fmt.Errorf("analysis: rate %v >= sub-stream rate %v; no lag grows", rDownBps, sub)
	}
	if lBlocks < 0 {
		return 0, fmt.Errorf("analysis: negative lag target %v", lBlocks)
	}
	return lBlocks * m.blockBits() / (sub - rDownBps), nil
}

// DegradedRate implements Eq. (5): when a parent serving D sub-stream
// transmissions at full rate accepts one more child, each transmission
// drops to
//
//	r↓ = D/(D+1) · R/K
func (m Model) DegradedRate(d int) (float64, error) {
	if d < 1 {
		return 0, fmt.Errorf("analysis: degree %d < 1", d)
	}
	return float64(d) / float64(d+1) * m.Layout.SubRateBps(), nil
}

// LoseTime implements the t_lose expression of §IV-C: the time for a
// child of an overloaded degree-D parent to fall from an initial
// deviation tDelta to the threshold Ts (both in blocks):
//
//	t_lose = (D+1)(Ts - tDelta) / (R/K)
//
// with R/K converted to blocks/second.
func (m Model) LoseTime(d int, ts, tDelta float64) (float64, error) {
	if d < 1 {
		return 0, fmt.Errorf("analysis: degree %d < 1", d)
	}
	if ts < tDelta {
		return 0, fmt.Errorf("analysis: Ts %v below initial deviation %v", ts, tDelta)
	}
	subBlocks := m.Layout.SubBlocksPerSecond()
	return float64(d+1) * (ts - tDelta) / subBlocks, nil
}

// LoseProbability implements Eq. (6) under a given distribution of the
// initial deviation tDelta: the probability that a child loses the
// competition within the cool-down period Ta,
//
//	P(t_lose <= Ta) = P(tDelta >= Ts - Ta·(R/K)/(D+1)).
//
// ccdf must return P(tDelta >= x) for the deviation distribution.
func (m Model) LoseProbability(d int, ts, taSeconds float64, ccdf func(x float64) float64) (float64, error) {
	if d < 1 {
		return 0, fmt.Errorf("analysis: degree %d < 1", d)
	}
	if ccdf == nil {
		return 0, fmt.Errorf("analysis: nil deviation distribution")
	}
	subBlocks := m.Layout.SubBlocksPerSecond()
	threshold := ts - taSeconds*subBlocks/float64(d+1)
	p := ccdf(threshold)
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("analysis: ccdf returned invalid probability %v", p)
	}
	return p, nil
}

// UniformDeviationCCDF returns the CCDF of a deviation uniform on
// [0, max] — a reasonable null model for the initial buffer offsets of
// competing children.
func UniformDeviationCCDF(max float64) func(float64) float64 {
	return func(x float64) float64 {
		switch {
		case x <= 0:
			return 1
		case x >= max:
			return 0
		default:
			return 1 - x/max
		}
	}
}
