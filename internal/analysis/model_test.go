package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"coolstream/internal/buffer"
	"coolstream/internal/xrand"
)

var layout = buffer.Layout{K: 4, RateBps: 768e3, BlockBytes: 12000}

func mustModel(t *testing.T) Model {
	t.Helper()
	m, err := NewModel(layout)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelRejectsInvalidLayout(t *testing.T) {
	if _, err := NewModel(buffer.Layout{}); err == nil {
		t.Fatal("invalid layout accepted")
	}
}

func TestCatchUpTimeEq3(t *testing.T) {
	m := mustModel(t)
	// Sub-stream rate R/K = 192 kbps. Upload 384 kbps, deficit 40
	// blocks = 40*96000 bits: t = 3.84e6 / 192e3 = 20 s.
	got, err := m.CatchUpTime(40, 384e3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-20) > 1e-9 {
		t.Fatalf("t_up = %v, want 20", got)
	}
	if _, err := m.CatchUpTime(40, 192e3); err == nil {
		t.Fatal("rUp == R/K accepted")
	}
	if _, err := m.CatchUpTime(-1, 384e3); err == nil {
		t.Fatal("negative deficit accepted")
	}
}

func TestAbandonTimeEq4(t *testing.T) {
	m := mustModel(t)
	// r↓ = 96 kbps (half the sub-stream rate): lagging 20 blocks takes
	// 20*96000 / 96e3 = 20 s.
	got, err := m.AbandonTime(20, 96e3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-20) > 1e-9 {
		t.Fatalf("t_down = %v, want 20", got)
	}
	if _, err := m.AbandonTime(20, 192e3); err == nil {
		t.Fatal("rDown == R/K accepted")
	}
}

func TestDegradedRateEq5(t *testing.T) {
	m := mustModel(t)
	got, err := m.DegradedRate(3)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.75 * 192e3
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("r_down = %v, want %v", got, want)
	}
	if _, err := m.DegradedRate(0); err == nil {
		t.Fatal("degree 0 accepted")
	}
}

func TestLoseTime(t *testing.T) {
	m := mustModel(t)
	// (D+1)(Ts - tDelta)/(R/K blocks-per-sec): D=3, Ts=20, tDelta=4,
	// sub-block rate 2/s → 4*16/2 = 32 s.
	got, err := m.LoseTime(3, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-32) > 1e-9 {
		t.Fatalf("t_lose = %v, want 32", got)
	}
	if _, err := m.LoseTime(3, 4, 20); err == nil {
		t.Fatal("Ts < tDelta accepted")
	}
}

func TestLoseProbabilityEq6(t *testing.T) {
	m := mustModel(t)
	// Threshold = Ts - Ta*(R/K)/(D+1) = 20 - 20*2/4 = 10 blocks.
	// With tDelta ~ U[0,20]: P(tDelta >= 10) = 0.5.
	got, err := m.LoseProbability(3, 20, 20, UniformDeviationCCDF(20))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("P(lose) = %v, want 0.5", got)
	}
	// Larger degree shrinks the subtracted term, raising the
	// threshold... i.e. lowering P? Check monotonicity in D: with D→∞
	// threshold → Ts → P→CCDF(Ts)=0; with small D threshold lower → P
	// higher. This is the paper's §V-B observation: children of
	// high-degree parents are less likely to lose.
	pSmall, _ := m.LoseProbability(1, 20, 20, UniformDeviationCCDF(20))
	pLarge, _ := m.LoseProbability(10, 20, 20, UniformDeviationCCDF(20))
	if !(pSmall > got && got > pLarge) {
		t.Fatalf("P(lose) not decreasing in degree: %v %v %v", pSmall, got, pLarge)
	}
	if _, err := m.LoseProbability(0, 20, 20, UniformDeviationCCDF(20)); err == nil {
		t.Fatal("degree 0 accepted")
	}
	if _, err := m.LoseProbability(3, 20, 20, nil); err == nil {
		t.Fatal("nil ccdf accepted")
	}
	if _, err := m.LoseProbability(3, 20, 20, func(float64) float64 { return 2 }); err == nil {
		t.Fatal("invalid ccdf accepted")
	}
}

func TestUniformDeviationCCDF(t *testing.T) {
	f := UniformDeviationCCDF(10)
	if f(-1) != 1 || f(0) != 1 || f(10) != 0 || f(11) != 0 {
		t.Fatal("CCDF boundaries wrong")
	}
	if math.Abs(f(2.5)-0.75) > 1e-12 {
		t.Fatalf("CCDF(2.5) = %v", f(2.5))
	}
}

func TestFluidTransferMatchesCatchUp(t *testing.T) {
	m := mustModel(t)
	want, _ := m.CatchUpTime(40, 384e3)
	got, caught, err := FluidTransfer(layout, 40, 384e3, 0.5, 1e9, 0.01, 120)
	if err != nil {
		t.Fatal(err)
	}
	if !caught {
		t.Fatal("fluid transfer did not catch up")
	}
	if math.Abs(got-want) > 1 {
		t.Fatalf("fluid catch-up %v vs Eq. (3) %v", got, want)
	}
}

func TestFluidTransferMatchesAbandon(t *testing.T) {
	m := mustModel(t)
	// Start together, rate below R/K, watch the lag reach 20 blocks.
	want, _ := m.AbandonTime(20, 96e3)
	got, caught, err := FluidTransfer(layout, 0.6, 96e3, 0.5, 20, 0.01, 120)
	if err != nil {
		t.Fatal(err)
	}
	if caught {
		t.Fatal("deficient transfer reported catch-up")
	}
	if math.Abs(got-want) > 1.5 {
		t.Fatalf("fluid abandon %v vs Eq. (4) %v", got, want)
	}
}

func TestFluidTransferErrors(t *testing.T) {
	if _, _, err := FluidTransfer(buffer.Layout{}, 1, 1, 1, 1, 0.1, 1); err == nil {
		t.Fatal("invalid layout accepted")
	}
	if _, _, err := FluidTransfer(layout, 1, 1, 1, 1, 0, 1); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestEq3Eq4PropertyAgreement(t *testing.T) {
	// Property: for random parameters, the fluid micro-simulation and
	// the closed forms agree within discretisation error.
	m := mustModel(t)
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		l := 5 + r.Float64()*60
		if r.Bool(0.5) {
			rate := m.Layout.SubRateBps() * (1.2 + r.Float64()*3)
			want, err := m.CatchUpTime(l, rate)
			if err != nil {
				return false
			}
			got, caught, err := FluidTransfer(layout, l, rate, 0.5, 1e12, 0.01, want*3+60)
			return err == nil && caught && math.Abs(got-want) < 0.05*want+1
		}
		rate := m.Layout.SubRateBps() * (0.1 + r.Float64()*0.7)
		lag := l + 10
		want, err := m.AbandonTime(lag-l, rate)
		if err != nil {
			return false
		}
		got, caught, err := FluidTransfer(layout, l, rate, 0.01, lag, 0.01, want*3+60)
		return err == nil && !caught && math.Abs(got-want) < 0.05*want+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
