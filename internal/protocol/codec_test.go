package protocol

import (
	"reflect"
	"testing"
	"testing/quick"

	"coolstream/internal/buffer"
	"coolstream/internal/netmodel"
	"coolstream/internal/xrand"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	data, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", m.Type, err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", m.Type, err)
	}
	return got
}

func TestRoundTripSimpleTypes(t *testing.T) {
	for _, typ := range []MsgType{TypePartnerRequest, TypePartnerAccept, TypePartnerReject, TypeLeave, TypePing} {
		m := Message{Type: typ, From: 7, To: 12}
		got := roundTrip(t, m)
		if got.Type != typ || got.From != 7 || got.To != 12 {
			t.Fatalf("round trip %v: got %+v", typ, got)
		}
	}
}

func TestRoundTripMCacheRequest(t *testing.T) {
	got := roundTrip(t, Message{Type: TypeMCacheRequest, From: 1, To: -1, Want: 30})
	if got.Want != 30 || got.To != -1 {
		t.Fatalf("got %+v", got)
	}
}

func TestRoundTripPartnerRequestAddr(t *testing.T) {
	got := roundTrip(t, Message{Type: TypePartnerRequest, From: 3, To: -1, Addr: "127.0.0.1:6001"})
	if got.Addr != "127.0.0.1:6001" {
		t.Fatalf("got %+v", got)
	}
	if _, err := Marshal(Message{Type: TypePartnerRequest, Addr: string(make([]byte, MaxAddrLen+1))}); err == nil {
		t.Fatal("oversized address accepted")
	}
}

func TestRoundTripMCacheReply(t *testing.T) {
	m := Message{Type: TypeMCacheReply, From: -1, To: 4, Entries: []PeerEntry{
		{ID: 9, Class: netmodel.NAT, JoinedAtMs: 123456, PartnerCount: 3, Addr: "127.0.0.1:9001"},
		{ID: 11, Class: netmodel.Direct, JoinedAtMs: -1, PartnerCount: 0},
	}}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got.Entries, m.Entries) {
		t.Fatalf("entries differ: %+v vs %+v", got.Entries, m.Entries)
	}
}

func TestRoundTripEmptyMCacheReply(t *testing.T) {
	got := roundTrip(t, Message{Type: TypeMCacheReply, From: -1, To: 4})
	if len(got.Entries) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestRoundTripPartnerRejectAlternates(t *testing.T) {
	m := Message{Type: TypePartnerReject, From: 4, To: 9, Entries: []PeerEntry{
		{ID: 2, Class: netmodel.Direct, JoinedAtMs: 55, PartnerCount: 4, Addr: "127.0.0.1:9102"},
		{ID: 6, Class: netmodel.NAT, Addr: "127.0.0.1:9106"},
	}}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got.Entries, m.Entries) {
		t.Fatalf("alternates differ: %+v vs %+v", got.Entries, m.Entries)
	}
	// A bare reject (no alternates) still round-trips.
	got = roundTrip(t, Message{Type: TypePartnerReject, From: 4, To: 9})
	if len(got.Entries) != 0 {
		t.Fatalf("got %+v", got)
	}
	// Oversized alternate addresses are refused like mcache entries.
	bad := Message{Type: TypePartnerReject, Entries: []PeerEntry{
		{ID: 1, Addr: string(make([]byte, MaxAddrLen+1))},
	}}
	if _, err := Marshal(bad); err == nil {
		t.Fatal("oversized alternate address accepted")
	}
}

func TestRoundTripBMExchange(t *testing.T) {
	bm := buffer.NewBufferMap(4)
	bm.Latest = []int64{10, 11, 9, 12}
	bm.Subscribed = []bool{true, false, true, false}
	got := roundTrip(t, Message{Type: TypeBMExchange, From: 2, To: 3, BM: bm})
	if !reflect.DeepEqual(got.BM.Latest, bm.Latest) || !reflect.DeepEqual(got.BM.Subscribed, bm.Subscribed) {
		t.Fatalf("bm differs: %+v", got.BM)
	}
}

func TestRoundTripSubscribe(t *testing.T) {
	got := roundTrip(t, Message{Type: TypeSubscribe, From: 5, To: 6, SubStream: 2, StartSeq: 1 << 40})
	if got.SubStream != 2 || got.StartSeq != 1<<40 {
		t.Fatalf("got %+v", got)
	}
	got = roundTrip(t, Message{Type: TypeUnsubscribe, From: 5, To: 6, SubStream: 3})
	if got.SubStream != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	bad := []Message{
		{Type: TypeMCacheRequest, Want: 0},
		{Type: TypeSubscribe, SubStream: -1},
		{Type: TypeBMExchange}, // empty BM
		{Type: MsgType(200)},
	}
	for i, m := range bad {
		if _, err := Marshal(m); err == nil {
			t.Errorf("case %d marshalled", i)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(TypeLeave)},             // truncated ids
		{200, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown type
		append([]byte{byte(TypeLeave), 0, 0, 0, 1, 0, 0, 0, 2}, 0xFF), // trailing byte
	}
	for i, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("case %d unmarshalled", i)
		}
	}
	// Invalid class in entry.
	good, _ := Marshal(Message{Type: TypeMCacheReply, Entries: []PeerEntry{{ID: 1, Class: netmodel.Direct}}})
	good[9+2+4] = 99 // class byte of the first entry
	if _, err := Unmarshal(good); err == nil {
		t.Error("invalid class accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		var m Message
		switch r.Intn(5) {
		case 0:
			m = Message{Type: TypeMCacheRequest, Want: int16(1 + r.Intn(100))}
		case 1:
			n := r.Intn(20)
			entries := make([]PeerEntry, n)
			for i := range entries {
				entries[i] = PeerEntry{
					ID:           int32(r.Intn(1 << 20)),
					Class:        netmodel.UserClass(r.Intn(netmodel.NumClasses)),
					JoinedAtMs:   r.Int63n(1 << 40),
					PartnerCount: int16(r.Intn(100)),
				}
				if r.Bool(0.5) {
					entries[i].Addr = "127.0.0.1:10000"
				}
			}
			m = Message{Type: TypeMCacheReply, Entries: entries}
		case 2:
			k := 1 + r.Intn(8)
			bm := buffer.NewBufferMap(k)
			for i := 0; i < k; i++ {
				bm.Latest[i] = r.Int63n(1 << 30)
				bm.Subscribed[i] = r.Bool(0.5)
			}
			m = Message{Type: TypeBMExchange, BM: bm}
		case 3:
			m = Message{Type: TypeSubscribe, SubStream: int16(r.Intn(8)), StartSeq: r.Int63n(1 << 30)}
		default:
			m = Message{Type: TypeLeave}
		}
		m.From = int32(r.Intn(1000))
		m.To = int32(r.Intn(1000)) - 1
		data, err := Marshal(m)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		data2, err := Marshal(got)
		if err != nil {
			return false
		}
		return string(data) == string(data2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeString(t *testing.T) {
	seen := map[string]bool{}
	for typ := TypeMCacheRequest; typ <= TypeBMAck; typ++ {
		s := typ.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate string %q", s)
		}
		seen[s] = true
	}
	if MsgType(0).String() != "MsgType(0)" {
		t.Fatal("unknown type string wrong")
	}
}
