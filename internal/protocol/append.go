// Zero-allocation codec: append-style encoding into caller-owned
// buffers and an offset-scanning decoder that reuses the target
// Message's slices. AppendMessage is byte-identical to Marshal and
// DecodeMessage accepts exactly the byte strings Unmarshal accepts —
// the differential fuzz harness holds both pairs to that contract.
// The allocating Marshal/Unmarshal remain as the reference
// implementations; the hot paths (frame writer, FrameReader.ReadInto)
// go through this file.
//
// Legacy message types keep the fixed `u8 type | i32 from | i32 to`
// header. The compact types introduced with BM deltas (TypeBMDelta,
// TypeBMAck) instead carry From/To as zigzag varints: these are the
// per-BM-period steady-state messages, and at typical peer IDs the
// varint header is 3 bytes where the fixed one is 9.
package protocol

import (
	"fmt"

	"coolstream/internal/netmodel"
)

// ---- append helpers -------------------------------------------------

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// appendZigzag appends v as a zigzag-mapped LEB128 varint: small
// magnitudes of either sign stay short (0→1 byte, ±1..63→1 byte).
func appendZigzag(dst []byte, v int64) []byte {
	u := uint64(v)<<1 ^ uint64(v>>63)
	for u >= 0x80 {
		dst = append(dst, byte(u)|0x80)
		u >>= 7
	}
	return append(dst, byte(u))
}

// compactHeader reports whether t uses the varint From/To header.
func compactHeader(t MsgType) bool { return t == TypeBMDelta || t == TypeBMAck }

// AppendMessage appends m's canonical encoding to dst and returns the
// extended slice. The bytes are identical to Marshal's output for
// every message type.
func AppendMessage(dst []byte, m Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	dst = append(dst, byte(m.Type))
	if compactHeader(m.Type) {
		dst = appendZigzag(dst, int64(m.From))
		dst = appendZigzag(dst, int64(m.To))
		if m.Type == TypeBMAck {
			return append(dst, m.AckEpoch), nil
		}
		return appendBMDeltaPayload(dst, m.Delta)
	}
	dst = appendU32(dst, uint32(m.From))
	dst = appendU32(dst, uint32(m.To))
	switch m.Type {
	case TypeMCacheRequest:
		dst = appendU16(dst, uint16(m.Want))
	case TypeMCacheReply, TypePartnerReject:
		if len(m.Entries) > 0xffff {
			return nil, fmt.Errorf("protocol: %d entries exceed reply limit", len(m.Entries))
		}
		dst = appendU16(dst, uint16(len(m.Entries)))
		for _, e := range m.Entries {
			dst = appendU32(dst, uint32(e.ID))
			dst = append(dst, byte(e.Class))
			dst = appendU64(dst, uint64(e.JoinedAtMs))
			dst = appendU16(dst, uint16(e.PartnerCount))
			dst = appendU16(dst, uint16(len(e.Addr)))
			dst = append(dst, e.Addr...)
		}
	case TypePartnerRequest:
		dst = appendU16(dst, uint16(len(m.Addr)))
		dst = append(dst, m.Addr...)
	case TypeBMExchange:
		// Inline BufferMap.MarshalBinary: u16 K | K×u64 latest | bitmap.
		k := m.BM.K()
		bmLen := 2 + 8*k + (k+7)/8
		if bmLen > 0xffff {
			return nil, fmt.Errorf("protocol: buffer map too large: %d bytes", bmLen)
		}
		dst = appendU16(dst, uint16(bmLen))
		dst = appendU16(dst, uint16(k))
		for _, v := range m.BM.Latest {
			dst = appendU64(dst, uint64(v))
		}
		off := len(dst)
		for i := 0; i < (k+7)/8; i++ {
			dst = append(dst, 0)
		}
		for i, s := range m.BM.Subscribed {
			if s {
				dst[off+i/8] |= 1 << (i % 8)
			}
		}
	case TypeSubscribe:
		dst = appendU16(dst, uint16(m.SubStream))
		dst = appendU64(dst, uint64(m.StartSeq))
	case TypeUnsubscribe:
		dst = appendU16(dst, uint16(m.SubStream))
	case TypeBlockPush:
		dst = appendU16(dst, uint16(m.SubStream))
		dst = appendU64(dst, uint64(m.StartSeq))
		if len(m.Payload) > 1<<24 {
			return nil, fmt.Errorf("protocol: block payload %d exceeds 16 MiB", len(m.Payload))
		}
		dst = appendU32(dst, uint32(len(m.Payload)))
		dst = append(dst, m.Payload...)
	}
	return dst, nil
}

// ---- scanning decoder -----------------------------------------------

// scanner walks a byte slice with an explicit offset and a latched
// first error, in the netboot/logsys wire idiom.
type scanner struct {
	b   []byte
	off int
	err error
}

func (s *scanner) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf("protocol: "+format, args...)
	}
}

func (s *scanner) u8(what string) uint8 {
	if s.err != nil {
		return 0
	}
	if s.off >= len(s.b) {
		s.fail("truncated %s", what)
		return 0
	}
	v := s.b[s.off]
	s.off++
	return v
}

func (s *scanner) u16(what string) uint16 {
	if s.err != nil {
		return 0
	}
	if s.off+2 > len(s.b) {
		s.fail("truncated %s", what)
		return 0
	}
	v := uint16(s.b[s.off])<<8 | uint16(s.b[s.off+1])
	s.off += 2
	return v
}

func (s *scanner) u32(what string) uint32 {
	if s.err != nil {
		return 0
	}
	if s.off+4 > len(s.b) {
		s.fail("truncated %s", what)
		return 0
	}
	b := s.b[s.off : s.off+4]
	s.off += 4
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (s *scanner) u64(what string) uint64 {
	if s.err != nil {
		return 0
	}
	if s.off+8 > len(s.b) {
		s.fail("truncated %s", what)
		return 0
	}
	b := s.b[s.off : s.off+8]
	s.off += 8
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// bytes returns a sub-slice of the input (no copy).
func (s *scanner) bytes(n int, what string) []byte {
	if s.err != nil {
		return nil
	}
	if n < 0 || s.off+n > len(s.b) {
		s.fail("truncated %s", what)
		return nil
	}
	v := s.b[s.off : s.off+n]
	s.off += n
	return v
}

// zigzag reads one canonically-encoded zigzag varint: minimal length
// (no trailing zero continuation group) and no 64-bit overflow.
func (s *scanner) zigzag(what string) int64 {
	if s.err != nil {
		return 0
	}
	var u uint64
	var shift uint
	for i := 0; ; i++ {
		if s.off >= len(s.b) {
			s.fail("truncated %s", what)
			return 0
		}
		c := s.b[s.off]
		s.off++
		if i == 9 && c > 1 {
			s.fail("%s varint overflows int64", what)
			return 0
		}
		u |= uint64(c&0x7f) << shift
		if c&0x80 == 0 {
			if i > 0 && c == 0 {
				s.fail("%s varint not minimal", what)
				return 0
			}
			break
		}
		shift += 7
		if shift >= 64 {
			s.fail("%s varint overflows int64", what)
			return 0
		}
	}
	return int64(u>>1) ^ -int64(u&1)
}

// done latches an error if input remains unconsumed.
func (s *scanner) done() {
	if s.err == nil && s.off != len(s.b) {
		s.fail("%d trailing bytes", len(s.b)-s.off)
	}
}

// DecodeMessage decodes one message into *m, accepting exactly the
// byte strings Unmarshal accepts. Slices already present in *m
// (Entries, BM storage, Payload, Delta lanes/sub) are reused when
// their capacity suffices, so a long-lived Message makes steady-state
// decoding allocation-free for the hot types. All other fields are
// reset; decoded strings still allocate (cold types only).
func DecodeMessage(data []byte, m *Message) error {
	// Capture reusable storage, then clear the message.
	entries := m.Entries[:0]
	payload := m.Payload[:0]
	lanes := m.Delta.Lanes[:0]
	sub := m.Delta.Sub[:0]
	bm := m.BM
	*m = Message{}

	s := &scanner{b: data}
	m.Type = MsgType(s.u8("type"))
	if s.err != nil {
		return s.err
	}
	if compactHeader(m.Type) {
		from := s.zigzag("from")
		to := s.zigzag("to")
		if s.err == nil && (from != int64(int32(from)) || to != int64(int32(to))) {
			s.fail("peer id out of int32 range")
		}
		m.From, m.To = int32(from), int32(to)
		if m.Type == TypeBMAck {
			m.AckEpoch = s.u8("ack epoch")
		} else {
			var err error
			m.Delta, err = scanBMDeltaPayload(s, lanes, sub)
			if err != nil {
				return err
			}
		}
		s.done()
		if s.err != nil {
			return s.err
		}
		return m.Validate()
	}
	m.From = int32(s.u32("from"))
	m.To = int32(s.u32("to"))
	switch m.Type {
	case TypeMCacheRequest:
		m.Want = int16(s.u16("want"))
	case TypeMCacheReply, TypePartnerReject:
		n := int(s.u16("entry count"))
		if s.err != nil {
			return s.err
		}
		if cap(entries) >= n {
			entries = entries[:n]
		} else {
			entries = make([]PeerEntry, n)
		}
		m.Entries = entries
		for i := range m.Entries {
			e := &m.Entries[i]
			e.ID = int32(s.u32("entry id"))
			class := s.u8("entry class")
			if s.err == nil && class >= netmodel.NumClasses {
				return fmt.Errorf("protocol: entry %d has invalid class %d", i, class)
			}
			e.Class = netmodel.UserClass(class)
			e.JoinedAtMs = int64(s.u64("entry joined-at"))
			e.PartnerCount = int16(s.u16("entry partners"))
			alen := int(s.u16("entry addr length"))
			ab := s.bytes(alen, "entry addr")
			if s.err != nil {
				return fmt.Errorf("protocol: truncated entry %d: %w", i, s.err)
			}
			e.Addr = string(ab)
		}
	case TypePartnerRequest:
		alen := int(s.u16("addr length"))
		m.Addr = string(s.bytes(alen, "addr"))
	case TypeBMExchange:
		n := int(s.u16("bm length"))
		body := s.bytes(n, "bm")
		if s.err != nil {
			return s.err
		}
		// Inline BufferMap.UnmarshalBinary with storage reuse; the
		// validation mirrors it exactly.
		if len(body) < 2 {
			return fmt.Errorf("buffer: buffer map truncated header")
		}
		k := int(uint16(body[0])<<8 | uint16(body[1]))
		if k == 0 {
			return fmt.Errorf("buffer: buffer map K = 0")
		}
		if want := 2 + 8*k + (k+7)/8; len(body) != want {
			return fmt.Errorf("buffer: buffer map length %d, want %d for K=%d", len(body), want, k)
		}
		bm.Reset(k)
		off := 2
		for i := range bm.Latest {
			b := body[off : off+8]
			bm.Latest[i] = int64(uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 |
				uint64(b[3])<<32 | uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7]))
			off += 8
		}
		for i := range bm.Subscribed {
			bm.Subscribed[i] = body[off+i/8]&(1<<(i%8)) != 0
		}
		if tail := k % 8; tail != 0 && body[len(body)-1]&^byte(1<<tail-1) != 0 {
			return fmt.Errorf("buffer: buffer map bitmap sets bits past lane %d", k)
		}
		m.BM = bm
	case TypeSubscribe:
		m.SubStream = int16(s.u16("substream"))
		m.StartSeq = int64(s.u64("startseq"))
	case TypeUnsubscribe:
		m.SubStream = int16(s.u16("substream"))
	case TypeBlockPush:
		m.SubStream = int16(s.u16("substream"))
		m.StartSeq = int64(s.u64("block seq"))
		n := int(s.u32("payload length"))
		body := s.bytes(n, "payload")
		if s.err != nil {
			return s.err
		}
		if cap(payload) >= n {
			payload = payload[:n]
		} else {
			payload = make([]byte, n)
		}
		copy(payload, body)
		m.Payload = payload
	case TypePartnerAccept, TypeLeave, TypePing:
		// No payload.
	default:
		return fmt.Errorf("protocol: unknown message type %d", uint8(m.Type))
	}
	s.done()
	if s.err != nil {
		return s.err
	}
	return m.Validate()
}
