package protocol

import (
	"testing"

	"coolstream/internal/buffer"
	"coolstream/internal/netmodel"
)

// TestUnmarshalEveryTruncation takes one valid message of every type
// and verifies that every strict prefix is rejected — covering each
// "truncated X" branch of the decoder in one sweep.
func TestUnmarshalEveryTruncation(t *testing.T) {
	bm := buffer.NewBufferMap(3)
	bm.Latest = []int64{7, 8, 9}
	bm.Subscribed = []bool{true, false, true}
	msgs := []Message{
		{Type: TypeMCacheRequest, From: 1, To: -1, Want: 5},
		{Type: TypeMCacheReply, From: -1, To: 2, Entries: []PeerEntry{
			{ID: 3, Class: netmodel.UPnP, JoinedAtMs: 99, PartnerCount: 4, Addr: "127.0.0.1:9009"},
		}},
		{Type: TypePartnerRequest, From: 1, To: 2, Addr: "127.0.0.1:9010"},
		{Type: TypePartnerAccept, From: 2, To: 1},
		{Type: TypePartnerReject, From: 2, To: 1},
		{Type: TypeBMExchange, From: 1, To: 2, BM: bm},
		{Type: TypeSubscribe, From: 1, To: 2, SubStream: 1, StartSeq: 42},
		{Type: TypeUnsubscribe, From: 1, To: 2, SubStream: 2},
		{Type: TypeLeave, From: 1, To: 2},
		{Type: TypePing, From: 1, To: 2},
		{Type: TypeBlockPush, From: 1, To: 2, SubStream: 0, StartSeq: 7, Payload: []byte("abcdef")},
	}
	for _, m := range msgs {
		data, err := Marshal(m)
		if err != nil {
			t.Fatalf("%v: %v", m.Type, err)
		}
		for i := 0; i < len(data); i++ {
			if _, err := Unmarshal(data[:i]); err == nil {
				t.Fatalf("%v: prefix of %d/%d bytes accepted", m.Type, i, len(data))
			}
		}
		// The full message round-trips.
		if _, err := Unmarshal(data); err != nil {
			t.Fatalf("%v: full message rejected: %v", m.Type, err)
		}
		// One trailing byte is rejected.
		if _, err := Unmarshal(append(append([]byte(nil), data...), 0)); err == nil {
			t.Fatalf("%v: trailing byte accepted", m.Type)
		}
	}
}

// TestMarshalOversizeLimits exercises the size guards.
func TestMarshalOversizeLimits(t *testing.T) {
	entries := make([]PeerEntry, 0x10000)
	if _, err := Marshal(Message{Type: TypeMCacheReply, Entries: entries}); err == nil {
		t.Fatal("oversized mcache reply accepted")
	}
	if _, err := Marshal(Message{
		Type: TypeBlockPush, SubStream: 0, StartSeq: 0, Payload: make([]byte, 1<<24+1),
	}); err == nil {
		t.Fatal("oversized block accepted")
	}
}
