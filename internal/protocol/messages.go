// Package protocol defines the control-plane messages Coolstreaming
// peers exchange and a compact binary codec for them. The simulator
// delivers these messages through its latency model; the codec also
// lets tests and tools capture protocol exchanges as byte streams, as
// a real deployment would put on the wire.
package protocol

import (
	"fmt"

	"coolstream/internal/buffer"
	"coolstream/internal/netmodel"
)

// MsgType discriminates the message union.
type MsgType uint8

const (
	// TypeMCacheRequest asks the bootstrap (or a partner) for a list of
	// candidate peers.
	TypeMCacheRequest MsgType = iota + 1
	// TypeMCacheReply carries candidate peer entries.
	TypeMCacheReply
	// TypePartnerRequest asks a peer to establish a partnership.
	TypePartnerRequest
	// TypePartnerAccept accepts a partnership request.
	TypePartnerAccept
	// TypePartnerReject declines a partnership request. It carries an
	// optional list of alternate candidates from the rejecting node's
	// mCache (reject-with-alternates): a refused joiner still learns
	// dialable addresses, so admission control redirects load instead of
	// dead-ending it.
	TypePartnerReject
	// TypeBMExchange carries a buffer map to a partner.
	TypeBMExchange
	// TypeSubscribe asks a partner to become the parent of a sub-stream.
	TypeSubscribe
	// TypeUnsubscribe drops a sub-stream subscription.
	TypeUnsubscribe
	// TypeLeave announces a graceful departure.
	TypeLeave
	// TypeBlockPush carries one video block of a sub-stream.
	TypeBlockPush
	// TypePing is a liveness heartbeat: a node that has nothing to
	// advertise yet (no buffers) still proves its control loop is alive,
	// so partners can distinguish "quiet" from "hung".
	TypePing
	// TypeBMDelta carries a compact buffer-map update: per-lane changes
	// against the previous update on the same connection, with periodic
	// absolute keyframes. Replaces TypeBMExchange at steady state.
	TypeBMDelta
	// TypeBMAck acknowledges a BMDelta keyframe epoch, letting the
	// sender keep emitting relative deltas with confidence the receiver
	// holds the base.
	TypeBMAck
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TypeMCacheRequest:
		return "mcache-request"
	case TypeMCacheReply:
		return "mcache-reply"
	case TypePartnerRequest:
		return "partner-request"
	case TypePartnerAccept:
		return "partner-accept"
	case TypePartnerReject:
		return "partner-reject"
	case TypeBMExchange:
		return "bm-exchange"
	case TypeSubscribe:
		return "subscribe"
	case TypeUnsubscribe:
		return "unsubscribe"
	case TypeLeave:
		return "leave"
	case TypeBlockPush:
		return "block-push"
	case TypePing:
		return "ping"
	case TypeBMDelta:
		return "bm-delta"
	case TypeBMAck:
		return "bm-ack"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// MaxAddrLen bounds the advertised listen address carried in
// partner requests and mCache entries.
const MaxAddrLen = 512

// PeerEntry is one mCache entry as carried in membership replies.
type PeerEntry struct {
	ID           int32
	Class        netmodel.UserClass
	JoinedAtMs   int64 // virtual join time, for stability-aware policies
	PartnerCount int16
	// Addr is the peer's listen address ("" when unknown — the fluid
	// engine has no sockets). Live peers need it to dial gossiped
	// candidates.
	Addr string
}

// Message is the control-plane message union. From/To are peer IDs
// (-1 addresses the bootstrap node).
type Message struct {
	Type MsgType
	From int32
	To   int32

	// MCacheRequest: number of entries wanted.
	Want int16
	// MCacheReply: candidate entries.
	// PartnerReject: alternate candidates (may be empty).
	Entries []PeerEntry
	// BMExchange: the sender's buffer map towards the receiver.
	BM buffer.BufferMap
	// Subscribe/Unsubscribe/BlockPush: the sub-stream index.
	SubStream int16
	// Subscribe: per-sub-stream sequence number to start pushing from.
	// BlockPush: the block's sequence number.
	StartSeq int64
	// BlockPush: the block contents.
	Payload []byte
	// PartnerRequest: the dialer's advertised listen address, so the
	// acceptor can gossip it onwards ("" when the dialer has none).
	Addr string
	// BMDelta: the compact buffer-map update.
	Delta BMDelta
	// BMAck: the keyframe epoch being acknowledged.
	AckEpoch uint8
}

// Validate performs structural checks appropriate for the type.
func (m Message) Validate() error {
	switch m.Type {
	case TypeMCacheRequest:
		if m.Want <= 0 {
			return fmt.Errorf("protocol: mcache-request wants %d entries", m.Want)
		}
	case TypeMCacheReply, TypePartnerReject:
		// Empty lists are legal (bootstrap knows no one yet; a rejecting
		// node may have no alternates to offer).
		for i, e := range m.Entries {
			if len(e.Addr) > MaxAddrLen {
				return fmt.Errorf("protocol: entry %d address %d bytes", i, len(e.Addr))
			}
		}
	case TypeBMExchange:
		if err := m.BM.Validate(); err != nil {
			return fmt.Errorf("protocol: bm-exchange: %w", err)
		}
	case TypeSubscribe, TypeUnsubscribe:
		if m.SubStream < 0 {
			return fmt.Errorf("protocol: negative sub-stream %d", m.SubStream)
		}
	case TypeBlockPush:
		if m.SubStream < 0 {
			return fmt.Errorf("protocol: negative sub-stream %d", m.SubStream)
		}
		if m.StartSeq < 0 {
			return fmt.Errorf("protocol: negative block sequence %d", m.StartSeq)
		}
		if len(m.Payload) == 0 {
			return fmt.Errorf("protocol: empty block payload")
		}
	case TypePartnerRequest:
		if len(m.Addr) > MaxAddrLen {
			return fmt.Errorf("protocol: partner-request address %d bytes", len(m.Addr))
		}
	case TypeBMDelta:
		if err := m.Delta.validate(); err != nil {
			return err
		}
	case TypePartnerAccept, TypeLeave, TypePing, TypeBMAck:
		// No payload (the ack epoch may take any value).
	default:
		return fmt.Errorf("protocol: unknown message type %d", m.Type)
	}
	return nil
}
