package protocol

import (
	"bytes"
	"testing"

	"coolstream/internal/buffer"
)

// FuzzUnmarshal asserts the codec never panics on arbitrary bytes and
// that every message it accepts re-marshals byte-identically.
func FuzzUnmarshal(f *testing.F) {
	seedMsgs := []Message{
		{Type: TypePartnerRequest, From: 1, To: 2},
		{Type: TypePartnerReject, From: 2, To: 1},
		{Type: TypePartnerReject, From: 2, To: 1, Entries: []PeerEntry{
			{ID: 7, JoinedAtMs: 12, PartnerCount: 2, Addr: "127.0.0.1:9007"},
			{ID: 8},
		}},
		{Type: TypeMCacheRequest, From: 1, To: -1, Want: 20},
		{Type: TypeSubscribe, From: 3, To: 4, SubStream: 2, StartSeq: 100},
		{Type: TypeBlockPush, From: 5, To: 6, SubStream: 1, StartSeq: 7, Payload: []byte("data")},
	}
	bm := buffer.NewBufferMap(4)
	bm.Latest = []int64{1, 2, 3, 4}
	seedMsgs = append(seedMsgs, Message{Type: TypeBMExchange, From: 9, To: 10, BM: bm})
	seedMsgs = append(seedMsgs,
		Message{Type: TypeBMAck, From: 2, To: 1, AckEpoch: 3},
		Message{Type: TypeBMDelta, From: 1, To: 2,
			Delta: BMDelta{Epoch: 1, Absolute: true, Lanes: []int64{5, 6, 7}, Sub: []bool{true, false, true}}},
		Message{Type: TypeBMDelta, From: -1, To: 400,
			Delta: BMDelta{Epoch: 9, Lanes: []int64{1, 1, 1}}},
		Message{Type: TypeBMDelta, From: 3, To: 4,
			Delta: BMDelta{Epoch: 2, Lanes: []int64{0, -2, 4}, Sub: []bool{false, true, true}}},
	)
	for _, m := range seedMsgs {
		data, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		// Differential: the scanning decoder must agree with the
		// reference decoder on accept/reject for every input.
		var m2 Message
		err2 := DecodeMessage(data, &m2)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("decoders disagree: Unmarshal=%v DecodeMessage=%v", err, err2)
		}
		if err != nil {
			return
		}
		again, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted message fails to marshal: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("marshal not canonical:\n% x\n% x", data, again)
		}
		// And the append encoder agrees on the decoded value.
		fast, err := AppendMessage(nil, m2)
		if err != nil || !bytes.Equal(fast, data) {
			t.Fatalf("append encoder diverges (%v):\n% x\n% x", err, data, fast)
		}
	})
}
