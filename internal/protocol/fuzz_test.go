package protocol

import (
	"bytes"
	"testing"

	"coolstream/internal/buffer"
)

// FuzzUnmarshal asserts the codec never panics on arbitrary bytes and
// that every message it accepts re-marshals byte-identically.
func FuzzUnmarshal(f *testing.F) {
	seedMsgs := []Message{
		{Type: TypePartnerRequest, From: 1, To: 2},
		{Type: TypeMCacheRequest, From: 1, To: -1, Want: 20},
		{Type: TypeSubscribe, From: 3, To: 4, SubStream: 2, StartSeq: 100},
		{Type: TypeBlockPush, From: 5, To: 6, SubStream: 1, StartSeq: 7, Payload: []byte("data")},
	}
	bm := buffer.NewBufferMap(4)
	bm.Latest = []int64{1, 2, 3, 4}
	seedMsgs = append(seedMsgs, Message{Type: TypeBMExchange, From: 9, To: 10, BM: bm})
	for _, m := range seedMsgs {
		data, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted message fails to marshal: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("marshal not canonical:\n% x\n% x", data, again)
		}
	})
}
