package protocol

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"coolstream/internal/buffer"
	"coolstream/internal/xrand"
)

func mustMarshal(t *testing.T, m Message) []byte {
	t.Helper()
	data, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", m.Type, err)
	}
	return data
}

func TestBMDeltaRoundTrip(t *testing.T) {
	cases := []BMDelta{
		{Epoch: 0, Absolute: true, Lanes: []int64{0, 0, 0, 0}, Sub: []bool{false, false, false, false}},
		{Epoch: 7, Absolute: true, Lanes: []int64{1, -1, 1 << 40, 3}, Sub: []bool{true, false, true, true}},
		{Epoch: 1, Lanes: []int64{1, 1, 1, 1}},                                         // uniform
		{Epoch: 2, Lanes: []int64{0, 0, 0, 0}},                                         // uniform zero heartbeat
		{Epoch: 3, Lanes: []int64{2, 0, 1, 0}},                                         // bitmap
		{Epoch: 4, Lanes: []int64{-3, 5, 0, 0}, Sub: []bool{true, true, false, false}}, // bitmap + sub
		{Epoch: 255, Lanes: []int64{1}},                                                // K=1 (uniform by construction)
	}
	for i, d := range cases {
		m := Message{Type: TypeBMDelta, From: 3, To: -1, Delta: d}
		data := mustMarshal(t, m)
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Delta.Epoch != d.Epoch || got.Delta.Absolute != d.Absolute ||
			!reflect.DeepEqual(got.Delta.Lanes, d.Lanes) ||
			!reflect.DeepEqual(got.Delta.Sub, d.Sub) {
			t.Fatalf("case %d: got %+v want %+v", i, got.Delta, d)
		}
		if got.From != 3 || got.To != -1 {
			t.Fatalf("case %d: header %d→%d", i, got.From, got.To)
		}
	}
}

func TestBMAckRoundTrip(t *testing.T) {
	for _, epoch := range []uint8{0, 1, 255} {
		data := mustMarshal(t, Message{Type: TypeBMAck, From: -1, To: 9, AckEpoch: epoch})
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.AckEpoch != epoch || got.From != -1 || got.To != 9 {
			t.Fatalf("got %+v", got)
		}
	}
}

func TestBMDeltaCompactness(t *testing.T) {
	// The whole point: a steady-state delta frame must be a small
	// fraction of the full map frame it replaces.
	k := 6
	bm := buffer.NewBufferMap(k)
	for j := range bm.Latest {
		bm.Latest[j] = int64(100000 + j)
		bm.Subscribed[j] = j%2 == 0
	}
	full, err := AppendFrame(nil, Message{Type: TypeBMExchange, From: 42, To: 17, BM: bm})
	if err != nil {
		t.Fatal(err)
	}
	next := bm.Clone()
	for j := range next.Latest {
		next.Latest[j]++
	}
	d, err := DiffBM(bm, next, 1)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := AppendFrame(nil, Message{Type: TypeBMDelta, From: 42, To: 17, Delta: d})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 5*len(delta) {
		t.Fatalf("delta frame %dB not 5x smaller than full frame %dB", len(delta), len(full))
	}
}

func TestBMDeltaMarshalRejectsInvalid(t *testing.T) {
	bad := []BMDelta{
		{},                                  // no lanes
		{Lanes: make([]int64, 256)},         // too many lanes
		{Absolute: true, Lanes: []int64{1}}, // keyframe without sub
		{Lanes: []int64{1, 2}, Sub: []bool{true}}, // sub/lane mismatch
	}
	for i, d := range bad {
		if _, err := Marshal(Message{Type: TypeBMDelta, Delta: d}); err == nil {
			t.Errorf("case %d marshalled", i)
		}
	}
}

// TestBMDeltaRejectsNonCanonical feeds hand-built malformed payloads:
// each must be rejected, preserving the fuzz invariant that accepted
// bytes re-marshal identically.
func TestBMDeltaRejectsNonCanonical(t *testing.T) {
	// header: type, from=1 (zigzag 0x02), to=2 (zigzag 0x04)
	hdr := []byte{byte(TypeBMDelta), 0x02, 0x04}
	pay := func(p ...byte) []byte { return append(append([]byte{}, hdr...), p...) }
	cases := map[string][]byte{
		"zero lanes":         pay(0, 0, 0),
		"unknown flag":       pay(0, 0x08, 1, 0x00),
		"abs+uniform":        pay(0, bmdAbs|bmdUniform, 1, 0x02),
		"abs without sub":    pay(0, bmdAbs, 1, 0x02),
		"overlong varint":    pay(0, bmdUniform, 1, 0x80, 0x00), // 0 in two bytes
		"zero increment":     pay(0, 0, 2, 0x01, 0x00, 0x02),    // bitmap {lane0}, inc 0
		"uniform via bitmap": pay(0, 0, 2, 0x03, 0x02, 0x02),    // both lanes +1 → must use uniform form
		"empty bitmap":       pay(0, 0, 2, 0x00),                // all-zero → must use uniform form
		"bitmap tail bits":   pay(0, 0, 2, 0x84, 0x02),          // bit past lane 1 (plus lane 2 set)
		"sub tail bits":      pay(0, bmdUniform|bmdSub, 2, 0x02, 0xF0),
		"truncated lanes":    pay(0, bmdAbs|bmdSub, 3, 0x02, 0x02),
		"trailing bytes":     pay(0, bmdUniform, 1, 0x02, 0xAA),
		"from out of range":  append([]byte{byte(TypeBMDelta), 0x80, 0x80, 0x80, 0x80, 0x20, 0x04}, 0, bmdUniform, 1, 0x02),
		"truncated ack":      {byte(TypeBMAck), 0x02, 0x04},
		"trailing ack":       {byte(TypeBMAck), 0x02, 0x04, 1, 2},
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// randomBM builds a random valid buffer map over k lanes.
func randomBM(r *xrand.RNG, k int) buffer.BufferMap {
	bm := buffer.NewBufferMap(k)
	for j := 0; j < k; j++ {
		bm.Latest[j] = r.Int63n(1 << 30)
		bm.Subscribed[j] = r.Bool(0.5)
	}
	return bm
}

// TestBMDeltaReconstructionProperty simulates the sender/receiver state
// machines across random interleavings of keyframes, deltas, stalls,
// and reconnects (state loss): after every applied update the receiver
// holds exactly the sender's map, and each update survives a
// marshal/unmarshal round trip canonically.
func TestBMDeltaReconstructionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		k := 1 + r.Intn(8)
		cur := randomBM(r, k)
		var sent buffer.BufferMap // sender's record of the last update on the conn
		var epoch uint8
		haveBase := false

		// Receiver state.
		var rx buffer.BufferMap
		rxHave := false
		var rxEpoch uint8

		for step := 0; step < 40; step++ {
			// Mutate the sender's live map.
			switch r.Intn(4) {
			case 0: // uniform advance (the steady-state shape)
				inc := r.Int63n(3)
				for j := range cur.Latest {
					cur.Latest[j] += inc
				}
			case 1: // skewed advance
				for j := range cur.Latest {
					cur.Latest[j] += r.Int63n(4)
				}
			case 2: // subscription churn
				cur.Subscribed[r.Intn(k)] = r.Bool(0.5)
			case 3: // stall — no change
			}

			// Occasionally the connection "drops": both sides lose
			// per-conn state, forcing a keyframe.
			if r.Bool(0.1) {
				haveBase = false
				rxHave = false
			}

			var d BMDelta
			var err error
			if !haveBase || r.Bool(0.15) { // keyframe: forced or periodic
				epoch++
				d, err = KeyBM(cur, epoch)
			} else {
				d, err = DiffBM(sent, cur, epoch)
			}
			if err != nil {
				t.Logf("build: %v", err)
				return false
			}
			sent = cur.Clone()
			haveBase = true

			// Wire round trip, canonically.
			data, err := Marshal(Message{Type: TypeBMDelta, From: 1, To: 2, Delta: d})
			if err != nil {
				t.Logf("marshal: %v", err)
				return false
			}
			got, err := Unmarshal(data)
			if err != nil {
				t.Logf("unmarshal: %v", err)
				return false
			}
			if again, _ := Marshal(got); !bytes.Equal(again, data) {
				t.Logf("not canonical")
				return false
			}

			// Receiver applies, with the epoch guard.
			rd := got.Delta
			if rd.Absolute {
				rx, err = ApplyBMDelta(buffer.BufferMap{}, rd)
				rxHave, rxEpoch = err == nil, rd.Epoch
			} else if rxHave && rd.Epoch == rxEpoch && rx.K() == rd.K() {
				rx, err = ApplyBMDelta(rx, rd)
			} else {
				continue // dropped relative delta (no base) — legal, just unsynced
			}
			if err != nil {
				t.Logf("apply: %v", err)
				return false
			}
			if !reflect.DeepEqual(rx.Latest, cur.Latest) || !reflect.DeepEqual(rx.Subscribed, cur.Subscribed) {
				t.Logf("step %d: receiver %v/%v sender %v/%v", step, rx.Latest, rx.Subscribed, cur.Latest, cur.Subscribed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBMDeltaRejectsMismatchedBase(t *testing.T) {
	base := buffer.NewBufferMap(4)
	if _, err := ApplyBMDelta(base, BMDelta{Lanes: []int64{1, 2}}); err == nil {
		t.Fatal("K mismatch accepted")
	}
	if _, err := ApplyBMDelta(buffer.BufferMap{}, BMDelta{Lanes: []int64{1}}); err == nil {
		t.Fatal("relative delta over empty base accepted")
	}
}

func TestApplyBMDeltaDoesNotAliasBase(t *testing.T) {
	base := buffer.NewBufferMap(2)
	base.Latest[0] = 5
	d := BMDelta{Lanes: []int64{1, 0}, Sub: []bool{true, false}}
	out, err := ApplyBMDelta(base, d)
	if err != nil {
		t.Fatal(err)
	}
	out.Latest[0] = 999
	out.Subscribed[0] = false
	if base.Latest[0] != 5 || base.Subscribed[0] {
		t.Fatal("apply aliased the base map")
	}
}
