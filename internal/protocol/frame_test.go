package protocol

import (
	"bytes"
	"io"
	"testing"

	"coolstream/internal/netmodel"
)

func TestBlockPushRoundTrip(t *testing.T) {
	m := Message{
		Type: TypeBlockPush, From: 1, To: 2,
		SubStream: 3, StartSeq: 1234567, Payload: bytes.Repeat([]byte{0xAB}, 12000),
	}
	got := roundTrip(t, m)
	if got.SubStream != 3 || got.StartSeq != 1234567 || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("block push mangled: %d bytes", len(got.Payload))
	}
}

func TestBlockPushValidation(t *testing.T) {
	bad := []Message{
		{Type: TypeBlockPush, SubStream: -1, StartSeq: 0, Payload: []byte{1}},
		{Type: TypeBlockPush, SubStream: 0, StartSeq: -1, Payload: []byte{1}},
		{Type: TypeBlockPush, SubStream: 0, StartSeq: 0},
	}
	for i, m := range bad {
		if _, err := Marshal(m); err == nil {
			t.Errorf("case %d marshalled", i)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{Type: TypePartnerRequest, From: 1, To: 2},
		{Type: TypeBlockPush, From: 2, To: 1, SubStream: 0, StartSeq: 9, Payload: []byte("blockdata")},
		{Type: TypeMCacheReply, From: -1, To: 1, Entries: []PeerEntry{{ID: 7, Class: netmodel.UPnP}}},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	for i, want := range msgs {
		got, err := fr.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.From != want.From {
			t.Fatalf("frame %d mismatch: %+v", i, got)
		}
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	// Zero length.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// Oversized length.
	if _, err := ReadFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Truncated body.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 10, 1, 2})); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Malformed payload inside a well-formed frame.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 1, 200})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("malformed message accepted")
	}
}

func TestWriteFrameRejectsInvalidMessage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Message{Type: MsgType(99)}); err == nil {
		t.Fatal("invalid message framed")
	}
	if buf.Len() != 0 {
		t.Fatal("partial frame written")
	}
}
