package protocol

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Frame size limit: a block plus headers comfortably fits; anything
// larger on the wire is corruption or abuse.
const maxFrameBytes = 1<<24 + 64

// WriteFrame writes one length-prefixed message to w.
func WriteFrame(w io.Writer, m Message) error {
	data, err := Marshal(m)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("protocol: frame header: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("protocol: frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed message from r.
func ReadFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err // io.EOF passes through for clean close detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameBytes {
		return Message{}, fmt.Errorf("protocol: frame length %d out of range", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return Message{}, fmt.Errorf("protocol: truncated frame: %w", err)
	}
	return Unmarshal(data)
}

// FrameReader wraps a connection with buffering for repeated ReadFrame
// calls.
type FrameReader struct {
	br *bufio.Reader
}

// NewFrameReader buffers r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 64*1024)}
}

// Read returns the next message.
func (fr *FrameReader) Read() (Message, error) { return ReadFrame(fr.br) }
