package protocol

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// MaxFrameBytes is the absolute frame size limit: a 16 MiB block plus
// headers comfortably fits; anything larger on the wire is corruption
// or abuse. Listeners that never carry blocks of that size should set
// a tighter per-reader bound via NewFrameReaderLimit.
const MaxFrameBytes = 1<<24 + 64

// frameHeaderLen is the u32 length prefix.
const frameHeaderLen = 4

// AppendFrame appends one length-prefixed frame (header + encoded
// message) to dst and returns the extended slice. The result is ready
// for a single Write call.
func AppendFrame(dst []byte, m Message) ([]byte, error) {
	off := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	out, err := AppendMessage(dst, m)
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(out[off:off+frameHeaderLen], uint32(len(out)-off-frameHeaderLen))
	return out, nil
}

// framePool recycles encode buffers for the standalone WriteFrame path
// (handshakes and tools; the batched writer manages its own buffers).
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// WriteFrame writes one length-prefixed message to w in a single
// Write call.
func WriteFrame(w io.Writer, m Message) error {
	bp := framePool.Get().(*[]byte)
	buf, err := AppendFrame((*bp)[:0], m)
	if err != nil {
		framePool.Put(bp)
		return err
	}
	_, werr := w.Write(buf)
	*bp = buf[:0]
	framePool.Put(bp)
	if werr != nil {
		return fmt.Errorf("protocol: frame write: %w", werr)
	}
	return nil
}

// ReadFrame reads one length-prefixed message from r. It allocates per
// frame; connection read loops should use FrameReader.ReadInto.
func ReadFrame(r io.Reader) (Message, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err // io.EOF passes through for clean close detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameBytes {
		return Message{}, fmt.Errorf("protocol: frame length %d out of range", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return Message{}, fmt.Errorf("protocol: truncated frame: %w", err)
	}
	return Unmarshal(data)
}

// FrameReader wraps a connection with buffering for repeated frame
// reads, reusing one growable scratch buffer across frames and
// enforcing a per-reader frame size bound.
type FrameReader struct {
	br      *bufio.Reader
	max     uint32
	scratch []byte
}

// NewFrameReader buffers r with the absolute frame limit.
func NewFrameReader(r io.Reader) *FrameReader {
	return NewFrameReaderLimit(r, MaxFrameBytes)
}

// NewFrameReaderLimit buffers r and rejects frames larger than max
// bytes before reading their bodies — a partner connection that only
// ever carries blocks of a known size has no business accepting
// 16 MiB control frames. max is clamped to [64, MaxFrameBytes].
func NewFrameReaderLimit(r io.Reader, max int) *FrameReader {
	if max < 64 {
		max = 64
	}
	if max > MaxFrameBytes {
		max = MaxFrameBytes
	}
	return &FrameReader{br: bufio.NewReaderSize(r, 64*1024), max: uint32(max)}
}

// ReadInto decodes the next frame into *m, reusing m's slices and the
// reader's scratch buffer: steady-state reads are allocation-free.
// The decoded message owns its data (nothing aliases the scratch).
func (fr *FrameReader) ReadInto(m *Message) error {
	// Peek+Discard instead of ReadFull into a local array: the array
	// would escape through the io.Reader interface and cost one tiny
	// allocation per frame.
	hdr, err := fr.br.Peek(frameHeaderLen)
	if len(hdr) < frameHeaderLen {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return err // io.EOF passes through for clean close detection
	}
	n := binary.BigEndian.Uint32(hdr)
	fr.br.Discard(frameHeaderLen)
	if n == 0 || n > fr.max {
		return fmt.Errorf("protocol: frame length %d out of range (limit %d)", n, fr.max)
	}
	if uint32(cap(fr.scratch)) < n {
		fr.scratch = make([]byte, n)
	}
	data := fr.scratch[:n]
	if _, err := io.ReadFull(fr.br, data); err != nil {
		return fmt.Errorf("protocol: truncated frame: %w", err)
	}
	return DecodeMessage(data, m)
}

// Read returns the next message. It shares ReadInto's frame limit but
// returns a freshly-allocated message each call.
func (fr *FrameReader) Read() (Message, error) {
	var m Message
	err := fr.ReadInto(&m)
	return m, err
}
