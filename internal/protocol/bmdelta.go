// Buffer-map deltas — the compact §III-C signalling the congestion
// -control literature asks for: instead of re-sending the full 2K-tuple
// every BM period, a sender transmits the per-lane change against the
// last map it put on this connection. TCP's in-order delivery makes the
// receiver's reconstructed map exactly the sender's last-sent map on a
// live connection, so a delta needs no base identifier beyond a small
// keyframe epoch: absolute keyframes (re)establish the base — on a new
// connection, periodically, and whenever the previous keyframe went
// unacknowledged — and relative deltas chain from the newest keyframe.
//
// The encoding is canonical: every BMDelta has exactly one legal byte
// form, so the fuzz invariant "accepted bytes re-marshal identically"
// holds for deltas just as it does for the legacy message types.
package protocol

import (
	"fmt"

	"coolstream/internal/buffer"
)

// MaxDeltaLanes bounds the lane count a BMDelta can describe. Full
// buffer maps carry a u16 K; deltas are the steady-state hot path and
// one byte of lane count is plenty for any real layout.
const MaxDeltaLanes = 255

// BMDelta is one compact buffer-map update.
//
// Absolute updates (keyframes) carry every lane's Latest value plus the
// full subscription bitmap and replace the receiver's state for this
// connection. Relative updates carry per-lane increments against the
// previous update on the same connection (0 = unchanged); Sub is nil
// when the subscription bitmap did not change.
type BMDelta struct {
	// Epoch identifies the keyframe a relative delta chains from. Each
	// keyframe bumps it (mod 256); a receiver drops relative deltas
	// whose epoch does not match its last applied keyframe.
	Epoch uint8
	// Absolute marks a keyframe: Lanes are absolute Latest values.
	Absolute bool
	// Lanes holds K entries: absolute values or per-lane increments.
	Lanes []int64
	// Sub is the absolute subscription bitmap (required on keyframes;
	// nil on relative deltas when unchanged).
	Sub []bool
}

// K returns the number of lanes described.
func (d BMDelta) K() int { return len(d.Lanes) }

// validate checks structural consistency (shared by Marshal and the
// Message.Validate dispatch).
func (d BMDelta) validate() error {
	if len(d.Lanes) == 0 || len(d.Lanes) > MaxDeltaLanes {
		return fmt.Errorf("protocol: bm-delta describes %d lanes", len(d.Lanes))
	}
	if d.Sub != nil && len(d.Sub) != len(d.Lanes) {
		return fmt.Errorf("protocol: bm-delta sub/lane mismatch: %d vs %d", len(d.Sub), len(d.Lanes))
	}
	if d.Absolute && d.Sub == nil {
		return fmt.Errorf("protocol: bm-delta keyframe without subscription bitmap")
	}
	return nil
}

// Delta payload flags.
const (
	bmdAbs     = 1 << 0 // Lanes are absolute values (keyframe)
	bmdSub     = 1 << 1 // subscription bitmap present
	bmdUniform = 1 << 2 // one increment applies to every lane (relative only)
	bmdKnown   = bmdAbs | bmdSub | bmdUniform
)

// lanesAllEqual reports whether every entry equals the first.
func lanesAllEqual(lanes []int64) bool {
	for _, v := range lanes[1:] {
		if v != lanes[0] {
			return false
		}
	}
	return true
}

// appendBMDeltaPayload appends the canonical delta payload:
//
//	u8 epoch | u8 flags | u8 k
//	ABS:      k × zigzag-varint absolute latest
//	UNIFORM:  one zigzag-varint increment applied to all lanes
//	else:     ceil(k/8) changed bitmap, then one zigzag-varint per set
//	          bit (increments; zero increments are never encoded)
//	SUB set:  ceil(k/8) subscription bitmap
//
// The relative form is chosen canonically: UNIFORM whenever all lane
// increments are equal (including the all-zero heartbeat), the bitmap
// form otherwise.
func appendBMDeltaPayload(dst []byte, d BMDelta) ([]byte, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	k := len(d.Lanes)
	var flags byte
	uniform := false
	if d.Absolute {
		flags |= bmdAbs
	} else if lanesAllEqual(d.Lanes) {
		uniform = true
		flags |= bmdUniform
	}
	if d.Sub != nil {
		flags |= bmdSub
	}
	dst = append(dst, d.Epoch, flags, byte(k))
	switch {
	case d.Absolute:
		for _, v := range d.Lanes {
			dst = appendZigzag(dst, v)
		}
	case uniform:
		dst = appendZigzag(dst, d.Lanes[0])
	default:
		nb := (k + 7) / 8
		bits := dst
		off := len(dst)
		for i := 0; i < nb; i++ {
			bits = append(bits, 0)
		}
		dst = bits
		for j, v := range d.Lanes {
			if v != 0 {
				dst[off+j/8] |= 1 << (j % 8)
			}
		}
		for _, v := range d.Lanes {
			if v != 0 {
				dst = appendZigzag(dst, v)
			}
		}
	}
	if d.Sub != nil {
		off := len(dst)
		for i := 0; i < (k+7)/8; i++ {
			dst = append(dst, 0)
		}
		for j, s := range d.Sub {
			if s {
				dst[off+j/8] |= 1 << (j % 8)
			}
		}
	}
	return dst, nil
}

// scanBMDeltaPayload decodes the canonical payload, rejecting every
// non-canonical form (overlong varints, zero increments in the bitmap
// form, a bitmap form whose increments are all equal, set bits beyond
// lane k). lanes/sub scratch is reused when capacity allows.
func scanBMDeltaPayload(s *scanner, lanes []int64, sub []bool) (BMDelta, error) {
	var d BMDelta
	d.Epoch = s.u8("bm-delta epoch")
	flags := s.u8("bm-delta flags")
	k := int(s.u8("bm-delta lane count"))
	if s.err != nil {
		return d, s.err
	}
	if flags&^bmdKnown != 0 {
		return d, fmt.Errorf("protocol: bm-delta unknown flags %#x", flags)
	}
	if k == 0 {
		return d, fmt.Errorf("protocol: bm-delta with zero lanes")
	}
	d.Absolute = flags&bmdAbs != 0
	if d.Absolute && flags&bmdUniform != 0 {
		return d, fmt.Errorf("protocol: bm-delta keyframe marked uniform")
	}
	if d.Absolute && flags&bmdSub == 0 {
		return d, fmt.Errorf("protocol: bm-delta keyframe without subscription bitmap")
	}
	if cap(lanes) >= k {
		d.Lanes = lanes[:k]
	} else {
		d.Lanes = make([]int64, k)
	}
	switch {
	case d.Absolute:
		for j := range d.Lanes {
			d.Lanes[j] = s.zigzag("bm-delta lane")
		}
	case flags&bmdUniform != 0:
		v := s.zigzag("bm-delta increment")
		for j := range d.Lanes {
			d.Lanes[j] = v
		}
	default:
		nb := (k + 7) / 8
		bits := s.bytes(nb, "bm-delta changed bitmap")
		if s.err != nil {
			return d, s.err
		}
		if err := checkBitmapTail(bits, k, "changed"); err != nil {
			return d, err
		}
		for j := range d.Lanes {
			if bits[j/8]&(1<<(j%8)) != 0 {
				v := s.zigzag("bm-delta increment")
				if s.err == nil && v == 0 {
					return d, fmt.Errorf("protocol: bm-delta encodes a zero increment")
				}
				d.Lanes[j] = v
			} else {
				d.Lanes[j] = 0
			}
		}
		if s.err == nil && lanesAllEqual(d.Lanes) {
			return d, fmt.Errorf("protocol: non-canonical bm-delta (uniform increments in bitmap form)")
		}
	}
	if flags&bmdSub != 0 {
		nb := (k + 7) / 8
		bits := s.bytes(nb, "bm-delta subscription bitmap")
		if s.err != nil {
			return d, s.err
		}
		if err := checkBitmapTail(bits, k, "subscription"); err != nil {
			return d, err
		}
		if cap(sub) >= k {
			d.Sub = sub[:k]
		} else {
			d.Sub = make([]bool, k)
		}
		for j := range d.Sub {
			d.Sub[j] = bits[j/8]&(1<<(j%8)) != 0
		}
	} else {
		d.Sub = nil
	}
	return d, s.err
}

// checkBitmapTail rejects set bits beyond lane k — they can never be
// produced by the encoder, so accepting them would break canonicality.
func checkBitmapTail(bits []byte, k int, what string) error {
	if tail := k % 8; tail != 0 {
		if bits[len(bits)-1]&^byte(1<<tail-1) != 0 {
			return fmt.Errorf("protocol: bm-delta %s bitmap sets bits past lane %d", what, k)
		}
	}
	return nil
}

// DiffBM builds the relative delta that takes prev to cur under the
// given keyframe epoch. Sub is carried only when the subscription
// bitmap changed.
func DiffBM(prev, cur buffer.BufferMap, epoch uint8) (BMDelta, error) {
	if prev.K() != cur.K() || cur.K() == 0 {
		return BMDelta{}, fmt.Errorf("protocol: diff over K %d vs %d", prev.K(), cur.K())
	}
	d := BMDelta{Epoch: epoch, Lanes: make([]int64, cur.K())}
	for j := range d.Lanes {
		d.Lanes[j] = cur.Latest[j] - prev.Latest[j]
	}
	for j := range cur.Subscribed {
		if cur.Subscribed[j] != prev.Subscribed[j] {
			d.Sub = append([]bool(nil), cur.Subscribed...)
			break
		}
	}
	return d, nil
}

// KeyBM builds the absolute keyframe delta for cur under epoch.
func KeyBM(cur buffer.BufferMap, epoch uint8) (BMDelta, error) {
	if cur.K() == 0 {
		return BMDelta{}, fmt.Errorf("protocol: keyframe over empty buffer map")
	}
	return BMDelta{
		Epoch:    epoch,
		Absolute: true,
		Lanes:    append([]int64(nil), cur.Latest...),
		Sub:      append([]bool(nil), cur.Subscribed...),
	}, nil
}

// ApplyBMDelta reconstructs the sender's map: a keyframe replaces base
// outright (base may be empty); a relative delta requires base with the
// same K and returns base plus the increments. The result never aliases
// base or d.
func ApplyBMDelta(base buffer.BufferMap, d BMDelta) (buffer.BufferMap, error) {
	if err := d.validate(); err != nil {
		return buffer.BufferMap{}, err
	}
	k := len(d.Lanes)
	if d.Absolute {
		nm := buffer.NewBufferMap(k)
		copy(nm.Latest, d.Lanes)
		copy(nm.Subscribed, d.Sub)
		return nm, nil
	}
	if base.K() != k {
		return buffer.BufferMap{}, fmt.Errorf("protocol: delta over K %d applied to base K %d", k, base.K())
	}
	nm := base.Clone()
	for j, inc := range d.Lanes {
		nm.Latest[j] += inc
	}
	if d.Sub != nil {
		copy(nm.Subscribed, d.Sub)
	}
	return nm, nil
}
