package protocol

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"coolstream/internal/netmodel"
)

// codec layout (big endian):
//
//	u8  type
//	i32 from
//	i32 to
//	then type-specific payload:
//	  mcache-request : i16 want
//	  mcache-reply   : u16 n, n × (i32 id, u8 class, i64 joinedAt,
//	                   i16 partners, u16 addrLen, addr bytes)
//	  partner-reject : u16 n, n × entry (alternate candidates; same
//	                   entry layout as mcache-reply, n may be 0)
//	  partner-request: u16 addrLen, addr bytes (advertised listener)
//	  bm-exchange    : u16 len, BufferMap.MarshalBinary bytes
//	  subscribe      : i16 substream, i64 startSeq
//	  unsubscribe    : i16 substream
//	  others         : empty

// Marshal encodes a message. It validates first, so malformed messages
// never reach the wire.
func Marshal(m Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if compactHeader(m.Type) {
		// The compact varint-header types live in the append codec;
		// there is one encoder for them, so reference == fast by
		// construction.
		return AppendMessage(nil, m)
	}
	var b bytes.Buffer
	b.WriteByte(byte(m.Type))
	writeI32 := func(v int32) { binary.Write(&b, binary.BigEndian, v) }
	writeI32(m.From)
	writeI32(m.To)
	switch m.Type {
	case TypeMCacheRequest:
		binary.Write(&b, binary.BigEndian, m.Want)
	case TypeMCacheReply, TypePartnerReject:
		if len(m.Entries) > 0xffff {
			return nil, fmt.Errorf("protocol: %d entries exceed reply limit", len(m.Entries))
		}
		binary.Write(&b, binary.BigEndian, uint16(len(m.Entries)))
		for _, e := range m.Entries {
			binary.Write(&b, binary.BigEndian, e.ID)
			b.WriteByte(byte(e.Class))
			binary.Write(&b, binary.BigEndian, e.JoinedAtMs)
			binary.Write(&b, binary.BigEndian, e.PartnerCount)
			binary.Write(&b, binary.BigEndian, uint16(len(e.Addr)))
			b.WriteString(e.Addr)
		}
	case TypePartnerRequest:
		binary.Write(&b, binary.BigEndian, uint16(len(m.Addr)))
		b.WriteString(m.Addr)
	case TypeBMExchange:
		bm, err := m.BM.MarshalBinary()
		if err != nil {
			return nil, err
		}
		if len(bm) > 0xffff {
			return nil, fmt.Errorf("protocol: buffer map too large: %d bytes", len(bm))
		}
		binary.Write(&b, binary.BigEndian, uint16(len(bm)))
		b.Write(bm)
	case TypeSubscribe:
		binary.Write(&b, binary.BigEndian, m.SubStream)
		binary.Write(&b, binary.BigEndian, m.StartSeq)
	case TypeUnsubscribe:
		binary.Write(&b, binary.BigEndian, m.SubStream)
	case TypeBlockPush:
		binary.Write(&b, binary.BigEndian, m.SubStream)
		binary.Write(&b, binary.BigEndian, m.StartSeq)
		if len(m.Payload) > 1<<24 {
			return nil, fmt.Errorf("protocol: block payload %d exceeds 16 MiB", len(m.Payload))
		}
		binary.Write(&b, binary.BigEndian, uint32(len(m.Payload)))
		b.Write(m.Payload)
	}
	return b.Bytes(), nil
}

// Unmarshal decodes a message produced by Marshal.
func Unmarshal(data []byte) (Message, error) {
	var m Message
	if len(data) > 0 && compactHeader(MsgType(data[0])) {
		err := DecodeMessage(data, &m)
		return m, err
	}
	r := bytes.NewReader(data)
	var typ uint8
	if err := binary.Read(r, binary.BigEndian, &typ); err != nil {
		return m, fmt.Errorf("protocol: truncated type: %w", err)
	}
	m.Type = MsgType(typ)
	if err := binary.Read(r, binary.BigEndian, &m.From); err != nil {
		return m, fmt.Errorf("protocol: truncated from: %w", err)
	}
	if err := binary.Read(r, binary.BigEndian, &m.To); err != nil {
		return m, fmt.Errorf("protocol: truncated to: %w", err)
	}
	switch m.Type {
	case TypeMCacheRequest:
		if err := binary.Read(r, binary.BigEndian, &m.Want); err != nil {
			return m, fmt.Errorf("protocol: truncated want: %w", err)
		}
	case TypeMCacheReply, TypePartnerReject:
		var n uint16
		if err := binary.Read(r, binary.BigEndian, &n); err != nil {
			return m, fmt.Errorf("protocol: truncated entry count: %w", err)
		}
		m.Entries = make([]PeerEntry, n)
		for i := range m.Entries {
			e := &m.Entries[i]
			var class uint8
			if err := binary.Read(r, binary.BigEndian, &e.ID); err != nil {
				return m, fmt.Errorf("protocol: truncated entry %d: %w", i, err)
			}
			if err := binary.Read(r, binary.BigEndian, &class); err != nil {
				return m, fmt.Errorf("protocol: truncated entry %d: %w", i, err)
			}
			if class >= netmodel.NumClasses {
				return m, fmt.Errorf("protocol: entry %d has invalid class %d", i, class)
			}
			e.Class = netmodel.UserClass(class)
			if err := binary.Read(r, binary.BigEndian, &e.JoinedAtMs); err != nil {
				return m, fmt.Errorf("protocol: truncated entry %d: %w", i, err)
			}
			if err := binary.Read(r, binary.BigEndian, &e.PartnerCount); err != nil {
				return m, fmt.Errorf("protocol: truncated entry %d: %w", i, err)
			}
			var alen uint16
			if err := binary.Read(r, binary.BigEndian, &alen); err != nil {
				return m, fmt.Errorf("protocol: truncated entry %d: %w", i, err)
			}
			if alen > 0 {
				buf := make([]byte, alen)
				if _, err := io.ReadFull(r, buf); err != nil {
					return m, fmt.Errorf("protocol: truncated entry %d addr: %w", i, err)
				}
				e.Addr = string(buf)
			}
		}
	case TypePartnerRequest:
		var alen uint16
		if err := binary.Read(r, binary.BigEndian, &alen); err != nil {
			return m, fmt.Errorf("protocol: truncated addr length: %w", err)
		}
		if alen > 0 {
			buf := make([]byte, alen)
			if _, err := io.ReadFull(r, buf); err != nil {
				return m, fmt.Errorf("protocol: truncated addr: %w", err)
			}
			m.Addr = string(buf)
		}
	case TypeBMExchange:
		var n uint16
		if err := binary.Read(r, binary.BigEndian, &n); err != nil {
			return m, fmt.Errorf("protocol: truncated bm length: %w", err)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return m, fmt.Errorf("protocol: truncated bm: %w", err)
		}
		if err := m.BM.UnmarshalBinary(buf); err != nil {
			return m, err
		}
	case TypeSubscribe:
		if err := binary.Read(r, binary.BigEndian, &m.SubStream); err != nil {
			return m, fmt.Errorf("protocol: truncated substream: %w", err)
		}
		if err := binary.Read(r, binary.BigEndian, &m.StartSeq); err != nil {
			return m, fmt.Errorf("protocol: truncated startseq: %w", err)
		}
	case TypeUnsubscribe:
		if err := binary.Read(r, binary.BigEndian, &m.SubStream); err != nil {
			return m, fmt.Errorf("protocol: truncated substream: %w", err)
		}
	case TypeBlockPush:
		if err := binary.Read(r, binary.BigEndian, &m.SubStream); err != nil {
			return m, fmt.Errorf("protocol: truncated substream: %w", err)
		}
		if err := binary.Read(r, binary.BigEndian, &m.StartSeq); err != nil {
			return m, fmt.Errorf("protocol: truncated block seq: %w", err)
		}
		var n uint32
		if err := binary.Read(r, binary.BigEndian, &n); err != nil {
			return m, fmt.Errorf("protocol: truncated payload length: %w", err)
		}
		if int(n) > r.Len() {
			return m, fmt.Errorf("protocol: payload length %d exceeds remaining %d", n, r.Len())
		}
		m.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, m.Payload); err != nil {
			return m, fmt.Errorf("protocol: truncated payload: %w", err)
		}
	case TypePartnerAccept, TypeLeave, TypePing:
		// No payload.
	default:
		return m, fmt.Errorf("protocol: unknown message type %d", typ)
	}
	if r.Len() != 0 {
		return m, fmt.Errorf("protocol: %d trailing bytes", r.Len())
	}
	if err := m.Validate(); err != nil {
		return m, err
	}
	return m, nil
}
