package protocol

import (
	"bytes"
	"io"
	"net"
	"testing"
	"testing/quick"

	"coolstream/internal/netmodel"
	"coolstream/internal/xrand"
)

// allTypes enumerates every message type the codec knows.
var allTypes = []MsgType{
	TypeMCacheRequest, TypeMCacheReply, TypePartnerRequest, TypePartnerAccept,
	TypePartnerReject, TypeBMExchange, TypeSubscribe, TypeUnsubscribe,
	TypeLeave, TypeBlockPush, TypePing, TypeBMDelta, TypeBMAck,
}

// genMessage builds a random valid message of the given type.
func genMessage(r *xrand.RNG, typ MsgType) Message {
	m := Message{Type: typ, From: int32(r.Intn(2000)) - 1, To: int32(r.Intn(2000)) - 1}
	switch typ {
	case TypeMCacheRequest:
		m.Want = int16(1 + r.Intn(100))
	case TypeMCacheReply, TypePartnerReject:
		m.Entries = make([]PeerEntry, r.Intn(10))
		for i := range m.Entries {
			m.Entries[i] = PeerEntry{
				ID:           int32(r.Intn(1 << 20)),
				Class:        netmodel.UserClass(r.Intn(netmodel.NumClasses)),
				JoinedAtMs:   r.Int63n(1 << 40),
				PartnerCount: int16(r.Intn(50)),
			}
			if r.Bool(0.5) {
				m.Entries[i].Addr = "10.0.0.1:9000"
			}
		}
	case TypePartnerRequest:
		if r.Bool(0.7) {
			m.Addr = "127.0.0.1:7000"
		}
	case TypeBMExchange:
		m.BM = randomBM(r, 1+r.Intn(10))
	case TypeSubscribe:
		m.SubStream = int16(r.Intn(8))
		m.StartSeq = r.Int63n(1 << 40)
	case TypeUnsubscribe:
		m.SubStream = int16(r.Intn(8))
	case TypeBlockPush:
		m.SubStream = int16(r.Intn(8))
		m.StartSeq = r.Int63n(1 << 40)
		m.Payload = make([]byte, 1+r.Intn(600))
		for i := range m.Payload {
			m.Payload[i] = byte(r.Intn(256))
		}
	case TypeBMDelta:
		k := 1 + r.Intn(8)
		if r.Bool(0.4) {
			bm := randomBM(r, k)
			d, _ := KeyBM(bm, uint8(r.Intn(256)))
			m.Delta = d
		} else {
			prev := randomBM(r, k)
			cur := prev.Clone()
			for j := range cur.Latest {
				cur.Latest[j] += r.Int63n(3)
			}
			if r.Bool(0.3) {
				cur.Subscribed[r.Intn(k)] = !cur.Subscribed[r.Intn(k)]
			}
			d, _ := DiffBM(prev, cur, uint8(r.Intn(256)))
			m.Delta = d
		}
	case TypeBMAck:
		m.AckEpoch = uint8(r.Intn(256))
	}
	return m
}

// TestAppendMessageMatchesMarshal is the encoder half of the
// differential contract: byte-identical output for every type.
func TestAppendMessageMatchesMarshal(t *testing.T) {
	r := xrand.New(11)
	for round := 0; round < 500; round++ {
		typ := allTypes[r.Intn(len(allTypes))]
		m := genMessage(r, typ)
		ref, err := Marshal(m)
		if err != nil {
			t.Fatalf("%v: Marshal: %v", typ, err)
		}
		got, err := AppendMessage(nil, m)
		if err != nil {
			t.Fatalf("%v: AppendMessage: %v", typ, err)
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("%v encoders differ:\nref % x\ngot % x", typ, ref, got)
		}
		// Appending after existing bytes must not disturb the prefix.
		withPrefix, err := AppendMessage([]byte{0xAA, 0xBB}, m)
		if err != nil || !bytes.Equal(withPrefix, append([]byte{0xAA, 0xBB}, ref...)) {
			t.Fatalf("%v: prefix append broken (%v)", typ, err)
		}
	}
}

// TestDecodeMessageMatchesUnmarshal is the decoder half: over valid
// encodings and random mutations of them, both decoders agree on
// accept/reject, and accepted inputs re-marshal identically.
func TestDecodeMessageMatchesUnmarshal(t *testing.T) {
	r := xrand.New(23)
	var reused Message // deliberately long-lived to exercise slice reuse
	for round := 0; round < 2000; round++ {
		typ := allTypes[r.Intn(len(allTypes))]
		data, err := Marshal(genMessage(r, typ))
		if err != nil {
			t.Fatal(err)
		}
		// Half the rounds: corrupt the bytes.
		if r.Bool(0.5) {
			switch r.Intn(3) {
			case 0: // flip a byte
				data[r.Intn(len(data))] ^= byte(1 + r.Intn(255))
			case 1: // truncate
				data = data[:r.Intn(len(data))]
			case 2: // append garbage
				data = append(data, byte(r.Intn(256)))
			}
		}
		ref, refErr := Unmarshal(data)
		gotErr := DecodeMessage(data, &reused)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("decoders disagree on % x:\nUnmarshal: %v\nDecodeMessage: %v", data, refErr, gotErr)
		}
		if refErr != nil {
			continue
		}
		refBytes, err := Marshal(ref)
		if err != nil {
			t.Fatal(err)
		}
		gotBytes, err := Marshal(reused)
		if err != nil {
			t.Fatalf("decoded message fails to re-marshal: %v", err)
		}
		if !bytes.Equal(refBytes, gotBytes) || !bytes.Equal(refBytes, data) {
			t.Fatalf("decoded values differ on % x", data)
		}
	}
}

func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	r := xrand.New(37)
	for round := 0; round < 200; round++ {
		m := genMessage(r, allTypes[r.Intn(len(allTypes))])
		framed, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		var w bytes.Buffer
		if err := WriteFrame(&w, m); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(framed, w.Bytes()) {
			t.Fatalf("frame encodings differ")
		}
		// And the frame reads back.
		got, err := NewFrameReader(bytes.NewReader(framed)).Read()
		if err != nil {
			t.Fatal(err)
		}
		again, err := Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, framed[4:]) {
			t.Fatal("frame round trip not canonical")
		}
	}
}

// TestWriteFrameSingleWrite asserts the whole point of AppendFrame:
// one Write call per frame.
func TestWriteFrameSingleWrite(t *testing.T) {
	var calls int
	w := writerFunc(func(p []byte) (int, error) { calls++; return len(p), nil })
	if err := WriteFrame(w, Message{Type: TypePing, From: 1, To: 2}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("WriteFrame issued %d writes", calls)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestFrameReaderLimit(t *testing.T) {
	big := Message{Type: TypeBlockPush, From: 1, To: 2, SubStream: 0, StartSeq: 1,
		Payload: make([]byte, 4096)}
	framed, err := AppendFrame(nil, big)
	if err != nil {
		t.Fatal(err)
	}
	// Under the default limit it reads fine.
	if _, err := NewFrameReader(bytes.NewReader(framed)).Read(); err != nil {
		t.Fatal(err)
	}
	// A tight per-listener bound rejects it before reading the body.
	fr := NewFrameReaderLimit(bytes.NewReader(framed), 1024)
	if _, err := fr.Read(); err == nil {
		t.Fatal("oversized frame accepted under tight limit")
	}
	// The rejection happens from the header alone: 4 header bytes is
	// enough input to get the error even with no body present.
	fr = NewFrameReaderLimit(bytes.NewReader(framed[:4]), 1024)
	if _, err := fr.Read(); err == nil || err == io.ErrUnexpectedEOF {
		t.Fatalf("want early limit rejection, got %v", err)
	}
}

// TestFrameReaderZeroAllocSteadyState locks in the zero-alloc
// contract: after warmup, ReadInto and AppendFrame allocate nothing
// for the hot message types.
func TestFrameReaderZeroAllocSteadyState(t *testing.T) {
	bm := randomBM(xrand.New(5), 6)
	d, _ := KeyBM(bm, 1)
	hot := []Message{
		{Type: TypeBlockPush, From: 1, To: 2, SubStream: 3, StartSeq: 9, Payload: make([]byte, 800)},
		{Type: TypeBMDelta, From: 1, To: 2, Delta: d},
		{Type: TypeBMExchange, From: 1, To: 2, BM: bm},
		{Type: TypeBMAck, From: 2, To: 1, AckEpoch: 1},
		{Type: TypePing, From: 1, To: 2},
	}
	for _, m := range hot {
		m := m
		var stream bytes.Buffer
		const frames = 120
		for i := 0; i < frames; i++ {
			if err := WriteFrame(&stream, m); err != nil {
				t.Fatal(err)
			}
		}
		fr := NewFrameReader(bytes.NewReader(stream.Bytes()))
		var dst Message
		// Warm up slice capacities.
		for i := 0; i < 10; i++ {
			if err := fr.ReadInto(&dst); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := fr.ReadInto(&dst); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("%v: ReadInto allocates %.1f/op at steady state", m.Type, allocs)
		}

		buf := make([]byte, 0, 4096)
		allocs = testing.AllocsPerRun(100, func() {
			var err error
			buf, err = AppendFrame(buf[:0], m)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("%v: AppendFrame allocates %.1f/op at steady state", m.Type, allocs)
		}
	}
}

// TestFrameReaderOverTCP exercises the reader against a real socket
// (header/body split across TCP segments included).
func TestFrameReaderOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	msgs := []Message{
		{Type: TypePartnerRequest, From: 1, To: 2, Addr: "127.0.0.1:1"},
		{Type: TypeBlockPush, From: 1, To: 2, SubStream: 0, StartSeq: 5, Payload: bytes.Repeat([]byte{7}, 1500)},
		{Type: TypeLeave, From: 1, To: 2},
	}
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer c.Close()
		for _, m := range msgs {
			if err := WriteFrame(c, m); err != nil {
				return
			}
		}
	}()
	c, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fr := NewFrameReader(c)
	var got Message
	for i, want := range msgs {
		if err := fr.ReadInto(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		wb, _ := Marshal(want)
		gb, _ := Marshal(got)
		if !bytes.Equal(wb, gb) {
			t.Fatalf("frame %d differs", i)
		}
	}
	if err := fr.ReadInto(&got); err != io.EOF {
		t.Fatalf("want EOF after close, got %v", err)
	}
}

// TestDecodePropertyAllTypes is a quick-check over the full pipeline:
// gen → append → frame → read-into → re-marshal identical.
func TestDecodePropertyAllTypes(t *testing.T) {
	var reused Message
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		m := genMessage(r, allTypes[r.Intn(len(allTypes))])
		framed, err := AppendFrame(nil, m)
		if err != nil {
			return false
		}
		fr := NewFrameReader(bytes.NewReader(framed))
		if err := fr.ReadInto(&reused); err != nil {
			return false
		}
		a, err1 := Marshal(m)
		b, err2 := Marshal(reused)
		return err1 == nil && err2 == nil && bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendFrameBlockPush(b *testing.B) {
	m := Message{Type: TypeBlockPush, From: 1, To: 2, SubStream: 3, StartSeq: 9,
		Payload: make([]byte, 1250)}
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.SetBytes(int64(len(m.Payload)))
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalWriteFrameBlockPush(b *testing.B) {
	m := Message{Type: TypeBlockPush, From: 1, To: 2, SubStream: 3, StartSeq: 9,
		Payload: make([]byte, 1250)}
	b.ReportAllocs()
	b.SetBytes(int64(len(m.Payload)))
	for i := 0; i < b.N; i++ {
		data, err := Marshal(m)
		if err != nil {
			b.Fatal(err)
		}
		_ = data
	}
}

func BenchmarkReadIntoBlockPush(b *testing.B) {
	m := Message{Type: TypeBlockPush, From: 1, To: 2, SubStream: 3, StartSeq: 9,
		Payload: make([]byte, 1250)}
	framed, err := AppendFrame(nil, m)
	if err != nil {
		b.Fatal(err)
	}
	stream := bytes.Repeat(framed, 1)
	rd := bytes.NewReader(stream)
	fr := NewFrameReader(rd)
	var dst Message
	b.ReportAllocs()
	b.SetBytes(int64(len(m.Payload)))
	for i := 0; i < b.N; i++ {
		rd.Reset(stream)
		fr.br.Reset(rd)
		if err := fr.ReadInto(&dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMDeltaEncode(b *testing.B) {
	bm := randomBM(xrand.New(1), 6)
	next := bm.Clone()
	for j := range next.Latest {
		next.Latest[j]++
	}
	d, err := DiffBM(bm, next, 3)
	if err != nil {
		b.Fatal(err)
	}
	m := Message{Type: TypeBMDelta, From: 40, To: 41, Delta: d}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err = AppendFrame(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
	}
}
