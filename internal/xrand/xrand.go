// Package xrand provides a small, fast, deterministic, splittable
// pseudo-random number generator for the simulator.
//
// The simulator must be reproducible bit-for-bit across runs and across
// GOMAXPROCS settings, so math/rand's global state is unsuitable. Every
// subsystem (and every peer) derives its own independent stream with
// Split, keyed by a stable label, so that adding a consumer of randomness
// in one subsystem never perturbs the draws seen by another.
//
// The core generator is splitmix64 (Steele, Lea, Flood: "Fast splittable
// pseudorandom number generators", OOPSLA 2014), which passes BigCrush
// when used as a 64-bit generator and supports O(1) splitting.
package xrand

import "math"

// RNG is a deterministic splittable pseudo-random number generator.
// It is not safe for concurrent use; derive one per goroutine with Split.
type RNG struct {
	state uint64
	gamma uint64
}

const (
	goldenGamma = 0x9e3779b97f4a7c15
	defaultSeed = 0x5deece66d
)

// New returns an RNG seeded with seed. Two RNGs created with the same
// seed produce identical sequences.
func New(seed uint64) *RNG {
	if seed == 0 {
		seed = defaultSeed
	}
	return &RNG{state: seed, gamma: goldenGamma}
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func mixGamma(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	z = (z ^ (z >> 33)) | 1 // gammas must be odd
	// Ensure enough bit transitions; see splitmix64 paper §5.
	if popcount(z^(z>>1)) < 24 {
		z ^= 0xaaaaaaaaaaaaaaaa
	}
	return z
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += r.gamma
	return mix64(r.state)
}

// Split returns a new RNG whose stream is statistically independent of
// the receiver's. The receiver advances by one draw.
func (r *RNG) Split() *RNG {
	s := r.Uint64()
	g := mixGamma(r.Uint64())
	return &RNG{state: s, gamma: g}
}

// SplitLabeled returns an independent RNG keyed by both the receiver's
// current state and a stable string label. Unlike Split it does NOT
// advance the receiver, so the derived stream depends only on the
// original seed and the label — subsystems can be initialised in any
// order without perturbing each other.
func (r *RNG) SplitLabeled(label string) *RNG {
	h := fnvOffset
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= fnvPrime
	}
	rng := r.labeledStream(h)
	return &rng
}

const (
	fnvOffset uint64 = 1469598103934665603 // FNV-64 offset basis
	fnvPrime  uint64 = 1099511628211
)

// labeledStream derives the (state, gamma) pair SplitLabeled would
// produce for a label whose FNV-64 hash is h.
func (r *RNG) labeledStream(h uint64) RNG {
	return RNG{state: mix64(r.state ^ h), gamma: mixGamma(h ^ r.gamma)}
}

// ReseedLabeled re-derives r in place to the exact stream
// parent.SplitLabeled(label) would return, without allocating a new
// generator — the recycling path for pooled per-entity RNGs.
func (r *RNG) ReseedLabeled(parent *RNG, label string) {
	h := fnvOffset
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= fnvPrime
	}
	*r = parent.labeledStream(h)
}

// ReseedLabeledBytes is ReseedLabeled for labels assembled in reusable
// byte scratch (e.g. an integer encoded without fmt). The derived
// stream is byte-identical to SplitLabeled(string(label)).
func (r *RNG) ReseedLabeledBytes(parent *RNG, label []byte) {
	h := fnvOffset
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= fnvPrime
	}
	*r = parent.labeledStream(h)
}

// Float64 returns a uniform float64 in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias negligible for sim-scale n
}

// Int63n returns a uniform int64 in [0,n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomises the order of n elements using swap, as in math/rand.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard-normally distributed float64
// (Box–Muller; one value per call, the pair's sibling is discarded to
// keep the generator allocation-free and stateless beyond the counter).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Pick returns a uniformly random element of xs. It panics if xs is empty.
func Pick[T any](r *RNG, xs []T) T {
	return xs[r.Intn(len(xs))]
}
