package xrand

import (
	"fmt"
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == r.Uint64() {
		t.Fatal("zero-seed RNG produced a constant")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	p2 := New(7)
	p2.Split()
	matches := 0
	for i := 0; i < 64; i++ {
		if child.Uint64() == p2.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("split child echoes parent: %d/64 matches", matches)
	}
}

func TestSplitLabeledStable(t *testing.T) {
	a := New(9).SplitLabeled("peer-17")
	b := New(9).SplitLabeled("peer-17")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SplitLabeled is not stable for identical labels")
		}
	}
	c := New(9).SplitLabeled("peer-18")
	d := New(9).SplitLabeled("peer-17")
	diff := false
	for i := 0; i < 10; i++ {
		if c.Uint64() != d.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("distinct labels produced identical streams")
	}
}

func TestSplitLabeledDoesNotAdvanceParent(t *testing.T) {
	a := New(5)
	b := New(5)
	a.SplitLabeled("x")
	a.SplitLabeled("y")
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitLabeled advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n < 40; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %.4f, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(19)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f, want ~1", variance)
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// 16 buckets over [0,1); chi-square with 15 dof, 99.9% critical ~37.7.
	r := New(23)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*16)]++
	}
	expected := float64(n) / 16
	chi := 0.0
	for _, c := range buckets {
		d := float64(c) - expected
		chi += d * d / expected
	}
	if chi > 37.7 {
		t.Fatalf("uniformity chi-square %.1f exceeds 99.9%% critical value", chi)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %.4f", frac)
	}
}

func TestPick(t *testing.T) {
	r := New(31)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never returned some elements: %v", seen)
	}
}

func TestReseedLabeledMatchesSplitLabeled(t *testing.T) {
	parent := New(77)
	for _, label := range []string{"", "node-0", "node-12345", "mcache", "world"} {
		want := parent.SplitLabeled(label)
		var got RNG
		got.ReseedLabeled(parent, label)
		for i := 0; i < 16; i++ {
			if a, b := want.Uint64(), got.Uint64(); a != b {
				t.Fatalf("label %q draw %d: ReseedLabeled %x != SplitLabeled %x", label, i, b, a)
			}
		}
	}
}

func TestReseedLabeledBytesMatchesString(t *testing.T) {
	parent := New(12345)
	buf := make([]byte, 0, 32)
	for _, id := range []int{0, 1, 9, 10, 99, 100, 4242, 1 << 30} {
		label := fmt.Sprintf("node-%d", id)
		buf = append(buf[:0], "node-"...)
		buf = strconv.AppendInt(buf, int64(id), 10)
		want := parent.SplitLabeled(label)
		var got RNG
		got.ReseedLabeledBytes(parent, buf)
		for i := 0; i < 16; i++ {
			if a, b := want.Uint64(), got.Uint64(); a != b {
				t.Fatalf("id %d draw %d: bytes stream %x != string stream %x", id, i, b, a)
			}
		}
	}
}

func TestReseedLabeledDoesNotAdvanceParent(t *testing.T) {
	a, b := New(5), New(5)
	var scratch RNG
	scratch.ReseedLabeled(a, "x")
	scratch.ReseedLabeledBytes(a, []byte("y"))
	for i := 0; i < 8; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("ReseedLabeled advanced the parent stream")
		}
	}
}
