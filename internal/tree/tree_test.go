package tree

import (
	"testing"

	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

func newOverlay(t *testing.T) (*Overlay, *sim.Engine) {
	t.Helper()
	e := sim.NewEngine(sim.Second)
	o, err := NewOverlay(DefaultParams(), e, 1)
	if err != nil {
		t.Fatal(err)
	}
	return o, e
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{StreamRateBps: 0, RepairDelay: 1, BufferSeconds: 1, RootDegree: 1},
		{StreamRateBps: 1, RepairDelay: -1, BufferSeconds: 1, RootDegree: 1},
		{StreamRateBps: 1, RepairDelay: 1, BufferSeconds: -1, RootDegree: 1},
		{StreamRateBps: 1, RepairDelay: 1, BufferSeconds: 1, RootDegree: 0},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad params %d validated", i)
		}
	}
	if _, err := NewOverlay(DefaultParams(), nil, 1); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestJoinAttaches(t *testing.T) {
	o, e := newOverlay(t)
	const rate = 768e3
	id := o.Join(2 * rate)
	if id != 1 {
		t.Fatalf("id = %d", id)
	}
	e.Run(10 * sim.Second)
	if o.ConnectedCount() != 1 {
		t.Fatalf("connected = %d", o.ConnectedCount())
	}
	if o.Continuity() < 0.999 {
		t.Fatalf("continuity %v for undisturbed peer", o.Continuity())
	}
}

func TestCapacityLimitedAttachment(t *testing.T) {
	p := DefaultParams()
	p.RootDegree = 1
	e := sim.NewEngine(sim.Second)
	o, _ := NewOverlay(p, e, 2)
	// First peer has zero upload: it attaches to the root (degree 1)
	// but accepts no children.
	a := o.Join(0)
	b := o.Join(0)
	e.Run(2 * sim.Second)
	if !o.nodes[a].connected {
		t.Fatal("first peer not connected")
	}
	if o.nodes[b].connected {
		t.Fatal("second peer connected despite no spare capacity")
	}
	if o.Rejections == 0 {
		t.Fatal("rejection not counted")
	}
	// Adding an uploader lets the orphan re-attach on repair cadence.
	o.Leave(a)
	o.Join(10 * p.StreamRateBps)
	e.Run(e.Now() + 30*sim.Second)
	if !o.nodes[b].connected {
		t.Fatal("orphan never repaired")
	}
}

func TestLeaveOrphansSubtree(t *testing.T) {
	o, e := newOverlay(t)
	const rate = 768e3
	// Build a chain: root → a → b by capacity shaping.
	p := DefaultParams()
	_ = p
	a := o.Join(1 * rate) // degree 1
	e.Run(sim.Second)
	b := o.Join(0) // must land under a (root full? RootDegree=64...)
	// With a roomy root, b may attach to the root; force the chain:
	nb := o.nodes[b]
	if nb.parent != a {
		// Detach and reattach under a manually for the structural test.
		parent := o.nodes[nb.parent]
		for i, c := range parent.children {
			if c == b {
				parent.children = append(parent.children[:i], parent.children[i+1:]...)
				break
			}
		}
		o.nodes[a].children = append(o.nodes[a].children, b)
		nb.parent = a
	}
	e.Run(e.Now() + sim.Second)
	o.Leave(a)
	if nb.parent != parentOrphaned {
		t.Fatal("child not orphaned by parent leave")
	}
	// The outage outlasts the playout buffer only if repair is slow;
	// with the default 5 s repair and 10 s buffer, continuity holds.
	e.Run(e.Now() + 30*sim.Second)
	if !nb.connected {
		t.Fatal("orphan not repaired")
	}
	if o.Repairs == 0 {
		t.Fatal("repair not counted")
	}
}

func TestChurnDegradesContinuity(t *testing.T) {
	// Heavy churn with slow repair must cost continuity.
	p := DefaultParams()
	p.RepairDelay = 20 * sim.Second
	p.BufferSeconds = 2
	e := sim.NewEngine(sim.Second)
	o, _ := NewOverlay(p, e, 3)
	r := xrand.New(4)
	const rate = 768e3
	var ids []int
	for i := 0; i < 50; i++ {
		ids = append(ids, o.Join(rate*(0.5+2*r.Float64())))
	}
	// Churn: every 10 s, one random peer leaves and a new one joins.
	for step := 0; step < 30; step++ {
		at := sim.Time(step+1) * 10 * sim.Second
		e.Schedule(at, func() {
			if len(ids) > 0 {
				victim := ids[r.Intn(len(ids))]
				o.Leave(victim)
			}
			ids = append(ids, o.Join(rate*(0.5+2*r.Float64())))
		})
	}
	e.Run(320 * sim.Second)
	ci := o.Continuity()
	if ci >= 0.995 {
		t.Fatalf("churned tree continuity %v suspiciously perfect", ci)
	}
	if ci < 0.3 {
		t.Fatalf("churned tree continuity %v implausibly bad", ci)
	}
}

func TestDepthsAndCounts(t *testing.T) {
	o, e := newOverlay(t)
	const rate = 768e3
	for i := 0; i < 10; i++ {
		o.Join(2 * rate)
	}
	e.Run(5 * sim.Second)
	if o.ActiveCount() != 10 {
		t.Fatalf("active %d", o.ActiveCount())
	}
	depths := o.Depths()
	if len(depths) != 10 {
		t.Fatalf("depths %v", depths)
	}
	for _, d := range depths {
		if d < 1 {
			t.Fatalf("invalid depth %d", d)
		}
	}
	// Leave of unknown/duplicate IDs is safe.
	o.Leave(0)
	o.Leave(999)
	o.Leave(1)
	o.Leave(1)
}

func TestContinuityEmptyTree(t *testing.T) {
	o, _ := newOverlay(t)
	if o.Continuity() != 1 {
		t.Fatal("empty tree continuity != 1")
	}
}
