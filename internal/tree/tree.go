// Package tree implements the comparison baseline the paper positions
// data-driven streaming against (§II): single-tree overlay multicast.
// Each peer receives the whole stream from exactly one parent; a
// departure orphans the entire subtree, which must re-attach before
// playback resumes. The ablation experiment E11 runs this baseline
// under the same churn as the Coolstreaming mesh and compares
// delivered continuity.
//
// The model is deliberately favourable to the tree: re-attachment is
// centrally coordinated (no gossip search), capacity-aware, and takes
// a fixed repair delay. Even so, subtree-wide disruption under churn
// is structural, which is the paper's argument.
package tree

import (
	"fmt"
	"sort"

	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

// Params configures the tree baseline.
type Params struct {
	// StreamRateBps is the full stream rate R.
	StreamRateBps float64
	// RepairDelay is the time an orphaned peer needs to re-attach.
	RepairDelay sim.Time
	// BufferSeconds is the playout buffer that absorbs outages shorter
	// than itself.
	BufferSeconds float64
	// RootDegree is the source's fan-out capacity (children).
	RootDegree int
}

// DefaultParams mirrors the mesh experiments' setting.
func DefaultParams() Params {
	return Params{
		StreamRateBps: 768e3,
		RepairDelay:   5 * sim.Second,
		BufferSeconds: 10,
		RootDegree:    64,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.StreamRateBps <= 0 {
		return fmt.Errorf("tree: rate %v", p.StreamRateBps)
	}
	if p.RepairDelay < 0 {
		return fmt.Errorf("tree: repair delay %v", p.RepairDelay)
	}
	if p.BufferSeconds < 0 {
		return fmt.Errorf("tree: buffer %v", p.BufferSeconds)
	}
	if p.RootDegree < 1 {
		return fmt.Errorf("tree: root degree %d", p.RootDegree)
	}
	return nil
}

// node is one tree participant.
type node struct {
	id       int
	alive    bool
	parent   int // -1 for the root, -2 when orphaned
	children []int
	degree   int // max children this node's upload supports
	// connected tracks whether a path to the root exists.
	connected bool
	// slack is the playout buffer currently absorbing an outage, in
	// seconds of stream remaining.
	slack float64
	// repairAt is when a pending re-attach completes (0 = none).
	repairAt sim.Time
	// accounting
	lostSeconds  float64
	totalSeconds float64
}

const (
	parentRoot     = -1
	parentOrphaned = -2
)

// Overlay is the single-tree system.
type Overlay struct {
	P      Params
	Engine *sim.Engine
	rng    *xrand.RNG
	nodes  []*node
	active []int
	// Repairs counts completed re-attachments (churn cost metric).
	Repairs int
	// Rejections counts joins/repairs that found no spare capacity.
	Rejections int
}

// NewOverlay builds a tree overlay with its root (the source) in
// place, registering its tick on the engine.
func NewOverlay(p Params, engine *sim.Engine, seed uint64) (*Overlay, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if engine == nil {
		return nil, fmt.Errorf("tree: nil engine")
	}
	o := &Overlay{P: p, Engine: engine, rng: xrand.New(seed)}
	root := &node{id: 0, alive: true, parent: parentRoot, degree: p.RootDegree, connected: true}
	o.nodes = append(o.nodes, root)
	o.active = append(o.active, 0)
	engine.OnTick(o.tick)
	return o, nil
}

// Join adds a peer whose upload capacity supports floor(upload/R)
// children, attaching it to a random node with spare degree. It
// returns the new node ID, or -1 when the tree has no spare capacity
// (the join is rejected — trees, unlike meshes, have a hard fan-out
// limit).
func (o *Overlay) Join(uploadBps float64) int {
	id := len(o.nodes)
	n := &node{
		id:     id,
		alive:  true,
		parent: parentOrphaned,
		degree: int(uploadBps / o.P.StreamRateBps),
		slack:  o.P.BufferSeconds,
	}
	o.nodes = append(o.nodes, n)
	o.active = append(o.active, id)
	if !o.attach(n) {
		o.Rejections++
		// The peer stays, orphaned, and retries on repair cadence.
		n.repairAt = o.Engine.Now() + o.P.RepairDelay
		return id
	}
	return id
}

// attach connects n under a random spare-capacity node. Returns false
// when no host exists.
func (o *Overlay) attach(n *node) bool {
	var hosts []int
	for _, id := range o.active {
		h := o.nodes[id]
		if h.alive && h.connected && h.id != n.id && len(h.children) < h.degree {
			hosts = append(hosts, id)
		}
	}
	if len(hosts) == 0 {
		return false
	}
	host := o.nodes[hosts[o.rng.Intn(len(hosts))]]
	host.children = append(host.children, n.id)
	n.parent = host.id
	n.connected = true
	n.repairAt = 0
	return true
}

// Leave removes a peer; its whole subtree is orphaned and scheduled
// for repair — the structural weakness of single-tree multicast.
func (o *Overlay) Leave(id int) {
	if id <= 0 || id >= len(o.nodes) {
		return
	}
	n := o.nodes[id]
	if !n.alive {
		return
	}
	n.alive = false
	o.removeActive(id)
	if n.parent >= 0 {
		p := o.nodes[n.parent]
		for i, c := range p.children {
			if c == id {
				p.children = append(p.children[:i], p.children[i+1:]...)
				break
			}
		}
	}
	now := o.Engine.Now()
	// Orphan children; each child root re-attaches independently after
	// the repair delay (its own subtree stays connected *to it* and
	// suffers the same outage).
	for _, c := range n.children {
		child := o.nodes[c]
		child.parent = parentOrphaned
		child.repairAt = now + o.P.RepairDelay
	}
	n.children = nil
}

func (o *Overlay) removeActive(id int) {
	i := sort.SearchInts(o.active, id)
	if i < len(o.active) && o.active[i] == id {
		o.active = append(o.active[:i], o.active[i+1:]...)
	}
}

// tick propagates connectivity, completes repairs, and accounts
// delivered vs lost stream time.
func (o *Overlay) tick(prev, now sim.Time) {
	dt := (now - prev).Seconds()
	if dt <= 0 {
		return
	}
	// Complete due repairs (deterministic ID order).
	for _, id := range o.active {
		n := o.nodes[id]
		if n.alive && n.parent == parentOrphaned && n.repairAt > 0 && now >= n.repairAt {
			if o.attach(n) {
				o.Repairs++
			} else {
				o.Rejections++
				n.repairAt = now + o.P.RepairDelay
			}
		}
	}
	// Recompute connectivity from the root.
	for _, id := range o.active {
		o.nodes[id].connected = false
	}
	o.nodes[0].connected = true
	var walk func(id int)
	walk = func(id int) {
		for _, c := range o.nodes[id].children {
			child := o.nodes[c]
			if child.alive && !child.connected {
				child.connected = true
				walk(c)
			}
		}
	}
	walk(0)
	// Account stream delivery.
	for _, id := range o.active {
		n := o.nodes[id]
		if id == 0 || !n.alive {
			continue
		}
		n.totalSeconds += dt
		if n.connected {
			// Refill playout slack.
			n.slack += dt * 0.1 // slow refill: 10% overhead headroom
			if n.slack > o.P.BufferSeconds {
				n.slack = o.P.BufferSeconds
			}
			continue
		}
		// Outage: drain slack first, then lose stream time.
		if n.slack >= dt {
			n.slack -= dt
			continue
		}
		n.lostSeconds += dt - n.slack
		n.slack = 0
	}
}

// Continuity returns the aggregate delivered fraction across all peers
// (excluding the root): 1 - lost/total.
func (o *Overlay) Continuity() float64 {
	var lost, total float64
	for _, n := range o.nodes[1:] {
		lost += n.lostSeconds
		total += n.totalSeconds
	}
	if total == 0 {
		return 1
	}
	return 1 - lost/total
}

// Depths returns each connected peer's depth below the root.
func (o *Overlay) Depths() []int {
	depth := map[int]int{0: 0}
	queue := []int{0}
	var out []int
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, c := range o.nodes[id].children {
			if o.nodes[c].alive {
				depth[c] = depth[id] + 1
				out = append(out, depth[c])
				queue = append(queue, c)
			}
		}
	}
	sort.Ints(out)
	return out
}

// ActiveCount returns the number of live peers (excluding the root).
func (o *Overlay) ActiveCount() int { return len(o.active) - 1 }

// ConnectedCount returns how many live peers currently have a path to
// the root.
func (o *Overlay) ConnectedCount() int {
	n := 0
	for _, id := range o.active {
		if id != 0 && o.nodes[id].connected {
			n++
		}
	}
	return n
}
