package sim

import "testing"

func BenchmarkQueuePushPop(b *testing.B) {
	var q Queue
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(Time(i%1000), nil)
		if q.Len() > 512 {
			q.Pop()
		}
	}
}

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine(Hour) // ticks out of the way
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < b.N {
			e.After(Millisecond, chain)
		}
	}
	e.Schedule(0, chain)
	b.ResetTimer()
	e.Run(Time(b.N+1) * Millisecond)
	if count != b.N {
		b.Fatalf("ran %d of %d events", count, b.N)
	}
}

func BenchmarkParallelSmallShards(b *testing.B) {
	data := make([]float64, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parallel(len(data), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j] += 1
			}
		})
	}
}

func BenchmarkParallelReduceSum(b *testing.B) {
	const n = 4096
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelReduce(n, func(lo, hi int) int64 {
			var s int64
			for j := lo; j < hi; j++ {
				s += int64(j)
			}
			return s
		}, func(a, c int64) int64 { return a + c })
	}
}
