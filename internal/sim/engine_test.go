package sim

import (
	"testing"
)

func TestEngineEventsAndTicksInterleave(t *testing.T) {
	e := NewEngine(10)
	var trace []string
	e.OnTick(func(prev, now Time) {
		trace = append(trace, "tick@"+now.String())
	})
	e.Schedule(5, func() { trace = append(trace, "ev@"+e.Now().String()) })
	e.Schedule(10, func() { trace = append(trace, "ev10") }) // fires before tick callbacks at t=10
	e.Run(25)
	want := []string{"ev@00:00:00.005", "ev10", "tick@00:00:00.010", "tick@00:00:00.020"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %q, want %q (full: %v)", i, trace[i], want[i], trace)
		}
	}
	if e.Now() != 25 {
		t.Fatalf("final clock %v", e.Now())
	}
}

func TestEngineRunResumable(t *testing.T) {
	e := NewEngine(10)
	ticks := 0
	e.OnTick(func(_, _ Time) { ticks++ })
	e.Run(15)
	if ticks != 1 {
		t.Fatalf("ticks after first run = %d", ticks)
	}
	e.Run(40)
	if ticks != 4 {
		t.Fatalf("ticks after second run = %d", ticks)
	}
}

func TestEngineEventSchedulesEvent(t *testing.T) {
	e := NewEngine(100)
	var at Time
	e.Schedule(5, func() {
		e.After(7, func() { at = e.Now() })
	})
	e.Run(50)
	if at != 12 {
		t.Fatalf("chained event at %v, want 12", at)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(10)
	count := 0
	e.OnTick(func(_, _ Time) {
		count++
		if count == 3 {
			e.Stop()
		}
	})
	e.Run(1000)
	if count != 3 {
		t.Fatalf("ticks = %d, want 3 (Stop ignored)", count)
	}
	// Run again resumes.
	e.Run(1000)
	if count <= 3 {
		t.Fatal("engine did not resume after Stop")
	}
}

func TestEnginePanicsOnPastScheduling(t *testing.T) {
	e := NewEngine(10)
	e.Schedule(50, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(10, func() {})
	})
	e.Run(100)
}

func TestEnginePanicsOnBadConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine(0) did not panic")
		}
	}()
	NewEngine(0)
}

func TestEngineCancelPendingEvent(t *testing.T) {
	e := NewEngine(10)
	fired := false
	ev := e.Schedule(30, func() { fired = true })
	e.Schedule(20, func() { e.Cancel(ev) })
	e.Run(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineTickIntervals(t *testing.T) {
	e := NewEngine(25)
	var intervals [][2]Time
	e.OnTick(func(prev, now Time) { intervals = append(intervals, [2]Time{prev, now}) })
	e.Run(100)
	want := [][2]Time{{0, 25}, {25, 50}, {50, 75}, {75, 100}}
	if len(intervals) != len(want) {
		t.Fatalf("intervals %v", intervals)
	}
	for i := range want {
		if intervals[i] != want[i] {
			t.Fatalf("interval[%d] = %v, want %v", i, intervals[i], want[i])
		}
	}
}

func TestEngineManyEventsDeterministic(t *testing.T) {
	run := func() []Time {
		e := NewEngine(7)
		var seen []Time
		for i := 0; i < 100; i++ {
			at := Time((i * 13) % 90)
			e.Schedule(at, func() { seen = append(seen, e.Now()) })
		}
		e.Run(90)
		return seen
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 100 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic event order")
		}
	}
}
