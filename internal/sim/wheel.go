package sim

// Wheel is a bucketed timing wheel over the engine's tick grid, built
// for due-driven control scheduling: callers enqueue integer IDs at
// absolute virtual due times, and each tick drains every ID whose due
// time has arrived. It converts an O(population) per-tick sweep into
// O(due work).
//
// Design:
//
//   - Buckets are one tick period wide. Bucket i of the ring holds the
//     IDs due at base + i*tick, where base is the earliest undrained
//     tick. The ring spans `span = len(buckets)` ticks.
//   - Dues beyond the ring land in a single overflow list with a
//     tracked minimum; as the ring advances past overflowMin the list
//     is re-filed into buckets (amortised: each entry migrates at most
//     ⌈horizon/span⌉ times, once per full ring revolution).
//   - Dues in the past (or between ticks) are clamped forward to base,
//     the next tick that will drain — a wheel cannot act between ticks,
//     and the engine fires same-timestamp events before the tick, so a
//     clamp to base never loses a deadline.
//   - The wheel never deduplicates: an ID scheduled twice pops twice.
//     Callers that need exactly-once semantics deduplicate the drained
//     set (it arrives bucket-ordered, not sorted).
//
// The wheel is deliberately value-oriented and allocation-light: bucket
// storage and the drain output are reused across ticks, so a
// steady-state schedule/drain cycle allocates nothing.
type Wheel struct {
	tick Time
	base Time // due time of buckets[cur]; earliest undrained tick
	cur  int  // ring index of base
	mask int  // len(buckets)-1; len is a power of two

	buckets  [][]int32
	overflow []wheelEntry
	// overflowMin is the smallest due time in overflow; meaningless
	// when overflow is empty.
	overflowMin Time
}

type wheelEntry struct {
	id int32
	at Time
}

// NewWheel creates a wheel with the given tick period and at least
// minBuckets ring slots (rounded up to a power of two). The first
// drainable tick is firstTick; schedule times before it clamp forward.
func NewWheel(tick Time, minBuckets int, firstTick Time) *Wheel {
	if tick <= 0 {
		panic("sim: non-positive wheel tick")
	}
	if minBuckets < 1 {
		minBuckets = 1
	}
	n := 1
	for n < minBuckets {
		n <<= 1
	}
	return &Wheel{
		tick:    tick,
		base:    firstTick,
		buckets: make([][]int32, n),
		mask:    n - 1,
	}
}

// Span returns the ring width in ticks.
func (w *Wheel) Span() int { return w.mask + 1 }

// Base returns the earliest undrained tick time.
func (w *Wheel) Base() Time { return w.base }

// Schedule enqueues id to pop at the first drained tick ≥ at. Times in
// the past clamp to the next undrained tick.
func (w *Wheel) Schedule(id int, at Time) {
	if at < w.base {
		at = w.base
	}
	slots := Time(w.mask + 1)
	d := (at - w.base + w.tick - 1) / w.tick // ticks ahead, rounded up
	if d >= slots {
		if len(w.overflow) == 0 || at < w.overflowMin {
			w.overflowMin = at
		}
		w.overflow = append(w.overflow, wheelEntry{id: int32(id), at: at})
		return
	}
	idx := (w.cur + int(d)) & w.mask
	w.buckets[idx] = append(w.buckets[idx], int32(id))
}

// DrainTo appends to out every ID scheduled at or before now, advancing
// the ring, and returns the extended slice. IDs arrive in bucket order
// with duplicates preserved; callers sort/deduplicate as needed.
func (w *Wheel) DrainTo(now Time, out []int32) []int32 {
	for w.base <= now {
		b := w.buckets[w.cur]
		out = append(out, b...)
		w.buckets[w.cur] = b[:0]
		w.base += w.tick
		w.cur = (w.cur + 1) & w.mask
		w.refileOverflow()
	}
	return out
}

// refileOverflow moves overflow entries that now fit the ring into
// their buckets. Called once per ring step; skips in O(1) unless the
// window has actually reached the overflow minimum.
func (w *Wheel) refileOverflow() {
	if len(w.overflow) == 0 {
		return
	}
	// lastSlot is the latest due time the ring can hold: Schedule files
	// entries with ceil((at-base)/tick) ≤ mask into buckets. Using the
	// exact same boundary here guarantees a refiled entry never bounces
	// back into the overflow list mid-iteration.
	lastSlot := w.base + Time(w.mask)*w.tick
	if w.overflowMin > lastSlot {
		return
	}
	kept := w.overflow[:0]
	min := Time(0)
	for _, e := range w.overflow {
		if e.at <= lastSlot {
			w.Schedule(int(e.id), e.at)
			continue
		}
		if len(kept) == 0 || e.at < min {
			min = e.at
		}
		kept = append(kept, e)
	}
	w.overflow = kept
	w.overflowMin = min
}

// Pending returns the total number of queued entries (ring plus
// overflow), counting duplicates.
func (w *Wheel) Pending() int {
	n := len(w.overflow)
	for _, b := range w.buckets {
		n += len(b)
	}
	return n
}
