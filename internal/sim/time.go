// Package sim provides the discrete-event simulation kernel: a virtual
// clock, a deterministic event queue, a tick-driven engine, and a
// deterministic parallel stage runner.
//
// The Coolstreaming reproduction uses a hybrid model: continuous
// (fluid) stream-transfer state advances between fixed control ticks,
// while discrete events (peer joins, leaves, status reports, program
// boundaries) are scheduled on the event queue. The paper's own
// dynamics analysis (Eqs. 3-6) is a fluid model, so this hybrid is the
// natural — and tractable — simulation discipline for populations of
// thousands of peers over hours of virtual time.
package sim

import (
	"fmt"
	"time"
)

// Time is virtual simulation time in milliseconds since the start of
// the run. It is an integer type so that event ordering is exact and
// reproducible; durations shorter than 1 ms do not occur in this model.
type Time int64

// Common virtual durations.
const (
	Millisecond Time = 1
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Seconds returns the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts to a time.Duration for formatting.
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Millisecond }

// String formats the virtual time as HH:MM:SS.mmm.
func (t Time) String() string {
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	h := t / Hour
	m := (t % Hour) / Minute
	s := (t % Minute) / Second
	ms := t % Second
	if ms == 0 {
		return fmt.Sprintf("%s%02d:%02d:%02d", neg, h, m, s)
	}
	return fmt.Sprintf("%s%02d:%02d:%02d.%03d", neg, h, m, s, ms)
}

// FromSeconds converts a float64 number of seconds to a Time, rounding
// to the nearest millisecond.
func FromSeconds(s float64) Time { return Time(s*1000 + 0.5) }
