package sim

import (
	"sort"
	"testing"

	"coolstream/internal/xrand"
)

func drainSorted(w *Wheel, now Time) []int {
	out := w.DrainTo(now, nil)
	ids := make([]int, len(out))
	for i, v := range out {
		ids[i] = int(v)
	}
	sort.Ints(ids)
	return ids
}

func TestWheelBasicOrder(t *testing.T) {
	w := NewWheel(Second, 8, 0)
	w.Schedule(3, 2*Second)
	w.Schedule(1, 0)
	w.Schedule(2, Second)
	if got := drainSorted(w, 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("tick 0 drained %v", got)
	}
	if got := drainSorted(w, Second); len(got) != 1 || got[0] != 2 {
		t.Fatalf("tick 1 drained %v", got)
	}
	if got := drainSorted(w, 2*Second); len(got) != 1 || got[0] != 3 {
		t.Fatalf("tick 2 drained %v", got)
	}
	if w.Pending() != 0 {
		t.Fatalf("pending %d after full drain", w.Pending())
	}
}

func TestWheelClampsPastAndMidTick(t *testing.T) {
	w := NewWheel(Second, 8, 0)
	w.DrainTo(3*Second, nil) // base now 4s
	w.Schedule(1, Second)    // in the past: clamps to base
	w.Schedule(2, 4*Second+300*Millisecond)
	if got := drainSorted(w, 4*Second); len(got) != 1 || got[0] != 1 {
		t.Fatalf("clamped-past drain %v", got)
	}
	// 4.3s rounds up to the 5s tick.
	if got := drainSorted(w, 5*Second); len(got) != 1 || got[0] != 2 {
		t.Fatalf("mid-tick drain %v", got)
	}
}

func TestWheelBucketOverflowToList(t *testing.T) {
	w := NewWheel(Second, 4, 0) // 4-slot ring
	// Everything at or past base+4s must go to the overflow list.
	w.Schedule(10, 4*Second)
	w.Schedule(11, 100*Second)
	w.Schedule(12, 5*Second)
	if len(w.overflow) != 3 {
		t.Fatalf("overflow holds %d entries, want 3", len(w.overflow))
	}
	var got []int
	for tick := Time(0); tick <= 6*Second; tick += Second {
		for _, v := range w.DrainTo(tick, nil) {
			got = append(got, int(v))
		}
	}
	sort.Ints(got)
	if len(got) != 2 || got[0] != 10 || got[1] != 12 {
		t.Fatalf("drained %v by 6s, want [10 12]", got)
	}
	if got := drainSorted(w, 100*Second); len(got) != 1 || got[0] != 11 {
		t.Fatalf("far-future entry drained %v", got)
	}
}

func TestWheelFarFutureSurvivesManyRevolutions(t *testing.T) {
	w := NewWheel(Second, 4, 0)
	const far = 1000 * Second // 250 ring revolutions out
	w.Schedule(7, far)
	for tick := Time(0); tick < far; tick += Second {
		if out := w.DrainTo(tick, nil); len(out) != 0 {
			t.Fatalf("ID popped early at %v", tick)
		}
	}
	if got := drainSorted(w, far); len(got) != 1 || got[0] != 7 {
		t.Fatalf("far-future drain %v", got)
	}
}

func TestWheelDuplicatesPreserved(t *testing.T) {
	w := NewWheel(Second, 8, 0)
	w.Schedule(5, Second)
	w.Schedule(5, Second)
	w.Schedule(5, 2*Second)
	if got := drainSorted(w, Second); len(got) != 2 {
		t.Fatalf("want duplicate pops, got %v", got)
	}
	if got := drainSorted(w, 2*Second); len(got) != 1 {
		t.Fatalf("third pop %v", got)
	}
}

// TestWheelRescheduleWhileDue pins the drain/schedule interleaving the
// control plane relies on: once a tick has been drained, scheduling
// "at now" lands in the NEXT tick, never in the already-drained one.
func TestWheelRescheduleWhileDue(t *testing.T) {
	w := NewWheel(Second, 8, 0)
	w.Schedule(1, 5*Second)
	got := drainSorted(w, 5*Second)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("drain %v", got)
	}
	// Mid-visit self-reschedule at the same timestamp.
	w.Schedule(1, 5*Second)
	if out := w.DrainTo(5*Second, nil); len(out) != 0 {
		t.Fatal("re-drained the same tick")
	}
	if got := drainSorted(w, 6*Second); len(got) != 1 || got[0] != 1 {
		t.Fatalf("next-tick drain %v", got)
	}
}

// TestWheelMatchesReferenceModel drives random schedules against a
// naive (time → IDs) map and checks every drained tick's multiset.
func TestWheelMatchesReferenceModel(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 20; trial++ {
		w := NewWheel(Second, 16, 0)
		model := map[Time][]int{}
		now := Time(0)
		nextID := 0
		for step := 0; step < 400; step++ {
			switch rng.Intn(3) {
			case 0, 1: // schedule a batch
				for k := rng.Intn(4); k >= 0; k-- {
					at := now + Time(rng.Intn(120))*Second
					if rng.Bool(0.1) {
						at += Time(rng.Intn(900)) * Millisecond
					}
					id := nextID
					nextID++
					w.Schedule(id, at)
					// The model clamps exactly like the wheel: next
					// drained tick ≥ at.
					due := at
					if due < now {
						due = now
					}
					due = ((due + Second - 1) / Second) * Second
					model[due] = append(model[due], id)
				}
			case 2: // advance one tick and drain
				got := drainSorted(w, now)
				want := append([]int(nil), model[now]...)
				sort.Ints(want)
				delete(model, now)
				if len(got) != len(want) {
					t.Fatalf("trial %d tick %v: drained %v want %v", trial, now, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d tick %v: drained %v want %v", trial, now, got, want)
					}
				}
				now += Second
			}
		}
	}
}
