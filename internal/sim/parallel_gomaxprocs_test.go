package sim

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestParallelMultiWorker forces GOMAXPROCS above 1 so the goroutine
// fan-out path runs even on single-CPU machines.
func TestParallelMultiWorker(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	const n = 10000
	marks := make([]int32, n)
	Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&marks[i], 1)
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times", i, m)
		}
	}
}

// TestParallelReduceMultiWorkerDeterministic checks that the shard
// merge order is stable under real concurrency.
func TestParallelReduceMultiWorkerDeterministic(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	run := func() string {
		return ParallelReduce(5000, func(lo, hi int) string {
			return string(rune('a' + lo%26))
		}, func(a, b string) string { return a + b })
	}
	first := run()
	for i := 0; i < 10; i++ {
		if run() != first {
			t.Fatal("merge order unstable under concurrency")
		}
	}
	if first == "" {
		t.Fatal("empty reduction")
	}
}

// TestWorldScaleDeterminismAcrossGOMAXPROCS is in internal/peer; here
// we check the kernel primitive: a reduction whose shards race on a
// shared accumulator WOULD be nondeterministic, so the library's
// shard-local contract is what guarantees stability. This test
// documents the contract by exercising disjoint writes.
func TestParallelDisjointWritesStable(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	const n = 4096
	a := make([]float64, n)
	for round := 0; round < 5; round++ {
		Parallel(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a[i] = float64(i) * 1.5
			}
		})
	}
	for i := range a {
		if a[i] != float64(i)*1.5 {
			t.Fatalf("a[%d] = %v", i, a[i])
		}
	}
}
