package sim

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 128, 1000, 4097} {
		marks := make([]int32, n)
		Parallel(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		})
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, m)
			}
		}
	}
}

func TestParallelReduceSum(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw % 5000)
		got := ParallelReduce(n, func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			return s
		}, func(a, b int64) int64 { return a + b })
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParallelReduceOrderedMerge(t *testing.T) {
	// Merge is string concatenation — only deterministic if partials
	// fold in shard order.
	n := 10000
	got := ParallelReduce(n, func(lo, hi int) string {
		return "["
	}, func(a, b string) string { return a + b })
	want := got
	for i := 0; i < 5; i++ {
		again := ParallelReduce(n, func(lo, hi int) string {
			return "["
		}, func(a, b string) string { return a + b })
		if again != want {
			t.Fatal("ParallelReduce merge order unstable")
		}
	}
}

func TestParallelZeroAndNegative(t *testing.T) {
	called := false
	Parallel(0, func(lo, hi int) { called = true })
	Parallel(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("Parallel called fn for n <= 0")
	}
	if ParallelReduce(0, func(lo, hi int) int { return 1 }, func(a, b int) int { return a + b }) != 0 {
		t.Fatal("ParallelReduce n=0 not zero value")
	}
}
