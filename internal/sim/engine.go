package sim

import "fmt"

// TickFunc is invoked at every control tick with the interval
// [prev, now] that has just elapsed in virtual time.
type TickFunc func(prev, now Time)

// Engine drives virtual time forward, interleaving discrete events
// with fixed-period control ticks. All callbacks run on the caller's
// goroutine; parallelism inside a tick is the callback's business
// (see Parallel).
type Engine struct {
	now      Time
	q        Queue
	tick     Time
	tickFns  []TickFunc
	lastTick Time
	stopped  bool
}

// NewEngine creates an engine with the given control-tick period.
// tick must be positive.
func NewEngine(tick Time) *Engine {
	if tick <= 0 {
		panic(fmt.Sprintf("sim: non-positive tick %d", tick))
	}
	return &Engine{tick: tick}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// TickPeriod returns the control-tick period.
func (e *Engine) TickPeriod() Time { return e.tick }

// Schedule runs fn at the absolute virtual time at. Scheduling in the
// past (at < Now) panics: it would silently reorder causality.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	return e.q.Push(at, fn)
}

// After runs fn after delay d (non-negative) from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.Schedule(e.now+d, fn)
}

// ScheduleCall runs fn(p) at the absolute virtual time at. fn is
// typically a long-lived method value, so hot paths schedule without
// allocating a per-event closure.
func (e *Engine) ScheduleCall(at Time, fn func(EvPayload), p EvPayload) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	return e.q.PushCall(at, fn, p)
}

// AfterCall runs fn(p) after delay d (non-negative) from now.
func (e *Engine) AfterCall(d Time, fn func(EvPayload), p EvPayload) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.ScheduleCall(e.now+d, fn, p)
}

// Cancel removes a pending event.
func (e *Engine) Cancel(ev *Event) { e.q.Cancel(ev) }

// CancelRelease cancels a pending event and recycles its struct; the
// caller must hold the sole handle and drop it immediately (see
// Queue.CancelRelease).
func (e *Engine) CancelRelease(ev *Event) { e.q.CancelRelease(ev) }

// OnTick registers a control-tick callback. Callbacks run in
// registration order at each tick boundary.
func (e *Engine) OnTick(fn TickFunc) { e.tickFns = append(e.tickFns, fn) }

// Stop makes Run return after the current event or tick completes.
func (e *Engine) Stop() { e.stopped = true }

// Run advances virtual time until `until`, firing events and ticks in
// timestamp order. Events scheduled exactly on a tick boundary fire
// before that tick's callbacks (join events take effect in the tick
// that follows them). Run may be called repeatedly with increasing
// horizons.
func (e *Engine) Run(until Time) {
	if until < e.now {
		panic(fmt.Sprintf("sim: Run(%v) before now %v", until, e.now))
	}
	e.stopped = false
	for !e.stopped {
		nextTick := e.lastTick + e.tick
		nextEv := e.q.Peek()

		// Decide what happens next: an event, a tick, or the horizon.
		evAt := until + 1
		if nextEv != nil {
			evAt = nextEv.At
		}
		switch {
		case evAt <= nextTick && evAt <= until:
			ev := e.q.Pop()
			e.now = ev.At
			ev.fire()
			// The callback has run and, by the handle contract (see
			// Queue.Release), no live reference to ev remains — recycle
			// the struct so steady-state event churn allocates nothing.
			e.q.Release(ev)
		case nextTick <= until:
			e.now = nextTick
			prev := e.lastTick
			e.lastTick = nextTick
			for _, fn := range e.tickFns {
				fn(prev, nextTick)
			}
		default:
			// Nothing left before the horizon; settle the clock there.
			if e.now < until {
				e.now = until
			}
			return
		}
	}
}

// Pending returns the number of scheduled (unfired) events.
func (e *Engine) Pending() int { return e.q.Len() }
