package sim

import (
	"testing"
	"time"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "00:00:00"},
		{Second, "00:00:01"},
		{90 * Minute, "01:30:00"},
		{22*Hour + 15*Minute + 3*Second, "22:15:03"},
		{1234, "00:00:01.234"},
		{-Second, "-00:00:01"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestTimeSecondsRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 0.001, 1, 59.999, 3600} {
		got := FromSeconds(s).Seconds()
		if got != s {
			t.Errorf("FromSeconds(%v).Seconds() = %v", s, got)
		}
	}
}

func TestTimeDuration(t *testing.T) {
	if (2 * Second).Duration() != 2*time.Second {
		t.Fatal("Duration conversion wrong")
	}
}
