package sim

import (
	"testing"

	"coolstream/internal/xrand"
)

func TestQueueOrdering(t *testing.T) {
	var q Queue
	var fired []int
	q.Push(30, func() { fired = append(fired, 3) })
	q.Push(10, func() { fired = append(fired, 1) })
	q.Push(20, func() { fired = append(fired, 2) })
	for q.Len() > 0 {
		q.Pop().Fn()
	}
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fired order %v", fired)
	}
}

func TestQueueFIFOAtEqualTimes(t *testing.T) {
	var q Queue
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.Push(5, func() { fired = append(fired, i) })
	}
	for q.Len() > 0 {
		q.Pop().Fn()
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("equal-time events out of order: %v", fired)
		}
	}
}

func TestQueueCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.Push(10, func() { fired = true })
	q.Push(20, func() {})
	q.Cancel(e)
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	for q.Len() > 0 {
		q.Pop().Fn()
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel and nil cancel are no-ops.
	q.Cancel(e)
	q.Cancel(nil)
}

func TestQueuePeek(t *testing.T) {
	var q Queue
	if q.Peek() != nil {
		t.Fatal("empty Peek not nil")
	}
	q.Push(7, func() {})
	if q.Peek().At != 7 {
		t.Fatal("Peek wrong event")
	}
	if q.Len() != 1 {
		t.Fatal("Peek consumed event")
	}
}

func TestQueueRandomisedOrdering(t *testing.T) {
	r := xrand.New(99)
	var q Queue
	const n = 2000
	times := make([]Time, n)
	for i := range times {
		times[i] = Time(r.Intn(500))
		q.Push(times[i], nil)
	}
	var prev Time = -1
	for q.Len() > 0 {
		e := q.Pop()
		if e.At < prev {
			t.Fatalf("heap violated ordering: %d after %d", e.At, prev)
		}
		prev = e.At
	}
}

func TestQueueCancelMiddleKeepsHeapValid(t *testing.T) {
	var q Queue
	var evs []*Event
	for i := 0; i < 100; i++ {
		evs = append(evs, q.Push(Time(i%17), nil))
	}
	r := xrand.New(5)
	for i := 0; i < 40; i++ {
		q.Cancel(evs[r.Intn(len(evs))])
	}
	var prev Time = -1
	for q.Len() > 0 {
		e := q.Pop()
		if e.At < prev {
			t.Fatal("ordering violated after cancels")
		}
		prev = e.At
	}
}
