package sim

import (
	"runtime"
	"sync"
	"testing"
)

// TestPoolGoroutineCountStable verifies the persistent-pool property:
// after a warm-up call has grown the pool, repeated Parallel calls
// spawn no further goroutines.
func TestPoolGoroutineCountStable(t *testing.T) {
	if runtime.GOMAXPROCS(0) == 1 {
		t.Skip("single-proc: Parallel runs inline, no pool to observe")
	}
	work := make([]int, 4096)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			work[i]++
		}
	}
	Parallel(len(work), body) // warm up: pool grows to GOMAXPROCS-ish
	before := runtime.NumGoroutine()
	for iter := 0; iter < 500; iter++ {
		Parallel(len(work), body)
	}
	after := runtime.NumGoroutine()
	// Concurrent tests may add goroutines of their own; what must not
	// happen is growth proportional to the 500 calls.
	if after > before+8 {
		t.Fatalf("goroutines grew from %d to %d over 500 Parallel calls", before, after)
	}
	for i, v := range work {
		if v != 501 {
			t.Fatalf("index %d covered %d times, want 501", i, v)
		}
	}
}

// TestNestedParallelNoDeadlock pins the non-blocking submission design:
// Parallel calls issued from inside a Parallel shard must complete even
// when every pool worker is busy (inner shards degrade to inline runs).
func TestNestedParallelNoDeadlock(t *testing.T) {
	outer := make([]int, 1024)
	Parallel(len(outer), func(lo, hi int) {
		inner := make([]int, 512)
		Parallel(len(inner), func(ilo, ihi int) {
			for i := ilo; i < ihi; i++ {
				inner[i] = 1
			}
		})
		s := 0
		for _, v := range inner {
			s += v
		}
		for i := lo; i < hi; i++ {
			outer[i] = s
		}
	})
	for i, v := range outer {
		if v != 512 {
			t.Fatalf("outer[%d] = %d, want 512", i, v)
		}
	}
}

// TestConcurrentParallelCallers exercises the shared pool from many
// goroutines at once — the done-channel recycling and non-blocking
// handoff must keep independent calls isolated.
func TestConcurrentParallelCallers(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]int, 2048)
			for iter := 0; iter < 50; iter++ {
				Parallel(len(buf), func(lo, hi int) {
					for i := lo; i < hi; i++ {
						buf[i]++
					}
				})
			}
			for i, v := range buf {
				if v != 50 {
					t.Errorf("buf[%d] = %d, want 50", i, v)
					return
				}
			}
		}()
	}
	wg.Wait()
}
