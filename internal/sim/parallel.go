package sim

import (
	"runtime"
	"sync"
)

// Parallel partitions [0, n) into contiguous shards and runs fn on
// each shard from a pool of GOMAXPROCS workers, then waits for all of
// them. fn(lo, hi) must touch only state owned by indices [lo, hi), so
// the result is independent of scheduling — the simulator stays
// deterministic at any GOMAXPROCS.
//
// For small n the call runs inline to avoid goroutine overhead.
func Parallel(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	const minShard = 64
	if workers == 1 || n < 2*minShard {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelReduce runs fn over shards like Parallel, collecting one
// partial result per shard, and folds the partials in shard order with
// merge so the reduction is deterministic.
func ParallelReduce[T any](n int, fn func(lo, hi int) T, merge func(a, b T) T) T {
	var zero T
	if n <= 0 {
		return zero
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	const minShard = 64
	if workers == 1 || n < 2*minShard {
		return fn(0, n)
	}
	chunk := (n + workers - 1) / workers
	nShards := (n + chunk - 1) / chunk
	partials := make([]T, nShards)
	var wg sync.WaitGroup
	for s := 0; s < nShards; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			partials[s] = fn(lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = merge(acc, p)
	}
	return acc
}
