package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The package keeps one persistent, lazily-started worker pool shared
// by all Parallel/ParallelReduce callers. Steady-state ticks therefore
// spawn zero goroutines: shards are handed to parked workers over an
// unbuffered channel, and the submitting goroutine always executes the
// first shard itself. Determinism is unaffected — shard boundaries
// depend only on (n, GOMAXPROCS), and the contract that fn(lo, hi)
// touches only state owned by [lo, hi) makes results independent of
// which worker runs which shard.
//
// Submission is non-blocking: a shard is handed off only to a worker
// that is already parked in receive; otherwise the caller runs it
// inline. This keeps nested or concurrent Parallel calls deadlock-free
// (a fixed-size pool with blocking submission could have every worker
// waiting on a sub-call's shards).

type shardTask struct {
	fn func(lo, hi int)
	// fnIdx, when non-nil, is invoked instead of fn with the shard's
	// index (see ParallelShard).
	fnIdx  func(shard, lo, hi int)
	shard  int
	lo, hi int
	done   chan<- struct{}
}

var (
	poolMu   sync.Mutex
	poolCh   chan shardTask
	poolSize atomic.Int64
)

// donePool recycles completion channels so a steady-state Parallel
// call performs no allocations. The buffer bounds how far workers can
// run ahead of the caller's drain loop; a smaller buffer would still
// be correct (workers would briefly block on the send), just slower.
var donePool = sync.Pool{New: func() any { return make(chan struct{}, 256) }}

func poolWorker(ch chan shardTask) {
	for t := range ch {
		if t.fnIdx != nil {
			t.fnIdx(t.shard, t.lo, t.hi)
		} else {
			t.fn(t.lo, t.hi)
		}
		t.done <- struct{}{}
	}
}

// ensurePool grows the worker pool to at least `workers` goroutines
// and returns the submission channel. Workers are never torn down;
// they park on channel receive between ticks.
func ensurePool(workers int) chan shardTask {
	if int(poolSize.Load()) >= workers && poolCh != nil {
		return poolCh
	}
	poolMu.Lock()
	if poolCh == nil {
		poolCh = make(chan shardTask)
	}
	for int(poolSize.Load()) < workers {
		go poolWorker(poolCh)
		poolSize.Add(1)
	}
	ch := poolCh
	poolMu.Unlock()
	return ch
}

// runShards executes fn over the chunked shards of [0, n) using the
// persistent pool. The caller's goroutine always runs shard 0 (and any
// shard no worker was free to take) so at least one shard never pays a
// handoff.
func runShards(n, chunk int, fn func(lo, hi int)) {
	nShards := (n + chunk - 1) / chunk
	ch := ensurePool(nShards - 1)
	done := donePool.Get().(chan struct{})
	submitted := 0
	for s := 1; s < nShards; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		select {
		case ch <- shardTask{fn: fn, lo: lo, hi: hi, done: done}:
			submitted++
		default:
			// No parked worker (cold pool, nested call, or contention):
			// degrade gracefully by running the shard inline.
			fn(lo, hi)
		}
	}
	fn(0, chunk)
	for i := 0; i < submitted; i++ {
		<-done
	}
	donePool.Put(done)
}

// runShardsIdx is runShards for shard-indexed functions: shard s (the
// contiguous chunk starting at s*chunk) receives its own index, so a
// worker can address per-shard state (e.g. a log lane) with no
// synchronization. Kept as a separate body rather than a closure over
// runShards so the steady-state call allocates nothing.
func runShardsIdx(n, chunk int, fn func(shard, lo, hi int)) {
	nShards := (n + chunk - 1) / chunk
	ch := ensurePool(nShards - 1)
	done := donePool.Get().(chan struct{})
	submitted := 0
	for s := 1; s < nShards; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		select {
		case ch <- shardTask{fnIdx: fn, shard: s, lo: lo, hi: hi, done: done}:
			submitted++
		default:
			// No parked worker (cold pool, nested call, or contention):
			// degrade gracefully by running the shard inline.
			fn(s, lo, hi)
		}
	}
	fn(0, 0, chunk)
	for i := 0; i < submitted; i++ {
		<-done
	}
	donePool.Put(done)
}

// minShard is the default grain: slices shorter than two grains run
// inline, since per-item work in the simulator's per-node phases is
// too small to amortise a handoff.
const minShard = 64

// Parallel partitions [0, n) into contiguous shards and runs fn on
// each shard from the persistent worker pool sized to GOMAXPROCS, then
// waits for all of them. fn(lo, hi) must touch only state owned by
// indices [lo, hi), so the result is independent of scheduling — the
// simulator stays deterministic at any GOMAXPROCS.
//
// For small n the call runs inline to avoid handoff overhead.
func Parallel(n int, fn func(lo, hi int)) {
	ParallelGrain(n, minShard, fn)
}

// ParallelGrain is Parallel with an explicit inline threshold: the
// call fans out only when n >= 2*grain (and more than one worker is
// available). Use grain 1 for phases whose per-item work is large —
// e.g. one item per sub-stream forest — where even n = 2 is worth a
// handoff.
func ParallelGrain(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers == 1 || n < 2*grain {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	runShards(n, chunk, fn)
}

// ParallelShard is ParallelGrain passing each shard's index to fn.
// Shard indices are contiguous from 0 and deterministic given (n,
// GOMAXPROCS): shard s covers [s*chunk, min((s+1)*chunk, n)). The
// index count never exceeds GOMAXPROCS at call time, so per-shard
// state sized to GOMAXPROCS (grown sequentially between phases) is
// race-free.
func ParallelShard(n, grain int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers == 1 || n < 2*grain {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	runShardsIdx(n, chunk, fn)
}

// ParallelReduce runs fn over shards like Parallel, collecting one
// partial result per shard, and folds the partials in shard order with
// merge so the reduction is deterministic.
func ParallelReduce[T any](n int, fn func(lo, hi int) T, merge func(a, b T) T) T {
	var zero T
	if n <= 0 {
		return zero
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers == 1 || n < 2*minShard {
		return fn(0, n)
	}
	chunk := (n + workers - 1) / workers
	nShards := (n + chunk - 1) / chunk
	partials := make([]T, nShards)
	runShards(n, chunk, func(lo, hi int) {
		partials[lo/chunk] = fn(lo, hi)
	})
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = merge(acc, p)
	}
	return acc
}
