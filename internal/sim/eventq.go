package sim

import "container/heap"

// EvPayload is the inline argument block of a payload event: two
// integer slots and one float slot cover the simulator's hot event
// shapes (node IDs, flags, pre-drawn uniforms) without a per-event
// closure allocation.
type EvPayload struct {
	A, B int
	F    float64
}

// Event is a scheduled callback. Exactly one of Fn and Call is set:
// Fn runs as a plain closure; Call runs with the event's payload, so
// hot paths can stage a long-lived method value once and schedule it
// with per-event arguments instead of allocating a fresh closure.
// Events at equal times fire in scheduling order (FIFO), which keeps
// runs reproducible regardless of heap internals.
type Event struct {
	At   Time
	Fn   func()
	Call func(EvPayload)
	P    EvPayload
	seq  uint64
	idx  int // heap index; -1 once popped, -2 once cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.idx == -2 }

// fire runs the event's callback.
func (e *Event) fire() {
	if e.Fn != nil {
		e.Fn()
		return
	}
	e.Call(e.P)
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Queue is a deterministic priority queue of events. The zero value is
// ready to use. It is not safe for concurrent use; only the engine
// goroutine touches it.
type Queue struct {
	h   eventHeap
	seq uint64
	// free recycles fired Event structs. Only the engine returns
	// events here (via Release, after the callback has run and every
	// live handle to the event has been dropped); cancelled events are
	// never recycled, so a retained handle to one stays inert forever.
	free []*Event
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// alloc returns a zeroed event, reusing a released one when available.
func (q *Queue) alloc() *Event {
	if n := len(q.free); n > 0 {
		e := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return e
	}
	return &Event{}
}

// Push schedules fn at time at and returns the event handle, which can
// be passed to Cancel.
func (q *Queue) Push(at Time, fn func()) *Event {
	q.seq++
	e := q.alloc()
	*e = Event{At: at, Fn: fn, seq: q.seq}
	heap.Push(&q.h, e)
	return e
}

// PushCall schedules fn(p) at time at. fn is typically a long-lived
// method value, so the hot join/handshake paths allocate no closure.
func (q *Queue) PushCall(at Time, fn func(EvPayload), p EvPayload) *Event {
	q.seq++
	e := q.alloc()
	*e = Event{At: at, Call: fn, P: p, seq: q.seq}
	heap.Push(&q.h, e)
	return e
}

// Pop removes and returns the earliest event. It panics on an empty
// queue; callers check Len first.
func (q *Queue) Pop() *Event {
	e := heap.Pop(&q.h).(*Event)
	return e
}

// Peek returns the earliest event without removing it, or nil.
func (q *Queue) Peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Release returns a fired event to the allocation pool. The caller
// must guarantee no live handle to the event remains: the engine calls
// this right after the callback returns, and the simulator's contract
// is that handles are only retained for cancellation of *pending*
// events (handle maps drop their entry before or during the fire).
func (q *Queue) Release(e *Event) {
	if e == nil || e.idx != -1 {
		return // pending, cancelled or already-pooled events stay out
	}
	e.idx = -3 // pooled marker: makes a double Release a no-op
	e.Fn = nil
	e.Call = nil
	e.P = EvPayload{}
	q.free = append(q.free, e)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.idx < 0 {
		return
	}
	heap.Remove(&q.h, e.idx)
	e.idx = -2
}

// CancelRelease cancels a pending event and returns its struct to the
// allocation pool in one step. Unlike Cancel, the caller must drop
// every handle to the event before the next Push: the struct will be
// reissued. Use only when the cancelling site owns the sole handle —
// the simulator's cancellable-timer maps qualify, since they delete
// their entry at the cancel site.
func (q *Queue) CancelRelease(e *Event) {
	if e == nil || e.idx < 0 {
		return
	}
	heap.Remove(&q.h, e.idx)
	e.idx = -1 // fired-equivalent: Release accepts and pools it
	q.Release(e)
}