package sim

import "container/heap"

// Event is a scheduled callback. Fn runs with the engine clock set to
// At. Events at equal times fire in scheduling order (FIFO), which
// keeps runs reproducible regardless of heap internals.
type Event struct {
	At  Time
	Fn  func()
	seq uint64
	idx int // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.idx == -2 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Queue is a deterministic priority queue of events. The zero value is
// ready to use. It is not safe for concurrent use; only the engine
// goroutine touches it.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Push schedules fn at time at and returns the event handle, which can
// be passed to Cancel.
func (q *Queue) Push(at Time, fn func()) *Event {
	q.seq++
	e := &Event{At: at, Fn: fn, seq: q.seq}
	heap.Push(&q.h, e)
	return e
}

// Pop removes and returns the earliest event. It panics on an empty
// queue; callers check Len first.
func (q *Queue) Pop() *Event {
	e := heap.Pop(&q.h).(*Event)
	return e
}

// Peek returns the earliest event without removing it, or nil.
func (q *Queue) Peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.idx < 0 {
		return
	}
	heap.Remove(&q.h, e.idx)
	e.idx = -2
}
