package stats

import (
	"testing"
	"testing/quick"

	"coolstream/internal/xrand"
)

func TestQuantileKnown(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3, 4, 5)
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	var s Sample
	s.AddAll(0, 10)
	if got := s.Quantile(0.5); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
	if got := s.Quantile(0.1); !almostEq(got, 1, 1e-12) {
		t.Fatalf("Quantile(0.1) = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	var s Sample
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty Quantile did not panic")
			}
		}()
		s.Quantile(0.5)
	}()
	s.Add(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range q did not panic")
			}
		}()
		s.Quantile(1.5)
	}()
}

func TestCDFAt(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 2, 3)
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := s.CDFAt(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("CDFAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		var s Sample
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			s.Add(r.NormFloat64() * 100)
		}
		pts := s.CDF(20)
		for i := 1; i < len(pts); i++ {
			if pts[i].P < pts[i-1].P {
				return false
			}
		}
		return pts[len(pts)-1].P == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFEmptyAndDegenerate(t *testing.T) {
	var s Sample
	if s.CDF(10) != nil {
		t.Fatal("empty CDF not nil")
	}
	if s.CDFAt(5) != 0 {
		t.Fatal("empty CDFAt not 0")
	}
	s.Add(1)
	if s.CDF(1) != nil {
		t.Fatal("n<2 CDF not nil")
	}
}

func TestCCDFComplement(t *testing.T) {
	var s Sample
	s.AddAll(5, 6, 7, 8)
	if got := s.CCDFAt(6); !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("CCDFAt(6) = %v", got)
	}
}

func TestSampleMeanAndMedian(t *testing.T) {
	var s Sample
	if s.Mean() != 0 {
		t.Fatal("empty mean not 0")
	}
	s.AddAll(1, 3, 5)
	if !almostEq(s.Mean(), 3, 1e-12) || !almostEq(s.Median(), 3, 1e-12) {
		t.Fatalf("mean=%v median=%v", s.Mean(), s.Median())
	}
}
