package stats

import "sort"

// P2Quantile is the Jain & Chlamtac P² algorithm: a streaming estimate
// of a single quantile in O(1) space, used for long-running
// simulations where retaining every observation is wasteful.
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired position increments
	initBuf []float64
}

// NewP2Quantile creates an estimator for quantile p in (0,1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("stats: P2 quantile must be in (0,1)")
	}
	return &P2Quantile{
		p:   p,
		inc: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// Add incorporates one observation.
func (q *P2Quantile) Add(x float64) {
	if q.n < 5 {
		q.initBuf = append(q.initBuf, x)
		q.n++
		if q.n == 5 {
			sort.Float64s(q.initBuf)
			copy(q.heights[:], q.initBuf)
			q.initBuf = nil
			for i := 0; i < 5; i++ {
				q.pos[i] = float64(i + 1)
			}
			q.want = [5]float64{1, 1 + 2*q.p, 1 + 4*q.p, 3 + 2*q.p, 5}
		}
		return
	}
	q.n++
	// Find the cell k containing x and update extremes.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		k = 3
		for i := 1; i < 5; i++ {
			if x < q.heights[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.inc[i]
	}
	// Adjust interior markers towards their desired positions.
	for i := 1; i < 4; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

func (q *P2Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *P2Quantile) linear(i int, d float64) float64 {
	di := int(d)
	return q.heights[i] + d*(q.heights[i+di]-q.heights[i])/(q.pos[i+di]-q.pos[i])
}

// N returns the number of observations.
func (q *P2Quantile) N() int { return q.n }

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact order statistic.
func (q *P2Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n < 5 {
		xs := append([]float64(nil), q.initBuf...)
		sort.Float64s(xs)
		idx := int(q.p * float64(len(xs)))
		if idx >= len(xs) {
			idx = len(xs) - 1
		}
		return xs[idx]
	}
	return q.heights[2]
}
