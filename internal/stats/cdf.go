package stats

import (
	"fmt"
	"sort"
)

// Sample is a mutable collection of float64 observations from which
// empirical distribution functions and quantiles are computed.
// The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll appends several observations.
func (s *Sample) AddAll(xs ...float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It panics on an empty sample or q outside [0,1].
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile(%v) out of [0,1]", q))
	}
	s.ensureSorted()
	if len(s.xs) == 1 {
		return s.xs[0]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(pos)
	if lo == len(s.xs)-1 {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// CDFAt returns the empirical CDF evaluated at x: the fraction of
// observations <= x. Returns 0 for an empty sample.
func (s *Sample) CDFAt(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	i := sort.SearchFloat64s(s.xs, x)
	// SearchFloat64s finds the first index >= x; advance over equal values.
	for i < len(s.xs) && s.xs[i] == x {
		i++
	}
	return float64(i) / float64(len(s.xs))
}

// CDFPoint is one point of a discretised empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // P(X <= x)
}

// CDF returns the empirical CDF discretised at n evenly spaced points
// spanning [min, max]. For n < 2 or an empty sample it returns nil.
func (s *Sample) CDF(n int) []CDFPoint {
	if len(s.xs) == 0 || n < 2 {
		return nil
	}
	s.ensureSorted()
	lo, hi := s.xs[0], s.xs[len(s.xs)-1]
	pts := make([]CDFPoint, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		if i == n-1 {
			x = hi // avoid landing one ulp below the max observation
		}
		pts[i] = CDFPoint{X: x, P: s.CDFAt(x)}
	}
	return pts
}

// CCDFAt returns P(X > x).
func (s *Sample) CCDFAt(x float64) float64 { return 1 - s.CDFAt(x) }

// Values returns the observations sorted ascending. The returned slice
// is owned by the Sample and must not be modified.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	return s.xs
}
