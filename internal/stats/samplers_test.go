package stats

import (
	"math"
	"testing"

	"coolstream/internal/xrand"
)

const sampleN = 100000

func sampleMean(t *testing.T, s Sampler, seed uint64) float64 {
	t.Helper()
	r := xrand.New(seed)
	sum := 0.0
	for i := 0; i < sampleN; i++ {
		sum += s.Sample(r)
	}
	return sum / sampleN
}

func TestExponentialMean(t *testing.T) {
	got := sampleMean(t, Exponential{Rate: 0.5}, 1)
	if math.Abs(got-2) > 0.05 {
		t.Fatalf("Exp(0.5) mean %v, want ~2", got)
	}
}

func TestLogNormalMean(t *testing.T) {
	ln := LogNormal{Mu: 1, Sigma: 0.5}
	got := sampleMean(t, ln, 2)
	if math.Abs(got-ln.Mean())/ln.Mean() > 0.03 {
		t.Fatalf("LogNormal mean %v, want ~%v", got, ln.Mean())
	}
}

func TestParetoTail(t *testing.T) {
	p := Pareto{Xm: 1, Alpha: 2}
	r := xrand.New(3)
	exceed := 0
	for i := 0; i < sampleN; i++ {
		v := p.Sample(r)
		if v < p.Xm {
			t.Fatal("Pareto sample below scale")
		}
		if v > 10 {
			exceed++
		}
	}
	// P(X > 10) = (1/10)^2 = 0.01.
	frac := float64(exceed) / sampleN
	if math.Abs(frac-0.01) > 0.003 {
		t.Fatalf("Pareto tail P(X>10) = %v, want ~0.01", frac)
	}
}

func TestBoundedParetoWithinBounds(t *testing.T) {
	p := BoundedPareto{Lo: 2, Hi: 50, Alpha: 1.5}
	r := xrand.New(4)
	for i := 0; i < 10000; i++ {
		v := p.Sample(r)
		if v < p.Lo || v > p.Hi {
			t.Fatalf("BoundedPareto sample %v outside [%v,%v]", v, p.Lo, p.Hi)
		}
	}
}

func TestWeibullMean(t *testing.T) {
	// Shape 1 reduces to Exponential with mean Scale.
	got := sampleMean(t, Weibull{Shape: 1, Scale: 3}, 5)
	if math.Abs(got-3) > 0.08 {
		t.Fatalf("Weibull(1,3) mean %v, want ~3", got)
	}
}

func TestUniformBoundsAndMean(t *testing.T) {
	u := Uniform{Lo: -2, Hi: 4}
	r := xrand.New(6)
	sum := 0.0
	for i := 0; i < sampleN; i++ {
		v := u.Sample(r)
		if v < u.Lo || v >= u.Hi {
			t.Fatalf("Uniform sample %v outside [%v,%v)", v, u.Lo, u.Hi)
		}
		sum += v
	}
	if math.Abs(sum/sampleN-1) > 0.05 {
		t.Fatalf("Uniform mean %v, want ~1", sum/sampleN)
	}
}

func TestConstant(t *testing.T) {
	if (Constant{V: 7}).Sample(nil) != 7 {
		t.Fatal("Constant did not return its value")
	}
}

func TestMixtureWeights(t *testing.T) {
	m := NewMixture(
		[]Sampler{Constant{V: 0}, Constant{V: 1}},
		[]float64{1, 3},
	)
	r := xrand.New(7)
	ones := 0
	for i := 0; i < sampleN; i++ {
		if m.Sample(r) == 1 {
			ones++
		}
	}
	frac := float64(ones) / sampleN
	if math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("mixture weight-1 fraction %v, want ~0.75", frac)
	}
}

func TestMixturePanics(t *testing.T) {
	cases := []func(){
		func() { NewMixture(nil, nil) },
		func() { NewMixture([]Sampler{Constant{}}, []float64{1, 2}) },
		func() { NewMixture([]Sampler{Constant{}}, []float64{-1}) },
		func() { NewMixture([]Sampler{Constant{}}, []float64{0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	c := NewCategorical([]float64{0.5, 0.3, 0.2})
	r := xrand.New(8)
	counts := make([]int, 3)
	for i := 0; i < sampleN; i++ {
		counts[c.Draw(r)]++
	}
	want := []float64{0.5, 0.3, 0.2}
	for i, w := range want {
		got := float64(counts[i]) / sampleN
		if math.Abs(got-w) > 0.01 {
			t.Fatalf("category %d frequency %v, want ~%v", i, got, w)
		}
	}
	if c.K() != 3 {
		t.Fatalf("K = %d", c.K())
	}
}

func TestCategoricalPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewCategorical(nil) },
		func() { NewCategorical([]float64{0}) },
		func() { NewCategorical([]float64{-1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
