package stats

import (
	"math"
	"testing"
	"testing/quick"

	"coolstream/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if !almostEq(w.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", w.Variance())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("empty Welford not zero")
	}
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 {
		t.Fatal("single-observation Welford wrong")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			w.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		naiveVar := varSum / float64(n-1)
		return almostEq(w.Mean(), mean, 1e-9) && almostEq(w.Variance(), naiveVar, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMeanEqualWeightsMatchUnweighted(t *testing.T) {
	var w WeightedMean
	var u Welford
	for _, x := range []float64{1, 2, 3, 10, -4} {
		w.Add(x, 2.5)
		u.Add(x)
	}
	if !almostEq(w.Mean(), u.Mean(), 1e-12) {
		t.Fatalf("weighted mean %v != unweighted %v", w.Mean(), u.Mean())
	}
}

func TestWeightedMeanIntervalAverage(t *testing.T) {
	// Value 1 for 9 time units, value 0 for 1 unit: time average 0.9.
	var w WeightedMean
	w.Add(1, 9)
	w.Add(0, 1)
	if !almostEq(w.Mean(), 0.9, 1e-12) {
		t.Fatalf("time average = %v", w.Mean())
	}
	if !almostEq(w.Weight(), 10, 1e-12) {
		t.Fatalf("weight = %v", w.Weight())
	}
}

func TestWeightedMeanIgnoresNonPositiveWeight(t *testing.T) {
	var w WeightedMean
	w.Add(100, 0)
	w.Add(100, -5)
	w.Add(1, 1)
	if !almostEq(w.Mean(), 1, 1e-12) {
		t.Fatalf("mean = %v", w.Mean())
	}
}
