package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Observations
// below Lo land in an underflow bin and those at or above Hi in an
// overflow bin, so no data is silently dropped.
type Histogram struct {
	Lo, Hi    float64
	counts    []int64
	underflow int64
	overflow  int64
	total     int64
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with non-positive bins")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, counts: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.underflow++
	case x >= h.Hi:
		h.overflow++
	default:
		i := int(float64(len(h.counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.counts) { // guard against FP edge
			i--
		}
		h.counts[i]++
	}
}

// Bins returns the number of regular bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the count of bin i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// Total returns the number of observations including under/overflow.
func (h *Histogram) Total() int64 { return h.total }

// Underflow and Overflow return the out-of-range counts.
func (h *Histogram) Underflow() int64 { return h.underflow }
func (h *Histogram) Overflow() int64  { return h.overflow }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns bin i's share of all observations.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// ASCII renders the histogram as a fixed-width bar chart, one row per
// bin, for terminal reports.
func (h *Histogram) ASCII(width int) string {
	var max int64 = 1
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		bar := int(float64(width) * float64(c) / float64(max))
		fmt.Fprintf(&b, "%12.3f |%-*s| %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// LogHistogram bins positive observations into logarithmically spaced
// buckets, the natural shape for heavy-tailed session durations
// (Fig. 10a of the paper).
type LogHistogram struct {
	Lo, Hi    float64 // positive bounds
	counts    []int64
	underflow int64
	overflow  int64
	total     int64
	logLo     float64
	logHi     float64
}

// NewLogHistogram creates bins log-spaced bins over [lo, hi).
// It panics unless 0 < lo < hi and bins > 0.
func NewLogHistogram(lo, hi float64, bins int) *LogHistogram {
	if bins <= 0 || lo <= 0 || hi <= lo {
		panic("stats: NewLogHistogram with invalid bounds")
	}
	return &LogHistogram{
		Lo: lo, Hi: hi, counts: make([]int64, bins),
		logLo: math.Log(lo), logHi: math.Log(hi),
	}
}

// Add records one observation. Non-positive values count as underflow.
func (h *LogHistogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.underflow++
	case x >= h.Hi:
		h.overflow++
	default:
		i := int(float64(len(h.counts)) * (math.Log(x) - h.logLo) / (h.logHi - h.logLo))
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Bins returns the number of regular bins.
func (h *LogHistogram) Bins() int { return len(h.counts) }

// Count returns the count of bin i.
func (h *LogHistogram) Count(i int) int64 { return h.counts[i] }

// Total returns the number of observations including under/overflow.
func (h *LogHistogram) Total() int64 { return h.total }

// Underflow and Overflow return the out-of-range counts.
func (h *LogHistogram) Underflow() int64 { return h.underflow }
func (h *LogHistogram) Overflow() int64  { return h.overflow }

// BinBounds returns the [lo, hi) range of bin i.
func (h *LogHistogram) BinBounds(i int) (float64, float64) {
	w := (h.logHi - h.logLo) / float64(len(h.counts))
	return math.Exp(h.logLo + float64(i)*w), math.Exp(h.logLo + float64(i+1)*w)
}

// Fraction returns bin i's share of all observations.
func (h *LogHistogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}
