package stats

import (
	"math"
	"sort"
	"testing"

	"coolstream/internal/xrand"
)

func TestP2QuantilePanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	q := NewP2Quantile(0.5)
	if q.Value() != 0 {
		t.Fatal("empty estimator not 0")
	}
	q.Add(3)
	q.Add(1)
	q.Add(2)
	if got := q.Value(); got != 2 {
		t.Fatalf("3-sample median %v", got)
	}
	if q.N() != 3 {
		t.Fatalf("N = %d", q.N())
	}
}

func TestP2QuantileUniform(t *testing.T) {
	r := xrand.New(1)
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		q := NewP2Quantile(p)
		for i := 0; i < 100000; i++ {
			q.Add(r.Float64() * 100)
		}
		want := p * 100
		if math.Abs(q.Value()-want) > 2 {
			t.Fatalf("P2(%v) = %v, want ~%v", p, q.Value(), want)
		}
	}
}

func TestP2QuantileMatchesExactOnLognormal(t *testing.T) {
	r := xrand.New(2)
	ln := LogNormal{Mu: 2, Sigma: 0.7}
	q := NewP2Quantile(0.9)
	var xs []float64
	for i := 0; i < 50000; i++ {
		v := ln.Sample(r)
		q.Add(v)
		xs = append(xs, v)
	}
	sort.Float64s(xs)
	exact := xs[int(0.9*float64(len(xs)))]
	rel := math.Abs(q.Value()-exact) / exact
	if rel > 0.05 {
		t.Fatalf("P2 p90 %v vs exact %v (rel %v)", q.Value(), exact, rel)
	}
}

func TestP2QuantileSortedInput(t *testing.T) {
	// Monotone input is the classic hard case for online estimators.
	q := NewP2Quantile(0.5)
	const n = 10001
	for i := 0; i < n; i++ {
		q.Add(float64(i))
	}
	want := float64(n-1) / 2
	if math.Abs(q.Value()-want) > float64(n)*0.02 {
		t.Fatalf("sorted median %v, want ~%v", q.Value(), want)
	}
}
