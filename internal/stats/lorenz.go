package stats

import "sort"

// LorenzPoint is one point of a Lorenz curve: the poorest PopShare
// fraction of the population holds ValueShare of the total value.
type LorenzPoint struct {
	PopShare   float64
	ValueShare float64
}

// Lorenz computes the Lorenz curve of the non-negative values, sorted
// ascending, with one point per observation plus the origin. Used for
// the upload-contribution analysis of Fig. 3b.
func Lorenz(values []float64) []LorenzPoint {
	if len(values) == 0 {
		return nil
	}
	xs := append([]float64(nil), values...)
	sort.Float64s(xs)
	total := 0.0
	for _, x := range xs {
		total += x
	}
	pts := make([]LorenzPoint, 0, len(xs)+1)
	pts = append(pts, LorenzPoint{0, 0})
	acc := 0.0
	for i, x := range xs {
		acc += x
		vs := 0.0
		if total > 0 {
			vs = acc / total
		}
		pts = append(pts, LorenzPoint{
			PopShare:   float64(i+1) / float64(len(xs)),
			ValueShare: vs,
		})
	}
	return pts
}

// Gini computes the Gini coefficient of the non-negative values
// (0 = perfect equality, 1 = maximal inequality).
func Gini(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	xs := append([]float64(nil), values...)
	sort.Float64s(xs)
	var cum, weighted float64
	for i, x := range xs {
		cum += x
		weighted += float64(i+1) * x
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*cum) / (float64(n) * cum)
}

// TopShare returns the fraction of total value held by the top
// `topFrac` fraction of the population (e.g. TopShare(xs, 0.3) for the
// paper's "30% of peers contribute >80% of upload bytes").
func TopShare(values []float64, topFrac float64) float64 {
	n := len(values)
	if n == 0 || topFrac <= 0 {
		return 0
	}
	xs := append([]float64(nil), values...)
	sort.Sort(sort.Reverse(sort.Float64Slice(xs)))
	k := int(topFrac * float64(n))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	total, top := 0.0, 0.0
	for i, x := range xs {
		total += x
		if i < k {
			top += x
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}
