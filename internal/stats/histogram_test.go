package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"coolstream/internal/xrand"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-1)   // underflow
	h.Add(0)    // bin 0
	h.Add(9.99) // bin 9
	h.Add(10)   // overflow
	h.Add(5)    // bin 5
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Fatalf("under/over = %d/%d", h.Underflow(), h.Overflow())
	}
	if h.Count(0) != 1 || h.Count(9) != 1 || h.Count(5) != 1 {
		t.Fatalf("counts wrong: %v %v %v", h.Count(0), h.Count(9), h.Count(5))
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		h := NewHistogram(-50, 50, 7)
		n := r.Intn(500)
		for i := 0; i < n; i++ {
			h.Add(r.NormFloat64() * 40)
		}
		var sum int64 = h.Underflow() + h.Overflow()
		for i := 0; i < h.Bins(); i++ {
			sum += h.Count(i)
		}
		return sum == h.Total() && h.Total() == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if !almostEq(h.BinCenter(0), 0.5, 1e-12) || !almostEq(h.BinCenter(9), 9.5, 1e-12) {
		t.Fatalf("centers: %v %v", h.BinCenter(0), h.BinCenter(9))
	}
}

func TestHistogramFraction(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	if h.Fraction(0) != 0 {
		t.Fatal("empty fraction not 0")
	}
	h.Add(0.5)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(5) // overflow counts in total
	if !almostEq(h.Fraction(0), 0.5, 1e-12) {
		t.Fatalf("fraction = %v", h.Fraction(0))
	}
}

func TestHistogramASCII(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	out := h.ASCII(10)
	if !strings.Contains(out, "#") {
		t.Fatal("ASCII output missing bars")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatalf("ASCII output rows: %q", out)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 0, 5) },
		func() { NewLogHistogram(0, 10, 5) },
		func() { NewLogHistogram(1, 1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestLogHistogramBinning(t *testing.T) {
	h := NewLogHistogram(1, 1000, 3) // bins [1,10) [10,100) [100,1000)
	for _, x := range []float64{1, 5, 9.99} {
		h.Add(x)
	}
	h.Add(50)
	h.Add(500)
	h.Add(0.5)  // underflow
	h.Add(2000) // overflow
	if h.Count(0) != 3 || h.Count(1) != 1 || h.Count(2) != 1 {
		t.Fatalf("log bins: %d %d %d", h.Count(0), h.Count(1), h.Count(2))
	}
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Fatalf("under/over = %d/%d", h.Underflow(), h.Overflow())
	}
	lo, hi := h.BinBounds(1)
	if !almostEq(lo, 10, 1e-9) || !almostEq(hi, 100, 1e-9) {
		t.Fatalf("BinBounds(1) = %v,%v", lo, hi)
	}
}

func TestLogHistogramConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		h := NewLogHistogram(0.1, 10000, 12)
		n := r.Intn(300)
		for i := 0; i < n; i++ {
			h.Add(Pareto{Xm: 0.05, Alpha: 1.2}.Sample(r))
		}
		var sum int64 = h.Underflow() + h.Overflow()
		for i := 0; i < h.Bins(); i++ {
			sum += h.Count(i)
		}
		return sum == h.Total() && h.Total() == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
