package stats

import (
	"math"
	"sort"

	"coolstream/internal/xrand"
)

// Sampler draws float64 variates from some distribution.
type Sampler interface {
	Sample(r *xrand.RNG) float64
}

// Exponential samples Exp(rate); mean 1/rate.
type Exponential struct{ Rate float64 }

// Sample implements Sampler.
func (e Exponential) Sample(r *xrand.RNG) float64 { return r.ExpFloat64() / e.Rate }

// LogNormal samples exp(N(Mu, Sigma^2)).
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Sampler.
func (l LogNormal) Sample(r *xrand.RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean returns the analytic mean exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Pareto samples a Pareto distribution with scale Xm > 0 and shape
// Alpha > 0: P(X > x) = (Xm/x)^Alpha for x >= Xm. Heavy-tailed for
// small Alpha; infinite mean when Alpha <= 1.
type Pareto struct{ Xm, Alpha float64 }

// Sample implements Sampler.
func (p Pareto) Sample(r *xrand.RNG) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return p.Xm / math.Pow(u, 1/p.Alpha)
		}
	}
}

// BoundedPareto samples a Pareto truncated to [Lo, Hi] by inverse CDF,
// used for upload-capacity distributions where physical caps exist.
type BoundedPareto struct{ Lo, Hi, Alpha float64 }

// Sample implements Sampler.
func (p BoundedPareto) Sample(r *xrand.RNG) float64 {
	u := r.Float64()
	la := math.Pow(p.Lo, p.Alpha)
	ha := math.Pow(p.Hi, p.Alpha)
	// Inverse of the truncated CDF.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
	if x < p.Lo {
		x = p.Lo
	}
	if x > p.Hi {
		x = p.Hi
	}
	return x
}

// Weibull samples a Weibull(Shape, Scale) distribution, a common fit
// for session lifetimes in P2P measurement literature.
type Weibull struct{ Shape, Scale float64 }

// Sample implements Sampler.
func (w Weibull) Sample(r *xrand.RNG) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return w.Scale * math.Pow(-math.Log(u), 1/w.Shape)
		}
	}
}

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Sampler.
func (u Uniform) Sample(r *xrand.RNG) float64 {
	return u.Lo + (u.Hi-u.Lo)*r.Float64()
}

// Constant always returns V; useful in tests and degenerate configs.
type Constant struct{ V float64 }

// Sample implements Sampler.
func (c Constant) Sample(*xrand.RNG) float64 { return c.V }

// Scaled multiplies another sampler's draws by Factor — used to sweep
// capacity profiles in resource-index experiments.
type Scaled struct {
	S      Sampler
	Factor float64
}

// Sample implements Sampler.
func (s Scaled) Sample(r *xrand.RNG) float64 { return s.Factor * s.S.Sample(r) }

// Mixture samples from component i with probability Weights[i]
// (normalised internally).
type Mixture struct {
	Components []Sampler
	Weights    []float64
	cum        []float64
}

// NewMixture builds a mixture; panics if the slices mismatch or are empty.
func NewMixture(components []Sampler, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic("stats: invalid mixture specification")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative mixture weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: zero-weight mixture")
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // guard FP drift
	return &Mixture{Components: components, Weights: weights, cum: cum}
}

// Sample implements Sampler.
func (m *Mixture) Sample(r *xrand.RNG) float64 {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.Components) {
		i = len(m.Components) - 1
	}
	return m.Components[i].Sample(r)
}

// Categorical draws an index in [0, len(weights)) with probability
// proportional to the weight.
type Categorical struct {
	cum []float64
}

// NewCategorical builds a categorical sampler over the given weights.
func NewCategorical(weights []float64) *Categorical {
	if len(weights) == 0 {
		panic("stats: empty categorical")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative categorical weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: zero-weight categorical")
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1
	return &Categorical{cum: cum}
}

// Draw returns a weighted-random index.
func (c *Categorical) Draw(r *xrand.RNG) int {
	u := r.Float64()
	i := sort.SearchFloat64s(c.cum, u)
	if i >= len(c.cum) {
		i = len(c.cum) - 1
	}
	return i
}

// K returns the number of categories.
func (c *Categorical) K() int { return len(c.cum) }
