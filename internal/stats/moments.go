// Package stats provides the small statistics toolkit used by the
// measurement pipeline: running moments, histograms, empirical CDFs,
// distribution samplers, and inequality measures (Lorenz/Gini).
//
// Everything here is deterministic and allocation-conscious; the
// simulator calls into this package on hot paths (per-tick continuity
// accounting) as well as in offline analysis.
package stats

import "math"

// Welford accumulates running mean and variance in a numerically stable
// way (Welford's online algorithm). The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 if none).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 if none).
func (w *Welford) Max() float64 { return w.max }

// WeightedMean accumulates a weighted running mean and variance
// (West 1979 incremental formulas). Weights must be non-negative; in the
// simulator they are interval lengths, so the mean is a time average.
// The zero value is ready to use.
type WeightedMean struct {
	wsum float64
	mean float64
	m2   float64
}

// Add incorporates observation x with weight wt. Non-positive weights
// are ignored.
func (w *WeightedMean) Add(x, wt float64) {
	if wt <= 0 {
		return
	}
	w.wsum += wt
	d := x - w.mean
	w.mean += d * wt / w.wsum
	w.m2 += wt * d * (x - w.mean)
}

// Weight returns the total accumulated weight.
func (w *WeightedMean) Weight() float64 { return w.wsum }

// Mean returns the weighted mean, or 0 with no weight.
func (w *WeightedMean) Mean() float64 { return w.mean }

// Variance returns the biased weighted variance (population form), the
// natural quantity for time averages.
func (w *WeightedMean) Variance() float64 {
	if w.wsum <= 0 {
		return 0
	}
	return w.m2 / w.wsum
}
