package stats

import (
	"math"
	"testing"
	"testing/quick"

	"coolstream/internal/xrand"
)

func TestLorenzEqualDistribution(t *testing.T) {
	pts := Lorenz([]float64{1, 1, 1, 1})
	for _, p := range pts {
		if math.Abs(p.PopShare-p.ValueShare) > 1e-12 {
			t.Fatalf("equal distribution not on diagonal: %+v", p)
		}
	}
}

func TestLorenzExtremeInequality(t *testing.T) {
	pts := Lorenz([]float64{0, 0, 0, 100})
	// First 75% of population holds 0.
	if pts[3].ValueShare != 0 {
		t.Fatalf("expected zero share, got %+v", pts[3])
	}
	if pts[4].ValueShare != 1 {
		t.Fatalf("expected full share at top, got %+v", pts[4])
	}
}

func TestLorenzEmptyAndZero(t *testing.T) {
	if Lorenz(nil) != nil {
		t.Fatal("empty Lorenz not nil")
	}
	pts := Lorenz([]float64{0, 0})
	if pts[len(pts)-1].ValueShare != 0 {
		t.Fatal("all-zero Lorenz should report zero shares")
	}
}

func TestGiniKnownValues(t *testing.T) {
	if g := Gini([]float64{1, 1, 1}); math.Abs(g) > 1e-12 {
		t.Fatalf("equal Gini = %v", g)
	}
	// Gini of {0,0,0,1} with n=4 is (2*4 - 5)/4 = 0.75.
	if g := Gini([]float64{0, 0, 0, 1}); math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("extreme Gini = %v", g)
	}
	if g := Gini(nil); g != 0 {
		t.Fatalf("empty Gini = %v", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Fatalf("zero-total Gini = %v", g)
	}
}

func TestGiniRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		g := Gini(xs)
		return g >= -1e-9 && g <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGiniDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Gini(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Gini mutated its input")
	}
}

func TestTopShare(t *testing.T) {
	// Top 25% (1 of 4) holds 100 of 103.
	got := TopShare([]float64{1, 1, 1, 100}, 0.25)
	if math.Abs(got-100.0/103.0) > 1e-12 {
		t.Fatalf("TopShare = %v", got)
	}
	if TopShare(nil, 0.3) != 0 {
		t.Fatal("empty TopShare not 0")
	}
	if TopShare([]float64{0, 0}, 0.5) != 0 {
		t.Fatal("zero-total TopShare not 0")
	}
	// topFrac rounding: at least one element is included.
	if got := TopShare([]float64{1, 2}, 0.01); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("tiny topFrac TopShare = %v", got)
	}
	// topFrac = 1 covers everything.
	if got := TopShare([]float64{5, 5}, 1); got != 1 {
		t.Fatalf("full TopShare = %v", got)
	}
}
