// Package logsys reproduces the paper's internal logging system
// (§V-A): peers report activities and periodic status to a log server
// as HTTP request URL strings whose query is a sequence of
// "name=value" pairs joined by "&". Reports divide into activity
// reports (join, start-subscription, media-ready, leave — sent
// immediately) and status reports (QoS, traffic, partner — sent every
// ReportPeriod, 5 minutes in the deployment).
//
// The measurement pipeline in internal/metrics consumes *only* these
// log strings, exactly as the paper's analysis consumed its log files.
// That choice deliberately reproduces the measurement artifacts the
// paper discusses, e.g. NAT peers' inflated continuity indices caused
// by the 5-minute report granularity and by departures before the next
// report (§V-D).
package logsys

import (
	"fmt"
	"net/url"
	"strconv"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// EventKind enumerates log record kinds.
type EventKind string

// Activity report kinds (sent immediately on the event).
const (
	KindJoin       EventKind = "join"
	KindStartSub   EventKind = "startsub"
	KindMediaReady EventKind = "ready"
	KindLeave      EventKind = "leave"
)

// Status report kinds (sent every report period).
const (
	KindQoS     EventKind = "qos"
	KindTraffic EventKind = "traffic"
	KindPartner EventKind = "partner"
)

// Record is one parsed log entry. Fields not applicable to a kind stay
// at their zero values.
type Record struct {
	Kind EventKind
	// At is the virtual time the report was generated.
	At sim.Time
	// Peer is the reporting peer's ID.
	Peer int
	// Session is the per-join session identifier, so retries by the
	// same user are distinguishable (the paper matches these through
	// user identity; we carry both).
	Session int
	// User is the stable user identity across retries.
	User int
	// PrivateAddr reports whether the peer sees a private local address.
	PrivateAddr bool

	// Leave: session duration is derived by the analyzer; leave carries
	// the reason for diagnostics.
	Reason string

	// QoS: continuity index over the last report period, in [0,1].
	Continuity float64

	// Traffic: bytes moved in the last report period.
	UploadBytes   int64
	DownloadBytes int64

	// Partner: counts of current partner links by direction, and the
	// current parent classes (compact partner-activity report).
	InPartners  int
	OutPartners int
	// ParentReachable counts current parents that are direct/UPnP.
	ParentReachable int
	// ParentTotal counts current parents.
	ParentTotal int
	// NATParentLinks counts parents that are NAT/firewall while the
	// reporter itself is NAT/firewall — the paper's rare "random links".
	NATParentLinks int
	// PartnerChanges is the number of partnership establishments and
	// losses during the report interval (the paper's compact
	// partner-activity series).
	PartnerChanges int

	// TrueClass is ground truth carried for classifier validation; a
	// real deployment would not have it, so the analyzer treats it as
	// optional and the log-based classifier never reads it.
	TrueClass netmodel.UserClass
	HasTruth  bool
}

// LogString renders the record as the paper's wire format: an HTTP
// request path with a URL-encoded query string.
func (rec Record) LogString() string {
	v := url.Values{}
	v.Set("ev", string(rec.Kind))
	v.Set("t", strconv.FormatInt(int64(rec.At), 10))
	v.Set("peer", strconv.Itoa(rec.Peer))
	v.Set("sess", strconv.Itoa(rec.Session))
	v.Set("user", strconv.Itoa(rec.User))
	v.Set("priv", boolStr(rec.PrivateAddr))
	switch rec.Kind {
	case KindLeave:
		if rec.Reason != "" {
			v.Set("reason", rec.Reason)
		}
	case KindQoS:
		v.Set("ci", strconv.FormatFloat(rec.Continuity, 'f', 6, 64))
	case KindTraffic:
		v.Set("up", strconv.FormatInt(rec.UploadBytes, 10))
		v.Set("down", strconv.FormatInt(rec.DownloadBytes, 10))
	case KindPartner:
		v.Set("in", strconv.Itoa(rec.InPartners))
		v.Set("out", strconv.Itoa(rec.OutPartners))
		v.Set("preach", strconv.Itoa(rec.ParentReachable))
		v.Set("ptotal", strconv.Itoa(rec.ParentTotal))
		v.Set("natlinks", strconv.Itoa(rec.NATParentLinks))
		v.Set("pchg", strconv.Itoa(rec.PartnerChanges))
	}
	if rec.HasTruth {
		v.Set("xclass", rec.TrueClass.String())
	}
	return "/log?" + v.Encode()
}

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// ParseLogString parses a log string produced by LogString (or by the
// HTTP log server's request handler).
func ParseLogString(s string) (Record, error) {
	var rec Record
	u, err := url.Parse(s)
	if err != nil {
		return rec, fmt.Errorf("logsys: bad log string: %w", err)
	}
	v := u.Query()
	kind := EventKind(v.Get("ev"))
	switch kind {
	case KindJoin, KindStartSub, KindMediaReady, KindLeave, KindQoS, KindTraffic, KindPartner:
	default:
		return rec, fmt.Errorf("logsys: unknown event kind %q", v.Get("ev"))
	}
	rec.Kind = kind
	at, err := strconv.ParseInt(v.Get("t"), 10, 64)
	if err != nil {
		return rec, fmt.Errorf("logsys: bad timestamp: %w", err)
	}
	rec.At = sim.Time(at)
	if rec.Peer, err = strconv.Atoi(v.Get("peer")); err != nil {
		return rec, fmt.Errorf("logsys: bad peer id: %w", err)
	}
	if rec.Session, err = strconv.Atoi(v.Get("sess")); err != nil {
		return rec, fmt.Errorf("logsys: bad session id: %w", err)
	}
	if rec.User, err = strconv.Atoi(v.Get("user")); err != nil {
		return rec, fmt.Errorf("logsys: bad user id: %w", err)
	}
	rec.PrivateAddr = v.Get("priv") == "1"
	switch kind {
	case KindLeave:
		rec.Reason = v.Get("reason")
	case KindQoS:
		if rec.Continuity, err = strconv.ParseFloat(v.Get("ci"), 64); err != nil {
			return rec, fmt.Errorf("logsys: bad continuity: %w", err)
		}
	case KindTraffic:
		if rec.UploadBytes, err = strconv.ParseInt(v.Get("up"), 10, 64); err != nil {
			return rec, fmt.Errorf("logsys: bad upload bytes: %w", err)
		}
		if rec.DownloadBytes, err = strconv.ParseInt(v.Get("down"), 10, 64); err != nil {
			return rec, fmt.Errorf("logsys: bad download bytes: %w", err)
		}
	case KindPartner:
		ints := map[string]*int{
			"in": &rec.InPartners, "out": &rec.OutPartners,
			"preach": &rec.ParentReachable, "ptotal": &rec.ParentTotal,
			"natlinks": &rec.NATParentLinks, "pchg": &rec.PartnerChanges,
		}
		for key, dst := range ints {
			if *dst, err = strconv.Atoi(v.Get(key)); err != nil {
				return rec, fmt.Errorf("logsys: bad partner field %s: %w", key, err)
			}
		}
	}
	if x := v.Get("xclass"); x != "" {
		c, err := netmodel.ParseUserClass(x)
		if err != nil {
			return rec, err
		}
		rec.TrueClass = c
		rec.HasTruth = true
	}
	return rec, nil
}
