// Package logsys reproduces the paper's internal logging system
// (§V-A): peers report activities and periodic status to a log server
// as HTTP request URL strings whose query is a sequence of
// "name=value" pairs joined by "&". Reports divide into activity
// reports (join, start-subscription, media-ready, leave — sent
// immediately) and status reports (QoS, traffic, partner — sent every
// ReportPeriod, 5 minutes in the deployment).
//
// The measurement pipeline in internal/metrics consumes *only* these
// log strings, exactly as the paper's analysis consumed its log files.
// That choice deliberately reproduces the measurement artifacts the
// paper discusses, e.g. NAT peers' inflated continuity indices caused
// by the 5-minute report granularity and by departures before the next
// report (§V-D).
package logsys

import (
	"fmt"
	"strconv"
	"strings"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
)

// EventKind enumerates log record kinds.
type EventKind string

// Activity report kinds (sent immediately on the event).
const (
	KindJoin       EventKind = "join"
	KindStartSub   EventKind = "startsub"
	KindMediaReady EventKind = "ready"
	KindLeave      EventKind = "leave"
)

// Status report kinds (sent every report period).
const (
	KindQoS     EventKind = "qos"
	KindTraffic EventKind = "traffic"
	KindPartner EventKind = "partner"
)

// Record is one parsed log entry. Fields not applicable to a kind stay
// at their zero values.
type Record struct {
	Kind EventKind
	// At is the virtual time the report was generated.
	At sim.Time
	// Peer is the reporting peer's ID.
	Peer int
	// Session is the per-join session identifier, so retries by the
	// same user are distinguishable (the paper matches these through
	// user identity; we carry both).
	Session int
	// User is the stable user identity across retries.
	User int
	// PrivateAddr reports whether the peer sees a private local address.
	PrivateAddr bool

	// Leave: session duration is derived by the analyzer; leave carries
	// the reason for diagnostics.
	Reason string

	// QoS: continuity index over the last report period, in [0,1].
	Continuity float64

	// Traffic: bytes moved in the last report period.
	UploadBytes   int64
	DownloadBytes int64

	// Partner: counts of current partner links by direction, and the
	// current parent classes (compact partner-activity report).
	InPartners  int
	OutPartners int
	// ParentReachable counts current parents that are direct/UPnP.
	ParentReachable int
	// ParentTotal counts current parents.
	ParentTotal int
	// NATParentLinks counts parents that are NAT/firewall while the
	// reporter itself is NAT/firewall — the paper's rare "random links".
	NATParentLinks int
	// PartnerChanges is the number of partnership establishments and
	// losses during the report interval (the paper's compact
	// partner-activity series).
	PartnerChanges int

	// TrueClass is ground truth carried for classifier validation; a
	// real deployment would not have it, so the analyzer treats it as
	// optional and the log-based classifier never reads it.
	TrueClass netmodel.UserClass
	HasTruth  bool
}

// AppendLogString appends the record's wire form to dst and returns
// the extended slice. The output is byte-identical to the historical
// url.Values implementation ("/log?" + Values.Encode()): keys are
// emitted in canonical sorted order
//
//	ci down ev in natlinks out pchg peer preach priv ptotal reason
//	sess t up user xclass
//
// (each key present only for the kinds that carry it), and values are
// query-escaped exactly as net/url's QueryEscape does. A steady-state
// caller reusing dst performs zero allocations.
func (rec Record) AppendLogString(dst []byte) []byte {
	dst = append(dst, "/log?"...)
	switch rec.Kind {
	case KindQoS:
		dst = append(dst, "ci="...)
		dst = appendEscapedFloat(dst, rec.Continuity)
		dst = append(dst, "&ev="...)
	case KindTraffic:
		dst = append(dst, "down="...)
		dst = strconv.AppendInt(dst, rec.DownloadBytes, 10)
		dst = append(dst, "&ev="...)
	default:
		dst = append(dst, "ev="...)
	}
	dst = appendQueryEscaped(dst, string(rec.Kind))
	if rec.Kind == KindPartner {
		dst = append(dst, "&in="...)
		dst = strconv.AppendInt(dst, int64(rec.InPartners), 10)
		dst = append(dst, "&natlinks="...)
		dst = strconv.AppendInt(dst, int64(rec.NATParentLinks), 10)
		dst = append(dst, "&out="...)
		dst = strconv.AppendInt(dst, int64(rec.OutPartners), 10)
		dst = append(dst, "&pchg="...)
		dst = strconv.AppendInt(dst, int64(rec.PartnerChanges), 10)
	}
	dst = append(dst, "&peer="...)
	dst = strconv.AppendInt(dst, int64(rec.Peer), 10)
	if rec.Kind == KindPartner {
		dst = append(dst, "&preach="...)
		dst = strconv.AppendInt(dst, int64(rec.ParentReachable), 10)
	}
	dst = append(dst, "&priv="...)
	if rec.PrivateAddr {
		dst = append(dst, '1')
	} else {
		dst = append(dst, '0')
	}
	if rec.Kind == KindPartner {
		dst = append(dst, "&ptotal="...)
		dst = strconv.AppendInt(dst, int64(rec.ParentTotal), 10)
	}
	if rec.Kind == KindLeave && rec.Reason != "" {
		dst = append(dst, "&reason="...)
		dst = appendQueryEscaped(dst, rec.Reason)
	}
	dst = append(dst, "&sess="...)
	dst = strconv.AppendInt(dst, int64(rec.Session), 10)
	dst = append(dst, "&t="...)
	dst = strconv.AppendInt(dst, int64(rec.At), 10)
	if rec.Kind == KindTraffic {
		dst = append(dst, "&up="...)
		dst = strconv.AppendInt(dst, rec.UploadBytes, 10)
	}
	dst = append(dst, "&user="...)
	dst = strconv.AppendInt(dst, int64(rec.User), 10)
	if rec.HasTruth {
		dst = append(dst, "&xclass="...)
		dst = appendQueryEscaped(dst, rec.TrueClass.String())
	}
	return dst
}

// LogString renders the record as the paper's wire format: an HTTP
// request path with a URL-encoded query string. It is a convenience
// wrapper over AppendLogString.
func (rec Record) LogString() string {
	return string(rec.AppendLogString(nil))
}

const upperhex = "0123456789ABCDEF"

// appendQueryEscaped appends s query-escaped per net/url's QueryEscape:
// unreserved bytes (alphanumerics and -_.~) pass through, space becomes
// '+', everything else becomes %XX with uppercase hex.
func appendQueryEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == ' ':
			dst = append(dst, '+')
		case unreservedQuery(c):
			dst = append(dst, c)
		default:
			dst = append(dst, '%', upperhex[c>>4], upperhex[c&0xf])
		}
	}
	return dst
}

func unreservedQuery(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' ||
		c == '-' || c == '_' || c == '.' || c == '~'
}

// appendEscapedFloat appends the 'f'/prec-6 rendering of v,
// query-escaped (only ±Inf renderings contain a byte that needs it).
func appendEscapedFloat(dst []byte, v float64) []byte {
	var tmp [32]byte
	s := strconv.AppendFloat(tmp[:0], v, 'f', 6, 64)
	for _, c := range s {
		switch {
		case c == ' ':
			dst = append(dst, '+')
		case unreservedQuery(c):
			dst = append(dst, c)
		default:
			dst = append(dst, '%', upperhex[c>>4], upperhex[c&0xf])
		}
	}
	return dst
}

// Field indices of the scanning parser's raw-value table. One slot per
// known key; unknown keys are ignored exactly as the url.Values
// implementation ignored them.
const (
	fEv = iota
	fT
	fPeer
	fSess
	fUser
	fPriv
	fReason
	fCI
	fUp
	fDown
	fIn
	fOut
	fPreach
	fPtotal
	fNatlinks
	fPchg
	fXclass
	numFields
)

// keyField maps a query key to its field slot, or -1.
func keyField(k string) int {
	switch k {
	case "ev":
		return fEv
	case "t":
		return fT
	case "peer":
		return fPeer
	case "sess":
		return fSess
	case "user":
		return fUser
	case "priv":
		return fPriv
	case "reason":
		return fReason
	case "ci":
		return fCI
	case "up":
		return fUp
	case "down":
		return fDown
	case "in":
		return fIn
	case "out":
		return fOut
	case "preach":
		return fPreach
	case "ptotal":
		return fPtotal
	case "natlinks":
		return fNatlinks
	case "pchg":
		return fPchg
	case "xclass":
		return fXclass
	}
	return -1
}

// partnerFields lists the partner-report integer fields in fixed
// declaration order, so a malformed report deterministically names the
// first bad field (the url.Values-era map iteration made the reported
// field vary run-to-run).
var partnerFields = [...]struct {
	key  string
	slot int
}{
	{"in", fIn}, {"out", fOut}, {"preach", fPreach},
	{"ptotal", fPtotal}, {"natlinks", fNatlinks}, {"pchg", fPchg},
}

// ParseLogString parses a log string produced by LogString (or by the
// HTTP log server's request handler). It is a map-free single-pass
// scanner: query pairs are walked in place, known keys land in a
// fixed-size raw-value table (first occurrence wins, matching
// url.Values.Get), and values are taken as sub-strings of the input
// unless they actually contain escapes. Parsing a status report
// allocates nothing.
func ParseLogString(s string) (Record, error) {
	var rec Record
	var vals [numFields]string
	var seen uint32

	// Isolate the raw query: everything between the first '?' and the
	// fragment, as url.Parse would have.
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	if i := strings.IndexByte(s, '?'); i >= 0 {
		s = s[i+1:]
	} else {
		s = ""
	}
	// Walk the pairs. Mirroring net/url's query parser: empty pairs and
	// pairs containing ';' or an invalid escape are skipped.
	for len(s) > 0 {
		pair := s
		if i := strings.IndexByte(s, '&'); i >= 0 {
			pair, s = s[:i], s[i+1:]
		} else {
			s = ""
		}
		if pair == "" || strings.IndexByte(pair, ';') >= 0 {
			continue
		}
		key, val := pair, ""
		if i := strings.IndexByte(pair, '='); i >= 0 {
			key, val = pair[:i], pair[i+1:]
		}
		if needsUnescape(key) {
			k, ok := queryUnescape(key)
			if !ok {
				continue
			}
			key = k
		}
		f := keyField(key)
		if f < 0 || seen&(1<<f) != 0 {
			continue // unknown key, or a repeat (first occurrence wins)
		}
		if needsUnescape(val) {
			v, ok := queryUnescape(val)
			if !ok {
				continue
			}
			val = v
		}
		seen |= 1 << f
		vals[f] = val
	}

	kind := EventKind(vals[fEv])
	switch kind {
	case KindJoin, KindStartSub, KindMediaReady, KindLeave, KindQoS, KindTraffic, KindPartner:
	default:
		return rec, fmt.Errorf("logsys: unknown event kind %q", vals[fEv])
	}
	rec.Kind = kind
	at, err := strconv.ParseInt(vals[fT], 10, 64)
	if err != nil {
		return rec, fmt.Errorf("logsys: bad timestamp: %w", err)
	}
	rec.At = sim.Time(at)
	if rec.Peer, err = strconv.Atoi(vals[fPeer]); err != nil {
		return rec, fmt.Errorf("logsys: bad peer id: %w", err)
	}
	if rec.Session, err = strconv.Atoi(vals[fSess]); err != nil {
		return rec, fmt.Errorf("logsys: bad session id: %w", err)
	}
	if rec.User, err = strconv.Atoi(vals[fUser]); err != nil {
		return rec, fmt.Errorf("logsys: bad user id: %w", err)
	}
	rec.PrivateAddr = vals[fPriv] == "1"
	switch kind {
	case KindLeave:
		rec.Reason = vals[fReason]
	case KindQoS:
		if rec.Continuity, err = strconv.ParseFloat(vals[fCI], 64); err != nil {
			return rec, fmt.Errorf("logsys: bad continuity: %w", err)
		}
	case KindTraffic:
		if rec.UploadBytes, err = strconv.ParseInt(vals[fUp], 10, 64); err != nil {
			return rec, fmt.Errorf("logsys: bad upload bytes: %w", err)
		}
		if rec.DownloadBytes, err = strconv.ParseInt(vals[fDown], 10, 64); err != nil {
			return rec, fmt.Errorf("logsys: bad download bytes: %w", err)
		}
	case KindPartner:
		dsts := [...]*int{
			&rec.InPartners, &rec.OutPartners, &rec.ParentReachable,
			&rec.ParentTotal, &rec.NATParentLinks, &rec.PartnerChanges,
		}
		for i, pf := range partnerFields {
			if *dsts[i], err = strconv.Atoi(vals[pf.slot]); err != nil {
				return rec, fmt.Errorf("logsys: bad partner field %s: %w", pf.key, err)
			}
		}
	}
	if x := vals[fXclass]; x != "" {
		c, err := netmodel.ParseUserClass(x)
		if err != nil {
			return rec, err
		}
		rec.TrueClass = c
		rec.HasTruth = true
	}
	return rec, nil
}

// needsUnescape reports whether s contains query-escape syntax ('%' or
// '+'); the common simulator-generated log string contains neither, so
// values stay zero-copy sub-strings of the input.
func needsUnescape(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '%' || s[i] == '+' {
			return true
		}
	}
	return false
}

// queryUnescape decodes %XX escapes and '+' (query mode). It returns
// ok=false on a malformed escape, matching net/url, whose query parser
// then drops the whole pair.
func queryUnescape(s string) (string, bool) {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '%':
			if i+2 >= len(s) {
				return "", false
			}
			hi, ok1 := unhex(s[i+1])
			lo, ok2 := unhex(s[i+2])
			if !ok1 || !ok2 {
				return "", false
			}
			b.WriteByte(hi<<4 | lo)
			i += 2
		case '+':
			b.WriteByte(' ')
		default:
			b.WriteByte(c)
		}
	}
	return b.String(), true
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
