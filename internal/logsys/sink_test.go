package logsys

import (
	"bufio"
	"errors"
	"strings"
	"sync"
	"testing"

	"coolstream/internal/sim"
)

func TestMemorySinkSortsRecords(t *testing.T) {
	var s MemorySink
	s.Log(Record{Kind: KindLeave, At: 30, Peer: 2})
	s.Log(Record{Kind: KindJoin, At: 10, Peer: 1})
	s.Log(Record{Kind: KindJoin, At: 30, Peer: 1})
	recs := s.Records()
	if len(recs) != 3 || s.Len() != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].At != 10 || recs[1].Peer != 1 || recs[2].Peer != 2 {
		t.Fatalf("order wrong: %+v", recs)
	}
}

func TestMemorySinkConcurrent(t *testing.T) {
	var s MemorySink
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Log(Record{Kind: KindQoS, At: sim.Time(i), Peer: g})
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("lost records: %d", s.Len())
	}
}

func TestWriterSinkAndReadLog(t *testing.T) {
	var buf strings.Builder
	s := NewWriterSink(&buf)
	want := []Record{
		{Kind: KindJoin, At: 1, Peer: 1, Session: 5, User: 1},
		{Kind: KindQoS, At: 300000, Peer: 1, Session: 5, User: 1, Continuity: 0.5},
	}
	for _, rec := range want {
		s.Log(rec)
	}
	got, err := ReadLog(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestReadLogSkipsBlankLines(t *testing.T) {
	text := "\n" + Record{Kind: KindJoin, Peer: 1}.LogString() + "\n\n"
	recs, err := ReadLog(strings.NewReader(text))
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

func TestReadLogReportsLineNumber(t *testing.T) {
	text := Record{Kind: KindJoin, Peer: 1}.LogString() + "\ngarbage&&&=\n"
	_, err := ReadLog(strings.NewReader(text))
	if err == nil {
		t.Fatal("garbage accepted")
	}
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Line != 2 {
		t.Fatalf("error %v lacks line info", err)
	}
}

// TestReadLogCRLF: logs written on Windows (or piped through tools
// that normalize line endings) carry \r\n; the scanner must strip the
// \r rather than feed it to the parser.
func TestReadLogCRLF(t *testing.T) {
	want := []Record{
		{Kind: KindJoin, At: 1, Peer: 1, Session: 5, User: 1},
		{Kind: KindLeave, At: 9, Peer: 1, Session: 5, User: 1, Reason: "watch-done"},
	}
	text := want[0].LogString() + "\r\n" + want[1].LogString() + "\r\n"
	got, err := ReadLog(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("CRLF records misread: %+v", got)
	}
}

// TestScanLogLineSizeBoundary probes the scanner's 1 MiB line cap from
// both sides, padding a valid record with an unknown query key (the
// parser skips keys it does not know, mirroring url.Values.Get).
func TestScanLogLineSizeBoundary(t *testing.T) {
	const max = 1024 * 1024
	rec := Record{Kind: KindJoin, At: 7, Peer: 3, Session: 9, User: 3}
	pad := func(lineLen int) string {
		base := rec.LogString() + "&pad="
		return base + strings.Repeat("x", lineLen-len(base))
	}

	// The newline must fit in the buffer alongside the token, so the
	// largest line that scans is one byte below the cap.
	under := pad(max-1) + "\n"
	got, err := ReadLog(strings.NewReader(under))
	if err != nil {
		t.Fatalf("line at the cap rejected: %v", err)
	}
	if len(got) != 1 || got[0] != rec {
		t.Fatalf("padded record misread: %+v", got)
	}

	over := pad(max+1) + "\n"
	if _, err := ReadLog(strings.NewReader(over)); err == nil {
		t.Fatal("oversized line accepted")
	} else if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("oversized line failed with %v, want bufio.ErrTooLong", err)
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	var a, b MemorySink
	m := MultiSink{&a, &b}
	m.Log(Record{Kind: KindJoin, Peer: 1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatal("fan-out failed")
	}
}

func TestNopSink(t *testing.T) {
	NopSink{}.Log(Record{Kind: KindJoin}) // must not panic
}

func TestParseErrorMessage(t *testing.T) {
	e := &ParseError{Line: 42, Err: errFake}
	if got := e.Error(); got != "logsys: line 42: fake" {
		t.Errorf("ParseError message: %q", got)
	}
}

var errFake = fakeErr{}

type fakeErr struct{}

func (fakeErr) Error() string { return "fake" }
