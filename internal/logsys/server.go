package logsys

import (
	"fmt"
	"net/http"
)

// Server is the paper's dedicated log server: an HTTP endpoint that
// accepts log-string requests from peers and appends them to a sink.
// The deployed system used exactly this shape — client-side reporters
// issuing GET requests whose URL encodes the report.
type Server struct {
	sink Sink
}

// NewServer creates a log server appending to sink.
func NewServer(sink Sink) *Server {
	if sink == nil {
		panic("logsys: nil sink")
	}
	return &Server{sink: sink}
}

// ServeHTTP implements http.Handler: GET /log?ev=...&t=...&...
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/log" {
		http.NotFound(w, r)
		return
	}
	rec, err := ParseLogString(r.URL.String())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.sink.Log(rec)
	w.WriteHeader(http.StatusNoContent)
}

// Client reports records to a log server over HTTP, mirroring the
// ActiveX/JavaScript reporter of the deployment. It is used by the
// integration tests and the examples; in-simulator peers log directly
// through a Sink to keep runs hermetic.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a reporter for the server at base (e.g.
// "http://127.0.0.1:8080").
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// Report sends one record. It returns an error for transport failures
// or non-2xx responses.
func (c *Client) Report(rec Record) error {
	resp, err := c.hc.Get(c.base + rec.LogString())
	if err != nil {
		return fmt.Errorf("logsys: report failed: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("logsys: report rejected: %s", resp.Status)
	}
	return nil
}
