package logsys

import (
	"testing"

	"coolstream/internal/sim"
)

func BenchmarkLogStringEncode(b *testing.B) {
	rec := Record{
		Kind: KindPartner, At: 300 * sim.Second, Peer: 12345, Session: 67890,
		User: 12345, PrivateAddr: true, InPartners: 3, OutPartners: 5,
		ParentReachable: 3, ParentTotal: 4, NATParentLinks: 1, PartnerChanges: 2,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rec.LogString()
	}
}

func BenchmarkLogStringParse(b *testing.B) {
	s := Record{
		Kind: KindQoS, At: 300 * sim.Second, Peer: 12345, Session: 67890,
		User: 12345, Continuity: 0.987654,
	}.LogString()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseLogString(s); err != nil {
			b.Fatal(err)
		}
	}
}
