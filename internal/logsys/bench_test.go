package logsys

import (
	"io"
	"testing"

	"coolstream/internal/sim"
)

// benchRecord returns a representative, fully-populated record of the
// given kind so the codec benchmarks cover every field family.
func benchRecord(kind EventKind) Record {
	rec := Record{
		Kind: kind, At: 300 * sim.Second, Peer: 12345, Session: 67890,
		User: 12345, PrivateAddr: true,
	}
	switch kind {
	case KindLeave:
		rec.Reason = "watch-done"
	case KindQoS:
		rec.Continuity = 0.987654
	case KindTraffic:
		rec.UploadBytes = 123456789
		rec.DownloadBytes = 987654321
	case KindPartner:
		rec.InPartners = 3
		rec.OutPartners = 5
		rec.ParentReachable = 3
		rec.ParentTotal = 4
		rec.NATParentLinks = 1
		rec.PartnerChanges = 2
	}
	return rec
}

// BenchmarkLogStringEncode measures the zero-allocation appender on
// every record kind: the buffer is reused across iterations, so
// steady-state encoding allocates nothing.
func BenchmarkLogStringEncode(b *testing.B) {
	for _, kind := range allKinds {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			rec := benchRecord(kind)
			buf := rec.AppendLogString(nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = rec.AppendLogString(buf[:0])
			}
			_ = buf
		})
	}
}

// BenchmarkLogStringParse measures the scanning parser on every kind.
// Values without escapes are substring-referenced in place, so parsing
// allocates nothing.
func BenchmarkLogStringParse(b *testing.B) {
	for _, kind := range allKinds {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			s := benchRecord(kind).LogString()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ParseLogString(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSinkLog compares the three collection paths a simulation
// phase can log through: the global-mutex MemorySink, the ShardedSink
// interface path (shared lane under the sink lock), and a ShardedSink
// lane owned by the calling worker (no locking). Each op logs a fixed
// batch into a fresh sink so slice-growth amortization is identical
// across paths and the per-record lock cost stays visible.
func BenchmarkSinkLog(b *testing.B) {
	const batch = 4096
	rec := benchRecord(KindQoS)
	b.Run("memory", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var s MemorySink
			for j := 0; j < batch; j++ {
				s.Log(rec)
			}
		}
	})
	b.Run("sharded-shared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewShardedSink(1)
			for j := 0; j < batch; j++ {
				s.Log(rec)
			}
		}
	})
	b.Run("sharded-lane", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lane := NewShardedSink(1).Lane(0)
			for j := 0; j < batch; j++ {
				lane.Log(rec)
			}
		}
	})
}

// BenchmarkWriterSink measures the streaming encode path of artifact
// dumps: one buffered single-write log string per record.
func BenchmarkWriterSink(b *testing.B) {
	s := NewWriterSink(io.Discard)
	rec := benchRecord(KindPartner)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Log(rec)
	}
}

// BenchmarkShardedDrain measures the end-of-run merge: 8 lanes of
// presorted-by-time records merged and sorted into the analysis order.
func BenchmarkShardedDrain(b *testing.B) {
	const lanes, perLane = 8, 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewShardedSink(lanes)
		for l := 0; l < lanes; l++ {
			lane := s.Lane(l)
			for j := 0; j < perLane; j++ {
				lane.Log(Record{Kind: KindQoS, At: sim.Time(j), Peer: l*perLane + j})
			}
		}
		b.StartTimer()
		if got := s.Drain(); len(got) != lanes*perLane {
			b.Fatal("short drain")
		}
	}
}
