package logsys

import (
	"reflect"
	"sync"
	"testing"

	"coolstream/internal/sim"
)

// interleavedWorkload spreads the same records across a MemorySink
// (arrival order) and a ShardedSink's lanes (round-robin, so merge
// order is exercised) and returns both.
func interleavedWorkload(lanes int) (*MemorySink, *ShardedSink) {
	mem := &MemorySink{}
	sh := NewShardedSink(lanes)
	for i := 0; i < 500; i++ {
		rec := Record{
			Kind:    allKinds[i%len(allKinds)],
			At:      sim.Time((i * 37) % 97),
			Peer:    (i * 13) % 29,
			Session: i,
			User:    i % 7,
		}
		mem.Log(rec)
		if i%5 == 0 {
			sh.Log(rec) // interface path → shared lane
		} else {
			sh.Lane(i % lanes).Log(rec)
		}
	}
	return mem, sh
}

// TestShardedSinkMatchesMemorySinkOrder is the determinism contract:
// however records are spread across lanes, the merged sorted stream
// must equal what a MemorySink would have produced.
func TestShardedSinkMatchesMemorySinkOrder(t *testing.T) {
	for _, lanes := range []int{1, 3, 8} {
		mem, sh := interleavedWorkload(lanes)
		want := mem.Records()
		got := sh.Records()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("lanes=%d: merged order differs from MemorySink", lanes)
		}
		// Drain must yield the same stream and then reset the sink.
		drained := sh.Drain()
		if !reflect.DeepEqual(drained, want) {
			t.Fatalf("lanes=%d: Drain order differs from MemorySink", lanes)
		}
		if sh.Len() != 0 || len(sh.Drain()) != 0 {
			t.Fatalf("lanes=%d: sink not empty after Drain", lanes)
		}
	}
}

func TestShardedSinkLaneGrowth(t *testing.T) {
	s := NewShardedSink(2)
	if s.Lanes() != 2 {
		t.Fatalf("initial lanes = %d", s.Lanes())
	}
	l5 := s.Lane(5)
	if s.Lanes() != 6 {
		t.Fatalf("lanes after growth = %d", s.Lanes())
	}
	// Lane pointers must be stable across further growth.
	l5.Log(Record{Kind: KindJoin, Peer: 42})
	s.Lane(11)
	if s.Lane(5) != l5 {
		t.Fatal("lane pointer not stable across growth")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

// TestShardedSinkConcurrentInterfacePath checks that the Sink
// interface path stays safe for arbitrary concurrent callers (run
// under -race in CI).
func TestShardedSinkConcurrentInterfacePath(t *testing.T) {
	s := NewShardedSink(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Log(Record{Kind: KindQoS, At: sim.Time(i), Peer: g})
			}
		}(g)
	}
	// Lane owners may append concurrently with each other and with the
	// interface path, as long as each lane has one producer.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lane := s.Lane(g)
			for i := 0; i < 200; i++ {
				lane.Log(Record{Kind: KindTraffic, At: sim.Time(i), Peer: 100 + g})
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*200+4*200 {
		t.Fatalf("lost records: %d", s.Len())
	}
}

// TestShardedSinkSharedLaneKeepsArrivalOrder: ties on (time, peer,
// kind) keep shared-lane arrival order, matching MemorySink's stable
// sort of its arrival log.
func TestShardedSinkSharedLaneKeepsArrivalOrder(t *testing.T) {
	s := NewShardedSink(1)
	a := Record{Kind: KindQoS, At: 10, Peer: 1, Continuity: 0.25}
	b := Record{Kind: KindQoS, At: 10, Peer: 1, Continuity: 0.75}
	s.Log(a)
	s.Log(b)
	got := s.Drain()
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("tie order not preserved: %+v", got)
	}
}
