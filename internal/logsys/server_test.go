package logsys

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"coolstream/internal/sim"
)

func TestServerAcceptsReports(t *testing.T) {
	var sink MemorySink
	ts := httptest.NewServer(NewServer(&sink))
	defer ts.Close()

	c := NewClient(ts.URL, nil)
	rec := Record{Kind: KindQoS, At: 300 * sim.Second, Peer: 9, Session: 2, User: 9, Continuity: 0.99}
	if err := c.Report(rec); err != nil {
		t.Fatal(err)
	}
	recs := sink.Records()
	if len(recs) != 1 || recs[0] != rec {
		t.Fatalf("server stored %+v", recs)
	}
}

func TestServerRejectsMalformed(t *testing.T) {
	var sink MemorySink
	ts := httptest.NewServer(NewServer(&sink))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/log?ev=bogus&t=0&peer=1&sess=1&user=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if sink.Len() != 0 {
		t.Fatal("malformed report stored")
	}
}

func TestServerNotFoundOffPath(t *testing.T) {
	ts := httptest.NewServer(NewServer(&MemorySink{}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestClientReportsTransportError(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", nil) // nothing listens
	if err := c.Report(Record{Kind: KindJoin}); err == nil {
		t.Fatal("transport failure not reported")
	}
}

func TestClientReportsServerRejection(t *testing.T) {
	ts := httptest.NewServer(NewServer(&MemorySink{}))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	// Force a malformed record through the client by hand-crafting an
	// impossible kind.
	err := c.Report(Record{Kind: EventKind("nonsense")})
	if err == nil {
		t.Fatal("rejection not surfaced")
	}
}

func TestNewServerPanicsOnNilSink(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil sink accepted")
		}
	}()
	NewServer(nil)
}

// TestServerConcurrentReporters hammers the server from many client
// goroutines at once — the deployed shape, where thousands of peers
// report independently. Every record must land intact and parseable.
func TestServerConcurrentReporters(t *testing.T) {
	var sink MemorySink
	ts := httptest.NewServer(NewServer(&sink))
	defer ts.Close()

	const reporters, reports = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, reporters)
	for g := 0; g < reporters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewClient(ts.URL, nil)
			for i := 0; i < reports; i++ {
				rec := Record{Kind: KindQoS, At: sim.Time(i) * sim.Second,
					Peer: g, Session: g*1000 + i, User: g, Continuity: 0.5}
				if err := c.Report(rec); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	recs := sink.Records()
	if len(recs) != reporters*reports {
		t.Fatalf("stored %d of %d", len(recs), reporters*reports)
	}
	seen := make(map[int]bool, len(recs))
	for _, rec := range recs {
		if seen[rec.Session] {
			t.Fatalf("duplicate session %d", rec.Session)
		}
		seen[rec.Session] = true
		if rec.Continuity != 0.5 || rec.Session != rec.Peer*1000+int(rec.At/sim.Second) {
			t.Fatalf("record corrupted in transit: %+v", rec)
		}
	}
}

func TestEndToEndManyReports(t *testing.T) {
	var sink MemorySink
	ts := httptest.NewServer(NewServer(&sink))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	const n = 50
	for i := 0; i < n; i++ {
		rec := Record{Kind: KindTraffic, At: sim.Time(i), Peer: i, Session: i, User: i,
			UploadBytes: int64(i) * 1000, DownloadBytes: int64(i) * 2000}
		if err := c.Report(rec); err != nil {
			t.Fatal(err)
		}
	}
	if sink.Len() != n {
		t.Fatalf("stored %d of %d", sink.Len(), n)
	}
}
