package logsys

import (
	"testing"

	"coolstream/internal/sim"
)

// FuzzParseLogString asserts the parser never panics and that every
// accepted record re-encodes to a string the parser accepts again with
// an identical result (idempotent round trip).
func FuzzParseLogString(f *testing.F) {
	seeds := []Record{
		{Kind: KindJoin, At: 5 * sim.Second, Peer: 1, Session: 2, User: 1, PrivateAddr: true},
		{Kind: KindQoS, At: 300 * sim.Second, Peer: 9, Session: 3, User: 9, Continuity: 0.97},
		{Kind: KindTraffic, Peer: 4, Session: 5, User: 4, UploadBytes: 1 << 30},
		{Kind: KindPartner, Peer: 7, Session: 8, User: 7, InPartners: 2, OutPartners: 3,
			ParentReachable: 1, ParentTotal: 2, NATParentLinks: 1, PartnerChanges: 4},
	}
	for _, rec := range seeds {
		f.Add(rec.LogString())
	}
	f.Add("/log?ev=join")
	f.Add("garbage")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		rec, err := ParseLogString(s)
		if err != nil {
			return
		}
		again, err := ParseLogString(rec.LogString())
		if err != nil {
			t.Fatalf("re-encoded record rejected: %v", err)
		}
		if again != rec {
			t.Fatalf("round trip not idempotent:\n%+v\n%+v", rec, again)
		}
	})
}
