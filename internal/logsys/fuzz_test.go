package logsys

import (
	"fmt"
	"net/url"
	"strconv"
	"testing"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

// urlValuesLogString is the historical url.Values-based encoder, kept
// verbatim as the reference the zero-allocation appender must match
// byte for byte.
func urlValuesLogString(rec Record) string {
	v := url.Values{}
	v.Set("ev", string(rec.Kind))
	v.Set("t", strconv.FormatInt(int64(rec.At), 10))
	v.Set("peer", strconv.Itoa(rec.Peer))
	v.Set("sess", strconv.Itoa(rec.Session))
	v.Set("user", strconv.Itoa(rec.User))
	if rec.PrivateAddr {
		v.Set("priv", "1")
	} else {
		v.Set("priv", "0")
	}
	switch rec.Kind {
	case KindLeave:
		if rec.Reason != "" {
			v.Set("reason", rec.Reason)
		}
	case KindQoS:
		v.Set("ci", strconv.FormatFloat(rec.Continuity, 'f', 6, 64))
	case KindTraffic:
		v.Set("up", strconv.FormatInt(rec.UploadBytes, 10))
		v.Set("down", strconv.FormatInt(rec.DownloadBytes, 10))
	case KindPartner:
		v.Set("in", strconv.Itoa(rec.InPartners))
		v.Set("out", strconv.Itoa(rec.OutPartners))
		v.Set("preach", strconv.Itoa(rec.ParentReachable))
		v.Set("ptotal", strconv.Itoa(rec.ParentTotal))
		v.Set("natlinks", strconv.Itoa(rec.NATParentLinks))
		v.Set("pchg", strconv.Itoa(rec.PartnerChanges))
	}
	if rec.HasTruth {
		v.Set("xclass", rec.TrueClass.String())
	}
	return "/log?" + v.Encode()
}

// urlValuesParseLogString is the historical url.Values-based parser,
// kept as the reference the scanning parser is differenced against.
// (The partner-field loop uses the fixed order of the new parser; the
// original ranged a map, which only changed *which* error a malformed
// report surfaced, never whether it errored.)
func urlValuesParseLogString(s string) (Record, error) {
	var rec Record
	u, err := url.Parse(s)
	if err != nil {
		return rec, fmt.Errorf("logsys: bad log string: %w", err)
	}
	v := u.Query()
	kind := EventKind(v.Get("ev"))
	switch kind {
	case KindJoin, KindStartSub, KindMediaReady, KindLeave, KindQoS, KindTraffic, KindPartner:
	default:
		return rec, fmt.Errorf("logsys: unknown event kind %q", v.Get("ev"))
	}
	rec.Kind = kind
	at, err := strconv.ParseInt(v.Get("t"), 10, 64)
	if err != nil {
		return rec, fmt.Errorf("logsys: bad timestamp: %w", err)
	}
	rec.At = sim.Time(at)
	if rec.Peer, err = strconv.Atoi(v.Get("peer")); err != nil {
		return rec, fmt.Errorf("logsys: bad peer id: %w", err)
	}
	if rec.Session, err = strconv.Atoi(v.Get("sess")); err != nil {
		return rec, fmt.Errorf("logsys: bad session id: %w", err)
	}
	if rec.User, err = strconv.Atoi(v.Get("user")); err != nil {
		return rec, fmt.Errorf("logsys: bad user id: %w", err)
	}
	rec.PrivateAddr = v.Get("priv") == "1"
	switch kind {
	case KindLeave:
		rec.Reason = v.Get("reason")
	case KindQoS:
		if rec.Continuity, err = strconv.ParseFloat(v.Get("ci"), 64); err != nil {
			return rec, fmt.Errorf("logsys: bad continuity: %w", err)
		}
	case KindTraffic:
		if rec.UploadBytes, err = strconv.ParseInt(v.Get("up"), 10, 64); err != nil {
			return rec, fmt.Errorf("logsys: bad upload bytes: %w", err)
		}
		if rec.DownloadBytes, err = strconv.ParseInt(v.Get("down"), 10, 64); err != nil {
			return rec, fmt.Errorf("logsys: bad download bytes: %w", err)
		}
	case KindPartner:
		dsts := [...]*int{
			&rec.InPartners, &rec.OutPartners, &rec.ParentReachable,
			&rec.ParentTotal, &rec.NATParentLinks, &rec.PartnerChanges,
		}
		for i, pf := range partnerFields {
			if *dsts[i], err = strconv.Atoi(v.Get(pf.key)); err != nil {
				return rec, fmt.Errorf("logsys: bad partner field %s: %w", pf.key, err)
			}
		}
	}
	if x := v.Get("xclass"); x != "" {
		c, err := netmodel.ParseUserClass(x)
		if err != nil {
			return rec, err
		}
		rec.TrueClass = c
		rec.HasTruth = true
	}
	return rec, nil
}

// allKinds covers the full record-kind alphabet.
var allKinds = []EventKind{
	KindJoin, KindStartSub, KindMediaReady, KindLeave,
	KindQoS, KindTraffic, KindPartner,
}

// recordFromSeed derives an arbitrary-but-deterministic record from
// fuzz/quick primitives, exercising every kind and the optional fields,
// including reasons that need query escaping.
func recordFromSeed(seed uint64, reason string) Record {
	r := xrand.New(seed)
	rec := Record{
		Kind:        allKinds[r.Intn(len(allKinds))],
		At:          sim.Time(r.Int63n(1<<50) - 1<<20),
		Peer:        r.Intn(1<<24) - 1<<10,
		Session:     r.Intn(1<<24) - 1<<10,
		User:        r.Intn(1<<24) - 1<<10,
		PrivateAddr: r.Bool(0.5),
	}
	switch rec.Kind {
	case KindLeave:
		rec.Reason = reason
	case KindQoS:
		rec.Continuity = float64(r.Int63n(2000001)-1000000) / 1000000
	case KindTraffic:
		rec.UploadBytes = r.Int63n(1<<50) - 1<<20
		rec.DownloadBytes = r.Int63n(1<<50) - 1<<20
	case KindPartner:
		rec.InPartners = r.Intn(100)
		rec.OutPartners = r.Intn(100)
		rec.ParentTotal = r.Intn(16)
		rec.ParentReachable = r.Intn(rec.ParentTotal + 1)
		rec.NATParentLinks = r.Intn(8)
		rec.PartnerChanges = r.Intn(64)
	}
	if r.Bool(0.4) {
		rec.TrueClass = netmodel.UserClass(r.Intn(netmodel.NumClasses))
		rec.HasTruth = true
	}
	return rec
}

// checkCodecDifferential asserts the three-way contract on one record:
// the appender's bytes equal the url.Values encoder's bytes, the
// scanning parser and the url.Values parser agree on them, and the
// record round-trips exactly.
func checkCodecDifferential(t *testing.T, rec Record) {
	t.Helper()
	back := checkCodecAgreement(t, rec)
	if back != rec {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", rec, back)
	}
}

// checkCodecAgreement asserts encoder byte-equality and parser
// agreement with the url.Values reference, and returns the parsed
// record. Unlike checkCodecDifferential it does not require the exact
// input back — the wire format's 6-decimal continuity is inherently
// lossy for values off that grid (true of the url.Values codec too).
func checkCodecAgreement(t *testing.T, rec Record) Record {
	t.Helper()
	want := urlValuesLogString(rec)
	got := string(rec.AppendLogString(nil))
	if got != want {
		t.Fatalf("encoder diverged from url.Values reference:\n new: %q\n ref: %q\n rec: %+v", got, want, rec)
	}
	back, err := ParseLogString(got)
	if err != nil {
		t.Fatalf("scanning parser rejected own encoding %q: %v", got, err)
	}
	ref, refErr := urlValuesParseLogString(got)
	if refErr != nil {
		t.Fatalf("reference parser rejected encoding %q: %v", got, refErr)
	}
	if back != ref {
		t.Fatalf("parsers disagree on %q:\n new: %+v\n ref: %+v", got, back, ref)
	}
	// The parsed record must be a fixed point: re-encoding it agrees on
	// both encoders and parses back to itself.
	if again := string(back.AppendLogString(nil)); again != urlValuesLogString(back) {
		t.Fatalf("re-encoders diverge on %+v", back)
	} else if twice, err := ParseLogString(again); err != nil || twice != back {
		t.Fatalf("round trip not idempotent (%v):\n%+v\n%+v", err, back, twice)
	}
	return back
}

// FuzzCodecDifferential drives the differential contract from fuzzed
// primitives, letting the engine explore reasons with every byte value
// (exercising the query-escape paths on both sides).
func FuzzCodecDifferential(f *testing.F) {
	f.Add(uint64(1), "user")
	f.Add(uint64(2), "program-end")
	f.Add(uint64(3), "")
	f.Add(uint64(4), "stall re-enter & rejoin")
	f.Add(uint64(5), "100%+\x00\xff")
	f.Fuzz(func(t *testing.T, seed uint64, reason string) {
		checkCodecDifferential(t, recordFromSeed(seed, reason))
	})
}

// TestCodecDifferential runs the same differential contract over a
// broad deterministic sweep (all kinds, escaped reasons, negative and
// huge numerics) so the guarantee is enforced by plain `go test`, not
// only under -fuzz.
func TestCodecDifferential(t *testing.T) {
	reasons := []string{
		"", "user", "program-end", "join-timeout", "stall-reenter",
		"with space", "pct%41", "amp&eq=", "plus+plus", "unicode-é™",
		"ctrl\x01\x1f", "semi;colon", "slash/?#frag",
	}
	for seed := uint64(0); seed < 3000; seed++ {
		checkCodecDifferential(t, recordFromSeed(seed, reasons[seed%uint64(len(reasons))]))
	}
	// Extreme continuity values hit the float escape and slow-growth
	// paths; off-grid values (1e-12) are lossy under the format's fixed
	// 6-decimal precision, so only codec agreement is required.
	for _, ci := range []float64{0, 1, -1, 0.5, 1e308, -1e308, 1e-12, 123456.789e-4} {
		rec := Record{Kind: KindQoS, At: 1, Peer: 2, Session: 3, User: 4, Continuity: ci}
		checkCodecAgreement(t, rec)
	}
}

// FuzzParseLogString asserts the parser never panics and that every
// accepted record re-encodes to a string the parser accepts again with
// an identical result (idempotent round trip).
func FuzzParseLogString(f *testing.F) {
	seeds := []Record{
		{Kind: KindJoin, At: 5 * sim.Second, Peer: 1, Session: 2, User: 1, PrivateAddr: true},
		{Kind: KindQoS, At: 300 * sim.Second, Peer: 9, Session: 3, User: 9, Continuity: 0.97},
		{Kind: KindTraffic, Peer: 4, Session: 5, User: 4, UploadBytes: 1 << 30},
		{Kind: KindPartner, Peer: 7, Session: 8, User: 7, InPartners: 2, OutPartners: 3,
			ParentReachable: 1, ParentTotal: 2, NATParentLinks: 1, PartnerChanges: 4},
	}
	for _, rec := range seeds {
		f.Add(rec.LogString())
	}
	f.Add("/log?ev=join")
	f.Add("garbage")
	f.Add("")
	f.Add("/log?ev=leave&t=0&peer=1&sess=1&user=1&reason=%2Bspace+pct%25")
	f.Add("/log?ev=join&ev=leave&t=0&t=9&peer=1&sess=1&user=1#frag")
	f.Fuzz(func(t *testing.T, s string) {
		rec, err := ParseLogString(s)
		if err != nil {
			return
		}
		again, err := ParseLogString(rec.LogString())
		if err != nil {
			t.Fatalf("re-encoded record rejected: %v", err)
		}
		if again != rec {
			t.Fatalf("round trip not idempotent:\n%+v\n%+v", rec, again)
		}
	})
}
