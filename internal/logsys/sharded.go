package logsys

import (
	"runtime"
	"sort"
	"sync"
)

// ShardedSink collects records into per-worker append-only lanes so
// parallel simulation phases can log without serializing on a global
// mutex. Each Lane is a single-producer buffer: a worker that owns a
// lane appends with no locking at all. The Sink interface path
// (ShardedSink.Log) remains safe for arbitrary concurrent callers; it
// serializes on a dedicated shared lane, preserving arrival order for
// sequential phases exactly as MemorySink did.
//
// Determinism contract: Drain/Records merge every lane and stable-sort
// by (time, peer, kind) — the same order MemorySink.Records() returns.
// Records that tie on all three keys keep (shared lane, lane 0, lane
// 1, …; in-lane arrival) order; the simulator never emits such ties
// (a peer reports at most one record of a kind per virtual instant),
// so the merged stream is independent of how work was sharded — the
// run digest is identical at any GOMAXPROCS.
type ShardedSink struct {
	mu     sync.Mutex
	shared Lane // Sink-interface path, guarded by mu
	lanes  []*Lane
}

// Lane is one single-producer append buffer of a ShardedSink. The
// owner may call Log with no synchronization as long as no other
// goroutine uses the same lane concurrently and no Drain/Records call
// overlaps the producing phase (the simulator's phase barriers
// guarantee both).
type Lane struct {
	recs []Record
	// Pad lanes apart so adjacent lanes' slice headers never share a
	// cache line under concurrent append.
	_ [40]byte
}

// Log implements Sink for the lane's owning worker, with no locking.
func (l *Lane) Log(rec Record) { l.recs = append(l.recs, rec) }

// NewShardedSink creates a sink with n pre-allocated lanes (n <= 0
// selects GOMAXPROCS). Lane grows the set on demand.
func NewShardedSink(n int) *ShardedSink {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &ShardedSink{}
	s.grow(n)
	return s
}

func (s *ShardedSink) grow(n int) {
	for len(s.lanes) < n {
		s.lanes = append(s.lanes, &Lane{})
	}
}

// Lane returns worker i's lane, growing the lane set if needed. Lane
// pointers are stable across growth. Callers should fetch lanes from a
// sequential section (growth takes the sink lock) and hand them to
// workers.
func (s *ShardedSink) Lane(i int) *Lane {
	s.mu.Lock()
	s.grow(i + 1)
	l := s.lanes[i]
	s.mu.Unlock()
	return l
}

// Lanes returns the current number of lanes.
func (s *ShardedSink) Lanes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lanes)
}

// Log implements Sink for arbitrary concurrent callers: records land
// in the shared lane under the sink lock, in arrival order.
func (s *ShardedSink) Log(rec Record) {
	s.mu.Lock()
	s.shared.recs = append(s.shared.recs, rec)
	s.mu.Unlock()
}

// Len returns the number of records across every lane.
func (s *ShardedSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.shared.recs)
	for _, l := range s.lanes {
		n += len(l.recs)
	}
	return n
}

// Drain merges all lanes into one slice sorted by (time, peer, kind)
// and resets the sink. The returned slice reuses the largest lane's
// backing array where possible; no per-record copy beyond the merge
// itself is made. Must not overlap a producing phase.
func (s *ShardedSink) Drain() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.shared.recs
	s.shared.recs = nil
	for _, l := range s.lanes {
		out = append(out, l.recs...)
		l.recs = nil
	}
	sortRecords(out)
	return out
}

// Records returns a merged sorted copy without resetting the sink.
func (s *ShardedSink) Records() []Record {
	s.mu.Lock()
	out := make([]Record, 0, len(s.shared.recs))
	out = append(out, s.shared.recs...)
	for _, l := range s.lanes {
		out = append(out, l.recs...)
	}
	s.mu.Unlock()
	sortRecords(out)
	return out
}

// sortRecords orders records by (time, peer, kind), the canonical
// analysis order shared by MemorySink.Records and ShardedSink.Drain.
func sortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].At != recs[j].At {
			return recs[i].At < recs[j].At
		}
		if recs[i].Peer != recs[j].Peer {
			return recs[i].Peer < recs[j].Peer
		}
		return recs[i].Kind < recs[j].Kind
	})
}
