package logsys

import (
	"strings"
	"testing"
	"testing/quick"

	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

func TestLogStringRoundTripAllKinds(t *testing.T) {
	recs := []Record{
		{Kind: KindJoin, At: 5 * sim.Second, Peer: 3, Session: 10, User: 3, PrivateAddr: true},
		{Kind: KindStartSub, At: 6 * sim.Second, Peer: 3, Session: 10, User: 3},
		{Kind: KindMediaReady, At: 20 * sim.Second, Peer: 3, Session: 10, User: 3},
		{Kind: KindLeave, At: sim.Hour, Peer: 3, Session: 10, User: 3, Reason: "program-end"},
		{Kind: KindQoS, At: 300 * sim.Second, Peer: 4, Session: 11, User: 4, Continuity: 0.987654},
		{Kind: KindTraffic, At: 300 * sim.Second, Peer: 4, Session: 11, User: 4, UploadBytes: 123456789, DownloadBytes: 987654},
		{Kind: KindPartner, At: 300 * sim.Second, Peer: 4, Session: 11, User: 4,
			InPartners: 3, OutPartners: 5, ParentReachable: 2, ParentTotal: 4, NATParentLinks: 1,
			PartnerChanges: 6},
	}
	for _, rec := range recs {
		s := rec.LogString()
		if !strings.HasPrefix(s, "/log?") {
			t.Fatalf("log string shape: %q", s)
		}
		got, err := ParseLogString(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if got != rec {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", rec, got)
		}
	}
}

func TestLogStringCarriesGroundTruthOptionally(t *testing.T) {
	rec := Record{Kind: KindJoin, Peer: 1, TrueClass: netmodel.Firewall, HasTruth: true}
	got, err := ParseLogString(rec.LogString())
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasTruth || got.TrueClass != netmodel.Firewall {
		t.Fatalf("ground truth lost: %+v", got)
	}
	// Without truth, the field is absent.
	rec2 := Record{Kind: KindJoin, Peer: 1}
	if strings.Contains(rec2.LogString(), "xclass") {
		t.Fatal("xclass emitted without HasTruth")
	}
}

func TestParseLogStringErrors(t *testing.T) {
	bad := []string{
		"/log?ev=bogus&t=0&peer=1&sess=1&user=1",
		"/log?ev=join&t=abc&peer=1&sess=1&user=1",
		"/log?ev=join&t=0&peer=x&sess=1&user=1",
		"/log?ev=join&t=0&peer=1&sess=x&user=1",
		"/log?ev=join&t=0&peer=1&sess=1&user=x",
		"/log?ev=qos&t=0&peer=1&sess=1&user=1&ci=notafloat",
		"/log?ev=traffic&t=0&peer=1&sess=1&user=1&up=x&down=0",
		"/log?ev=partner&t=0&peer=1&sess=1&user=1&in=1&out=1&preach=0&ptotal=x&natlinks=0",
		"/log?ev=join&t=0&peer=1&sess=1&user=1&xclass=alien",
		"://notaurl",
	}
	for _, s := range bad {
		if _, err := ParseLogString(s); err == nil {
			t.Errorf("parsed malformed log string %q", s)
		}
	}
}

func TestLogStringPropertyRoundTrip(t *testing.T) {
	kinds := []EventKind{KindJoin, KindStartSub, KindMediaReady, KindLeave, KindQoS, KindTraffic, KindPartner}
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		rec := Record{
			Kind:        kinds[r.Intn(len(kinds))],
			At:          sim.Time(r.Int63n(1 << 40)),
			Peer:        r.Intn(1 << 20),
			Session:     r.Intn(1 << 20),
			User:        r.Intn(1 << 20),
			PrivateAddr: r.Bool(0.5),
		}
		switch rec.Kind {
		case KindLeave:
			rec.Reason = []string{"", "user", "program-end", "join-timeout"}[r.Intn(4)]
		case KindQoS:
			rec.Continuity = float64(r.Intn(1000001)) / 1000000
		case KindTraffic:
			rec.UploadBytes = r.Int63n(1 << 45)
			rec.DownloadBytes = r.Int63n(1 << 45)
		case KindPartner:
			rec.InPartners = r.Intn(50)
			rec.OutPartners = r.Intn(50)
			rec.ParentTotal = r.Intn(10)
			rec.ParentReachable = r.Intn(rec.ParentTotal + 1)
			rec.NATParentLinks = r.Intn(5)
			rec.PartnerChanges = r.Intn(20)
		}
		if r.Bool(0.3) {
			rec.TrueClass = netmodel.UserClass(r.Intn(netmodel.NumClasses))
			rec.HasTruth = true
		}
		got, err := ParseLogString(rec.LogString())
		return err == nil && got == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
