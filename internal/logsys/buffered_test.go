package logsys

import (
	"testing"

	"coolstream/internal/sim"
)

// outage marks [10s, 20s) as down.
func outage(rec Record) bool {
	return rec.At >= 10*sim.Second && rec.At < 20*sim.Second
}

func rec(at sim.Time, peer int) Record {
	return Record{Kind: KindJoin, At: at, Peer: peer}
}

func TestBufferedSinkBuffersAndFlushes(t *testing.T) {
	mem := &MemorySink{}
	bs := NewBufferedSink(mem, 10, outage)

	bs.Log(rec(5*sim.Second, 1)) // up: passes through
	if mem.Len() != 1 {
		t.Fatalf("pass-through failed: %d records", mem.Len())
	}
	bs.Log(rec(12*sim.Second, 2)) // down: buffered
	bs.Log(rec(15*sim.Second, 3))
	if mem.Len() != 1 || bs.Pending() != 2 {
		t.Fatalf("buffering failed: inner %d, pending %d", mem.Len(), bs.Pending())
	}
	bs.Log(rec(25*sim.Second, 4)) // up again: flush then log
	if mem.Len() != 4 || bs.Pending() != 0 {
		t.Fatalf("flush failed: inner %d, pending %d", mem.Len(), bs.Pending())
	}
	// Arrival order survives the outage.
	got := mem.Records()
	for i, want := range []int{1, 2, 3, 4} {
		if got[i].Peer != want {
			t.Fatalf("record %d: peer %d, want %d", i, got[i].Peer, want)
		}
	}
	if bs.Dropped() != 0 {
		t.Fatalf("dropped %d, want 0", bs.Dropped())
	}
}

func TestBufferedSinkOverflowDropsOldest(t *testing.T) {
	mem := &MemorySink{}
	bs := NewBufferedSink(mem, 3, outage)
	for i := 0; i < 5; i++ {
		bs.Log(rec(11*sim.Second, 100+i))
	}
	if bs.Dropped() != 2 || bs.Pending() != 3 {
		t.Fatalf("dropped %d pending %d, want 2/3", bs.Dropped(), bs.Pending())
	}
	if n := bs.Flush(); n != 3 {
		t.Fatalf("flush delivered %d, want 3", n)
	}
	got := mem.Records()
	if len(got) != 3 {
		t.Fatalf("%d records after flush", len(got))
	}
	// The oldest two (100, 101) were dropped.
	for i, want := range []int{102, 103, 104} {
		if got[i].Peer != want {
			t.Fatalf("record %d: peer %d, want %d", i, got[i].Peer, want)
		}
	}
}

func TestBufferedSinkNilPredicatePassesThrough(t *testing.T) {
	mem := &MemorySink{}
	bs := NewBufferedSink(mem, 0, nil)
	bs.Log(rec(12*sim.Second, 1))
	if mem.Len() != 1 || bs.Pending() != 0 {
		t.Fatalf("nil predicate: inner %d pending %d", mem.Len(), bs.Pending())
	}
}
