package logsys

import (
	"bufio"
	"io"
	"sort"
	"strings"
	"sync"
)

// Sink receives log records. Implementations must be safe for
// concurrent use: the simulator may report from parallel shards.
type Sink interface {
	Log(rec Record)
}

// MemorySink retains all records in memory, the standard sink for
// simulation runs whose logs are analysed in-process.
type MemorySink struct {
	mu   sync.Mutex
	recs []Record
}

// Log implements Sink.
func (s *MemorySink) Log(rec Record) {
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

// Records returns all records sorted by (time, peer, kind) for
// deterministic analysis.
func (s *MemorySink) Records() []Record {
	s.mu.Lock()
	out := append([]Record(nil), s.recs...)
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Peer != out[j].Peer {
			return out[i].Peer < out[j].Peer
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Len returns the number of records logged so far.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// WriterSink streams each record as one log string per line, the
// on-disk format of the deployed log server.
type WriterSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterSink wraps w.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Log implements Sink.
func (s *WriterSink) Log(rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	io.WriteString(s.w, rec.LogString())
	io.WriteString(s.w, "\n")
}

// MultiSink fans records out to several sinks.
type MultiSink []Sink

// Log implements Sink.
func (m MultiSink) Log(rec Record) {
	for _, s := range m {
		s.Log(rec)
	}
}

// NopSink discards everything; used in benchmarks isolating protocol
// cost from logging cost.
type NopSink struct{}

// Log implements Sink.
func (NopSink) Log(Record) {}

// ReadLog parses a stream of newline-separated log strings, the
// inverse of WriterSink. Malformed lines abort with an error carrying
// the line number.
func ReadLog(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		rec, err := ParseLogString(text)
		if err != nil {
			return nil, &ParseError{Line: line, Err: err}
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseError reports a malformed log line.
type ParseError struct {
	Line int
	Err  error
}

// Error implements error.
func (e *ParseError) Error() string { return "logsys: line " + itoa(e.Line) + ": " + e.Err.Error() }

// Unwrap supports errors.Is/As.
func (e *ParseError) Unwrap() error { return e.Err }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
