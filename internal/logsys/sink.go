package logsys

import (
	"bufio"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Sink receives log records. Implementations must be safe for
// concurrent use: the simulator may report from parallel shards.
type Sink interface {
	Log(rec Record)
}

// MemorySink retains all records in memory, the standard sink for
// simulation runs whose logs are analysed in-process.
type MemorySink struct {
	mu   sync.Mutex
	recs []Record
	// sorted caches the (time, peer, kind)-ordered view so repeated
	// Records() calls skip the O(n log n) re-sort; Log invalidates it.
	sorted []Record
}

// Log implements Sink.
func (s *MemorySink) Log(rec Record) {
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.sorted = nil
	s.mu.Unlock()
}

// Records returns a copy of all records sorted by (time, peer, kind)
// for deterministic analysis. The sorted view is cached: only the
// first call after a Log pays the sort.
func (s *MemorySink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sorted == nil && len(s.recs) > 0 {
		s.sorted = append([]Record(nil), s.recs...)
		sortRecords(s.sorted)
	}
	return append([]Record(nil), s.sorted...)
}

// Drain returns all records sorted by (time, peer, kind), handing off
// the backing slice without copying, and resets the sink. It is the
// end-of-run path: the caller takes ownership of the slice.
func (s *MemorySink) Drain() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.sorted
	if out == nil {
		out = s.recs
		sortRecords(out)
	}
	s.recs, s.sorted = nil, nil
	return out
}

// Len returns the number of records logged so far.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// WriterSink streams each record as one log string per line, the
// on-disk format of the deployed log server. Each record is encoded
// into a reused buffer with the zero-allocation appender and delivered
// to the writer in a single Write call.
type WriterSink struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

// NewWriterSink wraps w.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Log implements Sink.
func (s *WriterSink) Log(rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = rec.AppendLogString(s.buf[:0])
	s.buf = append(s.buf, '\n')
	s.w.Write(s.buf)
}

// MultiSink fans records out to several sinks.
type MultiSink []Sink

// Log implements Sink.
func (m MultiSink) Log(rec Record) {
	for _, s := range m {
		s.Log(rec)
	}
}

// NopSink discards everything; used in benchmarks isolating protocol
// cost from logging cost.
type NopSink struct{}

// Log implements Sink.
func (NopSink) Log(Record) {}

// ScanLog parses a stream of newline-separated log strings and hands
// each record to fn in order, without materializing the whole log —
// the multi-GB re-analysis path. Malformed lines abort with an error
// carrying the line number; an error from fn aborts the scan.
func ScanLog(r io.Reader, fn func(Record) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		rec, err := ParseLogString(text)
		if err != nil {
			return &ParseError{Line: line, Err: err}
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ReadLog parses a stream of newline-separated log strings, the
// inverse of WriterSink, materializing every record. Prefer ScanLog
// when the consumer can stream.
func ReadLog(r io.Reader) ([]Record, error) {
	var out []Record
	err := ScanLog(r, func(rec Record) error {
		out = append(out, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ParseError reports a malformed log line.
type ParseError struct {
	Line int
	Err  error
}

// Error implements error.
func (e *ParseError) Error() string {
	return "logsys: line " + strconv.Itoa(e.Line) + ": " + e.Err.Error()
}

// Unwrap supports errors.Is/As.
func (e *ParseError) Unwrap() error { return e.Err }
