package logsys

import "sync"

// BufferedSink models the client-side report queue of the deployed
// reporter under log-server outages: while the server is down (as
// judged by the Down predicate, typically a fault schedule's outage
// windows over the record's virtual timestamp), records queue in a
// bounded buffer; the first record logged after the outage flushes the
// queue in arrival order. When the buffer overflows, the *oldest*
// queued record is dropped and counted — the most recent reports are
// the ones worth delivering late.
//
// Determinism: Down is a pure function of the record (virtual time),
// and buffering/flushing follow arrival order, so wrapping a
// deterministic sink keeps the run's record stream deterministic.
type BufferedSink struct {
	mu      sync.Mutex
	inner   Sink
	down    func(Record) bool
	cap     int
	buf     []Record
	dropped int
}

// DefaultLogBuffer is the buffer capacity used when none is given.
const DefaultLogBuffer = 1024

// NewBufferedSink wraps inner. capacity <= 0 selects DefaultLogBuffer;
// a nil down predicate means the server is always up (the sink then
// degrades to a pass-through).
func NewBufferedSink(inner Sink, capacity int, down func(Record) bool) *BufferedSink {
	if inner == nil {
		panic("logsys: nil inner sink")
	}
	if capacity <= 0 {
		capacity = DefaultLogBuffer
	}
	return &BufferedSink{inner: inner, down: down, cap: capacity}
}

// Log implements Sink.
func (s *BufferedSink) Log(rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down != nil && s.down(rec) {
		if len(s.buf) >= s.cap {
			s.buf = s.buf[1:]
			s.dropped++
		}
		s.buf = append(s.buf, rec)
		return
	}
	s.flushLocked()
	s.inner.Log(rec)
}

func (s *BufferedSink) flushLocked() {
	for _, r := range s.buf {
		s.inner.Log(r)
	}
	s.buf = s.buf[:0]
}

// Flush delivers any queued records regardless of server state (e.g.
// run teardown once the outage analysis is done). It returns how many
// records it delivered.
func (s *BufferedSink) Flush() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.buf)
	s.flushLocked()
	return n
}

// Dropped returns how many records were lost to buffer overflow.
func (s *BufferedSink) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Pending returns how many records are queued awaiting recovery.
func (s *BufferedSink) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}
