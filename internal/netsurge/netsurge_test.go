package netsurge

import (
	"testing"
	"time"
)

// TestSurgeLadderProtects runs the flash crowd with the full admission
// ladder and requires both halves of the acceptance bar: the crowd
// gets in, and the established swarm keeps streaming.
func TestSurgeLadderProtects(t *testing.T) {
	if testing.Short() {
		t.Skip("surge run takes ~10s")
	}
	rep, err := Run(Config{Ladder: true, Seed: 7, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.JoinSuccess < 0.95 {
		t.Errorf("join success %.2f, want >= 0.95", rep.JoinSuccess)
	}
	if rep.EstablishedMinContinuity < 0.95 {
		t.Errorf("established min continuity %.3f, want >= 0.95", rep.EstablishedMinContinuity)
	}
	for _, o := range rep.Outcomes {
		if !o.Stats.Joined {
			t.Logf("joiner %d failed: %s (stats %+v)", o.ID, o.Err, o.Stats)
		}
	}
}

// TestSurgeCollapsesWithoutLadder runs the same storm with admission
// off and requires the collapse the ladder exists to prevent: the
// established peers' continuity dragged below 0.8 by the crowd.
func TestSurgeCollapsesWithoutLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("surge run takes ~10s")
	}
	rep, err := Run(Config{Ladder: false, Seed: 7, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EstablishedMinContinuity > 0.8 {
		t.Errorf("established min continuity %.3f with no admission control, want <= 0.8 (collapse)",
			rep.EstablishedMinContinuity)
	}
}

// TestHistogramAndPercentiles pins the small stats helpers.
func TestHistogramAndPercentiles(t *testing.T) {
	h := histogram([]int{0, 0, 1, 3, 12}, 8)
	if h[0] != 2 || h[1] != 1 || h[3] != 1 || h[8] != 1 {
		t.Fatalf("histogram %v", h)
	}
	sorted := []int{0, 1, 1, 2, 9}
	if p := percentileInt(sorted, 0.5); p != 1 {
		t.Fatalf("p50 %d", p)
	}
	if p := percentileInt(sorted, 0.9); p != 2 {
		t.Fatalf("p90 %d", p)
	}
	if p := percentileInt(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile %d", p)
	}
	if p := percentileFloat([]float64{1, 2, 3}, 0.9); p != 2 {
		t.Fatalf("float p90 %v", p)
	}
}

// TestDefaultsScale checks the 4× flash-crowd default wiring.
func TestDefaultsScale(t *testing.T) {
	c := Config{}
	c.applyDefaults()
	if c.Joiners != 4*c.Warm {
		t.Fatalf("joiners %d, warm %d: want a 4x burst", c.Joiners, c.Warm)
	}
	if c.Warmup <= 0 || c.Measure <= 0 || c.JoinDeadline <= 0 {
		t.Fatalf("durations not defaulted: %+v", c)
	}
	if c.Layout.K == 0 {
		t.Fatal("layout not defaulted")
	}
	_ = time.Second
}
