// Package netsurge is the flash-crowd harness (§VI): it warms a small
// real-TCP overlay (tracker, source, a few established relays), then
// slams it with a burst of joiners several times the warm population
// and measures what the paper's Fig. 10 measures — whether joins
// succeed, how many retries they need, how long the first block takes —
// while ALSO watching what the crowd does to the peers that were
// already streaming.
//
// The harness runs the same storm twice: with the overload-degradation
// ladder on (partner caps with reject-with-alternates, upload slots,
// tracker shedding with retry-after) and with it off. Off, every
// joiner lane piles onto the best-advertised uplink — the source —
// whose shared token bucket then fair-shares its rate across several
// times the lanes it can sustain, dragging the established peers'
// continuity down with the crowd's. On, admission refuses the excess
// early and redirects it across the overlay, so the established swarm
// keeps its continuity and the crowd still gets in. The same harness
// backs the netsurge test suite and `coolnet -scenario surge`.
package netsurge

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"coolstream/internal/buffer"
	"coolstream/internal/faults"
	"coolstream/internal/netboot"
	"coolstream/internal/netpeer"
	"coolstream/internal/sim"
)

// Config sizes one surge run. The zero value selects CI-friendly
// defaults (see applyDefaults).
type Config struct {
	// Warm is the established population (source excluded); Joiners is
	// the burst size (default 3 and 12 — a 4× flash crowd).
	Warm    int
	Joiners int
	// Ladder enables the admission-control ladder. Off reproduces the
	// collapse the ladder exists to prevent.
	Ladder bool
	// SourcePartners / PeerPartners cap partner sets when Ladder is on.
	SourcePartners int
	PeerPartners   int
	// SourceSlots / PeerSlots cap concurrent upload lanes when Ladder
	// is on.
	SourceSlots int
	PeerSlots   int
	// Warmup is the streaming time before the storm; Measure the
	// post-storm window established continuity is judged over.
	Warmup  time.Duration
	Measure time.Duration
	// JoinDeadline bounds each joiner's attempt.
	JoinDeadline time.Duration
	// Layout overrides the stream geometry (default 256 kbps, K=4,
	// 800-byte blocks, as netchaos).
	Layout buffer.Layout
	// Seed drives tracker sampling and join backoff jitter.
	Seed uint64
	// Logf, when set, receives run narration.
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() {
	if c.Warm <= 0 {
		c.Warm = 3
	}
	if c.Joiners <= 0 {
		c.Joiners = 4 * c.Warm
	}
	if c.SourcePartners <= 0 {
		c.SourcePartners = c.Warm + 2
	}
	if c.PeerPartners <= 0 {
		c.PeerPartners = 6
	}
	if c.SourceSlots <= 0 {
		c.SourceSlots = 16
	}
	if c.PeerSlots <= 0 {
		c.PeerSlots = 8
	}
	if c.Warmup <= 0 {
		c.Warmup = 2 * time.Second
	}
	if c.Measure <= 0 {
		c.Measure = 2 * time.Second
	}
	if c.JoinDeadline <= 0 {
		c.JoinDeadline = 12 * time.Second
	}
	if c.Layout.K == 0 {
		c.Layout = buffer.Layout{K: 4, RateBps: 256e3, BlockBytes: 800}
	}
}

// JoinOutcome is one joiner's result.
type JoinOutcome struct {
	ID    int32             `json:"id"`
	Stats netpeer.JoinStats `json:"stats"`
	Err   string            `json:"err,omitempty"`
}

// Report is the outcome of one surge run.
type Report struct {
	Ladder  bool `json:"ladder"`
	Warm    int  `json:"warm"`
	Joiners int  `json:"joiners"`

	// JoinSuccess is the joined fraction; JoinsPerMin the successful
	// join throughput over the storm.
	JoinSuccess float64 `json:"join_success"`
	JoinsPerMin float64 `json:"joins_per_min"`

	// Retries distribution across joiners (paper Fig. 10): per-joiner
	// retry counts, their p50/p90, and a histogram (index = retries,
	// last bucket open-ended).
	RetriesP50     int   `json:"retries_p50"`
	RetriesP90     int   `json:"retries_p90"`
	RetryHistogram []int `json:"retry_histogram"`

	// Time-to-first-block percentiles over successful joins, in ms.
	TTFBP50Ms float64 `json:"ttfb_p50_ms"`
	TTFBP90Ms float64 `json:"ttfb_p90_ms"`

	// Established-peer continuity over the storm+measure window: the
	// min and mean across the warm peers of on-time/total received
	// blocks since the pre-storm snapshot (0 when a peer stalled
	// outright). This is what the ladder protects.
	EstablishedMinContinuity  float64 `json:"established_min_continuity"`
	EstablishedMeanContinuity float64 `json:"established_mean_continuity"`

	// Ladder activity totals.
	Rejects            int `json:"rejects"`
	AlternatesLearned  int `json:"alternates_learned"`
	TrackerUnavailable int `json:"tracker_unavailable"`
	RetryAfterWaits    int `json:"retry_after_waits"`
	LaneRetries        int `json:"lane_retries"`

	Outcomes []JoinOutcome `json:"outcomes"`
}

// Pair is the before/after a surge comparison reports: the same storm
// with the ladder off and on.
type Pair struct {
	Off Report `json:"off"`
	On  Report `json:"on"`
}

// Run executes one surge scenario.
func Run(cfg Config) (Report, error) {
	cfg.applyDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// --- Tracker: shedding is the ladder's top rung. ---
	reg := netboot.NewRegistry(netboot.RegistryConfig{Seed: cfg.Seed})
	if cfg.Ladder {
		reg.EnableShedding(netboot.ShedConfig{
			MaxOpsPerSec: 60, RetryAfter: 250 * time.Millisecond,
		})
	}
	tracker := netboot.NewTCPServer(reg, netboot.TCPServerConfig{})
	trackerAddr, err := tracker.Listen("127.0.0.1:0")
	if err != nil {
		return Report{}, err
	}
	defer tracker.Close()
	logf("tracker at %s (ladder=%v)", trackerAddr, cfg.Ladder)

	var clients []*netboot.TCPClient
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	var clientMu sync.Mutex
	bootClient := func() *netboot.TCPClient {
		c := netboot.NewTCPClient(trackerAddr)
		c.SetTimeout(2 * time.Second)
		clientMu.Lock()
		clients = append(clients, c)
		clientMu.Unlock()
		return c
	}

	rate := cfg.Layout.RateBps
	nodeCfg := func(id int32, uploadBps float64, partners, slots int) netpeer.Config {
		c := netpeer.Config{
			ID: id, Layout: cfg.Layout, UploadBps: uploadBps,
			BMPeriod:     100 * time.Millisecond,
			BufferBlocks: 600, ReadyBlocks: 5,
			WriteTimeout: 2 * time.Second,
		}
		if cfg.Ladder {
			c.MaxPartners = partners
			c.UploadSlots = slots
		}
		return c
	}

	// --- Source. ---
	src, err := netpeer.New(nodeCfg(0, 5*rate, cfg.SourcePartners, cfg.SourceSlots))
	if err != nil {
		return Report{}, err
	}
	defer src.Close()
	srcAddr, err := src.Listen()
	if err != nil {
		return Report{}, err
	}
	if err := src.StartSource(); err != nil {
		return Report{}, err
	}
	if err := bootClient().Register(0, srcAddr); err != nil {
		return Report{}, fmt.Errorf("netsurge: register source: %w", err)
	}
	time.Sleep(300 * time.Millisecond) // let the live edge advance

	// --- Warm peers: the established swarm the storm must not sink. ---
	warm := make([]*netpeer.Node, 0, cfg.Warm)
	defer func() {
		for _, p := range warm {
			p.Close()
		}
	}()
	for i := 1; i <= cfg.Warm; i++ {
		id := int32(i)
		p, err := netpeer.New(nodeCfg(id, 3*rate, cfg.PeerPartners, cfg.PeerSlots))
		if err != nil {
			return Report{}, err
		}
		warm = append(warm, p)
		addr, err := p.Listen()
		if err != nil {
			return Report{}, err
		}
		if err := bootClient().Register(id, addr); err != nil {
			return Report{}, fmt.Errorf("netsurge: register warm %d: %w", id, err)
		}
		if _, err := p.Join(netpeer.JoinConfig{
			Boot: bootClient(), SelfAddr: addr,
			TargetPartners: 1, Deadline: 8 * time.Second,
		}); err != nil {
			return Report{}, fmt.Errorf("netsurge: warm %d join: %w", id, err)
		}
	}
	logf("%d warm peers streaming; warming up %v", cfg.Warm, cfg.Warmup)
	time.Sleep(cfg.Warmup)

	// Pre-storm snapshot: continuity is judged over the storm window.
	type snap struct{ onTime, total int64 }
	before := make([]snap, len(warm))
	for i, p := range warm {
		before[i].onTime, before[i].total = p.PlaybackStats()
	}

	// --- The storm: every joiner at once. ---
	joiners := make([]*netpeer.Node, cfg.Joiners)
	defer func() {
		for _, p := range joiners {
			if p != nil {
				p.Close()
			}
		}
	}()
	outcomes := make([]JoinOutcome, cfg.Joiners)
	stormStart := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Joiners; i++ {
		id := int32(100 + i)
		p, err := netpeer.New(nodeCfg(id, 3*rate, cfg.PeerPartners, cfg.PeerSlots))
		if err != nil {
			return Report{}, err
		}
		joiners[i] = p
		addr, err := p.Listen()
		if err != nil {
			return Report{}, err
		}
		wg.Add(1)
		go func(i int, id int32, addr string) {
			defer wg.Done()
			st, jerr := p.Join(netpeer.JoinConfig{
				Boot: bootClient(), SelfAddr: addr, Register: true,
				TargetPartners: 2, Deadline: cfg.JoinDeadline,
				Backoff: faults.Backoff{
					Base: 100 * sim.Millisecond, Cap: 800 * sim.Millisecond, JitterFrac: 0.5,
				},
			})
			outcomes[i] = JoinOutcome{ID: id, Stats: st}
			if jerr != nil {
				outcomes[i].Err = jerr.Error()
			}
		}(i, id, addr)
	}
	wg.Wait()
	stormElapsed := time.Since(stormStart)
	logf("storm settled in %v; measuring %v", stormElapsed.Round(time.Millisecond), cfg.Measure)
	time.Sleep(cfg.Measure)

	// --- Report. ---
	rep := Report{
		Ladder: cfg.Ladder, Warm: cfg.Warm, Joiners: cfg.Joiners,
		Outcomes: outcomes,
	}
	joined := 0
	var retries []int
	var ttfb []float64
	for _, o := range outcomes {
		if o.Stats.Joined {
			joined++
			ttfb = append(ttfb, float64(o.Stats.TimeToFirstBlock)/float64(time.Millisecond))
		}
		retries = append(retries, o.Stats.Retries)
		rep.Rejects += o.Stats.Rejects
		rep.AlternatesLearned += o.Stats.AlternatesLearned
		rep.TrackerUnavailable += o.Stats.TrackerUnavailable
		rep.RetryAfterWaits += o.Stats.RetryAfterWaits
		rep.LaneRetries += o.Stats.LaneRetries
	}
	rep.JoinSuccess = float64(joined) / float64(cfg.Joiners)
	if sec := stormElapsed.Seconds(); sec > 0 {
		rep.JoinsPerMin = float64(joined) / sec * 60
	}
	sort.Ints(retries)
	rep.RetriesP50 = percentileInt(retries, 0.50)
	rep.RetriesP90 = percentileInt(retries, 0.90)
	rep.RetryHistogram = histogram(retries, 8)
	sort.Float64s(ttfb)
	rep.TTFBP50Ms = percentileFloat(ttfb, 0.50)
	rep.TTFBP90Ms = percentileFloat(ttfb, 0.90)

	rep.EstablishedMinContinuity = 1
	for i, p := range warm {
		onTime, total := p.PlaybackStats()
		dOn, dTotal := onTime-before[i].onTime, total-before[i].total
		ci := 0.0
		if dTotal > 0 {
			ci = float64(dOn) / float64(dTotal)
		}
		rep.EstablishedMeanContinuity += ci
		if ci < rep.EstablishedMinContinuity {
			rep.EstablishedMinContinuity = ci
		}
		logf("warm %d: storm-window continuity %.3f (%d/%d)", i+1, ci, dOn, dTotal)
	}
	rep.EstablishedMeanContinuity /= float64(len(warm))
	logf("join success %.2f (%d/%d), retries p50=%d p90=%d, ttfb p90=%.0fms, established min CI %.3f",
		rep.JoinSuccess, joined, cfg.Joiners, rep.RetriesP50, rep.RetriesP90,
		rep.TTFBP90Ms, rep.EstablishedMinContinuity)
	return rep, nil
}

// RunPair runs the same storm with the ladder off and on.
func RunPair(cfg Config) (Pair, error) {
	off := cfg
	off.Ladder = false
	offRep, err := Run(off)
	if err != nil {
		return Pair{}, fmt.Errorf("netsurge: ladder-off run: %w", err)
	}
	on := cfg
	on.Ladder = true
	onRep, err := Run(on)
	if err != nil {
		return Pair{}, fmt.Errorf("netsurge: ladder-on run: %w", err)
	}
	return Pair{Off: offRep, On: onRep}, nil
}

// percentileInt returns the nearest-rank percentile of sorted ints.
func percentileInt(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func percentileFloat(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// histogram buckets values at [0, 1, ..., cap-1, cap+] — the Fig. 10
// retries-to-join shape.
func histogram(values []int, buckets int) []int {
	h := make([]int, buckets+1)
	for _, v := range values {
		if v < 0 {
			v = 0
		}
		if v >= buckets {
			v = buckets
		}
		h[v]++
	}
	return h
}
