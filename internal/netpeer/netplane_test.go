package netpeer

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"coolstream/internal/protocol"
)

// TestBatchedWriterCoalesces enqueues a burst of frames on one writer
// and checks the flush budget turns many frames into few writes.
func TestBatchedWriterCoalesces(t *testing.T) {
	n := mustNode(t, testConfig(1, 0))
	a, b := net.Pipe()
	defer a.Close()
	cn := &conn{peer: 2, wt: 2 * time.Second, c: a, n: n}
	n.mu.Lock()
	cn.startWriter()
	n.mu.Unlock()

	// Drain the far end so writes complete.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		buf := make([]byte, 64*1024)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()

	const frames = 200
	for i := 0; i < frames; i++ {
		err := cn.enqueueMsg(protocol.Message{
			Type: protocol.TypePing, From: 1, To: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 3*time.Second, func() bool {
		cn.qmu.Lock()
		defer cn.qmu.Unlock()
		return len(cn.q) == 0
	}, "writer never drained the queue")

	st := n.Stats()
	if st.FramesSent != frames {
		t.Fatalf("FramesSent = %d, want %d", st.FramesSent, frames)
	}
	// A burst of 200 tiny frames against a 2ms linger must coalesce
	// heavily; even on a slow machine the first flush takes everything
	// enqueued during the previous write.
	if st.WriteCalls > frames/3 {
		t.Fatalf("WriteCalls = %d for %d frames: no coalescing", st.WriteCalls, frames)
	}
	cn.closeQueue(errConnClosed)
	b.Close()
	<-drained
}

// blockingConn is a net.Conn whose writes block until the conn is
// closed — a partner that never drains its socket.
type blockingConn struct {
	net.Conn
	once sync.Once
	dead chan struct{}
}

func newBlockingConn() *blockingConn {
	a, _ := net.Pipe()
	return &blockingConn{Conn: a, dead: make(chan struct{})}
}

func (c *blockingConn) Write(p []byte) (int, error) {
	<-c.dead
	return 0, errors.New("blockingConn: closed")
}

func (c *blockingConn) SetWriteDeadline(time.Time) error { return nil }

func (c *blockingConn) Close() error {
	c.once.Do(func() { close(c.dead) })
	return c.Conn.Close()
}

// TestSlowPartnerOverflowTearsDown fills a bounded queue against a
// partner that never drains and checks the overflow tears the
// partnership down instead of buffering without bound.
func TestSlowPartnerOverflowTearsDown(t *testing.T) {
	cfg := testConfig(1, 0)
	cfg.QueueBytes = 4 * 1024
	n := mustNode(t, cfg)
	cn := &conn{peer: 2, wt: time.Second, c: newBlockingConn(), n: n}
	n.mu.Lock()
	cn.startWriter()
	n.mu.Unlock()

	payload := make([]byte, 900)
	var overflow error
	for i := 0; i < 64; i++ {
		err := cn.enqueueMsg(protocol.Message{
			Type: protocol.TypeBlockPush, From: 1, To: 2,
			SubStream: 0, StartSeq: int64(i), Payload: payload,
		})
		if err != nil {
			overflow = err
			break
		}
	}
	if !errors.Is(overflow, errSlowPartner) {
		t.Fatalf("overflow error = %v, want errSlowPartner", overflow)
	}
	if got := n.Recovery().SlowPartnerTeardowns; got != 1 {
		t.Fatalf("SlowPartnerTeardowns = %d, want 1", got)
	}
	// Subsequent sends fail fast with the queue error.
	if err := cn.send(protocol.Message{Type: protocol.TypePing, From: 1, To: 2}); err == nil {
		t.Fatal("send after overflow succeeded")
	}
}

// failSwitchConn fails every write once armed — a partner whose socket
// went one-way dead after the handshake.
type failSwitchConn struct {
	net.Conn
	mu   sync.Mutex
	fail bool
}

func (c *failSwitchConn) arm() {
	c.mu.Lock()
	c.fail = true
	c.mu.Unlock()
}

func (c *failSwitchConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	fail := c.fail
	c.mu.Unlock()
	if fail {
		return 0, errors.New("failSwitchConn: armed")
	}
	return c.Conn.Write(p)
}

// TestBMSendFailureTearsDownPartner checks the bmLoop satellite fix:
// persistent BM send failures tear the partnership down through the
// maintenance path instead of being silently ignored forever.
func TestBMSendFailureTearsDownPartner(t *testing.T) {
	srv := mustNode(t, testConfig(2, 0))
	addr := mustListen(t, srv)

	var fsc *failSwitchConn
	cfg := testConfig(1, 0)
	cfg.BMPeriod = 30 * time.Millisecond
	// Legacy plane: sends hit the conn synchronously, so the injected
	// write failures surface directly to the BM loop.
	cfg.LegacyPlane = true
	cfg.Dialer = func(network, address string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout(network, address, timeout)
		if err != nil {
			return nil, err
		}
		fsc = &failSwitchConn{Conn: c}
		return fsc, nil
	}
	n := mustNode(t, cfg)
	mustListen(t, n)
	if _, err := n.Connect(addr); err != nil {
		t.Fatal(err)
	}
	if len(n.Partners()) != 1 {
		t.Fatal("no partnership established")
	}
	fsc.arm()
	waitFor(t, 3*time.Second, func() bool {
		return len(n.Partners()) == 0
	}, "partner with dead write path never torn down")
	if got := n.Recovery().BMFailTeardowns; got < 1 {
		t.Fatalf("BMFailTeardowns = %d, want >= 1", got)
	}
}

// TestPartnerConnRejectsOversizedFrame checks the per-listener frame
// bound: a partner connection configured for small blocks must drop a
// peer that sends a frame beyond the bound instead of allocating it.
func TestPartnerConnRejectsOversizedFrame(t *testing.T) {
	cfg := testConfig(1, 0)
	cfg.MaxFrameBytes = 1024
	n := mustNode(t, cfg)
	addr := mustListen(t, n)

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := protocol.WriteFrame(c, protocol.Message{
		Type: protocol.TypePartnerRequest, From: 9, To: -1,
	}); err != nil {
		t.Fatal(err)
	}
	if resp, err := protocol.ReadFrame(c); err != nil || resp.Type != protocol.TypePartnerAccept {
		t.Fatalf("handshake: %v %v", resp.Type, err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(n.Partners()) == 1 }, "no partnership")

	// 4 KiB push blows the 1 KiB bound; the node must kill the conn.
	if err := protocol.WriteFrame(c, protocol.Message{
		Type: protocol.TypeBlockPush, From: 9, To: 1,
		SubStream: 0, StartSeq: 0, Payload: make([]byte, 4096),
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(n.Partners()) == 0 },
		"oversized frame did not tear the conn down")
}

// TestFanOutSharesEncodedFrames runs a source pushing the same lanes to
// several children and checks blocks are encoded once, not per child.
func TestFanOutSharesEncodedFrames(t *testing.T) {
	src := mustNode(t, testConfig(0, 0))
	addr := mustListen(t, src)
	if err := src.StartSource(); err != nil {
		t.Fatal(err)
	}

	const children = 3
	kids := make([]*Node, 0, children)
	for i := int32(1); i <= children; i++ {
		kid := mustNode(t, testConfig(i, 0))
		mustListen(t, kid)
		if _, err := kid.Connect(addr); err != nil {
			t.Fatal(err)
		}
		if err := kid.InitBuffers(0); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < testLayout.K; j++ {
			if err := kid.Subscribe(0, j, 0); err != nil {
				t.Fatal(err)
			}
		}
		kids = append(kids, kid)
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, kid := range kids {
			if kid.Combined() < 20*int64(testLayout.K) {
				return false
			}
		}
		return true
	}, "children never received blocks")

	st := src.Stats()
	if st.BlockFrames == 0 || st.FanEncodes == 0 {
		t.Fatalf("no fan-out traffic: %+v", st)
	}
	// Every block frame comes off the fan path (fan counters tick just
	// before the frame is accounted, so under concurrent pushing the
	// snapshot can only over-count the fan side).
	if st.FanEncodes+st.FanShared < st.BlockFrames {
		t.Fatalf("fan accounting: %d encodes + %d shared < %d block frames",
			st.FanEncodes, st.FanShared, st.BlockFrames)
	}
	// Three children pulling the same blocks: most frames must come
	// from the shared cache, not fresh encodes.
	if st.FanShared < st.FanEncodes {
		t.Fatalf("fan-out barely shared: %d encodes vs %d shared", st.FanEncodes, st.FanShared)
	}
}

// TestBMDeltaReducesSignallingBytes checks the steady-state BM frame
// is a small delta, not a full map, and that partner maps still track
// the sender's progress end to end (including acks keeping the epoch
// acknowledged so the sender is not forced into re-keying).
func TestBMDeltaReducesSignallingBytes(t *testing.T) {
	cfg := testConfig(0, 0)
	cfg.BMPeriod = 30 * time.Millisecond
	src := mustNode(t, cfg)
	addr := mustListen(t, src)
	if err := src.StartSource(); err != nil {
		t.Fatal(err)
	}
	peerCfg := testConfig(1, 0)
	peerCfg.BMPeriod = 30 * time.Millisecond
	peer := mustNode(t, peerCfg)
	mustListen(t, peer)
	if _, err := peer.Connect(addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool {
		bm, ok := peer.PartnerBM(0)
		return ok && bm.MaxLatest() > 20
	}, "partner map never tracked source progress")

	st := src.Stats()
	if st.BMFrames < 10 {
		t.Fatalf("only %d BM frames after warmup", st.BMFrames)
	}
	// Full K=4 BMExchange frames run ~48 bytes on the wire; deltas with
	// one ack per keyframe must keep the average well under that.
	avg := float64(st.BMBytes) / float64(st.BMFrames)
	if avg > 25 {
		t.Fatalf("average BM frame %.1f bytes: deltas not in effect", avg)
	}
}

// TestLegacyAndBatchedPlanesInteroperate partners a legacy-plane node
// with a batched one and checks BM state flows in both directions —
// full maps one way, deltas the other.
func TestLegacyAndBatchedPlanesInteroperate(t *testing.T) {
	legacyCfg := testConfig(0, 0)
	legacyCfg.LegacyPlane = true
	legacy := mustNode(t, legacyCfg)
	addr := mustListen(t, legacy)
	if err := legacy.StartSource(); err != nil {
		t.Fatal(err)
	}
	batched := mustNode(t, testConfig(1, 0))
	mustListen(t, batched)
	if _, err := batched.Connect(addr); err != nil {
		t.Fatal(err)
	}
	if err := batched.InitBuffers(0); err != nil {
		t.Fatal(err)
	}
	// The batched node learns the legacy node's progress from full maps...
	waitFor(t, 3*time.Second, func() bool {
		bm, ok := batched.PartnerBM(0)
		return ok && bm.MaxLatest() > 0
	}, "batched node never saw legacy BM")
	// ...and the legacy node applies the batched node's deltas.
	waitFor(t, 3*time.Second, func() bool {
		bm, ok := legacy.PartnerBM(1)
		return ok && bm.K() == testLayout.K
	}, "legacy node never applied batched deltas")
}
