package netpeer

import (
	"testing"
	"time"

	"coolstream/internal/buffer"
)

// testLayout keeps wall-clock tests fast: 512 kbps in 4 sub-streams of
// 800-byte blocks → 80 blocks/s global, 20 per sub-stream.
var testLayout = buffer.Layout{K: 4, RateBps: 512e3, BlockBytes: 800}

func testConfig(id int32, uploadBps float64) Config {
	return Config{
		ID:           id,
		Layout:       testLayout,
		UploadBps:    uploadBps,
		BMPeriod:     100 * time.Millisecond,
		BufferBlocks: 400,
		ReadyBlocks:  10,
	}
}

func mustNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func mustListen(t *testing.T, n *Node) string {
	t.Helper()
	addr, err := n.Listen()
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("timeout: " + msg)
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(1, 0).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testConfig(1, 0)
	bad.Layout.K = 0
	if bad.Validate() == nil {
		t.Fatal("invalid layout accepted")
	}
	bad = testConfig(1, 0)
	bad.BMPeriod = 0
	if bad.Validate() == nil {
		t.Fatal("zero BM period accepted")
	}
	bad = testConfig(1, 0)
	bad.ReadyBlocks = 0
	if bad.Validate() == nil {
		t.Fatal("zero ready accepted")
	}
}

func TestHandshakeAndBMExchange(t *testing.T) {
	src := mustNode(t, testConfig(0, 0))
	addr := mustListen(t, src)
	if err := src.StartSource(); err != nil {
		t.Fatal(err)
	}
	peer := mustNode(t, testConfig(1, 0))
	mustListen(t, peer)
	id, err := peer.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("handshake returned peer %d", id)
	}
	waitFor(t, 3*time.Second, func() bool {
		bm, ok := peer.PartnerBM(0)
		return ok && bm.MaxLatest() > 0
	}, "no buffer map with progress received")
	// Both sides see the partnership.
	if len(src.Partners()) != 1 || len(peer.Partners()) != 1 {
		t.Fatalf("partner counts %d/%d", len(src.Partners()), len(peer.Partners()))
	}
}

func TestStreamFromSourceReachesReadyAndStaysContinuous(t *testing.T) {
	src := mustNode(t, testConfig(0, 0)) // unlimited uplink
	addr := mustListen(t, src)
	if err := src.StartSource(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond) // let the live edge advance

	peer := mustNode(t, testConfig(1, 0))
	mustListen(t, peer)
	if _, err := peer.Connect(addr); err != nil {
		t.Fatal(err)
	}
	// Join a little behind the live edge, like the Tp shift.
	start := src.Latest(0) - 5
	if start < 0 {
		start = 0
	}
	if err := peer.InitBuffers(start); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < testLayout.K; j++ {
		if err := peer.Subscribe(0, j, start); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, peer.Ready, "peer never media-ready")
	time.Sleep(1500 * time.Millisecond)
	if ci := peer.Continuity(); ci < 0.95 {
		t.Fatalf("continuity %.3f under an unconstrained source", ci)
	}
	// The combined prefix tracks all lanes.
	if got := peer.Combined(); got < (start+20)*int64(testLayout.K) {
		t.Fatalf("combined prefix %d too short", got)
	}
}

func TestRelayChainDeliversDownstream(t *testing.T) {
	src := mustNode(t, testConfig(0, 0))
	srcAddr := mustListen(t, src)
	if err := src.StartSource(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	relay := mustNode(t, testConfig(1, 4*testLayout.RateBps))
	relayAddr := mustListen(t, relay)
	if _, err := relay.Connect(srcAddr); err != nil {
		t.Fatal(err)
	}
	start := src.Latest(0) - 3
	if start < 0 {
		start = 0
	}
	if err := relay.InitBuffers(start); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < testLayout.K; j++ {
		if err := relay.Subscribe(0, j, start); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, relay.Ready, "relay never ready")

	leaf := mustNode(t, testConfig(2, 0))
	mustListen(t, leaf)
	if _, err := leaf.Connect(relayAddr); err != nil {
		t.Fatal(err)
	}
	leafStart := relay.Latest(0) - 3
	if leafStart < start {
		leafStart = start
	}
	if err := leaf.InitBuffers(leafStart); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < testLayout.K; j++ {
		if err := leaf.Subscribe(1, j, leafStart); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, leaf.Ready, "leaf never ready through the relay")
	time.Sleep(time.Second)
	if ci := leaf.Continuity(); ci < 0.85 {
		t.Fatalf("leaf continuity %.3f through a 4R relay", ci)
	}
}

func TestUploadLimitSharedAcrossChildren(t *testing.T) {
	// A relay with ~1R upload serving two full-stream children: each
	// gets ~R/2 and must fall behind the live edge.
	src := mustNode(t, testConfig(0, 0))
	srcAddr := mustListen(t, src)
	if err := src.StartSource(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	relay := mustNode(t, testConfig(1, 1.0*testLayout.RateBps))
	relayAddr := mustListen(t, relay)
	if _, err := relay.Connect(srcAddr); err != nil {
		t.Fatal(err)
	}
	start := src.Latest(0)
	if err := relay.InitBuffers(start); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < testLayout.K; j++ {
		if err := relay.Subscribe(0, j, start); err != nil {
			t.Fatal(err)
		}
	}
	var kids []*Node
	for i := int32(2); i <= 3; i++ {
		kid := mustNode(t, testConfig(i, 0))
		mustListen(t, kid)
		if _, err := kid.Connect(relayAddr); err != nil {
			t.Fatal(err)
		}
		if err := kid.InitBuffers(start); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < testLayout.K; j++ {
			if err := kid.Subscribe(1, j, start); err != nil {
				t.Fatal(err)
			}
		}
		kids = append(kids, kid)
	}
	elapsed := 3 * time.Second
	time.Sleep(elapsed)
	// Aggregate child throughput can never exceed the relay's bucket
	// (plus its burst allowance), no matter how fast the source runs —
	// the invariant that makes Eq. (5) capacity sharing real. (On a
	// loaded machine the wall-clock source can fall behind, so we bound
	// throughput rather than requiring an absolute lag.)
	startG := start * int64(testLayout.K)
	var totalBlocks int64
	var progress []int64
	for _, kid := range kids {
		g := kid.Combined() - startG
		progress = append(progress, g)
		totalBlocks += g
	}
	sentBits := float64(totalBlocks) * 8 * float64(testLayout.BlockBytes)
	budget := testLayout.RateBps*elapsed.Seconds()*1.3 + testLayout.RateBps // rate + slack + burst
	if sentBits > budget {
		t.Fatalf("children received %.0f bits, bucket budget %.0f", sentBits, budget)
	}
	// Both children make progress, at comparable rates (shared bucket
	// is roughly fair): within a factor of 3.
	if progress[0] <= 0 || progress[1] <= 0 {
		t.Fatalf("children made no progress: %v", progress)
	}
	ratio := float64(progress[0]) / float64(progress[1])
	if ratio < 0.33 || ratio > 3 {
		t.Fatalf("unfair sharing: %v", progress)
	}
}

func TestBucketEnforcesRate(t *testing.T) {
	// 256 kbit/s bucket; taking 800-byte blocks (6400 bits) as fast as
	// possible for ~400 ms must stay near rate × time + burst.
	b := newBucket(256e3)
	deadline := time.Now().Add(400 * time.Millisecond)
	taken := 0.0
	for time.Now().Before(deadline) {
		if !b.take(6400) {
			t.Fatal("bucket closed unexpectedly")
		}
		taken += 6400
	}
	elapsed := 0.4
	budget := 256e3*elapsed*1.5 + 256e3/4
	if taken > budget {
		t.Fatalf("bucket leaked: %.0f bits in %.1fs (budget %.0f)", taken, elapsed, budget)
	}
	if taken < 256e3*elapsed*0.3 {
		t.Fatalf("bucket starved: %.0f bits in %.1fs", taken, elapsed)
	}
	// Unlimited bucket never blocks.
	unlimited := newBucket(0)
	for i := 0; i < 1000; i++ {
		if !unlimited.take(1e9) {
			t.Fatal("unlimited bucket blocked")
		}
	}
	// Closed bucket releases takers.
	b.close()
	if b.take(1e12) {
		t.Fatal("closed bucket granted tokens")
	}
	var nilBucket *bucket
	if !nilBucket.take(5) {
		t.Fatal("nil bucket should be a no-op")
	}
	nilBucket.close()
}

func TestSubscribeWithoutPartnershipFails(t *testing.T) {
	n := mustNode(t, testConfig(1, 0))
	if err := n.Subscribe(42, 0, 0); err == nil {
		t.Fatal("subscribe without partnership succeeded")
	}
}

func TestDoubleInitRejected(t *testing.T) {
	n := mustNode(t, testConfig(1, 0))
	if err := n.InitBuffers(0); err != nil {
		t.Fatal(err)
	}
	if err := n.InitBuffers(0); err == nil {
		t.Fatal("second InitBuffers accepted")
	}
}

func TestCloseIsIdempotentAndUnblocks(t *testing.T) {
	src := mustNode(t, testConfig(0, 100)) // tiny upload: pushers sleep in the bucket
	addr := mustListen(t, src)
	if err := src.StartSource(); err != nil {
		t.Fatal(err)
	}
	peer := mustNode(t, testConfig(1, 0))
	mustListen(t, peer)
	if _, err := peer.Connect(addr); err != nil {
		t.Fatal(err)
	}
	if err := peer.InitBuffers(0); err != nil {
		t.Fatal(err)
	}
	peer.Subscribe(0, 0, 0)
	time.Sleep(200 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		src.Close()
		src.Close() // idempotent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
}
