package netpeer

import (
	"testing"
	"time"

	"coolstream/internal/protocol"
)

// TestAdaptationSwitchesToHealthyRelayOverTCP is the full §IV-B loop
// on real sockets: a leaf subscribed to a crippled relay detects the
// lag through buffer maps and re-subscribes to a healthy relay.
func TestAdaptationSwitchesToHealthyRelayOverTCP(t *testing.T) {
	src := mustNode(t, testConfig(0, 0))
	srcAddr := mustListen(t, src)
	if err := src.StartSource(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	// Healthy relay: 6R uplink, keeps up with the source.
	healthy := mustNode(t, testConfig(1, 6*testLayout.RateBps))
	healthyAddr := mustListen(t, healthy)
	if _, err := healthy.Connect(srcAddr); err != nil {
		t.Fatal(err)
	}
	hStart := src.Latest(0) - 2
	if hStart < 0 {
		hStart = 0
	}
	if err := healthy.InitBuffers(hStart); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < testLayout.K; j++ {
		if err := healthy.Subscribe(0, j, hStart); err != nil {
			t.Fatal(err)
		}
	}

	// Crippled relay: tiny uplink (0.2R) — it receives fine but cannot
	// serve a full stream.
	weak := mustNode(t, testConfig(2, 0.2*testLayout.RateBps))
	weakAddr := mustListen(t, weak)
	if _, err := weak.Connect(srcAddr); err != nil {
		t.Fatal(err)
	}
	if err := weak.InitBuffers(hStart); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < testLayout.K; j++ {
		if err := weak.Subscribe(0, j, hStart); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(500 * time.Millisecond)

	// Leaf partners with BOTH relays but subscribes everything to the
	// weak one.
	leaf := mustNode(t, testConfig(3, 0))
	mustListen(t, leaf)
	if _, err := leaf.Connect(weakAddr); err != nil {
		t.Fatal(err)
	}
	if _, err := leaf.Connect(healthyAddr); err != nil {
		t.Fatal(err)
	}
	start := weak.Latest(0) - 2
	if start < 0 {
		start = 0
	}
	if err := leaf.InitBuffers(start); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < testLayout.K; j++ {
		if err := leaf.SubscribeTracked(2, j, start); err != nil {
			t.Fatal(err)
		}
	}
	leaf.EnableAdaptation(AdaptConfig{
		Ts:    10,
		Tp:    15,
		Ta:    300 * time.Millisecond,
		Check: 100 * time.Millisecond,
		Seed:  7,
	})

	// The weak relay serves ~0.2R against a 1R stream: the leaf lags,
	// Inequality (2) fires (healthy's BM advertises the live edge), and
	// lane after lane must migrate to the healthy relay.
	waitFor(t, 10*time.Second, func() bool {
		moved := 0
		for j := 0; j < testLayout.K; j++ {
			if leaf.LaneParent(j) == 1 {
				moved++
			}
		}
		return moved == testLayout.K
	}, "leaf never migrated all lanes to the healthy relay")

	// After migration the leaf catches back towards the live edge.
	waitFor(t, 10*time.Second, func() bool {
		return src.Latest(0)-leaf.Latest(0) < 30
	}, "leaf never caught up after adaptation")
}

func TestUnsubscribeStopsPushing(t *testing.T) {
	src := mustNode(t, testConfig(0, 0))
	addr := mustListen(t, src)
	if err := src.StartSource(); err != nil {
		t.Fatal(err)
	}
	peer := mustNode(t, testConfig(1, 0))
	mustListen(t, peer)
	if _, err := peer.Connect(addr); err != nil {
		t.Fatal(err)
	}
	if err := peer.InitBuffers(0); err != nil {
		t.Fatal(err)
	}
	if err := peer.SubscribeTracked(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return peer.Latest(0) > 5 }, "no blocks flowed")
	// Unsubscribe lane 0; progress must halt.
	cn := peer.connOf(0)
	if cn == nil {
		t.Fatal("no connection")
	}
	if err := cn.send(protocol.Message{
		Type: protocol.TypeUnsubscribe, From: peer.cfg.ID, To: 0, SubStream: 0,
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	frozen := peer.Latest(0)
	time.Sleep(700 * time.Millisecond)
	if after := peer.Latest(0); after > frozen+2 {
		t.Fatalf("pushes continued after unsubscribe: %d -> %d", frozen, after)
	}
}
