// Package netpeer runs the Coolstreaming data plane over real TCP
// sockets: partnership handshakes, periodic buffer-map exchange, and
// sub-stream block push through the wire codec of internal/protocol,
// received into the synchronization/cache buffers of internal/buffer,
// with upload capacity enforced by a shared token bucket (so a
// parent's children share its uplink exactly as Eq. (5) describes).
//
// The simulator (internal/peer) remains the scale instrument; netpeer
// is the deployable counterpart for the protocol's hot path, and its
// integration tests stream real bytes across localhost.
package netpeer

import (
	"sync"
	"time"
)

// bucket is a token bucket metering bits. Take blocks until the
// requested tokens are available, so concurrent takers share the rate
// roughly fairly (FIFO per mutex acquisition).
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (bits) per second; <= 0 means unlimited
	burst  float64
	avail  float64
	last   time.Time
	closed bool
}

func newBucket(rateBps float64) *bucket {
	return &bucket{
		rate:  rateBps,
		burst: rateBps / 4, // a quarter second of burst absorbs jitter
		avail: rateBps / 4,
		last:  time.Now(),
	}
}

// take blocks until n tokens are available (or the bucket is closed,
// in which case it returns false).
func (b *bucket) take(n float64) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	for {
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return false
		}
		now := time.Now()
		b.avail += now.Sub(b.last).Seconds() * b.rate
		if b.avail > b.burst {
			b.avail = b.burst
		}
		b.last = now
		if b.avail >= n {
			b.avail -= n
			b.mu.Unlock()
			return true
		}
		deficit := n - b.avail
		b.mu.Unlock()
		wait := time.Duration(deficit / b.rate * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		// Cap each sleep so close() is observed promptly even at very
		// low rates.
		if wait > 50*time.Millisecond {
			wait = 50 * time.Millisecond
		}
		time.Sleep(wait)
	}
}

// close releases all takers.
func (b *bucket) close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
}
