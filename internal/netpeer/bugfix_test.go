package netpeer

import (
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"coolstream/internal/faults"
	"coolstream/internal/protocol"
)

func TestConfigValidateWriteTimeout(t *testing.T) {
	bad := testConfig(1, 0)
	bad.WriteTimeout = -time.Second
	if bad.Validate() == nil {
		t.Fatal("negative WriteTimeout accepted")
	}
	n := mustNode(t, testConfig(1, 0))
	if n.cfg.WriteTimeout != DefaultWriteTimeout {
		t.Fatalf("zero WriteTimeout not defaulted: %v", n.cfg.WriteTimeout)
	}
	cfg := testConfig(2, 0)
	cfg.WriteTimeout = 3 * time.Second
	n2 := mustNode(t, cfg)
	if n2.cfg.WriteTimeout != 3*time.Second {
		t.Fatalf("explicit WriteTimeout lost: %v", n2.cfg.WriteTimeout)
	}
}

// deadlineErrConn refuses SetWriteDeadline — the regression case where
// send used to ignore the error and write with no deadline at all.
type deadlineErrConn struct {
	net.Conn
}

type errNo struct{}

func (errNo) Error() string { return "deadline unsupported" }

func (deadlineErrConn) SetWriteDeadline(time.Time) error { return errNo{} }

func TestSendPropagatesDeadlineError(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	cn := &conn{peer: 2, wt: time.Second, c: deadlineErrConn{Conn: a}}
	err := cn.send(protocol.Message{Type: protocol.TypeLeave, From: 1, To: 2})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("deadline error swallowed: %v", err)
	}
}

// TestConnectDistinguishesRejectFromReadError pins the handshake error
// split: a wrong-type response must name the offending message type,
// not report a nil read error.
func TestConnectDistinguishesRejectFromReadError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		fr := protocol.NewFrameReader(c)
		if _, err := fr.Read(); err != nil {
			return
		}
		// Answer with a message type that is not part of the handshake
		// at all (a reject is protocol — see below).
		protocol.WriteFrame(c, protocol.Message{Type: protocol.TypePing, From: 9, To: 1})
		// Give the client a moment to read before the deferred close.
		time.Sleep(200 * time.Millisecond)
	}()

	n := mustNode(t, testConfig(1, 0))
	_, err = n.Connect(ln.Addr().String())
	if err == nil {
		t.Fatal("wrong-type handshake accepted")
	}
	if !strings.Contains(err.Error(), "ping") || !strings.Contains(err.Error(), "from 9") {
		t.Fatalf("rejection error lacks response type/source: %v", err)
	}
	if strings.Contains(err.Error(), "<nil>") {
		t.Fatalf("rejection error still reports nil read error: %v", err)
	}

	// A PartnerReject answer is an admission refusal, not a protocol
	// violation: it must surface as a typed *RejectedError naming the
	// refusing peer.
	lnRej, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lnRej.Close()
	go func() {
		c, err := lnRej.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		if _, err := protocol.NewFrameReader(c).Read(); err != nil {
			return
		}
		protocol.WriteFrame(c, protocol.Message{Type: protocol.TypePartnerReject, From: 9, To: 1})
		time.Sleep(200 * time.Millisecond)
	}()
	_, err = n.Connect(lnRej.Addr().String())
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("want *RejectedError, got %v", err)
	}
	if rej.Peer != 9 {
		t.Fatalf("rejecting peer %d, want 9", rej.Peer)
	}

	// I/O failure: the peer hangs up mid-handshake.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	go func() {
		c, err := ln2.Accept()
		if err != nil {
			return
		}
		// Consume the request, then hang up without responding so the
		// client fails on the handshake *read*, not its own write.
		protocol.NewFrameReader(c).Read()
		c.Close()
	}()
	_, err = n.Connect(ln2.Addr().String())
	if err == nil || !strings.Contains(err.Error(), "handshake read") {
		t.Fatalf("read failure not reported as such: %v", err)
	}
}

// TestSelfPartnershipRejected pins the handleInbound guard: a
// PartnerRequest carrying the node's own ID must be refused, never
// registered as a self-partnership.
func TestSelfPartnershipRejected(t *testing.T) {
	n := mustNode(t, testConfig(5, 0))
	addr := mustListen(t, n)

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Impersonate node 5 towards itself.
	if err := protocol.WriteFrame(c, protocol.Message{Type: protocol.TypePartnerRequest, From: 5, To: -1}); err != nil {
		t.Fatal(err)
	}
	fr := protocol.NewFrameReader(c)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := fr.Read()
	if err != nil {
		t.Fatalf("expected an explicit reject, got read error %v", err)
	}
	if resp.Type != protocol.TypePartnerReject {
		t.Fatalf("got %v, want partner-reject", resp.Type)
	}
	waitFor(t, time.Second, func() bool {
		return len(n.Partners()) == 0
	}, "self-partnership registered")
	for _, p := range n.Partners() {
		if p == 5 {
			t.Fatal("node partnered with itself")
		}
	}
}

// TestCloseUnblocksAdaptationMonitorFast pins the close-signal select:
// with a long Check interval, Close must return promptly instead of
// waiting for the next monitor tick to observe n.closed.
func TestCloseUnblocksAdaptationMonitorFast(t *testing.T) {
	cfg := testConfig(1, 0)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustListen(t, n)
	n.EnableAdaptation(AdaptConfig{Ts: 10, Tp: 20, Ta: time.Second, Check: 30 * time.Second, Seed: 1})
	time.Sleep(50 * time.Millisecond) // let the monitor park on its select
	start := time.Now()
	n.Close()
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("Close blocked %v on the adaptation monitor (Check=30s)", el)
	}
}

// TestPartnerDeathOrphansLanes pins the readLoop teardown: when a
// partner's connection dies, its cached BM is forgotten and any lane it
// served is reset to -1 so the adaptation monitor re-subscribes it.
func TestPartnerDeathOrphansLanes(t *testing.T) {
	a := mustNode(t, testConfig(1, 0))
	b := mustNode(t, testConfig(2, 0))
	if err := a.InitBuffers(0); err != nil {
		t.Fatal(err)
	}
	addrB := mustListen(t, b)
	mustListen(t, a)
	if _, err := a.Connect(addrB); err != nil {
		t.Fatal(err)
	}
	if err := a.SubscribeTracked(2, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := a.LaneParent(0); got != 2 {
		t.Fatalf("lane parent %d, want 2", got)
	}
	b.Close()
	waitFor(t, 3*time.Second, func() bool {
		return a.LaneParent(0) == -1 && len(a.Partners()) == 0
	}, "dead partner still owns lane 0")
	if _, ok := a.PartnerBM(2); ok {
		t.Fatal("stale BM survived partner death")
	}
}

// TestConcurrentCrossConnectConverges is the duplicate-connection race
// test: both sides dial each other simultaneously, repeatedly; the
// direction tie-break must leave exactly one live conn per peer on both
// ends (never zero — the old cross-eviction bug — and never a stuck
// duplicate), with no goroutine leak. Run under -race.
func TestConcurrentCrossConnectConverges(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		a := mustNode(t, testConfig(1, 0))
		b := mustNode(t, testConfig(2, 0))
		addrA := mustListen(t, a)
		addrB := mustListen(t, b)

		var wg sync.WaitGroup
		wg.Add(2)
		var errA, errB error
		go func() {
			defer wg.Done()
			_, errA = a.Connect(addrB)
		}()
		go func() {
			defer wg.Done()
			_, errB = b.Connect(addrA)
		}()
		wg.Wait()
		if errA != nil || errB != nil {
			t.Fatalf("round %d: connect errors %v / %v", round, errA, errB)
		}

		// Both ends must converge to exactly one live conn for the peer.
		waitFor(t, 2*time.Second, func() bool {
			pa, pb := a.Partners(), b.Partners()
			return len(pa) == 1 && pa[0] == 2 && len(pb) == 1 && pb[0] == 1
		}, "cross-connect did not converge to one partnership per end")

		// The surviving conns must actually work: a frame sent from each
		// end arrives (exercises that the two ends kept the SAME conn).
		if err := a.Subscribe(2, 0, 0); err != nil {
			t.Fatalf("round %d: surviving conn a→b dead: %v", round, err)
		}
		if err := b.Subscribe(1, 0, 0); err != nil {
			t.Fatalf("round %d: surviving conn b→a dead: %v", round, err)
		}
		a.Close()
		b.Close()
	}
	// Goroutine-leak check: all readLoops, pushers and accept loops gone.
	waitFor(t, 3*time.Second, func() bool {
		return runtime.NumGoroutine() <= base+2
	}, "goroutines leaked across cross-connect rounds")
}

// TestDialerFaultInjection wires the fault injector's dialer wrapper
// into Config.Dialer: with refusal probability 1 every Connect fails
// with the injected sentinel, and the refusal is counted.
func TestDialerFaultInjection(t *testing.T) {
	b := mustNode(t, testConfig(2, 0))
	addr := mustListen(t, b)

	in, err := faults.NewInjector(faults.Config{NATRefusalProb: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1, 0)
	cfg.Dialer = in.WrapDial(nil)
	a := mustNode(t, cfg)
	if _, err := a.Connect(addr); !errors.Is(err, faults.ErrRefused) {
		t.Fatalf("injected dial not refused: %v", err)
	}
	if s := in.Stats(); s.NATRefusals != 1 {
		t.Fatalf("refusals %d, want 1", s.NATRefusals)
	}
	if len(a.Partners()) != 0 {
		t.Fatal("refused dial registered a partnership")
	}
}
